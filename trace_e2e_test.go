package privehd_test

//lint:file-ignore SA1019 the deprecated constructors stay fully supported; these tests pin their behavior

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"privehd"

	"privehd/internal/admin"
	"privehd/internal/offload"
	"privehd/internal/trace"
)

// syncBuffer is a strings-inspectable log sink safe for the server's
// logging goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestEndToEndTraceVisibility(t *testing.T) {
	// One sampled Predict must surface the SAME trace ID on every
	// observability surface: the client-side span, the server's flight
	// recorder behind GET /v1/debug/requests, the slow-request log line,
	// and an OpenMetrics exemplar on /metrics.
	defer privehd.SetTraceSampling(privehd.TraceSampling())
	privehd.SetTraceSampling(1)

	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	recorder := trace.NewRecorder(16, 16)

	pipe, X, _ := toyPipeline(t)
	srv, err := privehd.NewServer(pipe,
		privehd.WithSlowRequestLog(logger, time.Nanosecond), // everything is "slow"
		offload.WithFlightRecorder(recorder))
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	defer func() {
		srv.Close()
		<-done
	}()

	entries := make(chan privehd.TraceEntry, 4)
	privehd.OnTrace(func(e privehd.TraceEntry) { entries <- e })
	defer privehd.OnTrace(nil)

	edge, err := pipe.Edge()
	if err != nil {
		t.Fatal(err)
	}
	remote, err := privehd.Dial(context.Background(), "tcp", lis.Addr().String(), edge)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if _, _, err := remote.Predict(X[0]); err != nil {
		t.Fatal(err)
	}

	// Surface 1: the client-side span, delivered through the observer.
	var clientEntry privehd.TraceEntry
	select {
	case clientEntry = <-entries:
	case <-time.After(5 * time.Second):
		t.Fatal("no client trace entry observed")
	}
	if clientEntry.TraceID == 0 {
		t.Fatal("client entry has no trace ID")
	}
	hexID := fmt.Sprintf("%016x", clientEntry.TraceID)
	if clientEntry.ServerTotalNs <= 0 {
		t.Errorf("client entry carries no server timing: %+v", clientEntry)
	}

	// Surface 2: the server flight recorder, through the real admin
	// handler at GET /v1/debug/requests (bearer-gated).
	mgr, err := privehd.OpenManager(t.TempDir(), privehd.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	adminH, err := admin.NewHandler(mgr, "tok", 0, admin.WithRecorder(recorder))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "flight recorder entry", func() bool {
		req := httptest.NewRequest("GET", "/v1/debug/requests", nil)
		req.Header.Set("Authorization", "Bearer tok")
		w := httptest.NewRecorder()
		adminH.ServeHTTP(w, req)
		return w.Code == 200 && strings.Contains(w.Body.String(), hexID)
	})

	// Surface 3: the slow-request log line.
	waitFor(t, "slow-request log line", func() bool {
		s := logBuf.String()
		return strings.Contains(s, "slow request") && strings.Contains(s, hexID)
	})

	// Surface 4: an exemplar on the /metrics histogram, OpenMetrics only.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	w := httptest.NewRecorder()
	privehd.MetricsHandler().ServeHTTP(w, req)
	om := w.Body.String()
	if !strings.Contains(om, `trace_id="`+hexID+`"`) {
		t.Errorf("OpenMetrics scrape carries no exemplar for trace %s", hexID)
	}
}
