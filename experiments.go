package privehd

import "privehd/internal/experiments"

// ExperimentContext scales the paper-artifact regeneration (dataset scale,
// dimension caps, sample counts).
type ExperimentContext = experiments.Context

// ExperimentTable is one regenerated table/figure with its ID, caption,
// rows and paper-expectation note.
type ExperimentTable = experiments.Table

// ExperimentSuite is the full set of regenerated paper artifacts: every
// table plus the ASCII reconstruction strips of Figs. 2 and 6.
type ExperimentSuite = experiments.Suite

// DefaultExperimentContext is the full-scale experiment configuration the
// committed EXPERIMENTS.md is generated with.
func DefaultExperimentContext() ExperimentContext { return experiments.DefaultContext() }

// SmokeExperimentContext is a fast small-scale configuration for CI and
// demos.
func SmokeExperimentContext() ExperimentContext { return experiments.SmokeContext() }

// RunExperiments regenerates every table and figure of the Prive-HD
// evaluation under the given context.
func RunExperiments(ctx ExperimentContext) (*ExperimentSuite, error) {
	r, err := experiments.NewRunner(ctx)
	if err != nil {
		return nil, err
	}
	return experiments.All(r)
}
