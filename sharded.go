package privehd

import (
	"context"
	"fmt"

	"privehd/internal/offload"
	"privehd/internal/registry"
	"privehd/internal/shard"
)

// Sharded-serving errors; test with errors.Is.
var (
	// ErrPartialUnsupported reports a served model that cannot answer
	// exact partial scores (a non-integer model, e.g. after DP noising,
	// or oversized class values). It is a protocol verdict from a live
	// server — never retried, every replica of the model would refuse
	// the same way.
	ErrPartialUnsupported = offload.ErrPartialUnsupported
	// ErrShardTiling reports a replica set whose shard descriptors do
	// not tile the full model exactly (gaps, overlaps, or disagreeing
	// geometry) — a deployment configuration error, not a transport
	// failure.
	ErrShardTiling = shard.ErrBadTiling
)

// ShardSlice names the slice of a logical model one replica serves: a
// dimension range of every class plane, a class range, or both. Zero
// DimLen means the full dimension range; zero ClassCount means every
// class.
type ShardSlice struct {
	DimOffset, DimLen       int
	ClassOffset, ClassCount int
}

// ShardInfo is a replica's shard descriptor as advertised in the v5
// handshake: its slice plus the full logical geometry it came from.
type ShardInfo = registry.ShardInfo

// Sharded serves whole-model predictions from a fleet of partial
// replicas: each prediction's packed query is scattered by dimension
// slice to every shard group, the groups' exact integer partial scores
// are gathered and reduced, and the argmax is taken over whole-model
// scores — bit-identical to serving the unsplit model (see the
// internal/shard package for the exactness argument). Replicas serving
// the same slice form a failover group, so a replica dying mid-gather
// retries only its own shard, never the whole scatter. All methods are
// safe for concurrent use.
//
// Sharded clients require quantized queries (the default): WithRawQueries
// sends full-precision vectors, which cannot be partial-scored, and is
// rejected at Connect time.
type Sharded struct {
	edge *Edge
	co   *shard.Coordinator
}

// Edge returns the edge obfuscating the fleet's queries.
func (s *Sharded) Edge() *Edge { return s.edge }

// Dim returns the full logical model dimensionality.
func (s *Sharded) Dim() int { return s.co.Dim() }

// Classes returns the full logical model class count.
func (s *Sharded) Classes() int { return s.co.Classes() }

// Model returns the name of the served model the fleet is bound to.
func (s *Sharded) Model() string { return s.co.Hello().Model }

// Shards returns the fleet's shard descriptors, one per failover group.
func (s *Sharded) Shards() []ShardInfo { return s.co.Groups() }

// pack converts one prepared query to the packed wire form, or explains
// why sharded serving cannot carry it.
func packPrepared(q []float64) ([]int8, error) {
	p, ok := offload.PackQuery(q)
	if !ok {
		return nil, fmt.Errorf("%w: query is not quantized (WithRawQueries is incompatible with sharded serving)",
			ErrPartialUnsupported)
	}
	return p, nil
}

// Predict obfuscates one input on the edge and classifies it across the
// sharded fleet, returning the whole-model label and per-class scores.
func (s *Sharded) Predict(x []float64) (int, []float64, error) {
	q, err := s.edge.Prepare(x)
	if err != nil {
		return 0, nil, err
	}
	return s.PredictPrepared(q)
}

// PredictContext is Predict bounded by ctx: the remaining context budget
// rides on every partial-score frame (Request.BudgetNs) so shard replicas
// shed work that can no longer answer in time, and cancellation aborts
// the scatter. A blown deadline surfaces as ErrDeadlineExceeded. With
// hedging enabled (Target.Hedge, WithHedging) a straggling shard gather
// races a backup replica of the same group, first reply wins.
func (s *Sharded) PredictContext(ctx context.Context, x []float64) (int, []float64, error) {
	q, err := s.edge.Prepare(x)
	if err != nil {
		return 0, nil, err
	}
	return s.PredictPreparedContext(ctx, q)
}

// PredictPrepared classifies an already-prepared query hypervector.
func (s *Sharded) PredictPrepared(q []float64) (int, []float64, error) {
	return s.PredictPreparedContext(context.Background(), q)
}

// PredictPreparedContext is PredictPrepared bounded by ctx (see
// PredictContext for the deadline and hedging semantics).
func (s *Sharded) PredictPreparedContext(ctx context.Context, q []float64) (int, []float64, error) {
	if len(q) != s.edge.Dim() {
		return 0, nil, fmt.Errorf("privehd: prepared query has dim %d, edge dim %d", len(q), s.edge.Dim())
	}
	packed, err := packPrepared(q)
	if err != nil {
		return 0, nil, err
	}
	return s.co.PredictPacked(ctx, packed)
}

// PredictBatch obfuscates a batch of inputs and classifies them across
// the sharded fleet; every query fans out to every shard group.
func (s *Sharded) PredictBatch(X [][]float64) ([]int, error) {
	qs, err := s.edge.PrepareBatch(X)
	if err != nil {
		return nil, err
	}
	packed := make([][]int8, len(qs))
	for i, q := range qs {
		if packed[i], err = packPrepared(q); err != nil {
			return nil, err
		}
	}
	labels, _, err := s.co.PredictPackedBatch(context.Background(), packed)
	return labels, err
}

// ListModels returns the registry listing of the first shard group that
// answers (geometry fields reflect that replica's slice).
func (s *Sharded) ListModels() ([]ModelInfo, error) {
	listings, err := s.co.ListModels(context.Background())
	if err != nil {
		return nil, err
	}
	return modelInfosFromListings(listings), nil
}

// Traces snapshots the process-wide client-side flight recorder.
func (s *Sharded) Traces() TraceSnapshot { return ClientTraces() }

// Close releases every shard group's connections.
func (s *Sharded) Close() error { return s.co.Close() }
