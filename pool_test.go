package privehd_test

//lint:file-ignore SA1019 the deprecated constructors stay fully supported; these tests pin their behavior

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privehd"

	"privehd/internal/offload"
)

// startRegistryReplicas serves the same registry from n loopback
// listeners — a one-process replica fleet — and returns their addresses,
// servers, and a cleanup func.
func startRegistryReplicas(t *testing.T, reg *privehd.Registry, n int) ([]string, []*privehd.Server) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*privehd.Server, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := privehd.NewRegistryServer(reg)
		done := make(chan error, 1)
		go func() { done <- srv.Serve(context.Background(), lis) }()
		t.Cleanup(func() {
			srv.Close()
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("replica Serve returned %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Error("replica did not stop")
			}
		})
		addrs[i] = lis.Addr().String()
		servers[i] = srv
	}
	return addrs, servers
}

func TestDialPoolPredict(t *testing.T) {
	pipe, X, y := toyPipeline(t)
	addr, srv, cleanup := startPipelineServer(t, pipe)
	defer cleanup()

	// nil edge: the pool auto-configures one from the advertised encoder
	// setup, exactly like DialModel.
	pool, err := privehd.DialPool(context.Background(), "tcp", addr, nil, privehd.WithPoolSize(3))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Edge() == nil || pool.Edge().Dim() != pipe.Dim() {
		t.Fatalf("auto-configured edge = %+v", pool.Edge())
	}
	if pool.Model() != privehd.DefaultModelName {
		t.Errorf("pool bound to %q", pool.Model())
	}

	labels, err := pool.PredictBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, l := range labels {
		if l == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(y)); acc < 0.9 {
		t.Errorf("pooled accuracy %v on separable toy task", acc)
	}

	// Concurrent callers multiplex over the bounded connection set.
	const callers = 16
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		idx := i % len(X)
		go func() {
			label, scores, err := pool.Predict(X[idx])
			if err != nil {
				errs <- err
				return
			}
			if label != labels[idx] || len(scores) != pipe.Classes() {
				errs <- fmt.Errorf("sample %d: got %d want %d", idx, label, labels[idx])
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if st := pool.Stats(); st.Conns < 1 || st.Conns > 3 {
		t.Errorf("pool stats = %+v, want 1..3 conns", st)
	}
	if srv.Served() != len(X)+callers {
		t.Errorf("Served = %d, want %d", srv.Served(), len(X)+callers)
	}
}

func TestDialPoolUnknownModelTyped(t *testing.T) {
	pipe, _, _ := toyPipeline(t)
	addr, _, cleanup := startPipelineServer(t, pipe)
	defer cleanup()
	_, err := privehd.DialPool(context.Background(), "tcp", addr, nil,
		privehd.WithPoolModel("ghost"))
	if !errors.Is(err, privehd.ErrUnknownModel) {
		t.Errorf("DialPool(ghost) = %v, want ErrUnknownModel", err)
	}
}

func TestDialClusterUnknownModelTyped(t *testing.T) {
	pipe, _, _ := toyPipeline(t)
	reg := privehd.NewRegistry()
	if err := reg.Register("real", pipe); err != nil {
		t.Fatal(err)
	}
	addrs, _ := startRegistryReplicas(t, reg, 2)
	_, err := privehd.DialCluster(context.Background(), "tcp", addrs, nil,
		privehd.WithClusterModel("ghost"))
	if !errors.Is(err, privehd.ErrUnknownModel) {
		t.Errorf("DialCluster(ghost) = %v, want ErrUnknownModel", err)
	}
	if errors.Is(err, privehd.ErrNoHealthyReplicas) {
		t.Errorf("protocol rejection misreported as dead fleet: %v", err)
	}
}

func TestDialClusterFailover(t *testing.T) {
	pipe, X, y := toyPipeline(t)
	reg := privehd.NewRegistry()
	if err := reg.Register("toy", pipe); err != nil {
		t.Fatal(err)
	}
	addrs, servers := startRegistryReplicas(t, reg, 3)

	cl, err := privehd.DialCluster(context.Background(), "tcp", addrs, nil,
		privehd.WithClusterModel("toy"),
		privehd.WithClusterProbeInterval(100*time.Millisecond),
		privehd.WithClusterPool(privehd.WithPoolIOTimeout(5*time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const callers, rounds = 16, 12
	var total, succeeded, typed atomic.Int64
	killAt := make(chan struct{})
	var killOnce sync.Once
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		idx := i % len(X)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				label, _, err := cl.Predict(X[idx])
				switch {
				case err == nil:
					if label != y[idx] {
						errs <- fmt.Errorf("sample %d misclassified as %d under failover", idx, label)
						return
					}
					succeeded.Add(1)
				case errors.Is(err, privehd.ErrTransport):
					typed.Add(1) // includes ErrNoHealthyReplicas
				default:
					errs <- fmt.Errorf("untyped failover error: %v", err)
					return
				}
				if total.Add(1) == callers*rounds/3 {
					killOnce.Do(func() { close(killAt) })
				}
			}
			errs <- nil
		}()
	}
	go func() {
		<-killAt
		servers[1].Close() // kill a replica mid-run, dropping its conns
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("cluster predictions hung")
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := succeeded.Load() + typed.Load(); got != callers*rounds {
		t.Fatalf("accounted %d of %d predictions", got, callers*rounds)
	}
	if succeeded.Load() < callers*rounds*9/10 {
		t.Errorf("only %d/%d predictions survived the replica kill", succeeded.Load(), callers*rounds)
	}
	deadline := time.Now().Add(5 * time.Second)
	for cl.Replicas()[1].Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("killed replica never ejected: %+v", cl.Replicas())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestListModelsDiscovery(t *testing.T) {
	// Remote, Pool and Cluster all discover the registry over the wire.
	p1, X, _ := toyPipeline(t)
	p2, _, _ := toyPipeline(t, privehd.WithDim(256))
	reg := privehd.NewRegistry()
	if err := reg.Register("small", p2); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("big", p1); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetDefault("big"); err != nil {
		t.Fatal(err)
	}
	addrs, _ := startRegistryReplicas(t, reg, 1)

	check := func(t *testing.T, models []privehd.ModelInfo) {
		t.Helper()
		if len(models) != 2 {
			t.Fatalf("listed %d models", len(models))
		}
		if models[0].Name != "big" || !models[0].Default || models[0].Dim != 512 {
			t.Errorf("big = %+v", models[0])
		}
		if models[1].Name != "small" || models[1].Default || models[1].Dim != 256 {
			t.Errorf("small = %+v", models[1])
		}
	}

	remote, err := privehd.DialModel(context.Background(), "tcp", addrs[0], "big")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	models, err := remote.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	check(t, models)
	// Registry.Models agrees with the wire listing (Default included).
	check(t, reg.Models())

	pool, err := privehd.DialPool(context.Background(), "tcp", addrs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	models, err = pool.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	check(t, models)

	cl, err := privehd.DialCluster(context.Background(), "tcp", addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	models, err = cl.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	check(t, models)

	// Discovery enables name-free workflows: pick a model from the wire
	// listing and predict through it.
	if _, _, err := pool.Predict(X[0]); err != nil {
		t.Fatal(err)
	}
}

// legacyHello mirrors the v2/v3 client Hello wire shape.
type legacyHello struct {
	Dim     int
	Classes int
	Model   string // ignored by v2 servers; gob omits the zero value
}

// legacyReply mirrors the v2/v3 client's view of a Reply: no ID, no
// Models — gob drops the newer fields.
type legacyReply struct {
	Code    string
	Detail  string
	Results []offload.Result
}

// roundTripLegacy runs one hand-rolled v2 or v3 session against addr.
func roundTripLegacy(t *testing.T, addr string, version byte, dim int, query []float64) legacyReply {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{'P', 'H', 'D', version}); err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(legacyHello{Dim: dim}); err != nil {
		t.Fatal(err)
	}
	var hello offload.ServerHello
	if err := dec.Decode(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Code != "" {
		t.Fatalf("v%d handshake rejected: %s (%s)", version, hello.Code, hello.Detail)
	}
	if hello.Version != version {
		t.Fatalf("server answered v%d to a v%d client", hello.Version, version)
	}
	if err := enc.Encode(struct{ Queries []offload.Query }{[]offload.Query{{Vector: query}}}); err != nil {
		t.Fatal(err)
	}
	var reply legacyReply
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestLegacyClientsServedAlongsidePool(t *testing.T) {
	// Regression for the v4 upgrade: while a pipelined Pool hammers the
	// server, byte-faithful v2 and v3 clients must still be served
	// in-order against the default model.
	pipe, X, y := toyPipeline(t)
	addr, _, cleanup := startPipelineServer(t, pipe)
	defer cleanup()

	pool, err := privehd.DialPool(context.Background(), "tcp", addr, nil, privehd.WithPoolSize(2))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	stop := make(chan struct{})
	poolErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				poolErr <- nil
				return
			default:
			}
			if _, err := pool.PredictBatch(X[:8]); err != nil {
				poolErr <- err
				return
			}
		}
	}()

	edge, err := pipe.Edge()
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range []byte{2, 3} {
		for i := 0; i < 4; i++ {
			q, err := edge.Prepare(X[i])
			if err != nil {
				t.Fatal(err)
			}
			reply := roundTripLegacy(t, addr, version, pipe.Dim(), q)
			if reply.Code != "" {
				t.Fatalf("v%d frame rejected: %s", version, reply.Code)
			}
			if len(reply.Results) != 1 || reply.Results[0].Label != y[i] {
				t.Errorf("v%d client got %+v for sample %d (want label %d)", version, reply.Results, i, y[i])
			}
		}
	}
	close(stop)
	if err := <-poolErr; err != nil {
		t.Fatalf("pool traffic failed alongside legacy clients: %v", err)
	}
}

func TestDialWithIOTimeoutUnblocksHungServer(t *testing.T) {
	// Public half of the WithIOTimeout satellite: a server that handshakes
	// then goes silent must not block Predict forever.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		dec := gob.NewDecoder(conn)
		var hello offload.Hello
		if err := dec.Decode(&hello); err != nil {
			return
		}
		gob.NewEncoder(conn).Encode(offload.ServerHello{
			Version: privehd.ProtocolVersion, Dim: hello.Dim, Classes: 2, MaxBatch: 8,
		})
		io.Copy(io.Discard, conn) // read requests forever, answer nothing
	}()

	edge, err := privehd.NewEdge(
		privehd.WithFeatures(12), privehd.WithDim(512), privehd.WithLevels(8))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := privehd.Dial(context.Background(), "tcp", lis.Addr().String(), edge,
		privehd.WithIOTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	start := time.Now()
	_, _, err = remote.Predict(make([]float64, 12))
	if !errors.Is(err, privehd.ErrIOTimeout) || !errors.Is(err, privehd.ErrTransport) {
		t.Errorf("hung server: err = %v, want ErrIOTimeout wrapping ErrTransport", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("Predict blocked %v despite 150ms i/o timeout", elapsed)
	}
}
