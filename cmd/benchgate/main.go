// Command benchgate is the CI benchmark-regression gate: it parses `go test
// -bench` output, reduces repeated counts to per-benchmark medians, compares
// them against a committed baseline (BENCH_baseline.json) and fails the
// build when a hot path regresses.
//
// Cross-machine comparison is the hard part: the committed baseline was
// recorded on one machine and CI runs on another, so raw ns/op differ by a
// machine-speed factor. The gate therefore normalizes: it estimates the
// machine factor as the 25th-percentile current/baseline ratio across all
// shared benchmarks, then fails any benchmark whose own ratio exceeds
// threshold × that factor. A machine-speed difference shifts every ratio
// uniformly, so a low quantile tracks it; a regression shifts only the
// affected benchmarks upward, so it cannot drag the estimate with it
// unless it touches more than three quarters of the suite — which matters
// here, because most gated benchmarks share the scoring kernels, and a
// median would absorb a kernel-wide regression as "slower machine". (The
// residual blind spot — ≥75% of benchmarks regressing by the same factor —
// is the one a relative gate cannot see; the absolute history lives in the
// uploaded results artifacts.)
//
// allocs/op needs no normalization and is compared strictly: any increase
// on a zero-alloc baseline path fails, and other increases are reported as
// warnings.
//
// Usage:
//
//	go test -run '^$' -bench 'Scores|Predict|ServingThroughput|Encode|Observe|Trace' \
//	    -benchtime=100ms -count=5 ./... | tee bench.txt
//	go run ./cmd/benchgate -baseline BENCH_baseline.json -in bench.txt \
//	    -out bench_results.json
//
// Refresh the baseline after an intentional performance change with
// -update, which rewrites the baseline from the current input and exits 0.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded figures.
type Entry struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Baseline is the committed BENCH_baseline.json document.
type Baseline struct {
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// sample is one parsed benchmark result line.
type sample struct {
	ns     float64
	allocs float64
	hasNs  bool
	hasAll bool
}

// numericSuffix returns the value of a trailing "-<digits>" group of a
// benchmark name, or "" if there is none.
func numericSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i+1:]
}

// parseBench reads `go test -bench` output, keyed "pkg BenchmarkName/sub".
// The GOMAXPROCS suffix ("-8") is stripped, but only when every benchmark
// line in the run carries the same trailing number: Go appends the suffix
// uniformly (and only when GOMAXPROCS > 1), whereas a name that merely ends
// in "-<digits>" (say BenchmarkFoo/block-128) does not match its neighbours
// — so such names survive intact on single-CPU runs instead of being
// mangled into a key that a multi-core run would never produce. Repeated
// -count runs accumulate per key.
func parseBench(r *bufio.Scanner) (map[string][]sample, error) {
	type row struct {
		key string
		s   sample
	}
	var rows []row
	suffix, uniform := "", true
	pkg := ""
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		var s sample
		// Fields come in value/unit pairs after the iteration count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.ns, s.hasNs = v, true
			case "allocs/op":
				s.allocs, s.hasAll = v, true
			}
		}
		if !s.hasNs {
			continue
		}
		switch sfx := numericSuffix(fields[0]); {
		case sfx == "":
			uniform = false
		case suffix == "":
			suffix = sfx
		case sfx != suffix:
			uniform = false
		}
		rows = append(rows, row{key: pkg + " " + fields[0], s: s})
	}
	out := map[string][]sample{}
	trim := ""
	if uniform && suffix != "" {
		trim = "-" + suffix
	}
	for _, r := range rows {
		key := strings.TrimSuffix(r.key, trim)
		out[key] = append(out[key], r.s)
	}
	return out, r.Err()
}

// median reduces samples to one figure per axis.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// lowQuantile returns the value at the floor of the q-th position — biased
// low on purpose: when estimating the machine factor, interpolating upward
// into a regressed majority would hide the regression, while rounding down
// onto an unaffected anchor keeps it visible.
func lowQuantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[int(q*float64(len(s)-1))]
}

// reduce collapses parsed samples into per-benchmark median entries.
func reduce(samples map[string][]sample) map[string]Entry {
	out := make(map[string]Entry, len(samples))
	for key, ss := range samples {
		var ns, allocs []float64
		hasAllocs := false
		for _, s := range ss {
			ns = append(ns, s.ns)
			if s.hasAll {
				allocs = append(allocs, s.allocs)
				hasAllocs = true
			}
		}
		e := Entry{NsPerOp: median(ns)}
		if hasAllocs {
			a := median(allocs)
			e.AllocsPerOp = &a
		}
		out[key] = e
	}
	return out
}

// finding is one gate decision worth printing.
type finding struct {
	fatal bool
	msg   string
}

// compare applies the normalized threshold gate; threshold is the allowed
// per-benchmark slowdown over the machine factor (e.g. 1.2 = 20%).
func compare(base, cur map[string]Entry, threshold float64) []finding {
	var out []finding
	shared := make([]string, 0, len(base))
	var ratios []float64
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			out = append(out, finding{true, fmt.Sprintf("MISSING   %s: in baseline but not in current run — a hot-path benchmark vanished (refresh the baseline with -update if intentional)", name)})
			continue
		}
		if b.NsPerOp > 0 {
			shared = append(shared, name)
			ratios = append(ratios, c.NsPerOp/b.NsPerOp)
		}
	}
	// 25th percentile, not median: most gated benchmarks share the scoring
	// kernels, and a median would absorb a kernel-wide regression into the
	// machine factor. A regression now hides only by touching >75% of the
	// suite.
	factor := lowQuantile(ratios, 0.25)
	if factor == 0 {
		factor = 1
	}
	out = append(out, finding{false, fmt.Sprintf("machine factor: %.3f (25th-percentile current/baseline over %d shared benchmarks)", factor, len(shared))})
	if factor < 1/threshold {
		// A factor this far below 1 means most benchmarks got faster —
		// either a faster runner, or real improvements the committed
		// baseline predates. In the latter case any benchmark the
		// improvement did NOT touch can show up below as "REGRESSED"
		// relative to the improved majority; say so, instead of sending
		// the author hunting a regression that never happened.
		out = append(out, finding{false, fmt.Sprintf("note: factor %.3f < 1/threshold — most benchmarks improved relative to the baseline; any REGRESSED finding in this report may be an unchanged path lagging the improvement (refresh with -update after verifying)", factor)})
	}
	sort.Strings(shared)
	for _, name := range shared {
		b, c := base[name], cur[name]
		ratio := c.NsPerOp / b.NsPerOp
		norm := ratio / factor
		if norm > threshold {
			out = append(out, finding{true, fmt.Sprintf("REGRESSED %s: %.0f ns/op vs baseline %.0f (normalized ×%.2f > ×%.2f)",
				name, c.NsPerOp, b.NsPerOp, norm, threshold)})
		}
		if b.AllocsPerOp != nil {
			switch {
			case c.AllocsPerOp == nil:
				// The alloc contract must not rot silently: a benchmark
				// that stops calling ReportAllocs would otherwise skip
				// this check forever.
				out = append(out, finding{true, fmt.Sprintf("ALLOCS    %s: baseline records allocs/op but the current run reports none — ReportAllocs removed? (refresh with -update if intentional)", name)})
			case *b.AllocsPerOp == 0 && *c.AllocsPerOp > 0:
				out = append(out, finding{true, fmt.Sprintf("ALLOCS    %s: %.0f allocs/op on a zero-alloc path", name, *c.AllocsPerOp)})
			case *c.AllocsPerOp > *b.AllocsPerOp:
				out = append(out, finding{false, fmt.Sprintf("warning:  %s: allocs/op %.0f vs baseline %.0f", name, *c.AllocsPerOp, *b.AllocsPerOp)})
			}
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			out = append(out, finding{false, fmt.Sprintf("new:      %s (not in baseline; will be gated once the baseline is refreshed)", name)})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].fatal && !out[j].fatal })
	return out
}

func writeJSON(path string, doc Baseline) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func run() int {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline to gate against")
	inPath := flag.String("in", "-", "go test -bench output ('-' for stdin)")
	outPath := flag.String("out", "", "write the current run's reduced results JSON here (the CI artifact)")
	threshold := flag.Float64("threshold", 1.2, "allowed normalized ns/op ratio before failing (1.2 = 20% regression)")
	update := flag.Bool("update", false, "rewrite the baseline from the current input instead of gating")
	flag.Parse()

	in := os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	samples, err := parseBench(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: reading input:", err)
		return 2
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results in input")
		return 2
	}
	cur := reduce(samples)
	curDoc := Baseline{
		Note:       "Medians of `go test -run '^$' -bench 'Scores|Predict|ServingThroughput|Encode|Observe|Trace' -benchtime=100ms -count=5 ./...`; refresh with `go run ./cmd/benchgate -in bench.txt -update`.",
		Benchmarks: cur,
	}
	if *outPath != "" {
		if err := writeJSON(*outPath, curDoc); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: writing results:", err)
			return 2
		}
	}
	if *update {
		if err := writeJSON(*baselinePath, curDoc); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: writing baseline:", err)
			return 2
		}
		fmt.Printf("benchgate: baseline %s updated with %d benchmarks\n", *baselinePath, len(cur))
		return 0
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err, "(generate it with -update)")
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: parsing baseline:", err)
		return 2
	}

	findings := compare(base.Benchmarks, cur, *threshold)
	failed := false
	for _, f := range findings {
		fmt.Println(f.msg)
		failed = failed || f.fatal
	}
	if failed {
		fmt.Println("benchgate: FAIL — hot-path regression against", *baselinePath)
		return 1
	}
	fmt.Printf("benchgate: OK — %d benchmarks within ×%.2f of baseline\n", len(cur), *threshold)
	return 0
}

func main() { os.Exit(run()) }
