package main

import (
	"bufio"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: privehd/internal/intscore
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScoresPacked/float64-expand-8         	     500	     76842 ns/op	   32768 B/op	       1 allocs/op
BenchmarkScoresPacked/float64-expand-8         	     500	     73960 ns/op	   32768 B/op	       1 allocs/op
BenchmarkScoresPacked/intscore-8               	     500	     32834 ns/op	       0 B/op	       0 allocs/op
BenchmarkScoresPacked/intscore-8               	     500	     32705 ns/op	       0 B/op	       0 allocs/op
PASS
pkg: privehd
BenchmarkServingThroughput/single-conn-8       	     300	    129093 ns/op	         7750 queries/s
PASS
`

func parse(t *testing.T, text string) map[string]Entry {
	t.Helper()
	samples, err := parseBench(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	return reduce(samples)
}

func TestParseReduce(t *testing.T) {
	cur := parse(t, benchOutput)
	e, ok := cur["privehd/internal/intscore BenchmarkScoresPacked/intscore"]
	if !ok {
		t.Fatalf("missing intscore benchmark; got keys %v", keys(cur))
	}
	if e.NsPerOp != (32834+32705)/2.0 {
		t.Fatalf("median ns/op = %v", e.NsPerOp)
	}
	if e.AllocsPerOp == nil || *e.AllocsPerOp != 0 {
		t.Fatalf("allocs/op = %v, want 0", e.AllocsPerOp)
	}
	// The -cpu suffix must be stripped, and custom metrics must not be
	// mistaken for ns/op.
	s, ok := cur["privehd BenchmarkServingThroughput/single-conn"]
	if !ok {
		t.Fatalf("missing serving benchmark; got keys %v", keys(cur))
	}
	if s.NsPerOp != 129093 {
		t.Fatalf("serving ns/op = %v", s.NsPerOp)
	}
}

// TestParseSingleCPUSuffix: without a GOMAXPROCS suffix (GOMAXPROCS=1),
// a benchmark whose own name ends in "-<digits>" must not be mangled —
// only a trailing number shared by every line is the procs suffix.
func TestParseSingleCPUSuffix(t *testing.T) {
	const singleCPU = `pkg: privehd/internal/intscore
BenchmarkScoresPacked/block-128     	     500	     32834 ns/op
BenchmarkScoresPacked/plain         	     500	     30000 ns/op
PASS
`
	cur := parse(t, singleCPU)
	if _, ok := cur["privehd/internal/intscore BenchmarkScoresPacked/block-128"]; !ok {
		t.Fatalf("block-128 was mangled; got keys %v", keys(cur))
	}
	// And a uniform trailing number IS stripped even when a name also ends
	// in digits before it.
	const multiCPU = `pkg: privehd/internal/intscore
BenchmarkScoresPacked/block-128-8   	     500	     32834 ns/op
BenchmarkScoresPacked/plain-8       	     500	     30000 ns/op
PASS
`
	cur = parse(t, multiCPU)
	if _, ok := cur["privehd/internal/intscore BenchmarkScoresPacked/block-128"]; !ok {
		t.Fatalf("procs suffix not stripped from block-128-8; got keys %v", keys(cur))
	}
}

func keys(m map[string]Entry) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func entries(pairs map[string]float64, allocs map[string]float64) map[string]Entry {
	out := map[string]Entry{}
	for k, ns := range pairs {
		e := Entry{NsPerOp: ns}
		if a, ok := allocs[k]; ok {
			a := a
			e.AllocsPerOp = &a
		}
		out[k] = e
	}
	return out
}

func hasFatal(fs []finding) bool {
	for _, f := range fs {
		if f.fatal {
			return true
		}
	}
	return false
}

// TestCompareMachineNormalization: a uniformly slower machine does not fail
// the gate, because the median ratio absorbs the machine factor.
func TestCompareMachineNormalization(t *testing.T) {
	base := entries(map[string]float64{"a": 100, "b": 200, "c": 400}, nil)
	cur := entries(map[string]float64{"a": 210, "b": 420, "c": 840}, nil)
	if hasFatal(compare(base, cur, 1.2)) {
		t.Fatal("uniform 2.1x slowdown (slower machine) must not fail the gate")
	}
}

// TestCompareSharedKernelRegression: a regression that hits most — but not
// all — of the suite must still fail. Most gated benchmarks share the
// scoring kernels, so the machine factor is a low quantile: only the
// unaffected minority anchors it.
func TestCompareSharedKernelRegression(t *testing.T) {
	base := entries(map[string]float64{"k1": 100, "k2": 100, "k3": 100, "k4": 100, "k5": 100, "k6": 100, "anchor1": 100, "anchor2": 100}, nil)
	cur := entries(map[string]float64{"k1": 200, "k2": 200, "k3": 200, "k4": 200, "k5": 200, "k6": 200, "anchor1": 100, "anchor2": 100}, nil)
	if !hasFatal(compare(base, cur, 1.2)) {
		t.Fatal("2x regression of 6/8 kernel-sharing benchmarks must fail the gate")
	}
}

// TestCompareSingleRegression: one hot path regressing >20% fails even
// though the rest of the suite is steady — the deliberate local check the
// acceptance criteria call for.
func TestCompareSingleRegression(t *testing.T) {
	base := entries(map[string]float64{"a": 100, "b": 200, "c": 400, "d": 100}, nil)
	cur := entries(map[string]float64{"a": 100, "b": 200, "c": 400, "d": 135}, nil)
	fs := compare(base, cur, 1.2)
	if !hasFatal(fs) {
		t.Fatal("35% regression of one benchmark must fail the gate")
	}
	// And 15% stays under the threshold.
	cur = entries(map[string]float64{"a": 100, "b": 200, "c": 400, "d": 115}, nil)
	if hasFatal(compare(base, cur, 1.2)) {
		t.Fatal("15% drift must not fail the gate")
	}
}

// TestCompareZeroAllocRegression: any alloc on a zero-alloc path fails,
// regardless of timing.
func TestCompareZeroAllocRegression(t *testing.T) {
	base := entries(map[string]float64{"a": 100, "b": 100}, map[string]float64{"a": 0})
	cur := entries(map[string]float64{"a": 100, "b": 100}, map[string]float64{"a": 1})
	if !hasFatal(compare(base, cur, 1.2)) {
		t.Fatal("alloc increase on zero-alloc path must fail the gate")
	}
	// A non-zero baseline growing allocs only warns.
	base = entries(map[string]float64{"a": 100}, map[string]float64{"a": 2})
	cur = entries(map[string]float64{"a": 100}, map[string]float64{"a": 3})
	if hasFatal(compare(base, cur, 1.2)) {
		t.Fatal("alloc increase on non-zero path should warn, not fail")
	}
	// A benchmark that stops reporting allocs while the baseline records
	// them fails — the contract must not rot silently.
	base = entries(map[string]float64{"a": 100}, map[string]float64{"a": 0})
	cur = entries(map[string]float64{"a": 100}, nil)
	if !hasFatal(compare(base, cur, 1.2)) {
		t.Fatal("vanished allocs/op reporting must fail the gate")
	}
}

// TestCompareMissingBenchmark: a benchmark that silently vanishes from the
// run fails the gate (the baseline must be refreshed deliberately).
func TestCompareMissingBenchmark(t *testing.T) {
	base := entries(map[string]float64{"a": 100, "b": 100}, nil)
	cur := entries(map[string]float64{"a": 100}, nil)
	if !hasFatal(compare(base, cur, 1.2)) {
		t.Fatal("missing benchmark must fail the gate")
	}
	// New benchmarks are fine.
	cur = entries(map[string]float64{"a": 100, "b": 100, "c": 50}, nil)
	if hasFatal(compare(base, cur, 1.2)) {
		t.Fatal("new benchmark must not fail the gate")
	}
}
