package main

import "testing"

func TestRunTrainSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	err := runTrain([]string{
		"-dataset", "face-s", "-dim", "1000", "-levels", "10",
		"-quant", "ternary", "-epochs", "1", "-small",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTrainPrivateAndSave(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	out := t.TempDir() + "/model.gob"
	err := runTrain([]string{
		"-dataset", "face-s", "-dim", "1000", "-levels", "10",
		"-quant", "ternary-biased", "-keep", "500", "-eps", "8", "-small",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTrainBadFlags(t *testing.T) {
	if err := runTrain([]string{"-dataset", "nope", "-small"}); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := runTrain([]string{"-quant", "nope", "-small"}); err == nil {
		t.Error("unknown quantizer should fail")
	}
}

func TestRunAttackSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("encodes samples")
	}
	err := runAttack([]string{
		"-dataset", "mnist-s", "-dim", "2000", "-levels", "10",
		"-quantize", "-mask", "500", "-samples", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReport(t *testing.T) {
	err := runReport([]string{
		"-dataset", "isolet-s", "-dim", "10000", "-quant", "ternary-biased",
		"-keep", "1000", "-eps", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unquantized path.
	if err := runReport([]string{"-quant", "full", "-eps", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportBadEpsilon(t *testing.T) {
	if err := runReport([]string{"-eps", "-1"}); err == nil {
		t.Error("negative epsilon should fail")
	}
}

func TestRunInferNoServer(t *testing.T) {
	// Dialing a dead port must error out, not hang.
	err := runInfer([]string{"-addr", "127.0.0.1:1", "-dim", "500", "-levels", "4", "-samples", "1"})
	if err == nil {
		t.Error("expected connection error")
	}
}
