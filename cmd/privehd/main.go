// Command privehd is the Prive-HD command line: train differentially
// private HD models on the standard workloads, demonstrate the
// reconstruction attack, and inspect privacy reports. It is built entirely
// on the public privehd package.
//
// Usage:
//
//	privehd train  [-dataset isolet-s] [-dim 10000] [-quant ternary-biased]
//	               [-keep 0] [-epochs 2] [-eps 0] [-delta 1e-5] [-out model.gob]
//	privehd attack [-dataset mnist-s] [-dim 10000] [-quantize] [-mask 0]
//	privehd report [-dataset isolet-s] [-dim 10000] [-quant ternary-biased]
//	               [-keep 1000] [-eps 1] [-delta 1e-5]
//	privehd infer  [-addr 127.0.0.1:7311] [-dataset isolet-s] [-quantize] [-mask 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"privehd"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = runTrain(os.Args[2:])
	case "attack":
		err = runAttack(os.Args[2:])
	case "report":
		err = runReport(os.Args[2:])
	case "infer":
		err = runInfer(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "privehd: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "privehd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `privehd — privacy-preserved hyperdimensional computing

commands:
  train    train a (optionally differentially private) HD model and report accuracy
  attack   reconstruct inputs from encoded queries (the paper's privacy breach demo)
  report   print the privacy calibration (sensitivity, sigma, noise) without training
  infer    classify test inputs against a privehd-serve instance over TCP

run 'privehd <command> -h' for flags.`)
}

// commonFlags adds the flags shared by subcommands.
type commonFlags struct {
	dataset string
	dim     int
	levels  int
	seed    uint64
}

func addCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{}
	fs.StringVar(&c.dataset, "dataset", "isolet-s",
		"workload: "+strings.Join(privehd.DatasetNames(), ", "))
	fs.IntVar(&c.dim, "dim", 10000, "hypervector dimensionality D_hv")
	fs.IntVar(&c.levels, "levels", 100, "feature quantization levels ℓ_iv")
	fs.Uint64Var(&c.seed, "seed", 1, "random seed")
	return c
}

// addEncoding registers the -encoding flag; the default differs per
// subcommand (the attack analysis is written against the scalar form).
func addEncoding(fs *flag.FlagSet, def string) *string {
	return fs.String("encoding", def, "paper encoding: level (Eq. 2b) or scalar (Eq. 2a); edge and server must match")
}

func parseEncoding(name string) (privehd.Encoding, error) {
	switch name {
	case "level":
		return privehd.Level, nil
	case "scalar":
		return privehd.Scalar, nil
	}
	return 0, fmt.Errorf("unknown encoding %q (valid: level, scalar)", name)
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	c := addCommon(fs)
	quantName := fs.String("quant", "ternary-biased", "encoding quantization: full, bipolar, ternary, ternary-biased, 2bit")
	keep := fs.Int("keep", 0, "prune the model to this many dimensions (0 = no pruning)")
	epochs := fs.Int("epochs", 2, "retraining epochs")
	eps := fs.Float64("eps", 0, "differential privacy ε (0 = non-private)")
	delta := fs.Float64("delta", 1e-5, "differential privacy δ")
	out := fs.String("out", "", "write the trained pipeline (gob) to this path")
	small := fs.Bool("small", false, "use the small dataset scale (quick demo)")
	encName := addEncoding(fs, "level")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, err := privehd.LoadDataset(c.dataset, *small)
	if err != nil {
		return err
	}
	enc, err := parseEncoding(*encName)
	if err != nil {
		return err
	}
	pipe, err := privehd.New(
		privehd.WithDim(c.dim),
		privehd.WithLevels(c.levels),
		privehd.WithSeed(c.seed),
		privehd.WithEncoding(enc),
		privehd.WithQuantizer(*quantName),
		privehd.WithPruning(*keep),
		privehd.WithRetrain(*epochs),
		privehd.WithNoise(*eps, *delta),
	)
	if err != nil {
		return err
	}

	start := time.Now()
	if err := pipe.Train(d.TrainX, d.TrainY); err != nil {
		return err
	}
	trainTime := time.Since(start)
	acc, err := pipe.Evaluate(d.TestX, d.TestY)
	if err != nil {
		return err
	}

	r := pipe.Report()
	fmt.Printf("dataset      %s (%d train / %d test, %d features, %d classes)\n",
		d.Name, len(d.TrainX), len(d.TestX), d.Features, d.Classes)
	fmt.Printf("model        D=%d kept=%d quant=%s encoding=%s epochs=%d\n",
		r.Dim, r.KeptDims, r.Quantizer, pipe.Encoding(), *epochs)
	if r.Private {
		fmt.Printf("privacy      (ε=%g, δ=%g)  ∆f=%.2f  σ=%.2f  noise std=%.2f\n",
			r.Epsilon, r.Delta, r.Sensitivity, r.SigmaFactor, r.NoiseStd)
	} else {
		fmt.Printf("privacy      none (non-private baseline)\n")
	}
	fmt.Printf("accuracy     %.2f%%\n", 100*acc)
	fmt.Printf("train time   %v\n", trainTime.Round(time.Millisecond))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pipe.Save(f); err != nil {
			return err
		}
		fmt.Printf("pipeline saved  %s\n", *out)
	}
	return nil
}

func runAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	c := addCommon(fs)
	quantize := fs.Bool("quantize", false, "apply the §III-C 1-bit defence to the query")
	mask := fs.Int("mask", 0, "mask this many query dimensions (defence strength)")
	samples := fs.Int("samples", 3, "how many test inputs to attack")
	encName := addEncoding(fs, "scalar")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, err := privehd.LoadDataset(c.dataset, true)
	if err != nil {
		return err
	}
	enc, err := parseEncoding(*encName)
	if err != nil {
		return err
	}
	edgeOpts := []privehd.Option{
		privehd.WithDim(c.dim),
		privehd.WithLevels(c.levels),
		privehd.WithSeed(c.seed),
		privehd.WithFeatures(d.Features),
		privehd.WithEncoding(enc),
		privehd.WithQueryMask(*mask),
	}
	if !*quantize {
		edgeOpts = append(edgeOpts, privehd.WithRawQueries())
	}
	edge, err := privehd.NewEdge(edgeOpts...)
	if err != nil {
		return err
	}

	n := *samples
	if n > len(d.TestX) {
		n = len(d.TestX)
	}
	for i := 0; i < n; i++ {
		x := d.TestX[i]
		truth := edge.QuantizeTruth(x)
		query, err := edge.Prepare(x)
		if err != nil {
			return err
		}
		recon, err := edge.Reconstruct(query)
		if err != nil {
			return err
		}
		m := privehd.MeasureReconstruction(truth, recon)
		fmt.Printf("sample %d (label %d): MSE %.4f, PSNR %.1f dB\n", i, d.TestY[i], m.MSE, m.PSNR)
		if d.ImageWidth > 0 {
			orig := privehd.RenderASCII(truth, d.ImageWidth)
			rec := privehd.RenderASCII(recon, d.ImageWidth)
			fmt.Println(privehd.SideBySide(orig, rec, " | "))
		}
	}
	return nil
}

func runInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	c := addCommon(fs)
	addr := fs.String("addr", "127.0.0.1:7311", "privehd-serve address")
	quantize := fs.Bool("quantize", true, "1-bit quantize queries before offloading (§III-C)")
	mask := fs.Int("mask", 0, "mask this many query dimensions before offloading")
	samples := fs.Int("samples", 50, "how many test inputs to classify")
	timeout := fs.Duration("timeout", 10*time.Second, "dial/handshake timeout")
	// Scalar default: 1-bit offloaded queries against a full-precision
	// model (the plain privehd-serve pairing) need the Eq. 2a form; when
	// serving a level-encoded pipeline (-model), pass -encoding level to
	// match — the server banner says which.
	encName := addEncoding(fs, "scalar")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := privehd.LoadDataset(c.dataset, true)
	if err != nil {
		return err
	}
	enc, err := parseEncoding(*encName)
	if err != nil {
		return err
	}
	edgeOpts := []privehd.Option{
		privehd.WithDim(c.dim),
		privehd.WithLevels(c.levels),
		privehd.WithSeed(c.seed),
		privehd.WithFeatures(d.Features),
		privehd.WithEncoding(enc),
		privehd.WithQueryMask(*mask),
	}
	if !*quantize {
		edgeOpts = append(edgeOpts, privehd.WithRawQueries())
	}
	edge, err := privehd.NewEdge(edgeOpts...)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	client, err := privehd.Connect(ctx, privehd.Target{
		Addrs:    []string{*addr},
		Topology: privehd.TopologySingle,
	}, privehd.WithEdge(edge))
	if err != nil {
		return err
	}
	defer client.Close()
	remote := client.(*privehd.Remote)

	n := *samples
	if n > len(d.TestX) {
		n = len(d.TestX)
	}
	start := time.Now()
	labels, err := remote.PredictBatch(d.TestX[:n])
	if err != nil {
		return err
	}
	correct := 0
	for i, label := range labels {
		if label == d.TestY[i] {
			correct++
		}
	}
	fmt.Printf("classified %d queries in %v: %.1f%% correct (quantize=%v, mask=%d, server D=%d classes=%d)\n",
		n, time.Since(start).Round(time.Millisecond),
		100*float64(correct)/float64(n), *quantize, *mask, remote.Dim(), remote.Classes())
	return nil
}

func runReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	c := addCommon(fs)
	quantName := fs.String("quant", "ternary-biased", "encoding quantization scheme")
	keep := fs.Int("keep", 0, "effective dimensions after pruning (0 = all)")
	eps := fs.Float64("eps", 1, "differential privacy ε")
	delta := fs.Float64("delta", 1e-5, "differential privacy δ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := privehd.LoadDataset(c.dataset, true)
	if err != nil {
		return err
	}
	pipe, err := privehd.New(
		privehd.WithDim(c.dim),
		privehd.WithLevels(c.levels),
		privehd.WithFeatures(d.Features),
		privehd.WithQuantizer(*quantName),
		privehd.WithPruning(*keep),
		privehd.WithNoise(*eps, *delta),
	)
	if err != nil {
		return err
	}
	cal, err := pipe.Calibration()
	if err != nil {
		return err
	}
	fmt.Printf("dataset        %s (%d features)\n", d.Name, d.Features)
	fmt.Printf("geometry       D=%d, kept=%d, quant=%s\n", cal.Dim, cal.KeptDims, cal.Quantizer)
	fmt.Printf("sensitivity    ∆f = %.2f", cal.Sensitivity)
	if cal.Quantizer == "full" {
		fmt.Printf("  (Eq. 12, unquantized)\n")
	} else {
		fmt.Printf("  (Eq. 14)\n")
	}
	fmt.Printf("budget         (ε=%g, δ=%g)\n", cal.Epsilon, cal.Delta)
	fmt.Printf("noise          σ=%.3f, per-dimension std = ∆f·σ = %.2f\n", cal.SigmaFactor, cal.NoiseStd)
	fmt.Printf("vs unquantized ∆f would be %.0f at full dimension — %.0f× more noise\n",
		cal.RawSensitivity, cal.RawSensitivity/cal.Sensitivity)
	return nil
}
