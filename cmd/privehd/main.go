// Command privehd is the Prive-HD command line: train differentially
// private HD models on the standard workloads, demonstrate the
// reconstruction attack, and inspect privacy reports.
//
// Usage:
//
//	privehd train  [-dataset isolet-s] [-dim 10000] [-quant ternary-biased]
//	               [-keep 0] [-epochs 2] [-eps 0] [-delta 1e-5] [-out model.gob]
//	privehd attack [-dataset mnist-s] [-dim 10000] [-quantize] [-mask 0]
//	privehd report [-dataset isolet-s] [-dim 10000] [-quant ternary-biased]
//	               [-keep 1000] [-eps 1] [-delta 1e-5]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"privehd/internal/attack"
	"privehd/internal/core"
	"privehd/internal/dataset"
	"privehd/internal/dp"
	"privehd/internal/hdc"
	"privehd/internal/offload"
	"privehd/internal/quant"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = runTrain(os.Args[2:])
	case "attack":
		err = runAttack(os.Args[2:])
	case "report":
		err = runReport(os.Args[2:])
	case "infer":
		err = runInfer(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "privehd: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "privehd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `privehd — privacy-preserved hyperdimensional computing

commands:
  train    train a (optionally differentially private) HD model and report accuracy
  attack   reconstruct inputs from encoded queries (the paper's privacy breach demo)
  report   print the privacy calibration (sensitivity, sigma, noise) without training
  infer    classify test inputs against a privehd-serve instance over TCP

run 'privehd <command> -h' for flags.`)
}

// commonFlags adds the flags shared by subcommands.
type commonFlags struct {
	dataset string
	dim     int
	levels  int
	seed    uint64
}

func addCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{}
	fs.StringVar(&c.dataset, "dataset", "isolet-s", "workload: isolet-s, face-s or mnist-s")
	fs.IntVar(&c.dim, "dim", 10000, "hypervector dimensionality D_hv")
	fs.IntVar(&c.levels, "levels", 100, "feature quantization levels ℓ_iv")
	fs.Uint64Var(&c.seed, "seed", 1, "random seed")
	return c
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	c := addCommon(fs)
	quantName := fs.String("quant", "ternary-biased", "encoding quantization: full, bipolar, ternary, ternary-biased, 2bit")
	keep := fs.Int("keep", 0, "prune the model to this many dimensions (0 = no pruning)")
	epochs := fs.Int("epochs", 2, "retraining epochs")
	eps := fs.Float64("eps", 0, "differential privacy ε (0 = non-private)")
	delta := fs.Float64("delta", 1e-5, "differential privacy δ")
	out := fs.String("out", "", "write the trained model (gob) to this path")
	small := fs.Bool("small", false, "use the small dataset scale (quick demo)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale := dataset.Full
	if *small {
		scale = dataset.Small
	}
	d, err := dataset.ByName(c.dataset, scale)
	if err != nil {
		return err
	}
	q, err := quant.Parse(*quantName)
	if err != nil {
		return err
	}
	cfg := core.Config{
		HD:            hdc.Config{Dim: c.dim, Features: d.Features, Levels: c.levels, Seed: c.seed},
		Quantizer:     q,
		KeepDims:      *keep,
		RetrainEpochs: *epochs,
		NoiseSeed:     c.seed + 1,
	}
	if *eps > 0 {
		cfg.DP = &dp.Params{Epsilon: *eps, Delta: *delta}
	}

	start := time.Now()
	p, err := core.Train(cfg, d)
	if err != nil {
		return err
	}
	trainTime := time.Since(start)
	acc := p.Evaluate(d)

	r := p.Report()
	fmt.Printf("dataset      %s (%d train / %d test, %d features, %d classes)\n",
		d.Name, len(d.TrainX), len(d.TestX), d.Features, d.Classes)
	fmt.Printf("model        D=%d kept=%d quant=%s epochs=%d\n", r.Dim, r.KeptDims, r.Quantizer, *epochs)
	if r.Private {
		fmt.Printf("privacy      (ε=%g, δ=%g)  ∆f=%.2f  σ=%.2f  noise std=%.2f\n",
			r.Epsilon, r.Delta, r.Sensitivity, r.SigmaFactor, r.NoiseStd)
	} else {
		fmt.Printf("privacy      none (non-private baseline)\n")
	}
	fmt.Printf("accuracy     %.2f%%\n", 100*acc)
	fmt.Printf("train time   %v\n", trainTime.Round(time.Millisecond))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := p.Model().Save(f); err != nil {
			return err
		}
		fmt.Printf("model saved  %s\n", *out)
	}
	return nil
}

func runAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	c := addCommon(fs)
	quantize := fs.Bool("quantize", false, "apply the §III-C 1-bit defence to the query")
	mask := fs.Int("mask", 0, "mask this many query dimensions (defence strength)")
	samples := fs.Int("samples", 3, "how many test inputs to attack")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, err := dataset.ByName(c.dataset, dataset.Small)
	if err != nil {
		return err
	}
	edge, err := core.NewEdge(core.EdgeConfig{
		HD:       hdc.Config{Dim: c.dim, Features: d.Features, Levels: c.levels, Seed: c.seed},
		Encoding: core.EncodingScalar,
		Quantize: *quantize,
		MaskDims: *mask,
		MaskSeed: c.seed + 2,
	})
	if err != nil {
		return err
	}
	enc := edge.Encoder().(hdc.BaseProvider)
	scalarEnc := edge.Encoder().(*hdc.ScalarEncoder)

	n := *samples
	if n > len(d.TestX) {
		n = len(d.TestX)
	}
	for i := 0; i < n; i++ {
		x := d.TestX[i]
		truth := make([]float64, len(x))
		for k, v := range x {
			truth[k] = hdc.LevelValue(hdc.LevelIndex(v, scalarEnc.Levels()), scalarEnc.Levels())
		}
		query := edge.Prepare(x)
		recon, err := attack.DecodeScaled(enc, query)
		if err != nil {
			return err
		}
		m := attack.Measure(truth, recon)
		fmt.Printf("sample %d (label %d): MSE %.4f, PSNR %.1f dB\n", i, d.TestY[i], m.MSE, m.PSNR)
		if d.ImageWidth > 0 {
			orig := attack.RenderASCII(truth, d.ImageWidth)
			rec := attack.RenderASCII(recon, d.ImageWidth)
			fmt.Println(attack.SideBySide(orig, rec, " | "))
		}
	}
	return nil
}

func runInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	c := addCommon(fs)
	addr := fs.String("addr", "127.0.0.1:7311", "privehd-serve address")
	quantize := fs.Bool("quantize", true, "1-bit quantize queries before offloading (§III-C)")
	mask := fs.Int("mask", 0, "mask this many query dimensions before offloading")
	samples := fs.Int("samples", 50, "how many test inputs to classify")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := dataset.ByName(c.dataset, dataset.Small)
	if err != nil {
		return err
	}
	edge, err := core.NewEdge(core.EdgeConfig{
		HD:       hdc.Config{Dim: c.dim, Features: d.Features, Levels: c.levels, Seed: c.seed},
		Encoding: core.EncodingScalar,
		Quantize: *quantize,
		MaskDims: *mask,
		MaskSeed: c.seed + 2,
	})
	if err != nil {
		return err
	}
	client, err := offload.Dial("tcp", *addr)
	if err != nil {
		return err
	}
	defer client.Close()

	n := *samples
	if n > len(d.TestX) {
		n = len(d.TestX)
	}
	queries := edge.PrepareBatch(d.TestX[:n], 0)
	start := time.Now()
	labels, err := client.ClassifyBatch(queries)
	if err != nil {
		return err
	}
	correct := 0
	for i, label := range labels {
		if label == d.TestY[i] {
			correct++
		}
	}
	fmt.Printf("classified %d queries in %v: %.1f%% correct (quantize=%v, mask=%d)\n",
		n, time.Since(start).Round(time.Millisecond),
		100*float64(correct)/float64(n), *quantize, *mask)
	return nil
}

func runReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	c := addCommon(fs)
	quantName := fs.String("quant", "ternary-biased", "encoding quantization scheme")
	keep := fs.Int("keep", 0, "effective dimensions after pruning (0 = all)")
	eps := fs.Float64("eps", 1, "differential privacy ε")
	delta := fs.Float64("delta", 1e-5, "differential privacy δ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := dataset.ByName(c.dataset, dataset.Small)
	if err != nil {
		return err
	}
	q, err := quant.Parse(*quantName)
	if err != nil {
		return err
	}
	kept := c.dim
	if *keep > 0 && *keep < kept {
		kept = *keep
	}
	var sens float64
	if _, ok := q.(quant.Identity); ok {
		sens = quant.RawL2Sensitivity(kept, d.Features)
	} else {
		sens = quant.AnalyticL2Sensitivity(q, kept)
	}
	params := dp.Params{Epsilon: *eps, Delta: *delta}
	sigma, err := dp.SigmaFactor(params)
	if err != nil {
		return err
	}
	fmt.Printf("dataset        %s (%d features)\n", d.Name, d.Features)
	fmt.Printf("geometry       D=%d, kept=%d, quant=%s\n", c.dim, kept, q.Name())
	fmt.Printf("sensitivity    ∆f = %.2f", sens)
	if _, ok := q.(quant.Identity); ok {
		fmt.Printf("  (Eq. 12, unquantized)\n")
	} else {
		fmt.Printf("  (Eq. 14)\n")
	}
	fmt.Printf("budget         (ε=%g, δ=%g)\n", *eps, *delta)
	fmt.Printf("noise          σ=%.3f, per-dimension std = ∆f·σ = %.2f\n", sigma, sens*sigma)
	raw := quant.RawL2Sensitivity(c.dim, d.Features)
	fmt.Printf("vs unquantized ∆f would be %.0f at full dimension — %.0f× more noise\n",
		raw, raw/sens)
	return nil
}
