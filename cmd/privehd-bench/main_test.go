package main

import (
	"context"
	"testing"
	"time"
)

// smokeConfig is a fast hermetic run: tiny model, short window, metrics
// audit on — the same shape the CI smoke step uses at larger duration.
func smokeConfig(mode string) config {
	return config{
		selfserve:   2,
		dataset:     "isolet-s",
		dim:         512,
		model:       "bench",
		mode:        mode,
		concurrency: 4,
		rate:        400,
		duration:    300 * time.Millisecond,
		warmup:      100 * time.Millisecond,
		queries:     16,
		check:       true,
	}
}

func TestSelfServeClosedLoop(t *testing.T) {
	sum, err := run(context.Background(), smokeConfig("closed"), discard{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sum.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if sum.Errors != 0 {
		t.Fatalf("%d errors against a healthy selfserve fleet", sum.Errors)
	}
	if !sum.MetricsChecked || sum.ServerQueriesDelta != uint64(sum.Requests) {
		t.Fatalf("metrics audit: checked=%v server=%d client=%d",
			sum.MetricsChecked, sum.ServerQueriesDelta, sum.Requests)
	}
	if sum.P50ms <= 0 || sum.P99ms < sum.P50ms || sum.MaxMs < sum.P99ms {
		t.Fatalf("implausible percentiles: p50=%v p99=%v max=%v", sum.P50ms, sum.P99ms, sum.MaxMs)
	}
}

func TestSelfServeOpenLoop(t *testing.T) {
	sum, err := run(context.Background(), smokeConfig("open"), discard{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sum.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if sum.RateTarget != 400 {
		t.Fatalf("rate target not reported: %v", sum.RateTarget)
	}
	if sum.ServerQueriesDelta != uint64(sum.Requests) {
		t.Fatalf("metrics audit: server=%d client=%d", sum.ServerQueriesDelta, sum.Requests)
	}
}

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags(nil); err == nil {
		t.Error("no target accepted")
	}
	if _, err := parseFlags([]string{"-addrs", "a:1", "-selfserve", "2"}); err == nil {
		t.Error("-addrs with -selfserve accepted")
	}
	if _, err := parseFlags([]string{"-selfserve", "1", "-mode", "sideways"}); err == nil {
		t.Error("bogus mode accepted")
	}
	cfg, err := parseFlags([]string{"-addrs", "a:1,b:2", "-model", "m"})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(cfg.addrs) != 2 || cfg.model != "m" {
		t.Fatalf("cfg = %+v", cfg)
	}
	cfg, err = parseFlags([]string{"-selfserve", "3"})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.model != "bench" {
		t.Fatalf("selfserve default model = %q", cfg.model)
	}
}

func TestPercentiles(t *testing.T) {
	var lats []time.Duration
	for i := 1; i <= 100; i++ {
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	p50, p95, p99, max := percentiles(lats)
	if p50 < 49 || p50 > 51 || p95 < 94 || p95 > 96 || p99 < 98 || p99 > 100 || max != 100 {
		t.Fatalf("p50=%v p95=%v p99=%v max=%v", p50, p95, p99, max)
	}
	if a, b, c, d := percentiles(nil); a+b+c+d != 0 {
		t.Fatal("empty input must yield zeros")
	}
}

// discard drops progress output but satisfies io.Writer; strings.Builder
// would race between the fleet goroutines and the test otherwise.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
