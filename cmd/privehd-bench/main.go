// Command privehd-bench is a closed/open-loop load generator for a
// Prive-HD serving fleet — the serving-side counterpart of the repo's
// microbenchmark gate. It drives real cluster traffic through the same
// client path production edges use (DialCluster + PredictPrepared) and
// reports sustained queries/s with p50/p95/p99 latency.
//
// Two ways to point it at a fleet:
//
//   - -addrs host:port,host:port — load an already-running deployment.
//   - -selfserve N — train a small synthetic model, serve it from N
//     in-process replicas plus a /metrics listener, and benchmark that.
//     This is the CI smoke mode: no external processes, fully hermetic.
//
// Two load modes:
//
//   - closed (default): -concurrency workers each issue the next query as
//     soon as the previous answer lands. Measures peak sustainable
//     throughput under a fixed multiprogramming level.
//   - open: queries are dispatched on a fixed schedule of -rate arrivals
//     per second regardless of how fast answers come back, and latency is
//     measured from the *scheduled* send time — so queueing delay caused
//     by a slow server is charged to the server, not silently absorbed by
//     the client (no coordinated omission).
//
// With -check the tool scrapes /metrics immediately before and after the
// measured window and asserts the server-side
// privehd_server_queries_total counter moved by exactly the number of
// queries the client tallied — closing the loop between the observability
// surface and ground truth. -check needs a scrape endpoint that covers
// every replica (selfserve mode wires one up automatically; for remote
// fleets pass -scrape and make sure all replicas share the process behind
// it).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"privehd"
)

type config struct {
	addrs       []string // remote fleet; empty means selfserve
	selfserve   int      // number of in-process replicas
	dataset     string   // selfserve training workload
	dim         int      // selfserve hypervector dimensionality
	model       string   // model name to bind to
	mode        string   // "closed" or "open"
	concurrency int      // closed: workers; open: max outstanding
	rate        float64  // open mode arrivals per second
	duration    time.Duration
	warmup      time.Duration
	queries     int    // size of the prepared-query pool
	scrape      string // metrics URL for -check ("" = none/auto)
	check       bool
	jsonOut     bool
}

// summary is the benchmark report. QPS counts successful queries over the
// measured window; percentiles are over per-query latency (closed mode:
// call time; open mode: time since scheduled arrival).
type summary struct {
	Mode        string  `json:"mode"`
	Replicas    int     `json:"replicas"`
	Concurrency int     `json:"concurrency"`
	RateTarget  float64 `json:"rate_target,omitempty"`
	Seconds     float64 `json:"seconds"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	QPS         float64 `json:"qps"`
	P50ms       float64 `json:"p50_ms"`
	P95ms       float64 `json:"p95_ms"`
	P99ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`

	// MetricsChecked / ServerQueriesDelta report the -check cross-audit:
	// the server-side counter movement over the measured window, which
	// must equal Requests.
	MetricsChecked     bool   `json:"metrics_checked"`
	ServerQueriesDelta uint64 `json:"server_queries_delta,omitempty"`
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "privehd-bench:", err)
		os.Exit(2)
	}
	sum, err := run(context.Background(), cfg, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privehd-bench:", err)
		os.Exit(1)
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(sum)
	} else {
		printSummary(os.Stdout, sum)
	}
}

func parseFlags(argv []string) (config, error) {
	var (
		fs   = flag.NewFlagSet("privehd-bench", flag.ContinueOnError)
		cfg  config
		list string
	)
	fs.StringVar(&list, "addrs", "", "comma-separated replica addresses of a running fleet")
	fs.IntVar(&cfg.selfserve, "selfserve", 0, "serve N in-process replicas of a synthetic model instead of dialing -addrs")
	fs.StringVar(&cfg.dataset, "dataset", "isolet-s", "selfserve training workload (isolet-s, face-s, mnist-s)")
	fs.IntVar(&cfg.dim, "dim", 2048, "selfserve hypervector dimensionality")
	fs.StringVar(&cfg.model, "model", "", "model name to bind to (selfserve default: bench)")
	fs.StringVar(&cfg.mode, "mode", "closed", "load mode: closed (fixed workers) or open (fixed arrival rate)")
	fs.IntVar(&cfg.concurrency, "concurrency", 8, "closed: worker count; open: max outstanding queries")
	fs.Float64Var(&cfg.rate, "rate", 2000, "open mode target arrivals per second")
	fs.DurationVar(&cfg.duration, "duration", 5*time.Second, "measured window")
	fs.DurationVar(&cfg.warmup, "warmup", time.Second, "warmup (closed-loop, excluded from the report)")
	fs.IntVar(&cfg.queries, "queries", 64, "prepared-query pool size")
	fs.StringVar(&cfg.scrape, "scrape", "", "metrics URL for -check (selfserve sets this automatically)")
	fs.BoolVar(&cfg.check, "check", false, "scrape /metrics around the run and assert server counters match the client tally")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit the summary as JSON on stdout")
	if err := fs.Parse(argv); err != nil {
		return cfg, err
	}
	if list != "" {
		cfg.addrs = strings.Split(list, ",")
	}
	if len(cfg.addrs) == 0 && cfg.selfserve <= 0 {
		return cfg, errors.New("need -addrs or -selfserve N")
	}
	if len(cfg.addrs) > 0 && cfg.selfserve > 0 {
		return cfg, errors.New("-addrs and -selfserve are mutually exclusive")
	}
	if cfg.mode != "closed" && cfg.mode != "open" {
		return cfg, fmt.Errorf("unknown -mode %q", cfg.mode)
	}
	if cfg.concurrency <= 0 || cfg.queries <= 0 || cfg.duration <= 0 {
		return cfg, errors.New("-concurrency, -queries and -duration must be positive")
	}
	if cfg.mode == "open" && cfg.rate <= 0 {
		return cfg, errors.New("open mode needs -rate > 0")
	}
	if cfg.model == "" && cfg.selfserve > 0 {
		cfg.model = "bench"
	}
	return cfg, nil
}

// run executes one benchmark: stand up the fleet (selfserve) or dial it,
// warm up, measure, and optionally cross-audit against /metrics. Progress
// notes go to errw; the returned summary is the result.
func run(ctx context.Context, cfg config, errw io.Writer) (*summary, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	addrs := cfg.addrs
	scrape := cfg.scrape
	var inputs [][]float64
	if cfg.selfserve > 0 {
		fleet, err := startSelfServe(ctx, cfg, errw)
		if err != nil {
			return nil, err
		}
		defer fleet.shutdown()
		addrs, inputs = fleet.addrs, fleet.inputs
		if scrape == "" {
			scrape = fleet.metricsURL
		}
	}
	if cfg.check && scrape == "" {
		return nil, errors.New("-check needs a metrics endpoint: pass -scrape (or use -selfserve)")
	}

	dialCtx, dialCancel := context.WithTimeout(ctx, 10*time.Second)
	cl, err := privehd.DialCluster(dialCtx, "tcp", addrs, nil,
		privehd.WithClusterModel(cfg.model))
	dialCancel()
	if err != nil {
		return nil, fmt.Errorf("dial fleet: %w", err)
	}
	defer cl.Close()

	pool, err := queryPool(cl, cfg.queries, inputs)
	if err != nil {
		return nil, err
	}

	if cfg.warmup > 0 {
		fmt.Fprintf(errw, "warming up %v (%d workers)\n", cfg.warmup, cfg.concurrency)
		closedLoop(ctx, cl, pool, cfg.concurrency, cfg.warmup)
	}

	var before uint64
	if cfg.check {
		if before, err = scrapeQueries(scrape, cfg.model); err != nil {
			return nil, fmt.Errorf("pre-run scrape: %w", err)
		}
	}

	fmt.Fprintf(errw, "measuring %v in %s mode\n", cfg.duration, cfg.mode)
	var res runResult
	start := time.Now()
	if cfg.mode == "open" {
		res = openLoop(ctx, cl, pool, cfg.rate, cfg.concurrency, cfg.duration)
	} else {
		res = closedLoop(ctx, cl, pool, cfg.concurrency, cfg.duration)
	}
	elapsed := time.Since(start)

	sum := &summary{
		Mode:        cfg.mode,
		Replicas:    len(addrs),
		Concurrency: cfg.concurrency,
		Seconds:     elapsed.Seconds(),
		Requests:    res.ok,
		Errors:      res.errs,
		QPS:         float64(res.ok) / elapsed.Seconds(),
	}
	if cfg.mode == "open" {
		sum.RateTarget = cfg.rate
	}
	sum.P50ms, sum.P95ms, sum.P99ms, sum.MaxMs = percentiles(res.lats)

	if cfg.check {
		after, err := scrapeQueries(scrape, cfg.model)
		if err != nil {
			return nil, fmt.Errorf("post-run scrape: %w", err)
		}
		sum.MetricsChecked = true
		sum.ServerQueriesDelta = after - before
		if sum.ServerQueriesDelta != uint64(res.ok) {
			return nil, fmt.Errorf("metrics check failed: server counted %d queries, client tallied %d",
				sum.ServerQueriesDelta, res.ok)
		}
		fmt.Fprintf(errw, "metrics check ok: server and client both counted %d queries\n", res.ok)
	}
	if res.ok == 0 {
		return nil, fmt.Errorf("no query succeeded (%d errors); fleet unhealthy?", res.errs)
	}
	return sum, nil
}

// queryPool prepares a fixed pool of obfuscated query hypervectors the
// load loops cycle through, so the measured window exercises the serving
// path (wire + scoring) rather than client-side encoding. inputs supplies
// raw feature vectors; when nil (remote fleets), deterministic synthetic
// inputs matching the edge's advertised feature count are used.
func queryPool(cl *privehd.Cluster, n int, inputs [][]float64) ([][]float64, error) {
	edge := cl.Edge()
	if len(inputs) == 0 {
		rng := rand.New(rand.NewSource(1))
		inputs = make([][]float64, n)
		for i := range inputs {
			x := make([]float64, edge.Features())
			for j := range x {
				x[j] = rng.Float64()
			}
			inputs[i] = x
		}
	}
	pool := make([][]float64, 0, n)
	for i := 0; len(pool) < n; i++ {
		q, err := edge.Prepare(inputs[i%len(inputs)])
		if err != nil {
			return nil, fmt.Errorf("prepare query: %w", err)
		}
		pool = append(pool, q)
	}
	return pool, nil
}

type runResult struct {
	ok   int
	errs int
	lats []time.Duration
}

// closedLoop runs workers synchronous loops for d: each worker fires its
// next query the moment the previous answer returns.
func closedLoop(ctx context.Context, cl *privehd.Cluster, pool [][]float64, workers int, d time.Duration) runResult {
	deadline := time.Now().Add(d)
	var (
		mu  sync.Mutex
		res runResult
		wg  sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var (
				ok, errs int
				lats     []time.Duration
			)
			for i := w; time.Now().Before(deadline) && ctx.Err() == nil; i++ {
				t0 := time.Now()
				_, _, err := cl.PredictPrepared(pool[i%len(pool)])
				if err != nil {
					errs++
					continue
				}
				ok++
				lats = append(lats, time.Since(t0))
			}
			mu.Lock()
			res.ok += ok
			res.errs += errs
			res.lats = append(res.lats, lats...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return res
}

// openLoop dispatches queries on a fixed schedule of rate arrivals/s for
// d, with at most outstanding queries in flight. Latency is measured from
// each query's scheduled arrival time, so server-induced queueing counts
// against the server instead of being hidden by client backpressure.
func openLoop(ctx context.Context, cl *privehd.Cluster, pool [][]float64, rate float64, outstanding int, d time.Duration) runResult {
	var (
		interval = time.Duration(float64(time.Second) / rate)
		start    = time.Now()
		deadline = start.Add(d)
		sem      = make(chan struct{}, outstanding)
		mu       sync.Mutex
		res      runResult
		wg       sync.WaitGroup
	)
	for i := 0; ctx.Err() == nil; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if scheduled.After(deadline) {
			break
		}
		if wait := time.Until(scheduled); wait > 0 {
			time.Sleep(wait)
		}
		sem <- struct{}{} // blocks when the fleet falls behind; the wait is charged below
		wg.Add(1)
		go func(i int, scheduled time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			_, _, err := cl.PredictPrepared(pool[i%len(pool)])
			lat := time.Since(scheduled)
			mu.Lock()
			if err != nil {
				res.errs++
			} else {
				res.ok++
				res.lats = append(res.lats, lat)
			}
			mu.Unlock()
		}(i, scheduled)
	}
	wg.Wait()
	return res
}

func percentiles(lats []time.Duration) (p50, p95, p99, max float64) {
	if len(lats) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	return at(0.50), at(0.95), at(0.99), at(1)
}

// scrapeQueries fetches url and sums every privehd_server_queries_total
// sample for model — the server-side ground truth the -check audit
// compares the client tally against.
func scrapeQueries(url, model string) (uint64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	var total uint64
	want := fmt.Sprintf(`model=%q`, model)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "privehd_server_queries_total{") || !strings.Contains(line, want) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return 0, fmt.Errorf("parse sample %q: %w", line, err)
		}
		total += uint64(v)
	}
	return total, sc.Err()
}

func printSummary(w io.Writer, s *summary) {
	fmt.Fprintf(w, "mode        %s (%d replicas, concurrency %d)\n", s.Mode, s.Replicas, s.Concurrency)
	if s.Mode == "open" {
		fmt.Fprintf(w, "target rate %.0f /s\n", s.RateTarget)
	}
	fmt.Fprintf(w, "requests    %d ok, %d errors in %.2fs\n", s.Requests, s.Errors, s.Seconds)
	fmt.Fprintf(w, "throughput  %.0f queries/s\n", s.QPS)
	fmt.Fprintf(w, "latency     p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
		s.P50ms, s.P95ms, s.P99ms, s.MaxMs)
	if s.MetricsChecked {
		fmt.Fprintf(w, "audit       /metrics agrees: server counted %d queries\n", s.ServerQueriesDelta)
	}
}
