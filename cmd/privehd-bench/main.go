// Command privehd-bench is a closed/open-loop load generator for a
// Prive-HD serving fleet — the serving-side counterpart of the repo's
// microbenchmark gate. It drives real traffic through the same client
// path production edges use (privehd.Connect + PredictPrepared) and
// reports sustained queries/s with p50/p95/p99 latency. The serving
// topology is a flag, not a code path: -topology auto|single|pool|
// cluster|sharded picks the Client arrangement over the same addresses.
//
// Two ways to point it at a fleet:
//
//   - -addrs host:port,host:port — load an already-running deployment.
//   - -selfserve N — train a small synthetic model, serve it from N
//     in-process replicas plus a /metrics listener, and benchmark that.
//     This is the CI smoke mode: no external processes, fully hermetic.
//     -shard-grid DxC splits the selfserve model into D dimension × C
//     class shards, each on its own listener, exercising the sharded
//     scatter–gather path end to end in one process.
//
// Two load modes:
//
//   - closed (default): -concurrency workers each issue the next query as
//     soon as the previous answer lands. Measures peak sustainable
//     throughput under a fixed multiprogramming level.
//   - open: queries are dispatched on a fixed schedule of -rate arrivals
//     per second regardless of how fast answers come back, and latency is
//     measured from the *scheduled* send time — so queueing delay caused
//     by a slow server is charged to the server, not silently absorbed by
//     the client (no coordinated omission).
//
// With -check the tool scrapes /metrics immediately before and after the
// measured window and asserts the server-side
// privehd_server_queries_total counter moved by exactly the number of
// queries the client tallied — closing the loop between the observability
// surface and ground truth. -check needs a scrape endpoint that covers
// every replica (selfserve mode wires one up automatically; for remote
// fleets pass -scrape and make sure all replicas share the process behind
// it).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"privehd"
	"privehd/internal/chaos"
)

// benchClient is the client surface the load loops need: the shared
// privehd.Client interface plus prepared-query prediction and edge
// access. Every concrete topology (Remote, Pool, Cluster, Sharded)
// implements it.
type benchClient interface {
	privehd.Client
	PredictPrepared(q []float64) (int, []float64, error)
	PredictPreparedContext(ctx context.Context, q []float64) (int, []float64, error)
	Edge() *privehd.Edge
}

type config struct {
	addrs       []string // remote fleet; empty means selfserve
	selfserve   int      // number of in-process replicas
	dataset     string   // selfserve training workload
	dim         int      // selfserve hypervector dimensionality
	model       string   // model name to bind to
	topology    privehd.Topology
	dimShards   int     // selfserve shard grid: dimension slices
	classShards int     // selfserve shard grid: class slices
	mode        string  // "closed" or "open"
	concurrency int     // closed: workers; open: max outstanding
	rate        float64 // open mode arrivals per second
	duration    time.Duration
	warmup      time.Duration
	queries     int     // size of the prepared-query pool
	scrape      string  // metrics URL for -check ("" = none/auto)
	traceSample float64 // end-to-end trace sampling rate
	check       bool
	jsonOut     bool
	hedge       bool          // hedge slow requests to a second replica
	deadline    time.Duration // per-request deadline (0 = none)
	chaosSpec   string        // raw -chaos value, "" = off
	chaosCfg    chaos.Config  // parsed fault mix for selfserve listeners
}

// summary is the benchmark report. QPS counts successful queries over the
// measured window; percentiles are over per-query latency (closed mode:
// call time; open mode: time since scheduled arrival).
type summary struct {
	Mode        string  `json:"mode"`
	Topology    string  `json:"topology"`
	Replicas    int     `json:"replicas"`
	Concurrency int     `json:"concurrency"`
	RateTarget  float64 `json:"rate_target,omitempty"`
	Seconds     float64 `json:"seconds"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	QPS         float64 `json:"qps"`
	P50ms       float64 `json:"p50_ms"`
	P95ms       float64 `json:"p95_ms"`
	P99ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`

	// MetricsChecked / ServerQueriesDelta report the -check cross-audit:
	// the server-side counter movement over the measured window, which
	// must equal Requests × ShardGroups (each shard group partial-scores
	// every logical query; 1 group for unsharded topologies).
	MetricsChecked     bool   `json:"metrics_checked"`
	ServerQueriesDelta uint64 `json:"server_queries_delta,omitempty"`

	// Hedges is the movement of privehd_cluster_hedges_total (all
	// outcomes) over the measured window; present whenever -hedge runs
	// with a metrics endpoint. The CI chaos soak asserts it is > 0 — the
	// faults must actually provoke hedging, not just be survived.
	Hedges uint64 `json:"hedges"`

	// ErrorKinds buckets the errors: deadline (the request ran out of
	// time, typed), transport (the whole fleet failed it), other.
	ErrorKinds map[string]int `json:"error_kinds,omitempty"`

	// ShardGroups is how many shard groups the client scatters across
	// (sharded topology only). ShardGathers is the per-shard movement of
	// privehd_shard_gathers_total over the measured window, keyed by
	// shard descriptor — with -check, each must equal Requests.
	ShardGroups  int               `json:"shard_groups,omitempty"`
	ShardGathers map[string]uint64 `json:"shard_gathers,omitempty"`

	// Trace reports where traced requests spent their latency; present
	// only with -trace-sample > 0.
	Trace *traceReport `json:"trace,omitempty"`
}

// stageStats are latency percentiles for one stage, in milliseconds.
type stageStats struct {
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
}

// traceReport summarizes the traced requests collected during the
// measured window: per-stage percentiles from the server's wire-reported
// stage timing plus the client's own measurements, and the trace IDs of
// the slowest requests for chasing through the server's flight recorder
// (GET /v1/debug/requests) and metrics exemplars.
type traceReport struct {
	// Sampled is how many traced requests completed inside the window.
	Sampled int `json:"sampled"`
	// Stages maps stage name to latency percentiles: total (client round
	// trip), client_queue, network, server_queue, server_score,
	// server_total.
	Stages map[string]stageStats `json:"stages"`
	// SlowestTraces lists the trace IDs of the slowest requests (up to 5),
	// slowest first.
	SlowestTraces []string `json:"slowest_traces"`
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "privehd-bench:", err)
		os.Exit(2)
	}
	sum, err := run(context.Background(), cfg, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privehd-bench:", err)
		os.Exit(1)
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(sum)
	} else {
		printSummary(os.Stdout, sum)
	}
}

func parseFlags(argv []string) (config, error) {
	var (
		fs   = flag.NewFlagSet("privehd-bench", flag.ContinueOnError)
		cfg  config
		list string
		topo string
		grid string
	)
	fs.StringVar(&list, "addrs", "", "comma-separated replica addresses of a running fleet")
	fs.StringVar(&topo, "topology", "auto", "client arrangement over the addresses: auto, single, pool, cluster or sharded")
	fs.IntVar(&cfg.selfserve, "selfserve", 0, "serve N in-process replicas of a synthetic model instead of dialing -addrs")
	fs.StringVar(&grid, "shard-grid", "", "selfserve only: split the model into a DxC grid of dimension × class shards (e.g. 2x2), one listener each; implies a sharded client")
	fs.StringVar(&cfg.dataset, "dataset", "isolet-s", "selfserve training workload (isolet-s, face-s, mnist-s)")
	fs.IntVar(&cfg.dim, "dim", 2048, "selfserve hypervector dimensionality")
	fs.StringVar(&cfg.model, "model", "", "model name to bind to (selfserve default: bench)")
	fs.StringVar(&cfg.mode, "mode", "closed", "load mode: closed (fixed workers) or open (fixed arrival rate)")
	fs.IntVar(&cfg.concurrency, "concurrency", 8, "closed: worker count; open: max outstanding queries")
	fs.Float64Var(&cfg.rate, "rate", 2000, "open mode target arrivals per second")
	fs.DurationVar(&cfg.duration, "duration", 5*time.Second, "measured window")
	fs.DurationVar(&cfg.warmup, "warmup", time.Second, "warmup (closed-loop, excluded from the report)")
	fs.IntVar(&cfg.queries, "queries", 64, "prepared-query pool size")
	fs.StringVar(&cfg.scrape, "scrape", "", "metrics URL for -check (selfserve sets this automatically)")
	fs.Float64Var(&cfg.traceSample, "trace-sample", 0, "fraction of requests to trace end to end, 0..1; adds a per-stage latency breakdown and the slowest trace IDs to the report")
	fs.BoolVar(&cfg.hedge, "hedge", false, "hedge slow requests to a second healthy replica (cluster and sharded topologies)")
	fs.DurationVar(&cfg.deadline, "deadline", 0, "per-request deadline stamped on every frame so servers shed late work (0 = none)")
	fs.StringVar(&cfg.chaosSpec, "chaos", "", "selfserve only: fault-injection spec for replica listeners, e.g. seed=7,latency=2ms,latencyprob=0.3,stallprob=0.05,cut=0.03,refuse=0.03")
	fs.BoolVar(&cfg.check, "check", false, "scrape /metrics around the run and assert server counters match the client tally")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit the summary as JSON on stdout")
	if err := fs.Parse(argv); err != nil {
		return cfg, err
	}
	if list != "" {
		cfg.addrs = strings.Split(list, ",")
	}
	var err error
	if cfg.topology, err = privehd.ParseTopology(topo); err != nil {
		return cfg, err
	}
	if grid != "" {
		if cfg.selfserve <= 0 {
			return cfg, errors.New("-shard-grid needs -selfserve (remote fleets already define their own shards)")
		}
		if _, err := fmt.Sscanf(grid, "%dx%d", &cfg.dimShards, &cfg.classShards); err != nil ||
			cfg.dimShards < 1 || cfg.classShards < 1 {
			return cfg, fmt.Errorf("bad -shard-grid %q (want DxC, e.g. 2x2)", grid)
		}
	} else {
		cfg.dimShards, cfg.classShards = 1, 1
	}
	if len(cfg.addrs) == 0 && cfg.selfserve <= 0 {
		return cfg, errors.New("need -addrs or -selfserve N")
	}
	if len(cfg.addrs) > 0 && cfg.selfserve > 0 {
		return cfg, errors.New("-addrs and -selfserve are mutually exclusive")
	}
	if cfg.mode != "closed" && cfg.mode != "open" {
		return cfg, fmt.Errorf("unknown -mode %q", cfg.mode)
	}
	if cfg.concurrency <= 0 || cfg.queries <= 0 || cfg.duration <= 0 {
		return cfg, errors.New("-concurrency, -queries and -duration must be positive")
	}
	if cfg.mode == "open" && cfg.rate <= 0 {
		return cfg, errors.New("open mode needs -rate > 0")
	}
	if cfg.traceSample < 0 || cfg.traceSample > 1 {
		return cfg, errors.New("-trace-sample must be in 0..1")
	}
	if cfg.model == "" && cfg.selfserve > 0 {
		cfg.model = "bench"
	}
	if cfg.chaosSpec != "" {
		if cfg.selfserve <= 0 {
			return cfg, errors.New("-chaos needs -selfserve (faults are injected into the in-process listeners)")
		}
		if cfg.chaosCfg, err = chaos.ParseSpec(cfg.chaosSpec); err != nil {
			return cfg, err
		}
	}
	if cfg.deadline < 0 {
		return cfg, errors.New("-deadline must be ≥ 0")
	}
	return cfg, nil
}

// run executes one benchmark: stand up the fleet (selfserve) or dial it,
// warm up, measure, and optionally cross-audit against /metrics. Progress
// notes go to errw; the returned summary is the result.
func run(ctx context.Context, cfg config, errw io.Writer) (*summary, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	addrs := cfg.addrs
	scrape := cfg.scrape
	var inputs [][]float64
	if cfg.selfserve > 0 {
		fleet, err := startSelfServe(ctx, cfg, errw)
		if err != nil {
			return nil, err
		}
		defer fleet.shutdown()
		addrs, inputs = fleet.addrs, fleet.inputs
		if scrape == "" {
			scrape = fleet.metricsURL
		}
	}
	if cfg.check && scrape == "" {
		return nil, errors.New("-check needs a metrics endpoint: pass -scrape (or use -selfserve)")
	}

	dialCtx, dialCancel := context.WithTimeout(ctx, 10*time.Second)
	client, err := privehd.Connect(dialCtx, privehd.Target{
		Addrs:    addrs,
		Model:    cfg.model,
		Topology: cfg.topology,
		Hedge:    cfg.hedge,
	})
	dialCancel()
	if err != nil {
		return nil, fmt.Errorf("connect fleet: %w", err)
	}
	defer client.Close()
	cl, ok := client.(benchClient)
	if !ok {
		return nil, fmt.Errorf("client %T lacks PredictPrepared", client)
	}
	shardGroups := 1
	topoName := cfg.topology.String()
	if sh, isSharded := client.(*privehd.Sharded); isSharded {
		shardGroups = len(sh.Shards())
		topoName = privehd.TopologySharded.String()
	} else if cfg.topology == privehd.TopologyAuto {
		switch client.(type) {
		case *privehd.Pool:
			topoName = privehd.TopologyPool.String()
		case *privehd.Cluster:
			topoName = privehd.TopologyCluster.String()
		case *privehd.Remote:
			topoName = privehd.TopologySingle.String()
		}
	}

	pool, err := queryPool(cl, cfg.queries, inputs)
	if err != nil {
		return nil, err
	}

	var collector *traceCollector
	if cfg.traceSample > 0 {
		collector = &traceCollector{}
		privehd.SetTraceSampling(cfg.traceSample)
		privehd.OnTrace(collector.observe)
		defer func() {
			privehd.OnTrace(nil)
			privehd.SetTraceSampling(0)
		}()
	}

	if cfg.warmup > 0 {
		fmt.Fprintf(errw, "warming up %v (%d workers)\n", cfg.warmup, cfg.concurrency)
		closedLoop(ctx, cl, pool, cfg.concurrency, cfg.warmup, cfg.deadline)
	}

	var hedgesBefore uint64
	if cfg.hedge && scrape != "" {
		if hedgesBefore, err = scrapeHedges(scrape); err != nil {
			return nil, fmt.Errorf("pre-run hedge scrape: %w", err)
		}
	}
	var before uint64
	var gathersBefore map[string]uint64
	if cfg.check {
		if before, err = scrapeQueries(scrape, cfg.model); err != nil {
			return nil, fmt.Errorf("pre-run scrape: %w", err)
		}
		if shardGroups > 1 {
			if gathersBefore, err = scrapeShardGathers(scrape); err != nil {
				return nil, fmt.Errorf("pre-run shard scrape: %w", err)
			}
		}
	}

	fmt.Fprintf(errw, "measuring %v in %s mode\n", cfg.duration, cfg.mode)
	if collector != nil {
		collector.arm()
	}
	var res runResult
	start := time.Now()
	if cfg.mode == "open" {
		res = openLoop(ctx, cl, pool, cfg.rate, cfg.concurrency, cfg.duration, cfg.deadline)
	} else {
		res = closedLoop(ctx, cl, pool, cfg.concurrency, cfg.duration, cfg.deadline)
	}
	elapsed := time.Since(start)
	var traced []privehd.TraceEntry
	if collector != nil {
		traced = collector.disarm()
	}

	sum := &summary{
		Mode:        cfg.mode,
		Topology:    topoName,
		Replicas:    len(addrs),
		Concurrency: cfg.concurrency,
		Seconds:     elapsed.Seconds(),
		Requests:    res.ok,
		Errors:      res.errs,
		ErrorKinds:  res.kinds,
		QPS:         float64(res.ok) / elapsed.Seconds(),
	}
	if shardGroups > 1 {
		sum.ShardGroups = shardGroups
	}
	if cfg.mode == "open" {
		sum.RateTarget = cfg.rate
	}
	sum.P50ms, sum.P95ms, sum.P99ms, sum.MaxMs = percentiles(res.lats)

	if cfg.hedge && scrape != "" {
		hedgesAfter, err := scrapeHedges(scrape)
		if err != nil {
			return nil, fmt.Errorf("post-run hedge scrape: %w", err)
		}
		sum.Hedges = hedgesAfter - hedgesBefore
	}
	if cfg.check {
		after, err := scrapeQueries(scrape, cfg.model)
		if err != nil {
			return nil, fmt.Errorf("post-run scrape: %w", err)
		}
		sum.MetricsChecked = true
		sum.ServerQueriesDelta = after - before
		// A sharded client partial-scores every logical query on every
		// shard group, so the fleet-wide server counter moves G× the
		// client tally. A hedged client may additionally land a backup
		// copy of a query whose primary it then discards — each hedge
		// launched can add at most one server-side query per group — so
		// under hedging the audit is a band, not an equality.
		want := uint64(res.ok) * uint64(shardGroups)
		slack := sum.Hedges * uint64(shardGroups)
		if sum.ServerQueriesDelta < want || sum.ServerQueriesDelta > want+slack {
			return nil, fmt.Errorf("metrics check failed: server counted %d queries, client tallied %d × %d shard groups = %d (+ up to %d hedged)",
				sum.ServerQueriesDelta, res.ok, shardGroups, want, slack)
		}
		if slack > 0 {
			fmt.Fprintf(errw, "metrics check ok: server counted %d queries (client %d × %d shard groups, %d extra from %d hedges)\n",
				sum.ServerQueriesDelta, res.ok, shardGroups, sum.ServerQueriesDelta-want, sum.Hedges)
		} else {
			fmt.Fprintf(errw, "metrics check ok: server counted %d queries (= %d requests × %d shard groups)\n",
				want, res.ok, shardGroups)
		}
		if shardGroups > 1 {
			gathersAfter, err := scrapeShardGathers(scrape)
			if err != nil {
				return nil, fmt.Errorf("post-run shard scrape: %w", err)
			}
			sum.ShardGathers = make(map[string]uint64, len(gathersAfter))
			for shard, v := range gathersAfter {
				sum.ShardGathers[shard] = v - gathersBefore[shard]
			}
			if len(sum.ShardGathers) != shardGroups {
				return nil, fmt.Errorf("shard gather check failed: %d shards on /metrics, client scatters across %d",
					len(sum.ShardGathers), shardGroups)
			}
			for shard, delta := range sum.ShardGathers {
				if res.errs == 0 && delta != uint64(res.ok) {
					return nil, fmt.Errorf("shard gather check failed: shard %q gathered %d of %d requests",
						shard, delta, res.ok)
				}
			}
			fmt.Fprintf(errw, "shard gather check ok: %d shards each gathered %d requests\n", shardGroups, res.ok)
		}
	}
	if res.ok == 0 {
		return nil, fmt.Errorf("no query succeeded (%d errors); fleet unhealthy?", res.errs)
	}
	if collector != nil {
		report, err := buildTraceReport(traced)
		if err != nil {
			return nil, err
		}
		sum.Trace = report
	}
	return sum, nil
}

// traceCollector gathers completed client-side trace entries while armed,
// so warmup traffic never pollutes the measured window's report.
type traceCollector struct {
	mu      sync.Mutex
	armed   bool
	entries []privehd.TraceEntry
}

func (tc *traceCollector) observe(e privehd.TraceEntry) {
	tc.mu.Lock()
	if tc.armed {
		tc.entries = append(tc.entries, e)
	}
	tc.mu.Unlock()
}

func (tc *traceCollector) arm() {
	tc.mu.Lock()
	tc.armed = true
	tc.entries = tc.entries[:0]
	tc.mu.Unlock()
}

func (tc *traceCollector) disarm() []privehd.TraceEntry {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.armed = false
	return tc.entries
}

// buildTraceReport turns the collected trace entries into per-stage
// percentiles and the slowest trace IDs, validating the invariants the
// wire timing promises: every successful traced reply carries a server
// stage breakdown, disjoint server stages sum to at most the server's
// total residency (single-query frames), and the server's residency fits
// inside the client's round trip.
func buildTraceReport(entries []privehd.TraceEntry) (*traceReport, error) {
	var ok []privehd.TraceEntry
	for _, e := range entries {
		if e.Outcome == "ok" || e.Outcome == "" {
			ok = append(ok, e)
		}
	}
	if len(ok) == 0 {
		return nil, errors.New("tracing enabled but no traced request completed in the measured window")
	}
	stages := map[string][]int64{}
	for _, e := range ok {
		if e.ServerTotalNs <= 0 {
			return nil, fmt.Errorf("traced reply %016x carries no server stage breakdown (old server?)", e.TraceID)
		}
		if e.Queries <= 1 && e.Server.QueueNs+e.Server.ScoreNs > e.ServerTotalNs {
			return nil, fmt.Errorf("trace %016x: server stages sum to %dns, above the server total %dns",
				e.TraceID, e.Server.QueueNs+e.Server.ScoreNs, e.ServerTotalNs)
		}
		if e.ServerTotalNs > e.TotalNs {
			return nil, fmt.Errorf("trace %016x: server residency %dns exceeds client round trip %dns",
				e.TraceID, e.ServerTotalNs, e.TotalNs)
		}
		stages["total"] = append(stages["total"], e.TotalNs)
		stages["client_queue"] = append(stages["client_queue"], e.Local.QueueNs)
		stages["network"] = append(stages["network"], e.Local.NetworkNs)
		stages["server_queue"] = append(stages["server_queue"], e.Server.QueueNs)
		stages["server_score"] = append(stages["server_score"], e.Server.ScoreNs)
		stages["server_total"] = append(stages["server_total"], e.ServerTotalNs)
	}
	rep := &traceReport{Sampled: len(ok), Stages: make(map[string]stageStats, len(stages))}
	for name, ns := range stages {
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		at := func(q float64) float64 {
			return float64(ns[int(q*float64(len(ns)-1))]) / float64(time.Millisecond)
		}
		rep.Stages[name] = stageStats{P50ms: at(0.50), P95ms: at(0.95)}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i].TotalNs > ok[j].TotalNs })
	for i := 0; i < len(ok) && i < 5; i++ {
		rep.SlowestTraces = append(rep.SlowestTraces, fmt.Sprintf("%016x", ok[i].TraceID))
	}
	return rep, nil
}

// queryPool prepares a fixed pool of obfuscated query hypervectors the
// load loops cycle through, so the measured window exercises the serving
// path (wire + scoring) rather than client-side encoding. inputs supplies
// raw feature vectors; when nil (remote fleets), deterministic synthetic
// inputs matching the edge's advertised feature count are used.
func queryPool(cl benchClient, n int, inputs [][]float64) ([][]float64, error) {
	edge := cl.Edge()
	if len(inputs) == 0 {
		rng := rand.New(rand.NewSource(1))
		inputs = make([][]float64, n)
		for i := range inputs {
			x := make([]float64, edge.Features())
			for j := range x {
				x[j] = rng.Float64()
			}
			inputs[i] = x
		}
	}
	pool := make([][]float64, 0, n)
	for i := 0; len(pool) < n; i++ {
		q, err := edge.Prepare(inputs[i%len(inputs)])
		if err != nil {
			return nil, fmt.Errorf("prepare query: %w", err)
		}
		pool = append(pool, q)
	}
	return pool, nil
}

type runResult struct {
	ok    int
	errs  int
	kinds map[string]int // error tally by kind: deadline, transport, other
	lats  []time.Duration
}

func (r *runResult) mergeKinds(kinds map[string]int) {
	if len(kinds) == 0 {
		return
	}
	if r.kinds == nil {
		r.kinds = map[string]int{}
	}
	for k, n := range kinds {
		r.kinds[k] += n
	}
}

// errKind buckets a failed prediction for the summary's error breakdown.
func errKind(err error) string {
	switch {
	case errors.Is(err, privehd.ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, privehd.ErrTransport):
		return "transport"
	default:
		return "other"
	}
}

// predictOne issues one prepared-query prediction, with a per-request
// deadline stamped on the wire when one is configured.
func predictOne(ctx context.Context, cl benchClient, q []float64, deadline time.Duration) error {
	if deadline > 0 {
		rctx, cancel := context.WithTimeout(ctx, deadline)
		defer cancel()
		_, _, err := cl.PredictPreparedContext(rctx, q)
		return err
	}
	_, _, err := cl.PredictPrepared(q)
	return err
}

// closedLoop runs workers synchronous loops for d: each worker fires its
// next query the moment the previous answer returns.
func closedLoop(ctx context.Context, cl benchClient, pool [][]float64, workers int, d, deadline time.Duration) runResult {
	until := time.Now().Add(d)
	var (
		mu  sync.Mutex
		res runResult
		wg  sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var (
				ok, errs int
				kinds    = map[string]int{}
				lats     []time.Duration
			)
			for i := w; time.Now().Before(until) && ctx.Err() == nil; i++ {
				t0 := time.Now()
				err := predictOne(ctx, cl, pool[i%len(pool)], deadline)
				if err != nil {
					errs++
					kinds[errKind(err)]++
					continue
				}
				ok++
				lats = append(lats, time.Since(t0))
			}
			mu.Lock()
			res.ok += ok
			res.errs += errs
			res.mergeKinds(kinds)
			res.lats = append(res.lats, lats...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return res
}

// openLoop dispatches queries on a fixed schedule of rate arrivals/s for
// d, with at most outstanding queries in flight. Latency is measured from
// each query's scheduled arrival time, so server-induced queueing counts
// against the server instead of being hidden by client backpressure.
func openLoop(ctx context.Context, cl benchClient, pool [][]float64, rate float64, outstanding int, d, deadline time.Duration) runResult {
	var (
		interval = time.Duration(float64(time.Second) / rate)
		start    = time.Now()
		until    = start.Add(d)
		sem      = make(chan struct{}, outstanding)
		mu       sync.Mutex
		res      runResult
		wg       sync.WaitGroup
	)
	for i := 0; ctx.Err() == nil; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if scheduled.After(until) {
			break
		}
		if wait := time.Until(scheduled); wait > 0 {
			time.Sleep(wait)
		}
		sem <- struct{}{} // blocks when the fleet falls behind; the wait is charged below
		wg.Add(1)
		go func(i int, scheduled time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			err := predictOne(ctx, cl, pool[i%len(pool)], deadline)
			lat := time.Since(scheduled)
			mu.Lock()
			if err != nil {
				res.errs++
				res.mergeKinds(map[string]int{errKind(err): 1})
			} else {
				res.ok++
				res.lats = append(res.lats, lat)
			}
			mu.Unlock()
		}(i, scheduled)
	}
	wg.Wait()
	return res
}

func percentiles(lats []time.Duration) (p50, p95, p99, max float64) {
	if len(lats) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	return at(0.50), at(0.95), at(0.99), at(1)
}

// scrapeQueries fetches url and sums every privehd_server_queries_total
// sample for model — the server-side ground truth the -check audit
// compares the client tally against.
func scrapeQueries(url, model string) (uint64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	var total uint64
	want := fmt.Sprintf(`model=%q`, model)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "privehd_server_queries_total{") || !strings.Contains(line, want) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return 0, fmt.Errorf("parse sample %q: %w", line, err)
		}
		total += uint64(v)
	}
	return total, sc.Err()
}

// scrapeHedges fetches url and sums privehd_cluster_hedges_total over
// all outcomes — how many backup requests the client-side hedging layer
// launched. Selfserve mode shares one process-wide registry between the
// fleet and the bench client, so the fleet's scrape endpoint sees the
// client-side counter too.
func scrapeHedges(url string) (uint64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	var total uint64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "privehd_cluster_hedges_total{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return 0, fmt.Errorf("parse sample %q: %w", line, err)
		}
		total += uint64(v)
	}
	return total, sc.Err()
}

// scrapeShardGathers fetches url and collects every
// privehd_shard_gathers_total sample, keyed by its shard label — the
// per-shard ground truth the sharded -check audit compares against.
func scrapeShardGathers(url string) (map[string]uint64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	out := make(map[string]uint64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, `privehd_shard_gathers_total{shard="`) {
			continue
		}
		rest := line[len(`privehd_shard_gathers_total{shard="`):]
		end := strings.Index(rest, `"}`)
		if end < 0 {
			continue
		}
		shard := rest[:end]
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("parse sample %q: %w", line, err)
		}
		out[shard] += uint64(v)
	}
	return out, sc.Err()
}

func printSummary(w io.Writer, s *summary) {
	fmt.Fprintf(w, "mode        %s (%s topology, %d replicas, concurrency %d)\n", s.Mode, s.Topology, s.Replicas, s.Concurrency)
	if s.Mode == "open" {
		fmt.Fprintf(w, "target rate %.0f /s\n", s.RateTarget)
	}
	fmt.Fprintf(w, "requests    %d ok, %d errors in %.2fs\n", s.Requests, s.Errors, s.Seconds)
	fmt.Fprintf(w, "throughput  %.0f queries/s\n", s.QPS)
	fmt.Fprintf(w, "latency     p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
		s.P50ms, s.P95ms, s.P99ms, s.MaxMs)
	if s.MetricsChecked {
		fmt.Fprintf(w, "audit       /metrics agrees: server counted %d queries\n", s.ServerQueriesDelta)
	}
	if s.Hedges > 0 {
		fmt.Fprintf(w, "hedges      %d backup requests launched\n", s.Hedges)
	}
	if s.ShardGroups > 0 {
		fmt.Fprintf(w, "shards      scatter across %d shard groups\n", s.ShardGroups)
		shards := make([]string, 0, len(s.ShardGathers))
		for shard := range s.ShardGathers {
			shards = append(shards, shard)
		}
		sort.Strings(shards)
		for _, shard := range shards {
			fmt.Fprintf(w, "  %-30s %d gathers\n", shard, s.ShardGathers[shard])
		}
	}
	if s.Trace != nil {
		fmt.Fprintf(w, "traced      %d requests\n", s.Trace.Sampled)
		for _, name := range []string{"total", "client_queue", "network", "server_queue", "server_score", "server_total"} {
			if st, okStage := s.Trace.Stages[name]; okStage {
				fmt.Fprintf(w, "  %-13s p50 %.3fms  p95 %.3fms\n", name, st.P50ms, st.P95ms)
			}
		}
		fmt.Fprintf(w, "slowest     %s\n", strings.Join(s.Trace.SlowestTraces, " "))
	}
}
