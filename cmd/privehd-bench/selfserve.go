package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"privehd"
	"privehd/internal/chaos"
)

// fleet is an in-process serving fleet for -selfserve: N TCP replicas of
// one registry plus a /metrics exposition listener, all torn down by
// shutdown.
type fleet struct {
	addrs      []string
	metricsURL string
	inputs     [][]float64 // test-split feature vectors for the query pool

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func (f *fleet) shutdown() {
	f.cancel()
	f.wg.Wait()
}

// startSelfServe trains a small model on the named synthetic workload and
// serves it from cfg.selfserve in-process replicas. Every replica shares
// the process-wide metrics registry, so the auto-wired metrics listener
// covers the whole fleet — exactly what -check needs.
func startSelfServe(ctx context.Context, cfg config, errw io.Writer) (*fleet, error) {
	ds, err := privehd.LoadDataset(cfg.dataset, true)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(errw, "training %s (dim %d, %d samples)\n", cfg.dataset, cfg.dim, len(ds.TrainX))
	p, err := privehd.New(
		privehd.WithDim(cfg.dim),
		privehd.WithRetrain(0),
		privehd.WithSeed(42),
	)
	if err != nil {
		return nil, err
	}
	if err := p.Train(ds.TrainX, ds.TrainY); err != nil {
		return nil, err
	}
	// One registry per shard cell: the default 1×1 grid is a single whole
	// registry; -shard-grid DxC splits the model into D dimension × C
	// class slices, each published from its own registry so each listener
	// advertises exactly one slice in its handshake. An unset grid (a
	// config built without flag parsing) means unsharded.
	if cfg.dimShards < 1 {
		cfg.dimShards = 1
	}
	if cfg.classShards < 1 {
		cfg.classShards = 1
	}
	var registries []*privehd.Registry
	dim, classes := p.Dim(), p.Classes()
	for di := 0; di < cfg.dimShards; di++ {
		for ci := 0; ci < cfg.classShards; ci++ {
			reg := privehd.NewRegistry()
			if cfg.dimShards == 1 && cfg.classShards == 1 {
				if err := reg.Register(cfg.model, p); err != nil {
					return nil, err
				}
			} else {
				d0, d1 := di*dim/cfg.dimShards, (di+1)*dim/cfg.dimShards
				c0, c1 := ci*classes/cfg.classShards, (ci+1)*classes/cfg.classShards
				err := reg.RegisterShard(cfg.model, p, privehd.ShardSlice{
					DimOffset: d0, DimLen: d1 - d0,
					ClassOffset: c0, ClassCount: c1 - c0,
				})
				if err != nil {
					return nil, err
				}
			}
			registries = append(registries, reg)
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	f := &fleet{inputs: ds.TestX, cancel: cancel}
	fail := func(err error) (*fleet, error) {
		f.shutdown()
		return nil, err
	}
	// -selfserve N means N replicas per shard cell, so every slice of a
	// sharded grid is itself replicated and the coordinator has somewhere
	// to fail over.
	for _, reg := range registries {
		for i := 0; i < cfg.selfserve; i++ {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fail(err)
			}
			f.addrs = append(f.addrs, lis.Addr().String())
			serveLis := net.Listener(lis)
			if cfg.chaosSpec != "" {
				// Each replica gets its own fault personality: the same
				// spec seed offset by the replica index, so runs replay
				// but replicas fail independently. The metrics listener
				// stays clean — observability must survive the chaos.
				ccfg := cfg.chaosCfg
				ccfg.Seed += int64(len(f.addrs)) << 32
				serveLis = chaos.Wrap(lis, ccfg)
			}
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				privehd.ServeRegistry(ctx, serveLis, reg)
			}()
		}
	}
	mlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	f.metricsURL = fmt.Sprintf("http://%s/metrics", mlis.Addr())
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		privehd.ServeMetrics(ctx, mlis)
	}()
	// Give the exposition listener a beat to start accepting; the replica
	// listeners are already bound, so the cluster dial needs no wait.
	time.Sleep(10 * time.Millisecond)
	if len(registries) > 1 {
		fmt.Fprintf(errw, "selfserve fleet up: %dx%d shard grid × %d replicas each, metrics at %s\n",
			cfg.dimShards, cfg.classShards, cfg.selfserve, f.metricsURL)
	} else {
		fmt.Fprintf(errw, "selfserve fleet up: %d replicas, metrics at %s\n", len(f.addrs), f.metricsURL)
	}
	return f, nil
}
