// Command privehd-serve is the cloud side of the §III-C offloaded
// inference demo: it trains (or loads) a full-precision HD model and serves
// classification over TCP. Pair it with examples/cloud_inference or any
// offload.Client.
//
// Usage:
//
//	privehd-serve [-addr :7311] [-dataset isolet-s] [-dim 10000] [-model model.gob]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"privehd/internal/dataset"
	"privehd/internal/hdc"
	"privehd/internal/offload"
)

func main() {
	addr := flag.String("addr", ":7311", "listen address")
	name := flag.String("dataset", "isolet-s", "workload to train the served model on")
	dim := flag.Int("dim", 10000, "hypervector dimensionality")
	levels := flag.Int("levels", 100, "feature quantization levels")
	seed := flag.Uint64("seed", 1, "random seed (must match the clients' encoder seed)")
	modelPath := flag.String("model", "", "load a saved model instead of training")
	small := flag.Bool("small", false, "train on the small dataset scale")
	flag.Parse()

	model, err := buildModel(*modelPath, *name, *dim, *levels, *seed, *small)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privehd-serve:", err)
		os.Exit(1)
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privehd-serve:", err)
		os.Exit(1)
	}
	fmt.Printf("serving %d-class model (D=%d) on %s\n", model.NumClasses(), model.Dim(), lis.Addr())
	srv := offload.NewServer(model)
	if err := srv.Serve(lis); err != nil {
		fmt.Fprintln(os.Stderr, "privehd-serve:", err)
		os.Exit(1)
	}
}

func buildModel(path, name string, dim, levels int, seed uint64, small bool) (*hdc.Model, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return hdc.LoadModel(f)
	}
	scale := dataset.Full
	if small {
		scale = dataset.Small
	}
	d, err := dataset.ByName(name, scale)
	if err != nil {
		return nil, err
	}
	enc, err := hdc.NewScalarEncoder(hdc.Config{Dim: dim, Features: d.Features, Levels: levels, Seed: seed})
	if err != nil {
		return nil, err
	}
	fmt.Printf("training full-precision model on %s (%d samples)...\n", d.Name, len(d.TrainX))
	encoded := hdc.EncodeBatch(enc, d.TrainX, 0)
	return hdc.Train(encoded, d.TrainY, d.Classes, dim)
}
