// Command privehd-serve is the cloud side of the §III-C offloaded
// inference demo: it serves one or many models over TCP with the versioned
// privehd protocol (v3: clients pick a model by name in the handshake and
// can auto-configure their edge from the answer). Pair it with `privehd
// infer`, examples/cloud_inference, or any privehd.Dial/DialModel client.
// SIGINT/SIGTERM trigger a graceful shutdown that finishes in-flight
// requests.
//
// Serve saved pipelines by name (repeatable; the first is the default
// unless -default says otherwise):
//
//	privehd-serve -model isolet=isolet.gob -model faces=faces.gob -default faces
//
// A bare path serves that pipeline as "default":
//
//	privehd-serve -model pipeline.gob
//
// With no -model flags it trains a model on a synthetic workload and
// serves that:
//
//	privehd-serve [-addr :7311] [-dataset isolet-s] [-dim 10000]
//	              [-max-batch 256] [-workers 0]
//
// -replicas N serves the same registry from N listeners on consecutive
// ports — a one-process stand-in for a replica fleet that pooled cluster
// clients (privehd.DialCluster) balance over and fail across:
//
//	privehd-serve -addr :7311 -replicas 3
//
// -shard dim=A:B[,class=C:D] serves only that slice of each model — one
// replica of a model split across a fleet. Start one process per slice
// (the descriptors must tile the model exactly) and point a sharded
// client (privehd.Connect with TopologySharded) at all of them; it
// scatter–gathers exact partial scores and predicts bit-identically to
// whole-model serving:
//
//	privehd-serve -addr :7311 -shard dim=0:5000
//	privehd-serve -addr :7312 -shard dim=5000:10000
//
// -store DIR makes the deployment durable: every published model lives in
// a crash-safe versioned store under DIR, and a restart replays the exact
// active versions and default that were live before. Models already in the
// store win over same-named -model flags; new names from -model flags (and
// a first-boot self-trained model) are published into the store. -admin
// ADDR (requires -store and -admin-token TOKEN, or PRIVEHD_ADMIN_TOKEN in
// the environment) adds the HTTP management plane: upload, activate,
// rollback, set-default, deregister and list — see privehd.ServeAdmin.
//
//	privehd-serve -store /var/lib/privehd -admin 127.0.0.1:7312 -admin-token t
//
// Observability: -trace-sample R traces a fraction of requests end to end
// (stage-timing replies, the GET /v1/debug/requests flight recorder, and
// trace-ID exemplars on /metrics histograms), -slow-request D logs a
// structured warning with a stage breakdown for any request slower than D,
// and -pprof mounts net/http/pprof on the -admin API — behind its bearer
// token, never on the public serve listener. PRIVEHD_TRACE_SAMPLE and
// PRIVEHD_PPROF are the environment equivalents.
//
//	privehd-serve -admin 127.0.0.1:7312 -admin-token t -store /var/lib/privehd \
//	              -trace-sample 0.01 -slow-request 50ms -pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"privehd"
)

// modelFlags collects repeatable -model name=path values.
type modelFlags []string

func (m *modelFlags) String() string { return strings.Join(*m, ", ") }

func (m *modelFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// fatal logs one error event and exits non-zero — the contract operators
// and process supervisors rely on for startup failures. It falls back to
// plain stderr before the logger exists.
func fatal(log *slog.Logger, err error) {
	if log == nil {
		fmt.Fprintln(os.Stderr, "privehd-serve:", err)
	} else {
		log.Error("fatal", "error", err)
	}
	os.Exit(1)
}

// newLogger builds the process logger from the -log-format and -log-level
// flags. Logs go to stderr, keeping stdout clean for data a pipeline might
// consume.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (valid: debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (valid: text, json)", format)
	}
}

func main() {
	var models modelFlags
	flag.Var(&models, "model",
		"serve a saved pipeline as name=path (repeatable); a bare path serves it as \"default\"")
	addr := flag.String("addr", ":7311", "listen address")
	defaultName := flag.String("default", "",
		"model served to clients that name none (defaults to the first -model)")
	name := flag.String("dataset", "isolet-s",
		"workload to train a model on when no -model is given: "+strings.Join(privehd.DatasetNames(), ", "))
	dim := flag.Int("dim", 10000, "hypervector dimensionality (self-trained model)")
	levels := flag.Int("levels", 100, "feature quantization levels (self-trained model)")
	seed := flag.Uint64("seed", 1, "random seed (v3 clients auto-configure; manual edges must match)")
	small := flag.Bool("small", false, "train on the small dataset scale")
	maxBatch := flag.Int("max-batch", 256, "largest query batch accepted per request")
	workers := flag.Int("workers", 0,
		"scoring worker pool shared across connections (0 = GOMAXPROCS)")
	replicas := flag.Int("replicas", 1,
		"serve the registry from this many listeners on consecutive ports (cluster clients balance across them)")
	shardSpec := flag.String("shard", "",
		"serve only a slice of each model, as dim=A:B and/or class=A:B (half-open ranges, e.g. dim=0:2000 or dim=0:2000,class=0:5); sharded clients (privehd.Connect with TopologySharded) scatter-gather across a fleet of such slices")
	// Scalar default: the self-trained model stays full precision, and
	// 1-bit edge queries only track a full-precision model under the
	// Eq. 2a form — matching `privehd infer`'s default.
	encName := flag.String("encoding", "scalar",
		"paper encoding for the self-trained model: level (Eq. 2b) or scalar (Eq. 2a)")
	storeDir := flag.String("store", "",
		"durable model store directory: published models survive restarts (created if missing)")
	adminAddr := flag.String("admin", "",
		"HTTP management-plane listen address (requires -store and an admin token)")
	adminToken := flag.String("admin-token", "",
		"bearer token for the -admin API (or set PRIVEHD_ADMIN_TOKEN)")
	metricsAddr := flag.String("metrics", "",
		"standalone Prometheus /metrics listen address (the -admin API also serves GET /metrics)")
	maxConns := flag.Int("max-conns", 0,
		"largest number of open serving connections per listener; extra connections get a typed overload rejection (0 = unlimited)")
	pprofFlag := flag.Bool("pprof", false,
		"mount /debug/pprof on the -admin API, behind its bearer token (or set PRIVEHD_PPROF=1); requires -admin — profiles never bind the public serve listener")
	traceSample := flag.Float64("trace-sample", -1,
		"fraction of requests to trace end to end, 0..1 (or set PRIVEHD_TRACE_SAMPLE); traced requests feed GET /v1/debug/requests and metrics exemplars (default 0: disabled)")
	slowReq := flag.Duration("slow-request", 0,
		"log a structured warning with a stage breakdown for requests this slow server-side, traced or not (0 = disabled)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	flag.Parse()

	log, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fatal(nil, err)
	}

	var shardSlice *privehd.ShardSlice
	if *shardSpec != "" {
		s, err := parseShardSlice(*shardSpec)
		if err != nil {
			fatal(log, err)
		}
		if *storeDir != "" {
			fatal(log, fmt.Errorf("-shard is incompatible with -store: slices are derived at startup, the durable publication stays whole"))
		}
		shardSlice = &s
	}
	if *adminAddr != "" && *storeDir == "" {
		fatal(log, fmt.Errorf("-admin requires -store: the management plane mutates durable state"))
	}
	token := *adminToken
	if token == "" {
		token = os.Getenv("PRIVEHD_ADMIN_TOKEN")
	}
	if *adminAddr != "" && token == "" {
		fatal(log, fmt.Errorf("-admin requires -admin-token (or PRIVEHD_ADMIN_TOKEN): refusing an unauthenticated management plane"))
	}
	enablePprof := *pprofFlag
	if !enablePprof {
		switch strings.ToLower(os.Getenv("PRIVEHD_PPROF")) {
		case "", "0", "false", "no":
		default:
			enablePprof = true
		}
	}
	if enablePprof && *adminAddr == "" {
		fatal(log, fmt.Errorf("-pprof requires -admin: profiling handlers only bind the authenticated admin listener, never the public serve listener"))
	}
	sample := *traceSample
	if sample < 0 {
		sample = 0
		if v := os.Getenv("PRIVEHD_TRACE_SAMPLE"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fatal(log, fmt.Errorf("bad PRIVEHD_TRACE_SAMPLE %q: %w", v, err))
			}
			sample = f
		}
	}
	if sample < 0 || sample > 1 {
		fatal(log, fmt.Errorf("-trace-sample must be in 0..1, got %v", sample))
	}
	privehd.SetTraceSampling(sample)

	reg, mgr, sources, err := buildDeployment(log, models, *storeDir, *defaultName,
		*name, *dim, *levels, *seed, *small, *encName, shardSlice)
	if err != nil {
		fatal(log, err)
	}
	if *replicas < 1 {
		*replicas = 1
	}
	listeners, err := listenReplicas(*addr, *replicas)
	if err != nil {
		fatal(log, err)
	}
	var adminLis net.Listener
	if *adminAddr != "" {
		adminLis, err = net.Listen("tcp", *adminAddr)
		if err != nil {
			fatal(log, fmt.Errorf("admin listener: %w", err))
		}
	}
	var metricsLis net.Listener
	if *metricsAddr != "" {
		metricsLis, err = net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(log, fmt.Errorf("metrics listener: %w", err))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	replicaAddrs := make([]string, len(listeners))
	for i, lis := range listeners {
		replicaAddrs[i] = lis.Addr().String()
	}
	log.Info("serving",
		"models", reg.Len(),
		"addrs", strings.Join(replicaAddrs, ","),
		"protocol", privehd.ProtocolVersion,
		"default", reg.DefaultName(),
		"replicas", len(listeners))
	// One event per model with its provenance, so an operator can check a
	// recovery at a glance: source=store means it survived a restart.
	for _, m := range reg.Models() {
		log.Info("model live",
			"model", m.Name, "version", m.Version, "source", sources[m.Name],
			"dim", m.Dim, "classes", m.Classes,
			"encoding", m.Encoding.String(), "levels", m.Levels, "seed", m.Seed)
	}
	if adminLis != nil {
		log.Info("management plane up", "addr", adminLis.Addr().String(), "auth", "bearer", "pprof", enablePprof)
	}
	if metricsLis != nil {
		log.Info("metrics exposition up", "addr", metricsLis.Addr().String())
	}
	if sample > 0 {
		log.Info("request tracing enabled", "sample", sample)
	}
	opts := []privehd.ServerOption{privehd.WithMaxBatch(*maxBatch)}
	if *workers > 0 {
		opts = append(opts, privehd.WithServerWorkers(*workers))
	}
	if *maxConns > 0 {
		opts = append(opts, privehd.WithMaxConns(*maxConns))
	}
	if *slowReq > 0 {
		opts = append(opts, privehd.WithSlowRequestLog(log, *slowReq))
	}
	// One server per listener, all answering from the same live registry:
	// a Register or Swap takes effect on every replica at once. The admin
	// and metrics planes join the same error channel, so their failure
	// tears the process down non-zero like a data-plane failure would.
	serves := len(listeners)
	errCh := make(chan error, serves+2)
	for _, lis := range listeners {
		go func(lis net.Listener) {
			errCh <- privehd.ServeRegistry(ctx, lis, reg, opts...)
		}(lis)
	}
	if adminLis != nil {
		serves++
		var aopts []privehd.AdminOption
		if enablePprof {
			aopts = append(aopts, privehd.WithAdminPprof())
		}
		go func() {
			errCh <- privehd.ServeAdmin(ctx, adminLis, mgr, token, aopts...)
		}()
	}
	if metricsLis != nil {
		serves++
		go func() {
			errCh <- privehd.ServeMetrics(ctx, metricsLis)
		}()
	}
	for i := 0; i < serves; i++ {
		if err := <-errCh; err != nil {
			fatal(log, err)
		}
	}
	log.Info("shut down cleanly")
}

// parseShardSlice parses the -shard flag: comma-separated dim=A:B and/or
// class=A:B half-open ranges.
func parseShardSlice(spec string) (privehd.ShardSlice, error) {
	var s privehd.ShardSlice
	for _, part := range strings.Split(spec, ",") {
		key, rng, ok := strings.Cut(part, "=")
		if !ok {
			return s, fmt.Errorf("bad -shard part %q (want dim=A:B or class=A:B)", part)
		}
		loStr, hiStr, ok := strings.Cut(rng, ":")
		if !ok {
			return s, fmt.Errorf("bad -shard range %q (want A:B, half-open)", rng)
		}
		lo, err := strconv.Atoi(loStr)
		if err != nil {
			return s, fmt.Errorf("bad -shard range %q: %w", rng, err)
		}
		hi, err := strconv.Atoi(hiStr)
		if err != nil {
			return s, fmt.Errorf("bad -shard range %q: %w", rng, err)
		}
		if lo < 0 || hi <= lo {
			return s, fmt.Errorf("bad -shard range %q: want 0 <= A < B", rng)
		}
		switch key {
		case "dim":
			s.DimOffset, s.DimLen = lo, hi-lo
		case "class":
			s.ClassOffset, s.ClassCount = lo, hi-lo
		default:
			return s, fmt.Errorf("bad -shard key %q (want dim or class)", key)
		}
	}
	return s, nil
}

// listenReplicas opens n listeners: the first on addr, the rest on the
// following ports (port 0 asks the kernel for n free ports instead). A
// single replica listens on addr as-is, so service-name ports keep
// working; consecutive-port math needs a numeric port.
func listenReplicas(addr string, n int) ([]net.Listener, error) {
	if n == 1 {
		lis, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return []net.Listener{lis}, nil
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("bad -addr %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("-replicas needs a numeric -addr port to count from, got %q: %w", portStr, err)
	}
	listeners := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		p := port
		if port != 0 {
			p = port + i
		}
		lis, err := net.Listen("tcp", net.JoinHostPort(host, strconv.Itoa(p)))
		if err != nil {
			for _, l := range listeners {
				l.Close()
			}
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		listeners = append(listeners, lis)
	}
	return listeners, nil
}

// buildDeployment assembles the serving state: replay the store (when
// -store is set), layer -model flags on top (store wins on name clashes —
// an operator flag must not silently shadow a durable publication), and
// self-train a model only if nothing else produced one. sources records
// each model's provenance for the startup log. mgr is nil without -store.
func buildDeployment(log *slog.Logger, models modelFlags, storeDir, defaultName, dataset string,
	dim, levels int, seed uint64, small bool, encName string, shard *privehd.ShardSlice,
) (*privehd.Registry, *privehd.Manager, map[string]string, error) {
	reg := privehd.NewRegistry()
	sources := make(map[string]string)
	var mgr *privehd.Manager
	if storeDir != "" {
		var err error
		mgr, err = privehd.OpenManager(storeDir, reg, privehd.WithManagerLogger(log))
		if err != nil {
			return nil, nil, nil, err
		}
		for _, m := range reg.Models() {
			sources[m.Name] = "store"
		}
	}

	// publish makes a pipeline live — durably when a store backs us, as a
	// model slice when -shard narrows this replica's share.
	publish := func(name string, pipe *privehd.Pipeline) error {
		if shard != nil {
			return reg.RegisterShard(name, pipe, *shard)
		}
		if mgr != nil {
			_, err := mgr.Publish(name, pipe)
			return err
		}
		return reg.Register(name, pipe)
	}

	for _, spec := range models {
		name, path := privehd.DefaultModelName, spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
		}
		if name == "" || path == "" {
			return nil, nil, nil, fmt.Errorf("bad -model %q (want name=path or a bare path)", spec)
		}
		if sources[name] == "store" {
			log.Warn("model already in the store; ignoring -model flag (deregister it over the admin API to replace)",
				"model", name, "path", path)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, nil, err
		}
		pipe, err := privehd.Load(f)
		f.Close()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("loading %s: %w", path, err)
		}
		if err := publish(name, pipe); err != nil {
			return nil, nil, nil, err
		}
		sources[name] = "flag"
	}

	if reg.Len() == 0 {
		pipe, err := trainPipeline(log, dataset, dim, levels, seed, small, encName)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := publish(privehd.DefaultModelName, pipe); err != nil {
			return nil, nil, nil, err
		}
		sources[privehd.DefaultModelName] = "trained"
	}

	if defaultName != "" {
		if mgr != nil {
			if err := mgr.SetDefault(defaultName); err != nil {
				return nil, nil, nil, err
			}
		} else if err := reg.SetDefault(defaultName); err != nil {
			return nil, nil, nil, err
		}
	}
	return reg, mgr, sources, nil
}

// trainPipeline trains the self-served model on a synthetic workload.
func trainPipeline(log *slog.Logger, name string, dim, levels int, seed uint64, small bool, encName string) (*privehd.Pipeline, error) {
	d, err := privehd.LoadDataset(name, small)
	if err != nil {
		return nil, err
	}
	enc := privehd.Level
	switch encName {
	case "level":
	case "scalar":
		enc = privehd.Scalar
	default:
		return nil, fmt.Errorf("unknown encoding %q (valid: level, scalar)", encName)
	}
	// The served model stays full precision ("our technique does not need
	// to modify or access the trained model"); clients obfuscate on their
	// side.
	pipe, err := privehd.New(
		privehd.WithDim(dim),
		privehd.WithLevels(levels),
		privehd.WithSeed(seed),
		privehd.WithEncoding(enc),
		privehd.WithQuantizer("full"),
		privehd.WithRetrain(0),
	)
	if err != nil {
		return nil, err
	}
	log.Info("training full-precision model", "dataset", d.Name, "samples", len(d.TrainX), "dim", dim)
	if err := pipe.Train(d.TrainX, d.TrainY); err != nil {
		return nil, err
	}
	return pipe, nil
}
