// Command privehd-serve is the cloud side of the §III-C offloaded
// inference demo: it trains (or loads) a pipeline and serves
// classification over TCP with the versioned privehd protocol. Pair it
// with `privehd infer`, examples/cloud_inference, or any privehd.Dial
// client. SIGINT/SIGTERM trigger a graceful shutdown that finishes
// in-flight requests.
//
// Usage:
//
//	privehd-serve [-addr :7311] [-dataset isolet-s] [-dim 10000]
//	              [-model pipeline.gob] [-max-batch 256]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"privehd"
)

func main() {
	addr := flag.String("addr", ":7311", "listen address")
	name := flag.String("dataset", "isolet-s",
		"workload to train the served model on: "+strings.Join(privehd.DatasetNames(), ", "))
	dim := flag.Int("dim", 10000, "hypervector dimensionality")
	levels := flag.Int("levels", 100, "feature quantization levels")
	seed := flag.Uint64("seed", 1, "random seed (must match the clients' encoder seed)")
	pipePath := flag.String("model", "", "load a saved pipeline instead of training")
	small := flag.Bool("small", false, "train on the small dataset scale")
	maxBatch := flag.Int("max-batch", 256, "largest query batch accepted per request")
	// Scalar default: the self-trained model stays full precision, and
	// 1-bit edge queries only track a full-precision model under the
	// Eq. 2a form — matching `privehd infer`'s default.
	encName := flag.String("encoding", "scalar",
		"paper encoding for the self-trained model: level (Eq. 2b) or scalar (Eq. 2a); clients must match")
	flag.Parse()

	pipe, err := buildPipeline(*pipePath, *name, *dim, *levels, *seed, *small, *encName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privehd-serve:", err)
		os.Exit(1)
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privehd-serve:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("serving %d-class pipeline (D=%d, %s encoding, protocol v%d) on %s\n",
		pipe.Classes(), pipe.Dim(), pipe.Encoding(), privehd.ProtocolVersion, lis.Addr())
	fmt.Printf("clients must encode with: -dim %d -encoding %s\n", pipe.Dim(), pipe.Encoding())
	if err := privehd.Serve(ctx, lis, pipe, privehd.WithMaxBatch(*maxBatch)); err != nil {
		fmt.Fprintln(os.Stderr, "privehd-serve:", err)
		os.Exit(1)
	}
	fmt.Println("privehd-serve: shut down cleanly")
}

func buildPipeline(path, name string, dim, levels int, seed uint64, small bool, encName string) (*privehd.Pipeline, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return privehd.Load(f)
	}
	d, err := privehd.LoadDataset(name, small)
	if err != nil {
		return nil, err
	}
	enc := privehd.Level
	switch encName {
	case "level":
	case "scalar":
		enc = privehd.Scalar
	default:
		return nil, fmt.Errorf("unknown encoding %q (valid: level, scalar)", encName)
	}
	// The served model stays full precision ("our technique does not need
	// to modify or access the trained model"); clients obfuscate on their
	// side.
	pipe, err := privehd.New(
		privehd.WithDim(dim),
		privehd.WithLevels(levels),
		privehd.WithSeed(seed),
		privehd.WithEncoding(enc),
		privehd.WithQuantizer("full"),
		privehd.WithRetrain(0),
	)
	if err != nil {
		return nil, err
	}
	fmt.Printf("training full-precision model on %s (%d samples)...\n", d.Name, len(d.TrainX))
	if err := pipe.Train(d.TrainX, d.TrainY); err != nil {
		return nil, err
	}
	return pipe, nil
}
