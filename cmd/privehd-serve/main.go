// Command privehd-serve is the cloud side of the §III-C offloaded
// inference demo: it serves one or many models over TCP with the versioned
// privehd protocol (v3: clients pick a model by name in the handshake and
// can auto-configure their edge from the answer). Pair it with `privehd
// infer`, examples/cloud_inference, or any privehd.Dial/DialModel client.
// SIGINT/SIGTERM trigger a graceful shutdown that finishes in-flight
// requests.
//
// Serve saved pipelines by name (repeatable; the first is the default
// unless -default says otherwise):
//
//	privehd-serve -model isolet=isolet.gob -model faces=faces.gob -default faces
//
// A bare path serves that pipeline as "default":
//
//	privehd-serve -model pipeline.gob
//
// With no -model flags it trains a model on a synthetic workload and
// serves that:
//
//	privehd-serve [-addr :7311] [-dataset isolet-s] [-dim 10000]
//	              [-max-batch 256] [-workers 0]
//
// -replicas N serves the same registry from N listeners on consecutive
// ports — a one-process stand-in for a replica fleet that pooled cluster
// clients (privehd.DialCluster) balance over and fail across:
//
//	privehd-serve -addr :7311 -replicas 3
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"privehd"
)

// modelFlags collects repeatable -model name=path values.
type modelFlags []string

func (m *modelFlags) String() string { return strings.Join(*m, ", ") }

func (m *modelFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var models modelFlags
	flag.Var(&models, "model",
		"serve a saved pipeline as name=path (repeatable); a bare path serves it as \"default\"")
	addr := flag.String("addr", ":7311", "listen address")
	defaultName := flag.String("default", "",
		"model served to clients that name none (defaults to the first -model)")
	name := flag.String("dataset", "isolet-s",
		"workload to train a model on when no -model is given: "+strings.Join(privehd.DatasetNames(), ", "))
	dim := flag.Int("dim", 10000, "hypervector dimensionality (self-trained model)")
	levels := flag.Int("levels", 100, "feature quantization levels (self-trained model)")
	seed := flag.Uint64("seed", 1, "random seed (v3 clients auto-configure; manual edges must match)")
	small := flag.Bool("small", false, "train on the small dataset scale")
	maxBatch := flag.Int("max-batch", 256, "largest query batch accepted per request")
	workers := flag.Int("workers", 0,
		"scoring worker pool shared across connections (0 = GOMAXPROCS)")
	replicas := flag.Int("replicas", 1,
		"serve the registry from this many listeners on consecutive ports (cluster clients balance across them)")
	// Scalar default: the self-trained model stays full precision, and
	// 1-bit edge queries only track a full-precision model under the
	// Eq. 2a form — matching `privehd infer`'s default.
	encName := flag.String("encoding", "scalar",
		"paper encoding for the self-trained model: level (Eq. 2b) or scalar (Eq. 2a)")
	flag.Parse()

	reg, err := buildRegistry(models, *defaultName, *name, *dim, *levels, *seed, *small, *encName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privehd-serve:", err)
		os.Exit(1)
	}
	if *replicas < 1 {
		*replicas = 1
	}
	listeners, err := listenReplicas(*addr, *replicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privehd-serve:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	replicaAddrs := make([]string, len(listeners))
	for i, lis := range listeners {
		replicaAddrs[i] = lis.Addr().String()
	}
	fmt.Printf("serving %d model(s) on %s (protocol v%d, default %q):\n",
		reg.Len(), strings.Join(replicaAddrs, ", "), privehd.ProtocolVersion, reg.DefaultName())
	for _, m := range reg.Models() {
		fmt.Printf("  %-16s v%d  D=%d  classes=%d  %s encoding, %d levels, seed %d\n",
			m.Name, m.Version, m.Dim, m.Classes, m.Encoding, m.Levels, m.Seed)
	}
	fmt.Println("v3+ clients auto-configure from the handshake (privehd.DialModel)")
	if len(listeners) > 1 {
		fmt.Printf("cluster clients balance and fail over across all %d replicas (privehd.DialCluster)\n",
			len(listeners))
	}
	opts := []privehd.ServerOption{privehd.WithMaxBatch(*maxBatch)}
	if *workers > 0 {
		opts = append(opts, privehd.WithServerWorkers(*workers))
	}
	// One server per listener, all answering from the same live registry:
	// a Register or Swap takes effect on every replica at once.
	errCh := make(chan error, len(listeners))
	for _, lis := range listeners {
		go func(lis net.Listener) {
			errCh <- privehd.ServeRegistry(ctx, lis, reg, opts...)
		}(lis)
	}
	for range listeners {
		if err := <-errCh; err != nil {
			fmt.Fprintln(os.Stderr, "privehd-serve:", err)
			os.Exit(1)
		}
	}
	fmt.Println("privehd-serve: shut down cleanly")
}

// listenReplicas opens n listeners: the first on addr, the rest on the
// following ports (port 0 asks the kernel for n free ports instead). A
// single replica listens on addr as-is, so service-name ports keep
// working; consecutive-port math needs a numeric port.
func listenReplicas(addr string, n int) ([]net.Listener, error) {
	if n == 1 {
		lis, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return []net.Listener{lis}, nil
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("bad -addr %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("-replicas needs a numeric -addr port to count from, got %q: %w", portStr, err)
	}
	listeners := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		p := port
		if port != 0 {
			p = port + i
		}
		lis, err := net.Listen("tcp", net.JoinHostPort(host, strconv.Itoa(p)))
		if err != nil {
			for _, l := range listeners {
				l.Close()
			}
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		listeners = append(listeners, lis)
	}
	return listeners, nil
}

// buildRegistry loads every -model flag into a registry, or trains a
// single default model when none was given.
func buildRegistry(models modelFlags, defaultName, dataset string, dim, levels int, seed uint64, small bool, encName string) (*privehd.Registry, error) {
	reg := privehd.NewRegistry()
	if len(models) == 0 {
		pipe, err := trainPipeline(dataset, dim, levels, seed, small, encName)
		if err != nil {
			return nil, err
		}
		if err := reg.Register(privehd.DefaultModelName, pipe); err != nil {
			return nil, err
		}
		return reg, nil
	}
	for _, spec := range models {
		name, path := privehd.DefaultModelName, spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
		}
		if name == "" || path == "" {
			return nil, fmt.Errorf("bad -model %q (want name=path or a bare path)", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		pipe, err := privehd.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		if err := reg.Register(name, pipe); err != nil {
			return nil, err
		}
	}
	if defaultName != "" {
		if err := reg.SetDefault(defaultName); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// trainPipeline trains the self-served model on a synthetic workload.
func trainPipeline(name string, dim, levels int, seed uint64, small bool, encName string) (*privehd.Pipeline, error) {
	d, err := privehd.LoadDataset(name, small)
	if err != nil {
		return nil, err
	}
	enc := privehd.Level
	switch encName {
	case "level":
	case "scalar":
		enc = privehd.Scalar
	default:
		return nil, fmt.Errorf("unknown encoding %q (valid: level, scalar)", encName)
	}
	// The served model stays full precision ("our technique does not need
	// to modify or access the trained model"); clients obfuscate on their
	// side.
	pipe, err := privehd.New(
		privehd.WithDim(dim),
		privehd.WithLevels(levels),
		privehd.WithSeed(seed),
		privehd.WithEncoding(enc),
		privehd.WithQuantizer("full"),
		privehd.WithRetrain(0),
	)
	if err != nil {
		return nil, err
	}
	fmt.Printf("training full-precision model on %s (%d samples)...\n", d.Name, len(d.TrainX))
	if err := pipe.Train(d.TrainX, d.TrainY); err != nil {
		return nil, err
	}
	return pipe, nil
}
