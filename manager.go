package privehd

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"

	"privehd/internal/admin"
	"privehd/internal/hdc"
	"privehd/internal/metrics"
	"privehd/internal/registry"
	"privehd/internal/store"
)

// mRollbacks counts explicit rollbacks through the manager, per model —
// the "how often did we have to back out a deploy" alarm signal, distinct
// from privehd_model_active_version simply moving backwards.
var mRollbacks = metrics.Default.NewCounterVec(
	"privehd_model_rollbacks_total",
	"Explicit model rollbacks through the manager, by model name.",
	"model")

// Store-related sentinel errors, surfaced by Manager methods; test with
// errors.Is. ErrCorruptModel (pipeline.go) covers corrupt blobs from both
// Load and the store's checksum verification.
var (
	// ErrBadModelName reports a model name the durable store refuses
	// (empty, path-traversing, or otherwise unfit for a directory name).
	ErrBadModelName = store.ErrBadName
	// ErrUnknownVersion reports an activate or rollback naming a version
	// the store does not hold.
	ErrUnknownVersion = store.ErrUnknownVersion
)

// mapStoreErr rewraps the store's private unknown-model sentinel into the
// public ErrUnknownModel, so callers test one sentinel whether a name was
// missing from the registry or from the store.
func mapStoreErr(err error) error {
	if errors.Is(err, store.ErrUnknownModel) {
		return fmt.Errorf("%w: %v", ErrUnknownModel, err)
	}
	return err
}

// ManagerOption configures OpenManager.
type ManagerOption func(*managerConfig)

type managerConfig struct {
	storeOpts []store.Option
	logger    *slog.Logger
}

// WithStoreRetain bounds how many versions the store keeps per model
// (default 8): when a Publish or Upload pushes a model past the limit, the
// oldest non-active versions are garbage-collected. The active version is
// never collected.
func WithStoreRetain(n int) ManagerOption {
	return func(c *managerConfig) { c.storeOpts = append(c.storeOpts, store.WithRetain(n)) }
}

// WithManagerLogger routes the manager's structured control-plane events
// (publish, upload, activate, rollback, deregister, default changes,
// restart replay) to the given logger. By default they are discarded.
func WithManagerLogger(log *slog.Logger) ManagerOption {
	return func(c *managerConfig) { c.logger = log }
}

// Manager binds one durable on-disk model store to one serving registry so
// every mutation is durable: each Publish, Upload, Activate, Rollback,
// Deregister and SetDefault commits to the store first and only then
// publishes to the registry (publish-after-persist), so a crash at any
// point never leaves the deployment advertising state that won't survive a
// restart. OpenManager replays the store into the registry, restoring the
// exact active versions and default of the last committed state.
//
// Manager implements the management-plane backend: hand it to ServeAdmin
// to expose upload/activate/rollback/list over HTTP.
type Manager struct {
	st  *store.Store
	reg *Registry
	log *slog.Logger
}

// OpenManager opens (creating if needed) the model store in dir and
// replays its committed state into reg: every model with an active version
// is loaded, checksum-verified and registered under its stored version
// number, and the stored default is restored — after a restart, clients
// see exactly the versions and default they saw before. Models staged but
// never activated stay dormant in the store. Corrupt active blobs fail the
// open (wrapping ErrCorruptModel) rather than silently serving less than
// the manifest promises.
func OpenManager(dir string, reg *Registry, opts ...ManagerOption) (*Manager, error) {
	if reg == nil {
		return nil, errors.New("privehd: OpenManager: registry must not be nil")
	}
	var cfg managerConfig
	for _, o := range opts {
		o(&cfg)
	}
	st, err := store.Open(dir, cfg.storeOpts...)
	if err != nil {
		return nil, fmt.Errorf("privehd: opening model store: %w", err)
	}
	log := cfg.logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	m := &Manager{st: st, reg: reg, log: log}
	for _, mod := range st.List() {
		if mod.Active == 0 {
			continue // staged only, never published
		}
		blob, version, err := st.Get(mod.Name)
		if err != nil {
			return nil, fmt.Errorf("privehd: replaying model %q: %w", mod.Name, err)
		}
		p, err := Load(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("privehd: replaying model %q v%d: %w", mod.Name, version, err)
		}
		model, info, err := pipelineEntry(p)
		if err != nil {
			return nil, fmt.Errorf("privehd: replaying model %q v%d: %w", mod.Name, version, err)
		}
		if _, err := reg.inner.RegisterVersion(mod.Name, model, info, version); err != nil {
			return nil, fmt.Errorf("privehd: replaying model %q v%d: %w", mod.Name, version, err)
		}
		m.log.Info("model replayed from store", "model", mod.Name, "version", version)
	}
	// The stored default is the durable truth — including "none", which
	// must override the replay's first-Register auto-default.
	if st.Len() > 0 {
		if def := st.Default(); def != "" {
			if err := reg.SetDefault(def); err != nil {
				return nil, fmt.Errorf("privehd: restoring default %q: %w", def, err)
			}
		} else {
			reg.inner.ClearDefault()
		}
	}
	return m, nil
}

// Registry returns the serving registry behind the manager.
func (m *Manager) Registry() *Registry { return m.reg }

// Dir returns the store's root directory.
func (m *Manager) Dir() string { return m.st.Dir() }

// Publish persists a trained pipeline as the next version of name and
// activates it live: the blob is committed to the store first, then
// registered (first publication) or hot-swapped (later ones) in the
// registry under the same version number. It returns the assigned version.
func (m *Manager) Publish(name string, p *Pipeline) (int, error) {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return 0, err
	}
	v, err := m.commit(name, buf.Bytes(), p, true)
	if err == nil {
		m.log.Info("model published", "model", name, "version", v, "bytes", buf.Len())
	}
	return v, err
}

// Upload stores blob — bytes previously produced by Pipeline.Save — as a
// new version of name, activating it live unless told to stage. The blob
// is fully validated (Load) before anything is written: corrupt bytes are
// rejected with ErrCorruptModel and never reach the store.
func (m *Manager) Upload(name string, blob []byte, activate bool) (int, error) {
	p, err := Load(bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	if !activate {
		v, err := m.st.Put(name, blob, false)
		if err == nil {
			m.log.Info("model staged", "model", name, "version", v, "bytes", len(blob))
		}
		return v, mapStoreErr(err)
	}
	v, err := m.commit(name, blob, p, true)
	if err == nil {
		m.log.Info("model uploaded and activated", "model", name, "version", v, "bytes", len(blob))
	}
	return v, err
}

// commit is the publish-after-persist write path: store the blob, mirror
// the registry's first-model auto-default into the store, then publish the
// loaded pipeline under the stored version.
func (m *Manager) commit(name string, blob []byte, p *Pipeline, activate bool) (int, error) {
	model, info, err := pipelineEntry(p)
	if err != nil {
		return 0, err
	}
	version, err := m.st.Put(name, blob, activate)
	if err != nil {
		return 0, err
	}
	return version, m.publish(name, model, info, version)
}

// publish pushes an already-persisted version into the registry,
// registering or swapping as needed and keeping the store's default in
// step with the registry's first-model auto-default.
func (m *Manager) publish(name string, model *hdc.Model, info registry.EncoderInfo, version int) error {
	if m.live(name) {
		_, err := m.reg.inner.SwapVersion(name, model, info, version)
		return err
	}
	// First publication of this name: Register auto-defaults into an empty
	// registry, so persist that choice before it becomes visible.
	if m.reg.DefaultName() == "" && m.st.Default() == "" {
		if err := m.st.SetDefault(name); err != nil {
			return err
		}
	}
	_, err := m.reg.inner.RegisterVersion(name, model, info, version)
	return err
}

// live reports whether name is currently served by the registry.
func (m *Manager) live(name string) bool {
	_, err := m.reg.inner.Lookup(name)
	return name != "" && err == nil
}

// Activate makes a stored version the active one — the store commits
// first, then the registry serves it (a fresh registration if the model
// was only staged until now). Rollbacks re-activate an older version the
// same way; the published version number follows the store, downwards
// included.
func (m *Manager) Activate(name string, version int) error {
	blob, err := m.st.GetVersion(name, version)
	if err != nil {
		return mapStoreErr(err)
	}
	p, err := Load(bytes.NewReader(blob))
	if err != nil {
		return err
	}
	model, info, err := pipelineEntry(p)
	if err != nil {
		return err
	}
	if err := m.st.Activate(name, version); err != nil {
		return mapStoreErr(err)
	}
	if err := m.publish(name, model, info, version); err != nil {
		return err
	}
	m.log.Info("model version activated", "model", name, "version", version)
	return nil
}

// Rollback activates the version preceding the currently active one,
// returning the version it landed on. In-flight queries against the
// rolled-back version finish normally; later frames score against the
// restored one.
func (m *Manager) Rollback(name string) (int, error) {
	prev, err := m.st.PreviousVersion(name)
	if err != nil {
		return 0, mapStoreErr(err)
	}
	if err := m.Activate(name, prev); err != nil {
		return 0, err
	}
	mRollbacks.With(name).Inc()
	m.log.Warn("model rolled back", "model", name, "version", prev)
	return prev, nil
}

// Deregister removes name from serving and deletes its store entry,
// history included. Queries in flight finish; new frames naming it are
// rejected.
func (m *Manager) Deregister(name string) error {
	if err := m.st.Remove(name); err != nil {
		return mapStoreErr(err)
	}
	if err := m.reg.Deregister(name); err != nil && !errors.Is(err, ErrUnknownModel) {
		return err // staged-only models were never live; that's fine
	}
	m.log.Info("model deregistered", "model", name)
	return nil
}

// SetDefault durably names the model served to clients that request none.
// The name must be both stored and live.
func (m *Manager) SetDefault(name string) error {
	if !m.live(name) {
		return fmt.Errorf("%w: %q is not live", ErrUnknownModel, name)
	}
	if err := m.st.SetDefault(name); err != nil {
		return mapStoreErr(err)
	}
	if err := m.reg.SetDefault(name); err != nil {
		return err
	}
	m.log.Info("default model changed", "model", name)
	return nil
}

// Status lists every model the deployment knows — durable version history
// from the store merged with live registry state and per-model served
// counters — sorted by name. Models registered directly on the registry
// (bypassing the manager) appear with an empty history.
func (m *Manager) Status() []admin.ModelStatus {
	entries, liveDefault := m.reg.inner.SnapshotModels()
	byName := make(map[string]*registry.Entry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	def := liveDefault
	if def == "" {
		def = m.st.Default()
	}
	stored := m.st.List()
	out := make([]admin.ModelStatus, 0, len(stored)+len(entries))
	seen := make(map[string]bool, len(stored))
	for _, mod := range stored {
		seen[mod.Name] = true
		ms := admin.ModelStatus{
			Name:          mod.Name,
			ActiveVersion: mod.Active,
			Default:       mod.Name == def,
			Versions:      make([]admin.VersionInfo, len(mod.Versions)),
		}
		for i, v := range mod.Versions {
			ms.Versions[i] = admin.VersionInfo{Version: v.Version, SHA256: v.SHA256, Size: v.Size, Created: v.Created}
		}
		if e, ok := byName[mod.Name]; ok {
			ms.Live = true
			ms.Served = e.Served()
			ms.Dim = e.Model.Dim()
			ms.Classes = e.Model.NumClasses()
		}
		out = append(out, ms)
	}
	for _, e := range entries {
		if seen[e.Name] {
			continue
		}
		out = append(out, admin.ModelStatus{
			Name:          e.Name,
			ActiveVersion: e.Version,
			Default:       e.Name == def,
			Live:          true,
			Served:        e.Served(),
			Dim:           e.Model.Dim(),
			Classes:       e.Model.NumClasses(),
			Versions:      []admin.VersionInfo{},
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
