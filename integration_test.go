package privehd_test

import (
	"bytes"
	"math"
	"net"
	"testing"
	"time"

	"privehd/internal/attack"
	"privehd/internal/core"
	"privehd/internal/dataset"
	"privehd/internal/dp"
	"privehd/internal/hdc"
	"privehd/internal/offload"
	"privehd/internal/quant"
	"privehd/internal/vecmath"
)

// TestFullLifecycle walks the complete Prive-HD story across module
// boundaries: private training → model serialization → cloud serving →
// obfuscated edge inference → eavesdropper attack → membership attack on
// the released model. Everything a deployment would actually do.
func TestFullLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	data, err := dataset.FACES(dataset.Small)
	if err != nil {
		t.Fatal(err)
	}
	hdCfg := hdc.Config{Dim: 4000, Features: data.Features, Levels: 20, Seed: 77}

	// --- 1. Differentially private training. ----------------------------
	pipeline, err := core.Train(core.Config{
		HD:            hdCfg,
		Quantizer:     quant.BiasedTernary{},
		KeepDims:      2000,
		RetrainEpochs: 2,
		DP:            &dp.Params{Epsilon: 8, Delta: 1e-5},
		NoiseSeed:     78,
	}, data)
	if err != nil {
		t.Fatal(err)
	}
	report := pipeline.Report()
	if !report.Private || report.KeptDims != 2000 {
		t.Fatalf("unexpected report: %+v", report)
	}
	privateAcc := pipeline.Evaluate(data)
	if privateAcc < 0.6 {
		t.Errorf("private accuracy = %v, want ≥ 0.6 at ε=8 on an easy binary task", privateAcc)
	}

	// --- 2. Model round-trips through serialization. ---------------------
	var buf bytes.Buffer
	if err := pipeline.Model().Save(&buf); err != nil {
		t.Fatal(err)
	}
	served, err := hdc.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// --- 3. Serve the released model; classify through an obfuscating
	//        edge over real TCP. ------------------------------------------
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := offload.NewServer(served)
	go server.Serve(lis)
	defer server.Close()

	edge, err := core.NewEdge(core.EdgeConfig{
		HD: hdCfg, Encoding: core.EncodingLevel, Quantize: true,
		MaskDims: 500, MaskSeed: 79,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tapped, tap := offload.Tap(raw)
	client := offload.NewClient(tapped)
	defer client.Close()

	n := 20
	if n > len(data.TestX) {
		n = len(data.TestX)
	}
	// The served model was trained on masked biased-ternary encodings; the
	// edge sends bipolar+masked queries. Cross-scheme inference is the
	// paper's §III-C setting (degraded query, information-rich classes).
	queries := edge.PrepareBatch(data.TestX[:n], 0)
	labels, err := client.ClassifyBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, label := range labels {
		if label == data.TestY[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.55 {
		t.Errorf("served accuracy = %v over %d queries", acc, n)
	}

	// --- 4. The wiretap sees only obfuscated vectors. --------------------
	deadline := time.After(2 * time.Second)
	for len(tap.Queries()) < n {
		select {
		case <-deadline:
			t.Fatalf("tap saw %d/%d queries", len(tap.Queries()), n)
		case <-time.After(10 * time.Millisecond):
		}
	}
	for _, q := range tap.Queries() {
		zeros := 0
		for _, v := range q {
			switch v {
			case 0:
				zeros++
			case 1, -1:
			default:
				t.Fatalf("wiretap saw unquantized value %v", v)
			}
		}
		if zeros < 500 {
			t.Fatalf("wiretap query has %d zeros, want ≥ mask size", zeros)
		}
	}

	// --- 5. Membership attack on the DP release is blunted. --------------
	// Train the same pipeline minus one record; the class-difference of the
	// two *privatized* releases should no longer resemble the missing
	// record's encoding (clean models leak it near-exactly; see the attack
	// package tests for the undefended contrast).
	smaller := data.Subset(0.95)
	pipeline2, err := core.Train(core.Config{
		HD:            hdCfg,
		Quantizer:     quant.BiasedTernary{},
		KeepDims:      2000,
		RetrainEpochs: 2,
		DP:            &dp.Params{Epsilon: 8, Delta: 1e-5},
		NoiseSeed:     80, // fresh noise, as two releases would have
	}, smaller)
	if err != nil {
		t.Fatal(err)
	}
	diff, _, err := attack.ModelDifference(pipeline2.Model(), pipeline.Model())
	if err != nil {
		t.Fatal(err)
	}
	// The difference is dominated by the two independent noise draws: its
	// per-dimension rms must be at least a single release's calibrated
	// noise std, i.e. the record is buried.
	noiseFloor := report.NoiseStd
	rms := vecmath.Norm2(diff) / math.Sqrt(float64(len(diff)))
	if rms < noiseFloor {
		t.Errorf("model-difference rms %v below a single release's noise std %v — record insufficiently buried",
			rms, noiseFloor)
	}
}
