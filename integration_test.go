package privehd_test

//lint:file-ignore SA1019 the deprecated constructors stay fully supported; these tests pin their behavior

import (
	"bytes"
	"context"
	"math"
	"net"
	"testing"
	"time"

	"privehd"

	"privehd/internal/attack"
	"privehd/internal/hdc"
	"privehd/internal/vecmath"
)

// TestFullLifecycle walks the complete Prive-HD story across module
// boundaries, entirely through the public API: private training → pipeline
// serialization → cloud serving → obfuscated edge inference → eavesdropper
// attack → membership attack on the released model. Everything a
// deployment would actually do.
func TestFullLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	data, err := privehd.LoadDataset("face-s", true)
	if err != nil {
		t.Fatal(err)
	}
	// Both releases share the encoder seed (base hypervectors are public
	// setup); only the noise stream varies between them.
	opts := func(noiseSeed uint64) []privehd.Option {
		return []privehd.Option{
			privehd.WithDim(4000),
			privehd.WithLevels(20),
			privehd.WithSeed(77),
			privehd.WithNoiseSeed(noiseSeed),
			privehd.WithQuantizer("ternary-biased"),
			privehd.WithPruning(2000),
			privehd.WithRetrain(2),
			privehd.WithNoise(8, 1e-5),
		}
	}

	// --- 1. Differentially private training. ----------------------------
	pipeline, err := privehd.New(opts(78)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline.Train(data.TrainX, data.TrainY); err != nil {
		t.Fatal(err)
	}
	report := pipeline.Report()
	if !report.Private || report.KeptDims != 2000 {
		t.Fatalf("unexpected report: %+v", report)
	}
	privateAcc, err := pipeline.Evaluate(data.TestX, data.TestY)
	if err != nil {
		t.Fatal(err)
	}
	if privateAcc < 0.6 {
		t.Errorf("private accuracy = %v, want ≥ 0.6 at ε=8 on an easy binary task", privateAcc)
	}

	// --- 2. The pipeline round-trips through serialization. --------------
	var buf bytes.Buffer
	if err := pipeline.Save(&buf); err != nil {
		t.Fatal(err)
	}
	served, err := privehd.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if served.Dim() != pipeline.Dim() || served.Classes() != pipeline.Classes() {
		t.Fatalf("loaded geometry %d/%d, want %d/%d",
			served.Dim(), served.Classes(), pipeline.Dim(), pipeline.Classes())
	}

	// --- 3. Serve the released pipeline; classify through an obfuscating
	//        edge over real TCP. ------------------------------------------
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- privehd.Serve(ctx, lis, served) }()

	edge, err := served.Edge(privehd.WithQueryMask(500))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tapped, tap := privehd.Tap(raw)
	remote, err := privehd.NewRemote(tapped, edge)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	n := 20
	if n > len(data.TestX) {
		n = len(data.TestX)
	}
	// The served model was trained on masked biased-ternary encodings; the
	// edge sends bipolar+masked queries. Cross-scheme inference is the
	// paper's §III-C setting (degraded query, information-rich classes).
	labels, err := remote.PredictBatch(data.TestX[:n])
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, label := range labels {
		if label == data.TestY[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.55 {
		t.Errorf("served accuracy = %v over %d queries", acc, n)
	}

	// --- 4. The wiretap sees only obfuscated vectors. --------------------
	deadline := time.After(2 * time.Second)
	for len(tap.Queries()) < n {
		select {
		case <-deadline:
			t.Fatalf("tap saw %d/%d queries", len(tap.Queries()), n)
		case <-time.After(10 * time.Millisecond):
		}
	}
	for _, q := range tap.Queries() {
		zeros := 0
		for _, v := range q {
			switch v {
			case 0:
				zeros++
			case 1, -1:
			default:
				t.Fatalf("wiretap saw unquantized value %v", v)
			}
		}
		if zeros < 500 {
			t.Fatalf("wiretap query has %d zeros, want ≥ mask size", zeros)
		}
	}

	// The serving side answered every query and shuts down cleanly.
	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Error("Serve did not stop after context cancellation")
	}

	// --- 5. Membership attack on the DP release is blunted. --------------
	// Train the same pipeline minus one record; the class-difference of the
	// two *privatized* releases should no longer resemble the missing
	// record's encoding (clean models leak it near-exactly; see the attack
	// package tests for the undefended contrast). The attack itself stays
	// an internal tool — it is the adversary, not the product surface.
	smaller := data.Subset(0.95)
	pipeline2, err := privehd.New(opts(80)...) // fresh noise, as two releases would have
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline2.Train(smaller.TrainX, smaller.TrainY); err != nil {
		t.Fatal(err)
	}
	m1, m2 := releasedModel(t, pipeline), releasedModel(t, pipeline2)
	diff, _, err := attack.ModelDifference(m2, m1)
	if err != nil {
		t.Fatal(err)
	}
	// The difference is dominated by the two independent noise draws: its
	// per-dimension rms must be at least a single release's calibrated
	// noise std, i.e. the record is buried.
	noiseFloor := report.NoiseStd
	rms := vecmath.Norm2(diff) / math.Sqrt(float64(len(diff)))
	if rms < noiseFloor {
		t.Errorf("model-difference rms %v below a single release's noise std %v — record insufficiently buried",
			rms, noiseFloor)
	}
}

// releasedModel reassembles the published class hypervectors into a model
// the membership adversary can attack — the adversary sees exactly what
// ClassVectors releases.
func releasedModel(t *testing.T, p *privehd.Pipeline) *hdc.Model {
	t.Helper()
	classes, err := p.ClassVectors()
	if err != nil {
		t.Fatal(err)
	}
	m := hdc.NewModel(len(classes), p.Dim())
	for l, c := range classes {
		m.Add(l, c)
	}
	return m
}
