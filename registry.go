package privehd

import (
	"context"
	"net"

	"privehd/internal/hdc"
	"privehd/internal/offload"
	"privehd/internal/registry"
)

// DefaultModelName is the name a single-pipeline server (NewServer, Serve)
// publishes its model under, and what clients that request no model are
// served.
const DefaultModelName = offload.DefaultModelName

// ErrUnknownModel reports a dial or request naming a model the serving
// registry does not hold (or an empty name when no default is set); it is
// also what Registry methods return for unknown names. Test with errors.Is.
var ErrUnknownModel = offload.ErrUnknownModel

// Registry publishes named, hot-swappable pipelines for multi-model
// serving: many models behind one listener, selected by the model name in
// the protocol handshake, updated live with Swap.
//
// All methods are safe for concurrent use, and none of the mutations —
// Register, Swap, Deregister, SetDefault — ever block or fail queries in
// flight: the registry view is one atomic snapshot (RCU), so a query keeps
// the model publication it resolved while later frames see the update.
type Registry struct {
	inner *registry.Registry
}

// NewRegistry returns an empty model registry. Serve it with ServeRegistry
// and register pipelines before or after serving starts — handshakes
// resolve names against the live registry.
func NewRegistry() *Registry {
	return &Registry{inner: registry.New()}
}

// ModelInfo describes one published model: its registry identity and the
// public encoder setup advertised to v3 clients.
type ModelInfo struct {
	// Name is the registry key clients put in the handshake.
	Name string
	// Version counts publications under Name: 1 on Register, +1 per Swap.
	Version int
	// Dim and Classes are the served model's geometry.
	Dim     int
	Classes int
	// Encoding, Levels, Features and Seed are the encoder's shared public
	// setup, which v3+ edges auto-configure from.
	Encoding Encoding
	Levels   int
	Features int
	Seed     uint64
	// Default marks the model served to clients that name none.
	Default bool
}

// modelInfosFromListings converts a wire registry listing (Remote/Pool/
// Cluster ListModels) to the public ModelInfo shape.
func modelInfosFromListings(listings []offload.ModelListing) []ModelInfo {
	out := make([]ModelInfo, len(listings))
	for i, l := range listings {
		out[i] = ModelInfo{
			Name:     l.Name,
			Version:  l.Version,
			Dim:      l.Dim,
			Classes:  l.Classes,
			Encoding: Encoding(l.Encoding),
			Levels:   l.Levels,
			Features: l.Features,
			Seed:     l.Seed,
			Default:  l.Default,
		}
	}
	return out
}

// pipelineEntry extracts the served model and its public encoder setup from
// a trained pipeline.
func pipelineEntry(p *Pipeline) (*hdc.Model, registry.EncoderInfo, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cp, err := p.trained()
	if err != nil {
		return nil, registry.EncoderInfo{}, err
	}
	return cp.Model(), registry.EncoderInfo{
		Encoding: int(p.cfg.encoding),
		Levels:   p.cfg.levels,
		Features: p.cfg.features,
		Seed:     p.cfg.seed,
	}, nil
}

// Register publishes a trained pipeline's model under name. The first
// registered model becomes the default unless SetDefault chooses another.
// Registering an existing name is an error — Swap is the live-update path.
// The pipeline's model must not be retrained while published; Train and
// TrainOnline both build a fresh model, so the idiom for updates is
// retrain-then-Swap.
func (r *Registry) Register(name string, p *Pipeline) error {
	model, info, err := pipelineEntry(p)
	if err != nil {
		return err
	}
	_, err = r.inner.Register(name, model, info)
	return err
}

// RegisterShard publishes a slice of a trained pipeline's model under
// name: the class planes are restricted to s's dimension range and class
// range (zero DimLen / ClassCount default to the full extent), and the
// entry carries the shard descriptor so v5 clients — and the scatter–
// gather coordinator behind TopologySharded — discover the slice in the
// handshake. Each replica of a sharded fleet registers its own slice;
// the fleet's descriptors must tile the full model exactly or Connect
// refuses with ErrShardTiling.
func (r *Registry) RegisterShard(name string, p *Pipeline, s ShardSlice) error {
	model, info, err := pipelineEntry(p)
	if err != nil {
		return err
	}
	if s.DimLen == 0 {
		s.DimOffset, s.DimLen = 0, model.Dim()
	}
	if s.ClassCount == 0 {
		s.ClassOffset, s.ClassCount = 0, model.NumClasses()
	}
	shardInfo := &registry.ShardInfo{
		DimOffset:   s.DimOffset,
		DimLen:      s.DimLen,
		ClassOffset: s.ClassOffset,
		ClassCount:  s.ClassCount,
		FullDim:     model.Dim(),
		FullClasses: model.NumClasses(),
	}
	if err := shardInfo.Validate(); err != nil {
		return err
	}
	sliced := model.Slice(s.DimOffset, s.DimLen, s.ClassOffset, s.ClassCount)
	_, err = r.inner.RegisterShard(name, sliced, info, shardInfo)
	return err
}

// Swap atomically replaces the model published under name with the
// pipeline's, bumping the publication version. Clients connected to name
// see the new model from their next request frame on — connections are
// never dropped, and queries in flight finish against the model they
// resolved. It returns ErrUnknownModel if name was never registered.
func (r *Registry) Swap(name string, p *Pipeline) error {
	model, info, err := pipelineEntry(p)
	if err != nil {
		return err
	}
	_, err = r.inner.Swap(name, model, info)
	return err
}

// Deregister removes the model published under name. Connections bound to
// it stay open but their frames are answered with ErrUnknownModel until
// the name is registered again. If name was the default, the registry has
// no default until SetDefault (or the next Register) chooses one.
func (r *Registry) Deregister(name string) error { return r.inner.Deregister(name) }

// SetDefault names the model served to clients that request none (v2
// clients always do).
func (r *Registry) SetDefault(name string) error { return r.inner.SetDefault(name) }

// DefaultName returns the current default model name ("" when unset).
func (r *Registry) DefaultName() string { return r.inner.DefaultName() }

// Models returns one consistent snapshot of the published models, sorted
// by name.
func (r *Registry) Models() []ModelInfo {
	entries, def := r.inner.SnapshotModels()
	out := make([]ModelInfo, len(entries))
	for i, e := range entries {
		out[i] = ModelInfo{
			Name:     e.Name,
			Version:  e.Version,
			Dim:      e.Model.Dim(),
			Classes:  e.Model.NumClasses(),
			Encoding: Encoding(e.Encoder.Encoding),
			Levels:   e.Encoder.Levels,
			Features: e.Encoder.Features,
			Seed:     e.Encoder.Seed,
			Default:  e.Name == def,
		}
	}
	return out
}

// Len returns the number of published models.
func (r *Registry) Len() int { return r.inner.Len() }

// NewRegistryServer wraps a registry for serving. The registry may start
// empty and keep changing while the server runs.
func NewRegistryServer(r *Registry, opts ...ServerOption) *Server {
	return &Server{inner: offload.NewRegistryServer(r.inner, opts...), reg: r}
}

// ServeRegistry hosts a model registry on lis until ctx is cancelled — the
// multi-model, hot-swappable big sibling of Serve. Clients pick a model
// with ForModel (or DialModel); those that name none get the default.
func ServeRegistry(ctx context.Context, lis net.Listener, r *Registry, opts ...ServerOption) error {
	return NewRegistryServer(r, opts...).Serve(ctx, lis)
}
