package privehd

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"privehd/internal/cluster"
	"privehd/internal/offload"
	"privehd/internal/shard"
)

// Client is the topology-independent inference surface: one interface
// whether the fleet behind it is a single connection (Remote), a pooled
// address (Pool), a replicated fleet (Cluster), or a model split across
// shard replicas (Sharded). Code written against Client chooses its
// serving topology with a Connect Target — a flag, not a code path.
//
// Every implementation pairs the connections with a local Edge, so the
// §III-C privacy story is identical across topologies: inputs are
// encoded, quantized and masked on the device, and only obfuscated
// hypervectors cross the network.
type Client interface {
	// Predict obfuscates one input on the edge and classifies it
	// remotely, returning the predicted label and per-class scores.
	Predict(x []float64) (int, []float64, error)
	// PredictContext is Predict bounded by ctx: the remaining context
	// budget is stamped on every request frame (Request.BudgetNs), so
	// servers shed work that can no longer answer in time, and
	// cancellation aborts client-side waits. A deadline exceeded on the
	// way out or in a server shed surfaces as ErrDeadlineExceeded.
	PredictContext(ctx context.Context, x []float64) (int, []float64, error)
	// PredictBatch obfuscates and classifies a batch of inputs.
	PredictBatch(X [][]float64) ([]int, error)
	// ListModels returns the serving registry's current listing.
	ListModels() ([]ModelInfo, error)
	// Traces snapshots the process-wide client-side flight recorder —
	// the slowest and most recent errored traced requests this process
	// has sent (see SetTraceSampling).
	Traces() TraceSnapshot
	// Close releases the client's connections.
	Close() error
}

// Compile-time checks: every serving topology implements Client.
var (
	_ Client = (*Remote)(nil)
	_ Client = (*Pool)(nil)
	_ Client = (*Cluster)(nil)
	_ Client = (*Sharded)(nil)
)

// Topology selects how Connect arranges connections over the target
// addresses.
type Topology int

const (
	// TopologyAuto picks for you: one address dials a Pool; several
	// addresses dial the first reachable one and build a Sharded client
	// if it advertises a shard descriptor, a Cluster otherwise.
	TopologyAuto Topology = iota
	// TopologySingle is one pipelined connection (a Remote) to the first
	// address.
	TopologySingle
	// TopologyPool is a bounded pool of reused connections to the first
	// address.
	TopologyPool
	// TopologyCluster load-balances over the addresses as whole-model
	// replicas with health-tracked failover.
	TopologyCluster
	// TopologySharded treats the addresses as slices of one logical
	// model (dimension and/or class shards) and scatter–gathers every
	// prediction across them.
	TopologySharded
)

// String returns the topology's flag spelling ("auto", "single", "pool",
// "cluster", "sharded").
func (t Topology) String() string {
	switch t {
	case TopologyAuto:
		return "auto"
	case TopologySingle:
		return "single"
	case TopologyPool:
		return "pool"
	case TopologyCluster:
		return "cluster"
	case TopologySharded:
		return "sharded"
	}
	return "unknown"
}

// ParseTopology parses a topology flag value as spelled by
// Topology.String.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "auto", "":
		return TopologyAuto, nil
	case "single":
		return TopologySingle, nil
	case "pool":
		return TopologyPool, nil
	case "cluster":
		return TopologyCluster, nil
	case "sharded":
		return TopologySharded, nil
	}
	return 0, fmt.Errorf("privehd: unknown topology %q (want auto|single|pool|cluster|sharded)", s)
}

// Target names what Connect should reach: where the servers are, which
// model to bind to, and how to arrange connections over them.
type Target struct {
	// Network is the dial network (default "tcp").
	Network string
	// Addrs are the server addresses. Single-address topologies use the
	// first.
	Addrs []string
	// Model selects the served model (empty for each server's default).
	Model string
	// Topology arranges the connections (default TopologyAuto).
	Topology Topology
	// Hedge opts cluster and sharded topologies into hedged requests
	// with an adaptive delay learned from observed latency: a slow
	// attempt gets a backup sent to a second healthy replica, first
	// reply wins, the loser is canceled. WithHedging tunes the delay.
	// Single and pool topologies ignore it (nowhere else to hedge to).
	Hedge bool
}

// ConnectOption configures Connect.
type ConnectOption func(*connectConfig)

type connectConfig struct {
	edge   *Edge
	pool   poolConfig
	policy BalancePolicy
	probe  time.Duration
	hedge  *cluster.HedgePolicy
	logger *slog.Logger
}

// WithEdge supplies the Edge whose obfuscated queries the client should
// carry. Without it Connect auto-configures one from the server's
// advertised encoder setup (layer defences on with WithEdgeOptions).
func WithEdge(e *Edge) ConnectOption {
	return func(c *connectConfig) { c.edge = e }
}

// WithEdgeOptions supplies pipeline options — typically the §III-C
// defences WithQueryMask and WithRawQueries — for the edge Connect
// auto-configures. Ignored when WithEdge provides one.
func WithEdgeOptions(opts ...Option) ConnectOption {
	return func(c *connectConfig) { c.pool.edgeOpts = append(c.pool.edgeOpts, opts...) }
}

// WithConnectPool applies per-address pool options (WithPoolSize,
// WithPoolIOTimeout, …) to every connection pool Connect builds. The
// single-connection topology honours the io-timeout option only.
func WithConnectPool(opts ...PoolOption) ConnectOption {
	return func(c *connectConfig) {
		for _, o := range opts {
			o(&c.pool)
		}
	}
}

// WithConnectPolicy selects the replica balancing policy for cluster and
// sharded topologies (default LeastInFlight).
func WithConnectPolicy(p BalancePolicy) ConnectOption {
	return func(c *connectConfig) { c.policy = p }
}

// WithConnectProbeInterval sets replica health-probe cadence for cluster
// and sharded topologies (default 2s; d ≤ 0 disables probing).
func WithConnectProbeInterval(d time.Duration) ConnectOption {
	return func(c *connectConfig) {
		if d <= 0 {
			c.probe = -1
			return
		}
		c.probe = d
	}
}

// WithHedging opts cluster and sharded topologies into hedged requests
// (see Target.Hedge) and fixes the hedge delay: an attempt still in
// flight after delay gets a backup on a second healthy replica, first
// reply wins, the loser is canceled. Pass d ≤ 0 to keep the adaptive
// delay — roughly the p90 of recently observed latency, clamped to
// [1ms, 100ms] — which only hedges genuine stragglers.
func WithHedging(d time.Duration) ConnectOption {
	return func(c *connectConfig) {
		c.hedge = &cluster.HedgePolicy{}
		if d > 0 {
			c.hedge.Delay = d
		}
	}
}

// WithConnectLogger routes structured health-transition events of cluster
// and sharded topologies to log. By default they are discarded.
func WithConnectLogger(log *slog.Logger) ConnectOption {
	return func(c *connectConfig) { c.logger = log }
}

// Connect is the one constructor for every serving topology: it dials the
// target, performs (and validates) the protocol handshake, auto-configures
// the obfuscating edge from the server's advertised encoder setup unless
// WithEdge provides one, and returns the Client matching the target's
// topology. The context bounds dialing and handshaking.
//
// It subsumes the older constructors — Dial, DialModel, NewRemote,
// NewRemoteModel, DialPool and DialCluster remain as deprecated wrappers
// around the same machinery.
func Connect(ctx context.Context, t Target, opts ...ConnectOption) (Client, error) {
	if len(t.Addrs) == 0 {
		return nil, errors.New("privehd: Connect: no addresses in target")
	}
	if t.Network == "" {
		t.Network = "tcp"
	}
	var cfg connectConfig
	for _, o := range opts {
		o(&cfg)
	}
	cfg.pool.model = t.Model
	if t.Hedge && cfg.hedge == nil {
		cfg.hedge = &cluster.HedgePolicy{}
	}
	topo := t.Topology
	if topo == TopologyAuto {
		if len(t.Addrs) == 1 {
			topo = TopologyPool
		} else {
			var err error
			topo, err = sniffTopology(ctx, t)
			if err != nil {
				return nil, err
			}
		}
	}
	switch topo {
	case TopologySingle:
		return connectSingle(ctx, t, cfg)
	case TopologyPool:
		return connectPool(ctx, t, cfg)
	case TopologyCluster:
		return connectCluster(ctx, t, cfg)
	case TopologySharded:
		return connectSharded(ctx, t, cfg)
	}
	return nil, fmt.Errorf("privehd: Connect: unknown topology %d", int(t.Topology))
}

// sniffTopology decides between cluster and sharded for a multi-address
// auto target: the first reachable address's handshake tells whether it
// serves a slice (shard descriptor in the v5 ServerHello) or the whole
// model.
func sniffTopology(ctx context.Context, t Target) (Topology, error) {
	var lastErr error
	for _, addr := range t.Addrs {
		c, err := offload.Dial(ctx, t.Network, addr, offload.Hello{Model: t.Model})
		if err != nil {
			if errors.Is(err, ErrTransport) {
				lastErr = err
				continue
			}
			return 0, err
		}
		sharded := c.Shard() != nil && !c.Shard().Whole()
		c.Close()
		if sharded {
			return TopologySharded, nil
		}
		return TopologyCluster, nil
	}
	return 0, fmt.Errorf("privehd: Connect: no address reachable: %w", lastErr)
}

// connectSingle is TopologySingle: one pipelined connection plus its edge.
// Connect applies the documented pool default of a 30s IO timeout here
// too — a bare Dial defaults to none, but every Connect topology bounds
// reply progress uniformly unless WithPoolIOTimeout(d ≤ 0) disables it.
func connectSingle(ctx context.Context, t Target, cfg connectConfig) (*Remote, error) {
	iot := cfg.pool.ioTimeout
	if iot == 0 {
		iot = cluster.DefaultIOTimeout
	}
	var dopts []DialOption
	if t.Model != "" {
		dopts = append(dopts, ForModel(t.Model))
	}
	if iot > 0 {
		dopts = append(dopts, WithIOTimeout(iot))
	}
	if cfg.edge != nil {
		return Dial(ctx, t.Network, t.Addrs[0], cfg.edge, dopts...)
	}
	var copts []offload.ClientOption
	if iot > 0 {
		copts = append(copts, offload.WithIOTimeout(iot))
	}
	client, err := offload.Dial(ctx, t.Network, t.Addrs[0], offload.Hello{Model: t.Model}, copts...)
	if err != nil {
		return nil, err
	}
	edge, err := edgeFromServerHello(client.ServerHello(), cfg.pool.edgeOpts...)
	if err != nil {
		client.Close()
		return nil, err
	}
	return &Remote{edge: edge, client: client}, nil
}

// connectPool is TopologyPool: a bounded connection pool plus its edge.
func connectPool(ctx context.Context, t Target, cfg connectConfig) (*Pool, error) {
	pcfg := cfg.pool.toInternal()
	pcfg.Network = t.Network
	pcfg.Addr = t.Addrs[0]
	pcfg.Hello = offload.Hello{Model: t.Model}
	if cfg.edge != nil {
		pcfg.Hello.Dim = cfg.edge.Dim()
	}
	pool := cluster.NewPool(pcfg)
	hello, err := pool.Hello(ctx)
	if err != nil {
		pool.Close()
		return nil, err
	}
	edge := cfg.edge
	if edge == nil {
		edge, err = edgeFromServerHello(hello, cfg.pool.edgeOpts...)
		if err != nil {
			pool.Close()
			return nil, err
		}
	}
	return &Pool{edge: edge, pool: pool}, nil
}

// connectCluster is TopologyCluster: whole-model replicas with failover.
func connectCluster(ctx context.Context, t Target, cfg connectConfig) (*Cluster, error) {
	hello := offload.Hello{Model: t.Model}
	if cfg.edge != nil {
		hello.Dim = cfg.edge.Dim()
	}
	cl, err := cluster.NewCluster(cluster.ClusterConfig{
		Network:       t.Network,
		Addrs:         t.Addrs,
		Hello:         hello,
		Pool:          cfg.pool.toInternal(),
		Policy:        cfg.policy,
		ProbeInterval: cfg.probe,
		Hedge:         cfg.hedge,
		Logger:        cfg.logger,
	})
	if err != nil {
		return nil, fmt.Errorf("privehd: %w", err)
	}
	sh, err := cl.Hello(ctx)
	if err != nil {
		cl.Close()
		return nil, err
	}
	edge := cfg.edge
	if edge == nil {
		edge, err = edgeFromServerHello(sh, cfg.pool.edgeOpts...)
		if err != nil {
			cl.Close()
			return nil, err
		}
	}
	return &Cluster{edge: edge, cl: cl}, nil
}

// connectSharded is TopologySharded: the addresses serve slices of one
// logical model; predictions scatter–gather across them.
func connectSharded(ctx context.Context, t Target, cfg connectConfig) (*Sharded, error) {
	co, err := shard.New(ctx, shard.Config{
		Network:       t.Network,
		Addrs:         t.Addrs,
		Model:         t.Model,
		Pool:          cfg.pool.toInternal(),
		Policy:        cfg.policy,
		ProbeInterval: cfg.probe,
		Hedge:         cfg.hedge,
		Logger:        cfg.logger,
	})
	if err != nil {
		return nil, err
	}
	edge := cfg.edge
	if edge == nil {
		edge, err = edgeFromServerHello(co.Hello(), cfg.pool.edgeOpts...)
		if err != nil {
			co.Close()
			return nil, err
		}
	}
	if edge.Dim() != co.Dim() {
		co.Close()
		return nil, fmt.Errorf("%w: edge dim %d, sharded model dim %d", ErrGeometryMismatch, edge.Dim(), co.Dim())
	}
	if edge.cfg.rawQueries {
		co.Close()
		return nil, fmt.Errorf("%w: WithRawQueries edges send full-precision vectors, which cannot be partial-scored across shards",
			ErrPartialUnsupported)
	}
	return &Sharded{edge: edge, co: co}, nil
}
