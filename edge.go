package privehd

import (
	"errors"
	"fmt"

	"privehd/internal/attack"
	"privehd/internal/core"
	"privehd/internal/hdc"
	"privehd/internal/offload"
)

// Edge prepares obfuscated queries on the device side of the §III-C
// inference split: it encodes locally, 1-bit quantizes (unless
// WithRawQueries) and masks (WithQueryMask) each query before anything
// crosses the network. The cloud-side model is neither accessed nor
// modified.
type Edge struct {
	cfg  config
	core *core.Edge
}

// NewEdge builds a standalone edge encoder from functional options. The
// geometry (WithFeatures, WithDim, WithLevels, WithEncoding, WithSeed)
// must match the serving model's encoder — base hypervectors are shared
// public setup — so WithFeatures is required here.
func NewEdge(opts ...Option) (*Edge, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate("NewEdge", cfg.pipeOnly); err != nil {
		return nil, err
	}
	if cfg.features <= 0 {
		return nil, errors.New("privehd: NewEdge requires WithFeatures (the encoder geometry is shared setup with the server)")
	}
	ce, err := core.NewEdge(core.EdgeConfig{
		HD:       hdc.Config{Dim: cfg.dim, Features: cfg.features, Levels: cfg.levels, Seed: cfg.seed},
		Encoding: core.Encoding(cfg.encoding),
		Quantize: !cfg.rawQueries,
		MaskDims: cfg.maskDims,
		MaskSeed: cfg.seed + 2,
	})
	if err != nil {
		return nil, err
	}
	return &Edge{cfg: cfg, core: ce}, nil
}

// Edge derives the client-side obfuscating encoder for this pipeline's
// geometry: same dimension, levels, encoding and seed, so its queries are
// compatible with the pipeline's model wherever it is served. Extra
// options layer the §III-C defences on top (WithQueryMask,
// WithRawQueries).
func (p *Pipeline) Edge(opts ...Option) (*Edge, error) {
	p.mu.RLock()
	cfg := p.cfg
	p.mu.RUnlock()
	if cfg.features <= 0 {
		return nil, errors.New("privehd: Pipeline.Edge needs the feature width (train first or pass WithFeatures to New)")
	}
	base := []Option{
		WithDim(cfg.dim),
		WithLevels(cfg.levels),
		WithFeatures(cfg.features),
		WithEncoding(cfg.encoding),
		WithSeed(cfg.seed),
		WithWorkers(cfg.workers),
	}
	return NewEdge(append(base, opts...)...)
}

// edgeFromServerHello builds the edge matching a v3 server's advertised
// encoder setup — the auto-configuration path of DialModel: base and level
// hypervectors are deterministic in the advertised (public) geometry and
// seed, so the resulting edge produces queries compatible with the served
// model without any hand-matched flags. Extra options layer the §III-C
// defences on top.
func edgeFromServerHello(h offload.ServerHello, opts ...Option) (*Edge, error) {
	if h.Features == 0 {
		return nil, fmt.Errorf("privehd: server advertised no encoder setup for model %q (registered without one); build the edge explicitly and use Dial", h.Model)
	}
	base := []Option{
		WithDim(h.Dim),
		WithLevels(h.Levels),
		WithFeatures(h.Features),
		WithEncoding(Encoding(h.Encoding)),
		WithSeed(h.Seed),
	}
	return NewEdge(append(base, opts...)...)
}

// Dim returns the hypervector dimensionality.
func (e *Edge) Dim() int { return e.cfg.dim }

// Features returns the input dimensionality.
func (e *Edge) Features() int { return e.cfg.features }

// Prepare returns the obfuscated query hypervector for one input — what
// actually crosses the network.
func (e *Edge) Prepare(x []float64) ([]float64, error) {
	if len(x) != e.cfg.features {
		return nil, fmt.Errorf("privehd: Prepare got %d features, edge encodes %d", len(x), e.cfg.features)
	}
	return e.core.Prepare(x), nil
}

// PrepareBatch obfuscates a batch of inputs in parallel.
func (e *Edge) PrepareBatch(X [][]float64) ([][]float64, error) {
	for i, x := range X {
		if len(x) != e.cfg.features {
			return nil, fmt.Errorf("privehd: PrepareBatch sample %d has %d features, edge encodes %d",
				i, len(x), e.cfg.features)
		}
	}
	return e.core.PrepareBatch(X, e.cfg.workers), nil
}

// Encode returns the raw, unobfuscated encoding of x — the undefended
// baseline the eavesdropper experiments compare against.
func (e *Edge) Encode(x []float64) []float64 {
	return e.core.Encoder().Encode(x)
}

// QuantizeTruth maps the input features onto their Eq. 1 level
// representatives — the best reconstruction any Eq. 10 decoder could
// achieve, used as ground truth when measuring an attack.
func (e *Edge) QuantizeTruth(x []float64) []float64 {
	out := make([]float64, len(x))
	for k, v := range x {
		out[k] = hdc.LevelValue(hdc.LevelIndex(v, e.cfg.levels), e.cfg.levels)
	}
	return out
}

// Reconstruct runs the paper's Eq. 10 reconstruction attack against a
// query hypervector (obfuscated or not) using the edge's public base
// hypervectors — the eavesdropper's point of view on whatever crossed the
// wire.
func (e *Edge) Reconstruct(query []float64) ([]float64, error) {
	bp, ok := e.core.Encoder().(hdc.BaseProvider)
	if !ok {
		return nil, errors.New("privehd: encoder does not expose base hypervectors")
	}
	return attack.DecodeScaled(bp, query)
}

// ReconstructionError quantifies how well a reconstruction matches the
// ground truth (MSE and PSNR in dB).
type ReconstructionError = attack.ReconstructionError

// MeasureReconstruction compares an attack's reconstruction against the
// ground-truth features.
func MeasureReconstruction(truth, recon []float64) ReconstructionError {
	return attack.Measure(truth, recon)
}

// RenderASCII renders a pixel vector as an ASCII-art image of the given
// row width — enough to judge reconstruction quality by eye, as the
// paper's Fig. 2/6 do.
func RenderASCII(pixels []float64, width int) string {
	return attack.RenderASCII(pixels, width)
}

// SideBySide joins two ASCII renderings line by line.
func SideBySide(left, right, gutter string) string {
	return attack.SideBySide(left, right, gutter)
}
