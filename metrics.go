package privehd

import (
	"context"
	"net"
	"net/http"

	"privehd/internal/admin"
	"privehd/internal/metrics"
)

// MetricsHandler returns an http.Handler exposing every metric the process
// records — server traffic, pool/cluster health, registry publications —
// in the Prometheus text format. Mount it wherever the deployment already
// has an HTTP surface; the admin API (ServeAdmin) serves it at
// GET /metrics automatically, without requiring the bearer token.
//
// The exposition is dependency-free and safe to scrape at any rate: reads
// never block the serving hot paths, which record through lock-free
// atomics. Scrapers that negotiate the OpenMetrics content type (Accept:
// application/openmetrics-text) additionally receive trace-ID exemplars on
// latency histogram buckets. Go runtime health series (goroutines, heap,
// GC pauses, scheduler latency) are registered on first use.
func MetricsHandler() http.Handler {
	metrics.EnsureGoRuntime()
	return metrics.Default.Handler()
}

// ServeMetrics serves GET /metrics (and nothing else) on lis until the
// context is cancelled — the standalone exposition listener for
// deployments that keep the admin API private but let a Prometheus scraper
// reach a separate internal port.
func ServeMetrics(ctx context.Context, lis net.Listener) error {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", MetricsHandler())
	return admin.Serve(ctx, lis, mux)
}
