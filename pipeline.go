package privehd

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"privehd/internal/core"
	"privehd/internal/dp"
	"privehd/internal/hdc"
	"privehd/internal/prune"
	"privehd/internal/quant"
)

// ErrNotTrained is returned by inference and serialization methods called
// before Train (or Load) has produced a model.
var ErrNotTrained = errors.New("privehd: pipeline is not trained")

// Report summarizes the privacy mechanics of a trained pipeline: geometry
// after pruning, the ℓ2 sensitivity used for calibration, and the Gaussian
// mechanism actually applied.
type Report = core.PrivacyReport

// Pipeline is the Prive-HD pipeline: encode → quantize (Eq. 13) → bundle →
// prune and retrain (§III-B1) → calibrated Gaussian noise (Eq. 8). Build
// one with New, feed it with Train (or restore one with Load), then call
// Predict/PredictBatch locally, Serve it to the network, or derive an
// Edge for obfuscated offloading.
//
// A trained Pipeline is safe for concurrent inference from many
// goroutines.
type Pipeline struct {
	mu      sync.RWMutex
	cfg     config
	classes int
	core    *core.Pipeline
	// maxOnlineContribution is the largest single-sample ℓ2 contribution
	// observed across TrainOnline calls — the honest DP sensitivity of an
	// online-trained model.
	maxOnlineContribution float64
}

// New builds an untrained pipeline from functional options. With no
// options it uses the paper defaults: D=10,000 level encoding over 100
// levels, biased-ternary encoding quantization, two retraining epochs, no
// pruning, no noise.
func New(opts ...Option) (*Pipeline, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate("New", cfg.edgeOnly); err != nil {
		return nil, err
	}
	return &Pipeline{cfg: cfg}, nil
}

// coreConfig assembles the internal pipeline configuration. features must
// already be resolved.
func (c config) coreConfig() core.Config {
	cc := core.Config{
		HD:            hdc.Config{Dim: c.dim, Features: c.features, Levels: c.levels, Seed: c.seed},
		Encoding:      core.Encoding(c.encoding),
		Quantizer:     c.quantizer,
		KeepDims:      c.keepDims,
		RetrainEpochs: c.retrainEpochs,
		NoiseSeed:     c.noiseSeed,
		Workers:       c.workers,
	}
	if cc.NoiseSeed == 0 {
		cc.NoiseSeed = c.seed + 1
	}
	if c.epsilon > 0 {
		cc.DP = &dp.Params{Epsilon: c.epsilon, Delta: c.delta}
	}
	return cc
}

// Train runs the full §III-B pipeline on the given samples and labels,
// replacing any previously trained model. The input width fixes the
// pipeline's feature dimensionality unless WithFeatures pinned it; the
// label space is max(y)+1 unless WithClasses pinned it.
func (p *Pipeline) Train(X [][]float64, y []int) error {
	if len(X) == 0 {
		return errors.New("privehd: Train needs at least one sample")
	}
	if len(X) != len(y) {
		return fmt.Errorf("privehd: Train got %d samples but %d labels", len(X), len(y))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cfg := p.cfg
	if cfg.features == 0 {
		cfg.features = len(X[0])
	}
	classes := cfg.classes
	if classes == 0 {
		for _, l := range y {
			if l+1 > classes {
				classes = l + 1
			}
		}
	}
	cp, err := core.TrainData(cfg.coreConfig(), X, y, classes)
	if err != nil {
		return err
	}
	// Freeze the norm caches so concurrent Predict calls are read-only.
	cp.Model().Precompute()
	p.cfg = cfg
	p.classes = classes
	p.core = cp
	return nil
}

// TrainOnline feeds a batch of a streaming workload through
// similarity-weighted single-pass training (the "OnlineHD" refinement of
// Eq. 3/5): each sample is bundled with a weight proportional to how badly
// the current model handles it, so one pass typically matches one-shot
// training plus one or two Eq. 5 retraining epochs — for training sets
// that stream and cannot be revisited. The first call on an untrained
// pipeline creates the model (features from the first sample unless
// WithFeatures pinned them; label space from WithClasses, which streaming
// callers should set — otherwise max(label)+1 of the first batch is used);
// later calls keep refining it, and inference works between calls. Each
// batch trains a copy and publishes it wholesale, so a model already
// handed to a serving Registry is never mutated underneath its readers —
// the streaming update idiom is TrainOnline-then-Swap, just like
// Train-then-Swap.
//
// It returns the observed worst-case single-sample ℓ2 contribution across
// every TrainOnline call so far — the sensitivity an honest (ε,δ) release
// of this model must calibrate its Gaussian noise against, since weighted
// bundling voids the fixed Eq. 12/14 per-sample bound. WithNoise is
// rejected here for exactly that reason: noise calibrated before the data
// streams by would promise a guarantee the weights can exceed, so
// privatizing an online-trained model is the caller's explicit step.
func (p *Pipeline) TrainOnline(X [][]float64, y []int) (float64, error) {
	if len(X) == 0 {
		return 0, errors.New("privehd: TrainOnline needs at least one sample")
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("privehd: TrainOnline got %d samples but %d labels", len(X), len(y))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.epsilon > 0 {
		return 0, errors.New("privehd: TrainOnline does not support WithNoise (weighted bundling voids the pre-calibrated sensitivity; calibrate against the returned contribution instead)")
	}
	// Validate the whole batch before any state changes: a rejected batch
	// must leave the pipeline exactly as it was — in particular a failed
	// first call must not flip it to "trained" with an empty model, and a
	// bad sample mid-batch must not leave half the batch bundled with its
	// ℓ2 contribution unreported (core.OnlineTrain is additionally
	// copy-on-write for errors it can only detect while training).
	features := p.cfg.features
	if p.core == nil && features == 0 {
		features = len(X[0])
	}
	for i, x := range X {
		if len(x) != features {
			return 0, fmt.Errorf("privehd: TrainOnline sample %d has %d features, model wants %d",
				i, len(x), features)
		}
	}
	if p.core == nil {
		cfg := p.cfg
		cfg.features = features
		classes := cfg.classes
		if classes == 0 {
			for _, l := range y {
				if l+1 > classes {
					classes = l + 1
				}
			}
		}
		cp, err := core.NewUntrained(cfg.coreConfig(), classes)
		if err != nil {
			return 0, err
		}
		contribution, err := cp.OnlineTrain(X, y)
		if err != nil {
			return 0, err
		}
		// Only a fully-applied first batch installs the model.
		p.cfg = cfg
		p.classes = classes
		p.core = cp
		p.maxOnlineContribution = contribution
	} else {
		contribution, err := p.core.OnlineTrain(X, y)
		if err != nil {
			return 0, err
		}
		if contribution > p.maxOnlineContribution {
			p.maxOnlineContribution = contribution
		}
	}
	// Re-freeze the norm caches so concurrent Predict calls after the
	// write lock drops are read-only again.
	p.core.Model().Precompute()
	return p.maxOnlineContribution, nil
}

// trained returns the inner pipeline, or ErrNotTrained.
func (p *Pipeline) trained() (*core.Pipeline, error) {
	if p.core == nil {
		return nil, ErrNotTrained
	}
	return p.core, nil
}

// Dim returns the hypervector dimensionality D_hv.
func (p *Pipeline) Dim() int {
	// Train replaces the whole cfg struct under the write lock, so even
	// fields it never alters must be read under the read lock.
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cfg.dim
}

// Encoding returns the paper encoding the pipeline uses. Edges querying
// this pipeline's model must use the same encoding (Pipeline.Edge does so
// automatically).
func (p *Pipeline) Encoding() Encoding {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cfg.encoding
}

// Features returns the input dimensionality D_iv, or 0 before it is known.
func (p *Pipeline) Features() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cfg.features
}

// Classes returns the label-space size, or 0 before training.
func (p *Pipeline) Classes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.classes
}

// Trained reports whether the pipeline holds a model.
func (p *Pipeline) Trained() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.core != nil
}

// Predict classifies one input, encoding and quantizing it the way the
// training data was processed.
func (p *Pipeline) Predict(x []float64) (int, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cp, err := p.trained()
	if err != nil {
		return 0, err
	}
	if len(x) != p.cfg.features {
		return 0, fmt.Errorf("privehd: Predict got %d features, model wants %d", len(x), p.cfg.features)
	}
	return cp.Predict(x), nil
}

// PredictBatch classifies many inputs, spreading encoding and inference
// over goroutines (WithWorkers bounds the parallelism; the default uses
// every CPU). Every worker runs the fused bit-sliced encode→quantize→score
// chain on pooled scratch, so the batch allocates only the result slice.
func (p *Pipeline) PredictBatch(X [][]float64) ([]int, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cp, err := p.trained()
	if err != nil {
		return nil, err
	}
	for i, x := range X {
		if len(x) != p.cfg.features {
			return nil, fmt.Errorf("privehd: PredictBatch sample %d has %d features, model wants %d",
				i, len(x), p.cfg.features)
		}
	}
	return cp.PredictBatch(X), nil
}

// PredictVector classifies an already-encoded (and possibly obfuscated or
// hardware-quantized) hypervector against the trained model — what the
// serving side of the §III-C split does with each offloaded query. A vector
// that fits the packed −2…+1 alphabet (any of the paper's quantization
// schemes) is scored on the integer-domain engine, exactly like a packed
// frame arriving over the wire; anything else takes the float64 path.
func (p *Pipeline) PredictVector(h []float64) (int, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cp, err := p.trained()
	if err != nil {
		return 0, err
	}
	if len(h) != p.cfg.dim {
		return 0, fmt.Errorf("privehd: PredictVector got dim %d, model dim %d", len(h), p.cfg.dim)
	}
	return cp.PredictVector(h), nil
}

// Evaluate returns accuracy over a labelled sample set.
func (p *Pipeline) Evaluate(X [][]float64, y []int) (float64, error) {
	if len(X) != len(y) {
		return 0, fmt.Errorf("privehd: Evaluate got %d samples but %d labels", len(X), len(y))
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	cp, err := p.trained()
	if err != nil {
		return 0, err
	}
	return cp.EvaluateData(X, y), nil
}

// ClassVectors returns copies of the class hypervectors ~C_l of Eq. 3 —
// exactly what a model release publishes (and what the differential-
// privacy noise protects).
func (p *Pipeline) ClassVectors() ([][]float64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cp, err := p.trained()
	if err != nil {
		return nil, err
	}
	m := cp.Model()
	out := make([][]float64, m.NumClasses())
	for l := range out {
		out[l] = append([]float64(nil), m.Class(l)...)
	}
	return out, nil
}

// Report returns the privacy summary recorded at training time; the zero
// Report before training.
func (p *Pipeline) Report() Report {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.core == nil {
		return Report{}
	}
	return p.core.Report()
}

// Calibration is the privacy arithmetic of a configuration — everything
// Eq. 12/14 and Eq. 8 determine before any data is seen.
type Calibration struct {
	// Quantizer names the encoding quantization scheme.
	Quantizer string
	// Dim, KeptDims and Features describe the geometry.
	Dim      int
	KeptDims int
	Features int
	// Sensitivity is the ℓ2 bound ∆f used for calibration (Eq. 14, or
	// Eq. 12 when unquantized), over the kept dimensions.
	Sensitivity float64
	// RawSensitivity is the Eq. 12 bound an unquantized encoding would
	// need at full dimension — the baseline the paper's quantization
	// improves on.
	RawSensitivity float64
	// SigmaFactor and NoiseStd describe the Gaussian mechanism: per-
	// dimension noise std is Sensitivity×SigmaFactor.
	SigmaFactor float64
	NoiseStd    float64
	// Epsilon and Delta echo the budget.
	Epsilon float64
	Delta   float64
}

// Calibration computes the noise calibration the configured privacy budget
// implies, without training. It requires WithFeatures (or a trained
// pipeline) and a positive WithNoise epsilon.
func (p *Pipeline) Calibration() (Calibration, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cfg := p.cfg
	if cfg.features == 0 {
		return Calibration{}, errors.New("privehd: Calibration needs WithFeatures (or a trained pipeline)")
	}
	if cfg.epsilon <= 0 {
		return Calibration{}, errors.New("privehd: Calibration needs a positive WithNoise epsilon")
	}
	kept := cfg.dim
	if cfg.keepDims > 0 && cfg.keepDims < kept {
		kept = cfg.keepDims
	}
	var sens float64
	if _, isIdentity := cfg.quantizer.(quant.Identity); isIdentity {
		sens = quant.RawL2Sensitivity(kept, cfg.features)
	} else {
		sens = quant.AnalyticL2Sensitivity(cfg.quantizer, kept)
	}
	sigma, err := dp.SigmaFactor(dp.Params{Epsilon: cfg.epsilon, Delta: cfg.delta})
	if err != nil {
		return Calibration{}, err
	}
	return Calibration{
		Quantizer:      cfg.quantizer.Name(),
		Dim:            cfg.dim,
		KeptDims:       kept,
		Features:       cfg.features,
		Sensitivity:    sens,
		RawSensitivity: quant.RawL2Sensitivity(cfg.dim, cfg.features),
		SigmaFactor:    sigma,
		NoiseStd:       sens * sigma,
		Epsilon:        cfg.epsilon,
		Delta:          cfg.delta,
	}, nil
}

// saveVersion versions the Save/Load format independently of the network
// protocol.
const saveVersion = 1

// ErrCorruptModel reports a saved-pipeline blob that failed to decode or
// validate — truncated, bit-flipped, or hostile bytes. The durable store
// replays blobs from disk at boot and the admin API accepts uploads from
// the network, so Load treats every malformed input as this one typed
// condition (test with errors.Is) and never panics on garbage. A
// version-mismatch from a different build is reported separately: the blob
// is well-formed, just not readable here.
var ErrCorruptModel = hdc.ErrCorrupt

// Ceilings on decoded pipeline geometry, enforced before any
// geometry-sized allocation: gob length fields are attacker-controlled,
// and rebuilding the encoder allocates levels×dim and features×dim float64
// cells. The caps sit far above the paper's largest deployment (D=10,000,
// 100 levels) while bounding hostile blobs to hundreds of megabytes.
const (
	maxLoadLevels = 1 << 16
	maxLoadCells  = 1 << 28
)

// validateWire bounds a decoded pipelineWire's geometry before anything is
// allocated from it.
func (w *pipelineWire) validate() error {
	switch {
	case w.Dim <= 0 || w.Dim > hdc.MaxDim:
		return fmt.Errorf("dim %d out of range (0, %d]", w.Dim, hdc.MaxDim)
	case w.Levels < 2 || w.Levels > maxLoadLevels:
		return fmt.Errorf("levels %d out of range [2, %d]", w.Levels, maxLoadLevels)
	case w.Features < 0 || w.Features > maxLoadCells/w.Dim:
		return fmt.Errorf("features %d out of range for dim %d", w.Features, w.Dim)
	case w.Classes < 0 || w.Classes > hdc.MaxClasses:
		return fmt.Errorf("classes %d out of range [0, %d]", w.Classes, hdc.MaxClasses)
	case w.Levels > maxLoadCells/w.Dim:
		return fmt.Errorf("level memory %d×%d exceeds %d cells", w.Levels, w.Dim, maxLoadCells)
	case w.KeepDims < 0 || w.KeepDims > w.Dim:
		return fmt.Errorf("pruning keep %d out of range [0, %d]", w.KeepDims, w.Dim)
	case w.RetrainEpochs < 0:
		return fmt.Errorf("negative retrain epochs %d", w.RetrainEpochs)
	}
	return nil
}

// pipelineWire is the gob serialization of a trained pipeline: the
// configuration needed to rebuild the deterministic encoder, plus the
// released model, pruning mask and privacy report.
type pipelineWire struct {
	SaveVersion   int
	Dim           int
	Levels        int
	Features      int
	Classes       int
	Encoding      int
	Quantizer     string
	KeepDims      int
	RetrainEpochs int
	Epsilon       float64
	Delta         float64
	Seed          uint64
	Keep          []bool // pruning mask; nil when unpruned
	Report        Report
	Model         []byte // hdc model gob
}

// Save writes the trained pipeline — configuration, model, mask and
// privacy report — to w. The format is versioned; Load refuses versions it
// does not know.
func (p *Pipeline) Save(w io.Writer) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cp, err := p.trained()
	if err != nil {
		return err
	}
	var model bytes.Buffer
	if err := cp.Model().Save(&model); err != nil {
		return err
	}
	wire := pipelineWire{
		SaveVersion:   saveVersion,
		Dim:           p.cfg.dim,
		Levels:        p.cfg.levels,
		Features:      p.cfg.features,
		Classes:       p.classes,
		Encoding:      int(p.cfg.encoding),
		Quantizer:     p.cfg.quantizer.Name(),
		KeepDims:      p.cfg.keepDims,
		RetrainEpochs: p.cfg.retrainEpochs,
		Epsilon:       p.cfg.epsilon,
		Delta:         p.cfg.delta,
		Seed:          p.cfg.seed,
		Report:        cp.Report(),
		Model:         model.Bytes(),
	}
	if mask := cp.Mask(); mask != nil {
		wire.Keep = append([]bool(nil), mask.Keep...)
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("privehd: saving pipeline: %w", err)
	}
	return nil
}

// Load restores a pipeline previously written with Save. The encoder is
// rebuilt deterministically from the saved seed, so a loaded pipeline
// predicts identically to the one that was saved. Malformed input —
// truncated, bit-flipped, hostile — fails with an error wrapping
// ErrCorruptModel, with every allocation bounded before it happens; only a
// well-formed blob from an incompatible save-format version fails without
// it.
func Load(r io.Reader) (*Pipeline, error) {
	var wire pipelineWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("privehd: loading pipeline: %w: %v", ErrCorruptModel, err)
	}
	if wire.SaveVersion != saveVersion {
		return nil, fmt.Errorf("privehd: unsupported save format version %d (this build reads %d)",
			wire.SaveVersion, saveVersion)
	}
	if err := wire.validate(); err != nil {
		return nil, fmt.Errorf("privehd: loading pipeline: %w: %v", ErrCorruptModel, err)
	}
	q, err := quant.Parse(wire.Quantizer)
	if err != nil {
		return nil, fmt.Errorf("privehd: loading pipeline: %w: %v", ErrCorruptModel, err)
	}
	cfg := defaultConfig()
	cfg.dim = wire.Dim
	cfg.levels = wire.Levels
	cfg.features = wire.Features
	cfg.classes = wire.Classes
	cfg.encoding = Encoding(wire.Encoding)
	cfg.quantizer = q
	cfg.keepDims = wire.KeepDims
	cfg.retrainEpochs = wire.RetrainEpochs
	cfg.epsilon = wire.Epsilon
	cfg.delta = wire.Delta
	cfg.seed = wire.Seed
	if err := cfg.validate("Load", nil); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptModel, err)
	}
	model, err := hdc.LoadModel(bytes.NewReader(wire.Model))
	if err != nil {
		return nil, fmt.Errorf("privehd: loading pipeline: %w", err)
	}
	var mask *prune.Mask
	if wire.Keep != nil {
		if len(wire.Keep) != wire.Dim {
			return nil, fmt.Errorf("privehd: loading pipeline: %w: mask has %d dims, model %d", ErrCorruptModel, len(wire.Keep), wire.Dim)
		}
		mask = prune.NewMask(wire.Dim)
		for j, keep := range wire.Keep {
			if !keep {
				mask.Drop(j)
			}
		}
	}
	cp, err := core.Restore(cfg.coreConfig(), model, mask, wire.Report)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptModel, err)
	}
	cp.Model().Precompute()
	return &Pipeline{cfg: cfg, classes: wire.Classes, core: cp}, nil
}
