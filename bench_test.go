// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (DESIGN.md §4). Each benchmark regenerates its artifact at
// smoke scale and logs the resulting rows under -v; headline numbers are
// attached as custom metrics. For the full-scale tables, run
// cmd/privehd-experiments instead.
package privehd_test

//lint:file-ignore SA1019 the deprecated constructors stay fully supported; these tests pin their behavior

import (
	"context"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"

	"privehd"

	"privehd/internal/experiments"
)

var (
	runnerOnce sync.Once
	benchR     *experiments.Runner
	runnerErr  error
)

// runner returns the shared smoke-scale runner; sharing amortizes the
// one-time dataset encoding across benchmarks, so iterations measure the
// experiment computation itself.
func runner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		benchR, runnerErr = experiments.NewRunner(experiments.SmokeContext())
	})
	if runnerErr != nil {
		b.Fatal(runnerErr)
	}
	return benchR
}

// lastCell parses the last row's cell c of a table as a float, stripping a
// trailing %.
func lastCell(b *testing.B, t *experiments.Table, c int) float64 {
	b.Helper()
	row := t.Rows[len(t.Rows)-1]
	s := strings.TrimSuffix(row[c], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q not numeric", row[c])
	}
	return v
}

func BenchmarkFig2Reconstruction(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table.String())
			b.ReportMetric(lastCell(b, res.Table, 2), "psnr_db")
		}
	}
}

func BenchmarkFig3Information(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig3(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

func BenchmarkFig4Retraining(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig4(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig5Quantization(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig5(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
			// Bipolar accuracy at the largest dimension (fig5a last row).
			b.ReportMetric(lastCell(b, tables[0], 2), "bipolar_acc_pct")
		}
	}
}

func BenchmarkFig6InferencePrivacy(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table.String())
			b.ReportMetric(lastCell(b, res.Table, 2), "masked_psnr_db")
		}
	}
}

func BenchmarkFig8DPTraining(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig8(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

func BenchmarkFig9InferenceQuant(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig9(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

func BenchmarkEq15LUTCost(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Eq15(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkApproxMajority(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.ApproxMajority(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTableIPlatforms(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableI(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Ablations(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

// BenchmarkServingThroughput measures the serving path end to end over
// loopback TCP — one shared pipelined connection vs a connection pool —
// with parallel callers, as the CI smoke step records. The pipelined v4
// protocol makes even a single shared connection usable concurrently; the
// pool spreads the same callers over several sockets.
func BenchmarkServingThroughput(b *testing.B) {
	pipe, err := privehd.New(
		privehd.WithDim(2048), privehd.WithLevels(8), privehd.WithSeed(7),
		privehd.WithFeatures(16), privehd.WithRetrain(0))
	if err != nil {
		b.Fatal(err)
	}
	X := make([][]float64, 64)
	y := make([]int, 64)
	for i := range X {
		x := make([]float64, 16)
		for k := range x {
			x[k] = 0.25 + 0.5*float64(i%2) + 0.01*float64(k%3)
		}
		X[i], y[i] = x, i%2
	}
	if err := pipe.Train(X, y); err != nil {
		b.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := privehd.NewServer(pipe)
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	defer func() { srv.Close(); <-done }()
	addr := lis.Addr().String()

	edge, err := pipe.Edge()
	if err != nil {
		b.Fatal(err)
	}
	q, err := edge.Prepare(X[0])
	if err != nil {
		b.Fatal(err)
	}

	b.Run("single-conn", func(b *testing.B) {
		remote, err := privehd.Dial(context.Background(), "tcp", addr, edge)
		if err != nil {
			b.Fatal(err)
		}
		defer remote.Close()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, _, err := remote.PredictPrepared(q); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("pooled", func(b *testing.B) {
		pool, err := privehd.DialPool(context.Background(), "tcp", addr, edge, privehd.WithPoolSize(4))
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, _, err := pool.PredictPrepared(q); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkShardedPredict measures the scatter–gather path: one logical
// model split across two dimension-shard replicas, every prediction fanned
// to both and reduced from exact integer partials. Comparing queries/s to
// BenchmarkServingThroughput/pooled shows the per-request cost of the v5
// partial-score gather.
func BenchmarkShardedPredict(b *testing.B) {
	const dim = 2048
	pipe, err := privehd.New(
		privehd.WithDim(dim), privehd.WithLevels(8), privehd.WithSeed(7),
		privehd.WithFeatures(16), privehd.WithRetrain(0))
	if err != nil {
		b.Fatal(err)
	}
	X := make([][]float64, 64)
	y := make([]int, 64)
	for i := range X {
		x := make([]float64, 16)
		for k := range x {
			x[k] = 0.25 + 0.5*float64(i%2) + 0.01*float64(k%3)
		}
		X[i], y[i] = x, i%2
	}
	if err := pipe.Train(X, y); err != nil {
		b.Fatal(err)
	}

	var addrs []string
	for i := 0; i < 2; i++ {
		reg := privehd.NewRegistry()
		if err := reg.RegisterShard("m", pipe, privehd.ShardSlice{
			DimOffset: i * dim / 2, DimLen: dim / 2,
		}); err != nil {
			b.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := privehd.NewRegistryServer(reg)
		done := make(chan error, 1)
		go func() { done <- srv.Serve(context.Background(), lis) }()
		defer func() { srv.Close(); <-done }()
		addrs = append(addrs, lis.Addr().String())
	}

	client, err := privehd.Connect(context.Background(), privehd.Target{
		Addrs: addrs, Model: "m", Topology: privehd.TopologySharded,
	}, privehd.WithConnectPool(privehd.WithPoolSize(4)))
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	sharded := client.(*privehd.Sharded)
	q, err := sharded.Edge().Prepare(X[0])
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := sharded.PredictPrepared(q); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
