// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (DESIGN.md §4). Each benchmark regenerates its artifact at
// smoke scale and logs the resulting rows under -v; headline numbers are
// attached as custom metrics. For the full-scale tables, run
// cmd/privehd-experiments instead.
package privehd_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"privehd/internal/experiments"
)

var (
	runnerOnce sync.Once
	benchR     *experiments.Runner
	runnerErr  error
)

// runner returns the shared smoke-scale runner; sharing amortizes the
// one-time dataset encoding across benchmarks, so iterations measure the
// experiment computation itself.
func runner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		benchR, runnerErr = experiments.NewRunner(experiments.SmokeContext())
	})
	if runnerErr != nil {
		b.Fatal(runnerErr)
	}
	return benchR
}

// lastCell parses the last row's cell c of a table as a float, stripping a
// trailing %.
func lastCell(b *testing.B, t *experiments.Table, c int) float64 {
	b.Helper()
	row := t.Rows[len(t.Rows)-1]
	s := strings.TrimSuffix(row[c], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q not numeric", row[c])
	}
	return v
}

func BenchmarkFig2Reconstruction(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table.String())
			b.ReportMetric(lastCell(b, res.Table, 2), "psnr_db")
		}
	}
}

func BenchmarkFig3Information(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig3(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

func BenchmarkFig4Retraining(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig4(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig5Quantization(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig5(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
			// Bipolar accuracy at the largest dimension (fig5a last row).
			b.ReportMetric(lastCell(b, tables[0], 2), "bipolar_acc_pct")
		}
	}
}

func BenchmarkFig6InferencePrivacy(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table.String())
			b.ReportMetric(lastCell(b, res.Table, 2), "masked_psnr_db")
		}
	}
}

func BenchmarkFig8DPTraining(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig8(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

func BenchmarkFig9InferenceQuant(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig9(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

func BenchmarkEq15LUTCost(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Eq15(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkApproxMajority(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.ApproxMajority(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTableIPlatforms(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableI(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Ablations(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}
