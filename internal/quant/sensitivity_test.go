package quant

import (
	"math"
	"testing"

	"privehd/internal/hdc"
	"privehd/internal/hrand"
)

func TestRawSensitivities(t *testing.T) {
	// The paper's worked example: ISOLET has D_iv = 617 features at
	// D_hv = 10^4, giving ∆f₂ = sqrt(10^4 · 617) ≈ 2484.
	if got := RawL2Sensitivity(10000, 617); math.Abs(got-2484) > 1 {
		t.Errorf("RawL2Sensitivity = %v, want ≈2484", got)
	}
	// "for a modest 200-features input the ℓ2 sensitivity is 10^3·sqrt(2)"
	if got := RawL2Sensitivity(10000, 200); math.Abs(got-1000*math.Sqrt2) > 1e-9 {
		t.Errorf("RawL2Sensitivity(10k,200) = %v, want 1000·sqrt(2)", got)
	}
	// Eq. 11 at the same geometry.
	want := math.Sqrt(2*617/math.Pi) * 10000
	if got := RawL1Sensitivity(10000, 617); math.Abs(got-want) > 1e-6 {
		t.Errorf("RawL1Sensitivity = %v, want %v", got, want)
	}
}

func TestAnalyticL2PaperValues(t *testing.T) {
	// Fig. 5b values at D_hv = 10,000.
	tests := []struct {
		q    Quantizer
		dhv  int
		want float64
	}{
		{Bipolar{}, 10000, 100},                        // sqrt(D)
		{Ternary{}, 10000, math.Sqrt(2.0 / 3 * 10000)}, // ≈81.6
		{BiasedTernary{}, 10000, math.Sqrt(10000.0 / 2)},
		{TwoBit{}, 10000, math.Sqrt(1.5 * 10000)}, // ≈122.5
		// The combined quantization+pruning result quoted in §III-B2:
		// biased ternary at 1,000 dims → ∆f = 22.36 ≈ 22.3.
		{BiasedTernary{}, 1000, math.Sqrt(500)},
	}
	for _, tt := range tests {
		got := AnalyticL2Sensitivity(tt.q, tt.dhv)
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("%s@%d: sensitivity = %v, want %v", tt.q.Name(), tt.dhv, got, tt.want)
		}
	}
}

func TestAnalyticL2Ordering(t *testing.T) {
	// Fig. 5b ordering at any fixed dimension:
	// biased ternary < ternary < bipolar < 2-bit.
	d := 5000
	bt := AnalyticL2Sensitivity(BiasedTernary{}, d)
	tn := AnalyticL2Sensitivity(Ternary{}, d)
	bp := AnalyticL2Sensitivity(Bipolar{}, d)
	tb := AnalyticL2Sensitivity(TwoBit{}, d)
	if !(bt < tn && tn < bp && bp < tb) {
		t.Errorf("ordering violated: biased=%v ternary=%v bipolar=%v 2bit=%v", bt, tn, bp, tb)
	}
}

func TestAnalyticL2Identity(t *testing.T) {
	if got := AnalyticL2Sensitivity(Identity{}, 100); !math.IsNaN(got) {
		t.Errorf("Identity sensitivity = %v, want NaN", got)
	}
}

func TestBiasedTernaryGain(t *testing.T) {
	got := BiasedTernaryGain()
	if math.Abs(got-0.866) > 0.001 {
		t.Errorf("gain = %v, want ≈0.866 (paper: 0.87×)", got)
	}
	// Must equal the ratio of the analytic sensitivities.
	d := 7777
	ratio := AnalyticL2Sensitivity(BiasedTernary{}, d) / AnalyticL2Sensitivity(Ternary{}, d)
	if math.Abs(got-ratio) > 1e-9 {
		t.Errorf("gain %v does not match sensitivity ratio %v", got, ratio)
	}
}

func TestEmpiricalMatchesAnalytic(t *testing.T) {
	// Quantized encodings of real (synthetic) inputs must have ℓ2 norms
	// close to the Eq. 14 analytic value — the whole point of the formula.
	cfg := hdc.Config{Dim: 4000, Features: 60, Levels: 10, Seed: 77}
	enc, err := hdc.NewLevelEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := hrand.New(78)
	X := make([][]float64, 20)
	for i := range X {
		X[i] = make([]float64, cfg.Features)
		for k := range X[i] {
			X[i][k] = src.Float64()
		}
	}
	encodings := hdc.EncodeBatch(enc, X, 0)
	for _, q := range Schemes() {
		quantized := QuantizeBatch(q, encodings)
		emp := EmpiricalL2Sensitivity(quantized)
		ana := AnalyticL2Sensitivity(q, cfg.Dim)
		if math.Abs(emp-ana)/ana > 0.1 {
			t.Errorf("%s: empirical %v vs analytic %v differ > 10%%", q.Name(), emp, ana)
		}
	}
}

func TestEmpiricalRawMatchesEq12(t *testing.T) {
	// Unquantized encodings should have ℓ2 norm ≈ sqrt(D_hv · D_iv).
	cfg := hdc.Config{Dim: 4000, Features: 100, Levels: 10, Seed: 79}
	enc, err := hdc.NewLevelEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := hrand.New(80)
	X := make([][]float64, 10)
	for i := range X {
		X[i] = make([]float64, cfg.Features)
		for k := range X[i] {
			X[i][k] = src.Float64()
		}
	}
	encodings := hdc.EncodeBatch(enc, X, 0)
	emp := EmpiricalL2Sensitivity(encodings)
	ana := RawL2Sensitivity(cfg.Dim, cfg.Features)
	if math.Abs(emp-ana)/ana > 0.15 {
		t.Errorf("empirical raw %v vs Eq.12 %v differ > 15%%", emp, ana)
	}
}

func TestEmpiricalEmpty(t *testing.T) {
	if got := EmpiricalL2Sensitivity(nil); got != 0 {
		t.Errorf("EmpiricalL2Sensitivity(nil) = %v, want 0", got)
	}
}

func TestOccupancyMatchesDesign(t *testing.T) {
	h := hrand.New(90).NormalVec(12000, 0, 10)
	for _, q := range Schemes() {
		occ := Occupancy(q, q.Quantize(h))
		design := q.Probabilities()
		if len(occ) != len(design) {
			t.Fatalf("%s: occupancy len %d vs %d", q.Name(), len(occ), len(design))
		}
		var total float64
		for i := range occ {
			total += occ[i]
			if math.Abs(occ[i]-design[i]) > 0.02 {
				t.Errorf("%s symbol %v: occupancy %v vs design %v",
					q.Name(), q.Alphabet()[i], occ[i], design[i])
			}
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%s: occupancies sum to %v", q.Name(), total)
		}
	}
}

func TestOccupancyEdgeCases(t *testing.T) {
	if Occupancy(Identity{}, []float64{1, 2}) != nil {
		t.Error("Identity occupancy should be nil")
	}
	if Occupancy(Bipolar{}, nil) != nil {
		t.Error("empty vector occupancy should be nil")
	}
}

func TestQuantizingEncoderWraps(t *testing.T) {
	cfg := hdc.Config{Dim: 500, Features: 10, Levels: 4, Seed: 81}
	inner, err := hdc.NewLevelEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEncoder(inner, Bipolar{})
	if e.Dim() != cfg.Dim || e.NumFeatures() != cfg.Features {
		t.Fatal("wrapper geometry wrong")
	}
	if e.Inner() != hdc.Encoder(inner) {
		t.Error("Inner() does not return the wrapped encoder")
	}
	if e.Quantizer().Name() != "bipolar" {
		t.Error("Quantizer() wrong")
	}
	in := make([]float64, cfg.Features)
	for i := range in {
		in[i] = float64(i) / float64(cfg.Features)
	}
	h := e.Encode(in)
	for _, x := range h {
		if x != 1 && x != -1 {
			t.Fatalf("wrapped encoding emitted %v, want ±1", x)
		}
	}
	// Must equal quantize-after-encode.
	want := Bipolar{}.Quantize(inner.Encode(in))
	for j := range want {
		if h[j] != want[j] {
			t.Fatal("wrapper disagrees with manual quantize")
		}
	}
}

func TestQuantizeBatch(t *testing.T) {
	encs := [][]float64{{1, -1, 0.5}, {-3, 2, 0}}
	got := QuantizeBatch(Bipolar{}, encs)
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != 1 && got[i][j] != -1 {
				t.Fatalf("non-bipolar output %v", got[i][j])
			}
		}
	}
	// Inputs untouched.
	if encs[0][2] != 0.5 {
		t.Error("QuantizeBatch mutated input")
	}
}
