package quant

import (
	"math"

	"privehd/internal/vecmath"
)

// The sensitivity of HD training is the norm of a single encoded
// hypervector: adjacent datasets differ in one input, so the trained models
// differ by exactly that input's encoding bundled into one class (paper
// §III-B).

// RawL1Sensitivity returns the ℓ1 sensitivity of un-quantized Eq. 2
// encoding, paper Eq. 11:
//
//	∆f = ‖~H‖₁ = sqrt(2·D_iv/π) · D_hv
//
// derived from the folded-normal mean of an encoding dimension, which is
// approximately N(0, D_iv) by the central limit theorem.
func RawL1Sensitivity(dhv, div int) float64 {
	return math.Sqrt(2*float64(div)/math.Pi) * float64(dhv)
}

// RawL2Sensitivity returns the ℓ2 sensitivity of un-quantized Eq. 2
// encoding, paper Eq. 12:
//
//	∆f = ‖~H‖₂ = sqrt(D_hv · D_iv)
//
// from the chi-square mean of the squared dimensions.
func RawL2Sensitivity(dhv, div int) float64 {
	return math.Sqrt(float64(dhv) * float64(div))
}

// AnalyticL2Sensitivity returns the ℓ2 sensitivity of a quantized encoding,
// paper Eq. 14:
//
//	∆f = ( Σ_{k∈|q|} p_k · D_hv · k² )^{1/2}
//
// After quantization the input feature count D_iv no longer matters — only
// the alphabet occupancy does.
func AnalyticL2Sensitivity(q Quantizer, dhv int) float64 {
	alphabet := q.Alphabet()
	probs := q.Probabilities()
	if alphabet == nil {
		// Identity: fall back to the unquantized bound is impossible
		// without D_iv; report NaN so misuse is loud.
		return math.NaN()
	}
	var s float64
	for i, k := range alphabet {
		s += probs[i] * float64(dhv) * k * k
	}
	return math.Sqrt(s)
}

// EmpiricalL2Sensitivity returns the maximum ℓ2 norm across a batch of
// (possibly quantized) encodings — the measured counterpart of Eq. 12/14
// used to validate the analytic bounds.
func EmpiricalL2Sensitivity(encodings [][]float64) float64 {
	var worst float64
	for _, h := range encodings {
		if n := vecmath.Norm2(h); n > worst {
			worst = n
		}
	}
	return worst
}

// Occupancy returns the empirical probability of each alphabet symbol in a
// quantized hypervector, in Alphabet() order — the measured counterpart of
// Probabilities(), used to validate the Eq. 14 occupancy assumptions on
// real encodings. Returns nil for schemes without a finite alphabet.
func Occupancy(q Quantizer, quantized []float64) []float64 {
	alphabet := q.Alphabet()
	if alphabet == nil || len(quantized) == 0 {
		return nil
	}
	counts := make([]float64, len(alphabet))
	for _, v := range quantized {
		for i, a := range alphabet {
			if v == a {
				counts[i]++
				break
			}
		}
	}
	for i := range counts {
		counts[i] /= float64(len(quantized))
	}
	return counts
}

// BiasedTernaryGain returns the sensitivity ratio biased/uniform ternary at
// equal dimension, the paper's "reduces the sensitivity by a factor of
// 0.87×":
//
//	sqrt(D/4 + D/4) / sqrt(D/3 + D/3) = sqrt(3)/2 ≈ 0.866
func BiasedTernaryGain() float64 {
	return math.Sqrt(3) / 2
}
