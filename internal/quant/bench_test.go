package quant

import (
	"testing"

	"privehd/internal/hrand"
)

func benchVector() []float64 {
	return hrand.New(200).NormalVec(10000, 0, 25)
}

func BenchmarkBipolar10k(b *testing.B) {
	h := benchVector()
	q := Bipolar{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Quantize(h)
	}
}

func BenchmarkTernary10k(b *testing.B) {
	h := benchVector()
	q := Ternary{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Quantize(h)
	}
}

func BenchmarkBiasedTernary10k(b *testing.B) {
	h := benchVector()
	q := BiasedTernary{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Quantize(h)
	}
}

func BenchmarkTwoBit10k(b *testing.B) {
	h := benchVector()
	q := TwoBit{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Quantize(h)
	}
}
