package quant

import (
	"math"
	"testing"
	"testing/quick"

	"privehd/internal/hrand"
	"privehd/internal/vecmath"
)

func randVec(seed uint64, n int) []float64 {
	return hrand.New(seed).NormalVec(n, 0, 25)
}

func occupancy(h []float64, symbol float64) float64 {
	if len(h) == 0 {
		return 0
	}
	count := 0
	for _, x := range h {
		if x == symbol {
			count++
		}
	}
	return float64(count) / float64(len(h))
}

func TestBipolarValues(t *testing.T) {
	q := Bipolar{}
	got := q.Quantize([]float64{3, -2, 0, 0.1, -0.1})
	want := []float64{1, -1, 1, 1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Quantize = %v, want %v", got, want)
		}
	}
}

func TestBipolarOccupancy(t *testing.T) {
	h := randVec(1, 10000)
	g := Bipolar{}.Quantize(h)
	p1 := occupancy(g, 1)
	if math.Abs(p1-0.5) > 0.03 {
		t.Errorf("bipolar p(+1) = %v, want ≈0.5", p1)
	}
}

func TestTernaryOccupancy(t *testing.T) {
	h := randVec(2, 9999)
	g := Ternary{}.Quantize(h)
	for _, s := range []float64{-1, 0, 1} {
		p := occupancy(g, s)
		if math.Abs(p-1.0/3.0) > 0.03 {
			t.Errorf("ternary p(%v) = %v, want ≈1/3", s, p)
		}
	}
}

func TestBiasedTernaryOccupancy(t *testing.T) {
	h := randVec(3, 10000)
	g := BiasedTernary{}.Quantize(h)
	if p := occupancy(g, 0); math.Abs(p-0.5) > 0.03 {
		t.Errorf("biased ternary p(0) = %v, want ≈1/2", p)
	}
	for _, s := range []float64{-1, 1} {
		if p := occupancy(g, s); math.Abs(p-0.25) > 0.03 {
			t.Errorf("biased ternary p(%v) = %v, want ≈1/4", s, p)
		}
	}
}

func TestTwoBitOccupancy(t *testing.T) {
	h := randVec(4, 10000)
	g := TwoBit{}.Quantize(h)
	for _, s := range []float64{-2, -1, 0, 1} {
		if p := occupancy(g, s); math.Abs(p-0.25) > 0.03 {
			t.Errorf("2bit p(%v) = %v, want ≈1/4", s, p)
		}
	}
}

func TestQuantizersEmitOnlyAlphabet(t *testing.T) {
	f := func(seed uint64) bool {
		h := randVec(seed, 512)
		for _, q := range Schemes() {
			alphabet := map[float64]bool{}
			for _, a := range q.Alphabet() {
				alphabet[a] = true
			}
			for _, x := range q.Quantize(h) {
				if !alphabet[x] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuantizersPreserveLength(t *testing.T) {
	for _, q := range append(Schemes(), Quantizer(Identity{})) {
		for _, n := range []int{0, 1, 7, 100} {
			h := randVec(uint64(n)+9, n)
			if got := len(q.Quantize(h)); got != n {
				t.Errorf("%s: len = %d, want %d", q.Name(), got, n)
			}
		}
	}
}

func TestQuantizersDoNotMutateInput(t *testing.T) {
	h := randVec(5, 200)
	orig := vecmath.Clone(h)
	for _, q := range append(Schemes(), Quantizer(Identity{})) {
		_ = q.Quantize(h)
		for i := range h {
			if h[i] != orig[i] {
				t.Fatalf("%s mutated its input", q.Name())
			}
		}
	}
}

func TestQuantizerSignConsistency(t *testing.T) {
	// Ternary schemes never flip the sign of a value: nonzero outputs share
	// the input's sign.
	f := func(seed uint64) bool {
		h := randVec(seed, 300)
		for _, q := range []Quantizer{Ternary{}, BiasedTernary{}} {
			g := q.Quantize(h)
			for i, x := range g {
				if x == 1 && h[i] <= 0 {
					return false
				}
				if x == -1 && h[i] >= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuantizerMonotonicity(t *testing.T) {
	// All schemes are monotone maps: h[i] <= h[j] implies q(h)[i] <= q(h)[j].
	f := func(seed uint64) bool {
		h := randVec(seed, 200)
		for _, q := range Schemes() {
			g := q.Quantize(h)
			for i := 0; i < len(h); i++ {
				for j := i + 1; j < len(h); j++ {
					if h[i] < h[j] && g[i] > g[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestIdentity(t *testing.T) {
	h := []float64{1.5, -2.5}
	g := Identity{}.Quantize(h)
	for i := range h {
		if g[i] != h[i] {
			t.Fatal("Identity changed values")
		}
	}
	g[0] = 99
	if h[0] == 99 {
		t.Error("Identity aliased its input")
	}
}

func TestTernaryDegenerateInputs(t *testing.T) {
	// All-zero input quantizes to all zeros without NaN or panic.
	zeros := make([]float64, 100)
	for _, q := range []Quantizer{Ternary{}, BiasedTernary{}} {
		for _, x := range q.Quantize(zeros) {
			if x != 0 {
				t.Errorf("%s on zeros emitted %v", q.Name(), x)
			}
		}
	}
	// Constant positive input: no zeros possible below threshold; values
	// stay in alphabet.
	ones := make([]float64, 100)
	for i := range ones {
		ones[i] = 5
	}
	for _, q := range Schemes() {
		for _, x := range q.Quantize(ones) {
			ok := false
			for _, a := range q.Alphabet() {
				if x == a {
					ok = true
				}
			}
			if !ok {
				t.Errorf("%s on constant input emitted %v", q.Name(), x)
			}
		}
	}
}

func TestParse(t *testing.T) {
	for _, name := range []string{"full", "bipolar", "ternary", "ternary-biased", "2bit"} {
		q, err := Parse(name)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", name, err)
			continue
		}
		if q.Name() != name {
			t.Errorf("Parse(%q).Name() = %q", name, q.Name())
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse(bogus) should fail")
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	for _, q := range Schemes() {
		var s float64
		probs := q.Probabilities()
		if len(probs) != len(q.Alphabet()) {
			t.Errorf("%s: %d probs for %d symbols", q.Name(), len(probs), len(q.Alphabet()))
		}
		for _, p := range probs {
			s += p
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("%s probabilities sum to %v", q.Name(), s)
		}
	}
}

func TestQuantizeIntoMatchesQuantize(t *testing.T) {
	// The pooled in-place path must agree exactly with the allocating one
	// for every scheme, including when dst aliases h.
	src := []float64{3.5, -0.2, 0, 1.1, -7, 0.4, -0.4, 2, 2, -1e-9, 5.5, -3.3}
	all := append(Schemes(), Identity{})
	for _, q := range all {
		want := q.Quantize(src)
		dst := make([]float64, len(src))
		QuantizeInto(q, dst, src)
		for i := range want {
			if dst[i] != want[i] {
				t.Errorf("%s: QuantizeInto[%d] = %v, Quantize = %v", q.Name(), i, dst[i], want[i])
			}
		}
		alias := append([]float64(nil), src...)
		QuantizeInto(q, alias, alias)
		for i := range want {
			if alias[i] != want[i] {
				t.Errorf("%s aliased: QuantizeInto[%d] = %v, want %v", q.Name(), i, alias[i], want[i])
			}
		}
	}
	// Buffer reuse across calls must not leak state between queries.
	for trial := 0; trial < 3; trial++ {
		dst := make([]float64, len(src))
		QuantizeInto(BiasedTernary{}, dst, src)
		want := BiasedTernary{}.Quantize(src)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("trial %d: pooled rank scratch corrupted the result", trial)
			}
		}
	}
}
