// Package quant implements the encoding quantization schemes of Prive-HD
// §III-B2 and the sensitivity analysis that motivates them (paper Eqs. 11,
// 12 and 14).
//
// Per Eq. 13, quantization applies only to the final encoded hypervector:
// the scalar-vector products and the accumulation stay full precision, and
// the class hypervectors built from quantized encodings remain non-binary.
// Quantizing the encoding bounds its ℓ2 norm — and the ℓ2 norm of one
// encoding is exactly the ℓ2 sensitivity of HD training, since adjacent
// datasets differ by one bundled encoding (§III-B).
package quant

import (
	"fmt"
	"sync"

	"privehd/internal/vecmath"
)

// Quantizer maps a full-precision encoded hypervector onto a small symbol
// alphabet. Implementations must be stateless and safe for concurrent use.
type Quantizer interface {
	// Name identifies the scheme in reports ("bipolar", "ternary", ...).
	Name() string
	// Quantize returns a fresh quantized copy of h.
	Quantize(h []float64) []float64
	// Alphabet returns the symbol values the scheme can emit, ascending.
	Alphabet() []float64
	// Probabilities returns the design occupancy p_k of each alphabet
	// symbol (same order as Alphabet), used by the Eq. 14 analytic
	// sensitivity. For i.i.d. encodings the empirical occupancy converges
	// to these values.
	Probabilities() []float64
}

// Identity is the full-precision "no quantization" baseline.
type Identity struct{}

// Name returns "full".
func (Identity) Name() string { return "full" }

// Quantize returns an unmodified copy of h.
func (Identity) Quantize(h []float64) []float64 { return vecmath.Clone(h) }

// Alphabet returns nil: the identity scheme has no finite alphabet.
func (Identity) Alphabet() []float64 { return nil }

// Probabilities returns nil, matching Alphabet.
func (Identity) Probabilities() []float64 { return nil }

// Bipolar is the 1-bit sign quantization of Eq. 13: ~H_q1 = sign(~H).
// Zero quantizes to +1 so the output is always ±1.
type Bipolar struct{}

// Name returns "bipolar".
func (Bipolar) Name() string { return "bipolar" }

// Quantize returns sign(h).
func (Bipolar) Quantize(h []float64) []float64 {
	out := make([]float64, len(h))
	for i, x := range h {
		if x >= 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// Alphabet returns {−1, +1}.
func (Bipolar) Alphabet() []float64 { return []float64{-1, 1} }

// Probabilities returns {1/2, 1/2}: encoded dimensions are symmetric
// zero-mean sums, so "roughly D_hv/2 of encoded dimensions are 1" (paper).
func (Bipolar) Probabilities() []float64 { return []float64{0.5, 0.5} }

// Ternary quantizes onto {−1, 0, +1} with uniform occupancy p = 1/3 per
// symbol: the ⌊D/3⌋ smallest-magnitude dimensions become 0, the rest keep
// their sign. Rank-based assignment (instead of a fixed threshold) hits the
// design occupancy exactly even on the discrete integer-valued encodings
// Eq. 2b produces, which is what makes the Eq. 14 sensitivity tight.
type Ternary struct{}

// Name returns "ternary".
func (Ternary) Name() string { return "ternary" }

// Quantize returns the ternary quantization of h.
func (Ternary) Quantize(h []float64) []float64 {
	return ternaryQuantize(h, 1.0/3.0)
}

// Alphabet returns {−1, 0, +1}.
func (Ternary) Alphabet() []float64 { return []float64{-1, 0, 1} }

// Probabilities returns {1/3, 1/3, 1/3}.
func (Ternary) Probabilities() []float64 { return []float64{1. / 3, 1. / 3, 1. / 3} }

// BiasedTernary is the paper's "ternary (biased)" scheme: the quantization
// threshold is chosen so p_0 = 1/2 and p_{−1} = p_{+1} = 1/4, trading a
// denser zero symbol for a 0.87× lower sensitivity at equal dimension
// (paper §III-B2, Fig. 5b).
type BiasedTernary struct{}

// Name returns "ternary-biased".
func (BiasedTernary) Name() string { return "ternary-biased" }

// Quantize returns the biased ternary quantization of h.
func (BiasedTernary) Quantize(h []float64) []float64 {
	return ternaryQuantize(h, 0.5)
}

// Alphabet returns {−1, 0, +1}.
func (BiasedTernary) Alphabet() []float64 { return []float64{-1, 0, 1} }

// Probabilities returns {1/4, 1/2, 1/4}.
func (BiasedTernary) Probabilities() []float64 { return []float64{0.25, 0.5, 0.25} }

// ternaryQuantize zeroes the ⌊zeroFraction·D⌋ smallest-magnitude
// dimensions (ties resolved by index, making the map deterministic) and
// maps the rest to their sign. Exact zeros always stay zero.
func ternaryQuantize(h []float64, zeroFraction float64) []float64 {
	out := make([]float64, len(h))
	if len(h) == 0 {
		return out
	}
	ternaryQuantizeInto(out, h, zeroFraction, vecmath.AbsRank(h))
	return out
}

// ternaryQuantizeInto writes the ternary quantization of h into out using a
// precomputed |h| rank. out may alias h: every index is read before it is
// written.
func ternaryQuantizeInto(out, h []float64, zeroFraction float64, rank []int) {
	nz := int(zeroFraction * float64(len(h)))
	for r, i := range rank {
		x := h[i]
		switch {
		case r < nz || x == 0:
			out[i] = 0
		case x > 0:
			out[i] = 1
		default:
			out[i] = -1
		}
	}
}

// TwoBit quantizes onto the paper's 2-bit alphabet {−2, −1, 0, +1} with
// uniform occupancy p = 1/4 per symbol: rank-based quartile assignment,
// lowest quarter → −2, then −1, then 0, top quarter → +1.
type TwoBit struct{}

// Name returns "2bit".
func (TwoBit) Name() string { return "2bit" }

// Quantize returns the 2-bit quantization of h.
func (TwoBit) Quantize(h []float64) []float64 {
	out := make([]float64, len(h))
	n := len(h)
	if n == 0 {
		return out
	}
	rank := vecmath.Rank(h)
	symbols := [4]float64{-2, -1, 0, 1}
	for r, i := range rank {
		out[i] = symbols[4*r/n]
	}
	return out
}

// Alphabet returns {−2, −1, 0, +1}.
func (TwoBit) Alphabet() []float64 { return []float64{-2, -1, 0, 1} }

// Probabilities returns {1/4, 1/4, 1/4, 1/4}.
func (TwoBit) Probabilities() []float64 { return []float64{0.25, 0.25, 0.25, 0.25} }

// rankPool recycles the index scratch the rank-based schemes need, so the
// per-query QuantizeInto path allocates nothing. Pointers to slices are
// pooled (and threaded through put) to avoid re-boxing the header per use.
var rankPool = sync.Pool{}

func getRank(n int) *[]int {
	if p, ok := rankPool.Get().(*[]int); ok && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	s := make([]int, n)
	return &s
}

func putRank(p *[]int) { rankPool.Put(p) }

// QuantizeInto writes the quantization of h into dst (which must have
// length len(h)) without allocating — the serving hot path's form of
// Quantize. dst may alias h. The paper schemes quantize with pooled rank
// scratch; unknown Quantizer implementations fall back to Quantize + copy.
func QuantizeInto(q Quantizer, dst, h []float64) {
	if len(dst) != len(h) {
		panic(fmt.Sprintf("quant: QuantizeInto dst has len %d, h %d", len(dst), len(h)))
	}
	if len(h) == 0 {
		return
	}
	switch q := q.(type) {
	case Identity:
		copy(dst, h)
	case Bipolar:
		for i, x := range h {
			if x >= 0 {
				dst[i] = 1
			} else {
				dst[i] = -1
			}
		}
	case Ternary:
		rank := getRank(len(h))
		ternaryQuantizeInto(dst, h, 1.0/3.0, vecmath.AbsRankInto(h, *rank))
		putRank(rank)
	case BiasedTernary:
		rank := getRank(len(h))
		ternaryQuantizeInto(dst, h, 0.5, vecmath.AbsRankInto(h, *rank))
		putRank(rank)
	case TwoBit:
		rank := getRank(len(h))
		vecmath.RankInto(h, *rank)
		symbols := [4]float64{-2, -1, 0, 1}
		for r, i := range *rank {
			dst[i] = symbols[4*r/len(h)]
		}
		putRank(rank)
	default:
		copy(dst, q.Quantize(h))
	}
}

// Schemes lists every quantizer in the order the paper's Fig. 5 plots them.
func Schemes() []Quantizer {
	return []Quantizer{Bipolar{}, Ternary{}, BiasedTernary{}, TwoBit{}}
}

// Parse returns the quantizer with the given Name, or an error listing the
// valid names. "full" returns Identity.
func Parse(name string) (Quantizer, error) {
	all := append(Schemes(), Identity{})
	for _, q := range all {
		if q.Name() == name {
			return q, nil
		}
	}
	names := make([]string, len(all))
	for i, q := range all {
		names[i] = q.Name()
	}
	return nil, fmt.Errorf("quant: unknown scheme %q (valid: %v)", name, names)
}
