package quant

import "privehd/internal/hdc"

// Encoder wraps an hdc.Encoder so every encoding is quantized on the way
// out — the training-side configuration of Eq. 13, where class hypervectors
// are bundled from quantized encodings. It implements hdc.Encoder, so it
// drops into hdc.Train / hdc.EncodeBatch unchanged.
type Encoder struct {
	inner hdc.Encoder
	q     Quantizer
}

// NewEncoder wraps inner so its encodings pass through q.
func NewEncoder(inner hdc.Encoder, q Quantizer) *Encoder {
	return &Encoder{inner: inner, q: q}
}

// Encode returns q.Quantize(inner.Encode(features)).
func (e *Encoder) Encode(features []float64) []float64 {
	return e.q.Quantize(e.inner.Encode(features))
}

// Dim returns the wrapped encoder's hypervector dimensionality.
func (e *Encoder) Dim() int { return e.inner.Dim() }

// NumFeatures returns the wrapped encoder's input dimensionality.
func (e *Encoder) NumFeatures() int { return e.inner.NumFeatures() }

// Inner returns the wrapped encoder (e.g. for base access in attacks).
func (e *Encoder) Inner() hdc.Encoder { return e.inner }

// Quantizer returns the wrapped quantization scheme.
func (e *Encoder) Quantizer() Quantizer { return e.q }

// QuantizeBatch quantizes every encoding in place-order, returning fresh
// slices. It is the inference-side path (paper §III-C): encodings produced
// by a full-precision encoder are quantized before offloading, while the
// model stays full precision.
func QuantizeBatch(q Quantizer, encodings [][]float64) [][]float64 {
	out := make([][]float64, len(encodings))
	for i, h := range encodings {
		out[i] = q.Quantize(h)
	}
	return out
}
