package intscore_test

import (
	"math/rand"
	"testing"

	"privehd/internal/hdc"
	"privehd/internal/intscore"
)

// benchSetup builds the acceptance geometry: D=4000, 26 classes (ISOLET-
// shaped), integer class prototypes as bundling produces, and a biased-
// ternary-shaped packed query.
func benchSetup() (*hdc.Model, *intscore.Engine, []int8) {
	const classes, dim = 26, 4000
	rng := rand.New(rand.NewSource(99))
	m := hdc.NewModel(classes, dim)
	raw := make([][]float64, classes)
	for l := 0; l < classes; l++ {
		h := make([]float64, dim)
		for i := range h {
			h[i] = float64(rng.Intn(801) - 400)
		}
		raw[l] = h
		m.Add(l, h)
	}
	m.Precompute()
	q := make([]int8, dim)
	for i := range q {
		// p(0)=1/2, p(±1)=1/4 — the paper-default biased ternary occupancy.
		switch rng.Intn(4) {
		case 0:
			q[i] = 1
		case 1:
			q[i] = -1
		}
	}
	return m, intscore.Prepare(raw), q
}

// BenchmarkScoresPacked compares scoring one packed query against every
// class on the legacy path (expand to []float64, float64 dot per class —
// what the server did before the integer engine) and on the integer-domain
// engine. The engine sub-benchmarks are the zero-alloc serving paths the CI
// benchmark gate holds at 0 allocs/op.
func BenchmarkScoresPacked(b *testing.B) {
	m, e, q := benchSetup()
	out := make([]float64, m.NumClasses())

	b.Run("float64-expand", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := make([]float64, len(q)) // the per-query expansion the old path paid
			for j, s := range q {
				v[j] = float64(s)
			}
			m.ScoresInto(v, out)
		}
	})
	b.Run("intscore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.ScoresPackedInto(q, out)
		}
	})
	b.Run("intscore-predict", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.PredictPacked(q)
		}
	})
}
