// Package intscore scores packed small-alphabet queries against class
// hypervectors in the integer domain — the associative-memory search of
// Eq. 4 without ever expanding the query back to float64.
//
// Prive-HD's offloaded queries are quantized onto the −2…+1 alphabet
// (§III-B2/III-C) and travel packed as one int8 per dimension, yet a naive
// server pays float bandwidth anyway: expand to []float64, then a float64
// dot per class. This package removes both costs. The class prototypes a
// model was trained from are themselves sums of quantized (integer)
// encodings, so each class vector is exactly integer-valued unless DP noise
// was added; Prepare detects that per class and lays the integer classes
// out as cache-blocked int8/int16/int32 panels. Scoring a packed query is
// then a pure integer dot per class — 4- or 8-wide unrolled int64
// multiply-accumulate over panels sized to stay in L1 — finished by one
// float division per class with the same ℓ2 norm the float path divides by.
//
// # Fidelity to the float path
//
// For integer classes the result is bit-identical to
// hdc.Model.ScoresInto on the float64 expansion of the query: every
// query·class product is an integer, integer-valued float64 partial sums
// are exact below 2^53 (Prepare falls back to the float row when the worst-
// case accumulator 2·‖C‖₁ could reach 2^53, which no real model approaches),
// and the final division uses the identical norm value. Classes that are
// not integer-valued (a DP-noised release) keep a float64 fallback row and
// are scored by a single-accumulator in-order dot — still no query
// expansion, and still bit-identical, since float64(int8 symbol)·c[i]
// accumulated in index order is exactly what vecmath.Dot computes on the
// expanded query. The documented tolerance for callers is therefore 0;
// tests assert ≤1e-9 to keep the contract robust to future reassociation
// (e.g. unrolling the fallback row loop).
//
// Engines are immutable once prepared and safe for concurrent use; per-call
// accumulators come from an internal sync.Pool, so the scoring hot path
// allocates nothing.
package intscore

import (
	"fmt"
	"math"
	"sync"

	"privehd/internal/vecmath"
)

// MinSymbol and MaxSymbol bound the packed-query alphabet: −2…+1 covers
// every quantization scheme in the quant package (bipolar, ternary, biased
// ternary and 2-bit). The offload protocol advertises the same bounds.
const (
	MinSymbol int8 = -2
	MaxSymbol int8 = 1
)

// DefaultBlockDim is the dimensions-per-panel block size Prepare uses: with
// int16 planes and a few dozen classes, one block panel plus the query block
// stays within a typical 32 KiB L1 data cache. It must not exceed 256: the
// gather kernels index panels with uint8 (enforced by the constant
// conversion below).
const DefaultBlockDim = 256

const _ = uint8(DefaultBlockDim - 1) // compile-time guard for uint8 indices

// exactLimit bounds the worst-case |accumulator| (2·‖C‖₁) below which
// integer-valued float64 partial sums are exact; classes beyond it fall back
// to the float row so scores never silently lose bits.
const exactLimit = 1 << 53

// plane widths in bytes, in the order Prepare narrows them; 0 means no
// integer classes.
const (
	width8  = 1
	width16 = 2
	width32 = 4
)

// Engine scores packed queries against one model's prepared class planes.
// It is immutable after Prepare and safe for concurrent use.
type Engine struct {
	dim      int
	classes  int
	blockDim int

	// norms[l] is ‖C_l‖₂, computed exactly as the float scoring path
	// computes it; 0 marks an empty class, scored −Inf.
	norms []float64

	// normsSq[l] is Σ C_l[i]², and partialOK reports that every class is
	// integer-valued with Σv² exactly representable — the precondition for
	// sharded partial scoring: exact integer sums are associative, so a
	// coordinator adding per-slice normsSq (and per-slice int64 dots)
	// across dimension shards reconstructs the whole-model score
	// bit-for-bit. Non-integer (DP-noised) classes, or classes whose Σv²
	// could round, clear partialOK and the server refuses partial-score
	// requests rather than silently drifting.
	normsSq   []float64
	partialOK bool

	// Integer classes live in one blocked panel slice, block-major then
	// row-major, with one row per *integer* class (float-fallback classes
	// occupy no panel memory): plane[(b·intCount+k)·blockDim : …+blockDim]
	// is the dimensions [b·blockDim, (b+1)·blockDim) of the k-th integer
	// class, i.e. class intIdx[k]. The tail block is zero-padded. Exactly
	// one of plane8/16/32 is non-nil when intCount>0; the width is the
	// narrowest that fits every integer class.
	width    int
	plane8   []int8
	plane16  []int16
	plane32  []int32
	isInt    []bool
	intIdx   []int // indices of integer classes, ascending
	intCount int

	// floatRows[l] holds the original float64 prototype for classes that
	// are not exactly integer-valued (nil for integer classes).
	floatRows [][]float64

	scratch sync.Pool
}

// engineScratch is one call's pooled working set.
type engineScratch struct {
	acc    []int64
	scores []float64
	// pos/neg/neg2 are block-local index lists of the query's +1/−1/−2
	// symbols, rebuilt per block on the gather path. Elements are uint8 —
	// a block index always fits — so the gather kernels can prove every
	// row access in bounds against *[DefaultBlockDim]-array rows.
	pos, neg, neg2 [DefaultBlockDim]uint8
}

// Prepare derives an engine from a model's class prototypes with the
// default block size. The class slices are read once and copied into the
// blocked layout (or retained as fallback rows); callers must not mutate
// them afterwards without re-preparing.
func Prepare(classes [][]float64) *Engine {
	return PrepareBlocked(classes, DefaultBlockDim)
}

// PrepareBlocked is Prepare with an explicit dimensions-per-panel block
// size (exported for tests that exercise dims that do not divide the block
// size; serving code uses Prepare).
func PrepareBlocked(classes [][]float64, blockDim int) *Engine {
	if blockDim <= 0 {
		panic(fmt.Sprintf("intscore: block size must be positive, got %d", blockDim))
	}
	e := &Engine{
		classes:   len(classes),
		blockDim:  blockDim,
		norms:     make([]float64, len(classes)),
		normsSq:   make([]float64, len(classes)),
		isInt:     make([]bool, len(classes)),
		partialOK: true,
	}
	if len(classes) == 0 {
		return e
	}
	e.dim = len(classes[0])
	e.floatRows = make([][]float64, len(classes))

	// First pass: norms, per-class integerness, and the narrowest width
	// that holds every integer class.
	var maxAbs float64
	for l, c := range classes {
		if len(c) != e.dim {
			panic(fmt.Sprintf("intscore: class %d has dim %d, class 0 has %d", l, len(c), e.dim))
		}
		e.norms[l] = vecmath.Norm2(c)
		classMax, classNorm1, classNormSq := 0.0, 0.0, 0.0
		integer := true
		for _, v := range c {
			if v != math.Trunc(v) || math.IsInf(v, 0) {
				integer = false
				break
			}
			a := math.Abs(v)
			if a > classMax {
				classMax = a
			}
			classNorm1 += a
			classNormSq += v * v
		}
		// 2·‖C‖₁ bounds |Σ q·C| for q in −2…+1; past the exact-float64
		// range the integer path could round differently than the float
		// path, so such a class (absurd in practice) keeps its float row.
		if integer && (classMax >= math.MaxInt32 || 2*classNorm1 >= exactLimit) {
			integer = false
		}
		e.normsSq[l] = classNormSq
		// Partial (sharded) scoring additionally needs Σv² exact: every v²
		// and every prefix sum must be an integer below 2^53, so cross-
		// shard re-summation is associative and loss-free.
		if !integer || classMax >= 1<<26 || classNormSq >= exactLimit {
			e.partialOK = false
		}
		if integer {
			e.isInt[l] = true
			e.intIdx = append(e.intIdx, l)
			e.intCount++
			if classMax > maxAbs {
				maxAbs = classMax
			}
		} else {
			e.floatRows[l] = append([]float64(nil), c...)
		}
	}
	if e.intCount == 0 {
		return e
	}
	switch {
	case maxAbs <= math.MaxInt8:
		e.width = width8
	case maxAbs <= math.MaxInt16:
		e.width = width16
	default:
		e.width = width32
	}

	// Second pass: copy integer classes into the blocked panel layout.
	blocks := (e.dim + blockDim - 1) / blockDim
	n := blocks * e.intCount * blockDim
	switch e.width {
	case width8:
		e.plane8 = make([]int8, n)
	case width16:
		e.plane16 = make([]int16, n)
	default:
		e.plane32 = make([]int32, n)
	}
	for k, l := range e.intIdx {
		for i, v := range classes[l] {
			b := i / blockDim
			at := (b*e.intCount+k)*blockDim + i%blockDim
			switch e.width {
			case width8:
				e.plane8[at] = int8(v)
			case width16:
				e.plane16[at] = int16(v)
			default:
				e.plane32[at] = int32(v)
			}
		}
	}
	return e
}

// Dim returns the engine's hypervector dimensionality.
func (e *Engine) Dim() int { return e.dim }

// NumClasses returns the number of classes the engine scores.
func (e *Engine) NumClasses() int { return e.classes }

// IntegerClasses returns how many classes are scored on the integer planes
// (the rest fall back to float rows — a DP-noised release, typically).
func (e *Engine) IntegerClasses() int { return e.intCount }

// PlaneBits returns the integer plane element width in bits (8, 16 or 32),
// or 0 when no class is integer-valued.
func (e *Engine) PlaneBits() int { return e.width * 8 }

func (e *Engine) getScratch() *engineScratch {
	if s, ok := e.scratch.Get().(*engineScratch); ok {
		return s
	}
	return &engineScratch{
		acc:    make([]int64, e.classes),
		scores: make([]float64, e.classes),
	}
}

// ScoresPackedInto writes the norm-adjusted similarity of the packed query
// against every class into out (length NumClasses) and returns out — the
// packed-domain twin of hdc.Model.ScoresInto, with no float64 expansion of
// the query and zero heap allocations. Symbols must already be within the
// protocol alphabet; the engine does not re-validate them (the server does
// at the wire). Empty classes score −Inf so they never win the argmax.
func (e *Engine) ScoresPackedInto(q []int8, out []float64) []float64 {
	if len(q) != e.dim {
		panic(fmt.Sprintf("intscore: query has dim %d, engine dim %d", len(q), e.dim))
	}
	if len(out) != e.classes {
		panic(fmt.Sprintf("intscore: scores buffer has %d slots, engine has %d classes", len(out), e.classes))
	}
	s := e.getScratch()
	e.scoresInto(q, out, s)
	e.scratch.Put(s)
	return out
}

// PredictPacked returns the argmax label for the packed query, scoring into
// pooled scratch — the fully allocation-free serving path for callers that
// do not need the per-class scores.
func (e *Engine) PredictPacked(q []int8) int {
	if len(q) != e.dim {
		panic(fmt.Sprintf("intscore: query has dim %d, engine dim %d", len(q), e.dim))
	}
	s := e.getScratch()
	e.scoresInto(q, s.scores, s)
	label := vecmath.ArgMax(s.scores)
	e.scratch.Put(s)
	return label
}

// scoresInto scores q into out using the caller's scratch. Integer-domain
// sums are exact whichever kernel computes them, so the adaptive choice
// below never changes a score bit.
func (e *Engine) scoresInto(q []int8, out []float64, s *engineScratch) {
	if e.intCount > 0 {
		acc := s.acc
		for l := range acc {
			acc[l] = 0
		}
		e.accumulateAdaptive(q, acc, s)
	}
	for l := 0; l < e.classes; l++ {
		n := e.norms[l]
		if n == 0 {
			out[l] = math.Inf(-1)
			continue
		}
		if e.isInt[l] {
			out[l] = float64(s.acc[l]) / n
		} else {
			out[l] = DotPacked(q, e.floatRows[l]) / n
		}
	}
}

// accumulateAdaptive picks the integer kernel for q and adds every integer
// class's dot into acc. Count zero symbols branchlessly ((sym|−sym)>>7&1 is
// 1 iff sym≠0) over a leading sample — rank-based quantization scatters its
// zeros across positions, so a prefix is representative, and the choice
// only affects speed, never the (exact) result. Queries with an
// appreciable zero fraction — the paper's ternary, biased-ternary and
// 2-bit schemes — take the gather path that indexes only the non-zero
// symbols and needs no multiplies; zero-poor (bipolar) queries keep the
// dense multiply-accumulate panels.
func (e *Engine) accumulateAdaptive(q []int8, acc []int64, s *engineScratch) {
	sample := len(q)
	if sample > 512 {
		sample = 512
	}
	nonzero := 0
	for _, sym := range q[:sample] {
		nonzero += int((sym | -sym) >> 7 & 1)
	}
	if sample-nonzero >= sample/8 && e.blockDim == DefaultBlockDim {
		e.accumulateGather(q, acc, s)
	} else {
		e.accumulate(q, acc)
	}
}

// PartialCapable reports whether every class can be scored by exact
// integer partial sums — all classes integer-valued with Σv² exactly
// representable. Only such engines may serve sharded partial-score
// requests; a DP-noised model cannot (and, privacy-wise, should not have
// its raw integer dots shipped around anyway).
func (e *Engine) PartialCapable() bool { return e.partialOK }

// NormsSq returns the per-class Σv² slice, valid only when PartialCapable.
// The returned slice is the engine's backing storage: read-only.
func (e *Engine) NormsSq() []float64 { return e.normsSq }

// PartialsPackedInto writes the raw integer dot ⟨q, C_l⟩ for every class
// into out (length NumClasses) and returns out — the sharded-serving
// primitive: a replica holding a dimension slice of the model scores its
// slice of the query, and the coordinator sums the int64 partials across
// shards (exactly) before the single norm division. Panics unless the
// engine is PartialCapable.
func (e *Engine) PartialsPackedInto(q []int8, out []int64) []int64 {
	if !e.partialOK {
		panic("intscore: engine is not partial-capable (non-integer or oversized classes)")
	}
	if len(q) != e.dim {
		panic(fmt.Sprintf("intscore: query has dim %d, engine dim %d", len(q), e.dim))
	}
	if len(out) != e.classes {
		panic(fmt.Sprintf("intscore: partials buffer has %d slots, engine has %d classes", len(out), e.classes))
	}
	for l := range out {
		out[l] = 0
	}
	if e.intCount == 0 {
		return out
	}
	s := e.getScratch()
	e.accumulateAdaptive(q, out, s)
	e.scratch.Put(s)
	return out
}

// accumulate adds every integer class's dot with q into acc, walking the
// blocked panels so each query block is reused across all classes while it
// is hot in L1. Classes are consumed four at a time: each loaded (and
// sign-extended) query symbol feeds four multiply-accumulates, which is
// what pushes the kernel past the float path rather than merely matching
// it.
func (e *Engine) accumulate(q []int8, acc []int64) {
	bd := e.blockDim
	for b, off := 0, 0; off < e.dim; b, off = b+1, off+bd {
		end := off + bd
		if end > e.dim {
			end = e.dim
		}
		qb := q[off:end]
		n := len(qb)
		base := b * e.intCount * bd
		idx := e.intIdx
		k := 0
		switch e.width {
		case width8:
			for ; k+4 <= len(idx); k += 4 {
				at := base + k*bd
				dot8x4(qb,
					e.plane8[at:at+n],
					e.plane8[at+bd:at+bd+n],
					e.plane8[at+2*bd:at+2*bd+n],
					e.plane8[at+3*bd:at+3*bd+n],
					&acc[idx[k]], &acc[idx[k+1]], &acc[idx[k+2]], &acc[idx[k+3]])
			}
			for ; k < len(idx); k++ {
				at := base + k*bd
				acc[idx[k]] += dot8(qb, e.plane8[at:at+n])
			}
		case width16:
			for ; k+4 <= len(idx); k += 4 {
				at := base + k*bd
				dot16x4(qb,
					e.plane16[at:at+n],
					e.plane16[at+bd:at+bd+n],
					e.plane16[at+2*bd:at+2*bd+n],
					e.plane16[at+3*bd:at+3*bd+n],
					&acc[idx[k]], &acc[idx[k+1]], &acc[idx[k+2]], &acc[idx[k+3]])
			}
			for ; k < len(idx); k++ {
				at := base + k*bd
				acc[idx[k]] += dot16(qb, e.plane16[at:at+n])
			}
		default:
			for ; k+4 <= len(idx); k += 4 {
				at := base + k*bd
				dot32x4(qb,
					e.plane32[at:at+n],
					e.plane32[at+bd:at+bd+n],
					e.plane32[at+2*bd:at+2*bd+n],
					e.plane32[at+3*bd:at+3*bd+n],
					&acc[idx[k]], &acc[idx[k+1]], &acc[idx[k+2]], &acc[idx[k+3]])
			}
			for ; k < len(idx); k++ {
				at := base + k*bd
				acc[idx[k]] += dot32(qb, e.plane32[at:at+n])
			}
		}
	}
}

// accumulateGather is the multiplication-free kernel for queries with an
// appreciable zero fraction: per block it partitions the query symbols into
// +1/−1/−2 index lists once (shared by every class), then each class row
// needs only indexed loads and adds — Σ s·p = Σ_{+1} p − Σ_{−1} p −
// 2·Σ_{−2} p — and zero symbols cost nothing at all. This is the software
// form of the paper's hardware observation that a quantized query turns the
// associative-memory search into adder trees (§III-B2 / Table I). Indices
// are uint8 against *[DefaultBlockDim]-array rows (the layout zero-pads the
// tail block to a full panel), so every access is provably in bounds and
// the kernels carry no checks. Symbols outside the −2…+1 alphabet are
// undefined behaviour for the engine (servers validate at the wire); this
// path treats them as −2. Only runs at the default block size, where a
// block index fits uint8.
func (e *Engine) accumulateGather(q []int8, acc []int64, s *engineScratch) {
	const bd = DefaultBlockDim
	for b, off := 0, 0; off < e.dim; b, off = b+1, off+bd {
		end := off + bd
		if end > e.dim {
			end = e.dim
		}
		qb := q[off:end]
		// Partition the block's symbols into +1/−1/−2 index lists
		// branchlessly: the symbol's sign and low bits select which list's
		// cursor advances, and every list unconditionally records the index
		// at its cursor — random symbols would make a branchy switch
		// mispredict on nearly every element.
		np, nn, n2 := 0, 0, 0
		for j, sym := range qb {
			s.pos[np&(bd-1)] = uint8(j)
			s.neg[nn&(bd-1)] = uint8(j)
			s.neg2[n2&(bd-1)] = uint8(j)
			isNeg := int(sym>>7) & 1  // 1 for −1/−2
			np += int(sym&1) &^ isNeg // odd and non-negative → +1
			nn += int(sym&1) & isNeg  // odd and negative → −1
			n2 += int(^sym&1) & isNeg // even and negative → −2
		}
		pos, neg, neg2 := s.pos[:np], s.neg[:nn], s.neg2[:n2]
		base := b * e.intCount * bd
		idx := e.intIdx
		k := 0
		switch e.width {
		case width8:
			for ; k+4 <= len(idx); k += 4 {
				at := base + k*bd
				r0 := (*[bd]int8)(e.plane8[at:])
				r1 := (*[bd]int8)(e.plane8[at+bd:])
				r2 := (*[bd]int8)(e.plane8[at+2*bd:])
				r3 := (*[bd]int8)(e.plane8[at+3*bd:])
				g0, g1, g2, g3 := gather8x4(pos, r0, r1, r2, r3)
				h0, h1, h2, h3 := gather8x4(neg, r0, r1, r2, r3)
				m0, m1, m2, m3 := gather8x4(neg2, r0, r1, r2, r3)
				acc[idx[k]] += g0 - h0 - 2*m0
				acc[idx[k+1]] += g1 - h1 - 2*m1
				acc[idx[k+2]] += g2 - h2 - 2*m2
				acc[idx[k+3]] += g3 - h3 - 2*m3
			}
			for ; k < len(idx); k++ {
				r := (*[bd]int8)(e.plane8[base+k*bd:])
				acc[idx[k]] += gather8(pos, r) - gather8(neg, r) - 2*gather8(neg2, r)
			}
		case width16:
			for ; k+4 <= len(idx); k += 4 {
				at := base + k*bd
				r0 := (*[bd]int16)(e.plane16[at:])
				r1 := (*[bd]int16)(e.plane16[at+bd:])
				r2 := (*[bd]int16)(e.plane16[at+2*bd:])
				r3 := (*[bd]int16)(e.plane16[at+3*bd:])
				g0, g1, g2, g3 := gather16x4(pos, r0, r1, r2, r3)
				h0, h1, h2, h3 := gather16x4(neg, r0, r1, r2, r3)
				m0, m1, m2, m3 := gather16x4(neg2, r0, r1, r2, r3)
				acc[idx[k]] += g0 - h0 - 2*m0
				acc[idx[k+1]] += g1 - h1 - 2*m1
				acc[idx[k+2]] += g2 - h2 - 2*m2
				acc[idx[k+3]] += g3 - h3 - 2*m3
			}
			for ; k < len(idx); k++ {
				r := (*[bd]int16)(e.plane16[base+k*bd:])
				acc[idx[k]] += gather16(pos, r) - gather16(neg, r) - 2*gather16(neg2, r)
			}
		default:
			for ; k+4 <= len(idx); k += 4 {
				at := base + k*bd
				r0 := (*[bd]int32)(e.plane32[at:])
				r1 := (*[bd]int32)(e.plane32[at+bd:])
				r2 := (*[bd]int32)(e.plane32[at+2*bd:])
				r3 := (*[bd]int32)(e.plane32[at+3*bd:])
				g0, g1, g2, g3 := gather32x4(pos, r0, r1, r2, r3)
				h0, h1, h2, h3 := gather32x4(neg, r0, r1, r2, r3)
				m0, m1, m2, m3 := gather32x4(neg2, r0, r1, r2, r3)
				acc[idx[k]] += g0 - h0 - 2*m0
				acc[idx[k+1]] += g1 - h1 - 2*m1
				acc[idx[k+2]] += g2 - h2 - 2*m2
				acc[idx[k+3]] += g3 - h3 - 2*m3
			}
			for ; k < len(idx); k++ {
				r := (*[bd]int32)(e.plane32[base+k*bd:])
				acc[idx[k]] += gather32(pos, r) - gather32(neg, r) - 2*gather32(neg2, r)
			}
		}
	}
}

// gather8x4 sums four int8 class rows at the given block-local indices: one
// index load feeds four adds — no multiplies, and no bounds checks, since a
// uint8 index cannot escape a [DefaultBlockDim]-array row.
func gather8x4(idx []uint8, p0, p1, p2, p3 *[DefaultBlockDim]int8) (s0, s1, s2, s3 int64) {
	for _, j := range idx {
		s0 += int64(p0[j])
		s1 += int64(p1[j])
		s2 += int64(p2[j])
		s3 += int64(p3[j])
	}
	return
}

// gather16x4 is gather8x4 over int16 rows.
func gather16x4(idx []uint8, p0, p1, p2, p3 *[DefaultBlockDim]int16) (s0, s1, s2, s3 int64) {
	for _, j := range idx {
		s0 += int64(p0[j])
		s1 += int64(p1[j])
		s2 += int64(p2[j])
		s3 += int64(p3[j])
	}
	return
}

// gather32x4 is gather8x4 over int32 rows.
func gather32x4(idx []uint8, p0, p1, p2, p3 *[DefaultBlockDim]int32) (s0, s1, s2, s3 int64) {
	for _, j := range idx {
		s0 += int64(p0[j])
		s1 += int64(p1[j])
		s2 += int64(p2[j])
		s3 += int64(p3[j])
	}
	return
}

// gather8/16/32 are the single-row leftover kernels.
func gather8(idx []uint8, p *[DefaultBlockDim]int8) (s int64) {
	for _, j := range idx {
		s += int64(p[j])
	}
	return
}

func gather16(idx []uint8, p *[DefaultBlockDim]int16) (s int64) {
	for _, j := range idx {
		s += int64(p[j])
	}
	return
}

func gather32(idx []uint8, p *[DefaultBlockDim]int32) (s int64) {
	for _, j := range idx {
		s += int64(p[j])
	}
	return
}

// dot8x4 multiply-accumulates one query block against four int8 class rows
// at once: one symbol load and sign-extension per four MACs, four
// independent accumulator chains.
func dot8x4(q []int8, p0, p1, p2, p3 []int8, a0, a1, a2, a3 *int64) {
	n := len(q)
	p0, p1, p2, p3 = p0[:n], p1[:n], p2[:n], p3[:n]
	var s0, s1, s2, s3 int64
	for i := 0; i < n; i++ {
		s := int64(q[i])
		s0 += s * int64(p0[i])
		s1 += s * int64(p1[i])
		s2 += s * int64(p2[i])
		s3 += s * int64(p3[i])
	}
	*a0 += s0
	*a1 += s1
	*a2 += s2
	*a3 += s3
}

// dot16x4 is dot8x4 over int16 class rows.
func dot16x4(q []int8, p0, p1, p2, p3 []int16, a0, a1, a2, a3 *int64) {
	n := len(q)
	p0, p1, p2, p3 = p0[:n], p1[:n], p2[:n], p3[:n]
	var s0, s1, s2, s3 int64
	for i := 0; i < n; i++ {
		s := int64(q[i])
		s0 += s * int64(p0[i])
		s1 += s * int64(p1[i])
		s2 += s * int64(p2[i])
		s3 += s * int64(p3[i])
	}
	*a0 += s0
	*a1 += s1
	*a2 += s2
	*a3 += s3
}

// dot32x4 is dot8x4 over int32 class rows.
func dot32x4(q []int8, p0, p1, p2, p3 []int32, a0, a1, a2, a3 *int64) {
	n := len(q)
	p0, p1, p2, p3 = p0[:n], p1[:n], p2[:n], p3[:n]
	var s0, s1, s2, s3 int64
	for i := 0; i < n; i++ {
		s := int64(q[i])
		s0 += s * int64(p0[i])
		s1 += s * int64(p1[i])
		s2 += s * int64(p2[i])
		s3 += s * int64(p3[i])
	}
	*a0 += s0
	*a1 += s1
	*a2 += s2
	*a3 += s3
}

// dot8 is the single-row int8 kernel for the ≤3 leftover classes, 4-wide
// unrolled with independent accumulators.
func dot8(q []int8, p []int8) int64 {
	n := len(q)
	p = p[:n]
	var a0, a1, a2, a3 int64
	i := 0
	for ; i+4 <= n; i += 4 {
		a0 += int64(q[i]) * int64(p[i])
		a1 += int64(q[i+1]) * int64(p[i+1])
		a2 += int64(q[i+2]) * int64(p[i+2])
		a3 += int64(q[i+3]) * int64(p[i+3])
	}
	for ; i < n; i++ {
		a0 += int64(q[i]) * int64(p[i])
	}
	return (a0 + a1) + (a2 + a3)
}

// dot16 is the single-row int16 leftover kernel.
func dot16(q []int8, p []int16) int64 {
	n := len(q)
	p = p[:n]
	var a0, a1, a2, a3 int64
	i := 0
	for ; i+4 <= n; i += 4 {
		a0 += int64(q[i]) * int64(p[i])
		a1 += int64(q[i+1]) * int64(p[i+1])
		a2 += int64(q[i+2]) * int64(p[i+2])
		a3 += int64(q[i+3]) * int64(p[i+3])
	}
	for ; i < n; i++ {
		a0 += int64(q[i]) * int64(p[i])
	}
	return (a0 + a1) + (a2 + a3)
}

// dot32 is the single-row int32 leftover kernel.
func dot32(q []int8, p []int32) int64 {
	n := len(q)
	p = p[:n]
	var a0, a1, a2, a3 int64
	i := 0
	for ; i+4 <= n; i += 4 {
		a0 += int64(q[i]) * int64(p[i])
		a1 += int64(q[i+1]) * int64(p[i+1])
		a2 += int64(q[i+2]) * int64(p[i+2])
		a3 += int64(q[i+3]) * int64(p[i+3])
	}
	for ; i < n; i++ {
		a0 += int64(q[i]) * int64(p[i])
	}
	return (a0 + a1) + (a2 + a3)
}

// DotPacked returns Σ q[i]·c[i] without expanding q, accumulated in index
// order with a single accumulator so the result is bit-identical to
// vecmath.Dot on the float64 expansion of q — the fallback kernel for
// non-integer (DP-noised) class rows.
func DotPacked(q []int8, c []float64) float64 {
	if len(q) != len(c) {
		panic("intscore: DotPacked length mismatch")
	}
	var s float64
	for i, v := range q {
		s += float64(v) * c[i]
	}
	return s
}

// PackInto packs a quantized hypervector into the one-int8-per-dimension
// form, reusing buf's storage when it has capacity (pass nil to allocate).
// It reports false — and packs nothing — if any value is not an integer
// within [MinSymbol, MaxSymbol], i.e. the vector was not produced by one of
// the paper's quantization schemes and must stay full-precision.
func PackInto(h []float64, buf []int8) ([]int8, bool) {
	if cap(buf) < len(h) {
		buf = make([]int8, len(h))
	}
	buf = buf[:len(h)]
	for i, v := range h {
		iv := int(v)
		if float64(iv) != v || iv < int(MinSymbol) || iv > int(MaxSymbol) {
			return nil, false
		}
		buf[i] = int8(iv)
	}
	return buf, true
}
