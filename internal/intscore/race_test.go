//go:build race

package intscore_test

// raceEnabled reports that the race detector is active: sync.Pool drops
// puts at random under the detector, so zero-allocation assertions cannot
// hold and are skipped.
const raceEnabled = true
