//go:build !race

package intscore_test

// raceEnabled reports that the race detector is inactive.
const raceEnabled = false
