package intscore_test

import (
	"math"
	"math/rand"
	"testing"

	"privehd/internal/hdc"
	"privehd/internal/intscore"
	"privehd/internal/quant"
	"privehd/internal/vecmath"
)

// refScores is the float64-expansion reference the engine must match: expand
// the packed query, then compute exactly what hdc.Model.ScoresInto computes
// (vecmath.Dot / vecmath.Norm2 per class, −Inf for empty classes).
func refScores(classes [][]float64, q []int8) []float64 {
	v := make([]float64, len(q))
	for i, s := range q {
		v[i] = float64(s)
	}
	out := make([]float64, len(classes))
	for l, c := range classes {
		n := vecmath.Norm2(c)
		if n == 0 {
			out[l] = math.Inf(-1)
			continue
		}
		out[l] = vecmath.Dot(v, c) / n
	}
	return out
}

// alphabets the packed wire can carry, per quantization scheme.
func alphabets() map[string][]int8 {
	out := map[string][]int8{}
	for _, q := range quant.Schemes() {
		syms := make([]int8, 0, 4)
		for _, v := range q.Alphabet() {
			syms = append(syms, int8(v))
		}
		out[q.Name()] = syms
	}
	return out
}

// randPacked draws a query over the given alphabet.
func randPacked(rng *rand.Rand, dim int, alphabet []int8) []int8 {
	q := make([]int8, dim)
	for i := range q {
		q[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return q
}

// randIntClasses builds integer-valued class prototypes with |v| ≤ mag —
// what bundling mag/2-ish quantized encodings produces. Class 0 is left
// all-zero when zeroClass is set, exercising the −Inf path.
func randIntClasses(rng *rand.Rand, classes, dim int, mag int64, zeroClass bool) [][]float64 {
	out := make([][]float64, classes)
	for l := range out {
		c := make([]float64, dim)
		if !(zeroClass && l == 0) {
			for i := range c {
				c[i] = float64(rng.Int63n(2*mag+1) - mag)
			}
		}
		out[l] = c
	}
	return out
}

// checkClose asserts engine scores match the reference within the documented
// 1e-9 relative tolerance (the implementation is in fact bit-identical).
func checkClose(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d scores, want %d", len(got), len(want))
	}
	for l := range got {
		if math.IsInf(want[l], -1) {
			if !math.IsInf(got[l], -1) {
				t.Fatalf("class %d: got %v, want -Inf", l, got[l])
			}
			continue
		}
		tol := 1e-9 * math.Max(1, math.Abs(want[l]))
		if math.Abs(got[l]-want[l]) > tol {
			t.Fatalf("class %d: got %v, want %v (diff %g > tol %g)",
				l, got[l], want[l], got[l]-want[l], tol)
		}
	}
}

// TestEquivalence sweeps geometries that do and do not divide the block
// size, every packed alphabet, all three plane widths, and zero-norm
// classes, asserting ScoresPackedInto matches the float64-expansion
// reference.
func TestEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dims := []int{1, 3, 7, 63, 64, 255, 256, 257, 1000, 4001}
	mags := map[string]int64{"int8": 100, "int16": 30000, "int32": 4_000_000}
	for name, alphabet := range alphabets() {
		for _, dim := range dims {
			for magName, mag := range mags {
				classes := randIntClasses(rng, 5, dim, mag, true)
				e := intscore.Prepare(classes)
				if e.IntegerClasses() != 5 {
					t.Fatalf("%s dim=%d %s: %d integer classes, want 5", name, dim, magName, e.IntegerClasses())
				}
				q := randPacked(rng, dim, alphabet)
				got := e.ScoresPackedInto(q, make([]float64, len(classes)))
				checkClose(t, got, refScores(classes, q))
			}
		}
	}
}

// TestEquivalenceOddBlockSizes re-runs the sweep with block sizes that do
// not divide the dimension, including pathological ones.
func TestEquivalenceOddBlockSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dim := range []int{1, 5, 257, 1000} {
		for _, bd := range []int{1, 3, 7, 256, 1024} {
			classes := randIntClasses(rng, 4, dim, 500, false)
			e := intscore.PrepareBlocked(classes, bd)
			q := randPacked(rng, dim, []int8{-2, -1, 0, 1})
			got := e.ScoresPackedInto(q, make([]float64, len(classes)))
			checkClose(t, got, refScores(classes, q))
		}
	}
}

// TestFloatFallbackRows covers models whose class vectors are not integer-
// valued (a DP-noised release): those classes must fall back to float rows —
// still scored without expanding the query — and mixed models must score
// both kinds correctly side by side.
func TestFloatFallbackRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 513
	classes := randIntClasses(rng, 6, dim, 1000, true)
	// Classes 2 and 4 get fractional noise; the rest stay integer.
	for _, l := range []int{2, 4} {
		for i := range classes[l] {
			classes[l][i] += rng.NormFloat64()
		}
	}
	e := intscore.Prepare(classes)
	if e.IntegerClasses() != 4 {
		t.Fatalf("IntegerClasses = %d, want 4", e.IntegerClasses())
	}
	for trial := 0; trial < 20; trial++ {
		q := randPacked(rng, dim, []int8{-2, -1, 0, 1})
		got := e.ScoresPackedInto(q, make([]float64, len(classes)))
		checkClose(t, got, refScores(classes, q))
	}
}

// TestBitIdenticalToModel asserts the strongest form of the contract: on a
// precomputed hdc.Model with integer class vectors, ScoresPackedInto is
// bit-for-bit identical to ScoresInto on the expanded query.
func TestBitIdenticalToModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const dim, nclasses = 777, 9
	m := hdc.NewModel(nclasses, dim)
	for l := 0; l < nclasses; l++ {
		for rep := 0; rep < 3; rep++ {
			h := make([]float64, dim)
			for i := range h {
				h[i] = float64(rng.Intn(4) - 2) // −2…+1 quantized encoding
			}
			m.Add(l, h)
		}
	}
	m.Precompute()
	if m.PackedScorer() == nil {
		t.Fatal("Precompute did not derive a packed scorer")
	}
	for trial := 0; trial < 50; trial++ {
		q := randPacked(rng, dim, []int8{-2, -1, 0, 1})
		v := make([]float64, dim)
		for i, s := range q {
			v[i] = float64(s)
		}
		want := m.ScoresInto(v, make([]float64, nclasses))
		got := m.ScoresPackedInto(q, make([]float64, nclasses))
		for l := range want {
			if got[l] != want[l] {
				t.Fatalf("trial %d class %d: packed %v != float %v", trial, l, got[l], want[l])
			}
		}
		if pl, fl := m.PredictPacked(q), m.Predict(v); pl != fl {
			t.Fatalf("trial %d: PredictPacked %d != Predict %d", trial, pl, fl)
		}
	}
}

// TestModelMutationDropsScorer asserts the engine follows the norm-cache
// freshness discipline: any mutation invalidates it, and the fallback path
// still scores correctly until the next Precompute.
func TestModelMutationDropsScorer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := hdc.NewModel(3, 64)
	h := make([]float64, 64)
	for i := range h {
		h[i] = float64(rng.Intn(3) - 1)
	}
	m.Add(1, h)
	m.Precompute()
	if m.PackedScorer() == nil {
		t.Fatal("no scorer after Precompute")
	}
	m.Add(2, h)
	if m.PackedScorer() != nil {
		t.Fatal("scorer survived Add")
	}
	q := randPacked(rng, 64, []int8{-1, 0, 1})
	classes := [][]float64{m.Class(0), m.Class(1), m.Class(2)}
	checkClose(t, m.ScoresPackedInto(q, make([]float64, 3)), refScores(classes, q))
	m.Precompute()
	if m.PackedScorer() == nil {
		t.Fatal("no scorer after re-Precompute")
	}
	m.InvalidateAll()
	if m.PackedScorer() != nil {
		t.Fatal("scorer survived InvalidateAll")
	}
}

// TestPlaneWidths pins the width-narrowing logic to the class magnitudes.
func TestPlaneWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, tc := range []struct {
		mag  int64
		bits int
	}{{100, 8}, {5000, 16}, {1 << 20, 32}} {
		e := intscore.Prepare(randIntClasses(rng, 2, 128, tc.mag, false))
		if e.PlaneBits() != tc.bits {
			t.Fatalf("mag %d: PlaneBits = %d, want %d", tc.mag, e.PlaneBits(), tc.bits)
		}
	}
}

// TestPackInto covers the pack/validate contract both with and without a
// reusable buffer.
func TestPackInto(t *testing.T) {
	ok := []float64{-2, -1, 0, 1, 1, -2}
	buf := make([]int8, 8)
	q, packed := intscore.PackInto(ok, buf)
	if !packed {
		t.Fatal("valid alphabet rejected")
	}
	if len(q) != len(ok) {
		t.Fatalf("packed length %d, want %d", len(q), len(ok))
	}
	if &q[0] != &buf[0] {
		t.Fatal("PackInto did not reuse the provided buffer")
	}
	for i, v := range ok {
		if float64(q[i]) != v {
			t.Fatalf("symbol %d: packed %d, want %v", i, q[i], v)
		}
	}
	for _, bad := range [][]float64{{0.5}, {-3}, {2}, {math.NaN()}, {math.Inf(1)}} {
		if _, packed := intscore.PackInto(bad, nil); packed {
			t.Fatalf("invalid value %v accepted", bad[0])
		}
	}
	if q, packed := intscore.PackInto(nil, nil); !packed || len(q) != 0 {
		t.Fatal("empty vector should pack to an empty query")
	}
}

// TestZeroAllocScoring pins the hot-path allocation contract: ScoresPacked-
// Into with a caller buffer and PredictPacked allocate nothing per query.
func TestZeroAllocScoring(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under the race detector")
	}
	rng := rand.New(rand.NewSource(7))
	classes := randIntClasses(rng, 26, 4000, 1000, false)
	e := intscore.Prepare(classes)
	q := randPacked(rng, 4000, []int8{-2, -1, 0, 1})
	out := make([]float64, 26)
	if n := testing.AllocsPerRun(50, func() { e.ScoresPackedInto(q, out) }); n != 0 {
		t.Fatalf("ScoresPackedInto allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { e.PredictPacked(q) }); n != 0 {
		t.Fatalf("PredictPacked allocates %v per op, want 0", n)
	}
}

// FuzzScoresPacked fuzzes the packed alphabet against the float64-expansion
// reference on a fixed mixed model (integer planes + one float fallback row
// + one zero class).
func FuzzScoresPacked(f *testing.F) {
	const dim = 97
	rng := rand.New(rand.NewSource(8))
	classes := randIntClasses(rng, 4, dim, 2000, true)
	for i := range classes[3] {
		classes[3][i] += 0.25 // force one float fallback row
	}
	e := intscore.PrepareBlocked(classes, 32)
	f.Add([]byte{0, 1, 2, 3, 255})
	f.Add(make([]byte, dim))
	f.Fuzz(func(t *testing.T, data []byte) {
		q := make([]int8, dim)
		for i := range q {
			var b byte
			if len(data) > 0 {
				b = data[i%len(data)]
			}
			q[i] = int8(b%4) - 2 // map every byte into −2…+1
		}
		got := e.ScoresPackedInto(q, make([]float64, len(classes)))
		checkClose(t, got, refScores(classes, q))
	})
}
