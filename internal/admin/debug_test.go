package admin

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"privehd/internal/trace"
)

func TestMetricsExemptFromAuth(t *testing.T) {
	// GET /metrics shares the admin mux but is scrapeable without the
	// bearer token; everything else on the mux stays gated.
	h := newTestHandler(t, newFakeBackend())
	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("unauthenticated GET /metrics → %d, want 200", w.Code)
	}
	if !strings.Contains(w.Body.String(), "# TYPE") {
		t.Errorf("GET /metrics body is not an exposition:\n%.200s", w.Body.String())
	}
	// POST is not in the exempt table even for the same path.
	req = httptest.NewRequest("POST", "/metrics", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusUnauthorized {
		t.Errorf("unauthenticated POST /metrics → %d, want 401", w.Code)
	}
}

func TestDebugRequestsServesRecorderSnapshot(t *testing.T) {
	rec := trace.NewRecorder(4, 4)
	rec.Record(trace.Entry{
		TraceID: 0xabcdef0123456789, Time: time.Now(), Side: "server",
		Model: "isolet", Op: "classify", Outcome: "ok", Queries: 1,
		TotalNs: 5_000_000,
	})
	rec.Record(trace.Entry{
		Time: time.Now(), Side: "server", Op: "classify",
		Outcome: "bad-batch", TotalNs: 1_000,
	})
	h, err := NewHandler(newFakeBackend(), testToken, 0, WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}

	// The flight recorder exposes request metadata (models, peers); it is
	// NOT in the auth-exempt table.
	req := httptest.NewRequest("GET", "/v1/debug/requests", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated GET /v1/debug/requests → %d, want 401", w.Code)
	}

	w = do(t, h, "GET", "/v1/debug/requests", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/debug/requests → %d: %s", w.Code, w.Body.String())
	}
	var snap trace.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("response is not a snapshot: %v\n%s", err, w.Body.String())
	}
	if snap.Records != 2 {
		t.Errorf("Records = %d, want 2", snap.Records)
	}
	if len(snap.Slowest) != 1 || snap.Slowest[0].Trace != "abcdef0123456789" {
		t.Errorf("Slowest = %+v, want the one ok entry with its hex trace id", snap.Slowest)
	}
	if len(snap.Errors) != 1 || snap.Errors[0].Outcome != "bad-batch" {
		t.Errorf("Errors = %+v, want the one errored entry", snap.Errors)
	}
}

func TestPprofOnlyWithOptionAndAuth(t *testing.T) {
	// Without WithPprof the profiling routes do not exist at all.
	bare := newTestHandler(t, newFakeBackend())
	if w := do(t, bare, "GET", "/debug/pprof/cmdline", nil); w.Code != http.StatusNotFound {
		t.Errorf("pprof without WithPprof → %d, want 404", w.Code)
	}

	h, err := NewHandler(newFakeBackend(), testToken, 0, WithPprof())
	if err != nil {
		t.Fatal(err)
	}
	// Mounted, but never without the bearer token: profiles leak heap
	// contents and goroutine stacks.
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusUnauthorized {
		t.Errorf("unauthenticated pprof index → %d, want 401", w.Code)
	}
	if w := do(t, h, "GET", "/debug/pprof/", nil); w.Code != http.StatusOK {
		t.Errorf("authenticated pprof index → %d, want 200", w.Code)
	}
	if w := do(t, h, "GET", "/debug/pprof/cmdline", nil); w.Code != http.StatusOK {
		t.Errorf("authenticated pprof cmdline → %d, want 200", w.Code)
	}
}
