// Package admin is the HTTP management plane for a serving deployment: a
// small bearer-token-authenticated JSON API over net/http through which an
// operator uploads model versions, activates or rolls them back, sets the
// default, and lists what is live — the control plane next to the offload
// protocol's data plane.
//
// The package knows nothing about stores or registries; it speaks to a
// Backend, and the privehd.Manager is the production implementation. Every
// mutation the Backend performs is expected to be durable before it is
// visible (publish-after-persist), so the API never advertises state a
// crash would lose.
//
// Endpoints (all under bearer auth unless listed in authExempt):
//
//	GET    /v1/models                        list models, versions, counters
//	GET    /v1/models/{name}                 one model's status
//	POST   /v1/models/{name}/versions        upload a blob as a new version
//	                                         (?activate=false to stage only)
//	POST   /v1/models/{name}/activate        activate ?version=N
//	POST   /v1/models/{name}/rollback        activate the previous version
//	POST   /v1/models/{name}/default         make {name} the default model
//	DELETE /v1/models/{name}                 deregister and delete
//	GET    /v1/debug/requests                flight recorder: slowest and
//	                                         errored requests with stage
//	                                         breakdowns and trace IDs
//	GET    /metrics                          Prometheus scrape (auth-exempt)
//	GET    /debug/pprof/...                  profiling, only with WithPprof
package admin

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"privehd/internal/hdc"
	"privehd/internal/metrics"
	"privehd/internal/registry"
	"privehd/internal/store"
	"privehd/internal/trace"
)

// DefaultMaxUpload bounds upload bodies when NewHandler is given no other
// limit: 256 MiB holds any plausible Prive-HD model (the paper's D=10,000
// geometry saves in single-digit megabytes) while keeping a hostile client
// from exhausting memory.
const DefaultMaxUpload = 256 << 20

// VersionInfo is one stored version in a listing.
type VersionInfo struct {
	Version int       `json:"version"`
	SHA256  string    `json:"sha256"`
	Size    int64     `json:"size"`
	Created time.Time `json:"created"`
}

// ModelStatus is one model's management view: durable version history from
// the store merged with the live registry state.
type ModelStatus struct {
	Name string `json:"name"`
	// ActiveVersion is the store's committed active version (0 when the
	// model is staged but never activated).
	ActiveVersion int `json:"active_version"`
	// Default flags the deployment's default model.
	Default bool `json:"default"`
	// Live reports whether the registry currently serves the model.
	Live bool `json:"live"`
	// Served counts queries answered under this name since it went live.
	Served uint64 `json:"served"`
	// Dim and Classes are the live model's geometry (0 when not live).
	Dim     int `json:"dim,omitempty"`
	Classes int `json:"classes,omitempty"`
	// Versions is the durable history, oldest first.
	Versions []VersionInfo `json:"versions"`
}

// Backend is what the API manages. Implementations must be safe for
// concurrent use; privehd.Manager is the production one.
type Backend interface {
	// Upload stores blob as a new version of name, activating it unless
	// told to stage, and returns the assigned version number.
	Upload(name string, blob []byte, activate bool) (int, error)
	// Activate makes an existing stored version the active one.
	Activate(name string, version int) error
	// Rollback activates the version preceding the active one and returns
	// the version it landed on.
	Rollback(name string) (int, error)
	// Deregister removes the model from serving and from the store.
	Deregister(name string) error
	// SetDefault makes name the deployment default.
	SetDefault(name string) error
	// Status lists every model, sorted by name.
	Status() []ModelStatus
}

// Handler is the management API. Create one with NewHandler.
type Handler struct {
	backend   Backend
	token     []byte
	maxUpload int64
	mux       *http.ServeMux
	recorder  *trace.Recorder
}

// HandlerOption configures a Handler beyond the required arguments.
type HandlerOption func(*Handler)

// WithPprof mounts net/http/pprof's profiling endpoints under
// /debug/pprof/ on the handler. They stay behind the bearer token — heap
// and goroutine dumps leak addresses, model names and traffic patterns —
// and the admin handler is the only place they can be mounted: the public
// serve listener speaks the offload protocol, not HTTP, and the standalone
// metrics listener is unauthenticated by design.
func WithPprof() HandlerOption {
	return func(h *Handler) {
		h.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		h.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		h.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		h.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		h.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		h.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// WithRecorder points GET /v1/debug/requests at r instead of the
// process-wide server flight recorder (trace.Default) — for tests.
func WithRecorder(r *trace.Recorder) HandlerOption {
	return func(h *Handler) {
		if r != nil {
			h.recorder = r
		}
	}
}

// NewHandler builds the management API around a backend. The bearer token
// is required — an unauthenticated management plane is a model-replacement
// oracle, so an empty token is a refused configuration, not a default.
// maxUpload bounds upload bodies in bytes; 0 means DefaultMaxUpload.
func NewHandler(backend Backend, token string, maxUpload int64, opts ...HandlerOption) (*Handler, error) {
	if backend == nil {
		return nil, errors.New("admin: backend must not be nil")
	}
	if token == "" {
		return nil, errors.New("admin: bearer token must not be empty")
	}
	if maxUpload <= 0 {
		maxUpload = DefaultMaxUpload
	}
	metrics.EnsureGoRuntime()
	h := &Handler{backend: backend, token: []byte(token), maxUpload: maxUpload, mux: http.NewServeMux(), recorder: trace.Default}
	h.mux.HandleFunc("GET /v1/models", h.list)
	h.mux.HandleFunc("GET /v1/models/{name}", h.get)
	h.mux.HandleFunc("POST /v1/models/{name}/versions", h.upload)
	h.mux.HandleFunc("POST /v1/models/{name}/activate", h.activate)
	h.mux.HandleFunc("POST /v1/models/{name}/rollback", h.rollback)
	h.mux.HandleFunc("POST /v1/models/{name}/default", h.setDefault)
	h.mux.HandleFunc("DELETE /v1/models/{name}", h.remove)
	h.mux.HandleFunc("GET /v1/debug/requests", h.debugRequests)
	h.mux.Handle("GET /metrics", metrics.Default.Handler())
	for _, o := range opts {
		o(h)
	}
	return h, nil
}

// authExempt is the single list of routes served WITHOUT the bearer token.
// Everything else on the shared mux — model mutations, the flight
// recorder, pprof — is authenticated by default, so a future endpoint
// cannot accidentally ship auth-exempt by omission: it would have to be
// added here, next to this rationale. GET /metrics is exempt because the
// exposition holds operational counters, not model bytes or mutation
// routes, and Prometheus scrapers don't carry per-target credentials by
// default; deployments that need the scrape private should firewall the
// admin listener (or run ServeMetrics on a separate internal listener).
var authExempt = map[string]bool{
	"GET /metrics": true,
}

// ServeHTTP authenticates (unless the exact method+path is in the
// authExempt table), then routes on the shared mux.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !authExempt[r.Method+" "+r.URL.Path] && !h.authorized(r) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="privehd-admin"`)
		writeError(w, http.StatusUnauthorized, errors.New("missing or invalid bearer token"))
		return
	}
	h.mux.ServeHTTP(w, r)
}

// authorized checks the Authorization header in constant time.
func (h *Handler) authorized(r *http.Request) bool {
	const prefix = "Bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) <= len(prefix) || auth[:len(prefix)] != prefix {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), h.token) == 1
}

func (h *Handler) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": h.backend.Status()})
}

func (h *Handler) get(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	for _, m := range h.backend.Status() {
		if m.Name == name {
			writeJSON(w, http.StatusOK, m)
			return
		}
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("unknown model %q", name))
}

func (h *Handler) upload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	activate := true
	if v := r.URL.Query().Get("activate"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad activate=%q: %v", v, err))
			return
		}
		activate = b
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, h.maxUpload))
	if err != nil {
		writeBackendError(w, err)
		return
	}
	version, err := h.backend.Upload(name, blob, activate)
	if err != nil {
		writeBackendError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": name, "version": version, "active": activate})
}

func (h *Handler) activate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	raw := r.URL.Query().Get("version")
	version, err := strconv.Atoi(raw)
	if err != nil || version < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("activate requires ?version=N, got %q", raw))
		return
	}
	if err := h.backend.Activate(name, version); err != nil {
		writeBackendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "version": version})
}

func (h *Handler) rollback(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	version, err := h.backend.Rollback(name)
	if err != nil {
		writeBackendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "version": version})
}

func (h *Handler) setDefault(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := h.backend.SetDefault(name); err != nil {
		writeBackendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"default": name})
}

// debugRequests serves the flight recorder: the slowest and the errored
// requests the server has retained, each with its trace ID, stage
// breakdown, peer and outcome — the "why was THIS query slow" endpoint.
func (h *Handler) debugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.recorder.Snapshot())
}

func (h *Handler) remove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := h.backend.Deregister(name); err != nil {
		writeBackendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name})
}

// writeBackendError maps backend failures to HTTP statuses: malformed
// input (bad names, corrupt blobs) is the client's fault, unknown names
// and versions are 404, oversized uploads 413, everything else a 500.
func writeBackendError(w http.ResponseWriter, err error) {
	var maxBytes *http.MaxBytesError
	switch {
	case errors.As(err, &maxBytes):
		writeError(w, http.StatusRequestEntityTooLarge, err)
	case errors.Is(err, store.ErrBadName), errors.Is(err, store.ErrCorrupt), errors.Is(err, hdc.ErrCorrupt):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, store.ErrUnknownModel), errors.Is(err, store.ErrUnknownVersion),
		errors.Is(err, registry.ErrUnknownModel):
		writeError(w, http.StatusNotFound, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Serve runs the handler on lis until ctx is cancelled or the listener
// fails, shutting down gracefully (in-flight requests finish) on
// cancellation. It returns nil after a clean stop.
func Serve(ctx context.Context, lis net.Listener, h http.Handler) error {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	serveDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(shutdownCtx)
		case <-serveDone:
		}
	}()
	err := srv.Serve(lis)
	close(serveDone)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}
