package admin

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"privehd/internal/hdc"
	"privehd/internal/store"
)

const testToken = "sekrit"

// fakeBackend records calls and serves canned state, so handler tests pin
// routing, auth, status codes and JSON shapes without a real store.
type fakeBackend struct {
	models   []ModelStatus
	uploaded map[string][]byte
	lastCall string
	fail     error
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		uploaded: map[string][]byte{},
		models: []ModelStatus{
			{Name: "isolet", ActiveVersion: 2, Default: true, Live: true, Served: 42,
				Dim: 256, Classes: 26, Versions: []VersionInfo{{Version: 1}, {Version: 2}}},
			{Name: "mnist", ActiveVersion: 1, Live: true, Versions: []VersionInfo{{Version: 1}}},
		},
	}
}

func (f *fakeBackend) Upload(name string, blob []byte, activate bool) (int, error) {
	f.lastCall = fmt.Sprintf("upload %s activate=%v", name, activate)
	if f.fail != nil {
		return 0, f.fail
	}
	f.uploaded[name] = blob
	return 3, nil
}

func (f *fakeBackend) Activate(name string, version int) error {
	f.lastCall = fmt.Sprintf("activate %s %d", name, version)
	return f.fail
}

func (f *fakeBackend) Rollback(name string) (int, error) {
	f.lastCall = "rollback " + name
	if f.fail != nil {
		return 0, f.fail
	}
	return 1, nil
}

func (f *fakeBackend) Deregister(name string) error {
	f.lastCall = "deregister " + name
	return f.fail
}

func (f *fakeBackend) SetDefault(name string) error {
	f.lastCall = "default " + name
	return f.fail
}

func (f *fakeBackend) Status() []ModelStatus { return f.models }

func newTestHandler(t *testing.T, b Backend) *Handler {
	t.Helper()
	h, err := NewHandler(b, testToken, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// do runs one authenticated request and returns the recorder.
func do(t *testing.T, h http.Handler, method, path string, body io.Reader) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, body)
	req.Header.Set("Authorization", "Bearer "+testToken)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestEmptyTokenRefused(t *testing.T) {
	if _, err := NewHandler(newFakeBackend(), "", 0); err == nil {
		t.Fatal("NewHandler with empty token succeeded")
	}
	if _, err := NewHandler(nil, testToken, 0); err == nil {
		t.Fatal("NewHandler with nil backend succeeded")
	}
}

func TestAuthRequired(t *testing.T) {
	h := newTestHandler(t, newFakeBackend())
	for _, header := range []string{"", "Bearer wrong", "Basic " + testToken, "Bearer"} {
		req := httptest.NewRequest("GET", "/v1/models", nil)
		if header != "" {
			req.Header.Set("Authorization", header)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusUnauthorized {
			t.Errorf("Authorization %q → %d, want 401", header, w.Code)
		}
		if w.Header().Get("WWW-Authenticate") == "" {
			t.Errorf("Authorization %q: 401 without WWW-Authenticate", header)
		}
	}
}

func TestListAndGet(t *testing.T) {
	h := newTestHandler(t, newFakeBackend())

	w := do(t, h, "GET", "/v1/models", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("list → %d: %s", w.Code, w.Body)
	}
	var listing struct {
		Models []ModelStatus `json:"models"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Models) != 2 || listing.Models[0].Name != "isolet" || !listing.Models[0].Default {
		t.Fatalf("listing = %+v", listing.Models)
	}
	if listing.Models[0].Served != 42 || len(listing.Models[0].Versions) != 2 {
		t.Fatalf("isolet status = %+v", listing.Models[0])
	}

	w = do(t, h, "GET", "/v1/models/mnist", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("get → %d", w.Code)
	}
	var one ModelStatus
	if err := json.Unmarshal(w.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if one.Name != "mnist" || one.ActiveVersion != 1 {
		t.Fatalf("get mnist = %+v", one)
	}

	if w := do(t, h, "GET", "/v1/models/nope", nil); w.Code != http.StatusNotFound {
		t.Fatalf("get unknown → %d, want 404", w.Code)
	}
}

func TestUpload(t *testing.T) {
	b := newFakeBackend()
	h := newTestHandler(t, b)

	w := do(t, h, "POST", "/v1/models/isolet/versions", bytes.NewReader([]byte("blob")))
	if w.Code != http.StatusCreated {
		t.Fatalf("upload → %d: %s", w.Code, w.Body)
	}
	if b.lastCall != "upload isolet activate=true" || string(b.uploaded["isolet"]) != "blob" {
		t.Fatalf("backend saw %q, blob %q", b.lastCall, b.uploaded["isolet"])
	}
	var resp struct {
		Version int  `json:"version"`
		Active  bool `json:"active"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != 3 || !resp.Active {
		t.Fatalf("upload response = %+v", resp)
	}

	// Staged upload: ?activate=false reaches the backend.
	do(t, h, "POST", "/v1/models/isolet/versions?activate=false", bytes.NewReader([]byte("b2")))
	if b.lastCall != "upload isolet activate=false" {
		t.Fatalf("staged upload saw %q", b.lastCall)
	}

	if w := do(t, h, "POST", "/v1/models/isolet/versions?activate=maybe", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("bad activate flag → %d, want 400", w.Code)
	}
}

func TestUploadTooLarge(t *testing.T) {
	h, err := NewHandler(newFakeBackend(), testToken, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := do(t, h, "POST", "/v1/models/m/versions", bytes.NewReader(make([]byte, 64)))
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload → %d, want 413", w.Code)
	}
}

func TestActivateValidation(t *testing.T) {
	b := newFakeBackend()
	h := newTestHandler(t, b)
	for _, q := range []string{"", "?version=0", "?version=-1", "?version=abc"} {
		if w := do(t, h, "POST", "/v1/models/m/activate"+q, nil); w.Code != http.StatusBadRequest {
			t.Errorf("activate%s → %d, want 400", q, w.Code)
		}
	}
	w := do(t, h, "POST", "/v1/models/m/activate?version=2", nil)
	if w.Code != http.StatusOK || b.lastCall != "activate m 2" {
		t.Fatalf("activate → %d, backend saw %q", w.Code, b.lastCall)
	}
}

func TestRollbackDefaultDelete(t *testing.T) {
	b := newFakeBackend()
	h := newTestHandler(t, b)

	w := do(t, h, "POST", "/v1/models/m/rollback", nil)
	if w.Code != http.StatusOK || b.lastCall != "rollback m" {
		t.Fatalf("rollback → %d, backend saw %q", w.Code, b.lastCall)
	}
	if !strings.Contains(w.Body.String(), `"version": 1`) {
		t.Fatalf("rollback body %s", w.Body)
	}

	if w := do(t, h, "POST", "/v1/models/m/default", nil); w.Code != http.StatusOK || b.lastCall != "default m" {
		t.Fatalf("default → %d, backend saw %q", w.Code, b.lastCall)
	}
	if w := do(t, h, "DELETE", "/v1/models/m", nil); w.Code != http.StatusOK || b.lastCall != "deregister m" {
		t.Fatalf("delete → %d, backend saw %q", w.Code, b.lastCall)
	}
}

func TestErrorMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{store.ErrUnknownModel, http.StatusNotFound},
		{store.ErrUnknownVersion, http.StatusNotFound},
		{fmt.Errorf("wrapped: %w", store.ErrBadName), http.StatusBadRequest},
		{fmt.Errorf("load: %w", hdc.ErrCorrupt), http.StatusBadRequest},
		{store.ErrCorrupt, http.StatusBadRequest},
		{errors.New("disk on fire"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		b := newFakeBackend()
		b.fail = tc.err
		h := newTestHandler(t, b)
		w := do(t, h, "POST", "/v1/models/m/rollback", nil)
		if w.Code != tc.want {
			t.Errorf("backend error %v → %d, want %d", tc.err, w.Code, tc.want)
		}
	}
}

func TestServeGracefulStop(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := newTestHandler(t, newFakeBackend())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, lis, h) }()

	// The server answers over a real socket.
	req, _ := http.NewRequest("GET", "http://"+lis.Addr().String()+"/v1/models", nil)
	req.Header.Set("Authorization", "Bearer "+testToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live request → %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve after cancel = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not stop after cancel")
	}
}
