// Resilience mechanics for the cluster layer: jittered retry backoff, a
// shared per-call retry budget, per-replica circuit breakers, in-band
// liveness pings on idle pooled connections, and hedged requests.
//
// These compose with — rather than replace — the existing machinery:
// ejection/probing stays the health authority (the breaker gates how
// eagerly a probe may re-admit a flapping replica), pool retry and cluster
// failover stay the retry paths (the budget bounds how many total attempts
// one logical call may burn), and hedging rides on the same failover
// primitive with a private-result/commit-once discipline so concurrent
// attempts never race on caller state.
package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"privehd/internal/offload"
	"privehd/internal/trace"
)

// jitterBackoff spreads a backoff delay uniformly over [d/2, d] so a fleet
// of clients that lost the same replica at the same moment does not redial
// it in lockstep (thundering herd). The cap is the caller's: d is already
// clamped to MaxBackoff before jittering.
func jitterBackoff(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(d-half)+1))
}

// errDialBackoff tags a pool rejection issued from inside a dial-backoff
// window. Such a rejection performs no I/O — the replica already paid
// (breaker, ejection, backoff) for the dial failure that opened the window
// — so failover treats it as "unavailable right now" rather than a fresh
// failure: no breaker hit, no re-ejection, and no retry-budget charge.
// Without the distinction, a fleet-wide blip drains a call's entire budget
// on attempts that never leave the process.
var errDialBackoff = errors.New("backing off")

// retryBudget is the shared per-call retry allowance: every retry beyond a
// path's first attempt — a pool redialing its one in-pool retry, a cluster
// failing over to the next replica, a hedge burning attempts of its own —
// draws from the same counter, so stacked retry layers cannot multiply
// into attempt storms when the fleet is sick.
type retryBudget struct{ n atomic.Int64 }

// take consumes one retry if any remain.
func (b *retryBudget) take() bool {
	for {
		v := b.n.Load()
		if v <= 0 {
			return false
		}
		if b.n.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

type retryBudgetKey struct{}

// withRetryBudget returns ctx carrying a fresh budget of n retries.
func withRetryBudget(ctx context.Context, n int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	b := &retryBudget{}
	b.n.Store(int64(n))
	return context.WithValue(ctx, retryBudgetKey{}, b)
}

// budgetFrom extracts the call's retry budget, nil when none was attached
// (a bare Pool used without a Cluster keeps its historical retry-once
// behavior).
func budgetFrom(ctx context.Context) *retryBudget {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(retryBudgetKey{}).(*retryBudget)
	return b
}

// ensureBudget attaches the cluster's default per-call retry budget unless
// the caller (an outer DoHedged, or a scatter parent) already did. The
// default — four attempts per replica — funds two full failover sweeps:
// one visit costs up to two units (the op plus its in-pool retry), and a
// single sweep is too brittle when a cut connection fails several
// multiplexed calls at once and they re-converge on the same fresh
// connection. Two sweeps absorb that correlation; anything beyond is an
// attempt storm the budget exists to stop.
func (cl *Cluster) ensureBudget(ctx context.Context) context.Context {
	if budgetFrom(ctx) != nil {
		return ctx
	}
	return withRetryBudget(ctx, 4*len(cl.replicas))
}

// failoverPause is the jittered pause before the Nth failover attempt of
// one call. The first failover is immediate — one replica dying must not
// slow the caller — and later ones back off with jitter so a call
// sweeping a sick fleet does not hammer it in a tight loop.
func failoverPause(attempt int) time.Duration {
	if attempt < 2 {
		return 0
	}
	d := time.Millisecond << uint(attempt-2)
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return jitterBackoff(d)
}

// Circuit-breaker tuning. The defaults deliberately reproduce the
// pre-breaker behavior on the first failure (trip immediately, re-admit on
// the next successful probe) and only add friction to *flapping*: every
// reopen doubles the probe-readmission cooldown, so a replica that keeps
// dying right after re-admission is probed back in less and less eagerly,
// while steady recovery resets the ladder.
const (
	// breakerWindow is how many recent attempt outcomes the error-rate
	// trip condition looks at.
	breakerWindow = 16
	// breakerRate is the error rate over a full window that trips the
	// breaker even when failures never run consecutively.
	breakerRate = 0.5
	// breakerCooldownBase is the probe-readmission cooldown after the
	// first reopen (the first open has no cooldown at all).
	breakerCooldownBase = 250 * time.Millisecond
	// breakerCooldownMax caps the doubling cooldown ladder.
	breakerCooldownMax = 4 * time.Second
	// breakerStableAfter is how many consecutive successes collapse the
	// reopen ladder back to zero.
	breakerStableAfter = 8
)

type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one replica's circuit breaker. Ejection and breaker-open are
// the same event seen by two mechanisms: traffic failures open the
// breaker (and eject), probe successes may close it again — but only
// after the cooldown ladder says the replica has earned another chance.
// Traffic successes always close it immediately: real work answering is
// better evidence than any probe.
type breaker struct {
	addr string

	mu       sync.Mutex
	state    breakerState
	consec   int // consecutive failures while closed
	streak   int // consecutive successes (any state)
	window   [breakerWindow]bool
	wIdx     int
	wLen     int
	openedAt time.Time
	cooldown time.Duration
	reopens  int
}

func newBreaker(addr string) *breaker {
	cmBreakerState.With(addr).Set(0)
	return &breaker{addr: addr}
}

func (b *breaker) setState(s breakerState) {
	b.state = s
	cmBreakerState.With(b.addr).Set(int64(s))
}

// recordSuccess closes the breaker from any state and, after a stable run
// of successes, collapses the reopen/cooldown ladder.
func (b *breaker) recordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec = 0
	b.streak++
	b.pushOutcome(false)
	if b.state != breakerClosed {
		b.setState(breakerClosed)
		// Re-admission resets the window: failures from before the
		// outage must not instantly re-trip the error-rate condition.
		b.wLen, b.wIdx = 0, 0
	}
	if b.streak >= breakerStableAfter {
		b.reopens = 0
		b.cooldown = 0
	}
}

// recordFailure registers one failed attempt and reports whether it
// tripped the breaker open (the caller ejects the replica exactly then).
func (b *breaker) recordFailure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.streak = 0
	b.consec++
	b.pushOutcome(true)
	switch b.state {
	case breakerOpen:
		return false
	case breakerHalfOpen:
		b.open(now)
		return true
	default:
		if b.consec >= 1 || b.rateTripped() {
			b.open(now)
			return true
		}
		return false
	}
}

// open trips the breaker, escalating the cooldown ladder: the first open
// is free (cooldown 0 — the next probe may re-admit immediately), each
// subsequent open doubles it up to the cap.
func (b *breaker) open(now time.Time) {
	b.setState(breakerOpen)
	b.openedAt = now
	switch {
	case b.reopens == 0:
		b.cooldown = 0
	case b.cooldown == 0:
		b.cooldown = breakerCooldownBase
	default:
		b.cooldown *= 2
		if b.cooldown > breakerCooldownMax {
			b.cooldown = breakerCooldownMax
		}
	}
	b.reopens++
	cmBreakerOpens.With(b.addr).Inc()
}

// ready reports whether a successful probe may re-admit the replica now.
// An open breaker past its cooldown moves to half-open (the probe that
// asked is the trial); a closed or half-open breaker always allows.
func (b *breaker) ready(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.setState(breakerHalfOpen)
			return true
		}
		return false
	default:
		return true
	}
}

// pushOutcome records one attempt in the error-rate ring. Caller holds mu.
func (b *breaker) pushOutcome(failed bool) {
	b.window[b.wIdx] = failed
	b.wIdx = (b.wIdx + 1) % breakerWindow
	if b.wLen < breakerWindow {
		b.wLen++
	}
}

// rateTripped reports whether a full window's error rate crossed the trip
// threshold. Caller holds mu.
func (b *breaker) rateTripped() bool {
	if b.wLen < breakerWindow {
		return false
	}
	failed := 0
	for _, f := range b.window {
		if f {
			failed++
		}
	}
	return float64(failed) >= breakerRate*float64(breakerWindow)
}

// currentState returns the state for snapshots.
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// HedgePolicy opts a Cluster into hedged requests: when a call's primary
// attempt has not answered after the hedge delay, a backup attempt is
// issued to a different replica and the first reply wins (classification
// is idempotent, so duplicated work is waste, never corruption); the
// loser is canceled. Delay 0 means adaptive: the delay tracks roughly the
// 90th percentile of recently observed per-attempt latencies, clamped to
// [MinDelay, MaxDelay], so hedges fire for stragglers, not for the median.
type HedgePolicy struct {
	// Delay is the fixed time to wait before hedging; 0 selects the
	// adaptive delay.
	Delay time.Duration
	// MinDelay/MaxDelay clamp the adaptive delay (defaults 1ms / 100ms).
	// Ignored when Delay is fixed.
	MinDelay time.Duration
	MaxDelay time.Duration
}

const (
	hedgeLatWindow  = 64 // per-attempt latency samples the adaptive delay sees
	hedgeLatRefresh = 16 // recompute the cached delay every N observations
)

// observeLatency feeds one successful attempt's latency to the adaptive
// hedge delay. Only called when hedging is enabled.
func (cl *Cluster) observeLatency(d time.Duration) {
	cl.latMu.Lock()
	cl.lats[cl.latIdx%hedgeLatWindow] = int64(d)
	cl.latIdx++
	n := cl.latIdx
	var recompute []int64
	if n%hedgeLatRefresh == 0 {
		w := hedgeLatWindow
		if n < w {
			w = n
		}
		recompute = append(recompute, cl.lats[:w]...)
	}
	cl.latMu.Unlock()
	if recompute == nil {
		return
	}
	// Rough p90 by selection: sort the (small, copied) window.
	for i := 1; i < len(recompute); i++ {
		for j := i; j > 0 && recompute[j] < recompute[j-1]; j-- {
			recompute[j], recompute[j-1] = recompute[j-1], recompute[j]
		}
	}
	p90 := recompute[(len(recompute)*9)/10%len(recompute)]
	cl.hedgeDelayNs.Store(p90)
}

// hedgeDelay resolves the current delay before a backup attempt launches.
func (cl *Cluster) hedgeDelay() time.Duration {
	h := cl.cfg.Hedge
	if h.Delay > 0 {
		return h.Delay
	}
	lo, hi := h.MinDelay, h.MaxDelay
	if lo <= 0 {
		lo = time.Millisecond
	}
	if hi <= 0 {
		hi = 100 * time.Millisecond
	}
	d := time.Duration(cl.hedgeDelayNs.Load())
	if d < lo {
		d = lo
	}
	if d > hi {
		d = hi
	}
	return d
}

// HedgedOp builds one independent attempt of a hedgeable operation: op
// must write results only into state private to that attempt (and must
// use the context it is handed — the loser's is canceled), and commit
// publishes that private state to the caller. DoHedged calls commit at
// most once — for the winning attempt — so concurrent attempts never race
// on the caller's variables.
type HedgedOp func() (op func(context.Context, *Pool) error, commit func())

// DoHedged runs mk's operation with tail-latency hedging when the cluster
// has a HedgePolicy (plain failover otherwise): the primary attempt runs
// the usual failover path, and if it has not resolved after the hedge
// delay a backup attempt launches against a replica distinct from the one
// the primary is on. First success wins and commits; the loser's context
// is canceled and its late outcome discarded. Both attempts draw from one
// shared retry budget, so hedging cannot double the fleet-wide retry
// storm. span (nil-safe) gets the hedge's in-flight window as StageHedge.
func (cl *Cluster) DoHedged(ctx context.Context, span *trace.Span, mk HedgedOp) error {
	if cl.cfg.Hedge == nil || len(cl.replicas) < 2 {
		op, commit := mk()
		if err := cl.doAttempt(cl.ensureBudget(ctx), nil, nil, op); err != nil {
			return err
		}
		commit()
		return nil
	}
	ctx = cl.ensureBudget(ctx)

	type outcome struct {
		err    error
		commit func()
		hedge  bool
	}
	resCh := make(chan outcome, 2)

	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	var primaryOn atomic.Pointer[replica]
	pop, pcommit := mk()
	go func() {
		err := cl.doAttempt(pctx, nil, primaryOn.Store, pop)
		resCh <- outcome{err: err, commit: pcommit, hedge: false}
	}()

	timer := time.NewTimer(cl.hedgeDelay())
	defer timer.Stop()
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	var (
		hedgeStart  time.Time
		hedgeFlight bool
	)

	var first, second *outcome
	for first == nil {
		select {
		case <-timer.C:
			if hedgeFlight {
				continue
			}
			hedgeFlight = true
			hedgeStart = time.Now()
			// Aim the hedge away from wherever the primary currently is;
			// pick falls back gracefully when nothing else is healthy.
			var prefer *replica
			if avoid := primaryOn.Load(); avoid != nil {
				prefer = cl.pick(map[*replica]bool{avoid: true})
			}
			hop, hcommit := mk()
			go func() {
				err := cl.doAttempt(hctx, prefer, nil, hop)
				resCh <- outcome{err: err, commit: hcommit, hedge: true}
			}()
		case out := <-resCh:
			if out.err != nil && hedgeFlight && second == nil {
				// One attempt failed while the other may still win: hold
				// the verdict for the survivor. (A typed protocol error
				// from a live server is still worth racing: the other
				// attempt may be talking to a healthier publication, and
				// if it fails too the first verdict stands.)
				second = &out
				continue
			}
			first = &out
		}
	}

	// Resolve the loser: cancel it and drain its outcome so no goroutine
	// outlives the call and the hedge metrics can tell lost from canceled.
	if hedgeFlight && second == nil {
		hcancel()
		pcancel()
		o := <-resCh
		second = &o
	}

	winner := first
	if winner.err != nil && second != nil && second.err == nil {
		winner = second
	}
	if hedgeFlight {
		span.ObserveSince(trace.StageHedge, hedgeStart)
		switch {
		case winner.err != nil:
			cmHedges.With("canceled").Inc()
		case winner.hedge:
			cmHedges.With("won").Inc()
		default:
			var loser *outcome
			if first.hedge {
				loser = second
			} else if second != nil && second.hedge {
				loser = second
			}
			if loser != nil && loser.err == nil {
				cmHedges.With("lost").Inc()
			} else {
				cmHedges.With("canceled").Inc()
			}
		}
	}
	if winner.err != nil {
		// Prefer a typed verdict over a cancellation artifact: if the
		// other attempt failed with a real answer, surface that.
		if second != nil && !errors.Is(winner.err, context.Canceled) && !errors.Is(second.err, offload.ErrTransport) && errors.Is(winner.err, offload.ErrTransport) {
			return second.err
		}
		return winner.err
	}
	winner.commit()
	return nil
}

// Ping interval defaults (see PoolConfig.PingInterval).
const (
	// DefaultPingInterval is how long a pooled connection may sit idle
	// before the pool pings it in-band; negative disables pinging.
	DefaultPingInterval = 15 * time.Second
	// pingTimeout caps how long one liveness ping may take before the
	// connection is declared dead (tighter of this and the pool's
	// IOTimeout).
	pingTimeout = 2 * time.Second
)

// pingLoop drives in-band liveness pings on idle connections.
func (p *Pool) pingLoop() {
	defer close(p.pingerDone)
	ticker := time.NewTicker(p.cfg.PingInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopPinger:
			return
		case <-ticker.C:
			p.pingIdle(time.Now())
		}
	}
}

// pingIdle pings every connection that has sat idle for at least one ping
// interval. A connection is held (in-flight incremented) across its ping
// so the reaper and acquire see consistent state, but lastUse is
// deliberately NOT updated: a ping is not use, and a conn nobody needs
// must still age out. Any ping error — transport, timeout — means the
// peer's serve loop is gone, so the connection is dropped immediately
// instead of poisoning the next caller. ErrUnsupportedOp never surfaces
// here: the client maps a pre-ping server's typed rejection to success.
func (p *Pool) pingIdle(now time.Time) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	var targets []*poolConn
	for _, pc := range p.conns {
		if pc.inflight == 0 && pc.c.Err() == nil && now.Sub(pc.lastUse) >= p.cfg.PingInterval {
			pc.inflight++
			targets = append(targets, pc)
		}
	}
	p.syncGauges()
	p.mu.Unlock()
	for _, pc := range targets {
		timeout := pingTimeout
		if p.cfg.IOTimeout > 0 && p.cfg.IOTimeout < timeout {
			timeout = p.cfg.IOTimeout
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		err := pc.c.Ping(ctx)
		cancel()
		p.mu.Lock()
		pc.inflight--
		dead := err != nil
		if dead {
			for i, cur := range p.conns {
				if cur == pc {
					p.conns = append(p.conns[:i], p.conns[i+1:]...)
					break
				}
			}
		}
		p.syncGauges()
		p.mu.Unlock()
		if dead {
			pc.c.Close()
			cmPoolPings.With(p.cfg.Addr, "failed").Inc()
		} else {
			cmPoolPings.With(p.cfg.Addr, "ok").Inc()
		}
	}
}
