package cluster

// Coverage for the fleet-wide batch scatter: a batch large enough to split
// fans out over healthy replicas in parallel chunks, results reassemble in
// query order, and a chunk whose replica dies fails over independently.

import (
	"context"
	"testing"

	"privehd/internal/offload"
)

func TestClusterBatchScatterSpreadsAcrossReplicas(t *testing.T) {
	const dim = 32
	reps := []*testReplica{startReplica(t, dim), startReplica(t, dim), startReplica(t, dim)}
	cl, err := NewCluster(ClusterConfig{
		Network: "tcp",
		Addrs:   []string{reps[0].addr, reps[1].addr, reps[2].addr},
		Hello:   offload.Hello{Dim: dim},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Alternate classes so a single ordering mistake in the chunked
	// reassembly flips a label.
	const n = 60
	batch := make([][]float64, n)
	for i := range batch {
		batch[i] = classQuery(dim, i%2)
	}
	labels, err := cl.ClassifyBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != n {
		t.Fatalf("got %d labels, want %d", len(labels), n)
	}
	for i, l := range labels {
		if l != i%2 {
			t.Fatalf("query %d classified %d, want %d (chunk reassembly out of order?)", i, l, i%2)
		}
	}
	// The scatter must actually spread: every replica answered part of the
	// batch, and the fleet answered exactly the batch.
	total := 0
	for i, r := range reps {
		served := r.Served()
		if served == 0 {
			t.Errorf("replica %d served nothing — batch not scattered", i)
		}
		total += served
	}
	if total != n {
		t.Errorf("fleet served %d queries, want %d", total, n)
	}
}

func TestClusterBatchScatterFailsOverDeadReplica(t *testing.T) {
	const dim = 32
	reps := []*testReplica{startReplica(t, dim), startReplica(t, dim), startReplica(t, dim)}
	cl, err := NewCluster(ClusterConfig{
		Network: "tcp",
		Addrs:   []string{reps[0].addr, reps[1].addr, reps[2].addr},
		Hello:   offload.Hello{Dim: dim},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Eagerly validate, then kill one replica before the scatter: its
	// chunks must fail over to the survivors without failing the batch.
	if _, err := cl.Hello(context.Background()); err != nil {
		t.Fatal(err)
	}
	reps[2].Kill()

	const n = 48
	batch := make([][]float64, n)
	for i := range batch {
		batch[i] = classQuery(dim, i%2)
	}
	labels, err := cl.ClassifyBatch(context.Background(), batch)
	if err != nil {
		t.Fatalf("batch with a dead replica: %v", err)
	}
	for i, l := range labels {
		if l != i%2 {
			t.Fatalf("query %d classified %d, want %d", i, l, i%2)
		}
	}
	if got := reps[0].Served() + reps[1].Served(); got != n {
		t.Errorf("survivors served %d queries, want %d", got, n)
	}
}

func TestClusterBatchSmallStaysSingleFlight(t *testing.T) {
	// A batch too small to split keeps the single-replica path: exactly one
	// replica answers all of it (chunking a 2-query batch across the fleet
	// would waste connections).
	const dim = 16
	reps := []*testReplica{startReplica(t, dim), startReplica(t, dim), startReplica(t, dim)}
	cl, err := NewCluster(ClusterConfig{
		Network: "tcp",
		Addrs:   []string{reps[0].addr, reps[1].addr, reps[2].addr},
		Hello:   offload.Hello{Dim: dim},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	labels, err := cl.ClassifyBatch(context.Background(), [][]float64{classQuery(dim, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 1 || labels[0] != 0 {
		t.Fatalf("labels = %v", labels)
	}
	answered := 0
	for _, r := range reps {
		if r.Served() > 0 {
			answered++
		}
	}
	if answered != 1 {
		t.Errorf("%d replicas answered a 1-query batch, want 1", answered)
	}
}
