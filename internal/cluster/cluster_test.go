package cluster

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privehd/internal/hdc"
	"privehd/internal/offload"
	"privehd/internal/registry"
)

// testModel returns a 2-class model of the given dimensionality whose
// class 0 vector is all +1 and class 1 all −1.
func testModel(dim int) *hdc.Model {
	m := hdc.NewModel(2, dim)
	pos := make([]float64, dim)
	neg := make([]float64, dim)
	for i := range pos {
		pos[i] = 1
		neg[i] = -1
	}
	m.Add(0, pos)
	m.Add(1, neg)
	return m
}

func classQuery(dim, class int) []float64 {
	q := make([]float64, dim)
	v := 1.0
	if class == 1 {
		v = -1
	}
	for i := range q {
		q[i] = v
	}
	return q
}

// testReplica is one loopback server that can be killed and restarted on
// the same address.
type testReplica struct {
	t    *testing.T
	dim  int
	addr string

	mu   sync.Mutex
	lis  net.Listener
	srv  *offload.Server
	done chan error
}

// startReplica serves testModel(dim) on a fresh loopback port.
func startReplica(t *testing.T, dim int) *testReplica {
	t.Helper()
	r := &testReplica{t: t, dim: dim}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r.addr = lis.Addr().String()
	r.serveOn(lis)
	t.Cleanup(r.Kill)
	return r
}

func (r *testReplica) serveOn(lis net.Listener) {
	srv := offload.NewServer(testModel(r.dim), offload.WithWorkers(2))
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	r.mu.Lock()
	r.lis, r.srv, r.done = lis, srv, done
	r.mu.Unlock()
}

// Kill closes the replica's listener and every connection immediately.
func (r *testReplica) Kill() {
	r.mu.Lock()
	srv, done := r.srv, r.done
	r.srv = nil
	r.mu.Unlock()
	if srv == nil {
		return
	}
	srv.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		r.t.Error("replica did not stop")
	}
}

// Restart brings the replica back on its original address.
func (r *testReplica) Restart() error {
	lis, err := net.Listen("tcp", r.addr)
	if err != nil {
		return err
	}
	r.serveOn(lis)
	return nil
}

func (r *testReplica) Served() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.srv == nil {
		return 0
	}
	return r.srv.Served()
}

func TestPoolServesConcurrentCallers(t *testing.T) {
	const dim = 64
	rep := startReplica(t, dim)
	p := NewPool(PoolConfig{Network: "tcp", Addr: rep.addr, Hello: offload.Hello{Dim: dim}, Size: 3})
	defer p.Close()

	const callers, rounds = 24, 10
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		want := i % 2
		go func() {
			q := classQuery(dim, want)
			for r := 0; r < rounds; r++ {
				label, _, err := p.Classify(context.Background(), q)
				if err != nil {
					errs <- err
					return
				}
				if label != want {
					errs <- fmt.Errorf("want label %d, got %d", want, label)
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Conns < 1 || st.Conns > 3 {
		t.Errorf("pool kept %d conns, want 1..3", st.Conns)
	}
	if rep.Served() != callers*rounds {
		t.Errorf("served %d, want %d", rep.Served(), callers*rounds)
	}
}

func TestPoolRedialsAfterConnLossWithBackoff(t *testing.T) {
	const dim = 16
	rep := startReplica(t, dim)
	p := NewPool(PoolConfig{
		Network: "tcp", Addr: rep.addr, Hello: offload.Hello{Dim: dim},
		MaxBackoff: 200 * time.Millisecond,
	})
	defer p.Close()

	if _, _, err := p.Classify(context.Background(), classQuery(dim, 0)); err != nil {
		t.Fatal(err)
	}
	rep.Kill()
	// The in-pool retry hits the dead server: first a transport error on
	// the cached conn, then a failed redial. Either way the error is
	// typed retryable.
	_, _, err := p.Classify(context.Background(), classQuery(dim, 0))
	if !errors.Is(err, offload.ErrTransport) {
		t.Fatalf("dead server: err = %v, want ErrTransport", err)
	}
	// While down, dial attempts back off: a quick probe of the error text
	// is not needed — just verify calls keep failing fast and typed.
	start := time.Now()
	_, _, err = p.Classify(context.Background(), classQuery(dim, 0))
	if !errors.Is(err, offload.ErrTransport) {
		t.Fatalf("backoff window: err = %v, want ErrTransport", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("failing call did not fail fast during backoff")
	}
	// Server returns; after the backoff window traffic recovers on its own.
	if err := rep.Restart(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		label, _, err := p.Classify(context.Background(), classQuery(dim, 1))
		if err == nil {
			if label != 1 {
				t.Fatalf("label = %d after recovery", label)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never recovered after server restart: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := p.Stats(); st.Dials < 2 {
		t.Errorf("Dials = %d, want ≥ 2 (a redial after the loss)", st.Dials)
	}
}

func TestPoolReapsIdleConns(t *testing.T) {
	const dim = 16
	rep := startReplica(t, dim)
	p := NewPool(PoolConfig{
		Network: "tcp", Addr: rep.addr, Hello: offload.Hello{Dim: dim},
		Size: 4, IdleTimeout: 50 * time.Millisecond,
	})
	defer p.Close()
	if _, _, err := p.Classify(context.Background(), classQuery(dim, 0)); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Conns == 0 {
		t.Fatal("no conn after a classify")
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Conns != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle conns never reaped: %+v", p.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The pool still works after reaping down to zero.
	if _, _, err := p.Classify(context.Background(), classQuery(dim, 1)); err != nil {
		t.Fatalf("classify after reap: %v", err)
	}
}

func TestPoolSurfacesTypedProtocolErrors(t *testing.T) {
	// Protocol rejections must come through the pool untouched and
	// unretried: unknown model at the handshake.
	reg := registry.New()
	if _, err := reg.Register("only", testModel(8), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := offload.NewRegistryServer(reg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	defer func() { srv.Close(); <-done }()

	p := NewPool(PoolConfig{
		Network: "tcp", Addr: lis.Addr().String(),
		Hello: offload.Hello{Dim: 8, Model: "ghost"},
	})
	defer p.Close()
	_, _, err = p.Classify(context.Background(), classQuery(8, 0))
	if !errors.Is(err, offload.ErrUnknownModel) {
		t.Errorf("ghost model through pool: err = %v, want ErrUnknownModel", err)
	}
	if errors.Is(err, offload.ErrTransport) {
		t.Errorf("protocol rejection classified as transport failure: %v", err)
	}
}

// TestClusterFailoverUnderConcurrentLoad is the subsystem's acceptance
// test: ≥64 concurrent callers drive a 3-replica cluster while one
// replica is killed mid-run. Every request must either succeed (failover)
// or fail with a typed error — no hangs, no lost or misrouted responses —
// and pipelined out-of-order completion is asserted via request IDs on a
// raw side connection.
func TestClusterFailoverUnderConcurrentLoad(t *testing.T) {
	const dim = 256
	reps := []*testReplica{startReplica(t, dim), startReplica(t, dim), startReplica(t, dim)}
	addrs := []string{reps[0].addr, reps[1].addr, reps[2].addr}

	cl, err := NewCluster(ClusterConfig{
		Network: "tcp", Addrs: addrs, Hello: offload.Hello{Dim: dim},
		Pool:          PoolConfig{Size: 2, IOTimeout: 5 * time.Second},
		ProbeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const callers = 64
	const rounds = 24
	var (
		wg        sync.WaitGroup
		succeeded atomic.Int64
		typedErrs atomic.Int64
	)
	errs := make(chan error, callers)
	killAt := make(chan struct{})
	var killOnce sync.Once
	var total atomic.Int64
	for i := 0; i < callers; i++ {
		want := i % 2
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := classQuery(dim, want)
			for r := 0; r < rounds; r++ {
				label, scores, err := cl.Classify(context.Background(), q)
				switch {
				case err == nil:
					if label != want || len(scores) != 2 {
						errs <- fmt.Errorf("misrouted response: want label %d, got %d (scores %v)", want, label, scores)
						return
					}
					succeeded.Add(1)
				case errors.Is(err, ErrNoHealthyReplicas) || errors.Is(err, offload.ErrTransport):
					// Typed, retryable failure — acceptable, never a hang.
					typedErrs.Add(1)
				default:
					errs <- fmt.Errorf("untyped error: %v", err)
					return
				}
				if total.Add(1) == callers*rounds/3 {
					killOnce.Do(func() { close(killAt) })
				}
			}
			errs <- nil
		}()
	}
	// Kill replica 2 once a third of the traffic has flowed.
	go func() {
		<-killAt
		reps[2].Kill()
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("cluster requests hung")
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := succeeded.Load() + typedErrs.Load(); got != callers*rounds {
		t.Fatalf("accounted %d of %d requests", got, callers*rounds)
	}
	if succeeded.Load() < callers*rounds*9/10 {
		t.Errorf("only %d/%d requests succeeded via failover", succeeded.Load(), callers*rounds)
	}
	t.Logf("%d succeeded, %d typed transport failures", succeeded.Load(), typedErrs.Load())

	// The dead replica is ejected...
	deadline := time.Now().Add(5 * time.Second)
	for {
		sts := cl.Replicas()
		if !sts[2].Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed replica never ejected: %+v", sts)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// ...and the survivors carried the load.
	if reps[0].Served()+reps[1].Served() == 0 {
		t.Error("surviving replicas served nothing")
	}

	// Out-of-order pipelined completion, asserted via request IDs on a raw
	// v4 connection to a surviving replica: a heavy frame (ID 1) then a
	// light frame (ID 2); the light one overtakes.
	assertOutOfOrder(t, reps[0].addr, dim)

	// The killed replica comes back and is re-admitted by the prober.
	if err := reps[2].Restart(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		if cl.Replicas()[2].Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted replica never re-admitted")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// assertOutOfOrder proves v4 pipelining at the wire level: replies
// correlate by ID, not arrival order.
func assertOutOfOrder(t *testing.T, addr string, dim int) {
	t.Helper()
	heavyQ, ok := offload.PackQuery(classQuery(dim, 0))
	if !ok {
		t.Fatal("query should pack")
	}
	heavy := offload.Request{ID: 1, Queries: make([]offload.Query, 200)}
	for i := range heavy.Queries {
		heavy.Queries[i] = offload.Query{Packed: heavyQ}
	}
	light := offload.Request{ID: 2, Queries: []offload.Query{{Packed: heavyQ}}}

	for attempt := 0; attempt < 5; attempt++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte{'P', 'H', 'D', offload.ProtocolVersion}); err != nil {
			t.Fatal(err)
		}
		enc := gob.NewEncoder(conn)
		dec := gob.NewDecoder(conn)
		if err := enc.Encode(offload.Hello{Dim: dim}); err != nil {
			t.Fatal(err)
		}
		var sh offload.ServerHello
		if err := dec.Decode(&sh); err != nil {
			t.Fatal(err)
		}
		if sh.Code != "" {
			t.Fatalf("handshake rejected: %s", sh.Code)
		}
		if err := enc.Encode(heavy); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(light); err != nil {
			t.Fatal(err)
		}
		var first, second offload.Reply
		if err := dec.Decode(&first); err != nil {
			t.Fatal(err)
		}
		if err := dec.Decode(&second); err != nil {
			t.Fatal(err)
		}
		conn.Close()
		byID := map[uint64]offload.Reply{first.ID: first, second.ID: second}
		if len(byID[1].Results) != 200 || len(byID[2].Results) != 1 {
			t.Fatalf("replies misrouted: id1=%d id2=%d results", len(byID[1].Results), len(byID[2].Results))
		}
		if first.ID == 2 {
			return // light frame overtook the heavy one
		}
	}
	t.Error("pipelined replies never arrived out of order across 5 attempts")
}

func TestClusterBalancesAcrossReplicas(t *testing.T) {
	const dim = 32
	reps := []*testReplica{startReplica(t, dim), startReplica(t, dim), startReplica(t, dim)}
	cl, err := NewCluster(ClusterConfig{
		Network: "tcp",
		Addrs:   []string{reps[0].addr, reps[1].addr, reps[2].addr},
		Hello:   offload.Hello{Dim: dim},
		Policy:  RoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const n = 60
	for i := 0; i < n; i++ {
		if _, _, err := cl.Classify(context.Background(), classQuery(dim, 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range reps {
		if r.Served() == 0 {
			t.Errorf("replica %d served nothing under round-robin", i)
		}
	}
	if got := reps[0].Served() + reps[1].Served() + reps[2].Served(); got != n {
		t.Errorf("served %d total, want %d", got, n)
	}
}

func TestClusterSurfacesTypedProtocolErrors(t *testing.T) {
	// Unknown model through a cluster: the rejection comes from a live
	// server and must surface typed, without marking replicas unhealthy.
	const dim = 16
	reps := []*testReplica{startReplica(t, dim), startReplica(t, dim)}
	cl, err := NewCluster(ClusterConfig{
		Network: "tcp",
		Addrs:   []string{reps[0].addr, reps[1].addr},
		Hello:   offload.Hello{Dim: dim, Model: "ghost"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, _, err = cl.Classify(context.Background(), classQuery(dim, 0))
	if !errors.Is(err, offload.ErrUnknownModel) {
		t.Errorf("ghost model through cluster: err = %v, want ErrUnknownModel", err)
	}
	for i, st := range cl.Replicas() {
		if !st.Healthy {
			t.Errorf("replica %d ejected by a protocol rejection", i)
		}
	}
}

func TestClusterListModels(t *testing.T) {
	const dim = 16
	rep := startReplica(t, dim)
	cl, err := NewCluster(ClusterConfig{
		Network: "tcp", Addrs: []string{rep.addr}, Hello: offload.Hello{Dim: dim},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	models, err := cl.ListModels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Name != offload.DefaultModelName || !models[0].Default {
		t.Errorf("listing = %+v", models)
	}
	if models[0].Dim != dim || models[0].Classes != 2 {
		t.Errorf("listing geometry = %+v", models[0])
	}
}

func TestClusterRequiresAddrs(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Network: "tcp"}); err == nil {
		t.Error("empty address list should be rejected")
	}
}

func TestClusterAllReplicasDownTypedError(t *testing.T) {
	const dim = 16
	reps := []*testReplica{startReplica(t, dim), startReplica(t, dim)}
	cl, err := NewCluster(ClusterConfig{
		Network: "tcp",
		Addrs:   []string{reps[0].addr, reps[1].addr},
		Hello:   offload.Hello{Dim: dim},
		Pool:    PoolConfig{DialTimeout: 500 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Classify(context.Background(), classQuery(dim, 0)); err != nil {
		t.Fatal(err)
	}
	reps[0].Kill()
	reps[1].Kill()
	_, _, err = cl.Classify(context.Background(), classQuery(dim, 0))
	if !errors.Is(err, ErrNoHealthyReplicas) {
		t.Errorf("dead cluster: err = %v, want ErrNoHealthyReplicas", err)
	}
	if !errors.Is(err, offload.ErrTransport) {
		t.Errorf("ErrNoHealthyReplicas should wrap ErrTransport, got %v", err)
	}
}
