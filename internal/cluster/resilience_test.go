package cluster

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privehd/internal/offload"
)

func TestJitterBackoffSpread(t *testing.T) {
	const d = 100 * time.Millisecond
	seen := make(map[time.Duration]bool)
	for i := 0; i < 500; i++ {
		got := jitterBackoff(d)
		if got < d/2 || got > d {
			t.Fatalf("jitterBackoff(%v) = %v, want within [%v, %v]", d, got, d/2, d)
		}
		seen[got] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitterBackoff produced a single value over 500 samples: no jitter at all")
	}
	if got := jitterBackoff(0); got != 0 {
		t.Fatalf("jitterBackoff(0) = %v, want 0", got)
	}
	if got := jitterBackoff(1); got != 1 {
		t.Fatalf("jitterBackoff(1) = %v, want 1", got)
	}
}

func TestBreakerFirstFailureTripsFree(t *testing.T) {
	// The defaults must reproduce the pre-breaker contract: the first
	// failure ejects immediately, and the very next successful probe may
	// re-admit — no cooldown friction until the replica proves it flaps.
	b := newBreaker("test-first")
	now := time.Now()
	if !b.recordFailure(now) {
		t.Fatal("first failure must trip the breaker (eject-on-first-failure preserved)")
	}
	if b.currentState() != breakerOpen {
		t.Fatalf("state after trip = %d, want open", b.currentState())
	}
	if !b.ready(now) {
		t.Fatal("first open has no cooldown: a probe must be allowed immediately")
	}
	if b.currentState() != breakerHalfOpen {
		t.Fatalf("state after ready = %d, want half-open (the probe is the trial)", b.currentState())
	}
	b.recordSuccess()
	if b.currentState() != breakerClosed {
		t.Fatalf("state after success = %d, want closed", b.currentState())
	}
}

func TestBreakerCooldownLadder(t *testing.T) {
	b := newBreaker("test-ladder")
	now := time.Now()
	b.recordFailure(now) // open #1: free
	if !b.ready(now) {
		t.Fatal("open #1 must probe immediately")
	}
	if !b.recordFailure(now) {
		t.Fatal("half-open failure must reopen")
	}
	// Each reopen doubles the probe-readmission cooldown up to the cap: a
	// replica that keeps dying right after re-admission is probed back in
	// less and less eagerly.
	want := breakerCooldownBase
	for i := 0; i < 6; i++ {
		if b.cooldown != want {
			t.Fatalf("reopen %d cooldown = %v, want %v", i+2, b.cooldown, want)
		}
		if b.ready(now) {
			t.Fatalf("reopen %d: probe admitted before the %v cooldown elapsed", i+2, want)
		}
		if !b.ready(now.Add(want)) {
			t.Fatalf("reopen %d: probe refused after the %v cooldown elapsed", i+2, want)
		}
		b.recordFailure(now)
		want *= 2
		if want > breakerCooldownMax {
			want = breakerCooldownMax
		}
	}
	if b.cooldown != breakerCooldownMax {
		t.Fatalf("ladder never capped: cooldown %v, want %v", b.cooldown, breakerCooldownMax)
	}
}

func TestBreakerStableStreakResetsLadder(t *testing.T) {
	b := newBreaker("test-streak")
	now := time.Now()
	b.recordFailure(now)
	b.ready(now)
	b.recordFailure(now) // reopen: cooldown 250ms, reopens 2
	if !b.ready(now.Add(time.Hour)) {
		t.Fatal("cooldown long past, probe must be admitted")
	}
	b.recordSuccess()
	if b.currentState() != breakerClosed {
		t.Fatalf("state after re-admission success = %d, want closed", b.currentState())
	}
	// Re-close resets the outcome window, so pre-outage failures cannot
	// instantly re-trip the error-rate condition.
	if b.wLen != 0 {
		t.Fatalf("re-close must reset the outcome window, wLen = %d", b.wLen)
	}
	for i := 1; i < breakerStableAfter; i++ {
		b.recordSuccess()
	}
	if b.reopens != 0 || b.cooldown != 0 {
		t.Fatalf("stable run must collapse the ladder: reopens %d cooldown %v", b.reopens, b.cooldown)
	}
	// After recovery, the next outage starts the ladder from the top: the
	// first open is free again.
	b.recordFailure(now)
	if !b.ready(now) {
		t.Fatal("post-recovery first open must probe immediately")
	}
}

func TestRetryBudgetBoundsAttempts(t *testing.T) {
	const dim = 16
	var addrs []string
	reps := []*testReplica{startReplica(t, dim), startReplica(t, dim), startReplica(t, dim)}
	for _, r := range reps {
		addrs = append(addrs, r.addr)
	}
	cl, err := NewCluster(ClusterConfig{
		Network: "tcp", Addrs: addrs,
		Hello:         offload.Hello{Dim: dim},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A budget of 1 retry allows exactly 2 attempts, even though 3
	// replicas are available: the shared budget, not the replica count,
	// bounds how much a sick call may burn.
	before := cmRetryBudgetExhausted.Value()
	var calls atomic.Int32
	err = cl.Do(withRetryBudget(context.Background(), 1), func(p *Pool) error {
		calls.Add(1)
		return fmt.Errorf("%w: synthetic failure", offload.ErrTransport)
	})
	if got := calls.Load(); got != 2 {
		t.Fatalf("op ran %d times under a 1-retry budget, want exactly 2", got)
	}
	if !errors.Is(err, ErrNoHealthyReplicas) {
		t.Fatalf("exhausted budget err = %v, want ErrNoHealthyReplicas", err)
	}
	if after := cmRetryBudgetExhausted.Value(); after != before+1 {
		t.Fatalf("retry_budget_exhausted moved %d→%d, want +1", before, after)
	}

	// Budget 0: the first attempt is free (it is not a retry), nothing more.
	calls.Store(0)
	_ = cl.Do(withRetryBudget(context.Background(), 0), func(p *Pool) error {
		calls.Add(1)
		return fmt.Errorf("%w: synthetic failure", offload.ErrTransport)
	})
	if got := calls.Load(); got != 1 {
		t.Fatalf("op ran %d times under a 0-retry budget, want exactly 1", got)
	}
}

// startHungServer speaks the offload handshake and then goes silent:
// every request frame is swallowed and never answered — the shape of a
// replica whose accept loop lives but whose serve loop is wedged. It is
// indistinguishable from healthy to a dial-and-handshake probe; only an
// in-band ping or a hedged race gets callers past it.
func startHungServer(t *testing.T, dim int) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	t.Cleanup(func() {
		lis.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	})
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			go func() {
				hdr := make([]byte, 4)
				if _, err := io.ReadFull(conn, hdr); err != nil {
					return
				}
				dec := gob.NewDecoder(conn)
				var hello offload.Hello
				if dec.Decode(&hello) != nil {
					return
				}
				sh := offload.ServerHello{
					Version: offload.ProtocolVersion, Dim: dim, Classes: 2,
					MaxBatch: offload.DefaultMaxBatch, MinSymbol: -8, MaxSymbol: 8,
				}
				if gob.NewEncoder(conn).Encode(sh) != nil {
					return
				}
				io.Copy(io.Discard, conn)
			}()
		}
	}()
	return lis.Addr().String()
}

func TestHedgeWinsOnStalledReplica(t *testing.T) {
	const dim = 16
	hung := startHungServer(t, dim)
	rep := startReplica(t, dim)

	// The hung replica is listed first: least-in-flight ties break to the
	// first address, so an idle cluster's primary attempt lands on the
	// stall and only the hedge can answer.
	cl, err := NewCluster(ClusterConfig{
		Network: "tcp", Addrs: []string{hung, rep.addr},
		Hello:         offload.Hello{Dim: dim},
		Hedge:         &HedgePolicy{Delay: 15 * time.Millisecond},
		Pool:          PoolConfig{IOTimeout: 2 * time.Second},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	wonBefore := cmHedges.With("won").Value()
	q := classQuery(dim, 1)
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		label, _, err := cl.Classify(ctx, q)
		cancel()
		if err != nil {
			t.Fatalf("call %d: %v (the hedge should have rescued the stalled primary)", i, err)
		}
		if label != 1 {
			t.Fatalf("call %d: label %d, want 1", i, label)
		}
	}
	if won := cmHedges.With("won").Value(); won <= wonBefore {
		t.Fatalf("hedges_total{outcome=won} never moved (%d): every call beat the stall without hedging?", won)
	}
}

func TestPoolPingDropsDeadConn(t *testing.T) {
	const dim = 4
	hung := startHungServer(t, dim)
	p := NewPool(PoolConfig{
		Network: "tcp", Addr: hung,
		Hello:        offload.Hello{Dim: dim},
		PingInterval: 50 * time.Millisecond,
		IOTimeout:    100 * time.Millisecond,
	})
	defer p.Close()

	failedBefore := cmPoolPings.With(hung, "failed").Value()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Hello establishes a pooled connection; the hung server handshakes
	// fine, so the conn looks healthy until a ping proves its serve loop
	// is gone.
	if _, err := p.Hello(ctx); err != nil {
		t.Fatalf("Hello against the hung server's live handshake: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cmPoolPings.With(hung, "failed").Value() > failedBefore && p.Stats().Conns == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ping never dropped the dead conn: pings{failed} %d→%d, conns %d",
				failedBefore, cmPoolPings.With(hung, "failed").Value(), p.Stats().Conns)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPoolPingKeepsLiveConn(t *testing.T) {
	const dim = 16
	rep := startReplica(t, dim)
	p := NewPool(PoolConfig{
		Network: "tcp", Addr: rep.addr,
		Hello:        offload.Hello{Dim: dim},
		PingInterval: 40 * time.Millisecond,
	})
	defer p.Close()

	okBefore := cmPoolPings.With(rep.addr, "ok").Value()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := p.Hello(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for cmPoolPings.With(rep.addr, "ok").Value() <= okBefore {
		if time.Now().After(deadline) {
			t.Fatal("no successful idle ping was ever recorded")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := p.Stats().Conns; got != 1 {
		t.Fatalf("a passing ping must keep the conn pooled, Conns = %d", got)
	}
}

func TestGoAwayDrainRacesHedgedRequests(t *testing.T) {
	// One replica drains gracefully (v5 GoAway push) while hedged,
	// retried traffic hammers the fleet: every request must still succeed
	// with the right answer, and commit-once must hold — no call observes
	// a result assembled from two racing attempts.
	const dim = 16
	type member struct {
		addr string
		srv  *offload.Server
		done chan error
	}
	var members []*member
	for i := 0; i < 3; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := offload.NewServer(testModel(dim), offload.WithWorkers(2))
		done := make(chan error, 1)
		go func() { done <- srv.Serve(context.Background(), lis) }()
		members = append(members, &member{addr: lis.Addr().String(), srv: srv, done: done})
	}
	defer func() {
		for _, m := range members {
			m.srv.Close()
			<-m.done
		}
	}()

	var addrs []string
	for _, m := range members {
		addrs = append(addrs, m.addr)
	}
	cl, err := NewCluster(ClusterConfig{
		Network: "tcp", Addrs: addrs,
		Hello: offload.Hello{Dim: dim},
		// An aggressive fixed delay keeps hedges in flight throughout the
		// drain window, maximising the race surface.
		Hedge: &HedgePolicy{Delay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers = 6
	stop := make(chan struct{})
	errCh := make(chan error, workers)
	var served atomic.Int64
	for w := 0; w < workers; w++ {
		want := w % 2
		go func() {
			q := classQuery(dim, want)
			for {
				select {
				case <-stop:
					errCh <- nil
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				label, scores, err := cl.Classify(ctx, q)
				cancel()
				if err != nil {
					errCh <- fmt.Errorf("classify during drain: %w", err)
					return
				}
				if label != want || len(scores) != 2 {
					errCh <- fmt.Errorf("corrupted result during drain: label %d (want %d), %d scores", label, want, len(scores))
					return
				}
				served.Add(1)
			}
		}()
	}

	time.Sleep(50 * time.Millisecond) // let load reach steady state first
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := members[0].srv.Shutdown(sctx); err != nil {
		t.Errorf("graceful shutdown under load: %v", err)
	}
	scancel()
	time.Sleep(100 * time.Millisecond) // keep racing after the drain lands
	close(stop)
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil {
			t.Error(err)
		}
	}
	if served.Load() == 0 {
		t.Fatal("no requests completed during the drain window")
	}
}
