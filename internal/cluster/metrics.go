package cluster

import (
	"privehd/internal/metrics"
)

// Client-side fleet instrumentation on the process-global registry: pool
// connection lifecycle per address, and cluster health transitions per
// replica. Pool gauges are resynced under the pool mutex after every
// conns mutation; transition counters only move on actual state changes,
// so steady-state probing is metric-silent.
var (
	cmPoolConns = metrics.Default.NewGaugeVec(
		"privehd_pool_connections",
		"Live pooled connections, by server address.",
		"addr")
	cmPoolInflight = metrics.Default.NewGaugeVec(
		"privehd_pool_inflight",
		"Operations currently using a pooled connection, by server address.",
		"addr")
	cmPoolDials = metrics.Default.NewCounterVec(
		"privehd_pool_dials_total",
		"Successful connection establishments, by server address. Exceeding privehd_pool_connections means redials replaced broken or reaped connections.",
		"addr")
	cmPoolRetries = metrics.Default.NewCounterVec(
		"privehd_pool_retries_total",
		"Operations retried on a second connection after a transport failure, by server address.",
		"addr")
	cmPoolAcquireWait = metrics.Default.NewHistogramVec(
		"privehd_pool_acquire_wait_seconds",
		"Time an operation waited to be handed a pooled connection — dial time, backoff, or waiting for a saturated pool — by server address. The client-queue stage of a request's latency budget.",
		nil, "addr")
	cmReplicaHealthy = metrics.Default.NewGaugeVec(
		"privehd_cluster_replica_healthy",
		"1 while the replica is admitted for traffic, 0 while ejected.",
		"replica")
	cmTransitions = metrics.Default.NewCounterVec(
		"privehd_cluster_health_transitions_total",
		"Replica health transitions by replica address and event (ejected | readmitted).",
		"replica", "event")
	cmFailovers = metrics.Default.NewCounter(
		"privehd_cluster_failovers_total",
		"Operations that moved to another replica after ejecting the one that failed them.")
	cmScatterChunks = metrics.Default.NewCounter(
		"privehd_cluster_batch_scatter_chunks_total",
		"Batch chunks answered by the fleet-wide batch scatter (only batches large enough to split count).")
	cmHedges = metrics.Default.NewCounterVec(
		"privehd_cluster_hedges_total",
		"Hedged backup requests by outcome: won (the hedge answered first), lost (the primary answered first after the hedge also finished), canceled (the primary answered first and the hedge was abandoned mid-flight).",
		"outcome")
	cmBreakerOpens = metrics.Default.NewCounterVec(
		"privehd_cluster_breaker_opens_total",
		"Circuit-breaker open transitions, by replica address.",
		"replica")
	cmBreakerState = metrics.Default.NewGaugeVec(
		"privehd_cluster_breaker_state",
		"Circuit-breaker state by replica address: 0 closed, 1 open, 2 half-open.",
		"replica")
	cmPoolPings = metrics.Default.NewCounterVec(
		"privehd_pool_pings_total",
		"In-band liveness pings on idle pooled connections, by server address and result (ok | failed). A failed ping drops the dead connection before a caller is handed it.",
		"addr", "result")
	cmRetryBudgetExhausted = metrics.Default.NewCounter(
		"privehd_cluster_retry_budget_exhausted_total",
		"Operations that stopped retrying because their per-call retry budget ran out before every replica was tried.")
)

// syncGauges publishes the pool's connection and in-flight gauges. The
// caller must hold p.mu.
func (p *Pool) syncGauges() {
	inflight := 0
	for _, pc := range p.conns {
		inflight += pc.inflight
	}
	cmPoolConns.With(p.cfg.Addr).Set(int64(len(p.conns)))
	cmPoolInflight.With(p.cfg.Addr).Set(int64(inflight))
}
