package cluster

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"privehd/internal/offload"
)

// lockedBuffer lets the test read log output that the prober goroutine is
// still writing.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestHealthTransitionLogsAndMetrics kills a replica and brings it back,
// checking that each transition emits exactly one structured log event
// with the replica address, and moves the transition counters and health
// gauge — and that steady-state probing stays silent.
func TestHealthTransitionLogsAndMetrics(t *testing.T) {
	r1 := startReplica(t, 8)
	r2 := startReplica(t, 8)

	var buf lockedBuffer
	cl, err := NewCluster(ClusterConfig{
		Network:       "tcp",
		Addrs:         []string{r1.addr, r2.addr},
		Hello:         offload.Hello{Dim: 8},
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  time.Second,
		Logger:        slog.New(slog.NewTextHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ejectedBefore := cmTransitions.With(r1.addr, "ejected").Value()
	readmittedBefore := cmTransitions.With(r1.addr, "readmitted").Value()

	ctx := context.Background()
	if _, _, err := cl.Classify(ctx, classQuery(8, 0)); err != nil {
		t.Fatal(err)
	}

	r1.Kill()
	deadline := time.Now().Add(5 * time.Second)
	for cmTransitions.With(r1.addr, "ejected").Value() == ejectedBefore {
		if time.Now().After(deadline) {
			t.Fatal("replica was never ejected")
		}
		// Traffic or a probe discovers the death, whichever comes first.
		cl.Classify(ctx, classQuery(8, 0))
		time.Sleep(10 * time.Millisecond)
	}
	if got := cmReplicaHealthy.With(r1.addr).Value(); got != 0 {
		t.Errorf("healthy gauge after eject = %d, want 0", got)
	}

	if err := r1.Restart(); err != nil {
		t.Fatal(err)
	}
	for cmTransitions.With(r1.addr, "readmitted").Value() == readmittedBefore {
		if time.Now().After(deadline) {
			t.Fatal("replica was never re-admitted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := cmReplicaHealthy.With(r1.addr).Value(); got != 1 {
		t.Errorf("healthy gauge after readmit = %d, want 1", got)
	}

	// Let a few more probe rounds pass: re-confirming a stable state must
	// not mint more transitions.
	time.Sleep(200 * time.Millisecond)
	if got := cmTransitions.With(r1.addr, "readmitted").Value(); got != readmittedBefore+1 {
		t.Errorf("readmitted transitions = %d, want %d (steady-state probes must be silent)",
			got, readmittedBefore+1)
	}

	out := buf.String()
	if n := strings.Count(out, "replica ejected"); n != 1 {
		t.Errorf("%d 'replica ejected' events, want 1; log:\n%s", n, out)
	}
	if n := strings.Count(out, "replica re-admitted"); n != 1 {
		t.Errorf("%d 'replica re-admitted' events, want 1; log:\n%s", n, out)
	}
	if !strings.Contains(out, "replica="+r1.addr) {
		t.Errorf("events lack the replica address %s; log:\n%s", r1.addr, out)
	}
}
