// Package cluster scales the client side of the offloaded-inference split
// from one connection to a serving fleet — the "replica serving" layer of
// the MLaaS framing: Prive-HD's obfuscated queries are cheap enough to
// answer in the cloud at scale, so one model ends up behind many listeners
// and many edge callers end up sharing a few connections.
//
// Two layers compose:
//
//   - Pool multiplexes any number of concurrent callers over a small,
//     bounded set of pipelined v4 connections to one address. Connections
//     are dialed on demand (with exponential backoff after failures),
//     spill to a new connection when every live one is saturated, are
//     reaped after sitting idle, and are discarded the moment their
//     transport breaks. One operation that fails with
//     offload.ErrTransport is retried once on a different connection —
//     classification is idempotent, so the retry is safe.
//
//   - Cluster balances operations across a set of replica addresses, each
//     behind its own Pool: least-in-flight (default) or round-robin
//     selection, ejection of a replica on transport failure, periodic
//     lightweight health probes that re-admit it once it answers the
//     handshake again, and transparent failover — an operation that dies
//     with a replica is retried on the next one, so callers only see an
//     error when every distinct replica has failed (ErrNoHealthyReplicas)
//     or a live server answered with a typed protocol error.
//
// Typed protocol rejections (unknown model, geometry, oversized batch …)
// are never retried anywhere: they were produced by a healthy server and
// would be identical on any replica.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"privehd/internal/offload"
)

// Pool defaults, used when the corresponding PoolConfig field is zero.
const (
	// DefaultSize is the largest number of connections a Pool keeps to its
	// address.
	DefaultSize = 4
	// DefaultMaxInFlightPerConn is how many requests may be outstanding on
	// one connection before the pool prefers dialing another (pipelining
	// means a connection is never blocked, but spreading load shortens
	// per-reply latency under bursts).
	DefaultMaxInFlightPerConn = 32
	// DefaultIOTimeout bounds reply progress on pooled connections; a
	// negative PoolConfig.IOTimeout disables the bound.
	DefaultIOTimeout = 30 * time.Second
	// DefaultIdleTimeout is how long an unused connection may linger
	// before the reaper closes it; a negative PoolConfig.IdleTimeout
	// disables reaping.
	DefaultIdleTimeout = 90 * time.Second
	// DefaultDialTimeout bounds one connection attempt.
	DefaultDialTimeout = 5 * time.Second
	// DefaultMaxBackoff caps the exponential redial backoff.
	DefaultMaxBackoff = 2 * time.Second

	// backoffBase seeds the exponential redial backoff.
	backoffBase = 50 * time.Millisecond
)

// ErrPoolClosed reports an operation on a closed Pool (or Cluster). It
// wraps offload.ErrTransport so a Cluster treats a racing per-replica
// close like any other connection loss.
var ErrPoolClosed = fmt.Errorf("%w: pool closed", offload.ErrTransport)

// ErrNoHealthyReplicas reports that a Cluster operation failed on every
// distinct replica it could try. It wraps offload.ErrTransport: the
// failure is connection-shaped (retryable later), not a protocol verdict.
var ErrNoHealthyReplicas = fmt.Errorf("%w: no healthy replica available", offload.ErrTransport)

// PoolConfig configures a Pool. Zero fields take the defaults above;
// IOTimeout and IdleTimeout use negative values to mean "disabled".
type PoolConfig struct {
	// Network and Addr locate the server ("tcp", "host:port").
	Network string
	Addr    string
	// Hello is sent on every connection's handshake: the edge geometry
	// (Dim 0 = auto-configure) and the served model to bind to.
	Hello offload.Hello
	// Size bounds how many connections the pool keeps.
	Size int
	// MaxInFlightPerConn is the saturation point past which the pool
	// prefers opening another connection.
	MaxInFlightPerConn int
	// IOTimeout is handed to every connection as offload.WithIOTimeout.
	IOTimeout time.Duration
	// IdleTimeout is how long an unused connection survives.
	IdleTimeout time.Duration
	// DialTimeout bounds each connection attempt.
	DialTimeout time.Duration
	// MaxBackoff caps the exponential backoff between failed dials.
	MaxBackoff time.Duration
	// PingInterval is how long a connection may sit idle before the pool
	// pings it in-band (offload.OpPing) to prove the peer's serve loop is
	// still alive — a dead peer is then dropped before a caller is handed
	// its connection, without burning a dial. Zero takes
	// DefaultPingInterval; negative disables pinging.
	PingInterval time.Duration
}

// withDefaults resolves zero fields to the package defaults.
func (c PoolConfig) withDefaults() PoolConfig {
	if c.Size <= 0 {
		c.Size = DefaultSize
	}
	if c.MaxInFlightPerConn <= 0 {
		c.MaxInFlightPerConn = DefaultMaxInFlightPerConn
	}
	switch {
	case c.IOTimeout == 0:
		c.IOTimeout = DefaultIOTimeout
	case c.IOTimeout < 0:
		c.IOTimeout = 0
	}
	switch {
	case c.IdleTimeout == 0:
		c.IdleTimeout = DefaultIdleTimeout
	case c.IdleTimeout < 0:
		c.IdleTimeout = 0
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	switch {
	case c.PingInterval == 0:
		c.PingInterval = DefaultPingInterval
	case c.PingInterval < 0:
		c.PingInterval = 0
	}
	return c
}

// poolConn is one pooled connection. Its counters are guarded by the
// pool's mutex.
type poolConn struct {
	c        *offload.Client
	inflight int
	lastUse  time.Time
}

// Pool multiplexes concurrent callers over a bounded set of pipelined
// connections to one server. All methods are safe for concurrent use.
type Pool struct {
	cfg PoolConfig

	mu          sync.Mutex
	conns       []*poolConn
	dialing     int
	closed      bool
	backoff     time.Duration
	nextDial    time.Time
	lastDialErr error
	hello       offload.ServerHello
	haveHello   bool
	dials       int
	changed     chan struct{} // closed+replaced when a dial lands or fails

	stopReaper chan struct{}
	reaperDone chan struct{}
	stopPinger chan struct{}
	pingerDone chan struct{}
}

// NewPool returns a pool for the configured address. No connection is
// dialed until the first operation (use Hello to dial eagerly). Close it
// when done.
func NewPool(cfg PoolConfig) *Pool {
	p := &Pool{cfg: cfg.withDefaults(), changed: make(chan struct{})}
	if p.cfg.IdleTimeout > 0 {
		p.stopReaper = make(chan struct{})
		p.reaperDone = make(chan struct{})
		go p.reapLoop()
	}
	if p.cfg.PingInterval > 0 {
		p.stopPinger = make(chan struct{})
		p.pingerDone = make(chan struct{})
		go p.pingLoop()
	}
	return p
}

// signalChanged wakes every acquire waiting for a dial to land or fail.
// Callers must hold p.mu.
func (p *Pool) signalChanged() {
	close(p.changed)
	p.changed = make(chan struct{})
}

// Addr returns the pooled server address.
func (p *Pool) Addr() string { return p.cfg.Addr }

// acquire returns a usable connection with its in-flight count already
// incremented, dialing a new one when every live connection is saturated
// and the pool has room. The context bounds dialing and waiting. The time
// spent here — dialing, backing off, waiting for a slot — is the pool's
// contribution to client-queue latency, observed per address.
func (p *Pool) acquire(ctx context.Context) (*poolConn, error) {
	start := time.Now()
	pc, err := p.acquireConn(ctx)
	if err == nil {
		cmPoolAcquireWait.With(p.cfg.Addr).Observe(time.Since(start).Seconds())
	}
	return pc, err
}

// acquireConn is the acquisition loop behind acquire.
func (p *Pool) acquireConn(ctx context.Context) (*poolConn, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrPoolClosed
		}
		// Drop connections whose transport already broke, then pick the
		// least-loaded live one. Connections whose server pushed a GoAway
		// drain notice are set aside: they still carry their in-flight
		// replies, but new work goes to a fresh connection (or a fresh
		// dial) whenever one is possible — the point of the v5 drain
		// notice is that a coordinator stops feeding a replica that is
		// about to half-close.
		live := p.conns[:0]
		var dead []*poolConn
		for _, pc := range p.conns {
			if pc.c.Err() != nil {
				dead = append(dead, pc)
				continue
			}
			live = append(live, pc)
		}
		p.conns = live
		var best, draining *poolConn
		for _, pc := range p.conns {
			if pc.c.Draining() {
				if draining == nil || pc.inflight < draining.inflight {
					draining = pc
				}
				continue
			}
			if best == nil || pc.inflight < best.inflight {
				best = pc
			}
		}
		room := len(p.conns)+p.dialing < p.cfg.Size
		if best != nil && (best.inflight < p.cfg.MaxInFlightPerConn || !room) {
			best.inflight++
			best.lastUse = time.Now()
			p.syncGauges()
			p.mu.Unlock()
			closeAll(dead)
			return best, nil
		}
		if room {
			if wait := time.Until(p.nextDial); wait > 0 {
				// Still backing off from a failed dial: reuse a saturated
				// live connection rather than stampede the server, and
				// fail fast when there is nothing to fall back to.
				if best == nil {
					best = draining
				}
				if best != nil {
					best.inflight++
					best.lastUse = time.Now()
					p.syncGauges()
					p.mu.Unlock()
					closeAll(dead)
					return best, nil
				}
				err := fmt.Errorf("%w: %s %w %v after dial failure: %v",
					offload.ErrTransport, p.cfg.Addr, errDialBackoff,
					wait.Round(time.Millisecond), p.lastDialErr)
				p.mu.Unlock()
				closeAll(dead)
				return nil, err
			}
			p.dialing++
			p.mu.Unlock()
			closeAll(dead)
			pc, err := p.dial(ctx)
			if err != nil {
				return nil, err
			}
			return pc, nil
		}
		if draining != nil {
			// Every slot is a draining connection and there is no room to
			// dial: route here as a last resort (the server may still
			// answer, and a refusal surfaces as a retryable transport
			// error) rather than wait for a change that will never come.
			draining.inflight++
			draining.lastUse = time.Now()
			p.syncGauges()
			p.mu.Unlock()
			closeAll(dead)
			return draining, nil
		}
		// No usable connection and no room: every slot is a dial in
		// flight from another caller. Wait for one to land (or fail,
		// which frees its slot).
		changed := p.changed
		p.mu.Unlock()
		closeAll(dead)
		if ctx == nil {
			ctx = context.Background()
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: waiting for a pooled connection: %w", offload.ErrTransport, ctx.Err())
		case <-changed:
		}
	}
}

func closeAll(conns []*poolConn) {
	for _, pc := range conns {
		pc.c.Close()
	}
}

// dial opens one new pooled connection (the caller holds a dialing slot)
// and returns it with inflight already 1.
func (p *Pool) dial(ctx context.Context) (*poolConn, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	dctx, cancel := context.WithTimeout(ctx, p.cfg.DialTimeout)
	var opts []offload.ClientOption
	if p.cfg.IOTimeout > 0 {
		opts = append(opts, offload.WithIOTimeout(p.cfg.IOTimeout))
	}
	c, err := offload.Dial(dctx, p.cfg.Network, p.cfg.Addr, p.cfg.Hello, opts...)
	cancel()
	p.mu.Lock()
	p.dialing--
	p.signalChanged()
	if err != nil {
		// A dial that died only because the CALLER gave up — deadline hit,
		// or a hedge loser canceled — says nothing about the server, so it
		// must not start a backoff window that poisons later requests.
		if ctx.Err() != nil {
			p.mu.Unlock()
			return nil, err
		}
		if errors.Is(err, offload.ErrTransport) {
			if p.backoff == 0 {
				p.backoff = backoffBase
			} else if p.backoff < p.cfg.MaxBackoff {
				p.backoff *= 2
				if p.backoff > p.cfg.MaxBackoff {
					p.backoff = p.cfg.MaxBackoff
				}
			}
			// Jitter the applied delay so a fleet of clients that all
			// lost this replica together does not redial it in lockstep.
			p.nextDial = time.Now().Add(jitterBackoff(p.backoff))
			p.lastDialErr = err
		}
		p.mu.Unlock()
		return nil, err
	}
	p.backoff = 0
	p.nextDial = time.Time{}
	p.lastDialErr = nil
	p.dials++
	if !p.haveHello {
		p.hello = c.ServerHello()
		p.haveHello = true
	}
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return nil, ErrPoolClosed
	}
	pc := &poolConn{c: c, inflight: 1, lastUse: time.Now()}
	p.conns = append(p.conns, pc)
	cmPoolDials.With(p.cfg.Addr).Inc()
	p.syncGauges()
	p.mu.Unlock()
	return pc, nil
}

// release returns a connection after an operation, discarding it if its
// transport broke.
func (p *Pool) release(pc *poolConn, opErr error) {
	broken := pc.c.Err() != nil || (opErr != nil && errors.Is(opErr, offload.ErrTransport))
	p.mu.Lock()
	pc.inflight--
	pc.lastUse = time.Now()
	if broken {
		for i, cur := range p.conns {
			if cur == pc {
				p.conns = append(p.conns[:i], p.conns[i+1:]...)
				break
			}
		}
	}
	p.syncGauges()
	p.mu.Unlock()
	if broken {
		pc.c.Close()
	}
}

// dialBackoffLeft reports how much of the pool's dial-backoff window
// remains — zero when the pool may dial immediately. Failover uses it to
// size the wait before re-sweeping a fleet whose pools all fast-failed.
func (p *Pool) dialBackoffLeft() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if left := time.Until(p.nextDial); left > 0 {
		return left
	}
	return 0
}

// do runs one operation on a pooled connection, retrying a transport
// failure once on a different (or freshly dialed) connection — safe
// because classification and listing are idempotent. Protocol errors are
// returned as-is.
func (p *Pool) do(ctx context.Context, op func(*offload.Client) error) error {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		pc, err := p.acquire(ctx)
		if err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		err = op(pc.c)
		p.release(pc, err)
		if err == nil || !errors.Is(err, offload.ErrTransport) {
			return err
		}
		lastErr = err
		if attempt == 0 {
			// The in-pool retry draws from the call's shared retry budget
			// when one is attached (cluster and hedged paths), so stacked
			// retry layers cannot multiply into attempt storms.
			if b := budgetFrom(ctx); b != nil && !b.take() {
				cmRetryBudgetExhausted.Inc()
				return lastErr
			}
			cmPoolRetries.With(p.cfg.Addr).Inc()
		}
	}
	return lastErr
}

// Do runs op on one pooled connection with the pool's usual
// transport-retry discipline. It exists for callers that need raw client
// access through the pool — the shard coordinator issues partial-score
// frames this way — and follows the same contract as every pool method:
// op must be idempotent, and typed protocol errors are returned as-is.
func (p *Pool) Do(ctx context.Context, op func(*offload.Client) error) error {
	return p.do(ctx, op)
}

// Hello dials (at most) one connection and returns the server's accepted
// handshake — geometry, model identity and public encoder setup — for
// edges that auto-configure. Subsequent calls are free.
func (p *Pool) Hello(ctx context.Context) (offload.ServerHello, error) {
	p.mu.Lock()
	if p.haveHello {
		h := p.hello
		p.mu.Unlock()
		return h, nil
	}
	p.mu.Unlock()
	err := p.do(ctx, func(*offload.Client) error { return nil })
	if err != nil {
		return offload.ServerHello{}, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hello, nil
}

// Classify classifies one prepared query through the pool. The context's
// deadline, if any, rides the frame as its budget (offload.BudgetNs) and
// bounds the wait.
func (p *Pool) Classify(ctx context.Context, prepared []float64) (int, []float64, error) {
	var label int
	var scores []float64
	err := p.do(ctx, func(c *offload.Client) error {
		var err error
		label, scores, err = c.ClassifyContext(ctx, prepared)
		return err
	})
	return label, scores, err
}

// ClassifyBatchScores classifies a batch of prepared queries through one
// pooled connection (chunks pipelined).
func (p *Pool) ClassifyBatchScores(ctx context.Context, prepared [][]float64) ([]offload.Result, error) {
	var results []offload.Result
	err := p.do(ctx, func(c *offload.Client) error {
		var err error
		results, err = c.ClassifyBatchScoresContext(ctx, prepared)
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ClassifyBatch is ClassifyBatchScores returning labels only.
func (p *Pool) ClassifyBatch(ctx context.Context, prepared [][]float64) ([]int, error) {
	results, err := p.ClassifyBatchScores(ctx, prepared)
	if err != nil {
		return nil, err
	}
	return offload.Labels(results), nil
}

// ListModels asks the pooled server for its registry listing.
func (p *Pool) ListModels(ctx context.Context) ([]offload.ModelListing, error) {
	var models []offload.ModelListing
	err := p.do(ctx, func(c *offload.Client) error {
		var err error
		models, err = c.ListModels()
		return err
	})
	if err != nil {
		return nil, err
	}
	return models, nil
}

// PoolStats is a snapshot of a pool's connection state.
type PoolStats struct {
	// Conns is the number of live pooled connections.
	Conns int
	// InFlight is the number of operations currently using a connection.
	InFlight int
	// Dials counts successful connection establishments over the pool's
	// lifetime — more than Conns means redials replaced broken or reaped
	// connections.
	Dials int
}

// Stats returns a snapshot of the pool's state.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{Conns: len(p.conns), Dials: p.dials}
	for _, pc := range p.conns {
		st.InFlight += pc.inflight
	}
	return st
}

// InFlight returns how many operations are currently outstanding — the
// cluster's least-in-flight balancing signal.
func (p *Pool) InFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, pc := range p.conns {
		n += pc.inflight
	}
	return n
}

// resetBackoff clears the redial backoff — called when a health probe
// proves the server reachable again, so traffic redials immediately.
func (p *Pool) resetBackoff() {
	p.mu.Lock()
	p.backoff = 0
	p.nextDial = time.Time{}
	p.lastDialErr = nil
	p.mu.Unlock()
}

// reapLoop closes connections that sit idle past IdleTimeout.
func (p *Pool) reapLoop() {
	defer close(p.reaperDone)
	interval := p.cfg.IdleTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopReaper:
			return
		case <-ticker.C:
			p.reap(time.Now())
		}
	}
}

// reap closes every connection idle since before now−IdleTimeout.
func (p *Pool) reap(now time.Time) {
	p.mu.Lock()
	live := p.conns[:0]
	var idle []*poolConn
	for _, pc := range p.conns {
		if pc.inflight == 0 && now.Sub(pc.lastUse) > p.cfg.IdleTimeout {
			idle = append(idle, pc)
			continue
		}
		live = append(live, pc)
	}
	p.conns = live
	p.syncGauges()
	p.mu.Unlock()
	closeAll(idle)
}

// Close closes every pooled connection and stops the reaper. In-flight
// operations fail with transport errors.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.syncGauges()
	p.signalChanged()
	p.mu.Unlock()
	if p.stopReaper != nil {
		close(p.stopReaper)
		<-p.reaperDone
	}
	if p.stopPinger != nil {
		close(p.stopPinger)
		<-p.pingerDone
	}
	closeAll(conns)
	return nil
}

// Policy selects how a Cluster spreads operations over healthy replicas.
type Policy int

const (
	// LeastInFlight picks the healthy replica with the fewest outstanding
	// operations — adaptive to replicas of unequal speed.
	LeastInFlight Policy = iota
	// RoundRobin cycles through healthy replicas in order.
	RoundRobin
)

// ClusterConfig configures a Cluster.
type ClusterConfig struct {
	// Network and Addrs locate the replicas ("tcp", one "host:port" each).
	Network string
	Addrs   []string
	// Hello is the per-connection handshake (edge geometry + model name),
	// shared by every replica pool and by health probes.
	Hello offload.Hello
	// Pool is the per-replica pool template; Network/Addr/Hello are
	// overridden per replica.
	Pool PoolConfig
	// Policy selects the balancing strategy (default LeastInFlight).
	Policy Policy
	// ProbeInterval is how often unreachable replicas are re-probed (and
	// healthy ones lightly verified). Default 2s; negative disables
	// probing (ejected replicas then only recover via the all-unhealthy
	// fallback path).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe's dial+handshake (default 2s).
	ProbeTimeout time.Duration
	// Hedge opts the cluster into hedged requests on the hedgeable paths
	// (Classify, DoHedged): a backup attempt on a second replica after
	// the policy's delay, first reply wins. Nil disables hedging.
	Hedge *HedgePolicy
	// Logger receives structured health-transition events (replica
	// ejected / re-admitted, with address and reason). Nil discards them.
	Logger *slog.Logger
}

// replica is one cluster member: an address, its pool, its health, and
// its circuit breaker (which gates how eagerly probes may re-admit it).
type replica struct {
	addr    string
	pool    *Pool
	br      *breaker
	mu      sync.Mutex
	healthy bool
}

func (r *replica) isHealthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy
}

// Cluster load-balances idempotent operations over replica pools with
// health tracking and transparent failover. All methods are safe for
// concurrent use.
type Cluster struct {
	cfg      ClusterConfig
	log      *slog.Logger
	replicas []*replica

	rrMu sync.Mutex
	rr   uint64

	// Adaptive hedge-delay state: a ring of recent per-attempt latencies
	// and the cached ~p90 the hedge timer reads (see resilience.go).
	latMu        sync.Mutex
	lats         [hedgeLatWindow]int64
	latIdx       int
	hedgeDelayNs atomic.Int64

	closeOnce sync.Once
	stopProbe chan struct{}
	probeDone chan struct{}
}

// NewCluster returns a cluster over the configured replica addresses. No
// connection is dialed until the first operation (use Hello to dial
// eagerly). Close it when done.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("cluster: no replica addresses")
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	cl := &Cluster{cfg: cfg, log: cfg.Logger}
	if cl.log == nil {
		cl.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	for _, addr := range cfg.Addrs {
		pcfg := cfg.Pool
		pcfg.Network = cfg.Network
		pcfg.Addr = addr
		pcfg.Hello = cfg.Hello
		cl.replicas = append(cl.replicas, &replica{
			addr:    addr,
			pool:    NewPool(pcfg),
			br:      newBreaker(addr),
			healthy: true,
		})
		cmReplicaHealthy.With(addr).Set(1)
	}
	if cfg.ProbeInterval > 0 {
		cl.stopProbe = make(chan struct{})
		cl.probeDone = make(chan struct{})
		go cl.probeLoop()
	}
	return cl, nil
}

// pick selects the next replica to try, preferring healthy ones and
// falling back to ejected ones when nothing healthy remains (a dead
// cluster heals faster through traffic than through probes alone).
func (cl *Cluster) pick(tried map[*replica]bool) *replica {
	var candidates []*replica
	for _, r := range cl.replicas {
		if !tried[r] && r.isHealthy() {
			candidates = append(candidates, r)
		}
	}
	if len(candidates) == 0 {
		for _, r := range cl.replicas {
			if !tried[r] {
				candidates = append(candidates, r)
			}
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	switch cl.cfg.Policy {
	case RoundRobin:
		cl.rrMu.Lock()
		idx := cl.rr
		cl.rr++
		cl.rrMu.Unlock()
		return candidates[idx%uint64(len(candidates))]
	default: // LeastInFlight
		best := candidates[0]
		bestLoad := best.pool.InFlight()
		for _, r := range candidates[1:] {
			if load := r.pool.InFlight(); load < bestLoad {
				best, bestLoad = r, load
			}
		}
		return best
	}
}

// do runs one idempotent operation with failover: a replica whose
// transport fails is ejected and the operation moves to the next distinct
// replica. Typed protocol errors return immediately — a live server
// answered, and every replica would answer the same.
func (cl *Cluster) do(ctx context.Context, op func(*Pool) error) error {
	return cl.doPrefer(ctx, nil, op)
}

// doPrefer is do with an optional first choice: the preferred replica is
// tried before the policy picks, then the usual failover takes over. The
// batch scatter uses it to pin each chunk to a distinct replica — policy
// picks race when chunks launch together (everyone samples zero in-flight
// and piles onto the same replica) — while keeping chunk-level failover.
func (cl *Cluster) doPrefer(ctx context.Context, prefer *replica, op func(*Pool) error) error {
	return cl.doAttempt(cl.ensureBudget(ctx), prefer, nil,
		func(_ context.Context, p *Pool) error { return op(p) })
}

// doAttempt is the failover engine behind do/doPrefer/DoHedged: try
// replicas (prefer first, then policy picks) until one answers, a typed
// protocol error arrives, the shared retry budget runs dry, or every
// distinct replica has failed. onPick, when non-nil, is told each replica
// just before its attempt — DoHedged uses it to aim the backup attempt at
// a different replica than the primary is on. Failovers past the first
// pause with jitter (failoverPause) so a call sweeping a sick fleet does
// not hammer it in a tight loop. op receives the attempt's context —
// hedged attempts run under a cancellable child, so an op must use the
// context it is handed, not one it captured.
func (cl *Cluster) doAttempt(ctx context.Context, prefer *replica, onPick func(*replica), op func(context.Context, *Pool) error) error {
	budget := budgetFrom(ctx)
	var lastErr error
	attempt := 0
	for {
		tried := make(map[*replica]bool, len(cl.replicas))
		sweepAttempted := false
		realFailure := false
		for len(tried) < len(cl.replicas) {
			r := prefer
			if r == nil || tried[r] {
				r = cl.pick(tried)
			}
			if r == nil {
				break
			}
			tried[r] = true
			sweepAttempted = true
			attempt++
			if onPick != nil {
				onPick(r)
			}
			attemptStart := time.Now()
			err := op(ctx, r.pool)
			if err == nil {
				r.br.recordSuccess()
				cl.setReplicaHealth(r, true, "operation succeeded", nil)
				if cl.cfg.Hedge != nil {
					cl.observeLatency(time.Since(attemptStart))
				}
				return nil
			}
			if !errors.Is(err, offload.ErrTransport) {
				return err
			}
			if ctx != nil && ctx.Err() != nil {
				// The caller gave up, the replica didn't fail: surface the
				// cancellation without ejecting anyone or burning retries on
				// a context that is already dead.
				return fmt.Errorf("%w: %w", offload.ErrTransport, ctx.Err())
			}
			if errors.Is(err, errDialBackoff) {
				// The pool rejected without touching the network: the
				// replica already paid for the dial failure that opened its
				// backoff window. Re-punishing it here — and charging the
				// call's retry budget for an attempt that never left the
				// process — would drain calls to exhaustion exactly when
				// replicas are sickest. The tried map still bounds the sweep.
				lastErr = err
				continue
			}
			realFailure = true
			r.br.recordFailure(time.Now())
			cl.setReplicaHealth(r, false, "transport failure", err)
			cmFailovers.Inc()
			lastErr = err
			if budget != nil && !budget.take() {
				cmRetryBudgetExhausted.Inc()
				return fmt.Errorf("%w: retry budget exhausted after %d attempts, last: %v",
					ErrNoHealthyReplicas, attempt, lastErr)
			}
			if pause := failoverPause(attempt + 1); pause > 0 {
				t := time.NewTimer(pause)
				if ctx == nil {
					<-t.C
				} else {
					select {
					case <-t.C:
					case <-ctx.Done():
						t.Stop()
						return fmt.Errorf("%w: %w", offload.ErrTransport, ctx.Err())
					}
				}
			}
		}
		// The sweep covered every replica without a success. A caller that
		// is still willing to wait deserves another sweep rather than an
		// error with most of its deadline unspent: real failures already
		// drew down the shared retry budget (which bounds the total), and
		// an all-backoff sweep cost nothing — waiting out the nearest
		// window is strictly better than failing a call that has time left.
		if !sweepAttempted || ctx == nil || ctx.Err() != nil {
			break
		}
		if realFailure {
			if budget == nil {
				break
			}
			continue
		}
		// Every rejection this sweep was a free backoff fast-fail. Only a
		// deadline bounds how long we may keep waiting; without one, spin
		// forever on a dead fleet — so fail as before.
		if _, ok := ctx.Deadline(); !ok {
			break
		}
		wait := cl.minDialBackoffLeft() + time.Millisecond
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("%w: %w", offload.ErrTransport, ctx.Err())
		}
	}
	return fmt.Errorf("%w: all %d replicas failed, last: %v", ErrNoHealthyReplicas, len(cl.replicas), lastErr)
}

// minDialBackoffLeft reports the shortest remaining dial-backoff window
// across the fleet — how long an all-backing-off sweep must wait before
// some pool will attempt a real dial again. Zero when no window is open.
func (cl *Cluster) minDialBackoffLeft() time.Duration {
	var min time.Duration
	for _, r := range cl.replicas {
		if left := r.pool.dialBackoffLeft(); left > 0 && (min == 0 || left < min) {
			min = left
		}
	}
	return min
}

// Do runs op on some healthy replica with the cluster's usual failover
// discipline: transport failures eject the replica and move on, typed
// protocol errors return immediately. It exists for callers composing
// operations the facade doesn't cover — the shard coordinator retries a
// missing shard's partial scores through exactly this path.
func (cl *Cluster) Do(ctx context.Context, op func(*Pool) error) error {
	return cl.do(ctx, op)
}

// HealthyCount returns how many replicas are currently believed healthy.
func (cl *Cluster) HealthyCount() int {
	n := 0
	for _, r := range cl.replicas {
		if r.isHealthy() {
			n++
		}
	}
	return n
}

// Hello returns the accepted handshake of the first replica that answers.
func (cl *Cluster) Hello(ctx context.Context) (offload.ServerHello, error) {
	var hello offload.ServerHello
	err := cl.do(ctx, func(p *Pool) error {
		var err error
		hello, err = p.Hello(ctx)
		return err
	})
	return hello, err
}

// Classify classifies one prepared query on some healthy replica. With a
// HedgePolicy configured, a straggling call is hedged to a second replica
// and the first reply wins.
func (cl *Cluster) Classify(ctx context.Context, prepared []float64) (int, []float64, error) {
	var label int
	var scores []float64
	err := cl.DoHedged(ctx, nil, func() (func(context.Context, *Pool) error, func()) {
		var l int
		var s []float64
		op := func(actx context.Context, p *Pool) error {
			var err error
			l, s, err = p.Classify(actx, prepared)
			return err
		}
		commit := func() { label, scores = l, s }
		return op, commit
	})
	return label, scores, err
}

// ClassifyBatchScores classifies a batch by scattering contiguous chunks
// across the healthy replicas in parallel — a fleet answers a big batch at
// fleet bandwidth instead of pinning it to one pooled connection. Each
// chunk fails over independently (classification is idempotent and
// deterministic per model publication), so a replica dying mid-batch costs
// one chunk retry, not a whole-batch restart. Results come back in input
// order; the first error wins and fails the batch.
func (cl *Cluster) ClassifyBatchScores(ctx context.Context, prepared [][]float64) ([]offload.Result, error) {
	n := len(prepared)
	if n == 0 {
		return nil, nil
	}
	var healthy []*replica
	for _, r := range cl.replicas {
		if r.isHealthy() {
			healthy = append(healthy, r)
		}
	}
	ways := len(healthy)
	if ways < 1 {
		ways = 1 // all ejected: one chunk, let do() heal through traffic
	}
	chunk := (n + ways - 1) / ways
	if chunk >= n {
		// Degenerate scatter (one replica, or batch smaller than the
		// fleet ÷ 1): keep the simple single-flight path.
		var results []offload.Result
		err := cl.do(ctx, func(p *Pool) error {
			var err error
			results, err = p.ClassifyBatchScores(ctx, prepared)
			return err
		})
		if err != nil {
			return nil, err
		}
		return results, nil
	}
	results := make([]offload.Result, n)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for idx, start := 0, 0; start < n; idx, start = idx+1, start+chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		// Deal chunks across the healthy fleet deterministically: chunk i
		// prefers replica i mod ways, so the scatter genuinely spreads even
		// though every chunk launches before any registers in-flight load.
		prefer := healthy[idx%len(healthy)]
		wg.Add(1)
		go func(start, end int, prefer *replica) {
			defer wg.Done()
			err := cl.doPrefer(ctx, prefer, func(p *Pool) error {
				rs, err := p.ClassifyBatchScores(ctx, prepared[start:end])
				if err != nil {
					return err
				}
				if len(rs) != end-start {
					return fmt.Errorf("%w: replica answered %d of %d chunk queries",
						offload.ErrTransport, len(rs), end-start)
				}
				copy(results[start:end], rs)
				return nil
			})
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			} else {
				cmScatterChunks.Inc()
			}
		}(start, end, prefer)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// ClassifyBatch is ClassifyBatchScores returning labels only.
func (cl *Cluster) ClassifyBatch(ctx context.Context, prepared [][]float64) ([]int, error) {
	results, err := cl.ClassifyBatchScores(ctx, prepared)
	if err != nil {
		return nil, err
	}
	return offload.Labels(results), nil
}

// ListModels returns the registry listing of the first healthy replica
// that answers.
func (cl *Cluster) ListModels(ctx context.Context) ([]offload.ModelListing, error) {
	var models []offload.ModelListing
	err := cl.do(ctx, func(p *Pool) error {
		var err error
		models, err = p.ListModels(ctx)
		return err
	})
	if err != nil {
		return nil, err
	}
	return models, nil
}

// probeLoop periodically probes every replica: ejected replicas are
// re-admitted when they answer the handshake again, and replicas that
// stopped answering are ejected before traffic finds out.
func (cl *Cluster) probeLoop() {
	defer close(cl.probeDone)
	ticker := time.NewTicker(cl.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-cl.stopProbe:
			return
		case <-ticker.C:
			var wg sync.WaitGroup
			for _, r := range cl.replicas {
				wg.Add(1)
				go func(r *replica) {
					defer wg.Done()
					cl.probe(r)
				}(r)
			}
			wg.Wait()
		}
	}
}

// probe checks one replica with a lightweight dial+handshake. A typed
// handshake rejection still proves the process is alive and answering, so
// only transport failures mark the replica down.
func (cl *Cluster) probe(r *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), cl.cfg.ProbeTimeout)
	defer cancel()
	hello := offload.Hello{Model: cl.cfg.Hello.Model}
	c, err := offload.Dial(ctx, cl.cfg.Network, r.addr, hello)
	if err == nil {
		c.Close()
	}
	if err != nil && errors.Is(err, offload.ErrTransport) {
		r.br.recordFailure(time.Now())
		cl.setReplicaHealth(r, false, "health probe failed", err)
		return
	}
	if !r.isHealthy() {
		// The breaker gates probe-driven re-admission: a replica that
		// keeps dying right after coming back earns a doubling cooldown
		// before the next probe may re-admit it. Traffic successes are
		// never gated — real work answering (the all-ejected fallback
		// path) closes the breaker immediately.
		if !r.br.ready(time.Now()) {
			return
		}
		cl.setReplicaHealth(r, true, "health probe answered", nil)
		r.br.recordSuccess()
		r.pool.resetBackoff()
	}
}

// setReplicaHealth applies a health transition, emitting the structured
// log event and moving the transition metrics only when the state actually
// changes — steady-state traffic and probes re-confirm health constantly
// and must stay silent.
func (cl *Cluster) setReplicaHealth(r *replica, healthy bool, reason string, cause error) {
	r.mu.Lock()
	changed := r.healthy != healthy
	r.healthy = healthy
	r.mu.Unlock()
	if !changed {
		return
	}
	if healthy {
		cmReplicaHealthy.With(r.addr).Set(1)
		cmTransitions.With(r.addr, "readmitted").Inc()
		cl.log.Info("replica re-admitted", "replica", r.addr, "reason", reason)
	} else {
		cmReplicaHealthy.With(r.addr).Set(0)
		cmTransitions.With(r.addr, "ejected").Inc()
		cl.log.Warn("replica ejected", "replica", r.addr, "reason", reason, "error", cause)
	}
}

// ReplicaStatus is one replica's health snapshot.
type ReplicaStatus struct {
	// Addr is the replica address.
	Addr string
	// Healthy reports whether the replica is currently admitted for
	// traffic.
	Healthy bool
	// Conns and InFlight describe the replica's pool.
	Conns    int
	InFlight int
}

// Replicas returns a snapshot of every replica's health and load.
func (cl *Cluster) Replicas() []ReplicaStatus {
	out := make([]ReplicaStatus, len(cl.replicas))
	for i, r := range cl.replicas {
		st := r.pool.Stats()
		out[i] = ReplicaStatus{
			Addr:     r.addr,
			Healthy:  r.isHealthy(),
			Conns:    st.Conns,
			InFlight: st.InFlight,
		}
	}
	return out
}

// Close stops the prober and closes every replica pool. It is idempotent
// and safe to call concurrently.
func (cl *Cluster) Close() error {
	cl.closeOnce.Do(func() {
		if cl.stopProbe != nil {
			close(cl.stopProbe)
			<-cl.probeDone
		}
		for _, r := range cl.replicas {
			r.pool.Close()
		}
	})
	return nil
}
