// Package prune implements the model-pruning and dimension-masking
// techniques of Prive-HD §III-B1 and §III-C.
//
// Model pruning nullifies the s% of class-hypervector dimensions closest to
// zero — they contribute least to the Eq. 4 dot product because information
// is spread uniformly over the encoded query (paper Fig. 3) — and keeps them
// perpetually zero through retraining. Pruned dimensions never need to be
// encoded at inference, which lowers both cost and, crucially, the ℓ2
// sensitivity of the released model (∆f ∝ sqrt(D_hv)).
//
// Dimension masking is the inference-side variant: zero a chosen set of
// query dimensions before offloading, degrading reconstruction much faster
// than accuracy (paper Fig. 6, Fig. 9b).
package prune

import (
	"fmt"

	"privehd/internal/hdc"
	"privehd/internal/vecmath"
)

// Mask is the set of hypervector dimensions that survive pruning: Keep[j]
// reports whether dimension j is retained.
type Mask struct {
	Keep []bool
	kept int
}

// NewMask returns a mask over dim dimensions with every dimension kept.
func NewMask(dim int) *Mask {
	keep := make([]bool, dim)
	for i := range keep {
		keep[i] = true
	}
	return &Mask{Keep: keep, kept: dim}
}

// Kept returns the number of retained dimensions.
func (m *Mask) Kept() int { return m.kept }

// Dim returns the total number of dimensions the mask covers.
func (m *Mask) Dim() int { return len(m.Keep) }

// Drop marks dimension j as pruned. Dropping twice is a no-op.
func (m *Mask) Drop(j int) {
	if m.Keep[j] {
		m.Keep[j] = false
		m.kept--
	}
}

// Apply zeroes the pruned dimensions of v in place.
func (m *Mask) Apply(v []float64) {
	if len(v) != len(m.Keep) {
		panic(fmt.Sprintf("prune: Apply on vector of dim %d, mask dim %d", len(v), len(m.Keep)))
	}
	for j, keep := range m.Keep {
		if !keep {
			v[j] = 0
		}
	}
}

// AppliedCopy returns a masked copy of v, leaving v untouched.
func (m *Mask) AppliedCopy(v []float64) []float64 {
	out := vecmath.Clone(v)
	m.Apply(out)
	return out
}

// GlobalMagnitudeMask builds the paper's pruning mask from a trained model:
// rank every dimension by its total magnitude across class hypervectors
// (Σ_l |C_l[j]|) and drop the lowest `drop` dimensions — the "close-to-zero"
// dimensions of §III-B1. It panics if drop is outside [0, dim].
func GlobalMagnitudeMask(m *hdc.Model, drop int) *Mask {
	dim := m.Dim()
	if drop < 0 || drop > dim {
		panic(fmt.Sprintf("prune: drop %d out of range [0,%d]", drop, dim))
	}
	score := make([]float64, dim)
	for l := 0; l < m.NumClasses(); l++ {
		c := m.Class(l)
		for j, v := range c {
			if v < 0 {
				score[j] -= v
			} else {
				score[j] += v
			}
		}
	}
	mask := NewMask(dim)
	order := vecmath.AbsRank(score) // score ≥ 0, so AbsRank == ascending rank
	for _, j := range order[:drop] {
		mask.Drop(j)
	}
	return mask
}

// DiscriminativeMask ranks dimensions by their cross-class deviation
// Σ_l |C_l[j] − mean_l C_l[j]| and drops the lowest `drop` — dimensions on
// which the classes agree, however large their shared value.
//
// Rationale (see DESIGN.md §5): the paper prunes by raw |class value|,
// which works when class-specific energy dominates. Synthetic workloads
// (and strongly-correlated real features) carry a large common-mode
// component that inflates |C_l[j]| on dimensions with zero discriminative
// content; ranking by deviation from the class mean selects the dimensions
// that actually move the Eq. 4 argmax. The experiments package benchmarks
// both criteria against each other.
func DiscriminativeMask(m *hdc.Model, drop int) *Mask {
	dim := m.Dim()
	if drop < 0 || drop > dim {
		panic(fmt.Sprintf("prune: drop %d out of range [0,%d]", drop, dim))
	}
	classes := m.NumClasses()
	mean := make([]float64, dim)
	for l := 0; l < classes; l++ {
		vecmath.Add(mean, m.Class(l))
	}
	vecmath.Scale(mean, 1/float64(classes))
	score := make([]float64, dim)
	for l := 0; l < classes; l++ {
		c := m.Class(l)
		for j, v := range c {
			d := v - mean[j]
			if d < 0 {
				d = -d
			}
			score[j] += d
		}
	}
	mask := NewMask(dim)
	order := vecmath.AbsRank(score)
	for _, j := range order[:drop] {
		mask.Drop(j)
	}
	return mask
}

// PruneModel zeroes the masked dimensions of every class hypervector in
// place and invalidates the model's cached norms.
func PruneModel(m *hdc.Model, mask *Mask) {
	for l := 0; l < m.NumClasses(); l++ {
		mask.Apply(m.Class(l))
	}
	m.InvalidateAll()
}

// PerClassMagnitudeMasks is the per-class reading of the paper's pruning
// text ("prune out the close-to-zero class elements"): each class
// hypervector drops its own smallest-|value| dimensions, giving one mask
// per class. Unlike the global masks, a dimension pruned in one class may
// survive in another, so queries must stay complete — this variant saves
// model storage and multiply-accumulates but NOT encoding work or
// sensitivity, which is why Prive-HD's DP path needs the global form. It is
// provided for completeness and for the pruning-criterion ablation.
func PerClassMagnitudeMasks(m *hdc.Model, drop int) []*Mask {
	dim := m.Dim()
	if drop < 0 || drop > dim {
		panic(fmt.Sprintf("prune: drop %d out of range [0,%d]", drop, dim))
	}
	masks := make([]*Mask, m.NumClasses())
	for l := range masks {
		mask := NewMask(dim)
		order := vecmath.AbsRank(m.Class(l))
		for _, j := range order[:drop] {
			mask.Drop(j)
		}
		masks[l] = mask
	}
	return masks
}

// PrunePerClass applies one mask per class hypervector.
func PrunePerClass(m *hdc.Model, masks []*Mask) {
	if len(masks) != m.NumClasses() {
		panic(fmt.Sprintf("prune: %d masks for %d classes", len(masks), m.NumClasses()))
	}
	for l, mask := range masks {
		mask.Apply(m.Class(l))
	}
	m.InvalidateAll()
}

// MaskedRetrain runs the paper's prune-then-retrain procedure (§III-B1,
// Fig. 4): after each Eq. 5 update the pruned dimensions are re-zeroed so
// they "perpetually remain zero", letting the surviving dimensions absorb
// the pruned information. It returns per-epoch evaluation accuracies and
// stops early once an epoch makes no updates.
func MaskedRetrain(m *hdc.Model, mask *Mask, encoded [][]float64, labels []int, evalEncoded [][]float64, evalLabels []int, epochs int) []float64 {
	// Queries must also be masked: pruned dimensions are never encoded.
	maskedTrain := maskAll(mask, encoded)
	maskedEval := maskAll(mask, evalEncoded)
	accs := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		updates := hdc.RetrainEpoch(m, maskedTrain, labels)
		// Class vectors only ever accumulate masked queries, so pruned
		// dimensions stay zero without re-zeroing; assert cheaply in
		// development builds via PruneModel idempotence instead of paying
		// a scan per epoch.
		accs = append(accs, hdc.Evaluate(m, maskedEval, evalLabels))
		if updates == 0 {
			break
		}
	}
	return accs
}

// maskAll returns masked copies of every encoding.
func maskAll(mask *Mask, encoded [][]float64) [][]float64 {
	out := make([][]float64, len(encoded))
	for i, h := range encoded {
		out[i] = mask.AppliedCopy(h)
	}
	return out
}

// MaskBatch returns masked copies of every encoding — the inference-side
// obfuscation of §III-C applied to a batch of offloaded queries.
func MaskBatch(mask *Mask, encoded [][]float64) [][]float64 {
	return maskAll(mask, encoded)
}

// RandomMask drops `drop` dimensions chosen by the caller-supplied sampler
// (typically hrand.Source.SampleK). The inference-privacy experiments mask
// random dimensions because the edge device has no access to the model's
// magnitude ranking.
func RandomMask(dim, drop int, sample func(n, k int) []int) *Mask {
	if drop < 0 || drop > dim {
		panic(fmt.Sprintf("prune: drop %d out of range [0,%d]", drop, dim))
	}
	mask := NewMask(dim)
	for _, j := range sample(dim, drop) {
		mask.Drop(j)
	}
	return mask
}

// InformationRetention reproduces the Fig. 3 measurement: given a class
// hypervector and a query encoded from that class, it returns the fraction
// of the full normalized dot product retained as dimensions are restored in
// ascending-magnitude order. retained[k] is the fraction after restoring k
// dimensions (so retained[0] = 0 and retained[dim] = 1 when the full dot
// product is positive).
func InformationRetention(class, query []float64) []float64 {
	if len(class) != len(query) {
		panic("prune: InformationRetention length mismatch")
	}
	full := vecmath.Dot(class, query)
	order := vecmath.AbsRank(class)
	retained := make([]float64, len(class)+1)
	var acc float64
	for k, j := range order {
		acc += class[j] * query[j]
		if full != 0 {
			retained[k+1] = acc / full
		}
	}
	return retained
}
