package prune

import (
	"math"
	"testing"
	"testing/quick"

	"privehd/internal/hdc"
	"privehd/internal/hrand"
)

func TestMaskBasics(t *testing.T) {
	m := NewMask(5)
	if m.Kept() != 5 || m.Dim() != 5 {
		t.Fatalf("fresh mask: kept=%d dim=%d", m.Kept(), m.Dim())
	}
	m.Drop(2)
	m.Drop(2) // idempotent
	if m.Kept() != 4 {
		t.Errorf("Kept = %d, want 4", m.Kept())
	}
	v := []float64{1, 2, 3, 4, 5}
	m.Apply(v)
	if v[2] != 0 {
		t.Error("Apply did not zero dropped dim")
	}
	if v[0] != 1 || v[4] != 5 {
		t.Error("Apply zeroed kept dims")
	}
}

func TestAppliedCopy(t *testing.T) {
	m := NewMask(3)
	m.Drop(0)
	v := []float64{9, 8, 7}
	got := m.AppliedCopy(v)
	if got[0] != 0 || got[1] != 8 || got[2] != 7 {
		t.Errorf("AppliedCopy = %v", got)
	}
	if v[0] != 9 {
		t.Error("AppliedCopy mutated input")
	}
}

func TestApplyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMask(3).Apply([]float64{1})
}

func TestGlobalMagnitudeMaskDropsSmallest(t *testing.T) {
	m := hdc.NewModel(2, 4)
	m.Add(0, []float64{10, 0.1, -5, 0.2})
	m.Add(1, []float64{-8, 0.1, 6, -0.3})
	// Total magnitudes: [18, 0.2, 11, 0.5] → two smallest are dims 1, 3.
	mask := GlobalMagnitudeMask(m, 2)
	if mask.Keep[1] || mask.Keep[3] {
		t.Errorf("mask kept low-magnitude dims: %v", mask.Keep)
	}
	if !mask.Keep[0] || !mask.Keep[2] {
		t.Errorf("mask dropped high-magnitude dims: %v", mask.Keep)
	}
}

func TestGlobalMagnitudeMaskBounds(t *testing.T) {
	m := hdc.NewModel(1, 3)
	if got := GlobalMagnitudeMask(m, 0).Kept(); got != 3 {
		t.Errorf("drop 0 kept %d", got)
	}
	if got := GlobalMagnitudeMask(m, 3).Kept(); got != 0 {
		t.Errorf("drop all kept %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range drop")
		}
	}()
	GlobalMagnitudeMask(m, 4)
}

func TestDiscriminativeMaskIgnoresCommonMode(t *testing.T) {
	// Dim 0 has a huge shared value (no discrimination); dim 1 is small
	// but fully discriminative. Magnitude ranking keeps dim 0 first;
	// discriminative ranking must keep dim 1.
	m := hdc.NewModel(2, 3)
	m.Add(0, []float64{100, 2, 0.5})
	m.Add(1, []float64{100, -2, 0.4})
	mask := DiscriminativeMask(m, 2)
	if !mask.Keep[1] {
		t.Error("discriminative mask dropped the discriminative dim")
	}
	if mask.Keep[0] {
		t.Error("discriminative mask kept the common-mode dim over signal")
	}
	// Contrast: the paper-literal magnitude mask keeps dim 0.
	mag := GlobalMagnitudeMask(m, 2)
	if !mag.Keep[0] {
		t.Error("magnitude mask should keep the largest dim")
	}
}

func TestDiscriminativeMaskBounds(t *testing.T) {
	m := hdc.NewModel(2, 4)
	if got := DiscriminativeMask(m, 0).Kept(); got != 4 {
		t.Errorf("drop 0 kept %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DiscriminativeMask(m, 5)
}

func TestPruneModel(t *testing.T) {
	m := hdc.NewModel(2, 3)
	m.Add(0, []float64{1, 2, 3})
	m.Add(1, []float64{4, 5, 6})
	mask := NewMask(3)
	mask.Drop(1)
	PruneModel(m, mask)
	if m.Class(0)[1] != 0 || m.Class(1)[1] != 0 {
		t.Error("PruneModel did not zero dropped dim")
	}
	// Norm cache must be refreshed: a query on the pruned dim scores 0 for
	// both classes, so prediction falls to the tie-break.
	s := m.Scores([]float64{0, 1, 0})
	if s[0] != 0 || s[1] != 0 {
		t.Errorf("scores after prune = %v, want zeros", s)
	}
}

func TestPerClassMagnitudeMasks(t *testing.T) {
	m := hdc.NewModel(2, 4)
	m.Add(0, []float64{10, 0.1, 5, 0.2})
	m.Add(1, []float64{0.1, 10, 0.2, 5})
	masks := PerClassMagnitudeMasks(m, 2)
	if len(masks) != 2 {
		t.Fatalf("masks = %d", len(masks))
	}
	// Class 0 keeps dims 0,2; class 1 keeps dims 1,3.
	if !masks[0].Keep[0] || !masks[0].Keep[2] || masks[0].Keep[1] || masks[0].Keep[3] {
		t.Errorf("class 0 mask = %v", masks[0].Keep)
	}
	if !masks[1].Keep[1] || !masks[1].Keep[3] || masks[1].Keep[0] || masks[1].Keep[2] {
		t.Errorf("class 1 mask = %v", masks[1].Keep)
	}
	PrunePerClass(m, masks)
	if m.Class(0)[1] != 0 || m.Class(1)[0] != 0 {
		t.Error("PrunePerClass did not zero per-class dims")
	}
	if m.Class(0)[0] != 10 || m.Class(1)[1] != 10 {
		t.Error("PrunePerClass zeroed kept dims")
	}
}

func TestPerClassPruningKeepsAccuracyOnStructuredModel(t *testing.T) {
	// Because every class keeps its own strongest dims, per-class pruning
	// preserves each class's dominant dot-product terms.
	src := hrand.New(17)
	const classes, dim = 3, 400
	m := hdc.NewModel(classes, dim)
	protos := make([][]float64, classes)
	for c := range protos {
		protos[c] = src.NormalVec(dim, 0, 4)
		m.Add(c, protos[c])
	}
	masks := PerClassMagnitudeMasks(m, dim/2)
	PrunePerClass(m, masks)
	correct := 0
	for c, p := range protos {
		q := make([]float64, dim)
		for j := range q {
			q[j] = p[j] + src.Normal(0, 1)
		}
		if m.Predict(q) == c {
			correct++
		}
	}
	if correct < classes {
		t.Errorf("per-class pruned model got %d/%d prototypes right", correct, classes)
	}
}

func TestPrunePerClassPanics(t *testing.T) {
	m := hdc.NewModel(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mask-count mismatch")
		}
	}()
	PrunePerClass(m, []*Mask{NewMask(4)})
}

func TestRandomMask(t *testing.T) {
	src := hrand.New(1)
	mask := RandomMask(100, 40, src.SampleK)
	if mask.Kept() != 60 {
		t.Errorf("Kept = %d, want 60", mask.Kept())
	}
	// Determinism with same seed.
	src2 := hrand.New(1)
	mask2 := RandomMask(100, 40, src2.SampleK)
	for j := range mask.Keep {
		if mask.Keep[j] != mask2.Keep[j] {
			t.Fatal("RandomMask not deterministic for same source")
		}
	}
}

func TestInformationRetentionEndpoints(t *testing.T) {
	class := []float64{5, -0.1, 3, 0.2}
	query := []float64{1, 1, 1, 1}
	r := InformationRetention(class, query)
	if len(r) != 5 {
		t.Fatalf("len = %d, want 5", len(r))
	}
	if r[0] != 0 {
		t.Errorf("r[0] = %v, want 0", r[0])
	}
	if math.Abs(r[4]-1) > 1e-12 {
		t.Errorf("r[full] = %v, want 1", r[4])
	}
}

func TestInformationRetentionSlowStart(t *testing.T) {
	// The Fig. 3 shape: restoring the close-to-zero half of the dimensions
	// recovers much less than half the information.
	src := hrand.New(2)
	dim := 2000
	// A class vector with realistic spread and an aligned query.
	class := src.NormalVec(dim, 0, 10)
	query := make([]float64, dim)
	for j := range query {
		// Query correlates with the class sign, plus noise.
		query[j] = math.Copysign(1, class[j]) + src.Normal(0, 0.5)
	}
	r := InformationRetention(class, query)
	half := r[dim/2]
	if half > 0.45 {
		t.Errorf("half-restored retention = %v, want well below 0.5 (Fig. 3 shape)", half)
	}
	// Retention should be (weakly) increasing in the aligned case...
	violations := 0
	for k := 1; k <= dim; k++ {
		if r[k] < r[k-1]-1e-9 {
			violations++
		}
	}
	// ...modulo noise-induced dips; allow a small fraction.
	if violations > dim/10 {
		t.Errorf("retention decreased %d/%d times", violations, dim)
	}
}

func TestInformationRetentionProperties(t *testing.T) {
	f := func(seed uint64) bool {
		src := hrand.New(seed)
		n := 10 + src.IntN(100)
		class := src.NormalVec(n, 0, 3)
		query := src.NormalVec(n, 0, 3)
		r := InformationRetention(class, query)
		return len(r) == n+1 && r[0] == 0 && math.Abs(r[n]-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaskedRetrainKeepsPrunedZero(t *testing.T) {
	src := hrand.New(3)
	const classes, dim, samples = 3, 200, 60
	// Synthetic encoded data: class prototypes plus noise.
	protos := make([][]float64, classes)
	for c := range protos {
		protos[c] = src.NormalVec(dim, 0, 5)
	}
	var encoded [][]float64
	var labels []int
	for i := 0; i < samples; i++ {
		c := i % classes
		h := make([]float64, dim)
		for j := range h {
			h[j] = protos[c][j] + src.Normal(0, 2)
		}
		encoded = append(encoded, h)
		labels = append(labels, c)
	}
	m, err := hdc.Train(encoded, labels, classes, dim)
	if err != nil {
		t.Fatal(err)
	}
	mask := GlobalMagnitudeMask(m, dim/2)
	PruneModel(m, mask)
	accs := MaskedRetrain(m, mask, encoded, labels, encoded, labels, 4)
	if len(accs) == 0 {
		t.Fatal("no epochs ran")
	}
	for l := 0; l < classes; l++ {
		c := m.Class(l)
		for j, keep := range mask.Keep {
			if !keep && c[j] != 0 {
				t.Fatalf("class %d dim %d nonzero (%v) after masked retrain", l, j, c[j])
			}
		}
	}
	if accs[len(accs)-1] < 0.8 {
		t.Errorf("masked retrain accuracy = %v, expected recovery on easy task", accs[len(accs)-1])
	}
}

func TestMaskBatch(t *testing.T) {
	mask := NewMask(2)
	mask.Drop(0)
	got := MaskBatch(mask, [][]float64{{1, 2}, {3, 4}})
	if got[0][0] != 0 || got[0][1] != 2 || got[1][0] != 0 || got[1][1] != 4 {
		t.Errorf("MaskBatch = %v", got)
	}
}
