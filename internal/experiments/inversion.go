package experiments

import (
	"fmt"

	"privehd/internal/attack"
	"privehd/internal/dp"
	"privehd/internal/hdc"
	"privehd/internal/hrand"
	"privehd/internal/quant"
	"privehd/internal/vecmath"
)

// InversionResult carries the model-inversion study.
type InversionResult struct {
	Table *Table
	// Art renders one class prototype recovered from the clean and the
	// DP-protected model.
	Art []string
}

// ModelInversion extends the §III-A model-privacy analysis: a released
// non-private model leaks each class's average member through the linear
// Eq. 10 projection (Eq. 3 makes class vectors sums of encodings). The
// table compares inversion quality against the per-class mean input for a
// clean full-precision model, a quantized-training model, and a
// differentially private release.
func ModelInversion(r *Runner) (*InversionResult, error) {
	set, err := r.Scalar("mnist-s")
	if err != nil {
		return nil, err
	}
	enc := set.scalarEncoder()
	d := set.data
	dim := r.ctx.MaxDim

	// Ground truth: per-class mean of the level-quantized training images.
	means := make([][]float64, d.Classes)
	counts := make([]int, d.Classes)
	for i, x := range d.TrainX {
		c := d.TrainY[i]
		if means[c] == nil {
			means[c] = make([]float64, d.Features)
		}
		lt := levelTruth(enc, x)
		vecmath.Add(means[c], lt)
		counts[c]++
	}
	for c := range means {
		if counts[c] > 0 {
			vecmath.Scale(means[c], 1/float64(counts[c]))
		}
	}

	cleanModel, err := hdc.Train(set.train, d.TrainY, d.Classes, dim)
	if err != nil {
		return nil, err
	}
	quantModel, err := hdc.Train(quant.QuantizeBatch(quant.Ternary{}, set.train), d.TrainY, d.Classes, dim)
	if err != nil {
		return nil, err
	}
	dpModel := quantModel.Clone()
	sens := quant.AnalyticL2Sensitivity(quant.Ternary{}, dim)
	if err := dp.PrivatizeModel(hrand.New(r.ctx.Seed+31), dpModel, sens,
		dp.Params{Epsilon: 2, Delta: 1e-5}); err != nil {
		return nil, err
	}

	res := &InversionResult{Table: &Table{
		ID:    "model-inversion",
		Title: "Model-inversion: class prototypes recovered from released models (§III-A extension)",
		Note: "Average PSNR of the inverted class vectors against the per-class mean input. " +
			"Reading: class prototypes are AGGREGATE statistics, so record-level (ε, δ)-DP " +
			"does not (and should not) hide them — the inversion survives the Gaussian " +
			"mechanism nearly unchanged. What the mechanism does bury is any INDIVIDUAL " +
			"record's membership: see the model-difference attack tests, where the same " +
			"noise makes adjacent releases indistinguishable. This table documents that " +
			"distinction; a deployment wanting prototype secrecy needs group privacy " +
			"(ε scaled by the class size), not record-level DP.",
		Columns: []string{"released model", "mean PSNR (dB)"},
	}}
	demoClass := 3 % d.Classes
	for _, v := range []struct {
		name  string
		model *hdc.Model
	}{
		{"full-precision, non-private", cleanModel},
		{"ternary-quantized training, non-private", quantModel},
		{"ternary + Gaussian mechanism (eps=2)", dpModel},
	} {
		recons, err := attack.ClassInversionScaled(enc, v.model)
		if err != nil {
			return nil, err
		}
		var psnrSum float64
		n := 0
		for c, recon := range recons {
			if recon == nil || means[c] == nil {
				continue
			}
			psnrSum += vecmath.PSNR(means[c], recon, 1)
			n++
		}
		if n == 0 {
			return nil, fmt.Errorf("experiments: inversion produced no reconstructions")
		}
		res.Table.Rows = append(res.Table.Rows, []string{v.name, f2(psnrSum / float64(n))})
		if d.ImageWidth > 0 && recons[demoClass] != nil {
			res.Art = append(res.Art, fmt.Sprintf("class %d prototype from %s:\n%s",
				demoClass, v.name, attack.RenderASCII(recons[demoClass], d.ImageWidth)))
		}
	}
	return res, nil
}
