package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// smokeRunner builds a runner at smoke scale, shared across subtests in a
// test (not across tests, to keep failures independent).
func smokeRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(SmokeContext())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestContextValidate(t *testing.T) {
	good := SmokeContext()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Context{
		{MaxDim: 0, Dims: []int{1}, Levels: 4},
		{MaxDim: 100, Dims: nil, Levels: 4},
		{MaxDim: 100, Dims: []int{50, 50}, Levels: 4},  // not ascending
		{MaxDim: 100, Dims: []int{50, 200}, Levels: 4}, // beyond MaxDim
		{MaxDim: 100, Dims: []int{50, 100}, Levels: 1}, // too few levels
		{MaxDim: 100, Dims: []int{0, 100}, Levels: 4},  // zero dim
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("context %d should fail validation", i)
		}
	}
	if err := DefaultContext().Validate(); err != nil {
		t.Errorf("DefaultContext invalid: %v", err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "T", Note: "n",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tab.String()
	for _, want := range []string{"== x: T ==", "n", "a", "bb", "333"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q in:\n%s", want, s)
		}
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "| --- | --- |") {
		t.Errorf("Markdown malformed:\n%s", md)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Errorf("CSV malformed:\n%s", csv)
	}
}

func TestSliceDims(t *testing.T) {
	enc := [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}}
	out := sliceDims(enc, 2)
	if len(out[0]) != 2 || out[1][1] != 6 {
		t.Errorf("sliceDims = %v", out)
	}
	// Prefix views must not allow silent growth into the backing array.
	out[0] = append(out[0], 99)
	if enc[0][2] == 99 {
		t.Error("sliceDims aliased beyond the slice cap")
	}
}

func TestRunnerCaching(t *testing.T) {
	r := smokeRunner(t)
	a, err := r.Level("face-s")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Level("face-s")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Level should cache")
	}
	if _, err := r.Dataset("nope"); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestFig2Smoke(t *testing.T) {
	r := smokeRunner(t)
	res, err := Fig2(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) == 0 {
		t.Fatal("fig2 produced no rows")
	}
	if len(res.Art) == 0 {
		t.Error("fig2 produced no art")
	}
	// Clean reconstructions must be decent even at smoke dims.
	for _, row := range res.Table.Rows {
		psnr, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("unparseable PSNR %q", row[2])
		}
		if psnr < 8 {
			t.Errorf("digit %s PSNR = %v, implausibly low for clean decode", row[0], psnr)
		}
	}
}

func TestFig3Smoke(t *testing.T) {
	r := smokeRunner(t)
	tables, err := Fig3(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig3 tables = %d", len(tables))
	}
	a := tables[0]
	// Retention must start at 0 and end at 1.
	first := a.Rows[0][1]
	last := a.Rows[len(a.Rows)-1][1]
	if first != "0.00" {
		t.Errorf("retention[0] = %s", first)
	}
	if last != "1.00" {
		t.Errorf("retention[full] = %s", last)
	}
	// Fig 3a shape: half the dims restored recovers < 50%.
	mid := a.Rows[len(a.Rows)/2][1]
	v, _ := strconv.ParseFloat(mid, 64)
	if v >= 0.6 {
		t.Errorf("mid retention = %v, expected the slow-start shape", v)
	}
}

func TestFig5Smoke(t *testing.T) {
	r := smokeRunner(t)
	tables, err := Fig5(r)
	if err != nil {
		t.Fatal(err)
	}
	acc, sens := tables[0], tables[1]
	if len(acc.Rows) != len(r.Ctx().Dims) {
		t.Fatalf("fig5a rows = %d", len(acc.Rows))
	}
	// Sensitivity table must contain exact analytic values; check the
	// bipolar column at the largest dim: sqrt(2000) ≈ 44.72.
	lastRow := sens.Rows[len(sens.Rows)-1]
	if lastRow[2] != "44.72" {
		t.Errorf("bipolar sensitivity at 2000 = %s, want 44.72", lastRow[2])
	}
	// Ordering: biased ternary < ternary < bipolar < 2bit.
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	for _, row := range sens.Rows {
		bp, tn, bt, tb := parse(row[2]), parse(row[3]), parse(row[4]), parse(row[5])
		if !(bt < tn && tn < bp && bp < tb) {
			t.Errorf("sensitivity ordering broken in row %v", row)
		}
	}
}

func TestFig8Smoke(t *testing.T) {
	r := smokeRunner(t)
	tables, err := Fig8(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("fig8 tables = %d, want 4 (a-d)", len(tables))
	}
	for _, tab := range tables[:3] {
		if len(tab.Rows) != len(r.Ctx().Dims) {
			t.Errorf("%s rows = %d", tab.ID, len(tab.Rows))
		}
	}
	if tables[3].ID != "fig8d" || len(tables[3].Rows) != 5 {
		t.Errorf("fig8d malformed: %+v", tables[3])
	}
}

func TestEq15Smoke(t *testing.T) {
	r := smokeRunner(t)
	tab, err := Eq15(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("eq15 empty")
	}
	// Measured saving must be positive in every row.
	for _, row := range tab.Rows {
		if !strings.HasSuffix(row[5], "%") {
			t.Errorf("saving cell %q", row[5])
		}
		v, _ := strconv.ParseFloat(strings.TrimSuffix(row[5], "%"), 64)
		if v <= 0 {
			t.Errorf("d_iv %s: non-positive saving %v", row[0], v)
		}
	}
}

func TestTableISmoke(t *testing.T) {
	r := smokeRunner(t)
	tab, err := TableI(r)
	if err != nil {
		t.Fatal(err)
	}
	// 3 workloads × 3 platforms + 2 geomean rows.
	if len(tab.Rows) != 11 {
		t.Errorf("tableI rows = %d, want 11", len(tab.Rows))
	}
}

func TestAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full smoke suite is slow")
	}
	r := smokeRunner(t)
	s, err := All(r)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{
		"fig2", "fig3a", "fig3b", "fig4", "fig5a", "fig5b", "fig6",
		"fig8a", "fig8b", "fig8c", "fig8d", "fig9a", "fig9b",
		"eq15", "approx-majority", "tableI", "model-inversion",
		"ablate-encoding", "ablate-prune", "ablate-quant-order", "ablate-noise-placement",
		"repro-checks",
	}
	for _, id := range wantIDs {
		if s.Find(id) == nil {
			t.Errorf("suite missing table %s", id)
		}
	}
	if len(s.Tables) != len(wantIDs) {
		t.Errorf("suite has %d tables, want %d", len(s.Tables), len(wantIDs))
	}
	if s.Find("nope") != nil {
		t.Error("Find(nope) should be nil")
	}
	if len(s.Art) == 0 {
		t.Error("suite has no art")
	}
	// Analytic assertions must pass even at smoke scale; accuracy ones
	// should be skipped, never failed.
	checks := s.Find("repro-checks")
	if !Passed(checks) {
		t.Errorf("repro checks failed:\n%s", checks.String())
	}
	skipped := 0
	for _, row := range checks.Rows {
		if row[1] == "skipped" {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("smoke-scale run should skip the accuracy assertions")
	}
}
