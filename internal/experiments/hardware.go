package experiments

import (
	"fmt"

	"privehd/internal/fpga"
	"privehd/internal/hdc"
	"privehd/internal/hrand"
	"privehd/internal/netlist"
)

// Eq15 tabulates the LUT cost model of paper Eq. 15 against measured
// structural netlist counts: approximate (first-stage majority) vs exact
// adder-tree bipolar reduction, plus the ternary estimates.
func Eq15(r *Runner) (*Table, error) {
	t := &Table{
		ID:    "eq15",
		Title: "LUT-6 budget: Eq. 15 model vs synthesized netlist",
		Note: "Paper: approximate ≈ 7/18·d_iv vs exact 4/3·d_iv (70.8% saving); " +
			"ternary ≈ 2·d_iv vs 3·d_iv (33.3%). Netlist columns are measured from the " +
			"structural circuits in internal/netlist.",
		Columns: []string{"d_iv", "Eq15 approx", "Eq15 exact", "netlist approx", "netlist exact", "measured saving"},
	}
	for _, div := range []int{120, 360, 617, 784} {
		nlApprox, _ := netlist.BuildBipolarApprox(div, hrand.New(r.ctx.Seed+uint64(div)))
		nlExact := netlist.BuildBipolarExact(div, true)
		saving := 1 - float64(nlApprox.NumLUTs())/float64(nlExact.NumLUTs())
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", div),
			fmt.Sprintf("%.0f", fpga.BipolarApproxLUTs(div)),
			fmt.Sprintf("%.0f", fpga.BipolarExactLUTs(div)),
			fmt.Sprintf("%d", nlApprox.NumLUTs()),
			fmt.Sprintf("%d", nlExact.NumLUTs()),
			pct(saving),
		})
	}
	return t, nil
}

// ApproxMajority measures the §III-D claim that replacing the first
// reduction stage with LUT-6 majorities costs under ~1% accuracy: queries
// are hardware-quantized by the approximate circuit vs the exact popcount,
// against the same full-precision model.
func ApproxMajority(r *Runner) (*Table, error) {
	set, err := r.Level("isolet-s")
	if err != nil {
		return nil, err
	}
	d := set.data
	enc := set.levelEncoder()
	dim := r.ctx.MaxDim
	model, err := hdc.Train(set.train, d.TrainY, d.Classes, dim)
	if err != nil {
		return nil, err
	}
	circuit := fpga.NewBipolarCircuit(d.Features, hrand.New(r.ctx.Seed+7))

	// Limit the gate-level simulation to a manageable query count.
	n := len(d.TestX)
	if n > 64 {
		n = 64
	}
	exactCorrect, approxCorrect, flips := 0, 0, 0
	for i := 0; i < n; i++ {
		planes := enc.BitPlanes(d.TestX[i])
		exactQ := fpga.ExactQuantizeEncoding(planes, true)
		approxQ := circuit.QuantizeEncoding(planes)
		for j := range exactQ {
			if exactQ[j] != approxQ[j] {
				flips++
			}
		}
		if model.Predict(exactQ) == d.TestY[i] {
			exactCorrect++
		}
		if model.Predict(approxQ) == d.TestY[i] {
			approxCorrect++
		}
	}
	exactAcc := float64(exactCorrect) / float64(n)
	approxAcc := float64(approxCorrect) / float64(n)
	flipRate := float64(flips) / float64(n*dim)
	t := &Table{
		ID:    "approx-majority",
		Title: "Accuracy impact of the LUT-6 partial-majority approximation (§III-D)",
		Note: "Paper: \"in practice it imposes <1% accuracy loss due to inherent error " +
			"tolerance of HD\". Quantized queries against a full-precision model.",
		Columns: []string{"quantizer circuit", "accuracy", "bit flips vs exact"},
	}
	t.Rows = append(t.Rows,
		[]string{"exact popcount majority", pct(exactAcc), "0.0%"},
		[]string{"LUT-6 partial majority (Fig. 7a)", pct(approxAcc), pct(flipRate)},
		[]string{"accuracy delta", pct(exactAcc - approxAcc), ""},
	)
	return t, nil
}

// TableI regenerates the platform comparison of paper Table I from the
// analytical models in internal/fpga, side by side with the published
// values.
func TableI(r *Runner) (*Table, error) {
	t := &Table{
		ID:    "tableI",
		Title: "Throughput (inputs/s) and energy (J/input) across platforms (paper Table I)",
		Note: "Model columns come from the single-constant-set platform models in internal/fpga " +
			"(see DESIGN.md §2); paper columns are the published measurements. The claim under " +
			"test is the ratio structure: FPGA ≈ 1e5× Pi and ~16× GPU throughput, ~5e4× and " +
			"~290× energy.",
		Columns: []string{"workload", "platform", "model tput", "paper tput", "model J/input", "paper J/input"},
	}
	workloads := fpga.PaperWorkloads()
	paper := fpga.PaperResults()
	platforms := fpga.Platforms()
	for i, w := range workloads {
		for p, plat := range platforms {
			t.Rows = append(t.Rows, []string{
				w.Name,
				plat.Name,
				sci(plat.Throughput(w)),
				sci(paper[i].Throughput[p]),
				sci(plat.EnergyPerInput(w)),
				sci(paper[i].Energy[p]),
			})
		}
	}
	pi, gpu, f := fpga.RaspberryPi(), fpga.GPU(), fpga.PriveHDFPGA()
	t.Rows = append(t.Rows,
		[]string{"geomean", "FPGA / Pi", sci(fpga.GeomeanSpeedup(f, pi, workloads)), "105067", "", ""},
		[]string{"geomean", "FPGA / GPU", sci(fpga.GeomeanSpeedup(f, gpu, workloads)), "15.8", "", ""},
	)
	return t, nil
}
