package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"privehd/internal/dataset"
)

// Verify mechanically checks the reproduction targets (DESIGN.md §4 "shape
// targets") against a generated suite and returns a pass/fail table. It is
// the self-audit appended to EXPERIMENTS.md: every claim the README makes
// about "shapes holding" is asserted here rather than eyeballed.
//
// Accuracy-dependent checks need full-scale statistics; at smoke scale they
// report "skipped" instead of a misleading fail.
func Verify(s *Suite, ctx Context) *Table {
	t := &Table{
		ID:      "repro-checks",
		Title:   "Reproduction assertions (automated)",
		Note:    "Mechanical checks of the DESIGN.md §4 shape targets against the tables above.",
		Columns: []string{"check", "status", "detail"},
	}
	fullScale := ctx.Scale == dataset.Full
	add := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		t.Rows = append(t.Rows, []string{name, status, detail})
	}
	skip := func(name, why string) {
		t.Rows = append(t.Rows, []string{name, "skipped", why})
	}

	// --- Analytic checks: hold at any scale. -----------------------------
	if tab := s.Find("fig5b"); tab != nil {
		last := tab.Rows[len(tab.Rows)-1]
		want := math.Sqrt(float64(ctx.MaxDim))
		got := cellFloat(last[2])
		add("fig5b: bipolar ∆f = √D exactly", math.Abs(got-want) < 0.01,
			fmt.Sprintf("%.2f vs √%d = %.2f", got, ctx.MaxDim, want))
		bt, tn := cellFloat(last[4]), cellFloat(last[3])
		ratio := bt / tn
		add("fig5b: biased/uniform ternary ratio ≈ 0.87", math.Abs(ratio-0.866) < 0.005,
			fmt.Sprintf("ratio %.3f", ratio))
	}
	if tab := s.Find("eq15"); tab != nil {
		ok := true
		var worst float64
		for _, row := range tab.Rows {
			v := cellFloat(strings.TrimSuffix(row[5], "%")) / 100
			if v < 0.6 || v > 0.85 {
				ok = false
			}
			worst = v
		}
		add("eq15: measured LUT saving ≈ 70.8%", ok, fmt.Sprintf("last %.1f%%", 100*worst))
	}
	if tab := s.Find("tableI"); tab != nil {
		var gmPi, gmGPU float64
		for _, row := range tab.Rows {
			if row[0] == "geomean" && row[1] == "FPGA / Pi" {
				gmPi = cellFloat(row[2])
			}
			if row[0] == "geomean" && row[1] == "FPGA / GPU" {
				gmGPU = cellFloat(row[2])
			}
		}
		add("tableI: FPGA/Pi geomean ~1e5 (paper 105067)", gmPi > 3e4 && gmPi < 4e5,
			fmt.Sprintf("%.3g", gmPi))
		add("tableI: FPGA/GPU geomean ~16 (paper 15.8)", gmGPU > 4 && gmGPU < 64,
			fmt.Sprintf("%.3g", gmGPU))
	}
	if tab := s.Find("fig3a"); tab != nil {
		mid := cellFloat(tab.Rows[len(tab.Rows)/2][1])
		add("fig3a: half the dims restore <50% of the information", mid < 0.5,
			fmt.Sprintf("mid retention %.2f", mid))
	}

	// --- Accuracy checks: meaningful only at full scale. -----------------
	accuracyChecks := []struct {
		name string
		run  func() (bool, string)
	}{
		{"fig5a: quantized within 5pp of full precision at max D", func() (bool, string) {
			tab := s.Find("fig5a")
			last := tab.Rows[len(tab.Rows)-1]
			full := cellPct(last[1])
			worstGap := 0.0
			for c := 2; c < len(last); c++ {
				if gap := full - cellPct(last[c]); gap > worstGap {
					worstGap = gap
				}
			}
			return worstGap < 0.05, fmt.Sprintf("worst gap %.1fpp", 100*worstGap)
		}},
		{"fig6: masking degrades PSNR monotonically, accuracy gently", func() (bool, string) {
			tab := s.Find("fig6")
			psnrOK := true
			for i := 1; i < len(tab.Rows); i++ {
				if cellFloat(tab.Rows[i][2]) > cellFloat(tab.Rows[i-1][2])+0.01 {
					psnrOK = false
				}
			}
			accDrop := cellPct(tab.Rows[0][1]) - cellPct(tab.Rows[2][1])
			return psnrOK && accDrop < 0.05,
				fmt.Sprintf("PSNR monotone=%v, acc drop to 5k mask %.1fpp", psnrOK, 100*accDrop)
		}},
		{"fig8: single-digit ε within 15pp of non-private at best D", func() (bool, string) {
			worst := 0.0
			for _, id := range []string{"fig8a", "fig8b", "fig8c"} {
				tab := s.Find(id)
				bestGap := math.Inf(1)
				for _, row := range tab.Rows {
					clean := cellPct(row[1])
					loosest := cellPct(row[len(row)-1])
					if gap := clean - loosest; gap < bestGap {
						bestGap = gap
					}
				}
				if bestGap > worst {
					worst = bestGap
				}
			}
			return worst < 0.15, fmt.Sprintf("worst best-D gap %.1fpp", 100*worst)
		}},
		{"fig8d: DP accuracy increases with data size", func() (bool, string) {
			tab := s.Find("fig8d")
			first := cellPct(tab.Rows[0][1])
			last := cellPct(tab.Rows[len(tab.Rows)-1][1])
			return last > first, fmt.Sprintf("%.1f%% → %.1f%%", 100*first, 100*last)
		}},
		{"fig9b: masked reconstruction MSE ≥ 2× clean on every dataset", func() (bool, string) {
			tab := s.Find("fig9b")
			last := tab.Rows[len(tab.Rows)-1]
			min := math.Inf(1)
			for c := 1; c < len(last); c++ {
				if v := cellFloat(last[c]); v < min {
					min = v
				}
			}
			return min >= 2, fmt.Sprintf("min final ratio %.2f×", min)
		}},
		{"approx-majority: accuracy delta ≤ 1.5pp (paper <1%)", func() (bool, string) {
			tab := s.Find("approx-majority")
			delta := math.Abs(cellPct(tab.Rows[2][1]))
			return delta <= 0.015, fmt.Sprintf("delta %.2fpp", 100*delta)
		}},
		{"model-inversion: prototypes (aggregates) survive record-level DP", func() (bool, string) {
			tab := s.Find("model-inversion")
			clean := cellFloat(tab.Rows[0][1])
			private := cellFloat(tab.Rows[len(tab.Rows)-1][1])
			return math.Abs(clean-private) < 3, fmt.Sprintf("%.1f dB vs %.1f dB", clean, private)
		}},
	}
	for _, c := range accuracyChecks {
		if !fullScale {
			skip(c.name, "needs full-scale statistics")
			continue
		}
		ok, detail := c.run()
		add(c.name, ok, detail)
	}
	return t
}

// Passed reports whether every non-skipped assertion in a repro-checks
// table passed.
func Passed(t *Table) bool {
	for _, row := range t.Rows {
		if row[1] == "FAIL" {
			return false
		}
	}
	return true
}

func cellFloat(s string) float64 {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

func cellPct(s string) float64 {
	return cellFloat(strings.TrimSuffix(strings.TrimSpace(s), "%")) / 100
}
