package experiments

import (
	"fmt"

	"privehd/internal/attack"
	"privehd/internal/hdc"
	"privehd/internal/hrand"
	"privehd/internal/prune"
	"privehd/internal/quant"
	"privehd/internal/vecmath"
)

// Fig9 reproduces paper Fig. 9 across all three workloads: (a) accuracy of
// bipolar-quantized queries against full-precision models as dimension
// shrinks; (b) normalized reconstruction MSE as query dimensions are
// masked (MSE relative to reconstruction from a clean full-precision
// encoding). Paper findings: quantization costs 0.85% accuracy on average
// while reconstruction MSE rises 2.36×; ISOLET/FACE tolerate up to 6,000
// masked dimensions, MNIST's accuracy collapses much earlier.
func Fig9(r *Runner) ([]*Table, error) {
	names := []string{"isolet-s", "face-s", "mnist-s"}

	a := &Table{
		ID:    "fig9a",
		Title: "Accuracy with bipolar-quantized queries vs dimension (paper Fig. 9a)",
		Note: "Full-precision model, quantized queries (§III-C). Paper: mean accuracy loss 0.85% " +
			"at D=10k vs the full-precision baseline.",
		Columns: append([]string{"dims"}, names...),
	}
	type colData struct {
		set *encodedSet
	}
	cols := make([]colData, len(names))
	for i, name := range names {
		set, err := r.Scalar(name)
		if err != nil {
			return nil, err
		}
		cols[i] = colData{set: set}
	}
	for _, dim := range r.ctx.Dims {
		row := []string{fmt.Sprintf("%d", dim)}
		for _, c := range cols {
			d := c.set.data
			trainDim := sliceDims(c.set.train, dim)
			testDim := quant.QuantizeBatch(quant.Bipolar{}, sliceDims(c.set.test, dim))
			model, err := hdc.Train(trainDim, d.TrainY, d.Classes, dim)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(hdc.Evaluate(model, testDim, d.TestY)))
		}
		a.Rows = append(a.Rows, row)
	}

	b := &Table{
		ID:    "fig9b",
		Title: "Normalized reconstruction MSE vs masked dimensions (paper Fig. 9b)",
		Note: "Eq. 10 reconstruction from bipolar-quantized queries with k dimensions masked, " +
			"MSE normalized to the clean-encoding reconstruction. Paper: rises to ~4-16× across " +
			"datasets; FACE leaks least.",
		Columns: append([]string{"masked dims"}, names...),
	}
	// Per dataset: baseline clean MSE at MaxDim, then masked sweep.
	dim := r.ctx.MaxDim
	nSamples := 8
	baselines := make([]float64, len(names))
	truths := make([][][]float64, len(names))
	for i, c := range cols {
		enc := c.set.scalarEncoder()
		n := nSamples
		if n > len(c.set.test) {
			n = len(c.set.test)
		}
		var mse float64
		truths[i] = make([][]float64, n)
		for s := 0; s < n; s++ {
			truth := levelTruth(enc, c.set.data.TestX[s])
			truths[i][s] = truth
			recon, err := attack.DecodeScaled(enc, c.set.test[s])
			if err != nil {
				return nil, err
			}
			mse += vecmath.MSE(truth, recon)
		}
		baselines[i] = mse / float64(n)
	}
	maskStep := dim / 5
	for masked := 0; masked <= dim*9/10; masked += maskStep {
		row := []string{fmt.Sprintf("%d", masked)}
		for i, c := range cols {
			enc := c.set.scalarEncoder()
			var mask *prune.Mask
			if masked > 0 {
				src := hrand.New(r.ctx.Seed + uint64(masked) + uint64(i))
				mask = prune.RandomMask(dim, masked, src.SampleK)
			}
			n := len(truths[i])
			var mse float64
			for s := 0; s < n; s++ {
				q := quant.Bipolar{}.Quantize(c.set.test[s])
				if mask != nil {
					mask.Apply(q)
				}
				recon, err := attack.DecodeScaled(enc, q)
				if err != nil {
					return nil, err
				}
				mse += vecmath.MSE(truths[i][s], recon)
			}
			mse /= float64(n)
			row = append(row, f2(mse/baselines[i]))
		}
		b.Rows = append(b.Rows, row)
	}
	return []*Table{a, b}, nil
}
