package experiments

import (
	"fmt"

	"privehd/internal/hdc"
	"privehd/internal/prune"
)

// Fig3 reproduces the information-retention study of paper Fig. 3 on the
// speech workload: (a) restoring a class hypervector's dimensions in
// ascending-magnitude order recovers prediction information slowly at
// first (close-to-zero dimensions carry little); (b) pruning the least
// effectual dimensions reduces the information of both the correct class A
// and a competing class B only gently, preserving their rank.
func Fig3(r *Runner) ([]*Table, error) {
	set, err := r.Level("isolet-s")
	if err != nil {
		return nil, err
	}
	d := set.data
	model, err := hdc.Train(set.train, d.TrainY, d.Classes, r.ctx.MaxDim)
	if err != nil {
		return nil, err
	}

	// Query: first test sample; class A its true label, class B the
	// strongest competitor.
	query := set.test[0]
	classA := d.TestY[0]
	scores := model.Scores(query)
	classB := 0
	for l := range scores {
		if l != classA && (classB == classA || scores[l] > scores[classB]) {
			classB = l
		}
	}
	if classB == classA {
		classB = (classA + 1) % d.Classes
	}

	retainA := prune.InformationRetention(model.Class(classA), query)
	retainB := prune.InformationRetention(model.Class(classB), query)

	// (a) information recovered vs dimensions restored (ascending |value|).
	a := &Table{
		ID:    "fig3a",
		Title: "Information recovered vs dimensions restored, ascending |class value| (paper Fig. 3a)",
		Note: "Paper: the first 6,000 close-to-zero dimensions of a 10k model retrieve only ~20% " +
			"of the full dot product.",
		Columns: []string{"restored dims", "info recovered (class A)"},
	}
	step := r.ctx.MaxDim / 10
	if step == 0 {
		step = 1
	}
	for k := 0; k <= r.ctx.MaxDim; k += step {
		a.Rows = append(a.Rows, []string{fmt.Sprintf("%d", k), f2(retainA[k])})
	}

	// (b) information kept vs dimensions pruned, for classes A and B.
	b := &Table{
		ID:    "fig3b",
		Title: "Information kept vs dimensions pruned (paper Fig. 3b)",
		Note: "Paper: pruning the less-effectual dimensions slightly reduces both classes' " +
			"information; the rank of the correct class A over B is retained.",
		Columns: []string{"pruned dims", "info kept (class A)", "info kept (class B)", "A still wins"},
	}
	// Score under pruning: dot(query, class) restricted to kept dims,
	// normalized by the kept-restricted class norm (Eq. 4 on the pruned
	// model). Rank check uses the real masked scores, not just retention.
	maxPruned := r.ctx.MaxDim * 6 / 10
	for k := 0; k <= maxPruned; k += step {
		keptA := 1 - retainA[k]
		keptB := 1 - retainB[k]
		mask := prune.GlobalMagnitudeMask(model, k)
		prunedModel := model.Clone()
		prune.PruneModel(prunedModel, mask)
		mq := mask.AppliedCopy(query)
		ms := prunedModel.Scores(mq)
		wins := "yes"
		if ms[classA] <= ms[classB] {
			wins = "no"
		}
		b.Rows = append(b.Rows, []string{fmt.Sprintf("%d", k), f2(keptA), f2(keptB), wins})
	}
	return []*Table{a, b}, nil
}
