package experiments

import (
	"privehd/internal/dp"
	"privehd/internal/hdc"
	"privehd/internal/hrand"
	"privehd/internal/prune"
	"privehd/internal/quant"
	"privehd/internal/vecmath"
)

// Ablations runs the design-choice studies DESIGN.md §5 calls out. They are
// not paper figures; they justify implementation decisions made by this
// reproduction.
func Ablations(r *Runner) ([]*Table, error) {
	var tables []*Table
	for _, f := range []func(*Runner) (*Table, error){
		ablateEncodings,
		ablatePruneCriterion,
		ablateQuantizeOrder,
		ablateNoisePlacement,
	} {
		t, err := f(r)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// ablateEncodings checks Eq. 2a vs Eq. 2b accuracy parity (the paper uses
// them interchangeably, choosing 2b for hardware).
func ablateEncodings(r *Runner) (*Table, error) {
	t := &Table{
		ID:      "ablate-encoding",
		Title:   "Ablation: Eq. 2a scalar vs Eq. 2b level encoding",
		Note:    "Expected: comparable accuracy; 2b is the hardware-friendly choice (single-bit partial products).",
		Columns: []string{"dataset", "scalar (2a)", "level (2b)"},
	}
	for _, name := range []string{"isolet-s", "face-s", "mnist-s"} {
		sSet, err := r.Scalar(name)
		if err != nil {
			return nil, err
		}
		lSet, err := r.Level(name)
		if err != nil {
			return nil, err
		}
		d := sSet.data
		dim := r.ctx.MaxDim
		sAcc, err := trainEval(sSet.train, d.TrainY, sSet.test, d.TestY, d.Classes, dim)
		if err != nil {
			return nil, err
		}
		lAcc, err := trainEval(lSet.train, d.TrainY, lSet.test, d.TestY, d.Classes, dim)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{name, pct(sAcc), pct(lAcc)})
	}
	return t, nil
}

// ablatePruneCriterion compares the paper-literal magnitude ranking with
// the discriminative (class-centered) ranking this reproduction uses for
// its pipeline (see prune.DiscriminativeMask).
func ablatePruneCriterion(r *Runner) (*Table, error) {
	set, err := r.Level("isolet-s")
	if err != nil {
		return nil, err
	}
	d := set.data
	dim := r.ctx.MaxDim
	t := &Table{
		ID:    "ablate-prune",
		Title: "Ablation: pruning criterion (paper-literal magnitude vs discriminative)",
		Note: "Synthetic workloads carry a strong common-mode component that inflates raw " +
			"|class value| on non-discriminative dimensions; centering by the class mean " +
			"selects the dimensions that move the argmax. Accuracy after pruning half the " +
			"dimensions and retraining 2 epochs.",
		Columns: []string{"criterion", "accuracy"},
	}
	for _, c := range []struct {
		name string
		mk   func(*hdc.Model, int) *prune.Mask
	}{
		{"magnitude (paper)", prune.GlobalMagnitudeMask},
		{"discriminative (this repo)", prune.DiscriminativeMask},
	} {
		model, err := hdc.Train(set.train, d.TrainY, d.Classes, dim)
		if err != nil {
			return nil, err
		}
		mask := c.mk(model, dim/2)
		prune.PruneModel(model, mask)
		accs := prune.MaskedRetrain(model, mask, set.train, d.TrainY,
			prune.MaskBatch(mask, set.test), d.TestY, 2)
		t.Rows = append(t.Rows, []string{c.name, pct(accs[len(accs)-1])})
	}
	return t, nil
}

// ablateQuantizeOrder compares the paper's quantize-then-bundle training
// with bundling full-precision encodings and quantizing the class vectors
// afterwards (the approach of prior work [17] that the paper improves on).
func ablateQuantizeOrder(r *Runner) (*Table, error) {
	set, err := r.Level("isolet-s")
	if err != nil {
		return nil, err
	}
	d := set.data
	dim := r.ctx.MaxDim
	t := &Table{
		ID:    "ablate-quant-order",
		Title: "Ablation: quantize encodings (paper) vs quantize class vectors (prior work)",
		Note: "Paper §III-B2: keeping class vectors full-precision recovers most of the " +
			"quantization loss (93.1% vs 88.1% in [17] at D=10k bipolar).",
		Columns: []string{"scheme", "accuracy"},
	}
	// Paper: bundle bipolar-quantized encodings, classes stay integer sums.
	qTrain := quant.QuantizeBatch(quant.Bipolar{}, set.train)
	qTest := quant.QuantizeBatch(quant.Bipolar{}, set.test)
	paperAcc, err := trainEval(qTrain, d.TrainY, qTest, d.TestY, d.Classes, dim)
	if err != nil {
		return nil, err
	}
	// Prior work: bundle full-precision encodings, then binarize classes
	// AND queries.
	m, err := hdc.Train(set.train, d.TrainY, d.Classes, dim)
	if err != nil {
		return nil, err
	}
	for l := 0; l < m.NumClasses(); l++ {
		q := quant.Bipolar{}.Quantize(m.Class(l))
		copy(m.Class(l), q)
	}
	m.InvalidateAll()
	priorAcc := hdc.Evaluate(m, qTest, d.TestY)
	t.Rows = append(t.Rows,
		[]string{"quantized encodings, full-precision classes (paper)", pct(paperAcc)},
		[]string{"binarized classes too (prior work [17])", pct(priorAcc)},
	)
	return t, nil
}

// ablateNoisePlacement shows why the privatizer perturbs raw class sums:
// normalizing class vectors before adding the same-σ noise destroys the
// signal (class magnitudes shrink to 1 while the noise std stays ∆f·σ).
func ablateNoisePlacement(r *Runner) (*Table, error) {
	set, err := r.Level("face-s")
	if err != nil {
		return nil, err
	}
	d := set.data
	dim := r.ctx.Dims[len(r.ctx.Dims)/2]
	trainDim := quant.QuantizeBatch(quant.Ternary{}, sliceDims(set.train, dim))
	testDim := quant.QuantizeBatch(quant.Ternary{}, sliceDims(set.test, dim))
	params := dp.Params{Epsilon: 1, Delta: 1e-5}
	sens := quant.AnalyticL2Sensitivity(quant.Ternary{}, dim)

	t := &Table{
		ID:    "ablate-noise-placement",
		Title: "Ablation: Gaussian noise on raw class sums (paper) vs normalized classes",
		Note: "Same ε, δ and sensitivity. Raw sums have magnitude ∝ bundled count, burying the " +
			"noise (the Fig. 8d effect); normalized classes are annihilated by it.",
		Columns: []string{"noise placement", "accuracy"},
	}
	for _, variant := range []string{"raw class sums (paper)", "normalized classes"} {
		m, err := hdc.Train(trainDim, d.TrainY, d.Classes, dim)
		if err != nil {
			return nil, err
		}
		if variant == "normalized classes" {
			for l := 0; l < m.NumClasses(); l++ {
				c := m.Class(l)
				if n := vecmath.Norm2(c); n > 0 {
					vecmath.Scale(c, 1/n)
				}
			}
			m.InvalidateAll()
		}
		src := hrand.New(r.ctx.Seed + uint64(len(variant)))
		if err := dp.PrivatizeModel(src, m, sens, params); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{variant, pct(hdc.Evaluate(m, testDim, d.TestY))})
	}
	return t, nil
}
