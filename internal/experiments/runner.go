package experiments

import (
	"fmt"
	"sync"

	"privehd/internal/dataset"
	"privehd/internal/hdc"
)

// encodedSet is a dataset encoded once at MaxDim; sweeps slice prefixes.
type encodedSet struct {
	data    *dataset.Dataset
	encoder hdc.Encoder
	train   [][]float64
	test    [][]float64
}

// levelEncoder returns the encoder as *hdc.LevelEncoder (panics if the set
// was built with the scalar encoding — an internal misuse).
func (e *encodedSet) levelEncoder() *hdc.LevelEncoder {
	return e.encoder.(*hdc.LevelEncoder)
}

// scalarEncoder returns the encoder as *hdc.ScalarEncoder.
func (e *encodedSet) scalarEncoder() *hdc.ScalarEncoder {
	return e.encoder.(*hdc.ScalarEncoder)
}

// Runner caches datasets and their encodings across experiments: encoding
// at D_hv = 10^4 dominates the harness runtime, and every figure can share
// the same encoded corpus without changing results (all are seeded
// identically anyway).
type Runner struct {
	ctx Context

	mu     sync.Mutex
	data   map[string]*dataset.Dataset
	level  map[string]*encodedSet
	scalar map[string]*encodedSet
}

// NewRunner validates the context and returns an empty-cached runner.
func NewRunner(ctx Context) (*Runner, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	return &Runner{
		ctx:    ctx,
		data:   make(map[string]*dataset.Dataset),
		level:  make(map[string]*encodedSet),
		scalar: make(map[string]*encodedSet),
	}, nil
}

// Ctx returns the runner's context.
func (r *Runner) Ctx() Context { return r.ctx }

// Dataset returns (and caches) a standard workload.
func (r *Runner) Dataset(name string) (*dataset.Dataset, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.data[name]; ok {
		return d, nil
	}
	d, err := dataset.ByName(name, r.ctx.Scale)
	if err != nil {
		return nil, err
	}
	r.data[name] = d
	return d, nil
}

// Level returns the dataset encoded with the Eq. 2b level encoder at
// MaxDim, cached.
func (r *Runner) Level(name string) (*encodedSet, error) {
	return r.encoded(name, r.level, func(d *dataset.Dataset) (hdc.Encoder, error) {
		return hdc.NewLevelEncoder(hdc.Config{
			Dim: r.ctx.MaxDim, Features: d.Features, Levels: r.ctx.Levels, Seed: r.ctx.Seed,
		})
	})
}

// Scalar returns the dataset encoded with the Eq. 2a scalar encoder at
// MaxDim, cached. The scalar encoding is used wherever the experiment
// needs the Eq. 10 reconstruction attack.
func (r *Runner) Scalar(name string) (*encodedSet, error) {
	return r.encoded(name, r.scalar, func(d *dataset.Dataset) (hdc.Encoder, error) {
		return hdc.NewScalarEncoder(hdc.Config{
			Dim: r.ctx.MaxDim, Features: d.Features, Levels: r.ctx.Levels, Seed: r.ctx.Seed + 1,
		})
	})
}

func (r *Runner) encoded(name string, cache map[string]*encodedSet, mk func(*dataset.Dataset) (hdc.Encoder, error)) (*encodedSet, error) {
	d, err := r.Dataset(name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := cache[name]; ok {
		return e, nil
	}
	enc, err := mk(d)
	if err != nil {
		return nil, fmt.Errorf("experiments: building encoder for %s: %w", name, err)
	}
	e := &encodedSet{
		data:    d,
		encoder: enc,
		train:   hdc.EncodeBatch(enc, d.TrainX, r.ctx.Workers),
		test:    hdc.EncodeBatch(enc, d.TestX, r.ctx.Workers),
	}
	cache[name] = e
	return e, nil
}
