package experiments

import (
	"fmt"

	"privehd/internal/dp"
	"privehd/internal/hdc"
	"privehd/internal/hrand"
	"privehd/internal/quant"
)

// fig8Epsilons mirrors the per-dataset ε pairs of paper Fig. 8(a)-(c):
// ISOLET needs the loosest budget, FACE tolerates the tightest, MNIST sits
// between.
var fig8Epsilons = map[string][2]float64{
	"isolet-s": {8, 9},
	"face-s":   {0.5, 1},
	"mnist-s":  {1, 2},
}

// Fig8 reproduces the differentially-private training study of paper
// Fig. 8: accuracy vs dimension under the Gaussian mechanism with ternary
// encoding quantization, for two ε values per dataset (a–c), plus the
// FACE data-size sweep (d). The shape to reproduce: accuracy first rises
// with dimension (model capacity) then falls (noise std ∝ √D), yielding an
// interior optimum; larger ε and more data both help.
func Fig8(r *Runner) ([]*Table, error) {
	var tables []*Table
	letters := map[string]string{"isolet-s": "a", "face-s": "b", "mnist-s": "c"}
	for _, name := range []string{"isolet-s", "face-s", "mnist-s"} {
		set, err := r.Level(name)
		if err != nil {
			return nil, err
		}
		eps := fig8Epsilons[name]
		t := &Table{
			ID:    "fig8" + letters[name],
			Title: fmt.Sprintf("DP training accuracy vs dimension on %s (paper Fig. 8%s)", name, letters[name]),
			Note: fmt.Sprintf("Ternary-quantized encodings, Gaussian noise per Eq. 8 with δ=1e-5, ε∈{%g, %g}. "+
				"Paper: interior optimum dimension (e.g. 7,000 for FACE at ε=1; MNIST ε=2 within ~1%% at 5,000 dims).",
				eps[0], eps[1]),
			Columns: []string{"dims", "non-private",
				fmt.Sprintf("eps %g", eps[0]), fmt.Sprintf("eps %g", eps[1])},
		}
		d := set.data
		for _, dim := range r.ctx.Dims {
			trainDim := quant.QuantizeBatch(quant.Ternary{}, sliceDims(set.train, dim))
			testDim := quant.QuantizeBatch(quant.Ternary{}, sliceDims(set.test, dim))
			row := []string{fmt.Sprintf("%d", dim)}
			clean, err := trainEval(trainDim, d.TrainY, testDim, d.TestY, d.Classes, dim)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(clean))
			for _, e := range eps {
				acc, err := dpAccuracy(r, trainDim, d.TrainY, testDim, d.TestY, d.Classes, dim, e)
				if err != nil {
					return nil, err
				}
				row = append(row, pct(acc))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}

	// (d) FACE: accuracy vs training-set size at fixed ε=1 and the
	// mid-sweep dimension.
	set, err := r.Level("face-s")
	if err != nil {
		return nil, err
	}
	d := set.data
	dim := r.ctx.Dims[len(r.ctx.Dims)/2]
	td := &Table{
		ID:    "fig8d",
		Title: fmt.Sprintf("DP accuracy vs training-set size, %s at ε=1, D=%d (paper Fig. 8d)", d.Name, dim),
		Note: "Paper: more training data buries the same noise — class-vector magnitudes grow with " +
			"bundled count while the noise std stays fixed.",
		Columns: []string{"fraction of training data", "accuracy"},
	}
	testDim := quant.QuantizeBatch(quant.Ternary{}, sliceDims(set.test, dim))
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		sub := d.Subset(frac)
		// Reuse cached encodings: Subset keeps prefixes per class, and the
		// interleaved order means the first k·N train rows cover every
		// class evenly — but the mapping is by sample identity, so re-find
		// indices. Simpler and still cheap: encode the subset's rows by
		// index lookup.
		subEnc := make([][]float64, len(sub.TrainX))
		idx := indexByIdentity(d.TrainX, sub.TrainX)
		for i, j := range idx {
			subEnc[i] = set.train[j]
		}
		trainDim := quant.QuantizeBatch(quant.Ternary{}, sliceDims(subEnc, dim))
		acc, err := dpAccuracy(r, trainDim, sub.TrainY, testDim, d.TestY, d.Classes, dim, 1)
		if err != nil {
			return nil, err
		}
		td.Rows = append(td.Rows, []string{fmt.Sprintf("%.1f", frac), pct(acc)})
	}
	tables = append(tables, td)
	return tables, nil
}

// dpAccuracy trains on quantized encodings, privatizes with the Eq. 14
// ternary sensitivity at the given ε (δ=1e-5), and evaluates.
func dpAccuracy(r *Runner, trainEnc [][]float64, trainY []int, testEnc [][]float64, testY []int, classes, dim int, epsilon float64) (float64, error) {
	m, err := hdc.Train(trainEnc, trainY, classes, dim)
	if err != nil {
		return 0, err
	}
	params := dp.Params{Epsilon: epsilon, Delta: 1e-5}
	sens := quant.AnalyticL2Sensitivity(quant.Ternary{}, dim)
	src := hrand.New(r.ctx.Seed ^ uint64(dim)<<16 ^ uint64(epsilon*1024))
	if err := dp.PrivatizeModel(src, m, sens, params); err != nil {
		return 0, err
	}
	return hdc.Evaluate(m, testEnc, testY), nil
}

// indexByIdentity maps each row of sub back to its index in full by slice
// identity (Subset shares the underlying sample slices).
func indexByIdentity(full, sub [][]float64) []int {
	pos := make(map[*float64]int, len(full))
	for i, row := range full {
		if len(row) > 0 {
			pos[&row[0]] = i
		}
	}
	out := make([]int, len(sub))
	for i, row := range sub {
		if len(row) > 0 {
			out[i] = pos[&row[0]]
		}
	}
	return out
}
