package experiments

import (
	"fmt"

	"privehd/internal/quant"
)

// Fig5 reproduces the encoding-quantization trade-off of paper Fig. 5 on
// the speech workload: (a) accuracy vs dimension for bipolar / ternary /
// biased-ternary / 2-bit quantized training (class vectors stay
// full-precision sums of quantized encodings), with the full-precision
// baseline for reference; (b) the Eq. 14 ℓ2 sensitivity of each scheme vs
// dimension, against the Eq. 12 unquantized sensitivity.
func Fig5(r *Runner) ([]*Table, error) {
	set, err := r.Level("isolet-s")
	if err != nil {
		return nil, err
	}
	d := set.data

	acc := &Table{
		ID:    "fig5a",
		Title: "Accuracy vs dimension per encoding quantization (paper Fig. 5a)",
		Note: "Paper at D=10k: bipolar 93.1% vs full-precision baseline ~93.6% (0.25-0.5% gap); " +
			"2-bit at D=1k within ~3% of the full baseline. Shapes: accuracy rises with D; " +
			"quantized tracks the baseline closely at high D.",
		Columns: []string{"dims", "full", "bipolar", "ternary", "ternary-biased", "2bit"},
	}
	sens := &Table{
		ID:    "fig5b",
		Title: "ℓ2 sensitivity vs dimension per scheme (paper Fig. 5b, Eq. 14)",
		Note: "Exact analytic values. Paper at D=10k: bipolar 100, ternary ≈81.6, " +
			"biased ternary ≈70.7 (0.87× of ternary), 2-bit ≈122. Unquantized Eq. 12 for reference.",
		Columns: []string{"dims", "unquantized", "bipolar", "ternary", "ternary-biased", "2bit"},
	}

	schemes := quant.Schemes()
	// Pre-quantize at each dim (quantizers are rank-based per vector, so
	// they must run on the sliced encodings, not slices of quantized
	// MaxDim vectors).
	for _, dim := range r.ctx.Dims {
		trainDim := sliceDims(set.train, dim)
		testDim := sliceDims(set.test, dim)
		baseline, err := trainEval(trainDim, d.TrainY, testDim, d.TestY, d.Classes, dim)
		if err != nil {
			return nil, err
		}
		accRow := []string{fmt.Sprintf("%d", dim), pct(baseline)}
		sensRow := []string{fmt.Sprintf("%d", dim), f2(quant.RawL2Sensitivity(dim, d.Features))}
		for _, q := range schemes {
			qTrain := quant.QuantizeBatch(q, trainDim)
			qTest := quant.QuantizeBatch(q, testDim)
			a, err := trainEval(qTrain, d.TrainY, qTest, d.TestY, d.Classes, dim)
			if err != nil {
				return nil, err
			}
			accRow = append(accRow, pct(a))
			sensRow = append(sensRow, f2(quant.AnalyticL2Sensitivity(q, dim)))
		}
		acc.Rows = append(acc.Rows, accRow)
		sens.Rows = append(sens.Rows, sensRow)
	}
	return []*Table{acc, sens}, nil
}
