package experiments

import (
	"fmt"

	"privehd/internal/hdc"
	"privehd/internal/prune"
)

// Fig4 reproduces the prune-then-retrain study of paper Fig. 4: models
// pruned to {full, 1/10, 1/20} of MaxDim with ℓ_iv ∈ {L, L/2} levels,
// retrained for several epochs. The paper's findings to reproduce: 1–2
// epochs recover most of the lost accuracy, and at low dimension fewer
// levels do slightly better ("hypervectors lose the capacity to embrace
// fine-grained details").
func Fig4(r *Runner) (*Table, error) {
	d, err := r.Dataset("isolet-s")
	if err != nil {
		return nil, err
	}
	const epochs = 6
	fullLevels := r.ctx.Levels
	halfLevels := fullLevels / 2
	if halfLevels < 2 {
		halfLevels = 2
	}
	type variant struct {
		keep   int
		levels int
	}
	variants := []variant{
		{r.ctx.MaxDim, fullLevels},
		{r.ctx.MaxDim / 10, halfLevels},
		{r.ctx.MaxDim / 10, fullLevels},
		{r.ctx.MaxDim / 20, halfLevels},
		{r.ctx.MaxDim / 20, fullLevels},
	}
	t := &Table{
		ID:    "fig4",
		Title: "Retraining recovers pruning loss (paper Fig. 4)",
		Note: "Paper: 1-2 retraining iterations reach maximum accuracy; at lower dimension, " +
			"fewer levels (L50 vs L100) score slightly higher. Columns are accuracy after each epoch.",
		Columns: append([]string{"dims, levels"}, epochCols(epochs)...),
	}
	// Cache encodings per level count (shared across keep variants).
	encCache := map[int]*encodedSet{}
	for _, v := range variants {
		set, ok := encCache[v.levels]
		if !ok {
			enc, err := hdc.NewLevelEncoder(hdc.Config{
				Dim: r.ctx.MaxDim, Features: d.Features, Levels: v.levels, Seed: r.ctx.Seed + uint64(v.levels),
			})
			if err != nil {
				return nil, err
			}
			set = &encodedSet{
				data:    d,
				encoder: enc,
				train:   hdc.EncodeBatch(enc, d.TrainX, r.ctx.Workers),
				test:    hdc.EncodeBatch(enc, d.TestX, r.ctx.Workers),
			}
			encCache[v.levels] = set
		}
		model, err := hdc.Train(set.train, d.TrainY, d.Classes, r.ctx.MaxDim)
		if err != nil {
			return nil, err
		}
		var accs []float64
		if v.keep < r.ctx.MaxDim {
			mask := prune.DiscriminativeMask(model, r.ctx.MaxDim-v.keep)
			prune.PruneModel(model, mask)
			accs = prune.MaskedRetrain(model, mask, set.train, d.TrainY, set.test, d.TestY, epochs)
		} else {
			accs = hdc.Retrain(model, set.train, d.TrainY, set.test, d.TestY, epochs)
		}
		row := []string{fmt.Sprintf("%d, L%d", v.keep, v.levels)}
		for e := 0; e < epochs; e++ {
			if e < len(accs) {
				row = append(row, pct(accs[e]))
			} else {
				row = append(row, pct(accs[len(accs)-1])) // converged early
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func epochCols(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("ep%d", i+1)
	}
	return out
}
