package experiments

import (
	"fmt"

	"privehd/internal/attack"
	"privehd/internal/hdc"
	"privehd/internal/hrand"
	"privehd/internal/prune"
	"privehd/internal/quant"
)

// Fig6Result carries the inference-privacy demo on the image workload.
type Fig6Result struct {
	Table *Table
	// Art shows one digit reconstructed from: the clean encoding, the
	// quantized query, and quantized+masked queries — the paper's image
	// strip.
	Art []string
}

// Fig6 reproduces paper Fig. 6: 1-bit inference quantization plus dimension
// masking against a full-precision model. Accuracy stays near the baseline
// while the reconstructed input's PSNR collapses (paper: 23.6 dB → 13.1 dB,
// accuracy ≥91% with a 5k mask at D=10k).
func Fig6(r *Runner) (*Fig6Result, error) {
	set, err := r.Scalar("mnist-s")
	if err != nil {
		return nil, err
	}
	enc := set.scalarEncoder()
	d := set.data
	dim := r.ctx.MaxDim

	// Cloud model: full precision, never touched.
	model, err := hdc.Train(set.train, d.TrainY, d.Classes, dim)
	if err != nil {
		return nil, err
	}
	baseline := hdc.Evaluate(model, set.test, d.TestY)

	res := &Fig6Result{Table: &Table{
		ID:    "fig6",
		Title: "Inference quantization + masking: accuracy vs reconstruction PSNR (paper Fig. 6)",
		Note: "Paper at D=10k on MNIST: full-precision 93.3%; quantized query 92.8%; " +
			"quantized+5k mask >91% with visibly blurred reconstruction; PSNR 23.6 dB → 13.1 dB.",
		Columns: []string{"query processing", "accuracy", "PSNR (dB)"},
	}}

	masks := []int{0, dim / 2, dim * 9 / 10}
	variants := []struct {
		name     string
		quantize bool
		maskDims int
	}{
		{"full precision (no defence)", false, 0},
		{"quantized", true, masks[0]},
		{fmt.Sprintf("quantized + %d mask", masks[1]), true, masks[1]},
		{fmt.Sprintf("quantized + %d mask", masks[2]), true, masks[2]},
	}

	demoIdx := 0 // first test digit for the image strip
	truth := levelTruth(enc, d.TestX[demoIdx])
	for _, v := range variants {
		queries := set.test
		if v.quantize {
			queries = quant.QuantizeBatch(quant.Bipolar{}, queries)
		}
		var mask *prune.Mask
		if v.maskDims > 0 {
			src := hrand.New(r.ctx.Seed + uint64(v.maskDims))
			mask = prune.RandomMask(dim, v.maskDims, src.SampleK)
			queries = prune.MaskBatch(mask, queries)
		}
		accuracy := hdc.Evaluate(model, queries, d.TestY)
		if !v.quantize {
			accuracy = baseline
		}
		recon, err := attack.DecodeScaled(enc, queries[demoIdx])
		if err != nil {
			return nil, err
		}
		m := attack.Measure(truth, recon)
		res.Table.Rows = append(res.Table.Rows, []string{v.name, pct(accuracy), f2(m.PSNR)})
		if d.ImageWidth > 0 {
			res.Art = append(res.Art, fmt.Sprintf("%s (PSNR %.1f dB):\n%s",
				v.name, m.PSNR, attack.RenderASCII(recon, d.ImageWidth)))
		}
	}
	return res, nil
}
