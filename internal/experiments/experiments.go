// Package experiments regenerates every table and figure of the Prive-HD
// evaluation (see DESIGN.md §4 for the experiment index). Each Fig*/Table*
// function returns one or more Tables of the same rows/series the paper
// reports; cmd/privehd-experiments renders them into EXPERIMENTS.md.
//
// Determinism: every experiment is seeded; two runs with the same Context
// produce identical tables.
package experiments

import (
	"fmt"
	"strings"

	"privehd/internal/dataset"
	"privehd/internal/hdc"
)

// Context scopes an experiment run.
type Context struct {
	// Scale selects dataset sizes (dataset.Small for smoke tests and
	// benchmarks, dataset.Full for the EXPERIMENTS.md run).
	Scale dataset.Scale
	// MaxDim is the largest hypervector dimensionality (the paper's 10^4;
	// smoke tests shrink it). Sweeps slice prefixes of MaxDim encodings,
	// which is statistically equivalent to re-encoding at the smaller
	// dimension because base hypervectors are i.i.d. per coordinate.
	MaxDim int
	// Dims are the sweep points (ascending, each ≤ MaxDim).
	Dims []int
	// Levels is ℓ_iv for the level encoders (the paper's L100 default).
	Levels int
	// Workers caps encoding parallelism; 0 = GOMAXPROCS.
	Workers int
	// Seed drives every random choice in the run.
	Seed uint64
}

// DefaultContext returns the full-scale configuration used to produce
// EXPERIMENTS.md.
func DefaultContext() Context {
	return Context{
		Scale:  dataset.Full,
		MaxDim: 10000,
		Dims:   []int{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000},
		Levels: 100,
		Seed:   0x9D,
	}
}

// SmokeContext returns a reduced configuration for tests and benchmarks.
func SmokeContext() Context {
	return Context{
		Scale:  dataset.Small,
		MaxDim: 2000,
		Dims:   []int{500, 1000, 2000},
		Levels: 20,
		Seed:   0x9D,
	}
}

// Validate reports whether the context is runnable.
func (c Context) Validate() error {
	if c.MaxDim <= 0 {
		return fmt.Errorf("experiments: MaxDim must be positive")
	}
	if len(c.Dims) == 0 {
		return fmt.Errorf("experiments: Dims must be non-empty")
	}
	prev := 0
	for _, d := range c.Dims {
		if d <= prev || d > c.MaxDim {
			return fmt.Errorf("experiments: Dims must be ascending and ≤ MaxDim, got %v", c.Dims)
		}
		prev = d
	}
	if c.Levels < 2 {
		return fmt.Errorf("experiments: Levels must be ≥ 2")
	}
	return nil
}

// Table is a rendered experiment result.
type Table struct {
	// ID matches the paper artifact ("fig5a", "tableI", ...).
	ID string
	// Title describes the table.
	Title string
	// Note carries per-run context (paper expectation, substitutions).
	Note string
	// Columns are the header names.
	Columns []string
	// Rows are formatted cells.
	Rows [][]string
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Note)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (cells never contain quotes in
// this package).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return b.String()
}

// sliceDims returns prefix views of each encoding at the given dimension.
func sliceDims(encoded [][]float64, dim int) [][]float64 {
	out := make([][]float64, len(encoded))
	for i, h := range encoded {
		out[i] = h[:dim:dim]
	}
	return out
}

// pct formats a fraction as a percentage with one decimal.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// f2 formats a float with up to two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// sci formats in compact scientific notation.
func sci(x float64) string { return fmt.Sprintf("%.3g", x) }

// trainEval trains a one-shot model on (possibly quantized) encodings and
// returns test accuracy.
func trainEval(trainEnc [][]float64, trainY []int, testEnc [][]float64, testY []int, classes, dim int) (float64, error) {
	m, err := hdc.Train(trainEnc, trainY, classes, dim)
	if err != nil {
		return 0, err
	}
	return hdc.Evaluate(m, testEnc, testY), nil
}
