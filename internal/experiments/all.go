package experiments

import "fmt"

// Suite is the full set of regenerated artifacts.
type Suite struct {
	Tables []*Table
	// Art holds the ASCII image strips from Fig. 2 and Fig. 6.
	Art []string
}

// All runs every experiment in paper order and collects the results.
// Failures abort the run: a partial EXPERIMENTS.md would silently
// misrepresent coverage.
func All(r *Runner) (*Suite, error) {
	s := &Suite{}

	fig2, err := Fig2(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2: %w", err)
	}
	s.Tables = append(s.Tables, fig2.Table)
	s.Art = append(s.Art, fig2.Art...)

	fig3, err := Fig3(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3: %w", err)
	}
	s.Tables = append(s.Tables, fig3...)

	fig4, err := Fig4(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4: %w", err)
	}
	s.Tables = append(s.Tables, fig4)

	fig5, err := Fig5(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5: %w", err)
	}
	s.Tables = append(s.Tables, fig5...)

	fig6, err := Fig6(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6: %w", err)
	}
	s.Tables = append(s.Tables, fig6.Table)
	s.Art = append(s.Art, fig6.Art...)

	fig8, err := Fig8(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig8: %w", err)
	}
	s.Tables = append(s.Tables, fig8...)

	fig9, err := Fig9(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig9: %w", err)
	}
	s.Tables = append(s.Tables, fig9...)

	eq15, err := Eq15(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: eq15: %w", err)
	}
	s.Tables = append(s.Tables, eq15)

	am, err := ApproxMajority(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: approx-majority: %w", err)
	}
	s.Tables = append(s.Tables, am)

	tI, err := TableI(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: tableI: %w", err)
	}
	s.Tables = append(s.Tables, tI)

	inv, err := ModelInversion(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: model-inversion: %w", err)
	}
	s.Tables = append(s.Tables, inv.Table)
	s.Art = append(s.Art, inv.Art...)

	abl, err := Ablations(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablations: %w", err)
	}
	s.Tables = append(s.Tables, abl...)

	s.Tables = append(s.Tables, Verify(s, r.ctx))
	return s, nil
}

// Find returns the table with the given ID, or nil.
func (s *Suite) Find(id string) *Table {
	for _, t := range s.Tables {
		if t.ID == id {
			return t
		}
	}
	return nil
}
