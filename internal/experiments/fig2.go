package experiments

import (
	"fmt"

	"privehd/internal/attack"
	"privehd/internal/hdc"
)

// Fig2Result carries the reconstruction demo: metrics per digit plus the
// rendered original/reconstruction pairs.
type Fig2Result struct {
	Table *Table
	// Art holds side-by-side ASCII renderings (original | reconstruction),
	// one per sampled digit — the terminal analogue of the paper's image
	// grid.
	Art []string
}

// Fig2 reproduces the paper's Fig. 2: handwritten digits reconstructed from
// their (un-obfuscated) encoded hypervectors via Eq. 10. The measured PSNR
// quantifies the §III-A privacy breach: with no defence, the encoding is
// effectively reversible.
func Fig2(r *Runner) (*Fig2Result, error) {
	set, err := r.Scalar("mnist-s")
	if err != nil {
		return nil, err
	}
	enc := set.scalarEncoder()
	d := set.data
	res := &Fig2Result{Table: &Table{
		ID:    "fig2",
		Title: "Input reconstruction from clean encodings (paper Fig. 2)",
		Note: "Paper: reconstructed MNIST digits are visually identical to the originals; " +
			"typical encodings reconstruct at ≈23.6 dB PSNR (quoted in Fig. 6).",
		Columns: []string{"digit", "MSE", "PSNR (dB)"},
	}}

	// One digit per class, first occurrence in the test split.
	seen := make(map[int]bool)
	for i, x := range d.TestX {
		label := d.TestY[i]
		if seen[label] {
			continue
		}
		seen[label] = true
		truth := levelTruth(enc, x)
		recon, err := attack.DecodeScaled(enc, set.test[i])
		if err != nil {
			return nil, err
		}
		m := attack.Measure(truth, recon)
		res.Table.Rows = append(res.Table.Rows, []string{
			fmt.Sprintf("%d", label), sci(m.MSE), f2(m.PSNR),
		})
		if len(res.Art) < 3 && d.ImageWidth > 0 {
			orig := attack.RenderASCII(truth, d.ImageWidth)
			rec := attack.RenderASCII(recon, d.ImageWidth)
			res.Art = append(res.Art, fmt.Sprintf("digit %d (original | reconstructed):\n%s",
				label, attack.SideBySide(orig, rec, " | ")))
		}
		if len(seen) == d.Classes {
			break
		}
	}
	return res, nil
}

// levelTruth maps raw features onto the level values the encoder actually
// embedded — the ground truth Eq. 10 can recover.
func levelTruth(enc *hdc.ScalarEncoder, x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = hdc.LevelValue(hdc.LevelIndex(v, enc.Levels()), enc.Levels())
	}
	return out
}
