// Package encslice is the bit-sliced encoding engine: it evaluates the two
// paper encodings (Eq. 2a/2b) entirely in the bit domain, replacing the
// per-feature float64 multiply-add over all D dimensions with carry-save-
// adder (Harley–Seal-style) popcount accumulation over packed bit-planes —
// the software form of the paper's FPGA mapping, where every Eq. 2b partial
// product is one XNOR and the accumulation is an adder tree (Fig. 7).
//
// # Representation
//
// Base and level hypervectors are ±1 bipolar vectors packed one bit per
// dimension (bit=1 ⇔ +1, the bitvec convention). The engine stores them
// word-major ("transposed"): word w of every base vector is contiguous, so
// the per-word kernels stream one 64-dimension column of the whole item
// memory with unit stride, and a multi-query batch reuses each column while
// it is hot in cache.
//
// # Counting
//
// For 64 dimensions at a time the engine counts, per bit lane, how many of
// the F partial-product planes have the bit set. Planes are consumed eight
// at a time through a CSA tree into one-weight/two-weight/four-weight
// bit-slices; each tree emits a single eight-weight carry word that ripples
// into a small stack of higher-order counter planes. After all planes are
// absorbed, lane j's count is simply the binary number assembled from the
// slices:
//
//	cnt(j) = ones_j + 2·twos_j + 4·fours_j + 8·eights_j + 16·Σ_l hi[l]_j·2^l
//
// Every addition is a 64-lane bitwise operation, so the amortized cost is a
// handful of word ops per feature per 64 dimensions — versus 64 float64
// multiply-adds on the float path.
//
// # The two encodings
//
// Level (Eq. 2b): plane k is L_{v_k} ⊙ B_k (XNOR of the packed words) and
// h[j] = 2·cnt[j] − F exactly — identical to the reference float loop,
// which only ever adds ±1 terms and is therefore exact integer arithmetic
// in float64.
//
// Scalar (Eq. 2a): h[j] = Σ_k f(v_k)·B_k[j] with f(v) = lv/(ℓ−1) for the
// integer level index lv. The engine groups features by the binary digits
// of lv — group p holds the features whose level index has bit p set — and
// CSA-counts each group's base planes:
//
//	(ℓ−1)·h[j] = Σ_p 2^p · (2·cnt_p[j] − |S_p|)
//
// The numerator is exact integer math (Σ_k lv_k·(±1), bounded well below
// 2^53), finished by a single float64 division by ℓ−1. Grouping by digit
// needs only ⌈log2 ℓ⌉ counting passes instead of one per distinct level
// value, while computing the same Σ_f f·(2·cnt_f[j] − |S_f|) sum.
//
// # Fused quantization
//
// Serving's Predict path needs only the quantized −2…+1 query, so
// EncodePackedInto derives it straight from the integer numerators without
// materializing a float hypervector: the quantizers' sign and rank rules
// commute with the strictly monotone map n ↦ n/(ℓ−1) (distinct integers in
// range never collide after the division), so ranking the integers with the
// same tie-by-index order produces output bit-identical to running
// quant.QuantizeInto on the float encoding.
//
// Engines are immutable after construction and safe for concurrent use;
// per-call working sets come from an internal sync.Pool, so the encoding
// hot paths allocate nothing.
package encslice

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Scheme selects the fused quantization rule of EncodePackedInto. The
// values mirror the quant package's paper schemes; callers map their
// quantizer onto a Scheme (SchemeNone disables the fused path).
type Scheme int

const (
	// SchemeNone marks "no fused quantization available".
	SchemeNone Scheme = iota
	// SchemeBipolar is sign quantization onto {−1,+1} (zero maps to +1).
	SchemeBipolar
	// SchemeTernary zeroes the ⌊D/3⌋ smallest-magnitude dimensions.
	SchemeTernary
	// SchemeBiasedTernary zeroes the ⌊D/2⌋ smallest-magnitude dimensions.
	SchemeBiasedTernary
	// SchemeTwoBit maps value-rank quartiles onto {−2,−1,0,+1}.
	SchemeTwoBit
)

// Engine limits: level indices travel as uint16, counts and scalar
// numerators as int32, and the high counter stack is a fixed array.
const (
	maxLevels   = 1 << 16
	maxFeatures = 1 << 20
	hiPlanes    = 16 // features < 2^20 ⇒ at most 16 planes above eights
)

// Engine encodes queries for one fixed item (and, in level mode, level)
// memory. It is immutable after construction and safe for concurrent use.
type Engine struct {
	dim      int
	features int
	levels   int
	words    int // ⌈dim/64⌉

	scalar  bool
	denom   float64 // ℓ−1 as float64; scalar-mode divisor
	maxBits int     // scalar: bits.Len(ℓ−1), number of digit groups
	hi      int     // high counter planes needed for counts ≤ features

	// baseT[w*features+k] is word w of base hypervector k; lvlT (level mode
	// only) is the same layout over the ℓ level hypervectors. Tail bits
	// beyond dim are never extracted, so their content is irrelevant.
	baseT []uint64
	lvlT  []uint64

	scratch sync.Pool
}

// scratch is one call's pooled working set.
type scratch struct {
	v     []int32  // per-dimension integer numerators
	keys  []uint32 // radix-rank sort keys
	idx   []int    // rank buffer for the fused quantizers
	tmp   []int    // radix-rank scatter buffer
	lists []uint16 // scalar: concatenated digit-group feature lists
	off   []int    // scalar: maxBits+1 offsets into lists
}

// planes is the per-word CSA accumulator state: lane j's plane count is the
// binary number ones_j | twos_j<<1 | fours_j<<2 | eights_j<<3 | hi[l]_j<<(4+l).
type planes struct {
	ones, twos, fours, eights uint64
	hi                        [hiPlanes]uint64
}

// counts reads the first nd lane counts off the counter slices into dst;
// hiN is the engine's high-plane depth. This is the single read-off used
// by every kernel, so the counter representation is interpreted in exactly
// one place.
func (pl *planes) counts(dst *[64]int32, nd, hiN int) {
	for b := 0; b < nd; b++ {
		dst[b] = int32(pl.ones>>b&1) |
			int32(pl.twos>>b&1)<<1 |
			int32(pl.fours>>b&1)<<2 |
			int32(pl.eights>>b&1)<<3
	}
	for l := 0; l < hiN; l++ {
		w := pl.hi[l]
		for b := 0; b < nd; b++ {
			dst[b] |= int32(w>>b&1) << (4 + l)
		}
	}
}

// NewLevel builds an Eq. 2b engine from packed word slices: base[k] and
// level[i] are the bitvec words (64 dims per word, bit=1 ⇔ +1) of base
// hypervector k and level hypervector i. The words are copied into the
// engine's transposed layout; callers may mutate theirs afterwards.
func NewLevel(dim int, base, level [][]uint64) (*Engine, error) {
	e, err := newEngine(dim, len(base), len(level), false)
	if err != nil {
		return nil, err
	}
	if err := e.fill(e.baseT, base, "base"); err != nil {
		return nil, err
	}
	if err := e.fill(e.lvlT, level, "level"); err != nil {
		return nil, err
	}
	return e, nil
}

// NewScalar builds an Eq. 2a engine over the given packed base vectors and
// quantization level count.
func NewScalar(dim, levels int, base [][]uint64) (*Engine, error) {
	e, err := newEngine(dim, len(base), levels, true)
	if err != nil {
		return nil, err
	}
	if err := e.fill(e.baseT, base, "base"); err != nil {
		return nil, err
	}
	return e, nil
}

func newEngine(dim, features, levels int, scalar bool) (*Engine, error) {
	switch {
	case dim <= 0:
		return nil, fmt.Errorf("encslice: dim must be positive, got %d", dim)
	case features <= 0:
		return nil, fmt.Errorf("encslice: need at least one base vector")
	case features >= maxFeatures:
		return nil, fmt.Errorf("encslice: %d features exceeds the engine limit %d", features, maxFeatures)
	case levels < 2:
		return nil, fmt.Errorf("encslice: need at least 2 levels, got %d", levels)
	case levels > maxLevels:
		return nil, fmt.Errorf("encslice: %d levels exceeds the engine limit %d", levels, maxLevels)
	}
	if scalar && features > math.MaxInt32/(levels-1) {
		// The scalar numerator Σ lv_k·(±1) must fit int32.
		return nil, fmt.Errorf("encslice: features×(levels-1) = %d×%d overflows the integer numerator", features, levels-1)
	}
	if scalar && features > maxLevels {
		// The scalar digit-group lists index features as uint16.
		return nil, fmt.Errorf("encslice: %d features exceeds the scalar-mode limit %d", features, maxLevels)
	}
	hi := bits.Len(uint(features)) - 4
	if hi < 0 {
		hi = 0
	}
	e := &Engine{
		dim:      dim,
		features: features,
		levels:   levels,
		words:    (dim + 63) / 64,
		scalar:   scalar,
		denom:    float64(levels - 1),
		maxBits:  bits.Len(uint(levels - 1)),
		hi:       hi,
	}
	e.baseT = make([]uint64, e.words*features)
	if !scalar {
		e.lvlT = make([]uint64, e.words*levels)
	}
	return e, nil
}

// fill transposes packed vectors into dst's word-major layout.
func (e *Engine) fill(dst []uint64, vecs [][]uint64, what string) error {
	n := len(vecs)
	for i, v := range vecs {
		if len(v) != e.words {
			return fmt.Errorf("encslice: %s vector %d has %d words, want %d", what, i, len(v), e.words)
		}
		for w, word := range v {
			dst[w*n+i] = word
		}
	}
	return nil
}

// Dim returns the hypervector dimensionality D_hv.
func (e *Engine) Dim() int { return e.dim }

// Features returns the input dimensionality D_iv.
func (e *Engine) Features() int { return e.features }

// Levels returns the quantization level count ℓ_iv.
func (e *Engine) Levels() int { return e.levels }

func (e *Engine) get() *scratch {
	if s, ok := e.scratch.Get().(*scratch); ok {
		return s
	}
	s := &scratch{
		v:    make([]int32, e.dim),
		keys: make([]uint32, e.dim),
		idx:  make([]int, e.dim),
		tmp:  make([]int, e.dim),
	}
	if e.scalar {
		s.lists = make([]uint16, e.features*e.maxBits)
		s.off = make([]int, e.maxBits+1)
	}
	return s
}

func (e *Engine) checkLvi(lvi []uint16) {
	if len(lvi) != e.features {
		panic(fmt.Sprintf("encslice: got %d level indices, engine has %d features", len(lvi), e.features))
	}
}

// EncodeInto writes the encoding determined by the per-feature level
// indices into h (length Dim). Level indices must be < Levels; out-of-range
// indices panic. The result is exact: bit-identical to the reference Eq. 2b
// float loop, and equal to the exactly-evaluated Eq. 2a sum (a single
// float64 division of the integer numerator by ℓ−1) in scalar mode.
func (e *Engine) EncodeInto(lvi []uint16, h []float64) {
	e.checkLvi(lvi)
	if len(h) != e.dim {
		panic(fmt.Sprintf("encslice: EncodeInto buffer has dim %d, want %d", len(h), e.dim))
	}
	s := e.get()
	e.countsInto(lvi, s)
	if e.scalar {
		for j, n := range s.v {
			h[j] = float64(n) / e.denom
		}
	} else {
		for j, n := range s.v {
			h[j] = float64(n)
		}
	}
	e.scratch.Put(s)
}

// EncodeBatchInto encodes `rows` queries at once: lvi holds rows×Features
// level indices (row-major) and h receives rows×Dim encodings (row-major).
// In level mode the kernel walks the transposed item memory word-column by
// word-column with the rows innermost, so each 64-dimension column of every
// base vector is loaded once per batch instead of once per query. Scalar
// rows are encoded one at a time (their digit groups differ per row, so
// there is no shared pass to amortize).
func (e *Engine) EncodeBatchInto(lvi []uint16, rows int, h []float64) {
	if rows <= 0 {
		return
	}
	if len(lvi) != rows*e.features {
		panic(fmt.Sprintf("encslice: batch has %d level indices, want %d×%d", len(lvi), rows, e.features))
	}
	if len(h) != rows*e.dim {
		panic(fmt.Sprintf("encslice: batch buffer has %d values, want %d×%d", len(h), rows, e.dim))
	}
	if e.scalar {
		for r := 0; r < rows; r++ {
			e.EncodeInto(lvi[r*e.features:(r+1)*e.features], h[r*e.dim:(r+1)*e.dim])
		}
		return
	}
	F, L, dim := e.features, e.levels, e.dim
	for w := 0; w < e.words; w++ {
		bw := e.baseT[w*F : w*F+F]
		lw := e.lvlT[w*L : w*L+L]
		off := w * 64
		nd := dim - off
		if nd > 64 {
			nd = 64
		}
		var cnt [64]int32
		for r := 0; r < rows; r++ {
			pl := accumXnor(bw, lw, lvi[r*F:(r+1)*F])
			pl.counts(&cnt, nd, e.hi)
			row := h[r*dim+off:]
			for b := 0; b < nd; b++ {
				row[b] = float64(2*cnt[b] - int32(F))
			}
		}
	}
}

// EncodePackedInto fuses encode and quantize: it derives the packed −2…+1
// query for the given scheme straight from the integer counts, never
// materializing the float encoding — the Predict hot path's form. Output is
// bit-identical to encoding with EncodeInto and quantizing the float result
// with the corresponding quant scheme.
func (e *Engine) EncodePackedInto(lvi []uint16, scheme Scheme, dst []int8) {
	e.checkLvi(lvi)
	if len(dst) != e.dim {
		panic(fmt.Sprintf("encslice: EncodePackedInto buffer has dim %d, want %d", len(dst), e.dim))
	}
	s := e.get()
	e.countsInto(lvi, s)
	quantizeInts(s, scheme, dst)
	e.scratch.Put(s)
}

// countsInto fills s.v with the per-dimension integer numerators:
// 2·cnt − F in level mode, Σ_k lv_k·(±1) in scalar mode.
func (e *Engine) countsInto(lvi []uint16, s *scratch) {
	if e.scalar {
		e.countsScalar(lvi, s)
	} else {
		e.countsLevel(lvi, s.v)
	}
}

func (e *Engine) countsLevel(lvi []uint16, v []int32) {
	F, L, dim := e.features, e.levels, e.dim
	var cnt [64]int32
	for w := 0; w < e.words; w++ {
		pl := accumXnor(e.baseT[w*F:w*F+F], e.lvlT[w*L:w*L+L], lvi)
		off := w * 64
		nd := dim - off
		if nd > 64 {
			nd = 64
		}
		pl.counts(&cnt, nd, e.hi)
		for b := 0; b < nd; b++ {
			v[off+b] = 2*cnt[b] - int32(F)
		}
	}
}

func (e *Engine) countsScalar(lvi []uint16, s *scratch) {
	F, dim, mb := e.features, e.dim, e.maxBits
	// Partition features into digit groups once per query (shared by every
	// word column): group p lists the features whose level index has bit p
	// set. Level-0 features have no set bits and — like the reference
	// loop's `if f == 0 continue` — cost nothing anywhere below.
	var m [maxLevelBits]int
	for _, lv := range lvi {
		for p := 0; p < mb; p++ {
			m[p] += int(lv >> p & 1)
		}
	}
	s.off[0] = 0
	var cursor [maxLevelBits]int
	for p := 0; p < mb; p++ {
		cursor[p] = s.off[p]
		s.off[p+1] = s.off[p] + m[p]
	}
	for k, lv := range lvi {
		for p := 0; p < mb; p++ {
			if lv>>p&1 == 1 {
				s.lists[cursor[p]] = uint16(k)
				cursor[p]++
			}
		}
	}
	for w := 0; w < e.words; w++ {
		bw := e.baseT[w*F : w*F+F]
		off := w * 64
		nd := dim - off
		if nd > 64 {
			nd = 64
		}
		var n, cnt [64]int32
		for p := 0; p < mb; p++ {
			list := s.lists[s.off[p]:s.off[p+1]]
			if len(list) == 0 {
				continue
			}
			pl := accumList(bw, list)
			pl.counts(&cnt, nd, e.hi)
			mp := int32(len(list))
			for b := 0; b < nd; b++ {
				n[b] += (2*cnt[b] - mp) << p
			}
		}
		copy(s.v[off:off+nd], n[:nd])
	}
}

// maxLevelBits bounds maxBits: levels ≤ 2^16 ⇒ level indices have ≤ 16 bits.
const maxLevelBits = 16

// accumXnor absorbs the F planes ^(lw[lvi[k]] ^ bw[k]) — the packed Eq. 2b
// partial products over one 64-dimension word column — into CSA counter
// slices. Planes are consumed eight at a time: a carry-save tree compresses
// them into the ones/twos/fours slices and one eight-weight carry that
// ripples into the high counter stack; leftovers ripple in individually.
func accumXnor(bw, lw []uint64, lvi []uint16) (pl planes) {
	F := len(bw)
	k := 0
	for ; k+8 <= F; k += 8 {
		x0 := ^(lw[lvi[k]] ^ bw[k])
		x1 := ^(lw[lvi[k+1]] ^ bw[k+1])
		x2 := ^(lw[lvi[k+2]] ^ bw[k+2])
		x3 := ^(lw[lvi[k+3]] ^ bw[k+3])
		x4 := ^(lw[lvi[k+4]] ^ bw[k+4])
		x5 := ^(lw[lvi[k+5]] ^ bw[k+5])
		x6 := ^(lw[lvi[k+6]] ^ bw[k+6])
		x7 := ^(lw[lvi[k+7]] ^ bw[k+7])
		pl.add8(x0, x1, x2, x3, x4, x5, x6, x7)
	}
	for ; k < F; k++ {
		pl.add1(^(lw[lvi[k]] ^ bw[k]))
	}
	return pl
}

// accumList is accumXnor for scalar digit groups: the planes are the base
// vectors themselves, selected by the group's feature list.
func accumList(bw []uint64, list []uint16) (pl planes) {
	i := 0
	for ; i+8 <= len(list); i += 8 {
		pl.add8(
			bw[list[i]], bw[list[i+1]], bw[list[i+2]], bw[list[i+3]],
			bw[list[i+4]], bw[list[i+5]], bw[list[i+6]], bw[list[i+7]])
	}
	for ; i < len(list); i++ {
		pl.add1(bw[list[i]])
	}
	return pl
}

// add8 absorbs eight planes through a carry-save adder tree: three CSA
// layers compress them against the running ones/twos/fours slices, emitting
// one eight-weight carry word that ripples into eights and the high stack.
// Each CSA is sum = a⊕b⊕c, carry = maj(a,b,c), evaluated lane-wise over 64
// dimensions at once.
func (pl *planes) add8(x0, x1, x2, x3, x4, x5, x6, x7 uint64) {
	u := pl.ones ^ x0
	t0 := (pl.ones & x0) | (u & x1)
	pl.ones = u ^ x1
	u = pl.ones ^ x2
	t1 := (pl.ones & x2) | (u & x3)
	pl.ones = u ^ x3
	u = pl.twos ^ t0
	f0 := (pl.twos & t0) | (u & t1)
	pl.twos = u ^ t1

	u = pl.ones ^ x4
	t0 = (pl.ones & x4) | (u & x5)
	pl.ones = u ^ x5
	u = pl.ones ^ x6
	t1 = (pl.ones & x6) | (u & x7)
	pl.ones = u ^ x7
	u = pl.twos ^ t0
	f1 := (pl.twos & t0) | (u & t1)
	pl.twos = u ^ t1

	u = pl.fours ^ f0
	e0 := (pl.fours & f0) | (u & f1)
	pl.fours = u ^ f1

	carry := pl.eights & e0
	pl.eights ^= e0
	for l := 0; carry != 0; l++ {
		pl.hi[l], carry = pl.hi[l]^carry, pl.hi[l]&carry
	}
}

// add1 absorbs a single plane by rippling it up the counter slices.
func (pl *planes) add1(x uint64) {
	pl.ones, x = pl.ones^x, pl.ones&x
	pl.twos, x = pl.twos^x, pl.twos&x
	pl.fours, x = pl.fours^x, pl.fours&x
	pl.eights, x = pl.eights^x, pl.eights&x
	for l := 0; x != 0; l++ {
		pl.hi[l], x = pl.hi[l]^x, pl.hi[l]&x
	}
}

// quantizeInts maps the integer numerators onto the scheme's packed
// alphabet, mirroring quant.QuantizeInto on the float encoding exactly: the
// numerator-to-float map is strictly monotone (and zero-preserving), so
// sign tests and rank orders — including the tie-by-index rule — coincide.
func quantizeInts(s *scratch, scheme Scheme, dst []int8) {
	v := s.v
	switch scheme {
	case SchemeBipolar:
		for j, n := range v {
			if n >= 0 {
				dst[j] = 1
			} else {
				dst[j] = -1
			}
		}
	case SchemeTernary, SchemeBiasedTernary:
		frac := 1.0 / 3.0
		if scheme == SchemeBiasedTernary {
			frac = 0.5
		}
		// Same expression as quant.ternaryQuantizeInto's zero count, so the
		// split index matches bit for bit.
		nz := int(frac * float64(len(v)))
		idx := s.rankInts(true)
		for r, i := range idx {
			x := v[i]
			switch {
			case r < nz || x == 0:
				dst[i] = 0
			case x > 0:
				dst[i] = 1
			default:
				dst[i] = -1
			}
		}
	case SchemeTwoBit:
		idx := s.rankInts(false)
		n := len(v)
		symbols := [4]int8{-2, -1, 0, 1}
		for r, i := range idx {
			dst[i] = symbols[4*r/n]
		}
	default:
		panic(fmt.Sprintf("encslice: unknown quantization scheme %d", scheme))
	}
}

// radixBits is the LSD radix-rank digit width: 2^11 buckets keep the
// histogram small while one pass covers the whole key range of a level-mode
// encoding (|2·cnt − F| ≤ F).
const radixBits = 11

// rankInts orders the numerators ascending — by |v| when byAbs, by value
// otherwise — with ties broken by index, and returns the index permutation.
// This is the same total order vecmath.AbsRankInto/RankInto impose on the
// float encoding, computed by a stable LSD radix sort instead of a
// comparison sort: keys are rebased to [0, max−min] so a level-mode query
// sorts in a single counting pass, and stability preserves the ascending
// index order within equal keys.
func (s *scratch) rankInts(byAbs bool) []int {
	v, keys := s.v, s.keys
	var maxKey uint32
	if byAbs {
		for j, x := range v {
			if x < 0 {
				x = -x
			}
			k := uint32(x)
			keys[j] = k
			if k > maxKey {
				maxKey = k
			}
		}
	} else {
		minV := v[0]
		for _, x := range v {
			if x < minV {
				minV = x
			}
		}
		for j, x := range v {
			k := uint32(x - minV)
			keys[j] = k
			if k > maxKey {
				maxKey = k
			}
		}
	}
	idx, tmp := s.idx, s.tmp
	for i := range idx {
		idx[i] = i
	}
	var count [1 << radixBits]int32
	for shift := 0; shift == 0 || maxKey>>shift > 0; shift += radixBits {
		const mask = 1<<radixBits - 1
		// On the most significant pass digits beyond the max are absent;
		// earlier passes can see any digit.
		hi := uint32(mask) + 1
		if top := maxKey >> shift; top < mask {
			hi = top + 1
		}
		for d := uint32(0); d < hi; d++ {
			count[d] = 0
		}
		for _, i := range idx {
			count[keys[i]>>shift&mask]++
		}
		var sum int32
		for d := uint32(0); d < hi; d++ {
			count[d], sum = sum, sum+count[d]
		}
		for _, i := range idx {
			d := keys[i] >> shift & mask
			tmp[count[d]] = i
			count[d]++
		}
		idx, tmp = tmp, idx
	}
	s.idx, s.tmp = idx, tmp
	return idx
}
