package encslice_test

import (
	"math/rand"
	"testing"

	"privehd/internal/bitvec"
	"privehd/internal/encslice"
	"privehd/internal/intscore"
	"privehd/internal/quant"
)

// genVectors returns n random packed ±1 vectors of the given dimension and
// their word slices.
func genVectors(rng *rand.Rand, n, dim int) ([]*bitvec.Vector, [][]uint64) {
	vecs := make([]*bitvec.Vector, n)
	words := make([][]uint64, n)
	for i := range vecs {
		v := bitvec.New(dim)
		for j := 0; j < dim; j++ {
			if rng.Intn(2) == 1 {
				v.Set(j, true)
			}
		}
		vecs[i] = v
		words[i] = v.Words()
	}
	return vecs, words
}

func genIndices(rng *rand.Rand, features, levels int) []uint16 {
	lvi := make([]uint16, features)
	for k := range lvi {
		lvi[k] = uint16(rng.Intn(levels))
	}
	return lvi
}

// refLevel is the reference Eq. 2b float loop: h[j] = Σ_k L_{v_k}[j]·B_k[j],
// accumulated term by term as the pre-engine encoder did. Every term is ±1,
// so the float64 accumulation is exact integer arithmetic.
func refLevel(base, lvl []*bitvec.Vector, lvi []uint16, dim int) []float64 {
	h := make([]float64, dim)
	for k, li := range lvi {
		l, b := lvl[li], base[k]
		for j := 0; j < dim; j++ {
			h[j] += l.Sign(j) * b.Sign(j)
		}
	}
	return h
}

// refScalar is the exactly-evaluated Eq. 2a reference: the integer numerator
// Σ_k lv_k·B_k[j] accumulated term by term (exact — all partial sums are
// small integers), finished by one division by ℓ−1.
func refScalar(base []*bitvec.Vector, lvi []uint16, dim, levels int) []float64 {
	h := make([]float64, dim)
	for k, li := range lvi {
		lv := float64(li)
		if lv == 0 {
			continue
		}
		b := base[k]
		for j := 0; j < dim; j++ {
			h[j] += lv * b.Sign(j)
		}
	}
	d := float64(levels - 1)
	for j := range h {
		h[j] /= d
	}
	return h
}

var geometries = []struct {
	dim, features, levels int
}{
	{1, 1, 2},
	{63, 7, 2},
	{64, 8, 3},
	{65, 16, 4},
	{127, 5, 100},
	{128, 31, 7},
	{130, 33, 64},
	{320, 40, 101},
	{1000, 17, 5},
}

func TestLevelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range geometries {
		base, baseW := genVectors(rng, g.features, g.dim)
		lvl, lvlW := genVectors(rng, g.levels, g.dim)
		e, err := encslice.NewLevel(g.dim, baseW, lvlW)
		if err != nil {
			t.Fatalf("%+v: %v", g, err)
		}
		for trial := 0; trial < 4; trial++ {
			lvi := genIndices(rng, g.features, g.levels)
			want := refLevel(base, lvl, lvi, g.dim)
			got := make([]float64, g.dim)
			e.EncodeInto(lvi, got)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%+v trial %d dim %d: engine %v, reference %v", g, trial, j, got[j], want[j])
				}
			}
		}
	}
}

func TestScalarMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, g := range geometries {
		base, baseW := genVectors(rng, g.features, g.dim)
		e, err := encslice.NewScalar(g.dim, g.levels, baseW)
		if err != nil {
			t.Fatalf("%+v: %v", g, err)
		}
		for trial := 0; trial < 4; trial++ {
			lvi := genIndices(rng, g.features, g.levels)
			want := refScalar(base, lvi, g.dim, g.levels)
			got := make([]float64, g.dim)
			e.EncodeInto(lvi, got)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%+v trial %d dim %d: engine %v, reference %v", g, trial, j, got[j], want[j])
				}
			}
		}
	}
}

func TestAllZeroIndices(t *testing.T) {
	// Level index 0 everywhere: level mode must return Σ_k L_0⊙B_k, scalar
	// mode the zero vector (every feature value is f_0 = 0).
	rng := rand.New(rand.NewSource(3))
	const dim, features, levels = 190, 12, 8
	base, baseW := genVectors(rng, features, dim)
	lvl, lvlW := genVectors(rng, levels, dim)
	lvi := make([]uint16, features)

	le, err := encslice.NewLevel(dim, baseW, lvlW)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, dim)
	le.EncodeInto(lvi, got)
	want := refLevel(base, lvl, lvi, dim)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("level dim %d: %v vs %v", j, got[j], want[j])
		}
	}

	se, err := encslice.NewScalar(dim, levels, baseW)
	if err != nil {
		t.Fatal(err)
	}
	se.EncodeInto(lvi, got)
	for j, v := range got {
		if v != 0 {
			t.Fatalf("scalar dim %d: all-zero features encoded to %v, want 0", j, v)
		}
	}
}

// schemes pairs every fused scheme with the quant package rule it must
// reproduce bit for bit.
var schemes = []struct {
	name   string
	scheme encslice.Scheme
	q      quant.Quantizer
}{
	{"bipolar", encslice.SchemeBipolar, quant.Bipolar{}},
	{"ternary", encslice.SchemeTernary, quant.Ternary{}},
	{"ternary-biased", encslice.SchemeBiasedTernary, quant.BiasedTernary{}},
	{"2bit", encslice.SchemeTwoBit, quant.TwoBit{}},
}

func TestEncodePackedMatchesQuantize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, g := range geometries {
		_, baseW := genVectors(rng, g.features, g.dim)
		_, lvlW := genVectors(rng, g.levels, g.dim)
		le, err := encslice.NewLevel(g.dim, baseW, lvlW)
		if err != nil {
			t.Fatal(err)
		}
		se, err := encslice.NewScalar(g.dim, g.levels, baseW)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range []*encslice.Engine{le, se} {
			for trial := 0; trial < 3; trial++ {
				lvi := genIndices(rng, g.features, g.levels)
				h := make([]float64, g.dim)
				e.EncodeInto(lvi, h)
				for _, sc := range schemes {
					wantF := make([]float64, g.dim)
					quant.QuantizeInto(sc.q, wantF, h)
					want, ok := intscore.PackInto(wantF, nil)
					if !ok {
						t.Fatalf("%s: quantized reference does not pack", sc.name)
					}
					got := make([]int8, g.dim)
					e.EncodePackedInto(lvi, sc.scheme, got)
					for j := range want {
						if got[j] != want[j] {
							t.Fatalf("%+v %s dim %d: fused %d, quantized float %d (h=%v)",
								g, sc.name, j, got[j], want[j], h[j])
						}
					}
				}
			}
		}
	}
}

func TestBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const dim, features, levels, rows = 257, 21, 16, 9
	_, baseW := genVectors(rng, features, dim)
	_, lvlW := genVectors(rng, levels, dim)
	le, err := encslice.NewLevel(dim, baseW, lvlW)
	if err != nil {
		t.Fatal(err)
	}
	se, err := encslice.NewScalar(dim, levels, baseW)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*encslice.Engine{le, se} {
		lvi := make([]uint16, rows*features)
		for i := range lvi {
			lvi[i] = uint16(rng.Intn(levels))
		}
		batch := make([]float64, rows*dim)
		e.EncodeBatchInto(lvi, rows, batch)
		single := make([]float64, dim)
		for r := 0; r < rows; r++ {
			e.EncodeInto(lvi[r*features:(r+1)*features], single)
			for j := range single {
				if batch[r*dim+j] != single[j] {
					t.Fatalf("row %d dim %d: batch %v, single %v", r, j, batch[r*dim+j], single[j])
				}
			}
		}
	}
}

func TestRejectsUnsupportedGeometry(t *testing.T) {
	_, baseW := genVectors(rand.New(rand.NewSource(6)), 2, 64)
	if _, err := encslice.NewLevel(0, baseW, baseW); err == nil {
		t.Error("accepted dim 0")
	}
	if _, err := encslice.NewLevel(64, nil, baseW); err == nil {
		t.Error("accepted empty base memory")
	}
	if _, err := encslice.NewScalar(64, 1, baseW); err == nil {
		t.Error("accepted 1 level")
	}
	if _, err := encslice.NewScalar(64, 1<<17, baseW); err == nil {
		t.Error("accepted levels beyond the uint16 index range")
	}
	bigBase := make([][]uint64, 1<<16+1)
	for i := range bigBase {
		bigBase[i] = baseW[0]
	}
	if _, err := encslice.NewScalar(64, 2, bigBase); err == nil {
		t.Error("accepted scalar features beyond the uint16 list-index range")
	}
	if _, err := encslice.NewLevel(64, bigBase, baseW); err != nil {
		t.Errorf("level mode rejected %d features: %v (only scalar lists index features as uint16)", len(bigBase), err)
	}
	if _, err := encslice.NewLevel(128, baseW, baseW); err == nil {
		t.Error("accepted word slices shorter than the dimension")
	}
}

func TestEncodeAllocsZero(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under the race detector")
	}
	rng := rand.New(rand.NewSource(7))
	const dim, features, levels = 512, 40, 12
	_, baseW := genVectors(rng, features, dim)
	_, lvlW := genVectors(rng, levels, dim)
	le, err := encslice.NewLevel(dim, baseW, lvlW)
	if err != nil {
		t.Fatal(err)
	}
	se, err := encslice.NewScalar(dim, levels, baseW)
	if err != nil {
		t.Fatal(err)
	}
	lvi := genIndices(rng, features, levels)
	h := make([]float64, dim)
	pk := make([]int8, dim)
	for name, e := range map[string]*encslice.Engine{"level": le, "scalar": se} {
		e.EncodeInto(lvi, h) // warm the pool
		if n := testing.AllocsPerRun(20, func() { e.EncodeInto(lvi, h) }); n != 0 {
			t.Errorf("%s EncodeInto allocates %v per run", name, n)
		}
		e.EncodePackedInto(lvi, encslice.SchemeBiasedTernary, pk)
		if n := testing.AllocsPerRun(20, func() {
			e.EncodePackedInto(lvi, encslice.SchemeBiasedTernary, pk)
		}); n != 0 {
			t.Errorf("%s EncodePackedInto allocates %v per run", name, n)
		}
	}
}

// FuzzEncodeAgainstReference drives both engine modes (and the fused
// quantize path) against the reference loops over fuzzer-chosen geometry
// and bit patterns.
func FuzzEncodeAgainstReference(f *testing.F) {
	f.Add(int64(1), uint16(64), uint8(8), uint8(4))
	f.Add(int64(2), uint16(63), uint8(9), uint8(2))
	f.Add(int64(3), uint16(130), uint8(16), uint8(31))
	f.Add(int64(4), uint16(1), uint8(1), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, dimRaw uint16, featRaw, lvlRaw uint8) {
		dim := int(dimRaw)%300 + 1
		features := int(featRaw)%48 + 1
		levels := int(lvlRaw)%40 + 2
		rng := rand.New(rand.NewSource(seed))
		base, baseW := genVectors(rng, features, dim)
		lvl, lvlW := genVectors(rng, levels, dim)
		lvi := genIndices(rng, features, levels)

		le, err := encslice.NewLevel(dim, baseW, lvlW)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, dim)
		le.EncodeInto(lvi, got)
		want := refLevel(base, lvl, lvi, dim)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("level dim %d: %v vs %v", j, got[j], want[j])
			}
		}

		se, err := encslice.NewScalar(dim, levels, baseW)
		if err != nil {
			t.Fatal(err)
		}
		se.EncodeInto(lvi, got)
		want = refScalar(base, lvi, dim, levels)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("scalar dim %d: %v vs %v", j, got[j], want[j])
			}
		}

		// Fused path vs quantizing the float encoding.
		for _, e := range []*encslice.Engine{le, se} {
			h := make([]float64, dim)
			e.EncodeInto(lvi, h)
			sc := schemes[int(uint64(seed)%uint64(len(schemes)))]
			wantF := make([]float64, dim)
			quant.QuantizeInto(sc.q, wantF, h)
			wantPk, ok := intscore.PackInto(wantF, nil)
			if !ok {
				t.Fatal("reference quantization does not pack")
			}
			gotPk := make([]int8, dim)
			e.EncodePackedInto(lvi, sc.scheme, gotPk)
			for j := range wantPk {
				if gotPk[j] != wantPk[j] {
					t.Fatalf("%s dim %d: fused %d vs %d", sc.name, j, gotPk[j], wantPk[j])
				}
			}
		}
	})
}
