//go:build !race

package encslice_test

// raceEnabled reports that the race detector is inactive.
const raceEnabled = false
