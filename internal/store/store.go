// Package store is the durable half of the serving management plane: a
// versioned, crash-safe, on-disk model store. The registry
// (internal/registry) is deliberately in-memory — publication is an RCU
// pointer swap — so by itself a restart forgets every Swap. The store gives
// each registry mutation a durable shadow: model blobs (whatever bytes
// Pipeline.Save produced) live as immutable numbered versions under a
// per-model directory, and a single JSON manifest records, atomically,
// which version of each model is active plus which model is the registry
// default.
//
// # Directory layout
//
//	<dir>/manifest.json            one atomically-rewritten manifest
//	<dir>/models/<name>/v000001.phd  immutable version blobs
//	<dir>/models/<name>/v000002.phd
//
// # Crash safety
//
// Every write follows the classic temp-file + fsync + rename + fsync(dir)
// discipline, blobs first, manifest last:
//
//   - A version blob is written to a temp file in its final directory,
//     fsync'd, renamed into place, and the directory fsync'd. Blob files
//     are immutable from then on.
//   - The manifest is then rewritten the same way. The rename is the
//     commit point: a crash before it leaves the previous manifest intact
//     (the new blob is an unreferenced orphan, garbage-collected by the
//     next Open); a crash after it leaves the new state. There is no
//     window in which the manifest references bytes that are not fully on
//     disk, and no window in which it is half-written.
//
// Every blob's SHA-256 and size are recorded in the manifest and verified
// on Open and on every read, so silent corruption is detected instead of
// served: a corrupt *active* version fails Open loudly (the operator must
// intervene — serving a silently different model would be worse), while a
// corrupt or missing *inactive* version is dropped from the manifest and
// reported via Dropped.
//
// Open also garbage-collects: orphaned blobs and temp files from
// interrupted commits are removed, and WithRetain bounds how many
// superseded versions each model keeps.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"
)

// Typed failures; test with errors.Is.
var (
	// ErrUnknownModel reports an operation naming a model the store does
	// not hold.
	ErrUnknownModel = errors.New("store: unknown model")
	// ErrUnknownVersion reports an operation naming a version a model does
	// not have (or a model with no active version).
	ErrUnknownVersion = errors.New("store: unknown model version")
	// ErrCorrupt reports on-disk state that fails validation: a manifest
	// that does not parse, or a blob whose bytes no longer match the
	// checksum recorded at commit time.
	ErrCorrupt = errors.New("store: corrupt on-disk state")
	// ErrBadName reports a model name that cannot be used as a directory
	// name. Valid names start with an alphanumeric and continue with
	// alphanumerics, '.', '_' or '-', at most 128 bytes.
	ErrBadName = errors.New("store: invalid model name")
)

// renameFile is os.Rename, indirected so crash tests can fail the commit
// point of a manifest or blob publication and assert the store is left in
// either the old or the new state, never a corrupt one.
var renameFile = os.Rename

// manifestFormat versions the manifest schema.
const manifestFormat = 1

const (
	manifestName = "manifest.json"
	modelsDir    = "models"
	blobSuffix   = ".phd"
	tmpPrefix    = ".tmp-"
)

var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,127}$`)

// ValidName reports whether name is usable as a store model name.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// Version describes one immutable stored version of a model.
type Version struct {
	// Version is the 1-based, strictly increasing version number.
	Version int
	// SHA256 is the hex SHA-256 of the blob, recorded at commit time.
	SHA256 string
	// Size is the blob size in bytes.
	Size int64
	// Created is the commit time (UTC).
	Created time.Time
}

// Model describes one stored model: its version history and which version
// is active (0 = none, e.g. uploaded but never activated).
type Model struct {
	Name     string
	Active   int
	Versions []Version
}

// versionRecord and friends are the manifest JSON schema.
type versionRecord struct {
	Version int       `json:"version"`
	File    string    `json:"file"`
	SHA256  string    `json:"sha256"`
	Size    int64     `json:"size"`
	Created time.Time `json:"created"`
}

type modelRecord struct {
	Active   int             `json:"active"`
	Versions []versionRecord `json:"versions"`
}

type manifest struct {
	Format  int                     `json:"format"`
	Default string                  `json:"default,omitempty"`
	Models  map[string]*modelRecord `json:"models"`
}

// clone deep-copies the manifest for copy-on-write mutation: a failed
// commit must leave the in-memory view exactly as durable state says.
func (m *manifest) clone() *manifest {
	next := &manifest{Format: m.Format, Default: m.Default, Models: make(map[string]*modelRecord, len(m.Models))}
	for name, rec := range m.Models {
		next.Models[name] = &modelRecord{Active: rec.Active, Versions: append([]versionRecord(nil), rec.Versions...)}
	}
	return next
}

// Option configures Open.
type Option func(*Store)

// WithRetain bounds how many versions each model keeps: the active version
// plus the n−1 highest-numbered others; older superseded versions are
// garbage-collected at Open and after each Put. 0 (the default) keeps
// every version.
func WithRetain(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.retain = n
		}
	}
}

// Store is a versioned on-disk model store. All methods are safe for
// concurrent use; mutations serialize on one mutex (this is a management
// plane, not a hot path).
type Store struct {
	dir    string
	retain int

	mu      sync.Mutex
	man     *manifest
	dropped []string
}

// Open opens (creating if needed) the store rooted at dir: it replays the
// manifest, verifies every referenced blob's checksum, drops corrupt or
// missing inactive versions (see Dropped), fails on a corrupt active one,
// removes orphaned blobs and temp files left by interrupted commits, and
// applies the retention policy.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{dir: dir}
	for _, o := range opts {
		o(s)
	}
	if err := os.MkdirAll(filepath.Join(dir, modelsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	man, err := s.loadManifest()
	if err != nil {
		return nil, err
	}
	s.man = man
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Dropped returns the blob paths Open dropped or deleted while recovering:
// corrupt or missing inactive versions, orphans from interrupted commits,
// and leftover temp files. Useful for one startup log line.
func (s *Store) Dropped() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.dropped...)
}

// loadManifest reads manifest.json, tolerating a missing file (empty
// store) and ignoring any leftover temp manifest from an interrupted
// rewrite.
func (s *Store) loadManifest() (*manifest, error) {
	path := filepath.Join(s.dir, manifestName)
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &manifest{Format: manifestFormat, Models: map[string]*modelRecord{}}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("%w: manifest does not parse: %v", ErrCorrupt, err)
	}
	if man.Format != manifestFormat {
		return nil, fmt.Errorf("store: manifest format %d (this build reads %d)", man.Format, manifestFormat)
	}
	if man.Models == nil {
		man.Models = map[string]*modelRecord{}
	}
	return &man, nil
}

// recover validates blobs against the manifest, drops what cannot be
// served, garbage-collects orphans and applies retention. Called from Open
// with the store otherwise unshared.
func (s *Store) recover() error {
	changed := false
	for name, rec := range s.man.Models {
		if !ValidName(name) {
			return fmt.Errorf("%w: manifest holds invalid model name %q", ErrCorrupt, name)
		}
		kept := rec.Versions[:0]
		for _, v := range rec.Versions {
			err := s.verifyBlob(name, v)
			if err == nil {
				kept = append(kept, v)
				continue
			}
			if v.Version == rec.Active {
				return fmt.Errorf("model %q active version %d: %w", name, v.Version, err)
			}
			// A superseded version that rotted is dropped, not fatal: the
			// active model is intact and serving beats bricking.
			s.dropped = append(s.dropped, s.blobPath(name, v.File))
			changed = true
		}
		rec.Versions = kept
		if rec.Active != 0 && !hasVersion(rec, rec.Active) {
			return fmt.Errorf("%w: model %q active version %d has no blob record", ErrCorrupt, name, rec.Active)
		}
	}
	if s.man.Default != "" {
		if _, ok := s.man.Models[s.man.Default]; !ok {
			return fmt.Errorf("%w: manifest default %q is not a stored model", ErrCorrupt, s.man.Default)
		}
	}
	victims := s.retentionVictims()
	if len(victims) > 0 {
		changed = true
	}
	if changed {
		if err := s.writeManifest(s.man); err != nil {
			return err
		}
	}
	for _, path := range victims {
		s.dropped = append(s.dropped, path)
	}
	s.removeFiles(victims)
	s.sweepOrphans()
	return nil
}

// retentionVictims drops versions beyond the retention bound from the
// manifest (in place) and returns the blob paths to delete. Callers write
// the manifest before deleting files: a crash in between leaves orphans,
// which the next Open sweeps.
func (s *Store) retentionVictims() []string {
	if s.retain <= 0 {
		return nil
	}
	var victims []string
	for name, rec := range s.man.Models {
		if len(rec.Versions) <= s.retain {
			continue
		}
		// Keep the active version plus the retain−1 newest others; walk
		// newest-first (versions are kept sorted ascending).
		budget := s.retain
		if rec.Active != 0 {
			budget--
		}
		kept := make([]versionRecord, 0, s.retain)
		for i := len(rec.Versions) - 1; i >= 0; i-- {
			v := rec.Versions[i]
			switch {
			case v.Version == rec.Active:
				kept = append(kept, v)
			case budget > 0:
				kept = append(kept, v)
				budget--
			default:
				victims = append(victims, s.blobPath(name, v.File))
			}
		}
		sort.Slice(kept, func(i, j int) bool { return kept[i].Version < kept[j].Version })
		rec.Versions = kept
	}
	return victims
}

// sweepOrphans removes blobs and temp files not referenced by the
// manifest — the droppings of commits that crashed between blob rename and
// manifest rename. Best-effort: sweep failures are not fatal.
func (s *Store) sweepOrphans() {
	root := filepath.Join(s.dir, modelsDir)
	dirs, err := os.ReadDir(root)
	if err != nil {
		return
	}
	os.Remove(filepath.Join(s.dir, manifestName+".tmp"))
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		name := d.Name()
		rec, live := s.man.Models[name]
		files, err := os.ReadDir(filepath.Join(root, name))
		if err != nil {
			continue
		}
		for _, f := range files {
			path := filepath.Join(root, name, f.Name())
			if live && referenced(rec, f.Name()) {
				continue
			}
			s.dropped = append(s.dropped, path)
			os.Remove(path)
		}
		if !live {
			os.Remove(filepath.Join(root, name))
		}
	}
}

func referenced(rec *modelRecord, file string) bool {
	for _, v := range rec.Versions {
		if v.File == file {
			return true
		}
	}
	return false
}

func hasVersion(rec *modelRecord, version int) bool {
	for _, v := range rec.Versions {
		if v.Version == version {
			return true
		}
	}
	return false
}

func findVersion(rec *modelRecord, version int) (versionRecord, bool) {
	for _, v := range rec.Versions {
		if v.Version == version {
			return v, true
		}
	}
	return versionRecord{}, false
}

func (s *Store) modelDir(name string) string {
	return filepath.Join(s.dir, modelsDir, name)
}

func (s *Store) blobPath(name, file string) string {
	return filepath.Join(s.modelDir(name), file)
}

// verifyBlob checks a recorded version's blob exists with the committed
// size and checksum.
func (s *Store) verifyBlob(name string, v versionRecord) error {
	raw, err := os.ReadFile(s.blobPath(name, v.File))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if int64(len(raw)) != v.Size {
		return fmt.Errorf("%w: blob %s is %d bytes, manifest says %d", ErrCorrupt, v.File, len(raw), v.Size)
	}
	if sum := sha256.Sum256(raw); hex.EncodeToString(sum[:]) != v.SHA256 {
		return fmt.Errorf("%w: blob %s fails its checksum", ErrCorrupt, v.File)
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort on filesystems that refuse directory fsync.
func syncDir(path string) {
	d, err := os.Open(path)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// writeAtomic writes data to path via temp file + fsync + rename +
// fsync(dir). The rename is the commit point.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tmpPrefix+filepath.Base(path)+"-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := renameFile(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// writeManifest atomically rewrites manifest.json to reflect man.
func (s *Store) writeManifest(man *manifest) error {
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	raw = append(raw, '\n')
	if err := writeAtomic(filepath.Join(s.dir, manifestName), raw); err != nil {
		return fmt.Errorf("store: committing manifest: %w", err)
	}
	return nil
}

// Put writes blob as the next version of name and commits it to the
// manifest — active when activate is true, as a staged inactive version
// otherwise. The blob file lands (fsync'd) before the manifest references
// it, so a crash at any point leaves either the previous state or the new
// one, never a manifest pointing at missing bytes. It returns the new
// version number.
func (s *Store) Put(name string, blob []byte, activate bool) (int, error) {
	if !ValidName(name) {
		return 0, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if len(blob) == 0 {
		return 0, errors.New("store: refusing to store an empty model blob")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	next := s.man.clone()
	rec := next.Models[name]
	if rec == nil {
		rec = &modelRecord{}
		next.Models[name] = rec
	}
	version := 1
	if n := len(rec.Versions); n > 0 {
		version = rec.Versions[n-1].Version + 1
	}
	file := versionFile(version)
	if err := os.MkdirAll(s.modelDir(name), 0o755); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := writeAtomic(s.blobPath(name, file), blob); err != nil {
		return 0, fmt.Errorf("store: writing model blob: %w", err)
	}
	sum := sha256.Sum256(blob)
	rec.Versions = append(rec.Versions, versionRecord{
		Version: version,
		File:    file,
		SHA256:  hex.EncodeToString(sum[:]),
		Size:    int64(len(blob)),
		Created: time.Now().UTC(),
	})
	if activate {
		rec.Active = version
	}
	// Apply retention to the candidate manifest so one commit both
	// publishes the new version and forgets the expired ones.
	save := s.man
	s.man = next
	victims := s.retentionVictims()
	if err := s.writeManifest(next); err != nil {
		// The manifest on disk still names the old state; the new blob is
		// an orphan. Restore the in-memory view and clean up best-effort.
		s.man = save
		os.Remove(s.blobPath(name, file))
		return 0, err
	}
	s.removeFiles(victims)
	return version, nil
}

func versionFile(version int) string { return fmt.Sprintf("v%06d%s", version, blobSuffix) }

func (s *Store) removeFiles(paths []string) {
	for _, p := range paths {
		os.Remove(p)
	}
}

// Activate marks an existing version of name active — the durable half of
// an activation or rollback. The manifest rewrite is the commit point.
func (s *Store) Activate(name string, version int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.man.clone()
	rec := next.Models[name]
	if rec == nil {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if !hasVersion(rec, version) {
		return fmt.Errorf("%w: model %q has no version %d", ErrUnknownVersion, name, version)
	}
	rec.Active = version
	if err := s.writeManifest(next); err != nil {
		return err
	}
	s.man = next
	return nil
}

// SetDefault records name as the registry default ("" clears it). The
// model must exist in the store.
func (s *Store) SetDefault(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.man.clone()
	if name != "" {
		if _, ok := next.Models[name]; !ok {
			return fmt.Errorf("%w: %q", ErrUnknownModel, name)
		}
	}
	next.Default = name
	if err := s.writeManifest(next); err != nil {
		return err
	}
	s.man = next
	return nil
}

// Default returns the recorded registry default ("" when unset).
func (s *Store) Default() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.Default
}

// Remove forgets a model: its manifest entry (and the default, if it was
// the default) goes in one atomic commit, then its blob directory is
// deleted best-effort (a crash in between leaves orphans for the next
// Open's sweep).
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.man.clone()
	if _, ok := next.Models[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	delete(next.Models, name)
	if next.Default == name {
		next.Default = ""
	}
	if err := s.writeManifest(next); err != nil {
		return err
	}
	s.man = next
	os.RemoveAll(s.modelDir(name))
	return nil
}

// Get returns the active version's blob (checksum-verified) and its
// version number.
func (s *Store) Get(name string) ([]byte, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.man.Models[name]
	if rec == nil {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if rec.Active == 0 {
		return nil, 0, fmt.Errorf("%w: model %q has no active version", ErrUnknownVersion, name)
	}
	blob, err := s.readVersion(name, rec, rec.Active)
	return blob, rec.Active, err
}

// GetVersion returns one specific version's blob, checksum-verified.
func (s *Store) GetVersion(name string, version int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.man.Models[name]
	if rec == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return s.readVersion(name, rec, version)
}

func (s *Store) readVersion(name string, rec *modelRecord, version int) ([]byte, error) {
	v, ok := findVersion(rec, version)
	if !ok {
		return nil, fmt.Errorf("%w: model %q has no version %d", ErrUnknownVersion, name, version)
	}
	raw, err := os.ReadFile(s.blobPath(name, v.File))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if int64(len(raw)) != v.Size {
		return nil, fmt.Errorf("%w: model %q version %d is %d bytes, manifest says %d",
			ErrCorrupt, name, version, len(raw), v.Size)
	}
	if sum := sha256.Sum256(raw); hex.EncodeToString(sum[:]) != v.SHA256 {
		return nil, fmt.Errorf("%w: model %q version %d fails its checksum", ErrCorrupt, name, version)
	}
	return raw, nil
}

// List returns every stored model with its full version history, sorted by
// name. The result is a deep copy.
func (s *Store) List() []Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Model, 0, len(s.man.Models))
	for name, rec := range s.man.Models {
		m := Model{Name: name, Active: rec.Active, Versions: make([]Version, len(rec.Versions))}
		for i, v := range rec.Versions {
			m.Versions[i] = Version{Version: v.Version, SHA256: v.SHA256, Size: v.Size, Created: v.Created}
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of stored models.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.man.Models)
}

// Lookup returns one stored model's state.
func (s *Store) Lookup(name string) (Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.man.Models[name]
	if rec == nil {
		return Model{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	m := Model{Name: name, Active: rec.Active, Versions: make([]Version, len(rec.Versions))}
	for i, v := range rec.Versions {
		m.Versions[i] = Version{Version: v.Version, SHA256: v.SHA256, Size: v.Size, Created: v.Created}
	}
	return m, nil
}

// PreviousVersion returns the version to roll back to: the highest stored
// version strictly below the active one.
func (s *Store) PreviousVersion(name string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.man.Models[name]
	if rec == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if rec.Active == 0 {
		return 0, fmt.Errorf("%w: model %q has no active version", ErrUnknownVersion, name)
	}
	prev := 0
	for _, v := range rec.Versions {
		if v.Version < rec.Active && v.Version > prev {
			prev = v.Version
		}
	}
	if prev == 0 {
		return 0, fmt.Errorf("%w: model %q has no version before %d to roll back to",
			ErrUnknownVersion, name, rec.Active)
	}
	return prev, nil
}
