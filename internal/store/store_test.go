package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func open(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	s, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func put(t *testing.T, s *Store, name string, blob []byte, activate bool) int {
	t.Helper()
	v, err := s.Put(name, blob, activate)
	if err != nil {
		t.Fatalf("Put(%s): %v", name, err)
	}
	return v
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir())
	blob1 := []byte("model-bytes-v1")
	blob2 := []byte("model-bytes-v2-longer")

	if v := put(t, s, "isolet", blob1, true); v != 1 {
		t.Fatalf("first Put returned version %d, want 1", v)
	}
	if v := put(t, s, "isolet", blob2, true); v != 2 {
		t.Fatalf("second Put returned version %d, want 2", v)
	}

	got, active, err := s.Get("isolet")
	if err != nil {
		t.Fatal(err)
	}
	if active != 2 || !bytes.Equal(got, blob2) {
		t.Fatalf("Get = version %d, %q; want 2, %q", active, got, blob2)
	}
	old, err := s.GetVersion("isolet", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, blob1) {
		t.Fatalf("GetVersion(1) = %q, want %q", old, blob1)
	}

	list := s.List()
	if len(list) != 1 || list[0].Name != "isolet" || list[0].Active != 2 || len(list[0].Versions) != 2 {
		t.Fatalf("List = %+v", list)
	}
	for i, v := range list[0].Versions {
		if v.Version != i+1 || v.SHA256 == "" || v.Size == 0 || v.Created.IsZero() {
			t.Fatalf("version record %d incomplete: %+v", i, v)
		}
	}
}

func TestUnknownModelAndVersion(t *testing.T) {
	s := open(t, t.TempDir())
	if _, _, err := s.Get("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("Get unknown = %v, want ErrUnknownModel", err)
	}
	put(t, s, "m", []byte("x"), true)
	if _, err := s.GetVersion("m", 7); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("GetVersion(7) = %v, want ErrUnknownVersion", err)
	}
	if err := s.Activate("m", 7); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("Activate(7) = %v, want ErrUnknownVersion", err)
	}
	if err := s.Activate("nope", 1); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("Activate unknown = %v, want ErrUnknownModel", err)
	}
	if err := s.SetDefault("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("SetDefault unknown = %v, want ErrUnknownModel", err)
	}
	if err := s.Remove("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("Remove unknown = %v, want ErrUnknownModel", err)
	}
}

func TestBadNamesRejected(t *testing.T) {
	s := open(t, t.TempDir())
	for _, name := range []string{"", ".", "..", "../evil", "a/b", ".hidden", "-dash", "x y"} {
		if _, err := s.Put(name, []byte("b"), true); !errors.Is(err, ErrBadName) {
			t.Errorf("Put(%q) = %v, want ErrBadName", name, err)
		}
	}
	for _, name := range []string{"default", "mnist-large", "a.b_c-d", "X9"} {
		if !ValidName(name) {
			t.Errorf("ValidName(%q) = false, want true", name)
		}
	}
}

func TestStagedPutThenActivate(t *testing.T) {
	s := open(t, t.TempDir())
	put(t, s, "m", []byte("v1"), true)
	v2 := put(t, s, "m", []byte("v2"), false) // staged, not active
	if _, active, _ := s.Get("m"); active != 1 {
		t.Fatalf("staged Put changed active to %d", active)
	}
	if err := s.Activate("m", v2); err != nil {
		t.Fatal(err)
	}
	got, active, err := s.Get("m")
	if err != nil || active != 2 || string(got) != "v2" {
		t.Fatalf("after Activate: %q v%d err=%v", got, active, err)
	}
}

func TestNeverActivatedModel(t *testing.T) {
	s := open(t, t.TempDir())
	put(t, s, "staged", []byte("v1"), false)
	if _, _, err := s.Get("staged"); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("Get on never-activated model = %v, want ErrUnknownVersion", err)
	}
	// Survives a reopen with Active == 0.
	s2 := open(t, s.Dir())
	m, err := s2.Lookup("staged")
	if err != nil || m.Active != 0 || len(m.Versions) != 1 {
		t.Fatalf("reopened staged model = %+v, err=%v", m, err)
	}
}

// TestReopenRestoresExactState is the restart-semantics contract: every
// Put/Activate/SetDefault is durable, and Open replays exactly the last
// committed state.
func TestReopenRestoresExactState(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	put(t, s, "a", []byte("a1"), true)
	put(t, s, "a", []byte("a2"), true)
	put(t, s, "b", []byte("b1"), true)
	if err := s.Activate("a", 1); err != nil { // roll a back to v1
		t.Fatal(err)
	}
	if err := s.SetDefault("b"); err != nil {
		t.Fatal(err)
	}
	before := s.List()

	s2 := open(t, dir)
	after := s2.List()
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Fatalf("reopen changed state:\nbefore %v\nafter  %v", before, after)
	}
	if s2.Default() != "b" {
		t.Fatalf("reopen default = %q, want b", s2.Default())
	}
	if _, active, _ := s2.Get("a"); active != 1 {
		t.Fatalf("reopen active(a) = %d, want 1 (the rollback)", active)
	}
	blob, _, err := s2.Get("a")
	if err != nil || string(blob) != "a1" {
		t.Fatalf("reopen Get(a) = %q, %v", blob, err)
	}
}

func TestRemoveModel(t *testing.T) {
	s := open(t, t.TempDir())
	put(t, s, "m", []byte("v1"), true)
	if err := s.SetDefault("m"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("m"); err != nil {
		t.Fatal(err)
	}
	if s.Default() != "" {
		t.Fatalf("Remove left default %q", s.Default())
	}
	if s.Len() != 0 {
		t.Fatalf("Remove left %d models", s.Len())
	}
	if _, err := os.Stat(s.modelDir("m")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("model dir survived Remove: %v", err)
	}
	// Durable across reopen.
	if s2 := open(t, s.Dir()); s2.Len() != 0 || s2.Default() != "" {
		t.Fatal("Remove did not survive reopen")
	}
}

// TestInjectedManifestRenameFailure is the kill-style mid-commit crash
// test: the manifest rename (the commit point) fails after the new blob
// landed. The Put must report the error, the in-memory view must still
// match disk, and a reopen must see the old state with the orphan blob
// swept.
func TestInjectedManifestRenameFailure(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	put(t, s, "m", []byte("v1"), true)

	boom := errors.New("injected rename failure")
	renameFile = func(oldpath, newpath string) error {
		if filepath.Base(newpath) == manifestName {
			os.Remove(oldpath) // the temp file is "lost with the crash"
			return boom
		}
		return os.Rename(oldpath, newpath)
	}
	defer func() { renameFile = os.Rename }()

	if _, err := s.Put("m", []byte("v2"), true); !errors.Is(err, boom) {
		t.Fatalf("Put under injected crash = %v, want injected failure", err)
	}
	renameFile = os.Rename

	// In-memory state rolled back: v2 never happened.
	blob, active, err := s.Get("m")
	if err != nil || active != 1 || string(blob) != "v1" {
		t.Fatalf("after failed commit: %q v%d err=%v, want v1", blob, active, err)
	}
	// And the next Put gets version 2 again, cleanly.
	if v := put(t, s, "m", []byte("v2b"), true); v != 2 {
		t.Fatalf("Put after failed commit returned version %d, want 2", v)
	}

	// Reopen from disk: consistent, never corrupt.
	s2 := open(t, dir)
	blob, active, err = s2.Get("m")
	if err != nil || active != 2 || string(blob) != "v2b" {
		t.Fatalf("reopen after crash: %q v%d err=%v", blob, active, err)
	}
}

// TestCrashBetweenBlobAndManifest simulates dying after the blob rename
// but before the manifest commit: the blob must be swept as an orphan on
// the next Open and the old state served.
func TestCrashBetweenBlobAndManifest(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	put(t, s, "m", []byte("v1"), true)

	// Hand-plant the orphan exactly where a crashed Put would leave it.
	orphan := s.blobPath("m", versionFile(2))
	if err := os.WriteFile(orphan, []byte("half-committed"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Plus a leftover temp file from an interrupted writeAtomic.
	tmp := filepath.Join(s.modelDir("m"), tmpPrefix+"junk")
	if err := os.WriteFile(tmp, []byte("tmp"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir)
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphan blob survived reopen")
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp file survived reopen")
	}
	if len(s2.Dropped()) == 0 {
		t.Fatal("Dropped() reported nothing for the swept orphan")
	}
	blob, active, err := s2.Get("m")
	if err != nil || active != 1 || string(blob) != "v1" {
		t.Fatalf("after orphan sweep: %q v%d err=%v", blob, active, err)
	}
	// The swept version number is reused cleanly.
	if v := put(t, s2, "m", []byte("v2"), true); v != 2 {
		t.Fatalf("Put after sweep returned version %d, want 2", v)
	}
}

func TestCorruptActiveBlobFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	put(t, s, "m", []byte("model-bytes"), true)
	flipByte(t, s.blobPath("m", versionFile(1)))
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt active blob = %v, want ErrCorrupt", err)
	}
}

func TestCorruptInactiveBlobDropped(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	put(t, s, "m", []byte("v1"), true)
	put(t, s, "m", []byte("v2"), true)
	flipByte(t, s.blobPath("m", versionFile(1)))

	s2 := open(t, dir)
	if len(s2.Dropped()) == 0 {
		t.Fatal("corrupt inactive version not reported via Dropped")
	}
	m, err := s2.Lookup("m")
	if err != nil || len(m.Versions) != 1 || m.Versions[0].Version != 2 {
		t.Fatalf("corrupt inactive version not dropped: %+v err=%v", m, err)
	}
	if blob, active, err := s2.Get("m"); err != nil || active != 2 || string(blob) != "v2" {
		t.Fatalf("active version damaged by drop: %q v%d err=%v", blob, active, err)
	}
}

func TestCorruptionDetectedOnRead(t *testing.T) {
	s := open(t, t.TempDir())
	put(t, s, "m", []byte("model-bytes"), true)
	flipByte(t, s.blobPath("m", versionFile(1)))
	if _, _, err := s.Get("m"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get over flipped blob = %v, want ErrCorrupt", err)
	}
}

func TestGarbageManifestFailsOpen(t *testing.T) {
	dir := t.TempDir()
	open(t, dir)
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over garbage manifest = %v, want ErrCorrupt", err)
	}
}

func TestRetention(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, WithRetain(2))
	for i := 1; i <= 5; i++ {
		put(t, s, "m", []byte(fmt.Sprintf("v%d", i)), true)
	}
	m, _ := s.Lookup("m")
	if len(m.Versions) != 2 || m.Versions[0].Version != 4 || m.Versions[1].Version != 5 {
		t.Fatalf("retain 2 kept %+v, want versions 4 and 5", m.Versions)
	}
	for i := 1; i <= 3; i++ {
		if _, err := os.Stat(s.blobPath("m", versionFile(i))); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("expired version %d blob still on disk", i)
		}
	}

	// The active version is never collected, however old.
	if err := s.Activate("m", 4); err != nil {
		t.Fatal(err)
	}
	put(t, s, "m", []byte("v6"), false) // staged: active stays 4
	put(t, s, "m", []byte("v7"), false)
	m, _ = s.Lookup("m")
	if m.Active != 4 || !hasVersionNum(m, 4) {
		t.Fatalf("retention collected the active version: %+v", m)
	}
	if len(m.Versions) != 2 {
		t.Fatalf("retain 2 kept %d versions: %+v", len(m.Versions), m.Versions)
	}

	// Retention also applies when an over-long store is reopened.
	s2 := open(t, dir, WithRetain(1))
	m, _ = s2.Lookup("m")
	if len(m.Versions) != 1 || m.Versions[0].Version != 4 {
		t.Fatalf("reopen with retain 1 kept %+v, want just active v4", m.Versions)
	}
}

func TestDefaultLifecycle(t *testing.T) {
	s := open(t, t.TempDir())
	put(t, s, "a", []byte("a"), true)
	put(t, s, "b", []byte("b"), true)
	if s.Default() != "" {
		t.Fatalf("fresh store has default %q", s.Default())
	}
	if err := s.SetDefault("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetDefault(""); err != nil {
		t.Fatal(err)
	}
	if s.Default() != "" {
		t.Fatalf("clearing default left %q", s.Default())
	}
}

func TestPreviousVersion(t *testing.T) {
	s := open(t, t.TempDir())
	put(t, s, "m", []byte("v1"), true)
	if _, err := s.PreviousVersion("m"); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("PreviousVersion with one version = %v, want ErrUnknownVersion", err)
	}
	put(t, s, "m", []byte("v2"), true)
	put(t, s, "m", []byte("v3"), true)
	prev, err := s.PreviousVersion("m")
	if err != nil || prev != 2 {
		t.Fatalf("PreviousVersion = %d, %v; want 2", prev, err)
	}
	if err := s.Activate("m", prev); err != nil {
		t.Fatal(err)
	}
	prev, err = s.PreviousVersion("m")
	if err != nil || prev != 1 {
		t.Fatalf("PreviousVersion after rollback = %d, %v; want 1", prev, err)
	}
}

func TestEmptyBlobRejected(t *testing.T) {
	s := open(t, t.TempDir())
	if _, err := s.Put("m", nil, true); err == nil {
		t.Fatal("Put(nil blob) succeeded")
	}
}

func hasVersionNum(m Model, version int) bool {
	for _, v := range m.Versions {
		if v.Version == version {
			return true
		}
	}
	return false
}

func flipByte(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
