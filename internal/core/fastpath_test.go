package core

import (
	"testing"

	"privehd/internal/dp"
	"privehd/internal/hdc"
	"privehd/internal/hrand"
	"privehd/internal/quant"
)

// fastPathConfigs crosses encodings × paper quantizers × pruning × DP —
// every combination the fused bit-sliced Predict path must match the float
// reference chain on, bit for bit.
func fastPathConfigs() []Config {
	var out []Config
	for _, enc := range []Encoding{EncodingLevel, EncodingScalar} {
		for _, q := range []quant.Quantizer{
			quant.Bipolar{}, quant.Ternary{}, quant.BiasedTernary{}, quant.TwoBit{}, quant.Identity{},
		} {
			cfg := Config{
				HD:        hdc.Config{Dim: 450, Features: 19, Levels: 12, Seed: 77},
				Encoding:  enc,
				Quantizer: q,
			}
			out = append(out, cfg)
			pruned := cfg
			pruned.KeepDims = 300
			pruned.RetrainEpochs = 1
			out = append(out, pruned)
			noised := cfg
			noised.DP = &dp.Params{Epsilon: 2, Delta: 1e-5}
			out = append(out, noised)
		}
	}
	return out
}

func fastPathData(features int) ([][]float64, []int) {
	src := hrand.New(99)
	const samples, classes = 40, 5
	X := make([][]float64, samples)
	y := make([]int, samples)
	for i := range X {
		x := make([]float64, features)
		for k := range x {
			x[k] = src.Float64()
		}
		X[i] = x
		y[i] = i % classes
	}
	return X, y
}

// TestPredictFusedMatchesFloatChain pins the acceptance contract: Predict's
// fused integer-domain chain classifies exactly like the float reference
// chain (PrepareQuery + Model.Predict) for every quantizer, pruned or not,
// DP-noised or not, on both encodings and on precomputed and lazily-normed
// models alike.
func TestPredictFusedMatchesFloatChain(t *testing.T) {
	for _, cfg := range fastPathConfigs() {
		X, y := fastPathData(cfg.HD.Features)
		p, err := TrainData(cfg, X, y, 5)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		check := func(stage string) {
			for i, x := range X {
				want := p.Model().Predict(p.PrepareQuery(x))
				if got := p.Predict(x); got != want {
					t.Fatalf("%s %s/%s sample %d: fused Predict %d, float chain %d",
						stage, cfg.Quantizer.Name(), encName(cfg.Encoding), i, got, want)
				}
			}
		}
		check("lazy") // no Precompute: packed scoring falls back to DotPacked rows
		p.Model().Precompute()
		check("precomputed")
	}
}

func encName(e Encoding) string {
	if e == EncodingScalar {
		return "scalar"
	}
	return "level"
}

// TestPredictBatchMatchesPredict checks the atomic-cursor batch dispatch
// returns exactly the sequential labels, at worker counts above and below
// the row count.
func TestPredictBatchMatchesPredict(t *testing.T) {
	cfg := Config{
		HD:        hdc.Config{Dim: 300, Features: 17, Levels: 8, Seed: 3},
		Encoding:  EncodingLevel,
		Quantizer: quant.BiasedTernary{},
	}
	X, y := fastPathData(cfg.HD.Features)
	for _, workers := range []int{0, 1, 3, 64} {
		cfg.Workers = workers
		p, err := TrainData(cfg, X, y, 5)
		if err != nil {
			t.Fatal(err)
		}
		got := p.PredictBatch(X)
		for i, x := range X {
			if want := p.Predict(x); got[i] != want {
				t.Fatalf("workers=%d sample %d: batch %d, sequential %d", workers, i, got[i], want)
			}
		}
	}
	// Empty batch must not touch the model.
	p, err := TrainData(cfg, X, y, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out := p.PredictBatch(nil); len(out) != 0 {
		t.Fatalf("PredictBatch(nil) returned %v", out)
	}
}

// TestEdgePrepareFusedMatchesReference checks the edge's fused 1-bit path
// against encode-then-quantize-then-mask done by hand, with and without
// dimension masking, on both encodings.
func TestEdgePrepareFusedMatchesReference(t *testing.T) {
	for _, enc := range []Encoding{EncodingLevel, EncodingScalar} {
		for _, maskDims := range []int{0, 100} {
			e, err := NewEdge(EdgeConfig{
				HD:       hdc.Config{Dim: 310, Features: 21, Levels: 10, Seed: 8},
				Encoding: enc,
				Quantize: true,
				MaskDims: maskDims,
				MaskSeed: 9,
			})
			if err != nil {
				t.Fatal(err)
			}
			X, _ := fastPathData(21)
			for i, x := range X[:8] {
				want := quant.Bipolar{}.Quantize(e.Encoder().Encode(x))
				if m := e.Mask(); m != nil {
					m.Apply(want)
				}
				got := e.Prepare(x)
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("enc=%v mask=%d sample %d dim %d: fused %v, reference %v",
							enc, maskDims, i, j, got[j], want[j])
					}
				}
			}
			// PrepareBatch must agree with Prepare row by row.
			batch := e.PrepareBatch(X, 3)
			for i, x := range X {
				want := e.Prepare(x)
				for j := range want {
					if batch[i][j] != want[j] {
						t.Fatalf("batch sample %d dim %d mismatch", i, j)
					}
				}
			}
		}
	}
}

// TestPredictZeroAllocs pins the serving contract: the fused Predict chain
// allocates nothing per query once the pools are warm.
func TestPredictZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under the race detector")
	}
	for _, q := range []quant.Quantizer{quant.Bipolar{}, quant.BiasedTernary{}, quant.TwoBit{}} {
		cfg := Config{
			HD:        hdc.Config{Dim: 512, Features: 33, Levels: 16, Seed: 5},
			Encoding:  EncodingLevel,
			Quantizer: q,
		}
		X, y := fastPathData(cfg.HD.Features)
		p, err := TrainData(cfg, X, y, 5)
		if err != nil {
			t.Fatal(err)
		}
		p.Model().Precompute()
		x := X[0]
		p.Predict(x) // warm the pools
		p.Predict(x)
		if n := testing.AllocsPerRun(50, func() { p.Predict(x) }); n != 0 {
			t.Errorf("%s: Predict allocates %v per run", q.Name(), n)
		}
	}
}
