// Package core is the Prive-HD library: the privacy-preserving training and
// inference pipelines of the paper, assembled from the hdc, quant, prune
// and dp substrates.
//
// Training (§III-B): encode → quantize encodings (Eq. 13) → bundle class
// hypervectors (Eq. 3) → prune close-to-zero dimensions and retrain with
// the mask (§III-B1) → add calibrated Gaussian noise once (Eq. 8). The
// noise is applied after retraining and the noisy model is never retrained
// — "as it violates the concept of differential privacy".
//
// Fidelity note: the paper bounds the mechanism's ℓ2 sensitivity by the
// norm of a single (quantized) encoding, treating the retrained model like
// the one-shot sum of Eq. 3. Strictly, Eq. 5 retraining can bundle a sample
// more than once, which would enlarge the true sensitivity; this
// reproduction follows the paper's accounting and flags the caveat here and
// in DESIGN.md rather than silently "fixing" the paper.
//
// Inference (§III-C): the edge encodes, quantizes (1-bit) and masks the
// query before offloading; the cloud-side model stays full precision and
// needs no modification or access.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"privehd/internal/dataset"
	"privehd/internal/dp"
	"privehd/internal/encslice"
	"privehd/internal/hdc"
	"privehd/internal/hrand"
	"privehd/internal/intscore"
	"privehd/internal/par"
	"privehd/internal/prune"
	"privehd/internal/quant"
	"privehd/internal/vecmath"
)

// Encoding selects which paper encoding the pipeline uses.
type Encoding int

const (
	// EncodingLevel is Eq. 2b (level ⊙ base XNOR), the hardware-friendly
	// default.
	EncodingLevel Encoding = iota
	// EncodingScalar is Eq. 2a (scalar × base), the form the
	// reconstruction-attack analysis is written against.
	EncodingScalar
)

// Config assembles a Prive-HD training pipeline.
type Config struct {
	// HD is the encoder geometry (dimension, features, levels, seed).
	HD hdc.Config
	// Encoding selects Eq. 2a or 2b.
	Encoding Encoding
	// Quantizer is applied to every training encoding (Eq. 13). Use
	// quant.Identity{} for the non-quantized baseline. Required.
	Quantizer quant.Quantizer
	// KeepDims > 0 prunes the trained model down to this many effective
	// dimensions (§III-B1) before retraining; 0 keeps every dimension.
	KeepDims int
	// RetrainEpochs is the number of Eq. 5 passes after one-shot training
	// (with the pruning mask enforced if any). The paper finds 1–2
	// sufficient (Fig. 4).
	RetrainEpochs int
	// DP, when non-nil, makes the released model (ε,δ)-differentially
	// private by Gaussian noise scaled to the quantizer's Eq. 14
	// sensitivity (or Eq. 12 when unquantized).
	DP *dp.Params
	// NoiseSeed seeds the DP noise stream (independent of HD.Seed).
	NoiseSeed uint64
	// Workers bounds encoding parallelism; 0 uses GOMAXPROCS.
	Workers int
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if err := c.HD.Validate(); err != nil {
		return err
	}
	if c.Quantizer == nil {
		return fmt.Errorf("core: Config.Quantizer is required (use quant.Identity{} for none)")
	}
	if c.KeepDims < 0 || c.KeepDims > c.HD.Dim {
		return fmt.Errorf("core: KeepDims %d out of range [0,%d]", c.KeepDims, c.HD.Dim)
	}
	if c.RetrainEpochs < 0 {
		return fmt.Errorf("core: RetrainEpochs must be non-negative")
	}
	if c.DP != nil {
		if err := c.DP.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// newEncoder builds the configured paper encoder.
func newEncoder(cfg Config) (hdc.Encoder, error) {
	switch cfg.Encoding {
	case EncodingLevel:
		return hdc.NewLevelEncoder(cfg.HD)
	case EncodingScalar:
		return hdc.NewScalarEncoder(cfg.HD)
	}
	return nil, fmt.Errorf("core: unknown encoding %d", cfg.Encoding)
}

// PrivacyReport summarizes the privacy mechanics of a trained pipeline, the
// quantities EXPERIMENTS.md reports per run.
type PrivacyReport struct {
	// Quantizer is the encoding quantization scheme name.
	Quantizer string
	// Dim and KeptDims describe the model geometry after pruning.
	Dim      int
	KeptDims int
	// Sensitivity is the ℓ2 bound used for calibration (Eq. 12 or 14,
	// over the kept dimensions).
	Sensitivity float64
	// SigmaFactor and NoiseStd describe the applied Gaussian mechanism;
	// zero when the pipeline is non-private.
	SigmaFactor float64
	NoiseStd    float64
	// Epsilon and Delta echo the budget; zero when non-private.
	Epsilon float64
	Delta   float64
	// Private reports whether noise was applied.
	Private bool
}

// Pipeline is a trained Prive-HD classifier.
type Pipeline struct {
	cfg     Config
	encoder hdc.Encoder
	model   *hdc.Model
	mask    *prune.Mask // nil when unpruned
	report  PrivacyReport

	// packedEnc + scheme enable the fused bit-sliced encode→quantize fast
	// path: when the configured quantizer maps onto a packed scheme and the
	// encoder carries an encslice engine, Predict derives the packed −2…+1
	// query straight from integer popcounts — no float hypervector, no
	// separate quantization pass. Resolved once at construction.
	packedEnc hdc.PackedEncoder
	scheme    encslice.Scheme

	// scratch recycles per-query encode/quantize/score buffers across
	// Predict calls — the serving hot path answers each query with zero
	// heap allocations. Buffers are per-goroutine via sync.Pool, so
	// concurrent Predict calls stay safe.
	scratch sync.Pool
}

// predictScratch is one goroutine's reusable Predict working set.
type predictScratch struct {
	h      []float64 // raw encoding
	q      []float64 // quantized query
	packed []int8    // packed-alphabet form of q for the integer engine
	scores []float64 // per-class similarities
}

// getScratch returns a scratch sized for the pipeline's geometry.
func (p *Pipeline) getScratch() *predictScratch {
	if s, ok := p.scratch.Get().(*predictScratch); ok {
		return s
	}
	return &predictScratch{
		h:      make([]float64, p.cfg.HD.Dim),
		q:      make([]float64, p.cfg.HD.Dim),
		packed: make([]int8, p.cfg.HD.Dim),
		scores: make([]float64, p.model.NumClasses()),
	}
}

// packedScheme maps a quant scheme onto the engine's fused quantization
// rule; false means the quantizer has no packed form (Identity, or a
// custom implementation) and inference must go through the float path.
func packedScheme(q quant.Quantizer) (encslice.Scheme, bool) {
	switch q.(type) {
	case quant.Bipolar:
		return encslice.SchemeBipolar, true
	case quant.Ternary:
		return encslice.SchemeTernary, true
	case quant.BiasedTernary:
		return encslice.SchemeBiasedTernary, true
	case quant.TwoBit:
		return encslice.SchemeTwoBit, true
	}
	return encslice.SchemeNone, false
}

// initFastPath resolves the fused encode→quantize route once so Predict
// only pays a nil check per query.
func (p *Pipeline) initFastPath() {
	pe, ok := p.encoder.(hdc.PackedEncoder)
	if !ok {
		return
	}
	s, ok := packedScheme(p.cfg.Quantizer)
	if !ok {
		return
	}
	p.packedEnc, p.scheme = pe, s
}

// maskPacked zeroes the pruned dimensions of a packed query — the int8
// form of mask.Apply, run after quantization exactly like the float path.
func maskPacked(q []int8, m *prune.Mask) {
	for j, keep := range m.Keep {
		if !keep {
			q[j] = 0
		}
	}
}

// Train runs the full §III-B pipeline on the dataset's training split.
func Train(cfg Config, d *dataset.Dataset) (*Pipeline, error) {
	if d.Features != cfg.HD.Features {
		return nil, fmt.Errorf("core: dataset has %d features, config %d", d.Features, cfg.HD.Features)
	}
	return TrainData(cfg, d.TrainX, d.TrainY, d.Classes)
}

// TrainData runs the full §III-B pipeline on raw samples and labels; classes
// is the number of distinct labels. This is the dataset-free entry point the
// public facade builds on.
func TrainData(cfg Config, X [][]float64, y []int, classes int) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(X) == 0 {
		return nil, fmt.Errorf("core: no training samples")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("core: %d samples, %d labels", len(X), len(y))
	}
	if len(X[0]) != cfg.HD.Features {
		return nil, fmt.Errorf("core: samples have %d features, config %d", len(X[0]), cfg.HD.Features)
	}
	enc, err := newEncoder(cfg)
	if err != nil {
		return nil, err
	}
	raw := hdc.EncodeBatch(enc, X, cfg.Workers)
	encoded := quant.QuantizeBatch(cfg.Quantizer, raw)
	model, err := hdc.Train(encoded, y, classes, cfg.HD.Dim)
	if err != nil {
		return nil, err
	}

	p := &Pipeline{cfg: cfg, encoder: enc, model: model}
	p.initFastPath()
	keep := cfg.HD.Dim
	if cfg.KeepDims > 0 && cfg.KeepDims < cfg.HD.Dim {
		keep = cfg.KeepDims
		// DiscriminativeMask rather than the paper-literal magnitude
		// ranking: see the mask's doc comment and DESIGN.md §5.
		p.mask = prune.DiscriminativeMask(model, cfg.HD.Dim-cfg.KeepDims)
		prune.PruneModel(model, p.mask)
		if cfg.RetrainEpochs > 0 {
			prune.MaskedRetrain(model, p.mask, encoded, y, nil, nil, cfg.RetrainEpochs)
		}
	} else if cfg.RetrainEpochs > 0 {
		for e := 0; e < cfg.RetrainEpochs; e++ {
			if hdc.RetrainEpoch(model, encoded, y) == 0 {
				break
			}
		}
	}

	p.report = PrivacyReport{
		Quantizer: cfg.Quantizer.Name(),
		Dim:       cfg.HD.Dim,
		KeptDims:  keep,
	}
	if cfg.DP != nil {
		sens := quant.AnalyticL2Sensitivity(cfg.Quantizer, keep)
		if _, isIdentity := cfg.Quantizer.(quant.Identity); isIdentity {
			sens = quant.RawL2Sensitivity(keep, cfg.HD.Features)
		}
		sigma, err := dp.SigmaFactor(*cfg.DP)
		if err != nil {
			return nil, err
		}
		src := hrand.New(cfg.NoiseSeed)
		if p.mask != nil {
			err = dp.PrivatizeModelMasked(src, model, p.mask.Keep, sens, *cfg.DP)
		} else {
			err = dp.PrivatizeModel(src, model, sens, *cfg.DP)
		}
		if err != nil {
			return nil, err
		}
		p.report.Sensitivity = sens
		p.report.SigmaFactor = sigma
		p.report.NoiseStd = sens * sigma
		p.report.Epsilon = cfg.DP.Epsilon
		p.report.Delta = cfg.DP.Delta
		p.report.Private = true
	}
	return p, nil
}

// NewUntrained builds a pipeline with an empty model over the given label
// space — the starting point for streaming (online) training, where no
// batch of data exists up front.
func NewUntrained(cfg Config, classes int) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if classes <= 0 {
		return nil, fmt.Errorf("core: NewUntrained needs a positive class count, got %d", classes)
	}
	enc, err := newEncoder(cfg)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:     cfg,
		encoder: enc,
		model:   hdc.NewModel(classes, cfg.HD.Dim),
		report: PrivacyReport{
			Quantizer: cfg.Quantizer.Name(),
			Dim:       cfg.HD.Dim,
			KeptDims:  cfg.HD.Dim,
		},
	}
	p.initFastPath()
	return p, nil
}

// OnlineTrain feeds a stream batch through similarity-weighted single-pass
// training (hdc.OnlineTrain): samples are encoded and quantized the way
// batch training would, masked if the model is pruned, and bundled with
// error-proportional weights. It returns the observed worst-case
// single-sample ℓ2 contribution to the model — the quantity an honest DP
// release must calibrate its noise against, since weighted bundling voids
// the fixed Eq. 12/14 bound (a sample's weight is data-dependent).
//
// OnlineTrain is copy-on-write: the batch trains a clone of the model and
// the clone replaces p.model only on success, so a mid-batch error (a bad
// label, say) leaves the pipeline exactly as it was, and any previously
// published pointer to the old model — a serving registry entry — is never
// mutated underneath concurrent readers. Callers serialize OnlineTrain
// against inference on this pipeline and re-freeze the norm caches
// afterwards (the public facade does both under its write lock).
// Pipelines that already carry DP noise refuse further training —
// "retraining the noisy model violates the concept of differential
// privacy" (§III-B).
func (p *Pipeline) OnlineTrain(X [][]float64, y []int) (float64, error) {
	if p.report.Private {
		return 0, fmt.Errorf("core: OnlineTrain on a privatized model would void its (ε,δ) guarantee")
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("core: %d samples, %d labels", len(X), len(y))
	}
	raw := hdc.EncodeBatch(p.encoder, X, p.cfg.Workers)
	encoded := quant.QuantizeBatch(p.cfg.Quantizer, raw)
	if p.mask != nil {
		for _, h := range encoded {
			p.mask.Apply(h)
		}
	}
	model := p.model.Clone()
	contribution, err := hdc.OnlineTrain(model, encoded, y)
	if err != nil {
		return 0, err
	}
	p.model = model
	return contribution, nil
}

// Restore reassembles a trained pipeline from previously released parts: a
// validated config, the (possibly privatized) model, the pruning mask (nil
// when unpruned) and the privacy report recorded at training time. The
// encoder is rebuilt deterministically from cfg. Serialization lives in the
// public facade; this is its inverse constructor.
func Restore(cfg Config, model *hdc.Model, mask *prune.Mask, report PrivacyReport) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("core: Restore needs a model")
	}
	if model.Dim() != cfg.HD.Dim {
		return nil, fmt.Errorf("core: model dim %d, config %d", model.Dim(), cfg.HD.Dim)
	}
	if mask != nil && mask.Dim() != cfg.HD.Dim {
		return nil, fmt.Errorf("core: mask dim %d, config %d", mask.Dim(), cfg.HD.Dim)
	}
	enc, err := newEncoder(cfg)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{cfg: cfg, encoder: enc, model: model, mask: mask, report: report}
	p.initFastPath()
	return p, nil
}

// Report returns the pipeline's privacy summary.
func (p *Pipeline) Report() PrivacyReport { return p.report }

// Model exposes the (possibly privatized) class hypervectors — what a
// model release would publish.
func (p *Pipeline) Model() *hdc.Model { return p.model }

// Encoder exposes the underlying encoder (public in HD: base hypervectors
// are not secret, which is exactly why the paper needs DP).
func (p *Pipeline) Encoder() hdc.Encoder { return p.encoder }

// Mask returns the pruning mask, or nil when unpruned.
func (p *Pipeline) Mask() *prune.Mask { return p.mask }

// PrepareQuery encodes and quantizes one input the way the training data
// was processed, applying the pruning mask (pruned dimensions are never
// encoded at inference — §III-B1).
func (p *Pipeline) PrepareQuery(x []float64) []float64 {
	h := p.cfg.Quantizer.Quantize(p.encoder.Encode(x))
	if p.mask != nil {
		p.mask.Apply(h)
	}
	return h
}

// Predict classifies one input. The whole encode → quantize → mask → score
// chain runs on pooled scratch buffers, so the serving hot path does not
// allocate per query. With a paper quantizer and an engine-backed encoder
// the chain never leaves the integer domain: the bit-sliced engine derives
// the packed −2…+1 query straight from popcounts (no float hypervector, no
// separate quantization pass) and the integer scoring engine consumes it —
// both stages bit-identical to the float reference path.
func (p *Pipeline) Predict(x []float64) int {
	s := p.getScratch()
	defer p.scratch.Put(s)
	if p.packedEnc != nil && p.packedEnc.EncodePackedInto(x, p.scheme, s.packed) {
		if p.mask != nil {
			maskPacked(s.packed, p.mask)
		}
		return vecmath.ArgMax(p.model.ScoresPackedInto(s.packed, s.scores))
	}
	h := hdc.EncodeInto(p.encoder, x, s.h)
	quant.QuantizeInto(p.cfg.Quantizer, s.q, h)
	if p.mask != nil {
		p.mask.Apply(s.q)
	}
	if e := p.model.PackedScorer(); e != nil {
		if pk, ok := intscore.PackInto(s.q, s.packed); ok {
			return vecmath.ArgMax(e.ScoresPackedInto(pk, s.scores))
		}
	}
	return vecmath.ArgMax(p.model.ScoresInto(s.q, s.scores))
}

// PredictBatch classifies every row of X concurrently (workers from the
// pipeline config; GOMAXPROCS when unset), returning labels in order. Rows
// are claimed off an atomic cursor and each worker runs the pooled Predict
// chain, so the batch allocates only the result slice. The model's caches
// are frozen first (Precompute) so the concurrent scoring is read-only.
func (p *Pipeline) PredictBatch(X [][]float64) []int {
	out := make([]int, len(X))
	if len(X) == 0 {
		return out
	}
	if p.model.PackedScorer() == nil {
		// Never precomputed, or mutated since: freeze norms (and derive the
		// integer scorer) so concurrent Predict calls don't race on the
		// lazy caches.
		p.model.Precompute()
	}
	workers := p.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	par.ForEach(len(X), workers, func(i int) {
		out[i] = p.Predict(X[i])
	})
	return out
}

// PredictVector classifies an already-encoded (and possibly obfuscated or
// hardware-quantized) hypervector on pooled scratch: a vector that fits
// the packed −2…+1 alphabet is scored on the integer engine exactly like
// a packed wire frame, anything else takes the float64 path. No pruning
// mask is applied — the caller's vector is scored as given, matching
// Model.Predict.
func (p *Pipeline) PredictVector(h []float64) int {
	s := p.getScratch()
	defer p.scratch.Put(s)
	if e := p.model.PackedScorer(); e != nil {
		if pk, ok := intscore.PackInto(h, s.packed); ok {
			return vecmath.ArgMax(e.ScoresPackedInto(pk, s.scores))
		}
	}
	return vecmath.ArgMax(p.model.ScoresInto(h, s.scores))
}

// Evaluate returns accuracy over the dataset's test split.
func (p *Pipeline) Evaluate(d *dataset.Dataset) float64 {
	return p.EvaluateData(d.TestX, d.TestY)
}

// EvaluateData returns accuracy over raw samples and labels.
func (p *Pipeline) EvaluateData(X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	correct := 0
	for i, label := range p.PredictBatch(X) {
		if label == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}
