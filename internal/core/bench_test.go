package core

import (
	"testing"

	"privehd/internal/hdc"
	"privehd/internal/hrand"
	"privehd/internal/quant"
)

// benchPipeline trains a small-but-realistic pipeline: ISOLET-shaped inputs
// (617 features) into D_hv = 4,000 with the paper-default biased-ternary
// encoding quantization — the Predict hot path a serving deployment runs
// per query.
func benchPipeline(b *testing.B) (*Pipeline, []float64) {
	b.Helper()
	cfg := Config{
		HD:        hdc.Config{Dim: 4000, Features: 617, Levels: 100, Seed: 7},
		Encoding:  EncodingLevel,
		Quantizer: quant.BiasedTernary{},
	}
	src := hrand.New(42)
	const samples, classes = 64, 8
	X := make([][]float64, samples)
	y := make([]int, samples)
	for i := range X {
		x := make([]float64, cfg.HD.Features)
		for k := range x {
			x[k] = src.Float64()
		}
		X[i] = x
		y[i] = i % classes
	}
	p, err := TrainData(cfg, X, y, classes)
	if err != nil {
		b.Fatal(err)
	}
	p.Model().Precompute()
	return p, X[0]
}

func BenchmarkPipelinePredict(b *testing.B) {
	p, x := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Predict(x)
	}
}

func BenchmarkPipelinePredictParallel(b *testing.B) {
	p, x := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = p.Predict(x)
		}
	})
}
