package core

import (
	"math"
	"testing"

	"privehd/internal/dataset"
	"privehd/internal/dp"
	"privehd/internal/hdc"
	"privehd/internal/quant"
)

// smallTask returns a quick separable dataset for pipeline tests.
func smallTask(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Gaussian(dataset.GaussianSpec{
		Name: "core-test", Features: 60, Classes: 4, TrainPer: 25, TestPer: 10,
		Separation: 0.2, Noise: 0.08, ActiveFraction: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func baseConfig(d *dataset.Dataset) Config {
	return Config{
		HD:        hdc.Config{Dim: 2000, Features: d.Features, Levels: 16, Seed: 2},
		Quantizer: quant.Identity{},
	}
}

func TestTrainBaseline(t *testing.T) {
	d := smallTask(t)
	p, err := Train(baseConfig(d), d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := p.Evaluate(d); acc < 0.9 {
		t.Errorf("baseline accuracy = %v, want ≥ 0.9", acc)
	}
	r := p.Report()
	if r.Private || r.NoiseStd != 0 {
		t.Errorf("non-private pipeline reported privacy: %+v", r)
	}
	if r.KeptDims != 2000 {
		t.Errorf("KeptDims = %d", r.KeptDims)
	}
}

func TestTrainQuantized(t *testing.T) {
	d := smallTask(t)
	for _, q := range quant.Schemes() {
		cfg := baseConfig(d)
		cfg.Quantizer = q
		p, err := Train(cfg, d)
		if err != nil {
			t.Fatalf("%s: %v", q.Name(), err)
		}
		if acc := p.Evaluate(d); acc < 0.85 {
			t.Errorf("%s accuracy = %v, want ≥ 0.85 on easy task", q.Name(), acc)
		}
	}
}

func TestTrainPruned(t *testing.T) {
	d := smallTask(t)
	cfg := baseConfig(d)
	cfg.Quantizer = quant.Ternary{}
	cfg.KeepDims = 800
	cfg.RetrainEpochs = 2
	p, err := Train(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mask() == nil {
		t.Fatal("expected a pruning mask")
	}
	if got := p.Mask().Kept(); got != 800 {
		t.Errorf("kept dims = %d, want 800", got)
	}
	// Pruned dims must be zero in every class.
	for l := 0; l < p.Model().NumClasses(); l++ {
		c := p.Model().Class(l)
		for j, keep := range p.Mask().Keep {
			if !keep && c[j] != 0 {
				t.Fatalf("pruned dim %d of class %d is %v", j, l, c[j])
			}
		}
	}
	if acc := p.Evaluate(d); acc < 0.85 {
		t.Errorf("pruned accuracy = %v", acc)
	}
	if p.Report().KeptDims != 800 {
		t.Errorf("report kept = %d", p.Report().KeptDims)
	}
}

func TestTrainPrivate(t *testing.T) {
	d := smallTask(t)
	cfg := baseConfig(d)
	cfg.Quantizer = quant.BiasedTernary{}
	cfg.KeepDims = 1000
	cfg.RetrainEpochs = 1
	cfg.DP = &dp.Params{Epsilon: 4, Delta: 1e-5}
	cfg.NoiseSeed = 3
	p, err := Train(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Report()
	if !r.Private {
		t.Fatal("expected a private report")
	}
	// Sensitivity must be the Eq. 14 value over kept dims: sqrt(1000/2).
	if want := math.Sqrt(500); math.Abs(r.Sensitivity-want) > 1e-9 {
		t.Errorf("sensitivity = %v, want %v", r.Sensitivity, want)
	}
	if r.NoiseStd <= 0 || r.SigmaFactor <= 0 {
		t.Errorf("noise fields not populated: %+v", r)
	}
	if r.Epsilon != 4 || r.Delta != 1e-5 {
		t.Errorf("budget echo wrong: %+v", r)
	}
	// With a loose ε on an easy task, accuracy should survive.
	if acc := p.Evaluate(d); acc < 0.75 {
		t.Errorf("private accuracy = %v, want ≥ 0.75", acc)
	}
	// Noise must not have landed on pruned dimensions.
	for l := 0; l < p.Model().NumClasses(); l++ {
		c := p.Model().Class(l)
		for j, keep := range p.Mask().Keep {
			if !keep && c[j] != 0 {
				t.Fatalf("noise on pruned dim %d", j)
			}
		}
	}
}

func TestTrainPrivateUnquantizedUsesRawSensitivity(t *testing.T) {
	d := smallTask(t)
	cfg := baseConfig(d)
	cfg.DP = &dp.Params{Epsilon: 1000, Delta: 1e-5} // absurd ε so accuracy survives
	p, err := Train(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	want := quant.RawL2Sensitivity(2000, d.Features)
	if math.Abs(p.Report().Sensitivity-want) > 1e-9 {
		t.Errorf("sensitivity = %v, want Eq.12 %v", p.Report().Sensitivity, want)
	}
}

func TestPrivacyCostOrdering(t *testing.T) {
	// Tight ε must cost at least as much accuracy as loose ε (Fig. 8).
	d := smallTask(t)
	accAt := func(eps float64) float64 {
		cfg := baseConfig(d)
		cfg.Quantizer = quant.Ternary{}
		cfg.DP = &dp.Params{Epsilon: eps, Delta: 1e-5}
		cfg.NoiseSeed = 7
		p, err := Train(cfg, d)
		if err != nil {
			t.Fatal(err)
		}
		return p.Evaluate(d)
	}
	loose, tight := accAt(8), accAt(0.01)
	if tight > loose+0.05 {
		t.Errorf("tight ε accuracy %v should not beat loose %v", tight, loose)
	}
}

func TestConfigValidation(t *testing.T) {
	d := smallTask(t)
	good := baseConfig(d)
	bad := []func(Config) Config{
		func(c Config) Config { c.Quantizer = nil; return c },
		func(c Config) Config { c.KeepDims = -1; return c },
		func(c Config) Config { c.KeepDims = c.HD.Dim + 1; return c },
		func(c Config) Config { c.RetrainEpochs = -1; return c },
		func(c Config) Config { c.DP = &dp.Params{}; return c },
		func(c Config) Config { c.HD.Dim = 0; return c },
		func(c Config) Config { c.Encoding = Encoding(9); return c },
	}
	for i, mutate := range bad {
		if _, err := Train(mutate(good), d); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
	// Dataset/config feature mismatch.
	cfg := good
	cfg.HD.Features = 3
	if _, err := Train(cfg, d); err == nil {
		t.Error("feature mismatch should fail")
	}
}

func TestScalarEncodingPipeline(t *testing.T) {
	d := smallTask(t)
	cfg := baseConfig(d)
	cfg.Encoding = EncodingScalar
	p, err := Train(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := p.Evaluate(d); acc < 0.85 {
		t.Errorf("scalar pipeline accuracy = %v", acc)
	}
	if _, ok := p.Encoder().(*hdc.ScalarEncoder); !ok {
		t.Errorf("encoder type = %T", p.Encoder())
	}
}

func TestPredictMatchesEvaluate(t *testing.T) {
	d := smallTask(t)
	p, err := Train(baseConfig(d), d)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range d.TestX {
		if p.Predict(x) == d.TestY[i] {
			correct++
		}
	}
	manual := float64(correct) / float64(len(d.TestX))
	if got := p.Evaluate(d); math.Abs(got-manual) > 1e-12 {
		t.Errorf("Evaluate %v != per-sample %v", got, manual)
	}
}
