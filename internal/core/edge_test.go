package core

import (
	"testing"

	"privehd/internal/attack"
	"privehd/internal/hdc"
	"privehd/internal/vecmath"
)

func edgeHD() hdc.Config {
	return hdc.Config{Dim: 3000, Features: 50, Levels: 8, Seed: 11}
}

func TestNewEdgeValidation(t *testing.T) {
	if _, err := NewEdge(EdgeConfig{}); err == nil {
		t.Error("zero config should fail")
	}
	if _, err := NewEdge(EdgeConfig{HD: edgeHD(), MaskDims: 3000}); err == nil {
		t.Error("masking every dimension should fail")
	}
	if _, err := NewEdge(EdgeConfig{HD: edgeHD(), MaskDims: -1}); err == nil {
		t.Error("negative mask should fail")
	}
}

func TestEdgePrepareQuantizes(t *testing.T) {
	e, err := NewEdge(EdgeConfig{HD: edgeHD(), Encoding: EncodingScalar, Quantize: true})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 50)
	for i := range x {
		x[i] = float64(i) / 50
	}
	h := e.Prepare(x)
	for _, v := range h {
		if v != 1 && v != -1 {
			t.Fatalf("unquantized value %v escaped the edge", v)
		}
	}
}

func TestEdgePrepareMasks(t *testing.T) {
	e, err := NewEdge(EdgeConfig{HD: edgeHD(), Quantize: true, MaskDims: 1000, MaskSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 50)
	for i := range x {
		x[i] = 0.5
	}
	h := e.Prepare(x)
	zeros := 0
	for _, v := range h {
		if v == 0 {
			zeros++
		}
	}
	if zeros != 1000 {
		t.Errorf("masked zeros = %d, want 1000", zeros)
	}
	if e.Mask() == nil || e.Mask().Kept() != 2000 {
		t.Error("mask accessor wrong")
	}
}

func TestEdgeObfuscationDegradesReconstruction(t *testing.T) {
	// End-to-end §III-C claim: an eavesdropper reconstructing from the
	// obfuscated query does much worse than from the raw encoding.
	cfg := edgeHD()
	plain, err := NewEdge(EdgeConfig{HD: cfg, Encoding: EncodingScalar})
	if err != nil {
		t.Fatal(err)
	}
	obfuscated, err := NewEdge(EdgeConfig{HD: cfg, Encoding: EncodingScalar, Quantize: true, MaskDims: 1500, MaskSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 50)
	for i := range x {
		x[i] = float64((i*7)%50) / 50
	}
	truth := make([]float64, len(x))
	for i, v := range x {
		truth[i] = hdc.LevelValue(hdc.LevelIndex(v, cfg.Levels), cfg.Levels)
	}
	bases := plain.Encoder().(hdc.BaseProvider)
	cleanRecon, err := attack.DecodeScaled(bases, plain.Prepare(x))
	if err != nil {
		t.Fatal(err)
	}
	obfRecon, err := attack.DecodeScaled(obfuscated.Encoder().(hdc.BaseProvider), obfuscated.Prepare(x))
	if err != nil {
		t.Fatal(err)
	}
	mseClean := vecmath.MSE(truth, cleanRecon)
	mseObf := vecmath.MSE(truth, obfRecon)
	if mseObf <= mseClean {
		t.Errorf("obfuscated MSE %v should exceed clean MSE %v", mseObf, mseClean)
	}
}

func TestEdgePrepareBatchMatchesPrepare(t *testing.T) {
	e, err := NewEdge(EdgeConfig{HD: edgeHD(), Quantize: true, MaskDims: 500, MaskSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	X := make([][]float64, 5)
	for i := range X {
		X[i] = make([]float64, 50)
		for k := range X[i] {
			X[i][k] = float64((i+k)%10) / 10
		}
	}
	batch := e.PrepareBatch(X, 2)
	for i, x := range X {
		single := e.Prepare(x)
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("batch/single mismatch at sample %d dim %d", i, j)
			}
		}
	}
}
