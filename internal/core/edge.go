package core

import (
	"fmt"
	"runtime"
	"sync"

	"privehd/internal/encslice"
	"privehd/internal/hdc"
	"privehd/internal/hrand"
	"privehd/internal/par"
	"privehd/internal/prune"
	"privehd/internal/quant"
)

// EdgeConfig assembles the §III-C inference-privacy path: the edge device
// encodes locally and obfuscates the query — 1-bit quantization plus random
// dimension masking — before offloading to an untrusted host. The host's
// full-precision model is neither accessed nor modified ("our technique
// does not need to modify or access the trained model").
type EdgeConfig struct {
	// HD is the encoder geometry; it must match the cloud model's
	// encoder (base hypervectors are shared public setup).
	HD hdc.Config
	// Encoding selects Eq. 2a or 2b.
	Encoding Encoding
	// Quantize applies 1-bit (bipolar) quantization to outgoing queries.
	Quantize bool
	// MaskDims nullifies this many randomly chosen dimensions of every
	// outgoing query (the same dimensions for all queries, chosen at
	// setup).
	MaskDims int
	// MaskSeed seeds the mask choice.
	MaskSeed uint64
}

// Edge prepares obfuscated queries on the device.
type Edge struct {
	cfg     EdgeConfig
	encoder hdc.Encoder
	// packed is the encoder's fused bit-sliced path, non-nil when the
	// device can derive the 1-bit query straight from popcounts.
	packed hdc.PackedEncoder
	mask   *prune.Mask // nil when MaskDims == 0
	// scratch pools the packed-query buffer the fused path quantizes into.
	scratch sync.Pool
}

// NewEdge builds the edge-side encoder.
func NewEdge(cfg EdgeConfig) (*Edge, error) {
	if err := cfg.HD.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaskDims < 0 || cfg.MaskDims >= cfg.HD.Dim {
		return nil, fmt.Errorf("core: MaskDims %d out of range [0,%d)", cfg.MaskDims, cfg.HD.Dim)
	}
	enc, err := newEncoder(Config{HD: cfg.HD, Encoding: cfg.Encoding, Quantizer: quant.Identity{}})
	if err != nil {
		return nil, err
	}
	e := &Edge{cfg: cfg, encoder: enc}
	e.packed, _ = enc.(hdc.PackedEncoder)
	if cfg.MaskDims > 0 {
		src := hrand.New(cfg.MaskSeed)
		e.mask = prune.RandomMask(cfg.HD.Dim, cfg.MaskDims, src.SampleK)
	}
	return e, nil
}

// Encoder exposes the underlying encoder (shared setup with the cloud).
func (e *Edge) Encoder() hdc.Encoder { return e.encoder }

// Mask returns the query mask, or nil when masking is off.
func (e *Edge) Mask() *prune.Mask { return e.mask }

// Prepare returns the obfuscated query hypervector for one input — what
// actually crosses the network. A quantizing edge with an engine-backed
// encoder derives the 1-bit query on the fused bit-sliced path (sign bits
// straight from integer popcounts, bit-identical to encode-then-quantize);
// only the returned wire vector is allocated.
func (e *Edge) Prepare(x []float64) []float64 {
	h := e.prepareUnmasked(x)
	if e.mask != nil {
		e.mask.Apply(h)
	}
	return h
}

// prepareUnmasked encodes (and, when configured, 1-bit quantizes) one
// input into a fresh vector.
func (e *Edge) prepareUnmasked(x []float64) []float64 {
	if !e.cfg.Quantize {
		return e.encoder.Encode(x)
	}
	if e.packed != nil {
		pk := e.getPacked()
		if e.packed.EncodePackedInto(x, encslice.SchemeBipolar, *pk) {
			h := make([]float64, e.cfg.HD.Dim)
			for j, s := range *pk {
				h[j] = float64(s)
			}
			e.scratch.Put(pk)
			return h
		}
		e.scratch.Put(pk)
	}
	return quant.Bipolar{}.Quantize(e.encoder.Encode(x))
}

func (e *Edge) getPacked() *[]int8 {
	if p, ok := e.scratch.Get().(*[]int8); ok {
		return p
	}
	s := make([]int8, e.cfg.HD.Dim)
	return &s
}

// PrepareBatch obfuscates a batch of inputs, spreading Prepare over
// workers (<=0 selects GOMAXPROCS) with rows claimed off an atomic cursor.
func (e *Edge) PrepareBatch(X [][]float64, workers int) [][]float64 {
	out := make([][]float64, len(X))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	par.ForEach(len(X), workers, func(i int) {
		out[i] = e.Prepare(X[i])
	})
	return out
}
