package core

import (
	"fmt"

	"privehd/internal/hdc"
	"privehd/internal/hrand"
	"privehd/internal/prune"
	"privehd/internal/quant"
)

// EdgeConfig assembles the §III-C inference-privacy path: the edge device
// encodes locally and obfuscates the query — 1-bit quantization plus random
// dimension masking — before offloading to an untrusted host. The host's
// full-precision model is neither accessed nor modified ("our technique
// does not need to modify or access the trained model").
type EdgeConfig struct {
	// HD is the encoder geometry; it must match the cloud model's
	// encoder (base hypervectors are shared public setup).
	HD hdc.Config
	// Encoding selects Eq. 2a or 2b.
	Encoding Encoding
	// Quantize applies 1-bit (bipolar) quantization to outgoing queries.
	Quantize bool
	// MaskDims nullifies this many randomly chosen dimensions of every
	// outgoing query (the same dimensions for all queries, chosen at
	// setup).
	MaskDims int
	// MaskSeed seeds the mask choice.
	MaskSeed uint64
}

// Edge prepares obfuscated queries on the device.
type Edge struct {
	cfg     EdgeConfig
	encoder hdc.Encoder
	mask    *prune.Mask // nil when MaskDims == 0
}

// NewEdge builds the edge-side encoder.
func NewEdge(cfg EdgeConfig) (*Edge, error) {
	if err := cfg.HD.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaskDims < 0 || cfg.MaskDims >= cfg.HD.Dim {
		return nil, fmt.Errorf("core: MaskDims %d out of range [0,%d)", cfg.MaskDims, cfg.HD.Dim)
	}
	enc, err := newEncoder(Config{HD: cfg.HD, Encoding: cfg.Encoding, Quantizer: quant.Identity{}})
	if err != nil {
		return nil, err
	}
	e := &Edge{cfg: cfg, encoder: enc}
	if cfg.MaskDims > 0 {
		src := hrand.New(cfg.MaskSeed)
		e.mask = prune.RandomMask(cfg.HD.Dim, cfg.MaskDims, src.SampleK)
	}
	return e, nil
}

// Encoder exposes the underlying encoder (shared setup with the cloud).
func (e *Edge) Encoder() hdc.Encoder { return e.encoder }

// Mask returns the query mask, or nil when masking is off.
func (e *Edge) Mask() *prune.Mask { return e.mask }

// Prepare returns the obfuscated query hypervector for one input — what
// actually crosses the network.
func (e *Edge) Prepare(x []float64) []float64 {
	h := e.encoder.Encode(x)
	if e.cfg.Quantize {
		h = quant.Bipolar{}.Quantize(h)
	}
	if e.mask != nil {
		e.mask.Apply(h)
	}
	return h
}

// PrepareBatch obfuscates a batch of inputs.
func (e *Edge) PrepareBatch(X [][]float64, workers int) [][]float64 {
	raw := hdc.EncodeBatch(e.encoder, X, workers)
	out := make([][]float64, len(raw))
	for i, h := range raw {
		if e.cfg.Quantize {
			h = quant.Bipolar{}.Quantize(h)
		}
		if e.mask != nil {
			h = e.mask.AppliedCopy(h)
		}
		out[i] = h
	}
	return out
}
