//go:build !race

package core

// raceEnabled reports that the race detector is inactive.
const raceEnabled = false
