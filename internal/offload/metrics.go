package offload

import (
	"net"

	"privehd/internal/metrics"
)

// Server-side instrumentation, registered on the process-global
// metrics.Default registry so one /metrics scrape covers every Server in
// the process. All of these are touched on hot paths and must stay
// zero-alloc: counters and gauges are single atomics, and every Vec child
// used per frame is resolved through the lock-free single-label fast path.
var (
	mConnsTotal = metrics.Default.NewCounter(
		"privehd_server_connections_total",
		"Connections accepted by the offload server, including ones later rejected at the handshake.")
	mConnsActive = metrics.Default.NewGauge(
		"privehd_server_connections_active",
		"Currently open offload server connections.")
	mRejections = metrics.Default.NewCounterVec(
		"privehd_server_rejections_total",
		"Typed wire rejections by failure code (handshake codes, per-frame reply codes, and overload).",
		"reason")
	mRequests = metrics.Default.NewCounterVec(
		"privehd_server_requests_total",
		"Request frames answered, by operation.",
		"op")
	mQueries = metrics.Default.NewCounterVec(
		"privehd_server_queries_total",
		"Queries classified, by model name. One batch frame counts each of its queries.",
		"model")
	mRequestSeconds = metrics.Default.NewHistogramVec(
		"privehd_server_request_seconds",
		"Server-side latency of one request frame, from decode to reply encode, by operation.",
		nil, "op")
	mInflight = metrics.Default.NewGauge(
		"privehd_server_inflight_requests",
		"Request frames currently being answered across all connections.")
	mReadBytes = metrics.Default.NewCounter(
		"privehd_server_read_bytes_total",
		"Bytes read from offload client connections.")
	mWrittenBytes = metrics.Default.NewCounter(
		"privehd_server_written_bytes_total",
		"Bytes written to offload client connections.")
)

// opLabel maps a wire op to its metric label: the classify op is the empty
// string on the wire (unreadable as a label), and unknown ops collapse to
// one fixed label so a peer sending junk op strings cannot mint unbounded
// label cardinality.
func opLabel(op string) string {
	switch op {
	case OpClassify:
		return "classify"
	case OpListModels:
		return "list-models"
	case OpPartialScores:
		return "partial-scores"
	case OpPing:
		return "ping"
	default:
		return "unsupported"
	}
}

// closeWriter is the half-close capability gracefulClose relies on to send
// a clean FIN instead of a RST on shutdown.
type closeWriter interface{ CloseWrite() error }

// countingConn wraps an accepted connection to meter bytes in and out. It
// deliberately does NOT implement CloseWrite itself: wrapping a connection
// must not grant net.Pipe-style conns a half-close they don't have, or
// gracefulClose would misbehave. countConn picks the wider wrapper when
// the underlying conn supports it.
type countingConn struct {
	net.Conn
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		mReadBytes.Add(uint64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		mWrittenBytes.Add(uint64(n))
	}
	return n, err
}

// countingConnCW additionally forwards CloseWrite for conns that have it
// (TCP), preserving the graceful-shutdown FIN path through the wrapper.
type countingConnCW struct {
	countingConn
}

func (c *countingConnCW) CloseWrite() error {
	return c.Conn.(closeWriter).CloseWrite()
}

// countConn wraps conn with byte metering, preserving CloseWrite exactly
// when the underlying connection provides it.
func countConn(conn net.Conn) net.Conn {
	if _, ok := conn.(closeWriter); ok {
		return &countingConnCW{countingConn{Conn: conn}}
	}
	return &countingConn{Conn: conn}
}
