package offload

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"privehd/internal/attack"
	"privehd/internal/core"
	"privehd/internal/dataset"
	"privehd/internal/hdc"
	"privehd/internal/vecmath"
)

// startServer runs a server on a loopback listener and returns its address
// and a shutdown func.
func startServer(t *testing.T, m *hdc.Model, opts ...ServerOption) (string, *Server, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m, opts...)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	cleanup := func() {
		srv.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Error("server did not shut down")
		}
	}
	return lis.Addr().String(), srv, cleanup
}

func toyModel() *hdc.Model {
	m := hdc.NewModel(2, 4)
	m.Add(0, []float64{1, 1, 0, 0})
	m.Add(1, []float64{0, 0, 1, 1})
	return m
}

func dialToy(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(context.Background(), "tcp", addr, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClassifyOverTCP(t *testing.T) {
	addr, srv, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()
	if c.Dim() != 4 || c.Classes() != 2 || c.MaxBatch() != DefaultMaxBatch {
		t.Errorf("handshake advertised dim=%d classes=%d maxBatch=%d", c.Dim(), c.Classes(), c.MaxBatch())
	}
	label, scores, err := c.Classify([]float64{2, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 0 {
		t.Errorf("label = %d, want 0", label)
	}
	if len(scores) != 2 || scores[0] <= scores[1] {
		t.Errorf("scores = %v", scores)
	}
	// Stream another query on the same connection.
	label, _, err = c.Classify([]float64{0, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Errorf("label = %d, want 1", label)
	}
	if srv.Served() != 2 {
		t.Errorf("Served = %d, want 2", srv.Served())
	}
}

func TestHandshakeRejectsWrongDim(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	_, err := Dial(context.Background(), "tcp", addr, 5, 0)
	if !errors.Is(err, ErrGeometryMismatch) {
		t.Errorf("dim-5 client against dim-4 model: err = %v, want ErrGeometryMismatch", err)
	}
}

func TestHandshakeRejectsWrongClasses(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	_, err := Dial(context.Background(), "tcp", addr, 4, 7)
	if !errors.Is(err, ErrGeometryMismatch) {
		t.Errorf("7-class client against 2-class model: err = %v, want ErrGeometryMismatch", err)
	}
	// Classes 0 means "unknown" and is accepted.
	c, err := Dial(context.Background(), "tcp", addr, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestHandshakeRejectsWrongVersion(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Hand-rolled handshake from a hypothetical v3 client.
	if _, err := conn.Write([]byte{'P', 'H', 'D', ProtocolVersion + 1}); err != nil {
		t.Fatal(err)
	}
	var hello ServerHello
	if err := gob.NewDecoder(conn).Decode(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Code != codeVersion {
		t.Errorf("hello.Code = %q, want %q", hello.Code, codeVersion)
	}
	if err := codeError(hello.Code, hello.Detail); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("codeError = %v, want ErrVersionMismatch", err)
	}
	if hello.Version != ProtocolVersion {
		t.Errorf("server advertised v%d, want v%d", hello.Version, ProtocolVersion)
	}
}

func TestHandshakeRejectsBadMagic(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A legacy (v1) peer opens with a gob stream, not the magic.
	if err := gob.NewEncoder(conn).Encode(Query{Vector: []float64{1, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	var hello ServerHello
	if err := gob.NewDecoder(conn).Decode(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Code != codeBadMagic {
		t.Errorf("hello.Code = %q, want %q", hello.Code, codeBadMagic)
	}
}

func TestServerRejectsOutOfAlphabetSymbols(t *testing.T) {
	addr, srv, cleanup := startServer(t, toyModel())
	defer cleanup()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(conn, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Craft a request whose packed symbols escape the advertised −2…+1
	// alphabet; an honest PackQuery would refuse to build it.
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(Request{Queries: []Query{{Packed: []int8{5, 0, 0, 0}}}}); err != nil {
		t.Fatal(err)
	}
	var reply Reply
	if err := gob.NewDecoder(conn).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Code != codeSymbol {
		t.Errorf("reply.Code = %q, want %q", reply.Code, codeSymbol)
	}
	if err := codeError(reply.Code, reply.Detail); !errors.Is(err, ErrSymbolOutOfRange) {
		t.Errorf("codeError = %v, want ErrSymbolOutOfRange", err)
	}
	if srv.Served() != 0 {
		t.Errorf("rejected query counted as served: %d", srv.Served())
	}
}

func TestServerRejectsOversizedBatch(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel(), WithMaxBatch(2))
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()
	if c.MaxBatch() != 2 {
		t.Fatalf("advertised MaxBatch = %d, want 2", c.MaxBatch())
	}
	// The client honors the advertised limit by chunking, so a 5-query
	// batch succeeds through multiple round trips.
	labels, err := c.ClassifyBatch([][]float64{
		{2, 1, 0, 0}, {0, 0, 1, 2}, {3, 3, 0, 0}, {0, 0, 2, 2}, {1, 2, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1, 0}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
	// A misbehaving client that ignores the limit is rejected.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewClient(raw, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	req := Request{Queries: make([]Query, 3)}
	for i := range req.Queries {
		req.Queries[i] = Query{Vector: []float64{1, 0, 0, 0}}
	}
	if err := gob.NewEncoder(raw).Encode(req); err != nil {
		t.Fatal(err)
	}
	var reply Reply
	if err := gob.NewDecoder(raw).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if err := codeError(reply.Code, reply.Detail); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("oversized batch: %v, want ErrBatchTooLarge", err)
	}
}

func TestServerRejectsWrongDimQuery(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()
	if _, _, err := c.Classify([]float64{0.5}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, srv, cleanup := startServer(t, toyModel())
	defer cleanup()
	const clients, queries = 8, 10
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			c, err := Dial(context.Background(), "tcp", addr, 4, 2)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for q := 0; q < queries; q++ {
				if _, _, err := c.Classify([]float64{1, 1, 0, 0}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if srv.Served() != clients*queries {
		t.Errorf("Served = %d, want %d", srv.Served(), clients*queries)
	}
}

func TestContextCancelStopsServer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(toyModel())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, lis) }()

	c, err := Dial(context.Background(), "tcp", lis.Addr().String(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Classify([]float64{1, 1, 0, 0}); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve after cancel = %v, want nil", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
	// The open connection is closed by the shutdown.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, err := c.Classify([]float64{1, 1, 0, 0}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection still served after shutdown")
		}
	}
}

func TestGracefulShutdownFinishesInFlight(t *testing.T) {
	addr, srv, _ := startServer(t, toyModel())
	var wg sync.WaitGroup
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(context.Background(), "tcp", addr, 4, 0)
			if err != nil {
				results <- err
				return
			}
			defer c.Close()
			if _, _, err := c.Classify([]float64{1, 1, 0, 0}); err != nil {
				results <- err
				return
			}
			results <- nil
		}()
	}
	wg.Wait()
	ctx, cancelT := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelT()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown = %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	if srv.Served() != 4 {
		t.Errorf("Served = %d, want 4", srv.Served())
	}
}

func TestClassifyBatch(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()
	labels, err := c.ClassifyBatch([][]float64{
		{2, 1, 0, 0},
		{0, 0, 1, 2},
		{3, 3, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("labels = %v, want %v", labels, want)
		}
	}
	// A bad query in the batch fails the whole request with no results.
	if _, err := c.ClassifyBatch([][]float64{{0.5, 1, 0, 0}, {0.5}}); err == nil {
		t.Error("expected error for bad dimension")
	}
}

func TestPackQuery(t *testing.T) {
	packed, ok := PackQuery([]float64{-2, -1, 0, 1})
	if !ok {
		t.Fatal("integer query should pack")
	}
	want := []int8{-2, -1, 0, 1}
	for i := range want {
		if packed[i] != want[i] {
			t.Fatalf("packed = %v", packed)
		}
	}
	if _, ok := PackQuery([]float64{0.5}); ok {
		t.Error("fractional query must not pack")
	}
	if _, ok := PackQuery([]float64{1000}); ok {
		t.Error("out-of-range query must not pack")
	}
	// Values that fit int8 but escape the protocol alphabet must travel
	// full-precision rather than pack into symbols the server will reject.
	if _, ok := PackQuery([]float64{2}); ok {
		t.Error("+2 is outside the −2…+1 alphabet and must not pack")
	}
	if _, ok := PackQuery([]float64{-3}); ok {
		t.Error("−3 is outside the −2…+1 alphabet and must not pack")
	}
}

func TestPackedQueryClassifiesIdentically(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()
	// A quantized (integer) query takes the packed path; a fractional one
	// takes the float path. Both must classify correctly.
	label, _, err := c.Classify([]float64{1, 1, -1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 0 {
		t.Errorf("packed-path label = %d, want 0", label)
	}
	label, _, err = c.Classify([]float64{0.1, 0.2, 1.5, 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Errorf("float-path label = %d, want 1", label)
	}
}

func TestPackedWireIsSmaller(t *testing.T) {
	// The point of packing: a quantized 10k-dim query costs ~1 byte per
	// dimension on the wire vs 8 for float64.
	dim := 10000
	qFloat := make([]float64, dim)
	qInt := make([]float64, dim)
	for i := range qFloat {
		// Full-mantissa values, as real (unquantized) encodings have.
		qFloat[i] = 0.1234567890123 * float64(i+1)
		qInt[i] = float64(i%3 - 1)
	}
	sizeOf := func(q Query) int {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(q); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	packed, ok := PackQuery(qInt)
	if !ok {
		t.Fatal("should pack")
	}
	floatBytes := sizeOf(Query{Vector: qFloat})
	packedBytes := sizeOf(Query{Packed: packed})
	if packedBytes*4 > floatBytes {
		t.Errorf("packed %dB vs float %dB: expected ≥4× saving", packedBytes, floatBytes)
	}
}

func TestWiretapSeesQueries(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tapped, tap := Tap(raw)
	c, err := NewClient(tapped, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// One packed (integer) and one full-precision query; the tap must see
	// both wire forms.
	queries := [][]float64{{1, -1, 0, 1}, {0.25, 1, 0, 0}}
	for _, q := range queries {
		if _, _, err := c.Classify(q); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(2 * time.Second)
	for {
		qs := tap.Queries()
		if len(qs) == len(queries) {
			for i, want := range queries {
				for j := range want {
					if qs[i][j] != want[j] {
						t.Fatalf("tapped query %d = %v, want %v", i, qs[i], want)
					}
				}
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("tap captured %d queries, want %d", len(qs), len(queries))
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestEndToEndObfuscatedInference(t *testing.T) {
	// Full §III-C round trip: train a full-precision model, serve it,
	// classify through an obfuscating edge, and verify (a) accuracy
	// survives and (b) the eavesdropped queries reconstruct poorly.
	if testing.Short() {
		t.Skip("end-to-end offload test is slow")
	}
	d, err := dataset.Gaussian(dataset.GaussianSpec{
		Name: "offload-e2e", Features: 40, Classes: 3, TrainPer: 30, TestPer: 8,
		Separation: 0.25, Noise: 0.07, ActiveFraction: 0.5, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	hdcfg := hdc.Config{Dim: 4000, Features: 40, Levels: 16, Seed: 22}
	// Cloud: full-precision model over plain encodings.
	enc, err := hdc.NewScalarEncoder(hdcfg)
	if err != nil {
		t.Fatal(err)
	}
	trainEnc := hdc.EncodeBatch(enc, d.TrainX, 0)
	model, err := hdc.Train(trainEnc, d.TrainY, d.Classes, hdcfg.Dim)
	if err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startServer(t, model)
	defer cleanup()

	// Edge: quantize + mask 25% of dims.
	edge, err := core.NewEdge(core.EdgeConfig{
		HD: hdcfg, Encoding: core.EncodingScalar, Quantize: true, MaskDims: 1000, MaskSeed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tapped, tap := Tap(raw)
	client, err := NewClient(tapped, hdcfg.Dim, d.Classes)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	correct := 0
	for i, x := range d.TestX {
		label, _, err := client.Classify(edge.Prepare(x))
		if err != nil {
			t.Fatal(err)
		}
		if label == d.TestY[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(d.TestX))
	if acc < 0.8 {
		t.Errorf("obfuscated accuracy = %v, want ≥ 0.8", acc)
	}

	// Eavesdropper: wait for all taps, reconstruct, compare with the
	// reconstruction from unobfuscated queries.
	deadline := time.After(2 * time.Second)
	for len(tap.Queries()) < len(d.TestX) {
		select {
		case <-deadline:
			t.Fatalf("tap captured %d/%d queries", len(tap.Queries()), len(d.TestX))
		case <-time.After(10 * time.Millisecond):
		}
	}
	queries := tap.Queries()
	var obfMSE, cleanMSE float64
	for i, x := range d.TestX {
		truth := make([]float64, len(x))
		for k, v := range x {
			truth[k] = hdc.LevelValue(hdc.LevelIndex(v, hdcfg.Levels), hdcfg.Levels)
		}
		obfRecon, err := attack.DecodeScaled(enc, queries[i])
		if err != nil {
			t.Fatal(err)
		}
		cleanRecon, err := attack.DecodeScaled(enc, enc.Encode(x))
		if err != nil {
			t.Fatal(err)
		}
		obfMSE += vecmath.MSE(truth, obfRecon)
		cleanMSE += vecmath.MSE(truth, cleanRecon)
	}
	if obfMSE <= cleanMSE {
		t.Errorf("eavesdropper MSE with obfuscation (%v) should exceed clean (%v)", obfMSE, cleanMSE)
	}
}
