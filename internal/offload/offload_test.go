package offload

import (
	"bytes"
	"encoding/gob"
	"net"
	"testing"
	"time"

	"privehd/internal/attack"
	"privehd/internal/core"
	"privehd/internal/dataset"
	"privehd/internal/hdc"
	"privehd/internal/vecmath"
)

// startServer runs a server on a loopback listener and returns its address
// and a shutdown func.
func startServer(t *testing.T, m *hdc.Model) (string, *Server, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	cleanup := func() {
		srv.Close()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Error("server did not shut down")
		}
	}
	return lis.Addr().String(), srv, cleanup
}

func toyModel() *hdc.Model {
	m := hdc.NewModel(2, 4)
	m.Add(0, []float64{1, 1, 0, 0})
	m.Add(1, []float64{0, 0, 1, 1})
	return m
}

func TestClassifyOverTCP(t *testing.T) {
	addr, srv, cleanup := startServer(t, toyModel())
	defer cleanup()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	label, scores, err := c.Classify([]float64{2, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 0 {
		t.Errorf("label = %d, want 0", label)
	}
	if len(scores) != 2 || scores[0] <= scores[1] {
		t.Errorf("scores = %v", scores)
	}
	// Stream another query on the same connection.
	label, _, err = c.Classify([]float64{0, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Errorf("label = %d, want 1", label)
	}
	if srv.Served() != 2 {
		t.Errorf("Served = %d, want 2", srv.Served())
	}
}

func TestServerRejectsWrongDim(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Classify([]float64{1}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, srv, cleanup := startServer(t, toyModel())
	defer cleanup()
	const clients, queries = 8, 10
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			c, err := Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for q := 0; q < queries; q++ {
				if _, _, err := c.Classify([]float64{1, 1, 0, 0}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if srv.Served() != clients*queries {
		t.Errorf("Served = %d, want %d", srv.Served(), clients*queries)
	}
}

func TestClassifyBatch(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	labels, err := c.ClassifyBatch([][]float64{
		{2, 1, 0, 0},
		{0, 0, 1, 2},
		{3, 3, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("labels = %v, want %v", labels, want)
		}
	}
	// A bad query mid-batch returns the labels so far plus an error.
	labels, err = c.ClassifyBatch([][]float64{{1, 1, 0, 0}, {1}})
	if err == nil {
		t.Error("expected error for bad dimension")
	}
	if len(labels) != 1 {
		t.Errorf("partial labels = %v", labels)
	}
}

func TestPackQuery(t *testing.T) {
	packed, ok := PackQuery([]float64{-2, -1, 0, 1})
	if !ok {
		t.Fatal("integer query should pack")
	}
	want := []int8{-2, -1, 0, 1}
	for i := range want {
		if packed[i] != want[i] {
			t.Fatalf("packed = %v", packed)
		}
	}
	if _, ok := PackQuery([]float64{0.5}); ok {
		t.Error("fractional query must not pack")
	}
	if _, ok := PackQuery([]float64{1000}); ok {
		t.Error("out-of-range query must not pack")
	}
}

func TestPackedQueryClassifiesIdentically(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A quantized (integer) query takes the packed path; a fractional one
	// takes the float path. Both must classify correctly.
	label, _, err := c.Classify([]float64{1, 1, -1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 0 {
		t.Errorf("packed-path label = %d, want 0", label)
	}
	label, _, err = c.Classify([]float64{0.1, 0.2, 1.5, 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Errorf("float-path label = %d, want 1", label)
	}
}

func TestPackedWireIsSmaller(t *testing.T) {
	// The point of packing: a quantized 10k-dim query costs ~1 byte per
	// dimension on the wire vs 8 for float64.
	dim := 10000
	qFloat := make([]float64, dim)
	qInt := make([]float64, dim)
	for i := range qFloat {
		// Full-mantissa values, as real (unquantized) encodings have.
		qFloat[i] = 0.1234567890123 * float64(i+1)
		qInt[i] = float64(i%3 - 1)
	}
	sizeOf := func(q Query) int {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(q); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	packed, ok := PackQuery(qInt)
	if !ok {
		t.Fatal("should pack")
	}
	floatBytes := sizeOf(Query{Vector: qFloat})
	packedBytes := sizeOf(Query{Packed: packed})
	if packedBytes*4 > floatBytes {
		t.Errorf("packed %dB vs float %dB: expected ≥4× saving", packedBytes, floatBytes)
	}
}

func TestWiretapSeesPackedQueries(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tapped, tap := Tap(raw)
	c := NewClient(tapped)
	defer c.Close()
	want := []float64{1, -1, 0, 1} // integer → packed wire form
	if _, _, err := c.Classify(want); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		qs := tap.Queries()
		if len(qs) == 1 {
			for j := range want {
				if qs[0][j] != want[j] {
					t.Fatalf("tapped packed query = %v, want %v", qs[0], want)
				}
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("tap captured %d queries", len(qs))
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestWiretapSeesQueries(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tapped, tap := Tap(raw)
	c := NewClient(tapped)
	defer c.Close()
	want := []float64{1, 1, 0, 0}
	if _, _, err := c.Classify(want); err != nil {
		t.Fatal(err)
	}
	// The tap decodes asynchronously; poll briefly.
	deadline := time.After(2 * time.Second)
	for {
		qs := tap.Queries()
		if len(qs) == 1 {
			for j := range want {
				if qs[0][j] != want[j] {
					t.Fatalf("tapped query = %v, want %v", qs[0], want)
				}
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("tap captured %d queries, want 1", len(qs))
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestEndToEndObfuscatedInference(t *testing.T) {
	// Full §III-C round trip: train a full-precision model, serve it,
	// classify through an obfuscating edge, and verify (a) accuracy
	// survives and (b) the eavesdropped queries reconstruct poorly.
	if testing.Short() {
		t.Skip("end-to-end offload test is slow")
	}
	d, err := dataset.Gaussian(dataset.GaussianSpec{
		Name: "offload-e2e", Features: 40, Classes: 3, TrainPer: 30, TestPer: 8,
		Separation: 0.25, Noise: 0.07, ActiveFraction: 0.5, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	hdcfg := hdc.Config{Dim: 4000, Features: 40, Levels: 16, Seed: 22}
	// Cloud: full-precision model over plain encodings.
	enc, err := hdc.NewScalarEncoder(hdcfg)
	if err != nil {
		t.Fatal(err)
	}
	trainEnc := hdc.EncodeBatch(enc, d.TrainX, 0)
	model, err := hdc.Train(trainEnc, d.TrainY, d.Classes, hdcfg.Dim)
	if err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startServer(t, model)
	defer cleanup()

	// Edge: quantize + mask 25% of dims.
	edge, err := core.NewEdge(core.EdgeConfig{
		HD: hdcfg, Encoding: core.EncodingScalar, Quantize: true, MaskDims: 1000, MaskSeed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tapped, tap := Tap(raw)
	client := NewClient(tapped)
	defer client.Close()

	correct := 0
	for i, x := range d.TestX {
		label, _, err := client.Classify(edge.Prepare(x))
		if err != nil {
			t.Fatal(err)
		}
		if label == d.TestY[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(d.TestX))
	if acc < 0.8 {
		t.Errorf("obfuscated accuracy = %v, want ≥ 0.8", acc)
	}

	// Eavesdropper: wait for all taps, reconstruct, compare with the
	// reconstruction from unobfuscated queries.
	deadline := time.After(2 * time.Second)
	for len(tap.Queries()) < len(d.TestX) {
		select {
		case <-deadline:
			t.Fatalf("tap captured %d/%d queries", len(tap.Queries()), len(d.TestX))
		case <-time.After(10 * time.Millisecond):
		}
	}
	queries := tap.Queries()
	var obfMSE, cleanMSE float64
	for i, x := range d.TestX {
		truth := make([]float64, len(x))
		for k, v := range x {
			truth[k] = hdc.LevelValue(hdc.LevelIndex(v, hdcfg.Levels), hdcfg.Levels)
		}
		obfRecon, err := attack.DecodeScaled(enc, queries[i])
		if err != nil {
			t.Fatal(err)
		}
		cleanRecon, err := attack.DecodeScaled(enc, enc.Encode(x))
		if err != nil {
			t.Fatal(err)
		}
		obfMSE += vecmath.MSE(truth, obfRecon)
		cleanMSE += vecmath.MSE(truth, cleanRecon)
	}
	if obfMSE <= cleanMSE {
		t.Errorf("eavesdropper MSE with obfuscation (%v) should exceed clean (%v)", obfMSE, cleanMSE)
	}
}
