package offload

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"privehd/internal/attack"
	"privehd/internal/core"
	"privehd/internal/dataset"
	"privehd/internal/hdc"
	"privehd/internal/registry"
	"privehd/internal/vecmath"
)

// startServer runs a server on a loopback listener and returns its address
// and a shutdown func.
func startServer(t *testing.T, m *hdc.Model, opts ...ServerOption) (string, *Server, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m, opts...)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	cleanup := func() {
		srv.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Error("server did not shut down")
		}
	}
	return lis.Addr().String(), srv, cleanup
}

func toyModel() *hdc.Model {
	m := hdc.NewModel(2, 4)
	m.Add(0, []float64{1, 1, 0, 0})
	m.Add(1, []float64{0, 0, 1, 1})
	return m
}

func dialToy(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// rawHandshake performs a hand-rolled handshake (any version byte) and
// returns the conn's codecs — for tests that craft wire frames directly,
// which must not go through a Client whose recv goroutine would consume
// the replies.
func rawHandshake(t *testing.T, addr string, version byte, hello Hello) (net.Conn, *gob.Encoder, *gob.Decoder) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if _, err := conn.Write([]byte{'P', 'H', 'D', version}); err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(hello); err != nil {
		t.Fatal(err)
	}
	var sh ServerHello
	if err := dec.Decode(&sh); err != nil {
		t.Fatal(err)
	}
	if sh.Code != "" {
		t.Fatalf("raw handshake rejected: %s (%s)", sh.Code, sh.Detail)
	}
	return conn, enc, dec
}

func TestClassifyOverTCP(t *testing.T) {
	addr, srv, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()
	if c.Dim() != 4 || c.Classes() != 2 || c.MaxBatch() != DefaultMaxBatch {
		t.Errorf("handshake advertised dim=%d classes=%d maxBatch=%d", c.Dim(), c.Classes(), c.MaxBatch())
	}
	label, scores, err := c.Classify([]float64{2, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 0 {
		t.Errorf("label = %d, want 0", label)
	}
	if len(scores) != 2 || scores[0] <= scores[1] {
		t.Errorf("scores = %v", scores)
	}
	// Stream another query on the same connection.
	label, _, err = c.Classify([]float64{0, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Errorf("label = %d, want 1", label)
	}
	if srv.Served() != 2 {
		t.Errorf("Served = %d, want 2", srv.Served())
	}
}

func TestHandshakeRejectsWrongDim(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	_, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 5})
	if !errors.Is(err, ErrGeometryMismatch) {
		t.Errorf("dim-5 client against dim-4 model: err = %v, want ErrGeometryMismatch", err)
	}
}

func TestHandshakeRejectsWrongClasses(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	_, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4, Classes: 7})
	if !errors.Is(err, ErrGeometryMismatch) {
		t.Errorf("7-class client against 2-class model: err = %v, want ErrGeometryMismatch", err)
	}
	// Classes 0 means "unknown" and is accepted.
	c, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestHandshakeRejectsWrongVersion(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Hand-rolled handshake from a hypothetical future client. (v2 is NOT
	// rejected — see TestV2ClientStillServed.)
	if _, err := conn.Write([]byte{'P', 'H', 'D', ProtocolVersion + 1}); err != nil {
		t.Fatal(err)
	}
	var hello ServerHello
	if err := gob.NewDecoder(conn).Decode(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Code != codeVersion {
		t.Errorf("hello.Code = %q, want %q", hello.Code, codeVersion)
	}
	if err := codeError(hello.Code, hello.Detail); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("codeError = %v, want ErrVersionMismatch", err)
	}
	if hello.Version != ProtocolVersion {
		t.Errorf("server advertised v%d, want v%d", hello.Version, ProtocolVersion)
	}
}

func TestHandshakeRejectsBadMagic(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A legacy (v1) peer opens with a gob stream, not the magic.
	if err := gob.NewEncoder(conn).Encode(Query{Vector: []float64{1, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	var hello ServerHello
	if err := gob.NewDecoder(conn).Decode(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Code != codeBadMagic {
		t.Errorf("hello.Code = %q, want %q", hello.Code, codeBadMagic)
	}
}

func TestServerRejectsOutOfAlphabetSymbols(t *testing.T) {
	addr, srv, cleanup := startServer(t, toyModel())
	defer cleanup()
	// Craft a request whose packed symbols escape the advertised −2…+1
	// alphabet; an honest PackQuery would refuse to build it.
	_, enc, dec := rawHandshake(t, addr, ProtocolVersion, Hello{Dim: 4, Classes: 2})
	if err := enc.Encode(Request{Queries: []Query{{Packed: []int8{5, 0, 0, 0}}}}); err != nil {
		t.Fatal(err)
	}
	var reply Reply
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Code != codeSymbol {
		t.Errorf("reply.Code = %q, want %q", reply.Code, codeSymbol)
	}
	if err := codeError(reply.Code, reply.Detail); !errors.Is(err, ErrSymbolOutOfRange) {
		t.Errorf("codeError = %v, want ErrSymbolOutOfRange", err)
	}
	if srv.Served() != 0 {
		t.Errorf("rejected query counted as served: %d", srv.Served())
	}
}

func TestServerRejectsOversizedBatch(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel(), WithMaxBatch(2))
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()
	if c.MaxBatch() != 2 {
		t.Fatalf("advertised MaxBatch = %d, want 2", c.MaxBatch())
	}
	// The client honors the advertised limit by chunking, so a 5-query
	// batch succeeds through multiple round trips.
	labels, err := c.ClassifyBatch([][]float64{
		{2, 1, 0, 0}, {0, 0, 1, 2}, {3, 3, 0, 0}, {0, 0, 2, 2}, {1, 2, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1, 0}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
	// A misbehaving client that ignores the limit is rejected.
	_, renc, rdec := rawHandshake(t, addr, ProtocolVersion, Hello{Dim: 4})
	req := Request{Queries: make([]Query, 3)}
	for i := range req.Queries {
		req.Queries[i] = Query{Vector: []float64{1, 0, 0, 0}}
	}
	if err := renc.Encode(req); err != nil {
		t.Fatal(err)
	}
	var reply Reply
	if err := rdec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if err := codeError(reply.Code, reply.Detail); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("oversized batch: %v, want ErrBatchTooLarge", err)
	}
}

func TestServerRejectsWrongDimQuery(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()
	if _, _, err := c.Classify([]float64{0.5}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, srv, cleanup := startServer(t, toyModel())
	defer cleanup()
	const clients, queries = 8, 10
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			c, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4, Classes: 2})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for q := 0; q < queries; q++ {
				if _, _, err := c.Classify([]float64{1, 1, 0, 0}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if srv.Served() != clients*queries {
		t.Errorf("Served = %d, want %d", srv.Served(), clients*queries)
	}
}

func TestContextCancelStopsServer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(toyModel())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, lis) }()

	c, err := Dial(context.Background(), "tcp", lis.Addr().String(), Hello{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Classify([]float64{1, 1, 0, 0}); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve after cancel = %v, want nil", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
	// The open connection is closed by the shutdown.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, err := c.Classify([]float64{1, 1, 0, 0}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection still served after shutdown")
		}
	}
}

func TestGracefulShutdownFinishesInFlight(t *testing.T) {
	addr, srv, _ := startServer(t, toyModel())
	var wg sync.WaitGroup
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4})
			if err != nil {
				results <- err
				return
			}
			defer c.Close()
			if _, _, err := c.Classify([]float64{1, 1, 0, 0}); err != nil {
				results <- err
				return
			}
			results <- nil
		}()
	}
	wg.Wait()
	ctx, cancelT := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelT()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown = %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	if srv.Served() != 4 {
		t.Errorf("Served = %d, want 4", srv.Served())
	}
}

func TestClassifyBatch(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()
	labels, err := c.ClassifyBatch([][]float64{
		{2, 1, 0, 0},
		{0, 0, 1, 2},
		{3, 3, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("labels = %v, want %v", labels, want)
		}
	}
	// A bad query in the batch fails the whole request with no results.
	if _, err := c.ClassifyBatch([][]float64{{0.5, 1, 0, 0}, {0.5}}); err == nil {
		t.Error("expected error for bad dimension")
	}
}

func TestPackQuery(t *testing.T) {
	packed, ok := PackQuery([]float64{-2, -1, 0, 1})
	if !ok {
		t.Fatal("integer query should pack")
	}
	want := []int8{-2, -1, 0, 1}
	for i := range want {
		if packed[i] != want[i] {
			t.Fatalf("packed = %v", packed)
		}
	}
	if _, ok := PackQuery([]float64{0.5}); ok {
		t.Error("fractional query must not pack")
	}
	if _, ok := PackQuery([]float64{1000}); ok {
		t.Error("out-of-range query must not pack")
	}
	// Values that fit int8 but escape the protocol alphabet must travel
	// full-precision rather than pack into symbols the server will reject.
	if _, ok := PackQuery([]float64{2}); ok {
		t.Error("+2 is outside the −2…+1 alphabet and must not pack")
	}
	if _, ok := PackQuery([]float64{-3}); ok {
		t.Error("−3 is outside the −2…+1 alphabet and must not pack")
	}
}

func TestPackedQueryClassifiesIdentically(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()
	// A quantized (integer) query takes the packed path; a fractional one
	// takes the float path. Both must classify correctly.
	label, _, err := c.Classify([]float64{1, 1, -1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 0 {
		t.Errorf("packed-path label = %d, want 0", label)
	}
	label, _, err = c.Classify([]float64{0.1, 0.2, 1.5, 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Errorf("float-path label = %d, want 1", label)
	}
}

func TestPackedWireIsSmaller(t *testing.T) {
	// The point of packing: a quantized 10k-dim query costs ~1 byte per
	// dimension on the wire vs 8 for float64.
	dim := 10000
	qFloat := make([]float64, dim)
	qInt := make([]float64, dim)
	for i := range qFloat {
		// Full-mantissa values, as real (unquantized) encodings have.
		qFloat[i] = 0.1234567890123 * float64(i+1)
		qInt[i] = float64(i%3 - 1)
	}
	sizeOf := func(q Query) int {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(q); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	packed, ok := PackQuery(qInt)
	if !ok {
		t.Fatal("should pack")
	}
	floatBytes := sizeOf(Query{Vector: qFloat})
	packedBytes := sizeOf(Query{Packed: packed})
	if packedBytes*4 > floatBytes {
		t.Errorf("packed %dB vs float %dB: expected ≥4× saving", packedBytes, floatBytes)
	}
}

func TestWiretapSeesQueries(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tapped, tap := Tap(raw)
	c, err := NewClient(tapped, Hello{Dim: 4, Classes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// One packed (integer) and one full-precision query; the tap must see
	// both wire forms.
	queries := [][]float64{{1, -1, 0, 1}, {0.25, 1, 0, 0}}
	for _, q := range queries {
		if _, _, err := c.Classify(q); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(2 * time.Second)
	for {
		qs := tap.Queries()
		if len(qs) == len(queries) {
			for i, want := range queries {
				for j := range want {
					if qs[i][j] != want[j] {
						t.Fatalf("tapped query %d = %v, want %v", i, qs[i], want)
					}
				}
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("tap captured %d queries, want %d", len(qs), len(queries))
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestEndToEndObfuscatedInference(t *testing.T) {
	// Full §III-C round trip: train a full-precision model, serve it,
	// classify through an obfuscating edge, and verify (a) accuracy
	// survives and (b) the eavesdropped queries reconstruct poorly.
	if testing.Short() {
		t.Skip("end-to-end offload test is slow")
	}
	d, err := dataset.Gaussian(dataset.GaussianSpec{
		Name: "offload-e2e", Features: 40, Classes: 3, TrainPer: 30, TestPer: 8,
		Separation: 0.25, Noise: 0.07, ActiveFraction: 0.5, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	hdcfg := hdc.Config{Dim: 4000, Features: 40, Levels: 16, Seed: 22}
	// Cloud: full-precision model over plain encodings.
	enc, err := hdc.NewScalarEncoder(hdcfg)
	if err != nil {
		t.Fatal(err)
	}
	trainEnc := hdc.EncodeBatch(enc, d.TrainX, 0)
	model, err := hdc.Train(trainEnc, d.TrainY, d.Classes, hdcfg.Dim)
	if err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startServer(t, model)
	defer cleanup()

	// Edge: quantize + mask 25% of dims.
	edge, err := core.NewEdge(core.EdgeConfig{
		HD: hdcfg, Encoding: core.EncodingScalar, Quantize: true, MaskDims: 1000, MaskSeed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tapped, tap := Tap(raw)
	client, err := NewClient(tapped, Hello{Dim: hdcfg.Dim, Classes: d.Classes})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	correct := 0
	for i, x := range d.TestX {
		label, _, err := client.Classify(edge.Prepare(x))
		if err != nil {
			t.Fatal(err)
		}
		if label == d.TestY[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(d.TestX))
	if acc < 0.8 {
		t.Errorf("obfuscated accuracy = %v, want ≥ 0.8", acc)
	}

	// Eavesdropper: wait for all taps, reconstruct, compare with the
	// reconstruction from unobfuscated queries.
	deadline := time.After(2 * time.Second)
	for len(tap.Queries()) < len(d.TestX) {
		select {
		case <-deadline:
			t.Fatalf("tap captured %d/%d queries", len(tap.Queries()), len(d.TestX))
		case <-time.After(10 * time.Millisecond):
		}
	}
	queries := tap.Queries()
	var obfMSE, cleanMSE float64
	for i, x := range d.TestX {
		truth := make([]float64, len(x))
		for k, v := range x {
			truth[k] = hdc.LevelValue(hdc.LevelIndex(v, hdcfg.Levels), hdcfg.Levels)
		}
		obfRecon, err := attack.DecodeScaled(enc, queries[i])
		if err != nil {
			t.Fatal(err)
		}
		cleanRecon, err := attack.DecodeScaled(enc, enc.Encode(x))
		if err != nil {
			t.Fatal(err)
		}
		obfMSE += vecmath.MSE(truth, obfRecon)
		cleanMSE += vecmath.MSE(truth, cleanRecon)
	}
	if obfMSE <= cleanMSE {
		t.Errorf("eavesdropper MSE with obfuscation (%v) should exceed clean (%v)", obfMSE, cleanMSE)
	}
}

// labelModel returns a 2-class dim-4 model that predicts label want for the
// query {1,1,0,0}.
func labelModel(want int) *hdc.Model {
	m := hdc.NewModel(2, 4)
	m.Add(want, []float64{1, 1, 0, 0})
	m.Add(1-want, []float64{0, 0, 1, 1})
	return m
}

// startRegistryServer serves a registry on a loopback listener.
func startRegistryServer(t *testing.T, reg *registry.Registry, opts ...ServerOption) (string, *Server, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewRegistryServer(reg, opts...)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	cleanup := func() {
		srv.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Error("server did not shut down")
		}
	}
	return lis.Addr().String(), srv, cleanup
}

func TestMultiModelServing(t *testing.T) {
	// Two models with opposite label assignments behind one listener; the
	// handshake's model name decides which answers.
	reg := registry.New()
	if _, err := reg.Register("alpha", labelModel(0), registry.EncoderInfo{Levels: 8, Features: 3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("beta", labelModel(1), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	addr, srv, cleanup := startRegistryServer(t, reg)
	defer cleanup()

	q := []float64{1, 1, 0, 0}
	for _, tc := range []struct {
		model string
		want  int
	}{
		{"alpha", 0}, {"beta", 1}, {"", 0}, // "" resolves to the default (first registered)
	} {
		c, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4, Model: tc.model})
		if err != nil {
			t.Fatalf("dial %q: %v", tc.model, err)
		}
		wantName := tc.model
		if wantName == "" {
			wantName = "alpha"
		}
		if got := c.Model(); got != wantName {
			t.Errorf("dial %q bound to model %q, want %q", tc.model, got, wantName)
		}
		if c.ModelVersion() != 1 {
			t.Errorf("dial %q ModelVersion = %d, want 1", tc.model, c.ModelVersion())
		}
		label, _, err := c.Classify(q)
		if err != nil {
			t.Fatalf("classify via %q: %v", tc.model, err)
		}
		if label != tc.want {
			t.Errorf("model %q answered %d, want %d", tc.model, label, tc.want)
		}
		c.Close()
	}
	if srv.Served() != 3 {
		t.Errorf("Served = %d, want 3", srv.Served())
	}
}

func TestUnknownModelRejectedAtHandshake(t *testing.T) {
	reg := registry.New()
	if _, err := reg.Register("only", labelModel(0), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startRegistryServer(t, reg)
	defer cleanup()
	_, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4, Model: "ghost"})
	if !errors.Is(err, ErrUnknownModel) {
		t.Errorf("dial ghost = %v, want ErrUnknownModel", err)
	}
}

func TestEmptyRegistryRejectsDefaultRequests(t *testing.T) {
	addr, _, cleanup := startRegistryServer(t, registry.New())
	defer cleanup()
	_, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4})
	if !errors.Is(err, ErrUnknownModel) {
		t.Errorf("dial empty registry = %v, want ErrUnknownModel", err)
	}
}

func TestAutoConfigureHandshakeDimZero(t *testing.T) {
	reg := registry.New()
	info := registry.EncoderInfo{Encoding: 1, Levels: 16, Features: 40, Seed: 77}
	if _, err := reg.Register("auto", labelModel(0), info); err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startRegistryServer(t, reg)
	defer cleanup()
	// Dim 0 = "any geometry": the server answers with the model's geometry
	// and full encoder setup instead of rejecting.
	c, err := Dial(context.Background(), "tcp", addr, Hello{Model: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := c.ServerHello()
	if h.Dim != 4 || h.Classes != 2 {
		t.Errorf("geometry = dim %d classes %d", h.Dim, h.Classes)
	}
	if h.Encoding != info.Encoding || h.Levels != info.Levels || h.Features != info.Features || h.Seed != info.Seed {
		t.Errorf("encoder setup = %+v, want %+v", h, info)
	}
	if label, _, err := c.Classify([]float64{1, 1, 0, 0}); err != nil || label != 0 {
		t.Errorf("classify after auto-configure: label %d, err %v", label, err)
	}
}

func TestHotSwapUnderLiveTraffic(t *testing.T) {
	// Clients stream while the model behind their connection is swapped
	// repeatedly: no query may fail, and both publications' answers must
	// be observed. Run with -race this exercises the RCU swap path.
	reg := registry.New()
	if _, err := reg.Register("hot", labelModel(0), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startRegistryServer(t, reg, WithWorkers(4))
	defer cleanup()

	const clients = 4
	stop := make(chan struct{})
	type tally struct {
		zeros, ones int
		err         error
	}
	tallies := make(chan tally, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var tl tally
			defer func() { tallies <- tl }()
			c, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4, Model: "hot"})
			if err != nil {
				tl.err = err
				return
			}
			defer c.Close()
			q := [][]float64{{1, 1, 0, 0}, {1, 1, 0, 0}, {1, 1, 0, 0}}
			for {
				select {
				case <-stop:
					return
				default:
				}
				labels, err := c.ClassifyBatch(q)
				if err != nil {
					tl.err = err
					return
				}
				for _, l := range labels {
					if l == 0 {
						tl.zeros++
					} else {
						tl.ones++
					}
				}
			}
		}()
	}
	for v := 0; v < 50; v++ {
		e, err := reg.Swap("hot", labelModel((v+1)%2), registry.EncoderInfo{})
		if err != nil {
			t.Fatal(err)
		}
		if e.Version != v+2 {
			t.Fatalf("swap %d published version %d", v, e.Version)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(tallies)
	var zeros, ones int
	for tl := range tallies {
		if tl.err != nil {
			t.Errorf("client failed during hot swap: %v", tl.err)
		}
		zeros += tl.zeros
		ones += tl.ones
	}
	if zeros == 0 || ones == 0 {
		t.Errorf("hot swap never observed both publications: zeros=%d ones=%d", zeros, ones)
	}
}

func TestDeregisterMidStreamFailsFramesNotConnection(t *testing.T) {
	reg := registry.New()
	if _, err := reg.Register("gone", labelModel(0), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startRegistryServer(t, reg)
	defer cleanup()
	c, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4, Model: "gone"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Classify([]float64{1, 1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Deregister("gone"); err != nil {
		t.Fatal(err)
	}
	// The frame is answered with a typed error, the connection survives...
	if _, _, err := c.Classify([]float64{1, 1, 0, 0}); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("classify after deregister = %v, want ErrUnknownModel", err)
	}
	// ...and the model coming back restores service on the same conn.
	if _, err := reg.Register("gone", labelModel(1), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	label, _, err := c.Classify([]float64{1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Errorf("label after re-register = %d, want 1", label)
	}
}

// v2Hello mirrors the protocol-v2 client Hello wire shape.
type v2Hello struct {
	Dim     int
	Classes int
}

// v2ServerHello mirrors the protocol-v2 client's view of the server answer:
// the v3 ServerHello is a strict superset, and gob drops fields the
// receiver does not declare.
type v2ServerHello struct {
	Code      string
	Detail    string
	Version   byte
	Dim       int
	Classes   int
	MaxBatch  int
	MinSymbol int8
	MaxSymbol int8
}

func TestV2ClientStillServed(t *testing.T) {
	// A byte-faithful v2 handshake (version byte 2, model-less Hello) must
	// still round-trip queries against the default model.
	reg := registry.New()
	if _, err := reg.Register("legacy-default", labelModel(1), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startRegistryServer(t, reg)
	defer cleanup()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{'P', 'H', 'D', 2}); err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(v2Hello{Dim: 4, Classes: 2}); err != nil {
		t.Fatal(err)
	}
	var hello v2ServerHello
	if err := dec.Decode(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Code != "" {
		t.Fatalf("v2 handshake rejected: %s (%s)", hello.Code, hello.Detail)
	}
	if hello.Version != 2 {
		t.Errorf("server answered v%d to a v2 client, want v2", hello.Version)
	}
	if hello.Dim != 4 || hello.Classes != 2 || hello.MaxBatch != DefaultMaxBatch {
		t.Errorf("v2 hello = %+v", hello)
	}
	if err := enc.Encode(Request{Queries: []Query{{Packed: []int8{1, 1, 0, 0}}}}); err != nil {
		t.Fatal(err)
	}
	var reply Reply
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Code != "" || len(reply.Results) != 1 || reply.Results[0].Label != 1 {
		t.Errorf("v2 reply = %+v", reply)
	}
	// A v2 client cannot ask for "any geometry": Dim 0 stays a mismatch.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte{'P', 'H', 'D', 2}); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(conn2).Encode(v2Hello{}); err != nil {
		t.Fatal(err)
	}
	var rej v2ServerHello
	if err := gob.NewDecoder(conn2).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	if rej.Code != codeGeometry {
		t.Errorf("v2 dim-0 hello answered %q, want %q", rej.Code, codeGeometry)
	}
}

func TestWorkerPoolServesManyConnections(t *testing.T) {
	// A 2-worker pool behind 8 connections streaming batches: everything
	// must still answer correctly (the pool is shared, not per-conn).
	addr, srv, cleanup := startServer(t, labelModel(0), WithWorkers(2), WithMaxBatch(8))
	defer cleanup()
	const clients, rounds = 8, 5
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			c, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			batch := [][]float64{{1, 1, 0, 0}, {0, 0, 1, 1}, {1, 1, 0, 0}, {0, 0, 1, 1}}
			for r := 0; r < rounds; r++ {
				labels, err := c.ClassifyBatch(batch)
				if err != nil {
					errs <- err
					return
				}
				want := []int{0, 1, 0, 1}
				for j := range want {
					if labels[j] != want[j] {
						errs <- fmt.Errorf("round %d: labels %v", r, labels)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Served(); got != clients*rounds*4 {
		t.Errorf("Served = %d, want %d", got, clients*rounds*4)
	}
}

func TestMalformedQueryWithBothWireFormsRejected(t *testing.T) {
	// A query abusing both wire forms (Vector and Packed set) must get a
	// typed dimension rejection, never a panic in a pool worker: the
	// effective length prefers Vector, the same precedence task.run scores
	// with (see TestServerAbusedQueryBothFields for the accepted case).
	addr, srv, cleanup := startServer(t, labelModel(0))
	defer cleanup()
	_, enc, dec := rawHandshake(t, addr, ProtocolVersion, Hello{Dim: 4})
	// len(Vector)+len(Packed) == model dim, but the effective (Vector)
	// length is 2: must be rejected, and the server must survive.
	if err := enc.Encode(Request{Queries: []Query{{Vector: []float64{1, 1}, Packed: []int8{0, 0}}}}); err != nil {
		t.Fatal(err)
	}
	var reply Reply
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Code != codeDim {
		t.Errorf("both-forms query answered %q, want %q", reply.Code, codeDim)
	}
	// A well-formed query on the same connection still works. (Fresh
	// Reply: gob leaves absent fields untouched on reused structs.)
	if err := enc.Encode(Request{Queries: []Query{{Vector: []float64{1, 1, 0, 0}}}}); err != nil {
		t.Fatal(err)
	}
	var reply2 Reply
	if err := dec.Decode(&reply2); err != nil {
		t.Fatal(err)
	}
	if reply2.Code != "" || reply2.Results[0].Label != 0 {
		t.Errorf("follow-up reply = %+v", reply2)
	}
	if srv.Served() != 1 {
		t.Errorf("Served = %d, want 1", srv.Served())
	}
}

func TestSetDefaultDoesNotRebindLiveConnections(t *testing.T) {
	// A connection that handshook against the default model is pinned to
	// the resolved name: changing the default afterwards must not silently
	// switch which model answers its frames.
	reg := registry.New()
	if _, err := reg.Register("alpha", labelModel(0), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("beta", labelModel(1), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startRegistryServer(t, reg)
	defer cleanup()
	c, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Model() != "alpha" {
		t.Fatalf("default dial bound to %q", c.Model())
	}
	if err := reg.SetDefault("beta"); err != nil {
		t.Fatal(err)
	}
	label, _, err := c.Classify([]float64{1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 0 {
		t.Errorf("established connection answered by the new default (label %d), want pinned alpha (0)", label)
	}
	// New connections see the new default.
	c2, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Model() != "beta" {
		t.Errorf("new default dial bound to %q, want beta", c2.Model())
	}
}

// bigModel returns a 2-class model of the given dimensionality whose class
// 0 vector is all +1 and class 1 all −1 — scoring cost scales with dim, so
// tests can make frames take measurable server time.
func bigModel(dim int) *hdc.Model {
	m := hdc.NewModel(2, dim)
	pos := make([]float64, dim)
	neg := make([]float64, dim)
	for i := range pos {
		pos[i] = 1
		neg[i] = -1
	}
	m.Add(0, pos)
	m.Add(1, neg)
	return m
}

// posQuery returns an all-ones query of the given dimensionality (class 0).
func posQuery(dim int) []float64 {
	q := make([]float64, dim)
	for i := range q {
		q[i] = 1
	}
	return q
}

func TestPipelinedRepliesOutOfOrder(t *testing.T) {
	// v4 pipelining at the wire level: a heavy frame followed by a light
	// frame on the same connection must be answerable out of order, with
	// replies matched by request ID. With 2 workers the light frame's
	// single query overtakes the heavy frame's 200.
	const dim = 2048
	addr, _, cleanup := startServer(t, bigModel(dim), WithWorkers(2))
	defer cleanup()

	heavy := Request{ID: 1, Queries: make([]Query, 200)}
	for i := range heavy.Queries {
		packed, ok := PackQuery(posQuery(dim))
		if !ok {
			t.Fatal("query should pack")
		}
		heavy.Queries[i] = Query{Packed: packed}
	}
	light := Request{ID: 2, Queries: []Query{heavy.Queries[0]}}

	sawOutOfOrder := false
	for attempt := 0; attempt < 5 && !sawOutOfOrder; attempt++ {
		_, enc, dec := rawHandshake(t, addr, ProtocolVersion, Hello{Dim: dim})
		if err := enc.Encode(heavy); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(light); err != nil {
			t.Fatal(err)
		}
		var first, second Reply
		if err := dec.Decode(&first); err != nil {
			t.Fatal(err)
		}
		if err := dec.Decode(&second); err != nil {
			t.Fatal(err)
		}
		if first.Code != "" || second.Code != "" {
			t.Fatalf("replies rejected: %+v / %+v", first.Code, second.Code)
		}
		ids := map[uint64]Reply{first.ID: first, second.ID: second}
		if len(ids[1].Results) != 200 || len(ids[2].Results) != 1 {
			t.Fatalf("results misrouted: id1=%d id2=%d", len(ids[1].Results), len(ids[2].Results))
		}
		if first.ID == 2 {
			sawOutOfOrder = true
		}
	}
	if !sawOutOfOrder {
		t.Error("light frame never overtook the heavy frame: pipelined replies arrived strictly in order")
	}
}

func TestConcurrentCallersShareOneConnection(t *testing.T) {
	// The pipelined client is safe for concurrent use: many goroutines
	// multiplex over one connection and every reply is routed to its
	// caller by request ID.
	addr, srv, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()

	const callers, rounds = 32, 20
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		want := i % 2
		go func() {
			q := []float64{1, 1, 0, 0}
			if want == 1 {
				q = []float64{0, 0, 1, 1}
			}
			for r := 0; r < rounds; r++ {
				label, _, err := c.Classify(q)
				if err != nil {
					errs <- err
					return
				}
				if label != want {
					errs <- fmt.Errorf("caller wanting %d got label %d", want, label)
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if srv.Served() != callers*rounds {
		t.Errorf("Served = %d, want %d", srv.Served(), callers*rounds)
	}
}

func TestListModels(t *testing.T) {
	reg := registry.New()
	if _, err := reg.Register("alpha", labelModel(0), registry.EncoderInfo{Encoding: 1, Levels: 8, Features: 3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("beta", labelModel(1), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetDefault("beta"); err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startRegistryServer(t, reg)
	defer cleanup()
	c, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	models, err := c.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0].Name != "alpha" || models[1].Name != "beta" {
		t.Fatalf("models = %+v", models)
	}
	a := models[0]
	if a.Dim != 4 || a.Classes != 2 || a.Version != 1 || a.Encoding != 1 || a.Levels != 8 || a.Features != 3 || a.Seed != 5 || a.Default {
		t.Errorf("alpha listing = %+v", a)
	}
	if !models[1].Default {
		t.Error("beta should be listed as the default")
	}
	// The listing tracks the live registry: a swap bumps the version.
	if _, err := reg.Swap("alpha", labelModel(0), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	models, err = c.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	if models[0].Version != 2 {
		t.Errorf("post-swap alpha version = %d, want 2", models[0].Version)
	}
}

func TestUnsupportedOpRejected(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	_, enc, dec := rawHandshake(t, addr, ProtocolVersion, Hello{Dim: 4})
	if err := enc.Encode(Request{ID: 9, Op: "compress"}); err != nil {
		t.Fatal(err)
	}
	var reply Reply
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.ID != 9 {
		t.Errorf("reply ID = %d, want 9", reply.ID)
	}
	if err := codeError(reply.Code, reply.Detail); !errors.Is(err, ErrUnsupportedOp) {
		t.Errorf("unknown op answered %v, want ErrUnsupportedOp", err)
	}
}

func TestIOTimeoutUnblocksHungServer(t *testing.T) {
	// A server that completes the handshake then goes silent: without
	// WithIOTimeout a Classify would block forever (the old client cleared
	// the conn deadline after the handshake and never set one again).
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		dec := gob.NewDecoder(conn)
		var hello Hello
		if err := dec.Decode(&hello); err != nil {
			return
		}
		gob.NewEncoder(conn).Encode(ServerHello{
			Version: ProtocolVersion, Dim: 4, Classes: 2,
			MaxBatch: 8, MinSymbol: MinSymbol, MaxSymbol: MaxSymbol,
		})
		// Keep reading requests, never answer.
		var req Request
		for dec.Decode(&req) == nil {
		}
	}()

	c, err := Dial(context.Background(), "tcp", lis.Addr().String(), Hello{Dim: 4},
		WithIOTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, _, err = c.Classify([]float64{1, 1, 0, 0})
	if !errors.Is(err, ErrIOTimeout) || !errors.Is(err, ErrTransport) {
		t.Errorf("hung server: err = %v, want ErrIOTimeout (wrapping ErrTransport)", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("Classify blocked %v despite the 150ms i/o timeout", elapsed)
	}
}

func TestIOTimeoutSparesIdleConnections(t *testing.T) {
	// The timeout bounds reply progress, not connection lifetime: a conn
	// idle far longer than the timeout must still serve the next query.
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4},
		WithIOTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 2; round++ {
		label, _, err := c.Classify([]float64{1, 1, 0, 0})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if label != 0 {
			t.Fatalf("round %d: label = %d", round, label)
		}
		time.Sleep(300 * time.Millisecond)
	}
}

func TestDialCancelledMidHandshake(t *testing.T) {
	// A listener that accepts and never answers the handshake: cancelling
	// the dial context must abort promptly with a transport error, not
	// hang in the gob decode.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		accepted <- conn // hold the conn open, never respond
	}()
	defer func() {
		select {
		case conn := <-accepted:
			conn.Close()
		default:
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = Dial(ctx, "tcp", lis.Addr().String(), Hello{Dim: 4})
	if !errors.Is(err, ErrTransport) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled handshake: err = %v, want ErrTransport wrapping context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Dial blocked %v after cancellation", elapsed)
	}
}

func TestShutdownWithInFlightPipelinedRequests(t *testing.T) {
	// Shutdown while a pipelined client has many frames outstanding: every
	// frame the server accepted must be answered before its connection
	// closes, later frames must fail with a clean transport error, and
	// nothing may hang or lose a response.
	const dim = 4096
	addr, srv, _ := startServer(t, bigModel(dim), WithWorkers(2))
	c, err := Dial(context.Background(), "tcp", addr, Hello{Dim: dim})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const frames = 8
	batch := make([][]float64, 64)
	for i := range batch {
		batch[i] = posQuery(dim)
	}
	results := make(chan error, frames)
	for i := 0; i < frames; i++ {
		go func() {
			labels, err := c.ClassifyBatch(batch)
			if err == nil {
				for _, l := range labels {
					if l != 0 {
						err = fmt.Errorf("label %d, want 0", l)
						break
					}
				}
			}
			results <- err
		}()
	}
	// Wait until the server has demonstrably started answering (first
	// frame fully served), so later frames are genuinely in flight when
	// the shutdown hits — under -race everything runs much slower, and a
	// fixed sleep could fire before any frame even reached the server.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Served() < 64 {
		if time.Now().After(deadline) {
			t.Fatal("server never started answering")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancelT := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelT()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown = %v", err)
	}
	succeeded := 0
	for i := 0; i < frames; i++ {
		select {
		case err := <-results:
			switch {
			case err == nil:
				succeeded++
			case errors.Is(err, ErrTransport):
				// Frame not yet accepted when shutdown hit: a clean,
				// typed refusal — never a corrupt or missing reply.
			default:
				t.Errorf("frame failed with non-transport error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("a pipelined frame never resolved after Shutdown")
		}
	}
	if succeeded == 0 {
		t.Error("no in-flight frame survived a graceful shutdown")
	}
	t.Logf("graceful shutdown answered %d/%d pipelined frames", succeeded, frames)
}

// v3Hello mirrors the protocol-v3 client Hello wire shape (same fields as
// v4's — v4 only added Request/Reply fields).
type v3Hello struct {
	Dim     int
	Classes int
	Model   string
}

// v3Request and v3Reply mirror the v3 frame shapes: no ID, no Op, no
// Models. gob drops the extra v4 Reply fields for such a decoder.
type v3Request struct {
	Queries []Query
}

type v3Reply struct {
	Code    string
	Detail  string
	Results []Result
}

func TestV3ClientStillServed(t *testing.T) {
	// A byte-faithful v3 session (version byte 3, ID-less frames) must be
	// served sequentially, strictly in order, against its named model.
	reg := registry.New()
	if _, err := reg.Register("m0", labelModel(0), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("m1", labelModel(1), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	addr, srv, cleanup := startRegistryServer(t, reg)
	defer cleanup()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{'P', 'H', 'D', 3}); err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(v3Hello{Dim: 4, Model: "m1"}); err != nil {
		t.Fatal(err)
	}
	var hello ServerHello
	if err := dec.Decode(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Code != "" {
		t.Fatalf("v3 handshake rejected: %s (%s)", hello.Code, hello.Detail)
	}
	if hello.Version != 3 {
		t.Errorf("server answered v%d to a v3 client, want v3", hello.Version)
	}
	if hello.Model != "m1" {
		t.Errorf("v3 client bound to %q, want m1", hello.Model)
	}
	// Stream several ID-less frames; each must be answered before the next
	// is read (in-order, one reply per request).
	for i := 0; i < 3; i++ {
		if err := enc.Encode(v3Request{Queries: []Query{{Packed: []int8{1, 1, 0, 0}}}}); err != nil {
			t.Fatal(err)
		}
		var reply v3Reply
		if err := dec.Decode(&reply); err != nil {
			t.Fatal(err)
		}
		if reply.Code != "" || len(reply.Results) != 1 || reply.Results[0].Label != 1 {
			t.Fatalf("v3 frame %d reply = %+v", i, reply)
		}
	}
	if srv.Served() != 3 {
		t.Errorf("Served = %d, want 3", srv.Served())
	}
}

func TestShutdownBoundedByIdlePeerThatNeverCloses(t *testing.T) {
	// A v4 peer that handshakes, sends nothing, and ignores the graceful
	// FIN: Shutdown must not block until its ctx expires — the half-close
	// arms a read deadline that unpins the idle handler.
	addr, srv, _ := startServer(t, toyModel())
	conn, _, _ := rawHandshake(t, addr, ProtocolVersion, Hello{Dim: 4})
	_ = conn // held open, never closed, never written to again

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown = %v, want nil", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("Shutdown took %v against an idle peer, want ≤ the ~2s drain bound", elapsed)
	}
}
