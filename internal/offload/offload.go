// Package offload implements the cloud-hosted inference split of Prive-HD
// §III-C as a versioned network protocol: the edge encodes, quantizes and
// masks a query hypervector locally (core.Edge) and ships only the
// obfuscated vector; the server holds the full-precision model and returns
// the predicted label.
//
// # Wire protocol (version 5)
//
// A connection opens with a fixed 4-byte header from the client — the magic
// bytes "PHD" plus one protocol version byte — followed by a gob-encoded
// Hello advertising the client's encoder geometry and, since v3, the name
// of the model it wants served (empty = the registry default). The server
// answers with a ServerHello that either accepts — echoing the resolved
// model's name, publication version, geometry, batch limit, packed-symbol
// alphabet and, since v3, the model's full public encoder setup (encoding,
// levels, seed, features) so edges can auto-configure instead of matching
// flags by hand — or rejects with a typed code: peers with a mismatched
// version or geometry, or naming an unknown model, are refused at the
// handshake instead of gob-decoding garbage mid-stream. v2, v3 and v4
// clients are still accepted (a v2 Hello carries no model name and resolves
// to the default model).
//
// Since v5 the accepted ServerHello may also carry a shard descriptor
// (Shard): when the served entry holds only a slice of a larger logical
// model — a dimension range and/or class range — the descriptor names the
// slice and the full geometry, so scatter–gather coordinators discover
// fleet topology from the handshakes instead of being configured with it.
// Non-sharded entries leave the field nil, which gob omits, keeping their
// handshakes byte-identical for older peers.
//
// After the handshake the client streams Request frames. The v4 frame
// layout extends v2/v3 with correlation and control fields, gob-encoded so
// each version's frames are a strict field superset of the previous one:
//
//	v2/v3 Request: {Queries []Query}                 → Reply: {Code, Detail, Results}
//	v4    Request: {ID, Op, Queries []Query, Trace}  → Reply: {ID, Code, Detail, Results, Models, Timing}
//	v5    Request: same as v4                        → Reply: v4 + {Partials, NormSq, GoAway}
//
// The three v5 reply fields serve sharded scatter–gather: OpPartialScores
// answers with raw per-class int64 dot products (Partials, one row per
// query) plus the per-class Σv² of the served slice (NormSq) instead of
// labels — a coordinator sums both across dimension shards exactly and
// finishes the norm division itself, reproducing whole-model scores
// bit-for-bit. GoAway is a server-push drain notice: when a graceful
// shutdown begins, v5 connections receive an unsolicited Reply{GoAway:
// true} (ID 0, never assigned to a request) before the write side
// half-closes, so coordinators and pools stop routing new work to a
// draining replica instead of discovering the FIN with a request already
// in flight. All three fields are zero-valued on ordinary traffic, which
// gob omits — v4 frames and replies remain byte-identical.
//
// Trace and Timing are the optional tracing fields: a client that sampled
// the request sends its 64-bit trace ID on the frame, and the server
// answers a traced request with its per-stage timing breakdown
// (StageTiming). Both are zero-valued on untraced traffic, which gob omits
// entirely — so untraced frames are byte-identical to pre-trace v4 frames,
// and peers on either side that predate the fields silently drop them (the
// same field-superset rule that keeps v2/v3 peers working). No version
// bump is needed or taken.
//
// ID is a client-chosen correlation number echoed on the Reply; on a v4
// connection the server handles frames concurrently and MAY answer them
// out of order, so clients pipeline many requests over one connection and
// match replies by ID (the Client below runs dedicated send/recv goroutines
// with an in-flight table). On v2/v3 connections frames are answered
// strictly in order, one at a time, exactly as before. Op selects the
// frame's operation: empty for classification, OpListModels for a registry
// listing (Reply.Models) so clients can discover served models without
// out-of-band configuration.
//
// Each classification Request carries up to MaxBatch query hypervectors,
// and the server answers each frame with one Reply carrying the per-query
// labels and scores. Queries are scored on a bounded worker pool shared by
// every connection (WithWorkers), each query dispatched individually so one
// large or slow batch cannot monopolize the server. Quantized queries
// travel packed (one byte per dimension); the server validates every packed
// symbol against the advertised alphabet.
//
// The models behind a server live in a registry (internal/registry): each
// Request frame resolves its model name against the current registry
// snapshot, so Swap takes effect between frames without dropping
// connections, while a frame in flight keeps the snapshot it resolved.
//
// What crosses the wire is exactly the query hypervector — which is the
// point: the experiments eavesdrop on it (attack.Decode) to quantify
// leakage with and without the paper's obfuscation.
package offload

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"privehd/internal/hdc"
	"privehd/internal/intscore"
	"privehd/internal/registry"
	"privehd/internal/trace"
	"privehd/internal/vecmath"
)

// ProtocolVersion is the wire protocol version this package speaks. The
// server also accepts versionV2, versionV3 and versionV4 peers; anything
// else is rejected during the handshake.
const ProtocolVersion = 5

// versionV2–versionV4 are the previous protocol versions, still accepted
// by the server: a v2 Hello carries no model name and resolves to the
// default model, v2/v3 frames carry no request IDs and are answered
// strictly in order, v4 connections pipeline but receive no shard
// descriptors, partial-score replies or GoAway drain notices, and each
// newer ServerHello/Reply is a strict field superset of the previous one
// (gob drops the fields an old client does not know).
const (
	versionV2 = 2
	versionV3 = 3
	versionV4 = 4
)

// DefaultModelName is the registry name NewServer publishes a single model
// under.
const DefaultModelName = "default"

// magic opens every connection, so a server can tell a protocol peer from a
// stray scanner before decoding anything.
var magic = [3]byte{'P', 'H', 'D'}

// DefaultMaxBatch is the per-request query limit a server advertises unless
// configured otherwise.
const DefaultMaxBatch = 256

// MinSymbol and MaxSymbol bound the packed-query alphabet: −2…+1 covers
// every quantization scheme in the quant package (bipolar, ternary, biased
// ternary and 2-bit). Servers advertise these bounds in the handshake and
// reject packed symbols outside them. They alias the intscore bounds, since
// the integer scoring engine is specified over the same alphabet.
const (
	MinSymbol = intscore.MinSymbol
	MaxSymbol = intscore.MaxSymbol
)

// Typed protocol failures. Errors returned by Dial, NewClient, Classify and
// ClassifyBatch wrap these sentinels; test with errors.Is.
var (
	// ErrVersionMismatch reports a peer speaking a different protocol
	// version.
	ErrVersionMismatch = errors.New("offload: protocol version mismatch")
	// ErrGeometryMismatch reports a client whose encoder dimensionality or
	// class count does not match the served model.
	ErrGeometryMismatch = errors.New("offload: encoder geometry mismatch")
	// ErrBadMagic reports a peer that is not speaking the privehd protocol
	// at all.
	ErrBadMagic = errors.New("offload: peer is not speaking the privehd protocol")
	// ErrSymbolOutOfRange reports a packed query carrying a symbol outside
	// the advertised alphabet.
	ErrSymbolOutOfRange = errors.New("offload: packed symbol outside advertised alphabet")
	// ErrBatchTooLarge reports a request exceeding the server's advertised
	// batch limit.
	ErrBatchTooLarge = errors.New("offload: batch exceeds server limit")
	// ErrUnknownModel reports a handshake or request naming a model the
	// server's registry does not hold. It aliases the registry sentinel so
	// errors.Is works identically on both sides of the wire.
	ErrUnknownModel = registry.ErrUnknownModel
	// ErrUnsupportedOp reports a request frame naming an operation the
	// server does not implement.
	ErrUnsupportedOp = errors.New("offload: unsupported request op")
	// ErrPartialUnsupported reports an OpPartialScores request against a
	// model that cannot serve exact integer partial scores (a DP-noised
	// release, or a request carrying full-precision vectors). It is a
	// protocol rejection, never retried.
	ErrPartialUnsupported = errors.New("offload: model cannot serve partial scores")
	// ErrTransport reports a connection-level failure — dial, send,
	// receive, i/o timeout, or the client being closed — as opposed to a
	// typed protocol rejection. Classification is idempotent, so a caller
	// holding several connections (a pool or replica set) may safely retry
	// an operation that failed with ErrTransport on another connection;
	// errors that do NOT wrap ErrTransport were answered by a live server
	// and must not be retried.
	ErrTransport = errors.New("offload: connection failure")
	// ErrIOTimeout reports that a connection configured with WithIOTimeout
	// saw no reply progress for the full timeout while requests were in
	// flight. It always also wraps ErrTransport.
	ErrIOTimeout = errors.New("offload: i/o timeout")
	// ErrOverloaded reports a server that refused the connection at accept
	// time because it is at its configured connection limit
	// (WithMaxConns). It wraps ErrTransport deliberately: the rejection is
	// a property of this server right now, not of the request, so pools
	// back off and redial, and clusters fail the query over to another
	// replica — exactly the treatment a connection failure gets.
	ErrOverloaded = fmt.Errorf("offload: server overloaded (%w)", ErrTransport)
	// ErrDeadlineExceeded reports a request whose propagated budget
	// (Request.BudgetNs, stamped from the caller's context deadline) ran
	// out — either client-side before or while waiting, or server-side
	// when the frame's budget expired in the accept queue or worker pool
	// and the server shed it instead of scoring dead work. It is a typed
	// verdict about this call, not about the connection, so it
	// deliberately does NOT wrap ErrTransport: retrying an
	// already-expired deadline on another replica cannot help, and pools
	// and clusters must return it to the caller untouched.
	ErrDeadlineExceeded = errors.New("offload: deadline exceeded")
)

// errBudgetExpired is the preallocated pre-send expiry verdict, so the
// deadline-stamping hot path stays alloc-free even when it fails fast.
var errBudgetExpired = fmt.Errorf("%w: budget exhausted before send", ErrDeadlineExceeded)

// Reply/ServerHello failure codes carried on the wire.
const (
	codeBadMagic     = "bad-magic"
	codeVersion      = "version-mismatch"
	codeGeometry     = "geometry-mismatch"
	codeBatch        = "batch-too-large"
	codeDim          = "dimension-mismatch"
	codeSymbol       = "symbol-out-of-range"
	codeUnknownModel = "unknown-model"
	codeBadOp        = "unsupported-op"
	codeOverloaded   = "overloaded"
	codePartial      = "partial-unsupported"
	codeDeadline     = "deadline"
)

// codeError maps a wire failure code to its sentinel error.
func codeError(code, detail string) error {
	var base error
	switch code {
	case codeVersion:
		base = ErrVersionMismatch
	case codeGeometry:
		base = ErrGeometryMismatch
	case codeBadMagic:
		base = ErrBadMagic
	case codeBatch:
		base = ErrBatchTooLarge
	case codeSymbol:
		base = ErrSymbolOutOfRange
	case codeUnknownModel:
		base = ErrUnknownModel
	case codeBadOp:
		base = ErrUnsupportedOp
	case codeOverloaded:
		base = ErrOverloaded
	case codePartial:
		base = ErrPartialUnsupported
	case codeDeadline:
		base = ErrDeadlineExceeded
	default:
		return fmt.Errorf("offload: server error %s: %s", code, detail)
	}
	if detail == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, detail)
}

// Hello is the client half of the handshake: the geometry of the encoder
// behind the queries to come, and (v3) which served model they are for.
// Classes may be zero when the client does not know the label space (a pure
// edge encoder). Dim may be zero on v3 connections to mean "any geometry" —
// the auto-configuring client that builds its encoder from the ServerHello.
type Hello struct {
	Dim     int
	Classes int
	// Model names the served model to bind the connection to; empty
	// resolves to the server's default model. v2 clients never set it.
	Model string
}

// ServerHello is the server half of the handshake. Code is empty on accept;
// on reject it names the failure and Detail elaborates.
type ServerHello struct {
	Code    string
	Detail  string
	Version byte
	// Dim and Classes describe the served model.
	Dim     int
	Classes int
	// MaxBatch is the largest query count the server accepts per Request.
	MaxBatch int
	// MinSymbol and MaxSymbol bound the accepted packed-query alphabet.
	MinSymbol int8
	MaxSymbol int8
	// Model and ModelVersion (v3) identify the resolved registry entry:
	// the name the connection is bound to and its publication version
	// (bumped by every hot swap).
	Model        string
	ModelVersion int
	// Encoding, Levels, Features and Seed (v3) are the model's full public
	// encoder setup — base/level hypervectors are deterministic in these,
	// and they are shared public setup per the paper, so advertising them
	// lets edges auto-configure without leaking anything the paper keeps
	// secret. Features is zero when the server holds a bare model with no
	// recorded encoder setup.
	Encoding int
	Levels   int
	Features int
	Seed     uint64
	// Shard (v5) describes the slice of a larger logical model this entry
	// serves, nil for whole models — gob omits the nil, so non-sharded
	// handshakes stay byte-identical for pre-v5 peers.
	Shard *registry.ShardInfo
}

// Query is one encoded (and obfuscated) query hypervector. Exactly one of
// Vector and Packed is set.
type Query struct {
	// Vector is the offloaded query hypervector in full precision.
	Vector []float64
	// Packed carries a small-alphabet (quantized) query as one byte per
	// dimension — an 8× wire saving that §III-C's quantization makes
	// possible ("transferring the least amount of information"). Servers
	// only accept symbols within the alphabet advertised in their
	// ServerHello ([MinSymbol, MaxSymbol], i.e. −2…+1); anything else is
	// rejected with ErrSymbolOutOfRange.
	Packed []int8
}

// vecScratch recycles float64 expansion buffers for the non-hot paths that
// still need a packed query as a float vector (the wiretap record path); the
// scoring hot path no longer expands at all.
var vecScratch = sync.Pool{New: func() any { return new([]float64) }}

// vectorInto returns the query as float64s regardless of wire form,
// expanding packed queries into *buf (grown as needed) instead of
// allocating per call. The returned slice aliases either q.Vector or *buf
// and is only valid until the buffer's next use.
func (q Query) vectorInto(buf *[]float64) []float64 {
	if q.Vector != nil {
		return q.Vector
	}
	if cap(*buf) < len(q.Packed) {
		*buf = make([]float64, len(q.Packed))
	}
	v := (*buf)[:len(q.Packed)]
	for i, s := range q.Packed {
		v[i] = float64(s)
	}
	return v
}

// PackQuery converts a quantized hypervector to the compact wire form. It
// returns false if any value is not an integer within the protocol alphabet
// [MinSymbol, MaxSymbol] — i.e. the query was not actually quantized by one
// of the paper's schemes and must travel full-precision.
func PackQuery(h []float64) ([]int8, bool) {
	return intscore.PackInto(h, nil)
}

// Request ops selectable per frame since v4. The zero value is
// classification, so v2/v3 frames (which carry no Op) keep their meaning.
const (
	// OpClassify scores Request.Queries against the connection's model.
	OpClassify = ""
	// OpListModels asks for the server's current registry listing
	// (Reply.Models) — client-side model discovery over the wire.
	OpListModels = "list-models"
	// OpPartialScores (v5) asks for raw per-class int64 dot products of
	// each packed query against the served (possibly sliced) model, plus
	// the per-class Σv² — the scatter half of sharded scoring. Queries
	// must be packed; models that cannot answer exactly (DP-noised) are
	// refused with ErrPartialUnsupported.
	OpPartialScores = "partial-scores"
	// OpPing asks the server for an empty reply — an in-band liveness
	// check pooled connections use to detect dead peers while idle,
	// without burning a dial. Servers that predate the op answer with a
	// codeBadOp rejection, which proves liveness just as well.
	OpPing = "ping"
)

// Request is one client→server frame: a batch of queries answered together
// in a single reply, or (v4) a control operation.
type Request struct {
	// ID correlates the frame's Reply on pipelined (v4) connections, where
	// replies may arrive out of order. The server echoes it verbatim. v2/v3
	// clients never set it.
	ID uint64
	// Op is the frame operation: OpClassify (empty) or OpListModels.
	Op      string
	Queries []Query
	// Trace is the request's 64-bit trace ID; 0 means untraced, and gob
	// omits the zero so untraced frames stay byte-identical to pre-trace
	// v4 frames. A traced request gets its server-side stage breakdown
	// back on Reply.Timing, and the server tags its histogram exemplar,
	// flight-recorder entry and slow-request log line with the same ID.
	// Servers that predate the field drop it silently (gob field-superset
	// rule), as do old clients with the Reply fields — no version bump.
	Trace uint64
	// BudgetNs is the request's remaining deadline budget in nanoseconds
	// at send time, stamped from the caller's context deadline; 0 means
	// no deadline, and gob omits the zero so undeadlined frames stay
	// byte-identical to pre-budget frames. The server starts the clock on
	// frame arrival and sheds the request with a codeDeadline rejection
	// if the budget expires before or while it sits in the scoring queue
	// — no point scoring work the caller has already abandoned. Servers
	// that predate the field drop it silently (gob field-superset rule) —
	// no version bump.
	BudgetNs int64
}

// Result is the classification of one query.
type Result struct {
	// Label is the predicted class.
	Label int
	// Scores are the per-class similarity scores (norm-adjusted dot
	// products of Eq. 4); returned so clients can gauge confidence.
	Scores []float64
}

// ModelListing describes one served model in an OpListModels reply: its
// registry identity, geometry, and the public encoder setup edges
// auto-configure from (zero when the model was registered without one).
type ModelListing struct {
	Name    string
	Version int
	Dim     int
	Classes int
	// Encoding, Levels, Features and Seed are the model's public encoder
	// setup, as advertised in the v3+ ServerHello.
	Encoding int
	Levels   int
	Features int
	Seed     uint64
	// Default marks the model served to clients that name none.
	Default bool
}

// Reply is one server→client frame answering a Request. Code is empty on
// success; on failure it names the protocol error and no Results are
// returned. ID echoes the Request's correlation number (v4).
type Reply struct {
	ID      uint64
	Code    string
	Detail  string
	Results []Result
	// Models answers an OpListModels request.
	Models []ModelListing
	// Timing is the server-side stage breakdown, attached only to traced
	// requests — nil otherwise, which gob omits, keeping untraced replies
	// byte-identical to pre-trace v4 replies. Clients use it to attribute
	// a round trip to server queue/scoring versus the network; peers that
	// predate the field drop it silently.
	Timing *StageTiming
	// Partials and NormSq (v5) answer an OpPartialScores request:
	// Partials[i][l] is the exact int64 dot of query i against the served
	// entry's class l, and NormSq[l] is Σv² of that class — both over the
	// dimension slice this server holds, so a coordinator sums them across
	// shards and reconstructs whole-model scores bit-for-bit.
	Partials [][]int64
	NormSq   []float64
	// GoAway (v5) marks an unsolicited server-push drain notice (ID 0):
	// the server has begun a graceful shutdown and the client should stop
	// routing new work here. In-flight requests will still be answered.
	GoAway bool
}

// StageTiming is the per-request server-side latency split a traced
// request's Reply carries, in nanoseconds: time the frame's queries spent
// waiting for a scoring worker (the longest wait across the batch), time
// actually scoring (summed across the batch), and the frame's total server
// residency from decode completion to reply-encode start. Reply-write time
// cannot ride on the reply it measures; it lands in the server's flight
// recorder instead.
type StageTiming struct {
	QueueNs int64
	ScoreNs int64
	TotalNs int64
}

// Server serves classification over a listener, one reader goroutine per
// connection, with query scoring spread over a bounded worker pool shared
// by all connections. The models behind it live in a registry: many named
// models behind one listener, hot-swappable while clients stream.
type Server struct {
	reg      *registry.Registry
	maxBatch int
	workers  int
	maxConns int // 0 = unlimited

	// Flight-recorder and slow-request plumbing: every answered frame is
	// timed and offered to the recorder; frames at or over slowThresh
	// additionally emit a structured slowLog event.
	recorder   *trace.Recorder
	slowLog    *slog.Logger
	slowThresh time.Duration

	// The worker pool: handlers dispatch one task per query and the pool
	// computes into the frame's result slots. poolDone is closed only
	// after every handler has drained, so a send on tasks can never hang;
	// the dispatch select falls back to inline computation if the pool is
	// already stopped.
	tasks     chan task
	poolDone  chan struct{}
	poolStart sync.Once
	poolStop  sync.Once

	mu      sync.Mutex
	lis     net.Listener
	conns   map[*srvConn]struct{}
	served  int
	closing bool
	wg      sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxBatch sets the per-request query limit the server advertises and
// enforces.
func WithMaxBatch(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// WithWorkers bounds the shared scoring pool (default GOMAXPROCS): at most
// n queries are scored at once across every connection, however many
// clients are streaming.
func WithWorkers(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithMaxConns bounds how many connections the server holds open at once
// (default unlimited). A connection arriving past the limit is not left to
// hang in the accept backlog: the server answers its handshake with a
// typed overload rejection (clients see ErrOverloaded, which is retryable
// — pools back off, clusters fail over) and closes it immediately, so
// overload surfaces as fast feedback instead of timeouts.
func WithMaxConns(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxConns = n
		}
	}
}

// WithSlowRequestLog emits a structured slow-request event on log for
// every frame whose server residency reaches threshold: trace ID, model,
// op, peer, outcome and the full stage breakdown. The threshold-triggered
// event mirrors what the flight recorder retains, but pushes it into the
// log stream where it lands next to everything else the operator tails.
func WithSlowRequestLog(log *slog.Logger, threshold time.Duration) ServerOption {
	return func(s *Server) {
		if log != nil && threshold > 0 {
			s.slowLog = log
			s.slowThresh = threshold
		}
	}
}

// WithFlightRecorder directs the server's per-frame entries into r instead
// of the process-wide trace.Default recorder — for tests, or processes
// running several servers that want separate recorders.
func WithFlightRecorder(r *trace.Recorder) ServerOption {
	return func(s *Server) {
		if r != nil {
			s.recorder = r
		}
	}
}

// NewServer returns a server for a single (typically full-precision) model,
// published in a fresh registry under DefaultModelName with no recorded
// encoder setup. The model's norm caches are precomputed here; it must not
// be mutated while the server runs. For multi-model serving build a
// registry.Registry and use NewRegistryServer.
func NewServer(model *hdc.Model, opts ...ServerOption) *Server {
	reg := registry.New()
	if _, err := reg.Register(DefaultModelName, model, registry.EncoderInfo{}); err != nil {
		// Register only fails on nil model or duplicate names; neither can
		// happen on a fresh registry with a caller-supplied model.
		panic(err)
	}
	return NewRegistryServer(reg, opts...)
}

// NewRegistryServer returns a server answering queries from the given model
// registry. The registry may keep changing while the server runs —
// Register, Swap and Deregister take effect for handshakes and request
// frames that follow them, without disturbing connections or queries in
// flight.
func NewRegistryServer(reg *registry.Registry, opts ...ServerOption) *Server {
	s := &Server{
		reg:      reg,
		maxBatch: DefaultMaxBatch,
		workers:  runtime.GOMAXPROCS(0),
		conns:    make(map[*srvConn]struct{}),
		poolDone: make(chan struct{}),
		recorder: trace.Default,
	}
	for _, o := range opts {
		o(s)
	}
	s.tasks = make(chan task, s.workers)
	return s
}

// Registry returns the registry the server answers from.
func (s *Server) Registry() *registry.Registry { return s.reg }

// task is one query dispatched to the worker pool: score query against
// model (packed queries on the registry entry's integer engine), store into
// *out, signal wg.
type task struct {
	model  *hdc.Model
	scorer *intscore.Engine
	query  Query
	out    *Result
	// partials, when non-nil, switches the task to partial-score mode: the
	// raw int64 dots land there instead of a labeled Result. The answer
	// path guarantees scorer is partial-capable and the query packed
	// before dispatch.
	partials *[]int64
	wg       *sync.WaitGroup
	// enq and span feed the frame's stage timers: the pool records how
	// long the task waited for a worker (queue-wait, max across the batch)
	// and how long it scored (summed across the batch).
	enq  time.Time
	span *trace.Span
	// deadline is the frame's budget expiry (zero when the request carried
	// no BudgetNs). A task picked up past it is shed: expired is set and
	// the query is not scored — the answer path turns the flag into a
	// codeDeadline rejection after the batch drains. expired is shared by
	// every task of the frame, so one atomic carries the verdict.
	deadline time.Time
	expired  *atomic.Bool
}

// run scores the task's query. Packed queries are scored in the integer
// domain on the entry's prepared planes — no float64 expansion, no float
// dot — falling back to the model's expansion-free packed path if the entry
// somehow carries no engine. Vector wins when both wire fields are
// (ab)used, exactly as answerClassify validated the frame's dimensionality
// — so a frame carrying a valid Vector plus a wrong-length Packed can
// never reach the packed scorer and panic a pool worker. The scores slice
// is the only per-query allocation: it escapes into the Reply.
func (t task) run() {
	start := time.Now()
	t.span.ObserveMax(trace.StageQueueWait, start.Sub(t.enq))
	if !t.deadline.IsZero() && start.After(t.deadline) {
		t.expired.Store(true)
		t.wg.Done()
		return
	}
	if t.partials != nil {
		out := make([]int64, t.scorer.NumClasses())
		t.scorer.PartialsPackedInto(t.query.Packed, out)
		*t.partials = out
		t.span.ObserveSince(trace.StageScore, start)
		t.wg.Done()
		return
	}
	scores := make([]float64, t.model.NumClasses())
	if t.query.Vector != nil {
		t.model.ScoresInto(t.query.Vector, scores)
	} else if t.scorer != nil {
		t.scorer.ScoresPackedInto(t.query.Packed, scores)
	} else {
		t.model.ScoresPackedInto(t.query.Packed, scores)
	}
	*t.out = Result{Label: vecmath.ArgMax(scores), Scores: scores}
	t.span.ObserveSince(trace.StageScore, start)
	t.wg.Done()
}

// startPool spawns the scoring workers (once). Exiting workers drain
// whatever was enqueued concurrently with teardown, so an accepted dispatch
// is always executed.
func (s *Server) startPool() {
	s.poolStart.Do(func() {
		for w := 0; w < s.workers; w++ {
			go func() {
				for {
					select {
					case t := <-s.tasks:
						t.run()
					case <-s.poolDone:
						for {
							select {
							case t := <-s.tasks:
								t.run()
							default:
								return
							}
						}
					}
				}
			}()
		}
	})
}

// dispatch hands one task to the pool, scoring inline if the pool is
// already torn down (a direct answer call after Close) so no frame ever
// hangs. poolDone only closes once every connection handler has drained,
// so a handler's dispatch never races the teardown.
func (s *Server) dispatch(t task) {
	select {
	case <-s.poolDone:
		t.run()
		return
	default:
	}
	select {
	case s.tasks <- t:
	case <-s.poolDone:
		t.run()
	}
}

// stopPool terminates the scoring workers (once). Callers must ensure every
// handler has drained first, or handlers fall back to inline scoring.
func (s *Server) stopPool() {
	s.poolStop.Do(func() { close(s.poolDone) })
}

// stopPoolWhenDrained stops the pool after in-flight handlers finish —
// the teardown path for Close and expired Shutdowns, which do not wait.
func (s *Server) stopPoolWhenDrained() {
	go func() {
		s.wg.Wait()
		s.stopPool()
	}()
}

// Served returns how many queries have been answered.
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// maxConnPipeline bounds how many v4 frames one connection may have in
// flight on the server: past it the connection's read loop stops decoding
// until a frame completes, so TCP backpressure paces a client that
// pipelines faster than the server answers.
const maxConnPipeline = 128

// srvConn tracks one client connection's lifecycle for graceful shutdown,
// plus the model name and protocol version the handshake bound it to. On
// v4 connections many frames may be in flight at once, so the busy state is
// a counter and replies are serialized by writeMu.
type srvConn struct {
	conn    net.Conn
	peer    string // remote address, cached so per-frame entries don't re-format it
	model   string // requested model name; "" = registry default
	version byte   // negotiated protocol version (2–5)

	writeMu sync.Mutex     // serializes replies from concurrent v4+ frames
	frames  sync.WaitGroup // in-flight v4+ frame goroutines

	// goAway, set after a v5 handshake, pushes the drain notice to the
	// peer; goAwayOnce makes repeated askClose calls idempotent.
	goAwayOnce sync.Once

	mu            sync.Mutex
	goAway        func()
	inflight      int
	closeWhenIdle bool
}

// notifyGoAway pushes the v5 drain notice, once, if the handshake
// installed one (pre-v5 peers and unfinished handshakes get nothing — they
// discover the drain from the FIN exactly as before).
func (c *srvConn) notifyGoAway() {
	c.mu.Lock()
	fn := c.goAway
	c.mu.Unlock()
	if fn != nil {
		c.goAwayOnce.Do(fn)
	}
}

// enterBusy marks the connection as answering one more request; it reports
// false if shutdown already asked the connection to close.
func (c *srvConn) enterBusy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeWhenIdle {
		return false
	}
	c.inflight++
	return true
}

// exitBusy marks one request finished and reports whether the connection
// should now close because a shutdown is in progress and no other frame is
// still in flight.
func (c *srvConn) exitBusy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inflight--
	return c.closeWhenIdle && c.inflight == 0
}

// askClose requests a graceful close: the peer is told to stop routing new
// work here (v5 GoAway push), idle connections close immediately, busy
// ones right after their last in-flight reply.
func (c *srvConn) askClose() {
	c.notifyGoAway()
	c.mu.Lock()
	idle := c.inflight == 0
	c.closeWhenIdle = true
	c.mu.Unlock()
	if idle {
		c.gracefulClose()
	}
}

// gracefulClose ends a connection without destroying replies the peer has
// not read yet: a full Close after the peer wrote more data turns into a
// TCP RST, which discards the peer's receive buffer — including replies to
// requests it already pipelined. Half-closing the write side sends a clean
// FIN instead; the handler's read loop then drains the peer until it
// notices and hangs up, and the final Close finds nothing left to reset.
// v2/v3 connections are strictly request-reply, so they never have replies
// at risk and close fully.
func (c *srvConn) gracefulClose() {
	if c.version >= versionV4 {
		if cw, ok := c.conn.(closeWriter); ok {
			cw.CloseWrite()
			// Bound how long the handler's read loop waits for the peer
			// to notice the FIN and hang up: a peer that never closes
			// (idle, or ignoring the FIN) must not pin the handler — and
			// with it a graceful Shutdown — until the caller's ctx
			// expires.
			c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			return
		}
	}
	c.conn.Close()
}

// drainRefused discards incoming frames after a graceful close has refused
// further work, until the peer sees the FIN and hangs up (EOF) or the
// drain bound expires — it keeps the receive window open so the peer's
// in-flight writes cannot trigger a reset before it reads its replies.
func (c *srvConn) drainRefused(dec *gob.Decoder) {
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
	}
}

// Serve accepts connections until the listener closes, the context is
// cancelled, or Close/Shutdown is called. Each connection may stream any
// number of Request frames. Serve returns nil after a clean stop.
func (s *Server) Serve(ctx context.Context, lis net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return errors.New("offload: server already closed")
	}
	s.lis = lis
	s.mu.Unlock()

	if ctx == nil {
		ctx = context.Background()
	}
	s.startPool()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Shutdown(sctx)
		case <-stop:
		}
	}()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing || ctx.Err() != nil {
				// Don't return (and let the caller exit) until the
				// shutdown path has drained in-flight handlers; Close and
				// Shutdown guarantee every handler terminates, so this
				// wait is bounded.
				s.wg.Wait()
				s.stopPool()
				return nil
			}
			s.stopPoolWhenDrained()
			return fmt.Errorf("offload: accept: %w", err)
		}
		mConnsTotal.Inc()
		sc := &srvConn{conn: countConn(conn)}
		if ra := conn.RemoteAddr(); ra != nil {
			sc.peer = ra.String()
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			s.wg.Wait()
			s.stopPool()
			return nil
		}
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.rejectOverloaded(sc.conn)
			}()
			continue
		}
		s.conns[sc] = struct{}{}
		mConnsActive.Inc()
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer s.forget(sc)
			s.handle(sc)
		}()
	}
}

func (s *Server) forget(sc *srvConn) {
	sc.conn.Close()
	s.mu.Lock()
	if _, ok := s.conns[sc]; ok {
		delete(s.conns, sc)
		mConnsActive.Dec()
	}
	s.mu.Unlock()
}

// rejectOverloaded answers a connection that arrived past the configured
// connection limit: it completes just enough of the handshake to carry a
// typed overload code back — reading the 4-byte header, then sending a
// refusing ServerHello — and closes. The whole exchange is bounded by a
// short deadline so a slow or silent peer cannot pin resources; that is
// the point of the limit.
func (s *Server) rejectOverloaded(conn net.Conn) {
	defer conn.Close()
	mRejections.With(codeOverloaded).Inc()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] || hdr[2] != magic[2] {
		return
	}
	gob.NewEncoder(conn).Encode(ServerHello{
		Code:    codeOverloaded,
		Detail:  fmt.Sprintf("connection limit %d reached, retry later", s.maxConns),
		Version: ProtocolVersion,
	})
}

// Close stops the listener and closes every connection immediately,
// dropping in-flight requests.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	for sc := range s.conns {
		sc.conn.Close()
	}
	s.mu.Unlock()
	s.stopPoolWhenDrained()
	return err
}

// Shutdown stops accepting new connections, lets every in-flight request
// finish its reply, then closes the connections. It returns ctx.Err() if
// the context expires first, force-closing whatever remains.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	if s.lis != nil {
		s.lis.Close()
	}
	for sc := range s.conns {
		go sc.askClose()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stopPool()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sc := range s.conns {
			sc.conn.Close()
		}
		s.mu.Unlock()
		s.stopPoolWhenDrained()
		return ctx.Err()
	}
}

// handle runs the handshake then answers Request frames until the peer
// hangs up or shutdown closes the connection.
func (s *Server) handle(sc *srvConn) {
	conn := sc.conn
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return
	}
	enc := gob.NewEncoder(conn)
	if hdr[0] != magic[0] || hdr[1] != magic[1] || hdr[2] != magic[2] {
		mRejections.With(codeBadMagic).Inc()
		enc.Encode(ServerHello{Code: codeBadMagic, Version: ProtocolVersion})
		return
	}
	if hdr[3] != ProtocolVersion && hdr[3] != versionV4 && hdr[3] != versionV3 && hdr[3] != versionV2 {
		mRejections.With(codeVersion).Inc()
		enc.Encode(ServerHello{
			Code:    codeVersion,
			Detail:  fmt.Sprintf("server speaks v%d (and accepts v%d–v%d), client sent v%d", ProtocolVersion, versionV2, versionV4, hdr[3]),
			Version: ProtocolVersion,
		})
		return
	}
	sc.version = hdr[3]
	dec := gob.NewDecoder(conn)
	var hello Hello
	if err := dec.Decode(&hello); err != nil {
		return
	}
	// Bind the connection to the resolved model name (a v2 Hello carries
	// none and resolves to the default). The resolved name — not the
	// possibly-empty requested one — is pinned, so a later SetDefault
	// cannot silently rebind an established connection to a model it
	// never handshook with; the name is then re-resolved against the
	// registry on every frame, so hot swaps of the same name apply
	// without reconnecting.
	entry, err := s.reg.Lookup(hello.Model)
	if err != nil {
		mRejections.With(codeUnknownModel).Inc()
		enc.Encode(ServerHello{
			Code:    codeUnknownModel,
			Detail:  err.Error(),
			Version: sc.version,
		})
		return
	}
	sc.model = entry.Name
	model := entry.Model
	// v3 clients may advertise Dim 0 — "configure me from your answer";
	// v2 clients always advertised their real dimensionality, so a zero
	// from them stays a mismatch.
	dimOK := hello.Dim == model.Dim() || (sc.version >= 3 && hello.Dim == 0)
	if !dimOK || (hello.Classes != 0 && hello.Classes != model.NumClasses()) {
		mRejections.With(codeGeometry).Inc()
		enc.Encode(ServerHello{
			Code: codeGeometry,
			Detail: fmt.Sprintf("model %q is %d-dimensional with %d classes, client advertised dim %d classes %d",
				entry.Name, model.Dim(), model.NumClasses(), hello.Dim, hello.Classes),
			Version: sc.version,
			Dim:     model.Dim(),
			Classes: model.NumClasses(),
		})
		return
	}
	accept := ServerHello{
		Version:      sc.version,
		Dim:          model.Dim(),
		Classes:      model.NumClasses(),
		MaxBatch:     s.maxBatch,
		MinSymbol:    MinSymbol,
		MaxSymbol:    MaxSymbol,
		Model:        entry.Name,
		ModelVersion: entry.Version,
		Encoding:     entry.Encoder.Encoding,
		Levels:       entry.Encoder.Levels,
		Features:     entry.Encoder.Features,
		Seed:         entry.Encoder.Seed,
	}
	if sc.version >= ProtocolVersion {
		accept.Shard = entry.Shard
	}
	if err := enc.Encode(accept); err != nil {
		return
	}
	if sc.version >= ProtocolVersion {
		// Install the drain notice now that the peer speaks v5 and the
		// encoder owns the stream: a graceful shutdown pushes Reply{GoAway}
		// (ID 0, never assigned) under writeMu before half-closing, so
		// coordinators stop routing here ahead of the FIN.
		sc.mu.Lock()
		sc.goAway = func() {
			sc.writeMu.Lock()
			enc.Encode(Reply{GoAway: true})
			sc.writeMu.Unlock()
		}
		sc.mu.Unlock()
	}

	// v4 connections pipeline: each frame is answered on its own goroutine
	// (replies serialized by writeMu, possibly out of order), bounded by
	// maxConnPipeline so a fast sender is paced by TCP backpressure rather
	// than unbounded goroutines. v2/v3 connections keep the strict one-
	// frame-at-a-time, in-order protocol. Before the handler returns it
	// waits for in-flight frame goroutines, so a graceful shutdown never
	// closes the conn under a reply still being written.
	sem := make(chan struct{}, maxConnPipeline)
	defer sc.frames.Wait()
	for {
		var req Request
		tRead := time.Now()
		if err := dec.Decode(&req); err != nil {
			return // EOF, broken peer, or shutdown closed the conn
		}
		// Receive+decode time for the frame. On an idle connection this
		// includes waiting for the client's bytes, so it feeds the flight
		// recorder's decode stage but never the wire-reported server total.
		decodeDur := time.Since(tRead)
		if !sc.enterBusy() {
			if sc.version >= versionV4 {
				sc.drainRefused(dec)
			}
			return
		}
		if sc.version >= versionV4 {
			sem <- struct{}{}
			sc.frames.Add(1)
			s.wg.Add(1) // graceful shutdown waits for frames, not just conns
			go func(req Request) {
				defer s.wg.Done()
				defer sc.frames.Done()
				defer func() { <-sem }()
				err := s.handleFrame(sc, enc, req, decodeDur)
				closing := sc.exitBusy()
				if err != nil {
					sc.conn.Close()
				} else if closing {
					sc.gracefulClose()
				}
			}(req)
			continue
		}
		err := s.handleFrame(sc, enc, req, decodeDur)
		if sc.exitBusy() || err != nil {
			return
		}
	}
}

// handleFrame answers one decoded frame with full stage instrumentation:
// trace resolution (the client's ID, or a server-side sampling decision
// for requests arriving untraced), span timing through answer and the
// reply write, the wire-reported StageTiming for traced requests, and the
// flight-recorder/slow-log entry every frame produces. It returns the
// reply-write error, which terminates the connection.
func (s *Server) handleFrame(sc *srvConn, enc *gob.Encoder, req Request, decodeDur time.Duration) error {
	start := time.Now()
	traceID := req.Trace
	if traceID == 0 {
		traceID = trace.Sampled()
	}
	span := trace.NewSpan(traceID)
	span.Add(trace.StageDecode, decodeDur)
	reply := s.answer(sc.model, req, span)
	reply.ID = req.ID
	if traceID != 0 {
		reply.Timing = &StageTiming{
			QueueNs: int64(span.Stage(trace.StageQueueWait)),
			ScoreNs: int64(span.Stage(trace.StageScore)),
			TotalNs: int64(time.Since(start)),
		}
	}
	tWrite := time.Now()
	sc.writeMu.Lock()
	err := enc.Encode(reply)
	sc.writeMu.Unlock()
	span.ObserveSince(trace.StageReplyWrite, tWrite)
	s.record(sc, opLabel(req.Op), &reply, span, len(req.Queries), time.Since(start), err)
	span.Free()
	return err
}

// record offers the finished frame to the flight recorder and, past the
// slow threshold, emits the structured slow-request event. It runs for
// every frame, traced or not — the recorder must see all requests to
// retain the slowest ones — and its fast path (frame not retained, not
// slow) does not allocate.
func (s *Server) record(sc *srvConn, op string, reply *Reply, span *trace.Span, queries int, total time.Duration, writeErr error) {
	outcome := "ok"
	switch {
	case reply.Code != "":
		outcome = reply.Code
	case writeErr != nil:
		outcome = "write-failed"
	}
	s.recorder.Record(trace.Entry{
		TraceID: span.ID(),
		Time:    time.Now(),
		Side:    "server",
		Model:   sc.model,
		Op:      op,
		Peer:    sc.peer,
		Outcome: outcome,
		Queries: queries,
		TotalNs: int64(total),
		Local:   span.Breakdown(),
	})
	if s.slowLog != nil && s.slowThresh > 0 && total >= s.slowThresh {
		s.slowLog.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
			slog.String("trace", trace.FormatID(span.ID())),
			slog.String("model", sc.model),
			slog.String("op", op),
			slog.String("peer", sc.peer),
			slog.String("outcome", outcome),
			slog.Int("queries", queries),
			slog.Duration("total", total),
			slog.Duration("queue", span.Stage(trace.StageQueueWait)),
			slog.Duration("decode", span.Stage(trace.StageDecode)),
			slog.Duration("score", span.Stage(trace.StageScore)),
			slog.Duration("reply_write", span.Stage(trace.StageReplyWrite)),
		)
	}
}

// answer handles one request frame: classification against the current
// publication of the connection's model, or a v4 control op. It is the
// per-frame instrumentation point: in-flight gauge, per-op request counter
// and latency histogram, and typed-rejection counters for refused frames —
// every observation on the zero-alloc fast path. A traced frame (span
// carrying a nonzero ID) additionally pins its trace ID as the latency
// histogram's exemplar, so a scrape can name an actual slow request.
func (s *Server) answer(modelName string, req Request, span *trace.Span) Reply {
	mInflight.Inc()
	start := time.Now()
	// The frame's budget clock starts on arrival: the client stamped its
	// remaining deadline, so expiry here means the request spent its whole
	// budget inside this server and the caller has already given up.
	var deadline time.Time
	if req.BudgetNs > 0 {
		deadline = start.Add(time.Duration(req.BudgetNs))
	}
	var reply Reply
	switch req.Op {
	case OpClassify:
		reply = s.answerClassify(modelName, req, span, deadline)
	case OpListModels:
		reply = s.answerListModels()
	case OpPartialScores:
		reply = s.answerPartialScores(modelName, req, span, deadline)
	case OpPing:
		reply = Reply{}
	default:
		reply = Reply{Code: codeBadOp, Detail: fmt.Sprintf("op %q (this server speaks v%d)", req.Op, ProtocolVersion)}
	}
	op := opLabel(req.Op)
	if id := span.ID(); id != 0 {
		mRequestSeconds.With(op).ObserveExemplar(time.Since(start).Seconds(), trace.FormatID(id))
	} else {
		mRequestSeconds.With(op).ObserveSince(start)
	}
	mRequests.With(op).Inc()
	if reply.Code != "" {
		mRejections.With(reply.Code).Inc()
	}
	mInflight.Dec()
	return reply
}

// answerListModels snapshots the registry for client-side model discovery.
func (s *Server) answerListModels() Reply {
	entries, def := s.reg.SnapshotModels()
	models := make([]ModelListing, len(entries))
	for i, e := range entries {
		models[i] = ModelListing{
			Name:     e.Name,
			Version:  e.Version,
			Dim:      e.Model.Dim(),
			Classes:  e.Model.NumClasses(),
			Encoding: e.Encoder.Encoding,
			Levels:   e.Encoder.Levels,
			Features: e.Encoder.Features,
			Seed:     e.Encoder.Seed,
			Default:  e.Name == def,
		}
	}
	return Reply{Models: models}
}

// deadlineReply is the typed shed verdict for a frame whose budget ran out
// inside the server.
func deadlineReply(budget int64) Reply {
	return Reply{Code: codeDeadline,
		Detail: fmt.Sprintf("request budget %v expired before scoring finished", time.Duration(budget))}
}

// answerClassify classifies one request batch, spreading queries over the
// shared worker pool. The span collects the batch's queue-wait and scoring
// time from the pool workers. A non-zero deadline sheds the frame instead
// of scoring dead work: checked before dispatch (budget spent upstream)
// and at every worker pickup (budget spent in the scoring queue).
func (s *Server) answerClassify(modelName string, req Request, span *trace.Span, deadline time.Time) Reply {
	// Resolve the name fresh per frame: a Swap between frames serves the
	// new model from the next frame on, while this frame keeps the entry
	// it resolved (the registry never mutates a published entry).
	s.startPool() // no-op under Serve; keeps direct answer calls live
	entry, err := s.reg.Lookup(modelName)
	if err != nil {
		return Reply{Code: codeUnknownModel, Detail: err.Error()}
	}
	model := entry.Model
	if len(req.Queries) > s.maxBatch {
		return Reply{Code: codeBatch,
			Detail: fmt.Sprintf("%d queries, limit %d", len(req.Queries), s.maxBatch)}
	}
	// Validate serially (cheap, and keeps the first-error semantics
	// deterministic), then score on the pool.
	for i, q := range req.Queries {
		for j, sym := range q.Packed {
			if sym < MinSymbol || sym > MaxSymbol {
				return Reply{Code: codeSymbol,
					Detail: fmt.Sprintf("query %d dimension %d carries symbol %d, alphabet is [%d,%d]",
						i, j, sym, MinSymbol, MaxSymbol)}
			}
		}
		// Effective wire length mirrors the scoring path: Vector wins when
		// both fields are (ab)used, so a malformed query can never reach a
		// pool worker with the wrong dimensionality.
		n := len(q.Packed)
		if q.Vector != nil {
			n = len(q.Vector)
		}
		if n != model.Dim() {
			return Reply{Code: codeDim,
				Detail: fmt.Sprintf("query %d has dim %d, model dim %d", i, n, model.Dim())}
		}
	}
	results := make([]Result, len(req.Queries))
	var wg sync.WaitGroup
	wg.Add(len(req.Queries))
	enq := time.Now()
	var expired atomic.Bool
	if !deadline.IsZero() && enq.After(deadline) {
		return deadlineReply(req.BudgetNs)
	}
	for i, q := range req.Queries {
		s.dispatch(task{model: model, scorer: entry.Scorer, query: q, out: &results[i], wg: &wg, enq: enq, span: span, deadline: deadline, expired: &expired})
	}
	wg.Wait()
	if expired.Load() {
		return deadlineReply(req.BudgetNs)
	}
	s.mu.Lock()
	s.served += len(req.Queries)
	s.mu.Unlock()
	entry.AddServed(len(req.Queries))
	mQueries.With(entry.Name).Add(uint64(len(req.Queries)))
	return Reply{Results: results}
}

// answerPartialScores answers the scatter half of sharded scoring (v5):
// the raw int64 dot of every packed query against every served class, plus
// the per-class Σv², both over whatever dimension slice this server's
// entry holds. It refuses — typed, never retried — when the entry cannot
// answer exactly: a DP-noised model whose classes are not integer-valued,
// or a request (ab)using full-precision vectors. Deadline budgets shed
// exactly as in answerClassify.
func (s *Server) answerPartialScores(modelName string, req Request, span *trace.Span, deadline time.Time) Reply {
	s.startPool()
	entry, err := s.reg.Lookup(modelName)
	if err != nil {
		return Reply{Code: codeUnknownModel, Detail: err.Error()}
	}
	model := entry.Model
	scorer := entry.Scorer
	if scorer == nil || !scorer.PartialCapable() {
		return Reply{Code: codePartial,
			Detail: fmt.Sprintf("model %q has non-integer (noised) class planes; partial scores would not be exact", entry.Name)}
	}
	if len(req.Queries) > s.maxBatch {
		return Reply{Code: codeBatch,
			Detail: fmt.Sprintf("%d queries, limit %d", len(req.Queries), s.maxBatch)}
	}
	for i, q := range req.Queries {
		if q.Vector != nil {
			return Reply{Code: codePartial,
				Detail: fmt.Sprintf("query %d is full-precision; partial scoring is integer-domain only", i)}
		}
		for j, sym := range q.Packed {
			if sym < MinSymbol || sym > MaxSymbol {
				return Reply{Code: codeSymbol,
					Detail: fmt.Sprintf("query %d dimension %d carries symbol %d, alphabet is [%d,%d]",
						i, j, sym, MinSymbol, MaxSymbol)}
			}
		}
		if len(q.Packed) != model.Dim() {
			return Reply{Code: codeDim,
				Detail: fmt.Sprintf("query %d has dim %d, shard dim %d", i, len(q.Packed), model.Dim())}
		}
	}
	partials := make([][]int64, len(req.Queries))
	var wg sync.WaitGroup
	wg.Add(len(req.Queries))
	enq := time.Now()
	var expired atomic.Bool
	if !deadline.IsZero() && enq.After(deadline) {
		return deadlineReply(req.BudgetNs)
	}
	for i, q := range req.Queries {
		s.dispatch(task{model: model, scorer: scorer, query: q, partials: &partials[i], wg: &wg, enq: enq, span: span, deadline: deadline, expired: &expired})
	}
	wg.Wait()
	if expired.Load() {
		return deadlineReply(req.BudgetNs)
	}
	s.mu.Lock()
	s.served += len(req.Queries)
	s.mu.Unlock()
	entry.AddServed(len(req.Queries))
	mQueries.With(entry.Name).Add(uint64(len(req.Queries)))
	return Reply{Partials: partials, NormSq: scorer.NormsSq()}
}

// Client is the edge-side connection to a classification server. It speaks
// protocol v4 and is safe for concurrent use: a dedicated send goroutine
// serializes outgoing frames, a dedicated recv goroutine routes replies by
// request ID through an in-flight table, and any number of goroutines may
// pipeline Classify/ClassifyBatch calls over the one connection without
// waiting on each other's round trips.
type Client struct {
	conn      net.Conn
	hello     ServerHello
	ioTimeout time.Duration
	peer      string // remote address, cached for trace entries

	enc *gob.Encoder // owned by sendLoop after the handshake
	dec *gob.Decoder // owned by recvLoop after the handshake

	sendCh chan *pending
	broken chan struct{} // closed on the first transport failure (or Close)

	// draining is set when the server pushes a v5 GoAway drain notice:
	// the connection still answers what is in flight, but pools and
	// coordinators should route new work elsewhere.
	draining atomic.Bool

	mu       sync.Mutex
	inflight map[uint64]*pending
	nextID   uint64
	err      error // sticky transport error; set once, before broken closes
}

// pending is one in-flight request: the frame to send and the slot its
// routed reply (or the connection's terminal error) lands in. Sampled
// requests additionally carry their client-side trace state: the submit
// time and the send-queue wait, stamped by the send goroutine (atomically,
// because the recv goroutine reads it with no other synchronization
// between the two).
type pending struct {
	req   Request
	reply Reply
	err   error
	done  chan struct{}

	traceID uint64
	submitT time.Time
	queueNs atomic.Int64
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithIOTimeout bounds how long the client waits for connection progress:
// each frame write must complete within d, and whenever requests are in
// flight a reply must arrive within d of the last one (an idle connection
// never times out). Without it a hung server blocks a Classify call
// forever — the pre-v4 client cleared the dial deadline after the
// handshake and never armed another. On expiry the connection fails every
// in-flight call with an error wrapping ErrIOTimeout (and ErrTransport).
func WithIOTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.ioTimeout = d
		}
	}
}

// Dial connects to a server and performs the handshake. The Hello carries
// the client encoder's dimensionality (0 to accept any geometry and read
// it from the ServerHello), the class count when known (0 otherwise) and
// the requested model name ("" for the server's default). The context
// bounds connection establishment and the handshake. Failures to reach or
// keep the connection wrap ErrTransport; typed handshake rejections
// (version, geometry, unknown model) do not.
func Dial(ctx context.Context, network, addr string, hello Hello, opts ...ClientOption) (*Client, error) {
	var d net.Dialer
	if ctx == nil {
		ctx = context.Background()
	}
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %w", ErrTransport, addr, err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	}
	// A deadline alone doesn't cover cancellable contexts: abort a hung
	// handshake when ctx is cancelled mid-handshake. The abort is an
	// already-expired deadline, not a Close — if cancellation races the
	// handshake completing (both select cases ready, either may win), an
	// expired deadline is cleaned up below, while a Close would destroy a
	// connection the caller is about to use.
	handshakeDone := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Now())
		case <-handshakeDone:
		}
	}()
	c, err := NewClient(conn, hello, opts...)
	close(handshakeDone)
	<-watchDone
	if err != nil {
		conn.Close()
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%w: handshake: %w", ErrTransport, ctx.Err())
		}
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	return c, nil
}

// NewClient performs the protocol handshake over an existing connection
// (useful with net.Pipe or a tapped conn in tests), starts the send/recv
// goroutines and returns the client. On handshake rejection the returned
// error wraps ErrVersionMismatch, ErrGeometryMismatch, ErrUnknownModel or
// ErrBadMagic; handshake i/o failures wrap ErrTransport.
func NewClient(conn net.Conn, hello Hello, opts ...ClientOption) (*Client, error) {
	c := &Client{conn: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(conn)}
	if ra := conn.RemoteAddr(); ra != nil {
		c.peer = ra.String()
	}
	for _, o := range opts {
		o(c)
	}
	hdr := [4]byte{magic[0], magic[1], magic[2], ProtocolVersion}
	if _, err := conn.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: handshake: %v", ErrTransport, err)
	}
	if err := c.enc.Encode(hello); err != nil {
		return nil, fmt.Errorf("%w: handshake: %v", ErrTransport, err)
	}
	if err := c.dec.Decode(&c.hello); err != nil {
		return nil, fmt.Errorf("%w: handshake: %v", ErrTransport, err)
	}
	if c.hello.Code != "" {
		return nil, codeError(c.hello.Code, c.hello.Detail)
	}
	if c.hello.Version != ProtocolVersion {
		return nil, fmt.Errorf("%w: server speaks v%d, client v%d",
			ErrVersionMismatch, c.hello.Version, ProtocolVersion)
	}
	c.sendCh = make(chan *pending, 16)
	c.broken = make(chan struct{})
	c.inflight = make(map[uint64]*pending)
	go c.sendLoop()
	go c.recvLoop()
	return c, nil
}

// stampBudget copies ctx's remaining deadline budget onto the request
// frame. It is the deadline-propagation hot path — one Deadline call and
// one clock read, zero allocations (BenchmarkPredictWithDeadline gates
// this) — and fails fast with the typed verdict when the budget is
// already spent, so a dead request never costs a frame.
func stampBudget(ctx context.Context, req *Request) error {
	if ctx == nil {
		return nil
	}
	d, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	b := time.Until(d)
	if b <= 0 {
		return errBudgetExpired
	}
	req.BudgetNs = int64(b)
	return nil
}

// submitCtx is submit with the caller's context stamped onto the frame as
// a deadline budget (no-op for contexts without a deadline).
func (c *Client) submitCtx(ctx context.Context, req Request) (*pending, error) {
	if err := stampBudget(ctx, &req); err != nil {
		return nil, err
	}
	return c.submit(req)
}

// submit assigns the request an ID, registers it in the in-flight table and
// hands it to the send goroutine. The caller waits on the returned pending.
func (c *Client) submit(req Request) (*pending, error) {
	p := &pending{req: req, done: make(chan struct{})}
	// The sampling decision for the whole request path lives here, so
	// Remote, Pool and Cluster all trace without any API of their own; the
	// ID crosses the wire on the frame. Unsampled requests pay one atomic
	// load and zero allocations beyond the pending itself.
	if id := trace.Sampled(); id != 0 {
		p.traceID = id
		p.req.Trace = id
		p.submitT = time.Now()
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	p.req.ID = c.nextID
	c.inflight[p.req.ID] = p
	// Arm the read deadline on the idle→busy transition; SetReadDeadline
	// interrupts the recv goroutine's current blocked Read too, so a
	// server that hangs from here on cannot block us forever.
	if c.ioTimeout > 0 && len(c.inflight) == 1 {
		c.conn.SetReadDeadline(time.Now().Add(c.ioTimeout))
	}
	c.mu.Unlock()
	select {
	case c.sendCh <- p:
		return p, nil
	case <-c.broken:
		return nil, c.stickyErr()
	}
}

// wait blocks until the pending's reply is routed or the connection fails.
func (p *pending) wait() (Reply, error) {
	<-p.done
	if p.err != nil {
		return Reply{}, p.err
	}
	return p.reply, nil
}

// waitCtx is wait bounded by the caller's context: an expired deadline
// returns the typed ErrDeadlineExceeded (the server sheds the frame on its
// side from the stamped budget), a plain cancellation — a hedged attempt
// losing the race — wraps ErrTransport so retry layers treat it like any
// abandoned connection-level outcome. The reply, if it still arrives, is
// routed and dropped harmlessly; the connection stays healthy.
func (p *pending) waitCtx(ctx context.Context) (Reply, error) {
	if ctx == nil {
		return p.wait()
	}
	select {
	case <-p.done:
		return p.wait()
	default:
	}
	select {
	case <-p.done:
		return p.wait()
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return Reply{}, fmt.Errorf("%w: %v waiting for reply %d", ErrDeadlineExceeded, ctx.Err(), p.req.ID)
		}
		return Reply{}, fmt.Errorf("%w: abandoned waiting for reply %d: %v", ErrTransport, p.req.ID, ctx.Err())
	}
}

// sendLoop is the dedicated writer: it serializes every outgoing frame
// onto the connection so concurrent callers never interleave encodings.
func (c *Client) sendLoop() {
	for {
		select {
		case p := <-c.sendCh:
			if c.ioTimeout > 0 {
				c.conn.SetWriteDeadline(time.Now().Add(c.ioTimeout))
			}
			if err := c.enc.Encode(p.req); err != nil {
				c.fail(fmt.Errorf("%w: send: %v", ErrTransport, err))
				return
			}
			if p.traceID != 0 {
				// Everything up to here — waiting behind other frames on
				// the send queue plus this frame's own encode — is the
				// client's queue stage.
				p.queueNs.Store(int64(time.Since(p.submitT)))
			}
		case <-c.broken:
			return
		}
	}
}

// recvLoop is the dedicated reader: it decodes replies as the server
// produces them — in any order — and routes each to its in-flight request
// by ID. Reply progress re-arms the read deadline; draining the table
// disarms it so idle connections never time out.
func (c *Client) recvLoop() {
	for {
		var reply Reply
		if err := c.dec.Decode(&reply); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				c.mu.Lock()
				n := len(c.inflight)
				if n == 0 {
					// A deadline that expired as the table drained (or a
					// leftover dial deadline): nothing was owed to us, and
					// the server sends nothing unsolicited, so the stream
					// is still at a frame boundary. Disarm and keep going.
					c.conn.SetReadDeadline(time.Time{})
				}
				c.mu.Unlock()
				if n == 0 {
					continue
				}
				c.fail(fmt.Errorf("%w: %w: no reply for %v with %d requests in flight",
					ErrTransport, ErrIOTimeout, c.ioTimeout, n))
				return
			}
			if errors.Is(err, io.EOF) {
				c.fail(fmt.Errorf("%w: server closed the connection", ErrTransport))
			} else {
				c.fail(fmt.Errorf("%w: receive: %v", ErrTransport, err))
			}
			return
		}
		if reply.GoAway {
			// Unsolicited server-push drain notice (ID 0, never assigned):
			// not a routed reply, so it must be intercepted before the
			// in-flight lookup treats its ID as unknown and kills the
			// connection.
			c.draining.Store(true)
			continue
		}
		c.mu.Lock()
		p, ok := c.inflight[reply.ID]
		if ok {
			delete(c.inflight, reply.ID)
		}
		if c.ioTimeout > 0 {
			if len(c.inflight) == 0 {
				c.conn.SetReadDeadline(time.Time{})
			} else {
				c.conn.SetReadDeadline(time.Now().Add(c.ioTimeout))
			}
		}
		c.mu.Unlock()
		if !ok {
			c.fail(fmt.Errorf("%w: server answered unknown request id %d", ErrTransport, reply.ID))
			return
		}
		p.reply = reply
		if p.traceID != 0 {
			c.finishTrace(p, &reply)
		}
		close(p.done)
	}
}

// finishTrace closes out a sampled request's client-side span: the round
// trip is split into send-queue wait (stamped by the send goroutine), the
// server's reported residency, and the remainder attributed to the
// network. The entry lands in the process-wide client recorder and the
// observer hook.
func (c *Client) finishTrace(p *pending, reply *Reply) {
	total := time.Since(p.submitT)
	queue := time.Duration(p.queueNs.Load())
	var server StageTiming
	if reply.Timing != nil {
		server = *reply.Timing
	}
	network := total - queue - time.Duration(server.TotalNs)
	if network < 0 {
		network = 0
	}
	outcome := "ok"
	if reply.Code != "" {
		outcome = reply.Code
	}
	trace.RecordClient(trace.Entry{
		TraceID: p.traceID,
		Time:    time.Now(),
		Side:    "client",
		Model:   c.hello.Model,
		Op:      opLabel(p.req.Op),
		Peer:    c.peer,
		Outcome: outcome,
		Queries: len(p.req.Queries),
		TotalNs: int64(total),
		Local: trace.Breakdown{
			QueueNs:   int64(queue),
			NetworkNs: int64(network),
		},
		Server: trace.Breakdown{
			QueueNs: server.QueueNs,
			ScoreNs: server.ScoreNs,
		},
		ServerTotalNs: server.TotalNs,
	})
}

// fail records the connection's terminal error (first caller wins), closes
// the conn, and delivers the error to every in-flight and queued request.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	pend := c.inflight
	c.inflight = make(map[uint64]*pending)
	close(c.broken)
	c.mu.Unlock()
	c.conn.Close()
	for _, p := range pend {
		p.err = err
		if p.traceID != 0 {
			trace.RecordClient(trace.Entry{
				TraceID: p.traceID,
				Time:    time.Now(),
				Side:    "client",
				Model:   c.hello.Model,
				Op:      opLabel(p.req.Op),
				Peer:    c.peer,
				Outcome: "transport",
				Queries: len(p.req.Queries),
				TotalNs: int64(time.Since(p.submitT)),
				Local:   trace.Breakdown{QueueNs: p.queueNs.Load()},
			})
		}
		close(p.done)
	}
	// Drain requests the send goroutine will never pick up. Submitters
	// racing the drain still resolve: their pending is either in the table
	// above or caught here, because submit enqueues only after registering.
	for {
		select {
		case p := <-c.sendCh:
			if p.err == nil && !isDone(p.done) {
				p.err = err
				close(p.done)
			}
		default:
			return
		}
	}
}

// isDone reports whether a pending's done channel is already closed.
func isDone(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

func (c *Client) stickyErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Err returns the connection's terminal transport error, or nil while it is
// still usable. Pools use it to discard broken connections.
func (c *Client) Err() error { return c.stickyErr() }

// Draining reports whether the server pushed a GoAway drain notice (v5):
// it is shutting down gracefully, will answer what is already in flight,
// but should get no new work. Pools treat a draining connection like a
// dead one when placing new operations, without cutting off replies still
// owed.
func (c *Client) Draining() bool { return c.draining.Load() }

// Shard returns the served entry's shard descriptor from the handshake,
// nil when the server holds the whole model.
func (c *Client) Shard() *registry.ShardInfo { return c.hello.Shard }

// Dim returns the served model's dimensionality, learned in the handshake.
func (c *Client) Dim() int { return c.hello.Dim }

// Classes returns the served model's class count, learned in the handshake.
func (c *Client) Classes() int { return c.hello.Classes }

// MaxBatch returns the server's advertised per-request query limit.
func (c *Client) MaxBatch() int { return c.hello.MaxBatch }

// Model returns the name of the registry entry the connection is bound to.
func (c *Client) Model() string { return c.hello.Model }

// ModelVersion returns the served model's publication version at handshake
// time (hot swaps after the handshake bump it server-side).
func (c *Client) ModelVersion() int { return c.hello.ModelVersion }

// ServerHello returns the full accepted handshake answer, including the
// served model's public encoder setup for auto-configuring edges.
func (c *Client) ServerHello() ServerHello { return c.hello }

// Classify sends one prepared (already obfuscated) query and returns the
// predicted label and scores. Quantized queries automatically take the
// compact one-byte-per-dimension wire form.
func (c *Client) Classify(prepared []float64) (int, []float64, error) {
	return c.ClassifyContext(nil, prepared)
}

// ClassifyContext is Classify bounded by ctx: its remaining deadline is
// stamped onto the frame as the request budget (BudgetNs) so the server
// can shed it once expired, and the wait aborts with the typed
// ErrDeadlineExceeded (deadline) or an ErrTransport-wrapped error (plain
// cancellation, e.g. a hedged attempt losing its race). A nil or
// deadline-free ctx behaves exactly like Classify.
func (c *Client) ClassifyContext(ctx context.Context, prepared []float64) (int, []float64, error) {
	results, err := c.roundTrip(ctx, [][]float64{prepared})
	if err != nil {
		return 0, nil, err
	}
	return results[0].Label, results[0].Scores, nil
}

// Labels extracts the predicted labels from classification results.
func Labels(results []Result) []int {
	labels := make([]int, len(results))
	for i, r := range results {
		labels[i] = r.Label
	}
	return labels
}

// ClassifyBatch classifies a batch of prepared queries, batching up to
// MaxBatch vectors per round trip, and returns the predicted labels in
// order. It stops at the first failure, returning the labels answered so
// far.
func (c *Client) ClassifyBatch(prepared [][]float64) ([]int, error) {
	results, err := c.ClassifyBatchScores(prepared)
	return Labels(results), err
}

// ClassifyBatchScores is ClassifyBatch returning full results. All chunks
// are pipelined onto the connection at once — the server may answer them
// out of order, and results are reassembled in query order — so a large
// batch costs one round trip plus server time, not one round trip per
// MaxBatch chunk.
func (c *Client) ClassifyBatchScores(prepared [][]float64) ([]Result, error) {
	return c.ClassifyBatchScoresContext(nil, prepared)
}

// ClassifyBatchScoresContext is ClassifyBatchScores bounded by ctx: every
// chunk frame carries the remaining budget, and waits abort on expiry with
// the typed ErrDeadlineExceeded.
func (c *Client) ClassifyBatchScoresContext(ctx context.Context, prepared [][]float64) ([]Result, error) {
	chunk := c.hello.MaxBatch
	if chunk <= 0 {
		chunk = DefaultMaxBatch
	}
	type chunkPending struct {
		start int
		p     *pending
	}
	pendings := make([]chunkPending, 0, (len(prepared)+chunk-1)/chunk)
	var submitErr error
	for start := 0; start < len(prepared); start += chunk {
		end := start + chunk
		if end > len(prepared) {
			end = len(prepared)
		}
		p, err := c.submitCtx(ctx, classifyRequest(prepared[start:end]))
		if err != nil {
			submitErr = fmt.Errorf("offload: batch at query %d: %w", start, err)
			break
		}
		pendings = append(pendings, chunkPending{start: start, p: p})
	}
	out := make([]Result, 0, len(prepared))
	for _, cp := range pendings {
		reply, err := cp.p.waitCtx(ctx)
		if err == nil {
			err = replyError(reply, cp.p.req)
		}
		if err != nil {
			return out, fmt.Errorf("offload: batch at query %d: %w", cp.start, err)
		}
		out = append(out, reply.Results...)
	}
	return out, submitErr
}

// ListModels asks the server for its current registry listing — every
// served model's name, version, geometry and public encoder setup — so a
// client can discover models without out-of-band configuration (v4).
func (c *Client) ListModels() ([]ModelListing, error) {
	p, err := c.submit(Request{Op: OpListModels})
	if err != nil {
		return nil, err
	}
	reply, err := p.wait()
	if err != nil {
		return nil, err
	}
	if reply.Code != "" {
		return nil, codeError(reply.Code, reply.Detail)
	}
	return reply.Models, nil
}

// PartialScores asks the server for the raw int64 dot of every packed
// query against every class of its served (possibly sliced) model, plus
// the per-class Σv² (v5, OpPartialScores). The queries must already be
// sliced to the server's dimension range. Partial-incapable models are
// refused with ErrPartialUnsupported; transport failures wrap ErrTransport
// and may be retried on another replica of the same shard.
func (c *Client) PartialScores(packed [][]int8) ([][]int64, []float64, error) {
	return c.PartialScoresContext(nil, packed)
}

// PartialScoresContext is PartialScores bounded by ctx: the frame carries
// the remaining budget and the wait aborts on expiry or cancellation.
func (c *Client) PartialScoresContext(ctx context.Context, packed [][]int8) ([][]int64, []float64, error) {
	req := Request{Op: OpPartialScores, Queries: make([]Query, len(packed))}
	for i, q := range packed {
		req.Queries[i] = Query{Packed: q}
	}
	p, err := c.submitCtx(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	reply, err := p.waitCtx(ctx)
	if err != nil {
		return nil, nil, err
	}
	if reply.Code != "" {
		return nil, nil, codeError(reply.Code, reply.Detail)
	}
	if len(reply.Partials) != len(packed) {
		return nil, nil, fmt.Errorf("offload: server answered %d of %d partial-score queries",
			len(reply.Partials), len(packed))
	}
	return reply.Partials, reply.NormSq, nil
}

// classifyRequest builds one classification frame, packing quantized
// queries into the compact wire form.
func classifyRequest(prepared [][]float64) Request {
	req := Request{Queries: make([]Query, len(prepared))}
	for i, v := range prepared {
		if packed, ok := PackQuery(v); ok {
			req.Queries[i] = Query{Packed: packed}
		} else {
			req.Queries[i] = Query{Vector: v}
		}
	}
	return req
}

// replyError converts a routed reply into the request's outcome.
func replyError(reply Reply, req Request) error {
	if reply.Code != "" {
		return codeError(reply.Code, reply.Detail)
	}
	if len(reply.Results) != len(req.Queries) {
		return fmt.Errorf("offload: server answered %d of %d queries",
			len(reply.Results), len(req.Queries))
	}
	return nil
}

// roundTrip pipelines one Request frame and waits for its Reply.
func (c *Client) roundTrip(ctx context.Context, prepared [][]float64) ([]Result, error) {
	p, err := c.submitCtx(ctx, classifyRequest(prepared))
	if err != nil {
		return nil, err
	}
	reply, err := p.waitCtx(ctx)
	if err != nil {
		return nil, err
	}
	if err := replyError(reply, p.req); err != nil {
		return nil, err
	}
	return reply.Results, nil
}

// Ping round-trips an empty in-band OpPing frame: proof the peer's serve
// loop is alive, without dialing a new connection. Pools ping idle pooled
// connections on a timer so a dead peer is noticed before a caller is
// handed its connection. A pre-ping server rejects the op typed
// (ErrUnsupportedOp) — it decoded the frame and answered, which proves
// liveness just as well, so that rejection also counts as success.
func (c *Client) Ping(ctx context.Context) error {
	p, err := c.submitCtx(ctx, Request{Op: OpPing})
	if err != nil {
		return err
	}
	reply, err := p.waitCtx(ctx)
	if err != nil {
		return err
	}
	if reply.Code != "" {
		if err := codeError(reply.Code, reply.Detail); !errors.Is(err, ErrUnsupportedOp) {
			return err
		}
	}
	return nil
}

// IOTimeout returns the connection's configured i/o timeout (0 = none).
func (c *Client) IOTimeout() time.Duration { return c.ioTimeout }

// Close closes the connection, failing any in-flight requests with an
// error wrapping ErrTransport.
func (c *Client) Close() error {
	c.fail(fmt.Errorf("%w: client closed", ErrTransport))
	return nil
}

// Wiretap records the queries that cross a connection — the honest-but-
// curious channel observer of §I that the obfuscation defends against.
// Wrap the client side of a connection with Tap and hand the wrapped conn
// to NewClient; every outgoing query vector is then also delivered to the
// tap.
type Wiretap struct {
	mu      sync.Mutex
	queries [][]float64
}

// Queries returns copies of every query vector seen so far.
func (w *Wiretap) Queries() [][]float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([][]float64, len(w.queries))
	for i, q := range w.queries {
		out[i] = append([]float64(nil), q...)
	}
	return out
}

func (w *Wiretap) record(v []float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.queries = append(w.queries, append([]float64(nil), v...))
}

// tappedConn duplicates decoded traffic to the wiretap. Interception
// happens at the message layer (header skip + gob re-decode) rather than
// raw bytes: the eavesdropper knows the protocol, as any network observer
// of a published schema would.
type tappedConn struct {
	net.Conn
	tap *Wiretap
	pr  *io.PipeReader
	pw  *io.PipeWriter
}

// Tap wraps conn so every Query written through it is also recorded by the
// returned Wiretap.
func Tap(conn net.Conn) (net.Conn, *Wiretap) {
	tap := &Wiretap{}
	pr, pw := io.Pipe()
	t := &tappedConn{Conn: conn, tap: tap, pr: pr, pw: pw}
	go func() {
		var hdr [4]byte
		if _, err := io.ReadFull(pr, hdr[:]); err != nil {
			return
		}
		dec := gob.NewDecoder(pr)
		var hello Hello
		if err := dec.Decode(&hello); err != nil {
			return
		}
		// Expand packed queries through one pooled scratch buffer for the
		// life of the tap (record copies what it keeps) instead of
		// allocating a fresh float64 vector per observed query.
		buf := vecScratch.Get().(*[]float64)
		defer vecScratch.Put(buf)
		for {
			var req Request
			if err := dec.Decode(&req); err != nil {
				return
			}
			for _, q := range req.Queries {
				tap.record(q.vectorInto(buf))
			}
		}
	}()
	return t, tap
}

// Write forwards to the real connection and mirrors bytes into the
// tap's decoder.
func (t *tappedConn) Write(p []byte) (int, error) {
	n, err := t.Conn.Write(p)
	if n > 0 {
		// Pipe errors (reader done) must not break the real connection.
		_, _ = t.pw.Write(p[:n])
	}
	return n, err
}

// Close closes both the real connection and the mirror pipe.
func (t *tappedConn) Close() error {
	_ = t.pw.Close()
	return t.Conn.Close()
}
