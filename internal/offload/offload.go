// Package offload implements the cloud-hosted inference split of Prive-HD
// §III-C as a working network protocol: the edge encodes, quantizes and
// masks a query hypervector locally (core.Edge) and ships only the
// obfuscated vector; the server holds the full-precision model and returns
// the predicted label.
//
// The protocol is length-free gob over a stream connection. What crosses
// the wire is exactly the query hypervector — which is the point: the
// experiments eavesdrop on it (attack.Decode) to quantify leakage with and
// without the paper's obfuscation.
package offload

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"privehd/internal/hdc"
)

// Query is the client→server message: one encoded (and obfuscated) query
// hypervector. Exactly one of Vector and Packed is set.
type Query struct {
	// Vector is the offloaded query hypervector in full precision.
	Vector []float64
	// Packed carries a small-alphabet (quantized) query as one byte per
	// dimension — an 8× wire saving that §III-C's quantization makes
	// possible ("transferring the least amount of information"). Values
	// are the int8 symbol values (−2…+1 cover every scheme in quant).
	Packed []int8
}

// vector returns the query as float64s regardless of wire form.
func (q Query) vector() []float64 {
	if q.Vector != nil {
		return q.Vector
	}
	out := make([]float64, len(q.Packed))
	for i, v := range q.Packed {
		out[i] = float64(v)
	}
	return out
}

// PackQuery converts a quantized hypervector to the compact wire form.
// It returns false if any value is not an integer in [−128, 127] — i.e.
// the query was not actually quantized and must travel full-precision.
func PackQuery(h []float64) ([]int8, bool) {
	out := make([]int8, len(h))
	for i, v := range h {
		iv := int(v)
		if float64(iv) != v || iv < -128 || iv > 127 {
			return nil, false
		}
		out[i] = int8(iv)
	}
	return out, true
}

// Response is the server→client reply.
type Response struct {
	// Label is the predicted class.
	Label int
	// Scores are the per-class similarity scores (norm-adjusted dot
	// products of Eq. 4); returned so clients can gauge confidence.
	Scores []float64
	// Err carries a server-side validation failure, empty on success.
	Err string
}

// Server serves classification over a listener with a fixed model.
type Server struct {
	model *hdc.Model

	mu      sync.Mutex
	lis     net.Listener
	served  int
	closing bool
}

// NewServer returns a server around the given (typically full-precision)
// model.
func NewServer(model *hdc.Model) *Server {
	return &Server{model: model}
}

// Served returns how many queries have been answered.
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Serve accepts connections until the listener closes. Each connection may
// stream any number of queries. Serve returns nil after Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return nil
			}
			return fmt.Errorf("offload: accept: %w", err)
		}
		go s.handle(conn)
	}
}

// Close stops the listener; in-flight connections finish their current
// query.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closing = true
	if s.lis != nil {
		return s.lis.Close()
	}
	return nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var q Query
		if err := dec.Decode(&q); err != nil {
			return // EOF or broken peer: drop the connection
		}
		resp := s.answer(q)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) answer(q Query) Response {
	v := q.vector()
	if len(v) != s.model.Dim() {
		return Response{Err: fmt.Sprintf("offload: query dim %d, model dim %d", len(v), s.model.Dim())}
	}
	scores := s.model.Scores(v)
	label := 0
	for l, v := range scores {
		if v > scores[label] {
			label = l
		}
	}
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	return Response{Label: label, Scores: scores}
}

// Client is the edge-side connection to a classification server.
type Client struct {
	conn net.Conn
	dec  *gob.Decoder
	enc  *gob.Encoder
}

// Dial connects to a server.
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("offload: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (useful with net.Pipe in tests).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(conn)}
}

// Classify sends one prepared (already obfuscated) query and returns the
// predicted label and scores. Quantized queries automatically take the
// compact one-byte-per-dimension wire form.
func (c *Client) Classify(prepared []float64) (int, []float64, error) {
	q := Query{Vector: prepared}
	if packed, ok := PackQuery(prepared); ok {
		q = Query{Packed: packed}
	}
	if err := c.enc.Encode(q); err != nil {
		return 0, nil, fmt.Errorf("offload: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, fmt.Errorf("offload: server closed the connection")
		}
		return 0, nil, fmt.Errorf("offload: receive: %w", err)
	}
	if resp.Err != "" {
		return 0, nil, errors.New(resp.Err)
	}
	return resp.Label, resp.Scores, nil
}

// ClassifyBatch streams a batch of prepared queries over the connection and
// returns the predicted labels in order. It stops at the first failure.
func (c *Client) ClassifyBatch(prepared [][]float64) ([]int, error) {
	labels := make([]int, 0, len(prepared))
	for i, q := range prepared {
		label, _, err := c.Classify(q)
		if err != nil {
			return labels, fmt.Errorf("offload: query %d: %w", i, err)
		}
		labels = append(labels, label)
	}
	return labels, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Wiretap records the queries that cross a connection — the honest-but-
// curious channel observer of §I that the obfuscation defends against.
// Wrap the client side of a connection with Tap and hand the wrapped conn
// to NewClient; every outgoing query vector is then also delivered to the
// tap.
type Wiretap struct {
	mu      sync.Mutex
	queries [][]float64
}

// Queries returns copies of every query vector seen so far.
func (w *Wiretap) Queries() [][]float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([][]float64, len(w.queries))
	for i, q := range w.queries {
		out[i] = append([]float64(nil), q...)
	}
	return out
}

func (w *Wiretap) record(v []float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.queries = append(w.queries, append([]float64(nil), v...))
}

// tappedConn duplicates decoded traffic to the wiretap. Interception
// happens at the message layer (gob re-decode) rather than raw bytes: the
// eavesdropper knows the protocol, as any network observer of a published
// schema would.
type tappedConn struct {
	net.Conn
	tap *Wiretap
	pr  *io.PipeReader
	pw  *io.PipeWriter
}

// Tap wraps conn so every Query written through it is also recorded by the
// returned Wiretap.
func Tap(conn net.Conn) (net.Conn, *Wiretap) {
	tap := &Wiretap{}
	pr, pw := io.Pipe()
	t := &tappedConn{Conn: conn, tap: tap, pr: pr, pw: pw}
	go func() {
		dec := gob.NewDecoder(pr)
		for {
			var q Query
			if err := dec.Decode(&q); err != nil {
				return
			}
			tap.record(q.vector())
		}
	}()
	return t, tap
}

// Write forwards to the real connection and mirrors bytes into the
// tap's decoder.
func (t *tappedConn) Write(p []byte) (int, error) {
	n, err := t.Conn.Write(p)
	if n > 0 {
		// Pipe errors (reader done) must not break the real connection.
		_, _ = t.pw.Write(p[:n])
	}
	return n, err
}

// Close closes both the real connection and the mirror pipe.
func (t *tappedConn) Close() error {
	_ = t.pw.Close()
	return t.Conn.Close()
}
