// Package offload implements the cloud-hosted inference split of Prive-HD
// §III-C as a versioned network protocol: the edge encodes, quantizes and
// masks a query hypervector locally (core.Edge) and ships only the
// obfuscated vector; the server holds the full-precision model and returns
// the predicted label.
//
// # Wire protocol (version 2)
//
// A connection opens with a fixed 4-byte header from the client — the magic
// bytes "PHD" plus one protocol version byte — followed by a gob-encoded
// Hello advertising the client's encoder geometry. The server answers with
// a ServerHello that either accepts (echoing its model geometry, batch
// limit and packed-symbol alphabet) or rejects with a typed code: peers
// with a mismatched version or geometry are refused at the handshake
// instead of gob-decoding garbage mid-stream.
//
// After the handshake the client streams Request frames, each carrying up
// to MaxBatch query hypervectors, and the server answers each frame with
// one Reply carrying the per-query labels and scores. Quantized queries
// travel packed (one byte per dimension); the server validates every packed
// symbol against the advertised alphabet.
//
// What crosses the wire is exactly the query hypervector — which is the
// point: the experiments eavesdrop on it (attack.Decode) to quantify
// leakage with and without the paper's obfuscation.
package offload

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"privehd/internal/hdc"
)

// ProtocolVersion is the wire protocol version this package speaks. Peers
// advertising any other version are rejected during the handshake.
const ProtocolVersion = 2

// magic opens every connection, so a server can tell a protocol peer from a
// stray scanner before decoding anything.
var magic = [3]byte{'P', 'H', 'D'}

// DefaultMaxBatch is the per-request query limit a server advertises unless
// configured otherwise.
const DefaultMaxBatch = 256

// MinSymbol and MaxSymbol bound the packed-query alphabet: −2…+1 covers
// every quantization scheme in the quant package (bipolar, ternary, biased
// ternary and 2-bit). Servers advertise these bounds in the handshake and
// reject packed symbols outside them.
const (
	MinSymbol int8 = -2
	MaxSymbol int8 = 1
)

// Typed protocol failures. Errors returned by Dial, NewClient, Classify and
// ClassifyBatch wrap these sentinels; test with errors.Is.
var (
	// ErrVersionMismatch reports a peer speaking a different protocol
	// version.
	ErrVersionMismatch = errors.New("offload: protocol version mismatch")
	// ErrGeometryMismatch reports a client whose encoder dimensionality or
	// class count does not match the served model.
	ErrGeometryMismatch = errors.New("offload: encoder geometry mismatch")
	// ErrBadMagic reports a peer that is not speaking the privehd protocol
	// at all.
	ErrBadMagic = errors.New("offload: peer is not speaking the privehd protocol")
	// ErrSymbolOutOfRange reports a packed query carrying a symbol outside
	// the advertised alphabet.
	ErrSymbolOutOfRange = errors.New("offload: packed symbol outside advertised alphabet")
	// ErrBatchTooLarge reports a request exceeding the server's advertised
	// batch limit.
	ErrBatchTooLarge = errors.New("offload: batch exceeds server limit")
)

// Reply/ServerHello failure codes carried on the wire.
const (
	codeBadMagic = "bad-magic"
	codeVersion  = "version-mismatch"
	codeGeometry = "geometry-mismatch"
	codeBatch    = "batch-too-large"
	codeDim      = "dimension-mismatch"
	codeSymbol   = "symbol-out-of-range"
)

// codeError maps a wire failure code to its sentinel error.
func codeError(code, detail string) error {
	var base error
	switch code {
	case codeVersion:
		base = ErrVersionMismatch
	case codeGeometry:
		base = ErrGeometryMismatch
	case codeBadMagic:
		base = ErrBadMagic
	case codeBatch:
		base = ErrBatchTooLarge
	case codeSymbol:
		base = ErrSymbolOutOfRange
	default:
		return fmt.Errorf("offload: server error %s: %s", code, detail)
	}
	if detail == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, detail)
}

// Hello is the client half of the handshake: the geometry of the encoder
// behind the queries to come. Classes may be zero when the client does not
// know the label space (a pure edge encoder).
type Hello struct {
	Dim     int
	Classes int
}

// ServerHello is the server half of the handshake. Code is empty on accept;
// on reject it names the failure and Detail elaborates.
type ServerHello struct {
	Code    string
	Detail  string
	Version byte
	// Dim and Classes describe the served model.
	Dim     int
	Classes int
	// MaxBatch is the largest query count the server accepts per Request.
	MaxBatch int
	// MinSymbol and MaxSymbol bound the accepted packed-query alphabet.
	MinSymbol int8
	MaxSymbol int8
}

// Query is one encoded (and obfuscated) query hypervector. Exactly one of
// Vector and Packed is set.
type Query struct {
	// Vector is the offloaded query hypervector in full precision.
	Vector []float64
	// Packed carries a small-alphabet (quantized) query as one byte per
	// dimension — an 8× wire saving that §III-C's quantization makes
	// possible ("transferring the least amount of information"). Servers
	// only accept symbols within the alphabet advertised in their
	// ServerHello ([MinSymbol, MaxSymbol], i.e. −2…+1); anything else is
	// rejected with ErrSymbolOutOfRange.
	Packed []int8
}

// vector returns the query as float64s regardless of wire form.
func (q Query) vector() []float64 {
	if q.Vector != nil {
		return q.Vector
	}
	out := make([]float64, len(q.Packed))
	for i, v := range q.Packed {
		out[i] = float64(v)
	}
	return out
}

// PackQuery converts a quantized hypervector to the compact wire form. It
// returns false if any value is not an integer within the protocol alphabet
// [MinSymbol, MaxSymbol] — i.e. the query was not actually quantized by one
// of the paper's schemes and must travel full-precision.
func PackQuery(h []float64) ([]int8, bool) {
	out := make([]int8, len(h))
	for i, v := range h {
		iv := int(v)
		if float64(iv) != v || iv < int(MinSymbol) || iv > int(MaxSymbol) {
			return nil, false
		}
		out[i] = int8(iv)
	}
	return out, true
}

// Request is one client→server frame: a batch of queries answered together
// in a single round trip.
type Request struct {
	Queries []Query
}

// Result is the classification of one query.
type Result struct {
	// Label is the predicted class.
	Label int
	// Scores are the per-class similarity scores (norm-adjusted dot
	// products of Eq. 4); returned so clients can gauge confidence.
	Scores []float64
}

// Reply is one server→client frame answering a Request. Code is empty on
// success; on failure it names the protocol error and no Results are
// returned.
type Reply struct {
	Code    string
	Detail  string
	Results []Result
}

// Server serves classification over a listener with a fixed model, one
// goroutine per connection.
type Server struct {
	model    *hdc.Model
	maxBatch int

	mu      sync.Mutex
	lis     net.Listener
	conns   map[*srvConn]struct{}
	served  int
	closing bool
	wg      sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxBatch sets the per-request query limit the server advertises and
// enforces.
func WithMaxBatch(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// NewServer returns a server around the given (typically full-precision)
// model. The model's norm caches are precomputed here; it must not be
// mutated while the server runs.
func NewServer(model *hdc.Model, opts ...ServerOption) *Server {
	model.Precompute()
	s := &Server{model: model, maxBatch: DefaultMaxBatch, conns: make(map[*srvConn]struct{})}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Served returns how many queries have been answered.
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// srvConn tracks one client connection's lifecycle for graceful shutdown.
type srvConn struct {
	conn net.Conn

	mu            sync.Mutex
	busy          bool
	closeWhenIdle bool
}

// enterBusy marks the connection as answering a request; it reports false
// if shutdown already asked the connection to close.
func (c *srvConn) enterBusy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeWhenIdle {
		return false
	}
	c.busy = true
	return true
}

// exitBusy marks the request finished and reports whether the connection
// should now close because a shutdown is in progress.
func (c *srvConn) exitBusy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.busy = false
	return c.closeWhenIdle
}

// askClose requests a graceful close: idle connections close immediately,
// busy ones right after their in-flight reply.
func (c *srvConn) askClose() {
	c.mu.Lock()
	idle := !c.busy
	c.closeWhenIdle = true
	c.mu.Unlock()
	if idle {
		c.conn.Close()
	}
}

// Serve accepts connections until the listener closes, the context is
// cancelled, or Close/Shutdown is called. Each connection may stream any
// number of Request frames. Serve returns nil after a clean stop.
func (s *Server) Serve(ctx context.Context, lis net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return errors.New("offload: server already closed")
	}
	s.lis = lis
	s.mu.Unlock()

	if ctx == nil {
		ctx = context.Background()
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Shutdown(sctx)
		case <-stop:
		}
	}()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing || ctx.Err() != nil {
				// Don't return (and let the caller exit) until the
				// shutdown path has drained in-flight handlers; Close and
				// Shutdown guarantee every handler terminates, so this
				// wait is bounded.
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("offload: accept: %w", err)
		}
		sc := &srvConn{conn: conn}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			s.wg.Wait()
			return nil
		}
		s.conns[sc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer s.forget(sc)
			s.handle(sc)
		}()
	}
}

func (s *Server) forget(sc *srvConn) {
	sc.conn.Close()
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
}

// Close stops the listener and closes every connection immediately,
// dropping in-flight requests.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	for sc := range s.conns {
		sc.conn.Close()
	}
	s.mu.Unlock()
	return err
}

// Shutdown stops accepting new connections, lets every in-flight request
// finish its reply, then closes the connections. It returns ctx.Err() if
// the context expires first, force-closing whatever remains.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	if s.lis != nil {
		s.lis.Close()
	}
	for sc := range s.conns {
		go sc.askClose()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sc := range s.conns {
			sc.conn.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// handle runs the handshake then answers Request frames until the peer
// hangs up or shutdown closes the connection.
func (s *Server) handle(sc *srvConn) {
	conn := sc.conn
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return
	}
	enc := gob.NewEncoder(conn)
	if hdr[0] != magic[0] || hdr[1] != magic[1] || hdr[2] != magic[2] {
		enc.Encode(ServerHello{Code: codeBadMagic, Version: ProtocolVersion})
		return
	}
	if hdr[3] != ProtocolVersion {
		enc.Encode(ServerHello{
			Code:    codeVersion,
			Detail:  fmt.Sprintf("server speaks v%d, client sent v%d", ProtocolVersion, hdr[3]),
			Version: ProtocolVersion,
		})
		return
	}
	dec := gob.NewDecoder(conn)
	var hello Hello
	if err := dec.Decode(&hello); err != nil {
		return
	}
	if hello.Dim != s.model.Dim() ||
		(hello.Classes != 0 && hello.Classes != s.model.NumClasses()) {
		enc.Encode(ServerHello{
			Code: codeGeometry,
			Detail: fmt.Sprintf("server model is %d-dimensional with %d classes, client advertised dim %d classes %d",
				s.model.Dim(), s.model.NumClasses(), hello.Dim, hello.Classes),
			Version: ProtocolVersion,
			Dim:     s.model.Dim(),
			Classes: s.model.NumClasses(),
		})
		return
	}
	err := enc.Encode(ServerHello{
		Version:   ProtocolVersion,
		Dim:       s.model.Dim(),
		Classes:   s.model.NumClasses(),
		MaxBatch:  s.maxBatch,
		MinSymbol: MinSymbol,
		MaxSymbol: MaxSymbol,
	})
	if err != nil {
		return
	}

	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF, broken peer, or shutdown closed the conn
		}
		if !sc.enterBusy() {
			return
		}
		reply := s.answer(req)
		err := enc.Encode(reply)
		if sc.exitBusy() || err != nil {
			return
		}
	}
}

// answer classifies one request batch.
func (s *Server) answer(req Request) Reply {
	if len(req.Queries) > s.maxBatch {
		return Reply{Code: codeBatch,
			Detail: fmt.Sprintf("%d queries, limit %d", len(req.Queries), s.maxBatch)}
	}
	results := make([]Result, len(req.Queries))
	for i, q := range req.Queries {
		for j, sym := range q.Packed {
			if sym < MinSymbol || sym > MaxSymbol {
				return Reply{Code: codeSymbol,
					Detail: fmt.Sprintf("query %d dimension %d carries symbol %d, alphabet is [%d,%d]",
						i, j, sym, MinSymbol, MaxSymbol)}
			}
		}
		v := q.vector()
		if len(v) != s.model.Dim() {
			return Reply{Code: codeDim,
				Detail: fmt.Sprintf("query %d has dim %d, model dim %d", i, len(v), s.model.Dim())}
		}
		scores := s.model.Scores(v)
		label := 0
		for l, sc := range scores {
			if sc > scores[label] {
				label = l
			}
		}
		results[i] = Result{Label: label, Scores: scores}
	}
	s.mu.Lock()
	s.served += len(req.Queries)
	s.mu.Unlock()
	return Reply{Results: results}
}

// Client is the edge-side connection to a classification server.
type Client struct {
	conn  net.Conn
	dec   *gob.Decoder
	enc   *gob.Encoder
	hello ServerHello
}

// Dial connects to a server and performs the handshake, advertising the
// client encoder's dimensionality (and class count, when known; pass 0
// otherwise). The context bounds connection establishment and the
// handshake.
func Dial(ctx context.Context, network, addr string, dim, classes int) (*Client, error) {
	var d net.Dialer
	if ctx == nil {
		ctx = context.Background()
	}
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, fmt.Errorf("offload: dial %s: %w", addr, err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	}
	// A deadline alone doesn't cover cancellable contexts: abort a hung
	// handshake by closing the conn when ctx is cancelled mid-handshake.
	handshakeDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-handshakeDone:
		}
	}()
	c, err := NewClient(conn, dim, classes)
	close(handshakeDone)
	if err != nil {
		conn.Close()
		if ctx.Err() != nil {
			return nil, fmt.Errorf("offload: handshake: %w", ctx.Err())
		}
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	return c, nil
}

// NewClient performs the protocol handshake over an existing connection
// (useful with net.Pipe or a tapped conn in tests) and returns the client.
// On handshake rejection the returned error wraps ErrVersionMismatch,
// ErrGeometryMismatch or ErrBadMagic.
func NewClient(conn net.Conn, dim, classes int) (*Client, error) {
	c := &Client{conn: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(conn)}
	hdr := [4]byte{magic[0], magic[1], magic[2], ProtocolVersion}
	if _, err := conn.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("offload: handshake: %w", err)
	}
	if err := c.enc.Encode(Hello{Dim: dim, Classes: classes}); err != nil {
		return nil, fmt.Errorf("offload: handshake: %w", err)
	}
	if err := c.dec.Decode(&c.hello); err != nil {
		return nil, fmt.Errorf("offload: handshake: %w", err)
	}
	if c.hello.Code != "" {
		return nil, codeError(c.hello.Code, c.hello.Detail)
	}
	if c.hello.Version != ProtocolVersion {
		return nil, fmt.Errorf("%w: server speaks v%d, client v%d",
			ErrVersionMismatch, c.hello.Version, ProtocolVersion)
	}
	return c, nil
}

// Dim returns the served model's dimensionality, learned in the handshake.
func (c *Client) Dim() int { return c.hello.Dim }

// Classes returns the served model's class count, learned in the handshake.
func (c *Client) Classes() int { return c.hello.Classes }

// MaxBatch returns the server's advertised per-request query limit.
func (c *Client) MaxBatch() int { return c.hello.MaxBatch }

// Classify sends one prepared (already obfuscated) query and returns the
// predicted label and scores. Quantized queries automatically take the
// compact one-byte-per-dimension wire form.
func (c *Client) Classify(prepared []float64) (int, []float64, error) {
	results, err := c.roundTrip([][]float64{prepared})
	if err != nil {
		return 0, nil, err
	}
	return results[0].Label, results[0].Scores, nil
}

// ClassifyBatch classifies a batch of prepared queries, batching up to
// MaxBatch vectors per round trip, and returns the predicted labels in
// order. It stops at the first failure, returning the labels answered so
// far.
func (c *Client) ClassifyBatch(prepared [][]float64) ([]int, error) {
	results, err := c.ClassifyBatchScores(prepared)
	labels := make([]int, len(results))
	for i, r := range results {
		labels[i] = r.Label
	}
	return labels, err
}

// ClassifyBatchScores is ClassifyBatch returning full results.
func (c *Client) ClassifyBatchScores(prepared [][]float64) ([]Result, error) {
	out := make([]Result, 0, len(prepared))
	chunk := c.hello.MaxBatch
	if chunk <= 0 {
		chunk = DefaultMaxBatch
	}
	for start := 0; start < len(prepared); start += chunk {
		end := start + chunk
		if end > len(prepared) {
			end = len(prepared)
		}
		results, err := c.roundTrip(prepared[start:end])
		if err != nil {
			return out, fmt.Errorf("offload: batch at query %d: %w", start, err)
		}
		out = append(out, results...)
	}
	return out, nil
}

// roundTrip sends one Request frame and decodes its Reply.
func (c *Client) roundTrip(prepared [][]float64) ([]Result, error) {
	req := Request{Queries: make([]Query, len(prepared))}
	for i, v := range prepared {
		if packed, ok := PackQuery(v); ok {
			req.Queries[i] = Query{Packed: packed}
		} else {
			req.Queries[i] = Query{Vector: v}
		}
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("offload: send: %w", err)
	}
	var reply Reply
	if err := c.dec.Decode(&reply); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("offload: server closed the connection")
		}
		return nil, fmt.Errorf("offload: receive: %w", err)
	}
	if reply.Code != "" {
		return nil, codeError(reply.Code, reply.Detail)
	}
	if len(reply.Results) != len(prepared) {
		return nil, fmt.Errorf("offload: server answered %d of %d queries",
			len(reply.Results), len(prepared))
	}
	return reply.Results, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Wiretap records the queries that cross a connection — the honest-but-
// curious channel observer of §I that the obfuscation defends against.
// Wrap the client side of a connection with Tap and hand the wrapped conn
// to NewClient; every outgoing query vector is then also delivered to the
// tap.
type Wiretap struct {
	mu      sync.Mutex
	queries [][]float64
}

// Queries returns copies of every query vector seen so far.
func (w *Wiretap) Queries() [][]float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([][]float64, len(w.queries))
	for i, q := range w.queries {
		out[i] = append([]float64(nil), q...)
	}
	return out
}

func (w *Wiretap) record(v []float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.queries = append(w.queries, append([]float64(nil), v...))
}

// tappedConn duplicates decoded traffic to the wiretap. Interception
// happens at the message layer (header skip + gob re-decode) rather than
// raw bytes: the eavesdropper knows the protocol, as any network observer
// of a published schema would.
type tappedConn struct {
	net.Conn
	tap *Wiretap
	pr  *io.PipeReader
	pw  *io.PipeWriter
}

// Tap wraps conn so every Query written through it is also recorded by the
// returned Wiretap.
func Tap(conn net.Conn) (net.Conn, *Wiretap) {
	tap := &Wiretap{}
	pr, pw := io.Pipe()
	t := &tappedConn{Conn: conn, tap: tap, pr: pr, pw: pw}
	go func() {
		var hdr [4]byte
		if _, err := io.ReadFull(pr, hdr[:]); err != nil {
			return
		}
		dec := gob.NewDecoder(pr)
		var hello Hello
		if err := dec.Decode(&hello); err != nil {
			return
		}
		for {
			var req Request
			if err := dec.Decode(&req); err != nil {
				return
			}
			for _, q := range req.Queries {
				tap.record(q.vector())
			}
		}
	}()
	return t, tap
}

// Write forwards to the real connection and mirrors bytes into the
// tap's decoder.
func (t *tappedConn) Write(p []byte) (int, error) {
	n, err := t.Conn.Write(p)
	if n > 0 {
		// Pipe errors (reader done) must not break the real connection.
		_, _ = t.pw.Write(p[:n])
	}
	return n, err
}

// Close closes both the real connection and the mirror pipe.
func (t *tappedConn) Close() error {
	_ = t.pw.Close()
	return t.Conn.Close()
}
