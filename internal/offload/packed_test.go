package offload

import (
	"math/rand"
	"testing"

	"privehd/internal/hdc"
)

// packedTestModel builds an integer-valued model of the kind training
// produces (bundles of quantized encodings).
func packedTestModel(classes, dim int) *hdc.Model {
	m := hdc.NewModel(classes, dim)
	rng := rand.New(rand.NewSource(77))
	for l := 0; l < classes; l++ {
		h := make([]float64, dim)
		for i := range h {
			h[i] = float64(rng.Intn(4) - 2)
		}
		m.Add(l, h)
	}
	return m
}

// TestServerScoresPackedOnIntegerEngine asserts the server answers a packed
// frame through the registry entry's integer engine with exactly the same
// labels and scores as the equivalent full-precision frame — the wire-level
// form of the intscore equivalence contract.
func TestServerScoresPackedOnIntegerEngine(t *testing.T) {
	const classes, dim = 7, 301
	s := NewServer(packedTestModel(classes, dim))
	defer s.Close()

	entry, err := s.Registry().Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Scorer == nil {
		t.Fatal("registered entry carries no integer scorer")
	}
	if entry.Scorer.IntegerClasses() != classes {
		t.Fatalf("scorer has %d integer classes, want %d", entry.Scorer.IntegerClasses(), classes)
	}

	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 10; trial++ {
		packed := make([]int8, dim)
		vector := make([]float64, dim)
		for i := range packed {
			packed[i] = int8(rng.Intn(4)) - 2
			vector[i] = float64(packed[i])
		}
		pr := s.answer("", Request{Queries: []Query{{Packed: packed}}}, nil)
		vr := s.answer("", Request{Queries: []Query{{Vector: vector}}}, nil)
		if pr.Code != "" || vr.Code != "" {
			t.Fatalf("unexpected reply codes %q / %q", pr.Code, vr.Code)
		}
		p, v := pr.Results[0], vr.Results[0]
		if p.Label != v.Label {
			t.Fatalf("trial %d: packed label %d, vector label %d", trial, p.Label, v.Label)
		}
		for l := range p.Scores {
			if p.Scores[l] != v.Scores[l] {
				t.Fatalf("trial %d class %d: packed score %v != vector score %v",
					trial, l, p.Scores[l], v.Scores[l])
			}
		}
	}
}

// TestServerAbusedQueryBothFields pins the precedence contract for a frame
// that (ab)uses both wire fields: validation sizes the query by Vector, so
// scoring must also use Vector — a valid Vector plus a wrong-length Packed
// must neither panic a pool worker nor silently score the Packed form.
func TestServerAbusedQueryBothFields(t *testing.T) {
	const classes, dim = 3, 64
	s := NewServer(packedTestModel(classes, dim))
	defer s.Close()

	vector := make([]float64, dim)
	for i := range vector {
		vector[i] = float64(i%3 - 1)
	}
	// Packed deliberately has the wrong length AND would classify
	// differently if it were ever consulted.
	abused := Query{Vector: vector, Packed: []int8{1, -1, 1}}
	got := s.answer("", Request{Queries: []Query{abused}}, nil)
	want := s.answer("", Request{Queries: []Query{{Vector: vector}}}, nil)
	if got.Code != "" || want.Code != "" {
		t.Fatalf("unexpected reply codes %q / %q", got.Code, want.Code)
	}
	if got.Results[0].Label != want.Results[0].Label {
		t.Fatalf("abused frame label %d, vector-only label %d", got.Results[0].Label, want.Results[0].Label)
	}
	for l, sc := range got.Results[0].Scores {
		if sc != want.Results[0].Scores[l] {
			t.Fatalf("class %d: abused score %v != vector score %v", l, sc, want.Results[0].Scores[l])
		}
	}
}
