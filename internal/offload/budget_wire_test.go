package offload

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"testing"
	"time"

	"privehd/internal/trace"
)

// preBudgetRequest mirrors the Request shape as it was before BudgetNs
// existed (the trace-era v5 frame): a peer compiled against that revision
// declares exactly these fields, and gob's field-superset rule silently
// drops the new one — the same compatibility contract tracing shipped
// under, extended to deadline propagation.
type preBudgetRequest struct {
	ID      uint64
	Op      string
	Queries []Query
	Trace   uint64
}

func TestUndeadlinedFramesByteIdenticalToPreBudget(t *testing.T) {
	// gob omits zero-valued fields, so a Request without a deadline
	// (BudgetNs 0) must encode to exactly the payload bytes a pre-budget
	// peer would produce — deadline propagation costs undeadlined
	// traffic nothing on the wire and needs no version bump.
	qs := []Query{{Packed: []int8{1, -1, 0, 1}}}
	newReq := secondFrame(t, func(enc *gob.Encoder) error {
		return enc.Encode(Request{ID: 9, Queries: qs})
	})
	oldReq := secondFrame(t, func(enc *gob.Encoder) error {
		return enc.Encode(preBudgetRequest{ID: 9, Queries: qs})
	})
	if len(newReq) != len(oldReq) || !bytes.Equal(framePayload(t, newReq), framePayload(t, oldReq)) {
		t.Errorf("undeadlined Request value encoding differs from pre-budget shape:\n new %x\n old %x", newReq, oldReq)
	}

	// Traced but undeadlined: the Trace field rides along exactly as
	// before, still without a BudgetNs on the wire.
	newTraced := secondFrame(t, func(enc *gob.Encoder) error {
		return enc.Encode(Request{ID: 9, Trace: 0xbeef, Queries: qs})
	})
	oldTraced := secondFrame(t, func(enc *gob.Encoder) error {
		return enc.Encode(preBudgetRequest{ID: 9, Trace: 0xbeef, Queries: qs})
	})
	if len(newTraced) != len(oldTraced) || !bytes.Equal(framePayload(t, newTraced), framePayload(t, oldTraced)) {
		t.Errorf("traced undeadlined Request differs from pre-budget shape:\n new %x\n old %x", newTraced, oldTraced)
	}
}

func TestDeadlinedClientAgainstPreBudgetServer(t *testing.T) {
	// A deadline-stamping client talking to a server that predates
	// BudgetNs: the server's decoder drops the unknown field and answers
	// normally — deadlines degrade to a client-side-only bound.
	defer trace.SetSampling(trace.Sampling())
	trace.SetSampling(0)

	addr, _, cleanup := startServer(t, labelModel(1))
	defer cleanup()
	conn, enc, dec := rawHandshake(t, addr, ProtocolVersion, Hello{Dim: 4})
	defer conn.Close()

	// The "pre-budget server" side is simulated by the real server
	// decoding a frame we know carries BudgetNs: the server DOES know the
	// field, so prove the inverse too — an old client's frame (no
	// BudgetNs on the wire) decodes to budget 0 and is never shed.
	if err := enc.Encode(preBudgetRequest{ID: 1, Queries: []Query{{Packed: []int8{1, 1, 0, 0}}}}); err != nil {
		t.Fatal(err)
	}
	var reply Reply
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Code != "" || len(reply.Results) != 1 {
		t.Fatalf("pre-budget frame was not answered normally: %+v", reply)
	}
}

func TestStampBudgetSemantics(t *testing.T) {
	var req Request
	if err := stampBudget(context.Background(), &req); err != nil {
		t.Fatalf("no-deadline ctx: %v", err)
	}
	if req.BudgetNs != 0 {
		t.Fatalf("no-deadline ctx stamped BudgetNs %d, want 0", req.BudgetNs)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := stampBudget(ctx, &req); err != nil {
		t.Fatalf("live deadline: %v", err)
	}
	if req.BudgetNs <= 0 || req.BudgetNs > int64(time.Minute) {
		t.Fatalf("BudgetNs = %d, want within (0, 1m]", req.BudgetNs)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	err := stampBudget(expired, &req)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired ctx err = %v, want ErrDeadlineExceeded", err)
	}
}
