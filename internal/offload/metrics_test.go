package offload

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestOverloadRejection exercises the WithMaxConns backpressure path: a
// connection past the limit is refused with a typed, retryable
// ErrOverloaded at dial time, and the slot frees once an existing
// connection closes.
func TestOverloadRejection(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel(), WithMaxConns(1))
	defer cleanup()

	rejBefore := mRejections.With(codeOverloaded).Value()

	c1 := dialToy(t, addr)
	// The first connection holds the only slot; the next dial must be
	// refused with the typed overload code, not hang.
	_, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("dial past limit: err = %v, want ErrOverloaded", err)
	}
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("ErrOverloaded must wrap ErrTransport (retryable), err = %v", err)
	}
	if got := mRejections.With(codeOverloaded).Value(); got != rejBefore+1 {
		t.Errorf("overload rejections = %d, want %d", got, rejBefore+1)
	}

	// Releasing the held connection frees the slot. The server forgets the
	// conn asynchronously after the close, so poll briefly.
	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c2, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4})
		if err == nil {
			c2.Close()
			break
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("redial after release: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after closing the held connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerMetricsCounters checks that serving traffic moves the
// process-global counters by exactly the traffic served: connections,
// per-op requests, per-model queries, latency-histogram counts, and wire
// bytes.
func TestServerMetricsCounters(t *testing.T) {
	// Snapshot before — the registry is process-global and other tests in
	// the package move the same counters.
	connsBefore := mConnsTotal.Value()
	reqBefore := mRequests.With("classify").Value()
	qBefore := mQueries.With(DefaultModelName).Value()
	histBefore := mRequestSeconds.With("classify").Count()
	readBefore := mReadBytes.Value()
	writtenBefore := mWrittenBytes.Value()

	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)

	const frames = 3
	for i := 0; i < frames; i++ {
		if _, _, err := c.Classify([]float64{2, 1, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	batch := [][]float64{{2, 1, 0, 0}, {0, 0, 1, 2}}
	if _, err := c.ClassifyBatch(batch); err != nil {
		t.Fatal(err)
	}
	c.Close()

	if got := mConnsTotal.Value() - connsBefore; got != 1 {
		t.Errorf("connections delta = %d, want 1", got)
	}
	if got := mRequests.With("classify").Value() - reqBefore; got != frames+1 {
		t.Errorf("classify requests delta = %d, want %d", got, frames+1)
	}
	if got := mQueries.With(DefaultModelName).Value() - qBefore; got != frames+2 {
		t.Errorf("queries delta = %d, want %d", got, frames+2)
	}
	if got := mRequestSeconds.With("classify").Count() - histBefore; got != frames+1 {
		t.Errorf("latency histogram count delta = %d, want %d", got, frames+1)
	}
	if mReadBytes.Value() == readBefore {
		t.Error("read bytes counter did not move")
	}
	if mWrittenBytes.Value() == writtenBefore {
		t.Error("written bytes counter did not move")
	}
}

// TestCountingConnPreservesCloseWrite pins the graceful-shutdown
// contract: wrapping a TCP conn for byte metering must keep CloseWrite
// reachable, and must NOT invent one for conns that lack it.
func TestCountingConnPreservesCloseWrite(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()

	// Client side proves the server's FIN still arrives on shutdown paths
	// elsewhere; here check the wrapper's static behavior directly.
	c := dialToy(t, addr)
	defer c.Close()

	wrapped := countConn(c.conn) // *net.TCPConn underneath
	if _, ok := wrapped.(closeWriter); !ok {
		t.Error("countConn dropped CloseWrite from a TCP conn")
	}

	p1, p2 := net.Pipe()
	defer p1.Close()
	defer p2.Close()
	if _, ok := countConn(p1).(closeWriter); ok {
		t.Error("countConn invented CloseWrite for a pipe conn")
	}
}
