package offload

import (
	"context"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"privehd/internal/hdc"
)

// manyClassModel is slow enough that a large batch's scoring visibly outlasts a
// millisecond-scale budget on one worker — the deterministic trigger for
// queued-work shedding.
func manyClassModel() *hdc.Model {
	const dim, classes = 4096, 64
	m := hdc.NewModel(classes, dim)
	v := make([]float64, dim)
	for i := range v {
		v[i] = float64(i%7) - 3
	}
	for c := 0; c < classes; c++ {
		m.Add(c, v)
	}
	return m
}

func TestDeadlineExpiredBeforeSend(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err := c.ClassifyContext(ctx, []float64{1, 0, 0, 0})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired-before-send err = %v, want ErrDeadlineExceeded", err)
	}
	if errors.Is(err, ErrTransport) {
		t.Fatal("deadline errors must not wrap ErrTransport: retrying out-of-time work wastes capacity")
	}
}

func TestServerShedsExpiredQueuedFrame(t *testing.T) {
	addr, _, cleanup := startServer(t, manyClassModel(), WithMaxBatch(1024), WithWorkers(1))
	defer cleanup()
	before := mRejections.With(codeDeadline).Value()

	conn, enc, dec := rawHandshake(t, addr, ProtocolVersion, Hello{Dim: 4096})
	defer conn.Close()
	// 512 queries × (64 classes · 4096 dims) on one worker takes tens of
	// milliseconds; a 1ms budget must expire while later tasks still sit
	// in the scoring queue, so the frame comes back shed, not scored.
	q := make([]float64, 4096)
	q[0] = 1
	req := Request{BudgetNs: int64(time.Millisecond), Queries: make([]Query, 512)}
	for i := range req.Queries {
		req.Queries[i] = Query{Vector: q}
	}
	if err := enc.Encode(req); err != nil {
		t.Fatal(err)
	}
	var reply Reply
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Code != codeDeadline {
		t.Fatalf("reply code = %q, want %q", reply.Code, codeDeadline)
	}
	if got := codeError(reply.Code, reply.Detail); !errors.Is(got, ErrDeadlineExceeded) {
		t.Fatalf("shed reply decodes to %v, want ErrDeadlineExceeded", got)
	}
	if after := mRejections.With(codeDeadline).Value(); after != before+1 {
		t.Fatalf("rejections{reason=deadline} moved %d→%d, want +1", before, after)
	}
}

func TestServerShedsExpiredAtEntry(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	conn, enc, dec := rawHandshake(t, addr, ProtocolVersion, Hello{Dim: 4})
	defer conn.Close()
	// A 1ns budget is over by the time the server even looks at the
	// frame: the pre-dispatch check sheds it without queueing any task.
	req := Request{BudgetNs: 1, Queries: []Query{{Vector: []float64{1, 0, 0, 0}}}}
	if err := enc.Encode(req); err != nil {
		t.Fatal(err)
	}
	var reply Reply
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Code != codeDeadline {
		t.Fatalf("reply code = %q, want %q", reply.Code, codeDeadline)
	}
}

func TestClassifyContextCancelIsTransport(t *testing.T) {
	// A plain cancellation (no deadline) is a hedge-loser/caller-abort
	// signal: the work may be fine elsewhere, so it stays retryable.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	addr, _, cleanup := startServer(t, manyClassModel(), WithMaxBatch(1024), WithWorkers(1))
	defer cleanup()
	c, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	q := make([][]float64, 512)
	for i := range q {
		q[i] = make([]float64, 4096)
		q[i][0] = 1
	}
	_, err = c.ClassifyBatchScoresContext(ctx, q)
	if err == nil {
		t.Skip("batch finished before the cancel landed")
	}
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("canceled wait err = %v, want ErrTransport-wrapped", err)
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("plain cancellation must not read as a deadline: %v", err)
	}
}

func TestClassifyContextNoDeadlineUnchanged(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()
	label, scores, err := c.ClassifyContext(context.Background(), []float64{2, 1, 0, 0})
	if err != nil || label != 0 || len(scores) != 2 {
		t.Fatalf("ClassifyContext(Background) = %d, %v, %v", label, scores, err)
	}
}

func TestPing(t *testing.T) {
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping on live server: %v", err)
	}
	c.Close()
	if err := c.Ping(context.Background()); err == nil {
		t.Fatal("Ping on closed client should fail")
	}
}

// TestPingPreBudgetServer fakes a server that predates OpPing: it answers
// the op with a bad-op rejection. The reply still proves the peer is
// alive and reading, so Ping must treat it as success.
func TestPingPreBudgetServer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fakeServeBadOpPing(conn)
	}()
	c, err := Dial(context.Background(), "tcp", lis.Addr().String(), Hello{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping against a pre-ping server = %v, want nil (liveness proven)", err)
	}
}

// fakeServeBadOpPing speaks just enough of the server side of the wire
// to handshake and then reject every ping frame with codeBadOp — the
// behaviour of a server that predates OpPing.
func fakeServeBadOpPing(conn net.Conn) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		return
	}
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var hello Hello
	if dec.Decode(&hello) != nil {
		return
	}
	sh := ServerHello{
		Version: ProtocolVersion, Dim: 4, Classes: 2, MaxBatch: DefaultMaxBatch,
		MinSymbol: -8, MaxSymbol: 8,
	}
	if enc.Encode(sh) != nil {
		return
	}
	for {
		var req Request
		if dec.Decode(&req) != nil {
			return
		}
		reply := Reply{ID: req.ID}
		if req.Op == OpPing {
			reply.Code = codeBadOp
			reply.Detail = "op \"ping\" (this server speaks v5)"
		}
		if enc.Encode(reply) != nil {
			return
		}
	}
}

func BenchmarkPredictWithDeadline(b *testing.B) {
	// The per-request deadline machinery on the client send path —
	// reading the context deadline and stamping BudgetNs — must stay
	// allocation-free: it runs on every frame of every deadlined call.
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	req := Request{Queries: []Query{{Packed: []int8{1, 0, 0, 0}}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := stampBudget(ctx, &req); err != nil {
			b.Fatal(err)
		}
	}
	if req.BudgetNs == 0 {
		b.Fatal("budget was not stamped")
	}
}
