package offload

import (
	"bytes"
	"encoding/gob"
	"io"
	"net"
	"testing"
	"time"

	"privehd/internal/trace"
)

// preTraceRequest and preTraceReply mirror the v4 frame shapes as they
// were before the trace fields existed: a peer compiled against that
// revision declares exactly these fields, and gob's field-superset rule
// silently drops anything extra — the compatibility contract that lets
// tracing ship without a version bump.
type preTraceRequest struct {
	ID      uint64
	Op      string
	Queries []Query
}

type preTraceReply struct {
	ID      uint64
	Code    string
	Detail  string
	Results []Result
	Models  []ModelListing
}

func TestTracedClientAgainstPreTraceServer(t *testing.T) {
	// A sampling client talking to a server that predates the Trace field:
	// the server's decoder drops the unknown field, answers normally with a
	// Timing-less reply, and the client records the trace with no server
	// breakdown instead of failing.
	defer trace.SetSampling(trace.Sampling())
	trace.SetSampling(1)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- func() error {
			conn, err := lis.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			var hdr [4]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				return err
			}
			dec := gob.NewDecoder(conn)
			enc := gob.NewEncoder(conn)
			var hello Hello
			if err := dec.Decode(&hello); err != nil {
				return err
			}
			if err := enc.Encode(ServerHello{
				Version: ProtocolVersion, Dim: 4, Classes: 2,
				MaxBatch: DefaultMaxBatch, MinSymbol: -2, MaxSymbol: 1,
			}); err != nil {
				return err
			}
			// The pre-trace decoder: any Trace field on the wire is dropped.
			var req preTraceRequest
			if err := dec.Decode(&req); err != nil {
				return err
			}
			return enc.Encode(preTraceReply{
				ID:      req.ID,
				Results: []Result{{Label: 1, Scores: []float64{0, 1}}},
			})
		}()
	}()

	entries := make(chan trace.Entry, 4)
	trace.SetObserver(func(e trace.Entry) { entries <- e })
	defer trace.SetObserver(nil)

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(conn, Hello{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	label, _, err := c.Classify([]float64{1, 1, 0, 0})
	if err != nil {
		t.Fatalf("Classify against pre-trace server: %v", err)
	}
	if label != 1 {
		t.Errorf("label = %d, want 1", label)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("pre-trace server: %v", err)
	}
	select {
	case e := <-entries:
		if e.TraceID == 0 {
			t.Error("client entry carries no trace ID despite sampling 1")
		}
		if e.ServerTotalNs != 0 {
			t.Errorf("client entry claims server timing %dns from a server that cannot report any", e.ServerTotalNs)
		}
		if e.TotalNs <= 0 {
			t.Errorf("client entry TotalNs = %d, want > 0", e.TotalNs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no client trace entry recorded")
	}
}

func TestPreTraceClientAgainstTracingServer(t *testing.T) {
	// A byte-faithful pre-trace v4 client against a server that samples
	// every request: the server attaches Timing to its replies, the old
	// client's decoder drops it, and the exchange still round-trips.
	defer trace.SetSampling(trace.Sampling())
	trace.SetSampling(1)

	addr, _, cleanup := startServer(t, labelModel(1))
	defer cleanup()
	conn, enc, dec := rawHandshake(t, addr, ProtocolVersion, Hello{Dim: 4})
	defer conn.Close()
	for i := uint64(1); i <= 3; i++ {
		if err := enc.Encode(preTraceRequest{ID: i, Queries: []Query{{Packed: []int8{1, 1, 0, 0}}}}); err != nil {
			t.Fatal(err)
		}
		var reply preTraceReply
		if err := dec.Decode(&reply); err != nil {
			t.Fatal(err)
		}
		if reply.ID != i || reply.Code != "" || len(reply.Results) != 1 || reply.Results[0].Label != 1 {
			t.Fatalf("frame %d reply = %+v", i, reply)
		}
	}
}

func TestTracedRequestGetsTimingUntracedDoesNot(t *testing.T) {
	// With sampling off, only frames that arrive with an explicit Trace ID
	// get a Timing breakdown back; untraced frames get the exact pre-trace
	// reply shape (nil Timing).
	defer trace.SetSampling(trace.Sampling())
	trace.SetSampling(0)

	addr, _, cleanup := startServer(t, labelModel(1))
	defer cleanup()
	conn, enc, dec := rawHandshake(t, addr, ProtocolVersion, Hello{Dim: 4})
	defer conn.Close()

	if err := enc.Encode(Request{ID: 1, Trace: 0xabcdef, Queries: []Query{{Packed: []int8{1, 1, 0, 0}}}}); err != nil {
		t.Fatal(err)
	}
	var traced Reply
	if err := dec.Decode(&traced); err != nil {
		t.Fatal(err)
	}
	if traced.Timing == nil {
		t.Fatal("traced request got no Timing breakdown")
	}
	if traced.Timing.TotalNs <= 0 {
		t.Errorf("Timing.TotalNs = %d, want > 0", traced.Timing.TotalNs)
	}
	if traced.Timing.QueueNs+traced.Timing.ScoreNs > traced.Timing.TotalNs {
		t.Errorf("stages queue %d + score %d exceed total %d",
			traced.Timing.QueueNs, traced.Timing.ScoreNs, traced.Timing.TotalNs)
	}

	if err := enc.Encode(Request{ID: 2, Queries: []Query{{Packed: []int8{1, 1, 0, 0}}}}); err != nil {
		t.Fatal(err)
	}
	var untraced Reply
	if err := dec.Decode(&untraced); err != nil {
		t.Fatal(err)
	}
	if untraced.Timing != nil {
		t.Errorf("untraced request got Timing %+v, want none", untraced.Timing)
	}
}

// secondFrame encodes the same value twice on one gob stream and returns
// the second frame's bytes — pure value encoding, with the type
// descriptor already sent in the first frame.
func secondFrame(t *testing.T, encode func(*gob.Encoder) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := encode(enc); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := encode(enc); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), buf.Bytes()[n:]...)
}

// framePayload strips a value frame's length byte and stream-local type
// id (3 bytes), leaving the field payload. Type ids are arbitrary
// stream-assignment counters — the new stream also numbers StageTiming —
// so only the payload is comparable across struct revisions.
func framePayload(t *testing.T, frame []byte) []byte {
	t.Helper()
	if len(frame) < 4 {
		t.Fatalf("implausibly short gob value frame: %x", frame)
	}
	return frame[3:]
}

func TestUntracedFramesByteIdenticalToPreTrace(t *testing.T) {
	// gob omits zero-valued fields from value encodings, so an untraced
	// Request (Trace 0) and a Timing-less Reply must encode to exactly the
	// payload bytes a pre-trace peer would produce — tracing costs
	// untraced traffic nothing on the wire.
	qs := []Query{{Packed: []int8{1, -1, 0, 1}}}
	newReq := secondFrame(t, func(enc *gob.Encoder) error {
		return enc.Encode(Request{ID: 9, Queries: qs})
	})
	oldReq := secondFrame(t, func(enc *gob.Encoder) error {
		return enc.Encode(preTraceRequest{ID: 9, Queries: qs})
	})
	if len(newReq) != len(oldReq) || !bytes.Equal(framePayload(t, newReq), framePayload(t, oldReq)) {
		t.Errorf("untraced Request value encoding differs from pre-trace shape:\n new %x\n old %x", newReq, oldReq)
	}

	rs := []Result{{Label: 2, Scores: []float64{0.25, 0.5, 0.25}}}
	newRep := secondFrame(t, func(enc *gob.Encoder) error {
		return enc.Encode(Reply{ID: 9, Results: rs})
	})
	oldRep := secondFrame(t, func(enc *gob.Encoder) error {
		return enc.Encode(preTraceReply{ID: 9, Results: rs})
	})
	if len(newRep) != len(oldRep) || !bytes.Equal(framePayload(t, newRep), framePayload(t, oldRep)) {
		t.Errorf("untimed Reply value encoding differs from pre-trace shape:\n new %x\n old %x", newRep, oldRep)
	}
}
