package offload

// Wire-compatibility coverage for protocol v5: byte-faithful v4 sessions
// against a v5 server (frozen struct clones, exactly like the v2/v3 tests
// in offload_test.go), the v5-only surfaces (shard descriptors in the
// handshake, partial-score frames, GoAway drain notices), and the typed
// refusal a v5 client gets from a v4-only server.

import (
	"context"
	"encoding/gob"
	"errors"
	"io"
	"math"
	"net"
	"testing"
	"time"

	"privehd/internal/registry"
)

// v4ServerHello mirrors the protocol-v4 client's view of the handshake
// answer: the v5 ServerHello minus the Shard descriptor. gob drops fields
// the receiver does not declare, so decoding into this struct is exactly
// what a frozen v4 binary does.
type v4ServerHello struct {
	Code         string
	Detail       string
	Version      byte
	Dim          int
	Classes      int
	MaxBatch     int
	MinSymbol    int8
	MaxSymbol    int8
	Model        string
	ModelVersion int
	Encoding     int
	Levels       int
	Features     int
	Seed         uint64
}

// v4Reply mirrors the v4 reply frame: the v5 Reply minus Partials, NormSq
// and GoAway.
type v4Reply struct {
	ID      uint64
	Code    string
	Detail  string
	Results []Result
	Models  []ModelListing
	Timing  *StageTiming
}

func TestV4ClientStillServed(t *testing.T) {
	// A byte-faithful v4 session (version byte 4, ID-correlated pipelined
	// frames, frozen reply shape) must be served unchanged by a v5 server.
	reg := registry.New()
	if _, err := reg.Register("m1", labelModel(1), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startRegistryServer(t, reg)
	defer cleanup()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{'P', 'H', 'D', 4}); err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(Hello{Dim: 4, Model: "m1"}); err != nil {
		t.Fatal(err)
	}
	var hello v4ServerHello
	if err := dec.Decode(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Code != "" {
		t.Fatalf("v4 handshake rejected: %s (%s)", hello.Code, hello.Detail)
	}
	if hello.Version != 4 {
		t.Errorf("server answered v%d to a v4 client, want v4", hello.Version)
	}
	if hello.Model != "m1" || hello.Dim != 4 {
		t.Errorf("v4 hello = %+v", hello)
	}

	// Pipeline two classification frames plus a list-models frame before
	// reading anything; replies correlate by ID, not order.
	for _, id := range []uint64{7, 8} {
		if err := enc.Encode(Request{ID: id, Queries: []Query{{Packed: []int8{1, 1, 0, 0}}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Encode(Request{ID: 9, Op: OpListModels}); err != nil {
		t.Fatal(err)
	}
	got := map[uint64]v4Reply{}
	for i := 0; i < 3; i++ {
		var reply v4Reply
		if err := dec.Decode(&reply); err != nil {
			t.Fatal(err)
		}
		got[reply.ID] = reply
	}
	for _, id := range []uint64{7, 8} {
		reply, ok := got[id]
		if !ok {
			t.Fatalf("no reply for frame %d (got %v)", id, got)
		}
		if reply.Code != "" || len(reply.Results) != 1 || reply.Results[0].Label != 1 {
			t.Errorf("v4 reply %d = %+v", id, reply)
		}
	}
	if reply := got[9]; reply.Code != "" || len(reply.Models) != 1 || reply.Models[0].Name != "m1" {
		t.Errorf("v4 list-models reply = %+v", got[9])
	}
}

func TestV4ClientGetsFINNotGoAwayOnShutdown(t *testing.T) {
	// The GoAway drain notice is a v5 surface: an idle v4 connection must
	// discover a graceful shutdown from the FIN exactly as before — an
	// unsolicited frame would sit in a frozen v4 client's reply path as an
	// unknown-ID reply and break it.
	addr, srv, cleanup := startServer(t, toyModel())
	defer cleanup()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{'P', 'H', 'D', 4}); err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(Hello{Dim: 4}); err != nil {
		t.Fatal(err)
	}
	var hello v4ServerHello
	if err := dec.Decode(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Code != "" || hello.Version != 4 {
		t.Fatalf("v4 handshake = %+v", hello)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// The very next thing on the wire must be the FIN (EOF), never a frame.
	var reply v4Reply
	switch err := dec.Decode(&reply); {
	case err == nil:
		t.Fatalf("v4 connection received an unsolicited frame during shutdown: %+v", reply)
	case !errors.Is(err, io.EOF):
		t.Fatalf("expected EOF from the graceful FIN, got %v", err)
	}
	conn.Close()
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown returned %v", err)
	}
}

func TestV5ClientGetsGoAwayOnShutdown(t *testing.T) {
	// A v5 client is told about the drain before the FIN: the unsolicited
	// Reply{GoAway} flips Draining() so pools stop routing new work here
	// while in-flight replies still arrive.
	addr, srv, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()
	if c.Draining() {
		t.Fatal("fresh connection reports draining")
	}
	// One round trip proves the connection works before the drain.
	if _, _, err := c.Classify([]float64{1, 1, 0, 0}); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !c.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("client never saw the GoAway drain notice")
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown returned %v", err)
	}
}

func TestV5ClientRefusedByV4OnlyServerTyped(t *testing.T) {
	// A frozen v4-only server answers a v5 header with a version-mismatch
	// rejection; the v5 client must surface it as ErrVersionMismatch — a
	// typed refusal, not a retryable transport failure.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				hdr := make([]byte, 4)
				if _, err := io.ReadFull(conn, hdr); err != nil {
					return
				}
				var hello Hello
				if err := gob.NewDecoder(conn).Decode(&hello); err != nil {
					return
				}
				gob.NewEncoder(conn).Encode(v4ServerHello{
					Code:    "version-mismatch",
					Detail:  "server speaks v4 (and accepts v2–v3), client sent v5",
					Version: 4,
				})
			}(conn)
		}
	}()

	_, err = Dial(context.Background(), "tcp", lis.Addr().String(), Hello{Dim: 4})
	if err == nil {
		t.Fatal("dial of a v4-only server succeeded")
	}
	if !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("err = %v, want ErrVersionMismatch", err)
	}
	if errors.Is(err, ErrTransport) {
		t.Errorf("version refusal wraps ErrTransport (would be retried): %v", err)
	}
}

func TestServerHelloCarriesShardDescriptor(t *testing.T) {
	// A sliced registry entry advertises its shard descriptor in the v5
	// handshake; a whole entry advertises none.
	reg := registry.New()
	if _, err := reg.Register("whole", labelModel(0), registry.EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	info := &registry.ShardInfo{DimOffset: 0, DimLen: 4, ClassOffset: 0, ClassCount: 2, FullDim: 8, FullClasses: 2}
	if _, err := reg.RegisterShard("slice", labelModel(0), registry.EncoderInfo{}, info); err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startRegistryServer(t, reg)
	defer cleanup()

	cw, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4, Model: "whole"})
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()
	if cw.Shard() != nil {
		t.Errorf("whole model advertised shard %+v", cw.Shard())
	}
	cs, err := Dial(context.Background(), "tcp", addr, Hello{Dim: 4, Model: "slice"})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	got := cs.Shard()
	if got == nil {
		t.Fatal("sliced model advertised no shard descriptor")
	}
	if *got != *info {
		t.Errorf("shard descriptor = %+v, want %+v", got, info)
	}
	if got.Whole() {
		t.Error("a strict slice reports Whole()")
	}
}

func TestPartialScoresExactAndComposable(t *testing.T) {
	// Partial scores over the full dimension range must reproduce the
	// classify path bit for bit: score[l] == dot[l] / sqrt(normSq[l]).
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()

	q := []int8{1, -1, 1, 0}
	partials, normSq, err := c.PartialScores([][]int8{q})
	if err != nil {
		t.Fatal(err)
	}
	if len(partials) != 1 || len(partials[0]) != 2 || len(normSq) != 2 {
		t.Fatalf("partials = %v, normSq = %v", partials, normSq)
	}
	// toyModel classes: {1,1,0,0} and {0,0,1,1} → dots 0 and 1, Σv² 2 and 2.
	if partials[0][0] != 0 || partials[0][1] != 1 {
		t.Errorf("dots = %v, want [0 1]", partials[0])
	}
	if normSq[0] != 2 || normSq[1] != 2 {
		t.Errorf("normSq = %v, want [2 2]", normSq)
	}
	_, scores, err := c.Classify([]float64{1, -1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for l := range normSq {
		want := float64(partials[0][l]) / math.Sqrt(normSq[l])
		if scores[l] != want {
			t.Errorf("class %d: classify score %v, partial reconstruction %v", l, scores[l], want)
		}
	}
}

func TestPartialScoresRefusedForNonIntegerModel(t *testing.T) {
	// A model whose class planes are not integer-valued (e.g. DP-noised)
	// cannot answer exactly; the refusal is typed and must not look like a
	// transport failure (a coordinator would otherwise retry it forever).
	m := labelModel(0)
	m.Add(0, []float64{0.5, 0.25, 0, 0})
	addr, _, cleanup := startServer(t, m)
	defer cleanup()
	c := dialToy(t, addr)
	defer c.Close()

	_, _, err := c.PartialScores([][]int8{{1, 1, 0, 0}})
	if !errors.Is(err, ErrPartialUnsupported) {
		t.Errorf("err = %v, want ErrPartialUnsupported", err)
	}
	if errors.Is(err, ErrTransport) {
		t.Errorf("typed refusal wraps ErrTransport: %v", err)
	}
}

func TestPartialScoresRefusesVectorQueries(t *testing.T) {
	// Partial scoring is integer-domain only: a full-precision Vector query
	// on an OpPartialScores frame is refused with the typed code, not
	// silently rounded.
	addr, _, cleanup := startServer(t, toyModel())
	defer cleanup()
	conn, enc, dec := rawHandshake(t, addr, ProtocolVersion, Hello{Dim: 4})
	defer conn.Close()
	if err := enc.Encode(Request{ID: 1, Op: OpPartialScores,
		Queries: []Query{{Vector: []float64{0.5, 0.5, 0, 0}}}}); err != nil {
		t.Fatal(err)
	}
	var reply Reply
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Code != codePartial {
		t.Errorf("reply code = %q, want %q", reply.Code, codePartial)
	}
}
