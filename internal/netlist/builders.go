package netlist

import (
	"fmt"

	"privehd/internal/fpga"
	"privehd/internal/hrand"
)

// This file synthesizes the Fig. 7a datapaths structurally:
//
//   - 6:3 compressors (three LUT-6s producing the 3-bit popcount of six
//     bits) feed a ripple-carry adder tree, then a constant comparator —
//     the "exact adder-tree implementation".
//   - The approximate variant replaces the first stage with 6-input
//     majority LUTs and counts the (6× fewer) majority bits the same way.
//
// The builders return real LUT counts, which the experiments compare
// against the paper's Eq. 15 analytic estimates.

// number is a little-endian vector of wire IDs representing an unsigned
// binary value.
type number []NodeID

// addCompressor adds the 6:3 popcount compressor over up to 6 input wires:
// one LUT per output bit.
func addCompressor(n *Netlist, tag string, bits []NodeID) number {
	if len(bits) == 0 || len(bits) > 6 {
		panic(fmt.Sprintf("netlist: compressor over %d bits", len(bits)))
	}
	w := len(bits)
	outBits := 1
	for (1 << outBits) <= w {
		outBits++
	}
	out := make(number, outBits)
	for b := 0; b < outBits; b++ {
		bit := b
		lut := fpga.FuncLUT6(w, func(in []bool) bool {
			c := 0
			for _, v := range in {
				if v {
					c++
				}
			}
			return c>>uint(bit)&1 == 1
		})
		out[b] = n.AddLUT(fmt.Sprintf("%s_cnt%d", tag, b), lut, bits...)
	}
	return out
}

// addRipple adds a ripple-carry adder for two numbers (widths may differ)
// and returns their sum, one bit wider than the larger input. Each bit
// position costs one sum LUT and one carry LUT (the carry out of the final
// position is the extra MSB).
func addRipple(n *Netlist, tag string, a, b number) number {
	width := len(a)
	if len(b) > width {
		width = len(b)
	}
	out := make(number, 0, width+1)
	var carry NodeID
	hasCarry := false
	for i := 0; i < width; i++ {
		var fan []NodeID
		if i < len(a) {
			fan = append(fan, a[i])
		}
		if i < len(b) {
			fan = append(fan, b[i])
		}
		if hasCarry {
			fan = append(fan, carry)
		}
		sumLUT := fpga.FuncLUT6(len(fan), func(in []bool) bool {
			return parity(in)
		})
		out = append(out, n.AddLUT(fmt.Sprintf("%s_s%d", tag, i), sumLUT, fan...))
		// Carry needed unless this is the last position and it can be
		// appended as MSB; compute it always, drop if provably zero.
		if len(fan) >= 2 {
			carryLUT := fpga.FuncLUT6(len(fan), func(in []bool) bool {
				c := 0
				for _, v := range in {
					if v {
						c++
					}
				}
				return c >= 2
			})
			carry = n.AddLUT(fmt.Sprintf("%s_c%d", tag, i), carryLUT, fan...)
			hasCarry = true
		} else {
			hasCarry = false
		}
	}
	if hasCarry {
		out = append(out, carry)
	}
	return out
}

func parity(in []bool) bool {
	p := false
	for _, v := range in {
		p = p != v
	}
	return p
}

// addPopcount builds a popcount over the given wires: 6:3 compressors then
// a balanced adder tree. Returns the count as a number.
func addPopcount(n *Netlist, tag string, bits []NodeID) number {
	if len(bits) == 0 {
		panic("netlist: popcount of zero bits")
	}
	var nums []number
	for off, g := 0, 0; off < len(bits); off, g = off+6, g+1 {
		end := off + 6
		if end > len(bits) {
			end = len(bits)
		}
		nums = append(nums, addCompressor(n, fmt.Sprintf("%s_g%d", tag, g), bits[off:end]))
	}
	for level := 0; len(nums) > 1; level++ {
		var next []number
		for i := 0; i < len(nums); i += 2 {
			if i+1 < len(nums) {
				next = append(next, addRipple(n, fmt.Sprintf("%s_a%d_%d", tag, level, i/2), nums[i], nums[i+1]))
			} else {
				next = append(next, nums[i])
			}
		}
		nums = next
	}
	return nums[0]
}

// addGEConst builds a ≥-constant comparator over a number using one LUT
// per bit (MSB-first ripple of the "greater-or-equal so far" flag).
func addGEConst(n *Netlist, tag string, v number, c uint64) NodeID {
	if c >= 1<<uint(len(v)) {
		// Constant exceeds the representable range: constant false.
		lut := fpga.FuncLUT6(1, func([]bool) bool { return false })
		return n.AddLUT(tag+"_false", lut, v[0])
	}
	// Walk MSB → LSB maintaining flag = "prefix of x ≥ prefix of c, with
	// equality still possible encoded separately". Two states need two
	// wires; fold them by tracking gt and eq flags — or simpler: flag_i =
	// 1 if suffix comparison so far guarantees x ≥ c given equal prefix.
	// Standard trick: process LSB → MSB computing ge_i = (x_i > c_i) ∨
	// (x_i == c_i ∧ ge_{i-1}), with ge before any bits = true.
	var ge NodeID
	first := true
	for i := 0; i < len(v); i++ {
		cbit := c>>uint(i)&1 == 1
		if first {
			lut := fpga.FuncLUT6(1, func(in []bool) bool {
				return in[0] || !cbit
			})
			ge = n.AddLUT(fmt.Sprintf("%s_ge%d", tag, i), lut, v[i])
			first = false
			continue
		}
		lut := fpga.FuncLUT6(2, func(in []bool) bool {
			x, prev := in[0], in[1]
			if x != cbit {
				return x // x=1,c=0 → greater; x=0,c=1 → less
			}
			return prev
		})
		ge = n.AddLUT(fmt.Sprintf("%s_ge%d", tag, i), lut, v[i], ge)
	}
	return ge
}

// BuildBipolarExact synthesizes the exact Fig. 7a alternative: popcount of
// all d_iv partial-product bits compared against the majority threshold.
// Output bit = 1 ⇔ Σ(±1) > 0 (ties, for even d_iv, resolve to tieUp).
func BuildBipolarExact(div int, tieUp bool) *Netlist {
	n := New(fmt.Sprintf("bipolar_exact_%d", div))
	ins := n.AddInputs("x", div)
	count := addPopcount(n, "pc", ins)
	// Σ(±1) > 0 ⇔ popcount > div/2 ⇔ popcount ≥ floor(div/2)+1; with
	// tieUp and even div, ≥ div/2.
	threshold := uint64(div/2 + 1)
	if tieUp && div%2 == 0 {
		threshold = uint64(div / 2)
	}
	n.MarkOutput(addGEConst(n, "cmp", count, threshold))
	return n
}

// BuildBipolarApprox synthesizes the paper's approximate circuit: 6-input
// majority LUTs over disjoint groups in the first stage, then an exact
// popcount-and-compare over the group-majority bits. Tie policies are
// drawn from src at synthesis time, mirroring fpga.NewBipolarCircuit.
func BuildBipolarApprox(div int, src *hrand.Source) (*Netlist, *fpga.BipolarCircuit) {
	behavioral := fpga.NewBipolarCircuit(div, src)
	n := New(fmt.Sprintf("bipolar_approx_%d", div))
	ins := n.AddInputs("x", div)
	// Rebuild the same structure the behavioral model chose by re-deriving
	// group widths; tie policies are private to the LUT truth tables, so
	// regenerate them from a sibling source — instead, reuse the
	// behavioral circuit's own LUTs via its exported evaluation: the
	// netlist must match it bit-for-bit, so we synthesize from the same
	// group geometry and copy the behavioral outputs through FuncLUT6.
	var groupOuts []NodeID
	off := 0
	for g := 0; off < div; g++ {
		w := div - off
		if w > 6 {
			w = 6
		}
		gIdx := g
		lut := fpga.FuncLUT6(w, func(in []bool) bool {
			return behavioral.GroupEval(gIdx, in)
		})
		groupOuts = append(groupOuts, n.AddLUT(fmt.Sprintf("maj%d", g), lut, ins[off:off+w]...))
		off += w
	}
	count := addPopcount(n, "pc", groupOuts)
	m := len(groupOuts)
	threshold := uint64(m/2 + 1)
	if behavioral.FinalTieUp() && m%2 == 0 {
		threshold = uint64(m / 2)
	}
	n.MarkOutput(addGEConst(n, "cmp", count, threshold))
	return n, behavioral
}
