// Package netlist provides a small structural netlist of LUT-6 primitives:
// the gate-level counterpart of the behavioral circuit models in the fpga
// package. Circuits are built bottom-up (inputs, then LUTs in topological
// order), evaluated by forward propagation, and counted — giving measured
// LUT budgets to compare against the paper's Eq. 15 estimates, and a
// structural artifact the hdl package can emit as Verilog.
package netlist

import (
	"fmt"

	"privehd/internal/fpga"
)

// NodeID references a primary input (0 ≤ id < NumInputs) or a LUT node
// (NumInputs ≤ id).
type NodeID int

type lutNode struct {
	name  string
	lut   fpga.LUT6
	fanin []NodeID
}

// Netlist is a combinational LUT-6 circuit. The zero value is unusable;
// create one with New.
type Netlist struct {
	name       string
	inputNames []string
	nodes      []lutNode
	outputs    []NodeID
}

// New returns an empty netlist with the given module name.
func New(name string) *Netlist {
	return &Netlist{name: name}
}

// Name returns the module name.
func (n *Netlist) Name() string { return n.name }

// AddInput declares one primary input and returns its NodeID. Inputs must
// be declared before any LUT that uses them.
func (n *Netlist) AddInput(name string) NodeID {
	if len(n.nodes) > 0 {
		panic("netlist: inputs must be declared before LUTs")
	}
	n.inputNames = append(n.inputNames, name)
	return NodeID(len(n.inputNames) - 1)
}

// AddInputs declares `count` inputs named prefix0..prefixN and returns
// their IDs.
func (n *Netlist) AddInputs(prefix string, count int) []NodeID {
	ids := make([]NodeID, count)
	for i := range ids {
		ids[i] = n.AddInput(fmt.Sprintf("%s%d", prefix, i))
	}
	return ids
}

// AddLUT appends a LUT node fed by the given fanin IDs (≤ 6, all of which
// must already exist) and returns its NodeID.
func (n *Netlist) AddLUT(name string, lut fpga.LUT6, fanin ...NodeID) NodeID {
	if len(fanin) > 6 {
		panic(fmt.Sprintf("netlist: node %s has %d fanins", name, len(fanin)))
	}
	next := NodeID(len(n.inputNames) + len(n.nodes))
	for _, f := range fanin {
		if f < 0 || f >= next {
			panic(fmt.Sprintf("netlist: node %s references undefined node %d", name, f))
		}
	}
	n.nodes = append(n.nodes, lutNode{name: name, lut: lut, fanin: append([]NodeID(nil), fanin...)})
	return next
}

// MarkOutput appends id to the circuit's output list.
func (n *Netlist) MarkOutput(id NodeID) {
	if id < 0 || int(id) >= len(n.inputNames)+len(n.nodes) {
		panic(fmt.Sprintf("netlist: output references undefined node %d", id))
	}
	n.outputs = append(n.outputs, id)
}

// NumInputs returns the primary input count.
func (n *Netlist) NumInputs() int { return len(n.inputNames) }

// NumLUTs returns the LUT node count — the resource metric of Eq. 15.
func (n *Netlist) NumLUTs() int { return len(n.nodes) }

// NumOutputs returns the output count.
func (n *Netlist) NumOutputs() int { return len(n.outputs) }

// Depth returns the maximum logic depth in LUT levels (inputs are level 0).
func (n *Netlist) Depth() int {
	level := make([]int, len(n.inputNames)+len(n.nodes))
	max := 0
	for i, node := range n.nodes {
		l := 0
		for _, f := range node.fanin {
			if level[f] > l {
				l = level[f]
			}
		}
		l++
		level[len(n.inputNames)+i] = l
		if l > max {
			max = l
		}
	}
	return max
}

// Eval propagates the input values through the circuit and returns the
// output values in MarkOutput order. len(inputs) must equal NumInputs.
func (n *Netlist) Eval(inputs []bool) []bool {
	if len(inputs) != len(n.inputNames) {
		panic(fmt.Sprintf("netlist: Eval got %d inputs, want %d", len(inputs), len(n.inputNames)))
	}
	values := make([]bool, len(n.inputNames)+len(n.nodes))
	copy(values, inputs)
	fan := make([]bool, 6)
	for i, node := range n.nodes {
		fan = fan[:len(node.fanin)]
		for k, f := range node.fanin {
			fan[k] = values[f]
		}
		values[len(n.inputNames)+i] = node.lut.Eval(fan...)
	}
	out := make([]bool, len(n.outputs))
	for i, id := range n.outputs {
		out[i] = values[id]
	}
	return out
}

// Visit walks the netlist in definition order, calling input for each
// primary input, lut for each LUT node, and output for each marked output.
// It is the read-only traversal used by the Verilog emitter.
func (n *Netlist) Visit(
	input func(i int, name string),
	lut func(i int, name string, table uint64, fanin []NodeID),
	output func(i int, id NodeID),
) {
	for i, name := range n.inputNames {
		input(i, name)
	}
	for i, node := range n.nodes {
		lut(i, node.name, node.lut.Table, node.fanin)
	}
	for i, id := range n.outputs {
		output(i, id)
	}
}
