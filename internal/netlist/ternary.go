package netlist

import (
	"fmt"

	"privehd/internal/fpga"
)

// This file synthesizes the Fig. 7b ternary datapath structurally: each
// group of three 2-bit ternary inputs {−1,0,+1} enters three LUT-6s that
// produce an exact 3-bit two's-complement sum in [−3,+3]; the remaining
// stages are truncating ("saturated") adders that keep 3-bit width by
// dropping the LSB of each 4-bit intermediate sum. The output is the 3-bit
// value whose reconstruction (<< stages) fpga.TruncatedTreeSum models
// behaviorally.
//
// Ternary input encoding on wires: two bits per value, v = {sign, mag}
// with (0,0) = 0, (0,1) = +1, (1,1) = −1 ((1,0) is unused and reads as 0).

// signedNumber is a little-endian two's-complement vector of wire IDs.
type signedNumber []NodeID

// ternDecode converts a (sign, mag) wire pair at truth-table level.
func ternDecode(sign, mag bool) int {
	if !mag {
		return 0
	}
	if sign {
		return -1
	}
	return 1
}

// addTernaryCompressor sums up to three ternary inputs (each two wires)
// into an exact 3-bit two's-complement number: one LUT per output bit, fed
// by all six input wires.
func addTernaryCompressor(n *Netlist, tag string, pairs [][2]NodeID) signedNumber {
	if len(pairs) == 0 || len(pairs) > 3 {
		panic(fmt.Sprintf("netlist: ternary compressor over %d values", len(pairs)))
	}
	var fan []NodeID
	for _, p := range pairs {
		fan = append(fan, p[0], p[1]) // sign, mag
	}
	out := make(signedNumber, 3)
	for b := 0; b < 3; b++ {
		bit := b
		lut := fpga.FuncLUT6(len(fan), func(in []bool) bool {
			sum := 0
			for k := 0; k+1 < len(in); k += 2 {
				sum += ternDecode(in[k], in[k+1])
			}
			return (sum>>uint(bit))&1 == 1 // two's complement bit pattern
		})
		out[b] = n.AddLUT(fmt.Sprintf("%s_b%d", tag, b), lut, fan...)
	}
	return out
}

// addTruncatingAdder adds two 3-bit two's-complement values and drops the
// LSB: out = (a + b) >> 1, still 3 bits. Each output bit costs one LUT over
// the six input wires.
func addTruncatingAdder(n *Netlist, tag string, a, b signedNumber) signedNumber {
	if len(a) != 3 || len(b) != 3 {
		panic("netlist: truncating adder needs 3-bit inputs")
	}
	fan := []NodeID{a[0], a[1], a[2], b[0], b[1], b[2]}
	out := make(signedNumber, 3)
	for bitIdx := 0; bitIdx < 3; bitIdx++ {
		bit := bitIdx
		lut := fpga.FuncLUT6(6, func(in []bool) bool {
			av := signedFromBits(in[0], in[1], in[2])
			bv := signedFromBits(in[3], in[4], in[5])
			s := (av + bv) >> 1 // arithmetic shift, like the hardware
			return (s>>uint(bit))&1 == 1
		})
		out[bitIdx] = n.AddLUT(fmt.Sprintf("%s_b%d", tag, bitIdx), lut, fan...)
	}
	return out
}

// addTruncatingPass rescales an odd leftover value by one stage:
// out = a >> 1.
func addTruncatingPass(n *Netlist, tag string, a signedNumber) signedNumber {
	fan := []NodeID{a[0], a[1], a[2]}
	out := make(signedNumber, 3)
	for bitIdx := 0; bitIdx < 3; bitIdx++ {
		bit := bitIdx
		lut := fpga.FuncLUT6(3, func(in []bool) bool {
			v := signedFromBits(in[0], in[1], in[2]) >> 1
			return (v>>uint(bit))&1 == 1
		})
		out[bitIdx] = n.AddLUT(fmt.Sprintf("%s_b%d", tag, bitIdx), lut, fan...)
	}
	return out
}

// signedFromBits decodes a 3-bit two's-complement value.
func signedFromBits(b0, b1, b2 bool) int {
	v := 0
	if b0 {
		v |= 1
	}
	if b1 {
		v |= 2
	}
	if b2 {
		v -= 4
	}
	return v
}

// TernaryTree is a synthesized Fig. 7b reduction with its evaluation
// metadata.
type TernaryTree struct {
	Netlist *Netlist
	// Inputs is the ternary value count.
	Inputs int
	// Stages is the number of truncating stages; the 3-bit output
	// represents (approximate sum) >> Stages.
	Stages int
}

// BuildTernaryTree synthesizes the saturated adder tree over n ternary
// values. The netlist has 2n inputs (sign/mag pairs, interleaved) and three
// outputs (the 3-bit two's-complement result, LSB first).
func BuildTernaryTree(n int) *TernaryTree {
	if n < 1 {
		panic("netlist: ternary tree needs at least one input")
	}
	nl := New(fmt.Sprintf("ternary_tree_%d", n))
	pairs := make([][2]NodeID, n)
	for i := range pairs {
		pairs[i][0] = nl.AddInput(fmt.Sprintf("s%d", i))
		pairs[i][1] = nl.AddInput(fmt.Sprintf("m%d", i))
	}
	var nums []signedNumber
	for off, g := 0, 0; off < n; off, g = off+3, g+1 {
		end := off + 3
		if end > n {
			end = n
		}
		nums = append(nums, addTernaryCompressor(nl, fmt.Sprintf("c%d", g), pairs[off:end]))
	}
	stages := 0
	for len(nums) > 1 {
		var next []signedNumber
		for i := 0; i < len(nums); i += 2 {
			if i+1 < len(nums) {
				next = append(next, addTruncatingAdder(nl, fmt.Sprintf("a%d_%d", stages, i/2), nums[i], nums[i+1]))
			} else {
				next = append(next, addTruncatingPass(nl, fmt.Sprintf("p%d_%d", stages, i/2), nums[i]))
			}
		}
		nums = next
		stages++
	}
	for _, id := range nums[0] {
		nl.MarkOutput(id)
	}
	return &TernaryTree{Netlist: nl, Inputs: n, Stages: stages}
}

// Eval runs the circuit on the given ternary values and returns the
// reconstructed approximate sum (output << Stages). It panics on
// non-ternary input.
func (t *TernaryTree) Eval(vals []int) int {
	if len(vals) != t.Inputs {
		panic(fmt.Sprintf("netlist: ternary tree got %d values, want %d", len(vals), t.Inputs))
	}
	in := make([]bool, 2*t.Inputs)
	for i, v := range vals {
		switch v {
		case 0:
		case 1:
			in[2*i+1] = true
		case -1:
			in[2*i] = true
			in[2*i+1] = true
		default:
			panic(fmt.Sprintf("netlist: non-ternary value %d", v))
		}
	}
	out := t.Netlist.Eval(in)
	return signedFromBits(out[0], out[1], out[2]) << uint(t.Stages)
}
