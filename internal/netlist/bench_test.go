package netlist

import (
	"testing"

	"privehd/internal/hrand"
)

func BenchmarkBuildBipolarApprox617(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = BuildBipolarApprox(617, hrand.New(1))
	}
}

func BenchmarkEvalBipolarApprox617(b *testing.B) {
	nl, _ := BuildBipolarApprox(617, hrand.New(1))
	src := hrand.New(2)
	in := make([]bool, 617)
	for i := range in {
		in[i] = src.IntN(2) == 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nl.Eval(in)
	}
}

func BenchmarkEvalTernaryTree600(b *testing.B) {
	tree := BuildTernaryTree(600)
	vals := randTernary(hrand.New(3), 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tree.Eval(vals)
	}
}
