package netlist

import (
	"testing"
	"testing/quick"

	"privehd/internal/fpga"
	"privehd/internal/hrand"
)

func TestBasicConstruction(t *testing.T) {
	n := New("and2")
	a := n.AddInput("a")
	b := n.AddInput("b")
	and := fpga.FuncLUT6(2, func(in []bool) bool { return in[0] && in[1] })
	y := n.AddLUT("y", and, a, b)
	n.MarkOutput(y)
	if n.NumInputs() != 2 || n.NumLUTs() != 1 || n.NumOutputs() != 1 {
		t.Fatalf("counts = (%d, %d, %d)", n.NumInputs(), n.NumLUTs(), n.NumOutputs())
	}
	if n.Depth() != 1 {
		t.Errorf("Depth = %d, want 1", n.Depth())
	}
	tests := []struct {
		in   []bool
		want bool
	}{
		{[]bool{false, false}, false},
		{[]bool{true, false}, false},
		{[]bool{true, true}, true},
	}
	for _, tt := range tests {
		if got := n.Eval(tt.in)[0]; got != tt.want {
			t.Errorf("and(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestConstructionPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"input after LUT": func() {
			n := New("x")
			a := n.AddInput("a")
			n.AddLUT("l", fpga.LUT6{}, a)
			n.AddInput("b")
		},
		"forward reference": func() {
			n := New("x")
			a := n.AddInput("a")
			n.AddLUT("l", fpga.LUT6{}, a+5)
		},
		"too many fanins": func() {
			n := New("x")
			ins := n.AddInputs("a", 7)
			n.AddLUT("l", fpga.LUT6{}, ins...)
		},
		"bad output": func() {
			n := New("x")
			n.AddInput("a")
			n.MarkOutput(9)
		},
		"bad eval width": func() {
			n := New("x")
			n.AddInput("a")
			n.Eval([]bool{true, false})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDepthChain(t *testing.T) {
	n := New("chain")
	a := n.AddInput("a")
	buf := fpga.FuncLUT6(1, func(in []bool) bool { return in[0] })
	id := a
	for i := 0; i < 5; i++ {
		id = n.AddLUT("b", buf, id)
	}
	n.MarkOutput(id)
	if n.Depth() != 5 {
		t.Errorf("Depth = %d, want 5", n.Depth())
	}
}

func popcountRef(bits []bool) int {
	c := 0
	for _, b := range bits {
		if b {
			c++
		}
	}
	return c
}

func TestPopcountTree(t *testing.T) {
	// Exercise the internal popcount via BuildBipolarExact across widths,
	// including non-multiples of 6 and tiny sizes.
	for _, div := range []int{1, 2, 3, 5, 6, 7, 11, 12, 13, 36, 37, 61} {
		nl := BuildBipolarExact(div, true)
		src := hrand.New(uint64(div))
		for trial := 0; trial < 50; trial++ {
			in := make([]bool, div)
			for i := range in {
				in[i] = src.IntN(2) == 1
			}
			got := nl.Eval(in)[0]
			want := fpga.ExactMajority(in, true)
			if got != want {
				t.Fatalf("div=%d: netlist %v, behavioral %v (input %v)", div, got, want, in)
			}
		}
	}
}

func TestBipolarExactTieDown(t *testing.T) {
	nl := BuildBipolarExact(4, false)
	tie := []bool{true, true, false, false}
	if nl.Eval(tie)[0] != false {
		t.Error("tieDown circuit should output 0 on a tie")
	}
	nlUp := BuildBipolarExact(4, true)
	if nlUp.Eval(tie)[0] != true {
		t.Error("tieUp circuit should output 1 on a tie")
	}
}

func TestBipolarApproxMatchesBehavioral(t *testing.T) {
	// The structural circuit must agree with the fpga behavioral model on
	// every tested input — they are the same design at two abstraction
	// levels.
	for _, div := range []int{6, 13, 60, 100} {
		nl, behavioral := BuildBipolarApprox(div, hrand.New(uint64(div)*7))
		src := hrand.New(uint64(div) * 13)
		for trial := 0; trial < 100; trial++ {
			in := make([]bool, div)
			for i := range in {
				in[i] = src.IntN(2) == 1
			}
			got := nl.Eval(in)[0]
			want := behavioral.Eval(in)
			if got != want {
				t.Fatalf("div=%d trial=%d: netlist %v, behavioral %v", div, trial, got, want)
			}
		}
	}
}

func TestBipolarApproxEquivalenceProperty(t *testing.T) {
	nl, behavioral := BuildBipolarApprox(63, hrand.New(99))
	f := func(seed uint64) bool {
		src := hrand.New(seed)
		in := make([]bool, 63)
		for i := range in {
			in[i] = src.IntN(2) == 1
		}
		return nl.Eval(in)[0] == behavioral.Eval(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLUTCountsVsEq15(t *testing.T) {
	// The measured structural LUT counts must land in the same band as the
	// paper's analytic estimates: the approximate circuit well below the
	// exact one, with the ratio near the claimed 70.8% saving.
	for _, div := range []int{120, 360, 617} {
		exact := BuildBipolarExact(div, true).NumLUTs()
		approx, _ := BuildBipolarApprox(div, hrand.New(uint64(div)))
		saving := 1 - float64(approx.NumLUTs())/float64(exact)
		if saving < 0.55 || saving > 0.85 {
			t.Errorf("div=%d: measured saving %.3f (approx %d, exact %d LUTs), want ≈0.71",
				div, saving, approx.NumLUTs(), exact)
		}
		// Both counts should be within 2× of the Eq. 15 models.
		eApprox := fpga.BipolarApproxLUTs(div)
		eExact := fpga.BipolarExactLUTs(div)
		if r := float64(approx.NumLUTs()) / eApprox; r < 0.5 || r > 2 {
			t.Errorf("div=%d: approx measured %d vs Eq.15 %.0f", div, approx.NumLUTs(), eApprox)
		}
		if r := float64(exact) / eExact; r < 0.5 || r > 2 {
			t.Errorf("div=%d: exact measured %d vs model %.0f", div, exact, eExact)
		}
	}
}

func TestApproxShallowerThanExact(t *testing.T) {
	// The majority first stage compresses 6× before counting, so the
	// approximate circuit is also shallower — the latency side of Fig. 7a.
	exact := BuildBipolarExact(360, true)
	approx, _ := BuildBipolarApprox(360, hrand.New(1))
	if approx.Depth() >= exact.Depth() {
		t.Errorf("approx depth %d should be below exact depth %d", approx.Depth(), exact.Depth())
	}
}

func TestVisitOrder(t *testing.T) {
	n := New("v")
	a := n.AddInput("a")
	b := n.AddInput("b")
	xor := fpga.FuncLUT6(2, func(in []bool) bool { return in[0] != in[1] })
	y := n.AddLUT("y", xor, a, b)
	n.MarkOutput(y)
	var inputs, luts, outputs int
	n.Visit(
		func(i int, name string) { inputs++ },
		func(i int, name string, table uint64, fanin []NodeID) {
			luts++
			if len(fanin) != 2 {
				t.Errorf("fanin = %v", fanin)
			}
		},
		func(i int, id NodeID) {
			outputs++
			if id != y {
				t.Errorf("output id = %d, want %d", id, y)
			}
		},
	)
	if inputs != 2 || luts != 1 || outputs != 1 {
		t.Errorf("visit counts = (%d, %d, %d)", inputs, luts, outputs)
	}
}
