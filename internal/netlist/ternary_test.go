package netlist

import (
	"testing"
	"testing/quick"

	"privehd/internal/fpga"
	"privehd/internal/hrand"
)

func randTernary(src *hrand.Source, n int) []int {
	vals := make([]int, n)
	for i := range vals {
		vals[i] = src.IntN(3) - 1
	}
	return vals
}

func TestTernaryTreeSmallExact(t *testing.T) {
	// ≤3 inputs: single compressor, no truncation — exact.
	for _, vals := range [][]int{{1}, {-1}, {0}, {1, 1}, {1, -1, 1}, {-1, -1, -1}} {
		tree := BuildTernaryTree(len(vals))
		want := fpga.ExactSum(vals)
		if got := tree.Eval(vals); got != want {
			t.Errorf("Eval(%v) = %d, want %d", vals, got, want)
		}
		if tree.Stages != 0 {
			t.Errorf("stages = %d, want 0", tree.Stages)
		}
	}
}

func TestTernaryTreeMatchesBehavioral(t *testing.T) {
	// The structural circuit must agree bit-for-bit with
	// fpga.TruncatedTreeSum — same design, two abstraction levels.
	for _, n := range []int{4, 7, 9, 10, 24, 33, 60} {
		tree := BuildTernaryTree(n)
		src := hrand.New(uint64(n) * 31)
		for trial := 0; trial < 50; trial++ {
			vals := randTernary(src, n)
			want, stages := fpga.TruncatedTreeSum(vals)
			if got := tree.Eval(vals); got != want {
				t.Fatalf("n=%d: netlist %d, behavioral %d (vals %v)", n, got, want, vals)
			}
			if stages != tree.Stages {
				t.Fatalf("n=%d: stage count mismatch %d vs %d", n, tree.Stages, stages)
			}
		}
	}
}

func TestTernaryTreeEquivalenceProperty(t *testing.T) {
	tree := BuildTernaryTree(45)
	f := func(seed uint64) bool {
		vals := randTernary(hrand.New(seed), 45)
		want, _ := fpga.TruncatedTreeSum(vals)
		return tree.Eval(vals) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTernaryTreeErrorWithinBound(t *testing.T) {
	const n = 90
	tree := BuildTernaryTree(n)
	bound := fpga.TruncatedTreeError(n)
	src := hrand.New(77)
	for trial := 0; trial < 100; trial++ {
		vals := randTernary(src, n)
		got := tree.Eval(vals)
		exact := fpga.ExactSum(vals)
		if d := got - exact; d > bound || d < -bound {
			t.Fatalf("error %d exceeds bound %d", d, bound)
		}
	}
}

func TestTernaryTreeLUTBudget(t *testing.T) {
	// §III-D: the saturated tree uses ≈2·d_iv LUTs. The synthesized count
	// must land near the model (each compressor: 3 LUTs per 3 inputs = 1
	// LUT/input; each truncating adder: 3 LUTs per pair of numbers).
	for _, n := range []int{60, 120, 360} {
		tree := BuildTernaryTree(n)
		model := fpga.TernaryApproxLUTs(n)
		ratio := float64(tree.Netlist.NumLUTs()) / model
		if ratio < 0.5 || ratio > 1.5 {
			t.Errorf("n=%d: synthesized %d LUTs vs model %.0f (ratio %.2f)",
				n, tree.Netlist.NumLUTs(), model, ratio)
		}
	}
}

func TestTernaryTreeEvalPanics(t *testing.T) {
	tree := BuildTernaryTree(3)
	for _, bad := range [][]int{{1, 1}, {2, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Eval(%v) should panic", bad)
				}
			}()
			tree.Eval(bad)
		}()
	}
}

func TestBuildTernaryTreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero inputs")
		}
	}()
	BuildTernaryTree(0)
}
