package trace

import (
	"testing"
	"time"
)

// BenchmarkTraceDisabled is the bench-gate guard for the unsampled span
// path: the exact sequence the offload client runs per request when
// tracing is off. Must stay 0 allocs/op and a few nanoseconds.
func BenchmarkTraceDisabled(b *testing.B) {
	SetSampling(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if id := Sampled(); id != 0 {
			b.Fatal("sampled with rate 0")
		}
		var sp *Span
		sp.Add(StageScore, time.Millisecond)
		sp.Free()
	}
}

// BenchmarkTraceSampled prices the fully-traced path: span from pool,
// stage records, breakdown snapshot, recorder offer (fast-rejected once
// the floor is warm).
func BenchmarkTraceSampled(b *testing.B) {
	SetSampling(1)
	defer SetSampling(0)
	r := NewRecorder(8, 8)
	// Warm the floor so the steady-state path is the fast reject.
	for i := 0; i < 16; i++ {
		r.Record(Entry{TraceID: uint64(i + 1), TotalNs: int64(time.Hour), Outcome: "ok"})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := Start()
		sp.Add(StageQueueWait, time.Microsecond)
		sp.Add(StageScore, time.Microsecond)
		e := Entry{TraceID: sp.ID(), TotalNs: 2000, Outcome: "ok", Local: sp.Breakdown()}
		r.Record(e)
		sp.Free()
	}
}
