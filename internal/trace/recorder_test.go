package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func entry(id uint64, total int64, outcome string) Entry {
	return Entry{
		TraceID: id,
		Time:    time.Now(),
		Side:    "server",
		Model:   "m",
		Op:      "classify",
		Peer:    "127.0.0.1:1",
		Outcome: outcome,
		TotalNs: total,
	}
}

func TestRecorderKeepsSlowestN(t *testing.T) {
	r := NewRecorder(4, 4)
	for i := int64(1); i <= 100; i++ {
		r.Record(entry(uint64(i), i*1000, "ok"))
	}
	s := r.Snapshot()
	if s.Records != 100 {
		t.Fatalf("records = %d", s.Records)
	}
	if len(s.Slowest) != 4 {
		t.Fatalf("retained %d slowest, want 4", len(s.Slowest))
	}
	// Sorted slowest-first, and exactly the top 4 totals survive.
	want := []int64{100000, 99000, 98000, 97000}
	for i, e := range s.Slowest {
		if e.TotalNs != want[i] {
			t.Fatalf("slowest[%d] = %d, want %d", i, e.TotalNs, want[i])
		}
	}
	if s.Slowest[0].Trace != FormatID(100) {
		t.Fatalf("snapshot trace hex = %q", s.Slowest[0].Trace)
	}
}

func TestRecorderFastRejectAllocFree(t *testing.T) {
	r := NewRecorder(2, 2)
	r.Record(entry(1, 1000, "ok"))
	r.Record(entry(2, 2000, "ok"))
	// Floor is now 1000; anything at or below must take the one-load path.
	if n := testing.AllocsPerRun(1000, func() {
		r.Record(entry(3, 500, "ok"))
	}); n != 0 {
		t.Fatalf("fast-reject path allocates %v/op", n)
	}
}

func TestRecorderErrorRing(t *testing.T) {
	r := NewRecorder(2, 3)
	for i := 1; i <= 5; i++ {
		r.Record(entry(uint64(i), int64(i), fmt.Sprintf("err-%d", i)))
	}
	s := r.Snapshot()
	if len(s.Errors) != 3 {
		t.Fatalf("retained %d errors, want 3", len(s.Errors))
	}
	// Newest first: 5, 4, 3.
	for i, want := range []string{"err-5", "err-4", "err-3"} {
		if s.Errors[i].Outcome != want {
			t.Fatalf("errors[%d] = %q, want %q", i, s.Errors[i].Outcome, want)
		}
	}
	if len(s.Slowest) != 0 {
		t.Fatal("errored entries leaked into the slowest set")
	}
}

func TestRecorderEmptyOutcomeIsOK(t *testing.T) {
	r := NewRecorder(2, 2)
	r.Record(entry(1, 1000, ""))
	s := r.Snapshot()
	if len(s.Slowest) != 1 || len(s.Errors) != 0 {
		t.Fatalf("empty outcome misclassified: %d slow, %d err", len(s.Slowest), len(s.Errors))
	}
}

// TestRecorderConcurrentWriters is the -race test for the lock-free ring:
// many writers hammering Record while readers snapshot. Correctness bar:
// no race, no panic, snapshot invariants hold, and the slowest survivors
// are drawn from the top of the offered distribution.
func TestRecorderConcurrentWriters(t *testing.T) {
	r := NewRecorder(8, 16)
	const writers = 8
	const perWriter = 2000
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})

	// Concurrent snapshot readers.
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				for j := 1; j < len(s.Slowest); j++ {
					if s.Slowest[j].TotalNs > s.Slowest[j-1].TotalNs {
						panic("snapshot not sorted")
					}
				}
			}
		}()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				n := int64(w*perWriter + i + 1)
				if i%100 == 0 {
					r.Record(entry(uint64(n), n, "transport"))
				} else {
					r.Record(entry(uint64(n), n, "ok"))
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	s := r.Snapshot()
	if s.Records != writers*perWriter {
		t.Fatalf("records = %d, want %d", s.Records, writers*perWriter)
	}
	if len(s.Slowest) != 8 || len(s.Errors) != 16 {
		t.Fatalf("retained %d slowest / %d errors", len(s.Slowest), len(s.Errors))
	}
	// CAS races may drop individual admissions, but the retained set must
	// still come from the slow tail, not the bulk of the distribution.
	for _, e := range s.Slowest {
		if e.TotalNs < int64(writers*perWriter)/2 {
			t.Fatalf("slowest set contains fast entry %d", e.TotalNs)
		}
	}
}

func TestRecorderClampsCapacities(t *testing.T) {
	r := NewRecorder(0, -5)
	r.Record(entry(1, 10, "ok"))
	r.Record(entry(2, 20, "boom"))
	s := r.Snapshot()
	if len(s.Slowest) != 1 || len(s.Errors) != 1 {
		t.Fatalf("clamped recorder retained %d/%d", len(s.Slowest), len(s.Errors))
	}
}
