package trace

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Entry is one completed request as retained by the flight recorder: who
// it was (trace ID, model, op, peer), how it ended (outcome), and where
// its latency went (stage breakdowns). Entries are immutable once
// recorded.
type Entry struct {
	// TraceID is the request's 64-bit trace ID; 0 if the request was not
	// sampled (server entries are recorded regardless so the recorder
	// catches slow requests tracing happened to miss).
	TraceID uint64 `json:"-"`
	// Trace is TraceID in the canonical 16-hex-digit form; filled by
	// Snapshot so Record stays allocation-light.
	Trace string `json:"trace,omitempty"`
	// Time is when the request completed.
	Time time.Time `json:"time"`
	// Side is "server" or "client" — which end measured this entry.
	Side string `json:"side"`
	// Model is the model the request addressed.
	Model string `json:"model,omitempty"`
	// Op is the protocol operation (classify, ping, models, ...).
	Op string `json:"op"`
	// Peer is the remote address of the other end.
	Peer string `json:"peer,omitempty"`
	// Outcome is "ok" for success, otherwise the protocol error code or a
	// transport-error description.
	Outcome string `json:"outcome"`
	// Queries is the batch size of a classify request.
	Queries int `json:"queries,omitempty"`
	// TotalNs is the request's total latency as seen by this side: server
	// residency (frame decoded → reply written) for server entries, full
	// round trip (submit → reply decoded) for client entries.
	TotalNs int64 `json:"total_ns"`
	// Local is the stage breakdown measured on this side.
	Local Breakdown `json:"stages"`
	// Server is the breakdown the server reported over the wire; only set
	// on client entries of traced requests.
	Server Breakdown `json:"server_stages"`
	// ServerTotalNs is the server's reported total residency for the
	// request; only set on client entries of traced requests.
	ServerTotalNs int64 `json:"server_total_ns,omitempty"`
}

// ok reports whether the entry completed successfully.
func (e *Entry) ok() bool { return e.Outcome == "" || e.Outcome == "ok" }

// Recorder is a lock-free flight recorder retaining two populations: the
// slowest-N successful requests (by TotalNs) and the most recent N errored
// requests. Record is safe for arbitrary concurrent writers and is
// engineered for the common case — a request faster than everything
// already retained — to be a single atomic load with no allocation.
//
// Slowest-N admission is CAS-based: find the minimum slot, swap it out,
// refresh the cached floor. Under heavy contention a concurrent admission
// can win the CAS and an entry is simply dropped after a few retries —
// acceptable for a diagnostic aid, in exchange for never taking a lock on
// the serving path.
type Recorder struct {
	slow  []atomic.Pointer[Entry]
	floor atomic.Int64 // min TotalNs across slow slots once full; 0 while filling

	errCursor atomic.Uint64
	errs      []atomic.Pointer[Entry]

	records atomic.Uint64 // total entries offered to Record
}

// Default capacities for the process-wide recorders.
const (
	DefaultSlowN = 64
	DefaultErrN  = 64
)

// Default is the process-wide server-side flight recorder: every frame a
// Server answers is offered to it, and the admin API's
// GET /v1/debug/requests reads it.
var Default = NewRecorder(DefaultSlowN, DefaultErrN)

// Client is the process-wide client-side recorder, fed by completed
// sampled spans from Remote/Pool/Cluster traffic.
var Client = NewRecorder(DefaultSlowN, DefaultErrN)

// NewRecorder returns a recorder retaining the slowN slowest and the errN
// most recent errored requests. Capacities are clamped to at least 1.
func NewRecorder(slowN, errN int) *Recorder {
	if slowN < 1 {
		slowN = 1
	}
	if errN < 1 {
		errN = 1
	}
	return &Recorder{
		slow: make([]atomic.Pointer[Entry], slowN),
		errs: make([]atomic.Pointer[Entry], errN),
	}
}

// Record offers a completed request to the recorder. Successful requests
// compete for the slowest-N slots; errored requests always enter the
// error ring. The not-admitted fast path does not allocate.
func (r *Recorder) Record(e Entry) {
	r.records.Add(1)
	if !e.ok() {
		p := new(Entry)
		*p = e
		r.errs[int(r.errCursor.Add(1)-1)%len(r.errs)].Store(p)
		return
	}
	if e.TotalNs <= r.floor.Load() {
		return
	}
	r.admitSlow(&e)
}

// admitSlow tries to install e over the current minimum slot.
func (r *Recorder) admitSlow(e *Entry) {
	const maxRetries = 4
	for try := 0; try < maxRetries; try++ {
		minIdx := -1
		minNs := int64(math.MaxInt64)
		var minPtr *Entry
		for i := range r.slow {
			p := r.slow[i].Load()
			if p == nil {
				minIdx, minNs, minPtr = i, 0, nil
				break
			}
			if p.TotalNs < minNs {
				minIdx, minNs, minPtr = i, p.TotalNs, p
			}
		}
		if e.TotalNs <= minNs {
			return // no longer qualifies
		}
		p := new(Entry)
		*p = *e
		if r.slow[minIdx].CompareAndSwap(minPtr, p) {
			r.refreshFloor()
			return
		}
	}
}

// refreshFloor recomputes the admission floor. While any slot is still
// empty the floor stays 0 so everything is admitted.
func (r *Recorder) refreshFloor() {
	minNs := int64(math.MaxInt64)
	for i := range r.slow {
		p := r.slow[i].Load()
		if p == nil {
			return
		}
		if p.TotalNs < minNs {
			minNs = p.TotalNs
		}
	}
	r.floor.Store(minNs)
}

// Snapshot is a point-in-time view of the recorder, shaped for the admin
// API's JSON response.
type Snapshot struct {
	// Records is the total number of requests offered to the recorder.
	Records uint64 `json:"records"`
	// Slowest holds the retained slowest requests, slowest first.
	Slowest []Entry `json:"slowest"`
	// Errors holds the retained errored requests, newest first.
	Errors []Entry `json:"errors"`
}

// Snapshot collects the recorder's current contents. Entries are copies
// with the Trace hex form filled in; mutating them does not affect the
// recorder.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Records: r.records.Load(),
		Slowest: make([]Entry, 0, len(r.slow)),
		Errors:  make([]Entry, 0, len(r.errs)),
	}
	for i := range r.slow {
		if p := r.slow[i].Load(); p != nil {
			s.Slowest = append(s.Slowest, *p)
		}
	}
	sort.Slice(s.Slowest, func(i, j int) bool { return s.Slowest[i].TotalNs > s.Slowest[j].TotalNs })
	cur := int(r.errCursor.Load())
	for k := 0; k < len(r.errs); k++ {
		i := cur - 1 - k
		if i < 0 {
			break
		}
		if p := r.errs[i%len(r.errs)].Load(); p != nil {
			s.Errors = append(s.Errors, *p)
		}
	}
	for i := range s.Slowest {
		if s.Slowest[i].TraceID != 0 {
			s.Slowest[i].Trace = FormatID(s.Slowest[i].TraceID)
		}
	}
	for i := range s.Errors {
		if s.Errors[i].TraceID != 0 {
			s.Errors[i].Trace = FormatID(s.Errors[i].TraceID)
		}
	}
	return s
}
