package trace

import (
	"testing"
	"time"
)

func TestSamplingRateRoundTrip(t *testing.T) {
	defer SetSampling(0)
	for _, rate := range []float64{0, 0.25, 0.5, 1} {
		SetSampling(rate)
		if got := Sampling(); got < rate-1e-9 || got > rate+1e-9 {
			t.Fatalf("Sampling() = %v after SetSampling(%v)", got, rate)
		}
	}
	SetSampling(-3)
	if Sampling() != 0 {
		t.Fatalf("negative rate should clamp to 0, got %v", Sampling())
	}
	SetSampling(7)
	if Sampling() != 1 {
		t.Fatalf("rate > 1 should clamp to 1, got %v", Sampling())
	}
}

func TestSampledRespectsRate(t *testing.T) {
	defer SetSampling(0)

	SetSampling(0)
	for i := 0; i < 1000; i++ {
		if Sampled() != 0 {
			t.Fatal("Sampled() fired with sampling off")
		}
	}

	SetSampling(1)
	for i := 0; i < 1000; i++ {
		if Sampled() == 0 {
			t.Fatal("Sampled() returned 0 with sampling at 1")
		}
	}

	// A mid-range rate should land near its expectation over many draws.
	SetSampling(0.5)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if Sampled() != 0 {
			hits++
		}
	}
	if hits < n*4/10 || hits > n*6/10 {
		t.Fatalf("rate 0.5 sampled %d/%d draws", hits, n)
	}
}

func TestNextIDUniqueAndNonzero(t *testing.T) {
	seen := make(map[uint64]bool, 100000)
	for i := 0; i < 100000; i++ {
		id := NextID()
		if id == 0 {
			t.Fatal("NextID returned 0")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %x after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestFormatID(t *testing.T) {
	cases := map[uint64]string{
		0:                  "0000000000000000",
		1:                  "0000000000000001",
		0xdeadbeef:         "00000000deadbeef",
		0xffffffffffffffff: "ffffffffffffffff",
	}
	for id, want := range cases {
		if got := FormatID(id); got != want {
			t.Fatalf("FormatID(%#x) = %q, want %q", id, got, want)
		}
	}
}

func TestSpanStages(t *testing.T) {
	s := NewSpan(42)
	defer s.Free()
	if s.ID() != 42 {
		t.Fatalf("ID = %d", s.ID())
	}
	s.Add(StageScore, 5*time.Millisecond)
	s.Add(StageScore, 5*time.Millisecond)
	if got := s.Stage(StageScore); got != 10*time.Millisecond {
		t.Fatalf("score stage = %v", got)
	}
	s.ObserveMax(StageQueueWait, 3*time.Millisecond)
	s.ObserveMax(StageQueueWait, time.Millisecond) // smaller: ignored
	if got := s.Stage(StageQueueWait); got != 3*time.Millisecond {
		t.Fatalf("queue stage = %v", got)
	}
	b := s.Breakdown()
	if b.ScoreNs != int64(10*time.Millisecond) || b.QueueNs != int64(3*time.Millisecond) {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestSpanReusedFromPoolIsZeroed(t *testing.T) {
	s := NewSpan(7)
	s.Add(StageScore, time.Hour)
	s.Free()
	s2 := NewSpan(9)
	defer s2.Free()
	if s2.Stage(StageScore) != 0 {
		t.Fatal("pooled span kept stale stage data")
	}
	if s2.ID() != 9 {
		t.Fatalf("pooled span ID = %d", s2.ID())
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.Add(StageScore, time.Second)
	s.ObserveSince(StageDecode, time.Now())
	s.ObserveMax(StageQueueWait, time.Second)
	if s.ID() != 0 || s.Stage(StageScore) != 0 {
		t.Fatal("nil span not zero")
	}
	if (s.Breakdown() != Breakdown{}) {
		t.Fatal("nil span breakdown not zero")
	}
	s.Free()
}

// TestUnsampledPathZeroAllocs is the contract the bench gate enforces:
// with sampling off — and even with a rate set but the dice missing — the
// span path must not allocate.
func TestUnsampledPathZeroAllocs(t *testing.T) {
	defer SetSampling(0)

	SetSampling(0)
	if n := testing.AllocsPerRun(1000, func() {
		if sp := Start(); sp != nil {
			sp.Free()
			panic("sampled with rate 0")
		}
	}); n != 0 {
		t.Fatalf("unsampled Start path allocates %v/op", n)
	}

	if n := testing.AllocsPerRun(1000, func() {
		var sp *Span
		sp.Add(StageScore, time.Millisecond)
		sp.ObserveMax(StageQueueWait, time.Millisecond)
		_ = sp.ID()
		sp.Free()
	}); n != 0 {
		t.Fatalf("nil-span method path allocates %v/op", n)
	}

	// Sampled() itself must stay clean with a live (tiny) rate too.
	SetSampling(1e-9)
	if n := testing.AllocsPerRun(1000, func() {
		if Sampled() != 0 {
			return
		}
	}); n != 0 {
		t.Fatalf("Sampled with live rate allocates %v/op", n)
	}
}

func TestObserver(t *testing.T) {
	defer SetObserver(nil)
	var got []Entry
	SetObserver(func(e Entry) { got = append(got, e) })
	RecordClient(Entry{TraceID: 5, Side: "client", Op: "classify", TotalNs: 100, Outcome: "ok"})
	if len(got) != 1 || got[0].TraceID != 5 {
		t.Fatalf("observer saw %+v", got)
	}
	SetObserver(nil)
	RecordClient(Entry{TraceID: 6, Side: "client", Op: "classify", TotalNs: 100, Outcome: "ok"})
	if len(got) != 1 {
		t.Fatal("observer fired after uninstall")
	}
}
