// Package trace is the request-tracing core of the serving stack: random
// 64-bit trace IDs, a process-wide sampling decision, per-request stage
// timers (Span), and a lock-free flight recorder (Recorder) that retains
// the slowest and the errored requests a process has seen.
//
// The design rule mirrors internal/metrics: the serving hot path must not
// pay for the ability to be traced. The unsampled path — Sampled()
// returning 0, every method on a nil *Span — is allocation-free and a
// handful of atomic operations, asserted by AllocsPerRun tests and the
// gated BenchmarkTraceDisabled. Allocation happens only for requests that
// are actually sampled or admitted to the flight recorder, which is by
// construction a small fraction of traffic.
//
// Trace context crosses the wire: the offload protocol carries the trace
// ID on the Request frame and the server's stage breakdown back on the
// Reply, so one ID names the same request in the client span, the server
// flight recorder, the slow-request log line and the histogram exemplar.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// sampleThreshold encodes the sampling rate as a uint64 comparison bound:
// 0 disables sampling entirely, math.MaxUint64 samples everything, and
// anything between samples a uniform 64-bit draw against the bound.
var sampleThreshold atomic.Uint64

// SetSampling sets the process-wide trace sampling rate in [0, 1]. 0 (the
// default) disables tracing: Sampled returns 0 and Start returns nil, at
// zero allocation cost. 1 samples every request.
func SetSampling(rate float64) {
	switch {
	case rate <= 0:
		sampleThreshold.Store(0)
	case rate >= 1:
		sampleThreshold.Store(math.MaxUint64)
	default:
		sampleThreshold.Store(uint64(rate * math.MaxUint64))
	}
}

// Sampling returns the current sampling rate.
func Sampling() float64 {
	switch t := sampleThreshold.Load(); t {
	case 0:
		return 0
	case math.MaxUint64:
		return 1
	default:
		return float64(t) / math.MaxUint64
	}
}

// idState drives the trace-ID generator: an atomic Weyl sequence finalized
// with the splitmix64 mixer, seeded from crypto/rand at startup. Two
// atomic ops and a few multiplies per ID, no locks, no allocation, and IDs
// never repeat within 2^64 draws of one process.
var idState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

// NextID returns a new nonzero 64-bit trace ID.
func NextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15) // golden-ratio Weyl increment
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		return 1
	}
	return x
}

// Sampled rolls the sampling dice: it returns a fresh trace ID if this
// request should be traced, 0 otherwise. The unsampled path is one atomic
// load (plus one ID draw when a rate is set) and never allocates.
func Sampled() uint64 {
	t := sampleThreshold.Load()
	if t == 0 {
		return 0
	}
	if t != math.MaxUint64 && NextID() > t {
		return 0
	}
	return NextID()
}

// FormatID renders a trace ID the way every surface shows it: 16 lowercase
// hex digits. It allocates (one string) and belongs on slow paths only.
func FormatID(id uint64) string {
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// Stage names one timed phase of a request's life. Client and server time
// different subsets: the server times decode, queue-wait, score and
// reply-write; the client times its send-queue wait and attributes the
// remainder of the round trip to the network once the server's reported
// time is subtracted.
type Stage uint8

const (
	// StageQueueWait is time spent waiting to be worked on: the client's
	// send queue, or the server's scoring worker pool.
	StageQueueWait Stage = iota
	// StageDecode is reading and gob-decoding the frame off the wire.
	StageDecode
	// StageEncode is building the outgoing payload (edge query
	// preparation client-side).
	StageEncode
	// StageScore is model scoring (summed across a batch's queries).
	StageScore
	// StageReplyWrite is encoding and writing the reply to the wire.
	StageReplyWrite
	// StageNetwork is the client-side remainder: round trip minus the
	// server's reported residency.
	StageNetwork
	// StageGather is the sharded coordinator's scatter–gather window: the
	// slowest shard's partial-score round trip (recorded with ObserveMax,
	// so stragglers — not the sum of overlapping fan-out — show up here).
	StageGather
	// StageHedge is the window a hedged backup request was in flight on a
	// second replica: from hedge launch until the call resolved. Zero when
	// the primary answered before the hedge delay elapsed.
	StageHedge
	// NumStages is the number of stages a Span times.
	NumStages = int(StageHedge) + 1
)

// String returns the stage's snake_case name, as used in logs and JSON.
func (s Stage) String() string {
	switch s {
	case StageQueueWait:
		return "queue_wait"
	case StageDecode:
		return "decode"
	case StageEncode:
		return "encode"
	case StageScore:
		return "score"
	case StageReplyWrite:
		return "reply_write"
	case StageNetwork:
		return "network"
	case StageGather:
		return "gather"
	case StageHedge:
		return "hedge"
	}
	return "unknown"
}

// Span accumulates per-stage durations for one request. Stage cells are
// atomic so concurrent workers (a batch spread over a scoring pool) may
// record into one span; everything else is single-writer. A nil *Span is
// the unsampled case: every method is nil-safe and free, so call sites
// need no branches.
type Span struct {
	id     uint64
	stages [NumStages]atomic.Int64
}

// spanPool recycles spans so steady-state tracing does not allocate per
// request.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

// NewSpan returns a zeroed span carrying the given trace ID (which may be
// 0: servers time every frame for the flight recorder, traced or not).
func NewSpan(id uint64) *Span {
	s := spanPool.Get().(*Span)
	s.id = id
	for i := range s.stages {
		s.stages[i].Store(0)
	}
	return s
}

// Start rolls the sampling dice and returns a new span on success, nil
// otherwise — the one-liner for client-side call sites.
func Start() *Span {
	if id := Sampled(); id != 0 {
		return NewSpan(id)
	}
	return nil
}

// ID returns the span's trace ID (0 for nil or untraced spans).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Add accumulates d into the stage's timer.
func (s *Span) Add(st Stage, d time.Duration) {
	if s == nil {
		return
	}
	s.stages[st].Add(int64(d))
}

// ObserveSince adds the time elapsed since t0 to the stage's timer.
func (s *Span) ObserveSince(st Stage, t0 time.Time) {
	if s == nil {
		return
	}
	s.stages[st].Add(int64(time.Since(t0)))
}

// ObserveMax raises the stage's timer to d if d is larger — the shape for
// "longest wait" stages like queue-wait across a batch's queries, where a
// sum would overcount overlapping waits.
func (s *Span) ObserveMax(st Stage, d time.Duration) {
	if s == nil {
		return
	}
	for {
		old := s.stages[st].Load()
		if int64(d) <= old || s.stages[st].CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// Stage returns the accumulated duration of one stage.
func (s *Span) Stage(st Stage) time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.stages[st].Load())
}

// Breakdown snapshots the span's stage timers.
func (s *Span) Breakdown() Breakdown {
	if s == nil {
		return Breakdown{}
	}
	return Breakdown{
		QueueNs:   s.stages[StageQueueWait].Load(),
		DecodeNs:  s.stages[StageDecode].Load(),
		EncodeNs:  s.stages[StageEncode].Load(),
		ScoreNs:   s.stages[StageScore].Load(),
		WriteNs:   s.stages[StageReplyWrite].Load(),
		NetworkNs: s.stages[StageNetwork].Load(),
		GatherNs:  s.stages[StageGather].Load(),
		HedgeNs:   s.stages[StageHedge].Load(),
	}
}

// Free returns the span to the pool. The span must not be used afterwards.
// Nil-safe, so unsampled paths need no branch.
func (s *Span) Free() {
	if s == nil {
		return
	}
	s.id = 0
	spanPool.Put(s)
}

// Breakdown is a request's per-stage latency split in nanoseconds. Fields
// a side did not time stay 0 and are omitted from JSON.
type Breakdown struct {
	QueueNs   int64 `json:"queue_ns,omitempty"`
	DecodeNs  int64 `json:"decode_ns,omitempty"`
	EncodeNs  int64 `json:"encode_ns,omitempty"`
	ScoreNs   int64 `json:"score_ns,omitempty"`
	WriteNs   int64 `json:"write_ns,omitempty"`
	NetworkNs int64 `json:"network_ns,omitempty"`
	GatherNs  int64 `json:"gather_ns,omitempty"`
	HedgeNs   int64 `json:"hedge_ns,omitempty"`
}

// observer is an optional per-entry hook (RecordClient fan-out): load
// harnesses register one to see every completed client span without
// polling recorder snapshots.
var observer atomic.Pointer[func(Entry)]

// SetObserver installs fn to be called synchronously with every entry
// recorded through RecordClient; nil uninstalls. fn must be fast and safe
// for concurrent use.
func SetObserver(fn func(Entry)) {
	if fn == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&fn)
}

// RecordClient records a completed client-side span into the Client
// recorder and notifies the observer, if any.
func RecordClient(e Entry) {
	Client.Record(e)
	if fn := observer.Load(); fn != nil {
		(*fn)(e)
	}
}
