// Package hrand centralizes every source of randomness in the Prive-HD
// reproduction. All experiments, datasets, hypervector memories and privacy
// mechanisms draw from a *Source seeded explicitly, so any run is
// reproducible bit-for-bit from its seed.
//
// The generator is the stdlib PCG from math/rand/v2. This is a simulation
// and research codebase: the Gaussian noise used by the differential-privacy
// mechanism is statistically correct but NOT drawn from a cryptographically
// secure generator; a production deployment would swap in crypto/rand-backed
// sampling. That trade-off is deliberate and documented here once.
package hrand

import (
	"math"
	"math/rand/v2"
)

// Source is a deterministic random source. It is not safe for concurrent
// use; derive per-goroutine sources with Split.
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with the given seed. Equal seeds yield equal
// streams.
func New(seed uint64) *Source {
	return &Source{rng: rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))}
}

// Split derives an independent child source from s, keyed by id. Children
// with distinct ids have (statistically) independent streams and do not
// perturb the parent's stream, so adding a consumer never changes the
// sequence seen by existing consumers.
func (s *Source) Split(id uint64) *Source {
	// Mix the id through a splitmix64 round so sequential ids land far
	// apart in PCG seed space.
	z := id + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return &Source{rng: rand.New(rand.NewPCG(s.rng.Uint64(), z))}
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) IntN(n int) int { return s.rng.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.rng.Uint64() }

// Normal returns a sample from N(mu, sigma^2).
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.rng.NormFloat64()
}

// Laplace returns a sample from the Laplace distribution with mean mu and
// scale b (variance 2b²), via inverse-CDF sampling.
func (s *Source) Laplace(mu, b float64) float64 {
	u := s.rng.Float64() - 0.5
	return mu - b*sign(u)*math.Log(1-2*math.Abs(u))
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// Bipolar fills a fresh slice of length n with uniform ±1 values — the
// random base hypervectors of paper Eq. 2.
func (s *Source) Bipolar(n int) []float64 {
	v := make([]float64, n)
	var bits uint64
	for i := range v {
		if i%64 == 0 {
			bits = s.rng.Uint64()
		}
		if bits&1 == 1 {
			v[i] = 1
		} else {
			v[i] = -1
		}
		bits >>= 1
	}
	return v
}

// NormalVec fills a fresh slice of length n with N(mu, sigma²) samples.
func (s *Source) NormalVec(n int, mu, sigma float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = s.Normal(mu, sigma)
	}
	return v
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	return s.rng.Perm(n)
}

// SampleK returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (s *Source) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("hrand: SampleK k out of range")
	}
	// Partial Fisher-Yates over an index slice.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.rng.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// Shuffle permutes the first n entries of the provided swapper in place.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	s.rng.Shuffle(n, swap)
}
