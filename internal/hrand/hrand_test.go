package hrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds must produce equal streams")
		}
	}
	c := New(43)
	d := New(42)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	collide := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			collide++
		}
	}
	if collide > 2 {
		t.Errorf("sibling splits collided %d/100 times", collide)
	}
}

func TestSplitReproducible(t *testing.T) {
	// Splitting the same parent state with the same id gives the same child.
	mk := func() uint64 {
		p := New(99)
		return p.Split(5).Uint64()
	}
	if mk() != mk() {
		t.Error("Split is not reproducible")
	}
}

func TestBipolar(t *testing.T) {
	s := New(1)
	v := s.Bipolar(10000)
	if len(v) != 10000 {
		t.Fatalf("len = %d", len(v))
	}
	var sum float64
	for _, x := range v {
		if x != 1 && x != -1 {
			t.Fatalf("non-bipolar value %v", x)
		}
		sum += x
	}
	// Mean should be near 0: stddev of the sum is 100, so |sum| < 500 is a
	// 5-sigma bound.
	if math.Abs(sum) > 500 {
		t.Errorf("bipolar vector unbalanced: sum = %v", sum)
	}
}

func TestBipolarOrthogonality(t *testing.T) {
	// Two independent bipolar vectors of dimension D have cosine ~ N(0, 1/D):
	// the "randomly chosen hence orthogonal" property of paper Eq. 2.
	s := New(2)
	const d = 10000
	a := s.Bipolar(d)
	b := s.Bipolar(d)
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	cos := dot / d
	if math.Abs(cos) > 5/math.Sqrt(d) {
		t.Errorf("independent bipolar vectors not near-orthogonal: cos = %v", cos)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(3)
	const n = 100000
	mu, sigma := 2.0, 3.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Normal(mu, sigma)
		sum += x
		sumSq += x * x
	}
	m := sum / n
	v := sumSq/n - m*m
	if math.Abs(m-mu) > 0.05 {
		t.Errorf("Normal mean = %v, want ≈%v", m, mu)
	}
	if math.Abs(v-sigma*sigma) > 0.3 {
		t.Errorf("Normal variance = %v, want ≈%v", v, sigma*sigma)
	}
}

func TestLaplaceMoments(t *testing.T) {
	s := New(4)
	const n = 200000
	mu, b := -1.0, 2.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Laplace(mu, b)
		sum += x
		sumSq += x * x
	}
	m := sum / n
	v := sumSq/n - m*m
	if math.Abs(m-mu) > 0.05 {
		t.Errorf("Laplace mean = %v, want ≈%v", m, mu)
	}
	// Var = 2b² = 8.
	if math.Abs(v-8) > 0.5 {
		t.Errorf("Laplace variance = %v, want ≈8", v)
	}
}

func TestNormalVec(t *testing.T) {
	s := New(5)
	v := s.NormalVec(1000, 0, 1)
	if len(v) != 1000 {
		t.Fatalf("len = %d", len(v))
	}
	allZero := true
	for _, x := range v {
		if x != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Error("NormalVec returned all zeros")
	}
	z := s.NormalVec(10, 5, 0)
	for _, x := range z {
		if x != 5 {
			t.Errorf("NormalVec sigma=0 produced %v, want 5", x)
		}
	}
}

func TestPerm(t *testing.T) {
	s := New(6)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, i := range p {
		if i < 0 || i >= 50 || seen[i] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[i] = true
	}
}

func TestSampleK(t *testing.T) {
	s := New(7)
	k := s.SampleK(100, 10)
	if len(k) != 10 {
		t.Fatalf("len = %d, want 10", len(k))
	}
	seen := map[int]bool{}
	for _, i := range k {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatalf("SampleK produced duplicate or out-of-range: %v", k)
		}
		seen[i] = true
	}
	if got := s.SampleK(5, 5); len(got) != 5 {
		t.Errorf("SampleK(5,5) len = %d", len(got))
	}
	if got := s.SampleK(5, 0); len(got) != 0 {
		t.Errorf("SampleK(5,0) len = %d", len(got))
	}
}

func TestSampleKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	New(8).SampleK(3, 4)
}

func TestSampleKUniformCoverage(t *testing.T) {
	// Across many draws every index should be selected at least once.
	s := New(9)
	counts := make([]int, 20)
	for trial := 0; trial < 400; trial++ {
		for _, i := range s.SampleK(20, 5) {
			counts[i]++
		}
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("index %d never sampled", i)
		}
	}
}

func TestShuffle(t *testing.T) {
	s := New(10)
	v := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	seen := make([]bool, 10)
	for _, x := range v {
		seen[x] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Shuffle lost element %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			x := s.Float64()
			if x < 0 || x >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIntNRange(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		if x := s.IntN(7); x < 0 || x >= 7 {
			t.Fatalf("IntN(7) = %d", x)
		}
	}
}
