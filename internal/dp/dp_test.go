package dp

import (
	"math"
	"testing"

	"privehd/internal/hdc"
	"privehd/internal/hrand"
)

func TestSigmaFactorPaperValue(t *testing.T) {
	// §IV-A: δ = 1e−5, ε = 1 → σ ≈ 4.75.
	sigma, err := SigmaFactor(Params{Epsilon: 1, Delta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sigma-4.75) > 0.02 {
		t.Errorf("sigma = %v, want ≈4.75", sigma)
	}
}

func TestSigmaFactorScaling(t *testing.T) {
	// σ ∝ 1/ε at fixed δ.
	s1, err := SigmaFactor(Params{Epsilon: 1, Delta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SigmaFactor(Params{Epsilon: 2, Delta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1/s2-2) > 1e-9 {
		t.Errorf("sigma ratio = %v, want 2", s1/s2)
	}
	// Smaller δ needs larger σ.
	s3, err := SigmaFactor(Params{Epsilon: 1, Delta: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if s3 <= s1 {
		t.Errorf("smaller delta should need more noise: %v vs %v", s3, s1)
	}
}

func TestSigmaEpsilonRoundTrip(t *testing.T) {
	p := Params{Epsilon: 2.5, Delta: 1e-5}
	sigma, err := SigmaFactor(p)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := EpsilonFor(sigma, p.Delta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-p.Epsilon) > 1e-9 {
		t.Errorf("round trip epsilon = %v, want %v", eps, p.Epsilon)
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{Epsilon: 0, Delta: 1e-5},
		{Epsilon: -1, Delta: 1e-5},
		{Epsilon: 1, Delta: 0},
		{Epsilon: 1, Delta: 1},
		{Epsilon: 1, Delta: 2},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should fail validation", p)
		}
		if _, err := SigmaFactor(p); err == nil {
			t.Errorf("SigmaFactor(%+v) should fail", p)
		}
	}
	// δ large enough to break the tail bound (4/(5δ) ≤ 1 ⇔ δ ≥ 0.8).
	if _, err := SigmaFactor(Params{Epsilon: 1, Delta: 0.9}); err == nil {
		t.Error("SigmaFactor should reject delta ≥ 0.8")
	}
	if _, err := EpsilonFor(0, 1e-5); err == nil {
		t.Error("EpsilonFor should reject sigma = 0")
	}
	if _, err := EpsilonFor(1, 0); err == nil {
		t.Error("EpsilonFor should reject delta = 0")
	}
}

func TestGaussianMechanismMoments(t *testing.T) {
	src := hrand.New(1)
	const n = 100000
	v := make([]float64, n)
	p := Params{Epsilon: 1, Delta: 1e-5}
	sens := 2.0
	if err := GaussianMechanism(src, v, sens, p); err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for _, x := range v {
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	sigma, _ := SigmaFactor(p)
	want := sens * sigma
	if math.Abs(mean) > 0.15 {
		t.Errorf("noise mean = %v, want ≈0", mean)
	}
	if math.Abs(std-want)/want > 0.03 {
		t.Errorf("noise std = %v, want ≈%v", std, want)
	}
}

func TestGaussianMechanismErrors(t *testing.T) {
	src := hrand.New(2)
	if err := GaussianMechanism(src, []float64{1}, -1, Params{Epsilon: 1, Delta: 1e-5}); err == nil {
		t.Error("expected error for negative sensitivity")
	}
	if err := GaussianMechanism(src, []float64{1}, 1, Params{}); err == nil {
		t.Error("expected error for zero params")
	}
}

func TestLaplaceMechanismMoments(t *testing.T) {
	src := hrand.New(3)
	const n = 200000
	v := make([]float64, n)
	sens, eps := 3.0, 2.0
	if err := LaplaceMechanism(src, v, sens, eps); err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for _, x := range v {
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	b := sens / eps
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-2*b*b)/(2*b*b) > 0.05 {
		t.Errorf("variance = %v, want ≈%v", variance, 2*b*b)
	}
}

func TestLaplaceMechanismErrors(t *testing.T) {
	src := hrand.New(4)
	if err := LaplaceMechanism(src, []float64{1}, 1, 0); err == nil {
		t.Error("expected error for zero epsilon")
	}
	if err := LaplaceMechanism(src, []float64{1}, -1, 1); err == nil {
		t.Error("expected error for negative sensitivity")
	}
}

func TestPrivatizeModelPerturbsEveryClass(t *testing.T) {
	src := hrand.New(5)
	m := hdc.NewModel(3, 50)
	for l := 0; l < 3; l++ {
		m.Add(l, src.NormalVec(50, 0, 1))
	}
	before := make([][]float64, 3)
	for l := range before {
		before[l] = append([]float64(nil), m.Class(l)...)
	}
	if err := PrivatizeModel(src, m, 1, Params{Epsilon: 1, Delta: 1e-5}); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 3; l++ {
		changed := false
		for j, v := range m.Class(l) {
			if v != before[l][j] {
				changed = true
				break
			}
		}
		if !changed {
			t.Errorf("class %d unchanged by privatizer", l)
		}
	}
}

func TestPrivatizeModelNoiseScale(t *testing.T) {
	// Empirical noise std across a large model must match ∆f·σ.
	src := hrand.New(6)
	const dim = 20000
	m := hdc.NewModel(1, dim)
	m.Add(0, make([]float64, dim)) // zero class: output is pure noise
	p := Params{Epsilon: 2, Delta: 1e-5}
	sens := 5.0
	if err := PrivatizeModel(src, m, sens, p); err != nil {
		t.Fatal(err)
	}
	var sumSq float64
	for _, v := range m.Class(0) {
		sumSq += v * v
	}
	std := math.Sqrt(sumSq / dim)
	want, err := NoiseStd(sens, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(std-want)/want > 0.05 {
		t.Errorf("noise std = %v, want ≈%v", std, want)
	}
}

func TestPrivatizeModelMasked(t *testing.T) {
	src := hrand.New(7)
	const dim = 100
	m := hdc.NewModel(1, dim)
	m.Add(0, make([]float64, dim))
	keep := make([]bool, dim)
	for j := 0; j < dim/2; j++ {
		keep[j] = true
	}
	if err := PrivatizeModelMasked(src, m, keep, 1, Params{Epsilon: 1, Delta: 1e-5}); err != nil {
		t.Fatal(err)
	}
	c := m.Class(0)
	for j := 0; j < dim/2; j++ {
		if c[j] == 0 {
			// Astronomically unlikely for a continuous sample.
			t.Errorf("kept dim %d got no noise", j)
		}
	}
	for j := dim / 2; j < dim; j++ {
		if c[j] != 0 {
			t.Errorf("pruned dim %d got noise: %v", j, c[j])
		}
	}
}

func TestPrivatizeModelMaskedDimCheck(t *testing.T) {
	m := hdc.NewModel(1, 4)
	err := PrivatizeModelMasked(hrand.New(8), m, []bool{true}, 1, Params{Epsilon: 1, Delta: 1e-5})
	if err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestPrivacyAccuracyTradeoff(t *testing.T) {
	// End-to-end sanity: on a separable task, a loose budget (ε=8) must
	// retain much more accuracy than a tight one (ε=0.05) at the same
	// sensitivity — the Fig. 8 phenomenon in miniature.
	build := func() (*hdc.Model, [][]float64, []int) {
		src := hrand.New(9)
		const classes, dim = 4, 2000
		protos := make([][]float64, classes)
		for c := range protos {
			protos[c] = src.NormalVec(dim, 0, 1)
		}
		var encoded [][]float64
		var labels []int
		for i := 0; i < 200; i++ {
			c := i % classes
			h := make([]float64, dim)
			for j := range h {
				h[j] = protos[c][j] + src.Normal(0, 0.8)
			}
			encoded = append(encoded, h)
			labels = append(labels, c)
		}
		m, err := hdc.Train(encoded, labels, classes, dim)
		if err != nil {
			t.Fatal(err)
		}
		return m, encoded, labels
	}
	accAt := func(eps float64) float64 {
		m, encoded, labels := build()
		src := hrand.New(10)
		// Sensitivity of one bundled encoding ≈ its norm; use a bound.
		if err := PrivatizeModel(src, m, 50, Params{Epsilon: eps, Delta: 1e-5}); err != nil {
			t.Fatal(err)
		}
		return hdc.Evaluate(m, encoded, labels)
	}
	loose := accAt(8)
	tight := accAt(0.05)
	if loose <= tight {
		t.Errorf("loose budget accuracy %v should beat tight %v", loose, tight)
	}
	if loose < 0.9 {
		t.Errorf("loose budget accuracy %v unexpectedly low", loose)
	}
}

func TestCompose(t *testing.T) {
	p := Compose(Params{Epsilon: 1, Delta: 1e-5}, 3)
	if p.Epsilon != 3 || math.Abs(p.Delta-3e-5) > 1e-18 {
		t.Errorf("Compose = %+v", p)
	}
}

func TestNoiseStdErrors(t *testing.T) {
	if _, err := NoiseStd(1, Params{}); err == nil {
		t.Error("expected error for invalid params")
	}
}
