// Package dp implements the differential-privacy machinery of Prive-HD
// §II-B and §III-B: the (ε,δ) Gaussian mechanism with the σ calibration the
// paper adopts from Abadi et al., the ε Laplace mechanism of Dwork et al.,
// and the model privatizer that perturbs HD class hypervectors after
// training.
//
// The paper's threat model: class hypervectors are sums of encodings
// (Eq. 3), so models trained on adjacent datasets differ by exactly one
// encoding, and the encoding's norm is the sensitivity. Noise is applied
// once, after all class hypervectors are built — Prive-HD does not retrain
// the noisy model, "as it violates the concept of differential privacy".
package dp

import (
	"fmt"
	"math"

	"privehd/internal/hdc"
	"privehd/internal/hrand"
)

// Params holds a differential-privacy budget.
type Params struct {
	// Epsilon is the privacy loss bound ε (> 0). Smaller is more private.
	Epsilon float64
	// Delta is the probability δ with which the ε guarantee may fail
	// (0 < δ < 1 for the Gaussian mechanism; 0 for pure-ε Laplace). The
	// paper fixes δ = 1e−5, "reasonable especially [as] the size of our
	// datasets are smaller than 10^5".
	Delta float64
}

// Validate reports whether the parameters describe a usable Gaussian budget.
func (p Params) Validate() error {
	if p.Epsilon <= 0 {
		return fmt.Errorf("dp: epsilon must be positive, got %v", p.Epsilon)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("dp: delta must be in (0,1), got %v", p.Delta)
	}
	return nil
}

// SigmaFactor returns the Gaussian noise multiplier σ such that adding
// N(0, (∆f·σ)²) noise gives (ε,δ)-differential privacy, from the paper's
// calibration (via Abadi et al.):
//
//	δ ≥ (4/5)·exp(−(σε)²/2)  ⇒  σ = sqrt(2·ln(4/(5δ)))/ε
//
// For δ = 1e−5 and ε = 1 this is ≈ 4.75, the value quoted in §IV-A.
func SigmaFactor(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	arg := 4 / (5 * p.Delta)
	if arg <= 1 {
		return 0, fmt.Errorf("dp: delta %v too large for the Gaussian tail bound", p.Delta)
	}
	return math.Sqrt(2*math.Log(arg)) / p.Epsilon, nil
}

// EpsilonFor inverts SigmaFactor: the ε achieved by a noise multiplier σ at
// failure probability δ.
func EpsilonFor(sigma, delta float64) (float64, error) {
	if sigma <= 0 {
		return 0, fmt.Errorf("dp: sigma must be positive, got %v", sigma)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("dp: delta must be in (0,1), got %v", delta)
	}
	arg := 4 / (5 * delta)
	if arg <= 1 {
		return 0, fmt.Errorf("dp: delta %v too large for the Gaussian tail bound", delta)
	}
	return math.Sqrt(2*math.Log(arg)) / sigma, nil
}

// GaussianMechanism adds N(0, (l2Sensitivity·σ)²) noise to every element of
// v in place, where σ comes from SigmaFactor(p) — paper Eq. 8.
func GaussianMechanism(src *hrand.Source, v []float64, l2Sensitivity float64, p Params) error {
	sigma, err := SigmaFactor(p)
	if err != nil {
		return err
	}
	if l2Sensitivity < 0 {
		return fmt.Errorf("dp: negative sensitivity %v", l2Sensitivity)
	}
	std := l2Sensitivity * sigma
	for i := range v {
		v[i] += src.Normal(0, std)
	}
	return nil
}

// LaplaceMechanism adds Lap(l1Sensitivity/ε) noise to every element of v in
// place, giving pure ε-differential privacy (paper Eq. 7 discussion, Dwork
// et al.). Prive-HD prefers the Gaussian mechanism because the ℓ2
// sensitivity of HD encodings is far smaller than the ℓ1.
func LaplaceMechanism(src *hrand.Source, v []float64, l1Sensitivity, epsilon float64) error {
	if epsilon <= 0 {
		return fmt.Errorf("dp: epsilon must be positive, got %v", epsilon)
	}
	if l1Sensitivity < 0 {
		return fmt.Errorf("dp: negative sensitivity %v", l1Sensitivity)
	}
	b := l1Sensitivity / epsilon
	for i := range v {
		v[i] += src.Laplace(0, b)
	}
	return nil
}

// PrivatizeModel perturbs every class hypervector of m in place with the
// Gaussian mechanism and invalidates the model's cached norms. The
// sensitivity argument must bound the ℓ2 norm of any single encoding that
// was bundled into the model (use quant.AnalyticL2Sensitivity for quantized
// training or quant.RawL2Sensitivity otherwise).
//
// Note the output dimensionality of the mechanism is D_hv·|C| — all class
// hypervectors jointly (paper: "Both f and G are D_hv·|C| dimensions") —
// but adjacent datasets change only one class by one encoding, so the joint
// ℓ2 sensitivity equals the single-encoding bound used here.
func PrivatizeModel(src *hrand.Source, m *hdc.Model, l2Sensitivity float64, p Params) error {
	sigma, err := SigmaFactor(p)
	if err != nil {
		return err
	}
	if l2Sensitivity < 0 {
		return fmt.Errorf("dp: negative sensitivity %v", l2Sensitivity)
	}
	std := l2Sensitivity * sigma
	for l := 0; l < m.NumClasses(); l++ {
		c := m.Class(l)
		for j := range c {
			c[j] += src.Normal(0, std)
		}
	}
	m.InvalidateAll()
	return nil
}

// PrivatizeModelMasked is PrivatizeModel restricted to the dimensions where
// keep[j] is true. Pruned dimensions carry no information — they are
// identically zero in the released model and the adversary knows the mask —
// so they need no noise; this is what makes pruning reduce the effective
// sensitivity (∆f ∝ sqrt(kept dimensions)).
func PrivatizeModelMasked(src *hrand.Source, m *hdc.Model, keep []bool, l2Sensitivity float64, p Params) error {
	if len(keep) != m.Dim() {
		return fmt.Errorf("dp: mask dim %d, model dim %d", len(keep), m.Dim())
	}
	sigma, err := SigmaFactor(p)
	if err != nil {
		return err
	}
	if l2Sensitivity < 0 {
		return fmt.Errorf("dp: negative sensitivity %v", l2Sensitivity)
	}
	std := l2Sensitivity * sigma
	for l := 0; l < m.NumClasses(); l++ {
		c := m.Class(l)
		for j := range c {
			if keep[j] {
				c[j] += src.Normal(0, std)
			}
		}
	}
	m.InvalidateAll()
	return nil
}

// NoiseStd returns the standard deviation ∆f·σ of the Gaussian noise that
// PrivatizeModel would apply — useful for reporting (EXPERIMENTS.md quotes
// it alongside each ε).
func NoiseStd(l2Sensitivity float64, p Params) (float64, error) {
	sigma, err := SigmaFactor(p)
	if err != nil {
		return 0, err
	}
	return l2Sensitivity * sigma, nil
}

// Compose returns the privacy parameters consumed by running k mechanisms
// with the given per-release parameters under basic (sequential)
// composition: ε and δ add. Prive-HD releases the model once, but the
// helper documents the cost of re-releasing (e.g. periodic retraining).
func Compose(p Params, k int) Params {
	return Params{Epsilon: p.Epsilon * float64(k), Delta: p.Delta * float64(k)}
}
