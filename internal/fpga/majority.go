package fpga

import (
	"privehd/internal/bitvec"
	"privehd/internal/hrand"
)

// BipolarCircuit is the Fig. 7a block: it computes the sign (bipolar
// quantization) of one encoded dimension from its d_iv ±1 partial products
// (represented in hardware as bits: 1 ↔ +1, 0 ↔ −1).
//
// The exact computation is a d_iv-input majority. The paper's approximation
// replaces the first stage with 6-input majority LUTs over disjoint groups
// of inputs ("we use majority LUTs only in the first stage, so the next
// stages are typical adder-tree") and then counts the group-majority bits
// exactly.
type BipolarCircuit struct {
	div int
	// groupLUTs[g] is the majority LUT for group g; the last group may be
	// narrower than 6.
	groupLUTs []LUT6
	widths    []int
	// finalTieUp resolves the exact second-stage tie (even group counts).
	finalTieUp bool
}

// NewBipolarCircuit builds the approximate-majority circuit for d_iv
// inputs. Tie policies for each first-stage LUT and the final comparison
// are drawn from src — "predetermined" randomness fixed at synthesis time,
// exactly as the paper prescribes.
func NewBipolarCircuit(div int, src *hrand.Source) *BipolarCircuit {
	if div < 1 {
		panic("fpga: BipolarCircuit needs at least one input")
	}
	c := &BipolarCircuit{div: div, finalTieUp: src.IntN(2) == 1}
	for off := 0; off < div; off += 6 {
		w := div - off
		if w > 6 {
			w = 6
		}
		c.groupLUTs = append(c.groupLUTs, MajorityLUT6(w, src.IntN(2) == 1))
		c.widths = append(c.widths, w)
	}
	return c
}

// Inputs returns d_iv.
func (c *BipolarCircuit) Inputs() int { return c.div }

// Groups returns the number of first-stage majority LUTs, ⌈d_iv/6⌉.
func (c *BipolarCircuit) Groups() int { return len(c.groupLUTs) }

// GroupWidth returns the input width of first-stage LUT g (6 except
// possibly the last).
func (c *BipolarCircuit) GroupWidth(g int) int { return c.widths[g] }

// GroupEval evaluates first-stage majority LUT g on its inputs; the
// structural netlist builder copies these truth tables so the gate-level
// circuit matches the behavioral one bit-for-bit.
func (c *BipolarCircuit) GroupEval(g int, in []bool) bool {
	return c.groupLUTs[g].Eval(in...)
}

// FinalTieUp reports the tie policy of the second-stage comparison.
func (c *BipolarCircuit) FinalTieUp() bool { return c.finalTieUp }

// Eval computes the approximate sign of Σ(±1 inputs): true ↔ +1. bits must
// have length d_iv.
func (c *BipolarCircuit) Eval(bits []bool) bool {
	if len(bits) != c.div {
		panic("fpga: BipolarCircuit.Eval input width mismatch")
	}
	ones := 0
	off := 0
	for g, lut := range c.groupLUTs {
		w := c.widths[g]
		if lut.Eval(bits[off : off+w]...) {
			ones++
		}
		off += w
	}
	n := len(c.groupLUTs)
	return ones*2 > n || (ones*2 == n && c.finalTieUp)
}

// ExactMajority is the behavioral reference: the true sign of the summed
// ±1 inputs, with ties resolved by tieUp.
func ExactMajority(bits []bool, tieUp bool) bool {
	ones := 0
	for _, b := range bits {
		if b {
			ones++
		}
	}
	n := len(bits)
	return ones*2 > n || (ones*2 == n && tieUp)
}

// QuantizeEncoding runs the circuit over every dimension of an Eq. 2b
// encoding given its per-feature bit planes (from
// hdc.LevelEncoder.BitPlanes): plane[k].Get(j) is the k-th ±1 partial
// product of dimension j. It returns the hardware bipolar quantization as a
// ±1 float hypervector — directly comparable to quant.Bipolar applied to
// the arithmetic encoding.
func (c *BipolarCircuit) QuantizeEncoding(planes []*bitvec.Vector) []float64 {
	if len(planes) != c.div {
		panic("fpga: QuantizeEncoding plane count mismatch")
	}
	dim := planes[0].Len()
	out := make([]float64, dim)
	bits := make([]bool, c.div)
	for j := 0; j < dim; j++ {
		for k, p := range planes {
			bits[k] = p.Get(j)
		}
		if c.Eval(bits) {
			out[j] = 1
		} else {
			out[j] = -1
		}
	}
	return out
}

// ExactQuantizeEncoding is the exact-popcount counterpart of
// QuantizeEncoding, for measuring the approximation's accuracy impact.
func ExactQuantizeEncoding(planes []*bitvec.Vector, tieUp bool) []float64 {
	if len(planes) == 0 {
		panic("fpga: ExactQuantizeEncoding needs at least one plane")
	}
	dim := planes[0].Len()
	out := make([]float64, dim)
	bits := make([]bool, len(planes))
	for j := 0; j < dim; j++ {
		for k, p := range planes {
			bits[k] = p.Get(j)
		}
		if ExactMajority(bits, tieUp) {
			out[j] = 1
		} else {
			out[j] = -1
		}
	}
	return out
}
