package fpga

import "math"

// Eq. 15 and the surrounding §III-D discussion: LUT-6 budgets for reducing
// the d_iv partial products of one encoded dimension.

// BipolarApproxLUTs returns the paper's Eq. 15 estimate for the
// approximate (first-stage majority) bipolar reduction:
//
//	n_LUT6 = d_iv/6 + (1/6)·Σ_{i=1..log d_iv} (d_iv/3 · i/2^{i−1}) ≈ 7/18·d_iv
//
// evaluated with the closed-form limit Σ i/2^{i−1} = 4, exactly as the
// paper's "≈ 7/18 d_iv" uses it.
func BipolarApproxLUTs(div int) float64 {
	return 7.0 / 18.0 * float64(div)
}

// BipolarApproxLUTsFinite evaluates Eq. 15 with the finite sum truncated at
// log2(d_iv) stages, the exact expression before the paper's asymptotic
// simplification.
func BipolarApproxLUTsFinite(div int) float64 {
	stages := int(math.Ceil(math.Log2(float64(div))))
	var sum float64
	for i := 1; i <= stages; i++ {
		sum += float64(div) / 3 * float64(i) / math.Pow(2, float64(i-1))
	}
	return float64(div)/6 + sum/6
}

// BipolarExactLUTs returns the paper's cost for the exact adder-tree
// implementation, 4/3·d_iv.
func BipolarExactLUTs(div int) float64 {
	return 4.0 / 3.0 * float64(div)
}

// BipolarSavings returns the fractional LUT saving of the approximate
// implementation: 1 − (7/18)/(4/3) ≈ 0.708, the "70.8% less" of §III-D.
func BipolarSavings() float64 {
	return 1 - BipolarApproxLUTs(1)/BipolarExactLUTs(1)
}

// TernaryApproxLUTs returns the §III-D estimate for the saturated
// adder-tree ternary reduction, ≈ 2·d_iv.
func TernaryApproxLUTs(div int) float64 {
	return 2 * float64(div)
}

// TernaryExactLUTs returns the cost with an exact adder tree, ≈ 3·d_iv.
func TernaryExactLUTs(div int) float64 {
	return 3 * float64(div)
}

// TernarySavings returns the fractional saving of the saturated tree,
// 1 − 2/3 ≈ 0.333 — the "33.3%" of §III-D.
func TernarySavings() float64 {
	return 1 - TernaryApproxLUTs(1)/TernaryExactLUTs(1)
}
