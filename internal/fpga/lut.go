// Package fpga models the Prive-HD hardware implementation of §III-D: the
// LUT-6 partial-majority circuit that computes bipolar quantization
// (Fig. 7a), the truncating ("saturated") adder tree for ternary values
// (Fig. 7b), the Eq. 15 LUT cost model, and the Table I platform
// throughput/energy models.
//
// The circuit simulations are bit-exact: they evaluate the same boolean
// functions the FPGA fabric would, so the "<1% accuracy loss" claim of the
// approximate majority can be measured rather than assumed. The netlist
// package builds structural versions of the same circuits and checks
// equivalence against the behavioral models here.
package fpga

import "fmt"

// LUT6 is a 6-input look-up table: the universal logic primitive of the
// paper's target fabric (Xilinx Kintex-7). Bit i of Table holds the output
// for input pattern i (input bit k of the pattern is input line k).
type LUT6 struct {
	Table uint64
}

// Eval returns the LUT output for the given input lines (at most 6;
// missing lines read as false).
func (l LUT6) Eval(inputs ...bool) bool {
	if len(inputs) > 6 {
		panic(fmt.Sprintf("fpga: LUT6 evaluated with %d inputs", len(inputs)))
	}
	var idx uint
	for k, b := range inputs {
		if b {
			idx |= 1 << uint(k)
		}
	}
	return l.Table&(1<<idx) != 0
}

// MajorityLUT6 builds the truth table for an n-input majority gate
// (n ≤ 6): output = 1 when more inputs are 1 than 0. Ties (possible only
// for even n) resolve to tieUp — the paper's "in the case an LUT has equal
// number of 0 and 1 inputs, it breaks the tie randomly (predetermined)".
// Unused high input lines are ignored.
func MajorityLUT6(n int, tieUp bool) LUT6 {
	if n < 1 || n > 6 {
		panic(fmt.Sprintf("fpga: majority width %d out of range [1,6]", n))
	}
	var table uint64
	for pattern := 0; pattern < 64; pattern++ {
		ones := 0
		for k := 0; k < n; k++ {
			if pattern&(1<<k) != 0 {
				ones++
			}
		}
		maj := ones*2 > n || (ones*2 == n && tieUp)
		if maj {
			table |= 1 << uint(pattern)
		}
	}
	return LUT6{Table: table}
}

// FuncLUT6 builds a truth table from an arbitrary boolean function of n
// inputs (n ≤ 6). Used by the netlist builders for adder bit-slices.
func FuncLUT6(n int, f func(inputs []bool) bool) LUT6 {
	if n < 0 || n > 6 {
		panic(fmt.Sprintf("fpga: FuncLUT6 width %d out of range [0,6]", n))
	}
	var table uint64
	in := make([]bool, n)
	for pattern := 0; pattern < 64; pattern++ {
		for k := 0; k < n; k++ {
			in[k] = pattern&(1<<k) != 0
		}
		if f(in) {
			table |= 1 << uint(pattern)
		}
	}
	return LUT6{Table: table}
}
