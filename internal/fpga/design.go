package fpga

import "fmt"

// DesignReport summarizes a full Prive-HD encoder design point: the
// resources and timing a D_hv-dimension, d_iv-feature bipolar encoder needs
// on the modeled fabric. It connects the Eq. 15 LUT budget to the Table I
// throughput model so design-space exploration (the sort §III-D motivates)
// is one function call.
type DesignReport struct {
	// Features and Dim are the encoder geometry.
	Features int
	Dim      int
	// LUTsPerDimension is the Eq. 15 approximate-majority budget for one
	// output dimension.
	LUTsPerDimension float64
	// TotalLUTEvals is the LUT-evaluation count of one full encoding.
	TotalLUTEvals float64
	// ParallelDims is how many output dimensions fit the fabric budget
	// simultaneously.
	ParallelDims int
	// CyclesPerInput is the pipelined initiation interval implied by
	// time-multiplexing Dim dimensions over ParallelDims lanes.
	CyclesPerInput int
	// Throughput is inputs/second at the modeled clock.
	Throughput float64
	// EnergyPerInput is joules/input at the modeled power.
	EnergyPerInput float64
}

// Design evaluates the modeled FPGA design point for the given encoder
// geometry. It panics if the geometry is non-positive.
func Design(features, dim int) DesignReport {
	if features <= 0 || dim <= 0 {
		panic(fmt.Sprintf("fpga: Design(%d, %d): geometry must be positive", features, dim))
	}
	perDim := BipolarApproxLUTs(features)
	parallel := int(float64(fpgaParallelLUTs) / perDim)
	if parallel < 1 {
		parallel = 1
	}
	if parallel > dim {
		parallel = dim
	}
	cycles := (dim + parallel - 1) / parallel
	p := PriveHDFPGA()
	w := Workload{Features: features, Dim: dim}
	return DesignReport{
		Features:         features,
		Dim:              dim,
		LUTsPerDimension: perDim,
		TotalLUTEvals:    float64(dim) * perDim,
		ParallelDims:     parallel,
		CyclesPerInput:   cycles,
		Throughput:       p.Throughput(w),
		EnergyPerInput:   p.EnergyPerInput(w),
	}
}

// String renders the report for logs and CLI output.
func (r DesignReport) String() string {
	return fmt.Sprintf(
		"fpga design d_iv=%d D_hv=%d: %.0f LUT6/dim, %d dims/cycle, %d cycles/input, %.3g inputs/s, %.3g J/input",
		r.Features, r.Dim, r.LUTsPerDimension, r.ParallelDims, r.CyclesPerInput,
		r.Throughput, r.EnergyPerInput)
}
