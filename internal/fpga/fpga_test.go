package fpga

import (
	"math"
	"testing"
	"testing/quick"

	"privehd/internal/hrand"
)

func TestMajorityLUT6TruthTable(t *testing.T) {
	lut := MajorityLUT6(3, false)
	tests := []struct {
		in   []bool
		want bool
	}{
		{[]bool{false, false, false}, false},
		{[]bool{true, false, false}, false},
		{[]bool{true, true, false}, true},
		{[]bool{true, true, true}, true},
	}
	for _, tt := range tests {
		if got := lut.Eval(tt.in...); got != tt.want {
			t.Errorf("maj3(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestMajorityLUT6Ties(t *testing.T) {
	up := MajorityLUT6(6, true)
	down := MajorityLUT6(6, false)
	tie := []bool{true, true, true, false, false, false}
	if !up.Eval(tie...) {
		t.Error("tieUp LUT should output 1 on a tie")
	}
	if down.Eval(tie...) {
		t.Error("tieDown LUT should output 0 on a tie")
	}
}

func TestMajorityLUT6AllWidths(t *testing.T) {
	for n := 1; n <= 6; n++ {
		lut := MajorityLUT6(n, true)
		for pattern := 0; pattern < 1<<n; pattern++ {
			in := make([]bool, n)
			ones := 0
			for k := 0; k < n; k++ {
				in[k] = pattern&(1<<k) != 0
				if in[k] {
					ones++
				}
			}
			want := 2*ones >= n
			if got := lut.Eval(in...); got != want {
				t.Fatalf("maj%d(%0*b) = %v, want %v", n, n, pattern, got, want)
			}
		}
	}
}

func TestMajorityLUT6Panics(t *testing.T) {
	for _, n := range []int{0, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MajorityLUT6(%d) should panic", n)
				}
			}()
			MajorityLUT6(n, true)
		}()
	}
}

func TestFuncLUT6(t *testing.T) {
	xor := FuncLUT6(2, func(in []bool) bool { return in[0] != in[1] })
	if xor.Eval(true, false) != true || xor.Eval(true, true) != false {
		t.Error("FuncLUT6 xor wrong")
	}
}

func TestLUT6EvalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 7 inputs")
		}
	}()
	LUT6{}.Eval(true, true, true, true, true, true, true)
}

func TestBipolarCircuitMatchesExactOnClearMajorities(t *testing.T) {
	// When the input is strongly unbalanced the approximation must agree
	// with the exact majority (every group leans the same way).
	src := hrand.New(1)
	c := NewBipolarCircuit(60, src)
	allTrue := make([]bool, 60)
	for i := range allTrue {
		allTrue[i] = true
	}
	if !c.Eval(allTrue) {
		t.Error("all-ones input must evaluate true")
	}
	if c.Eval(make([]bool, 60)) {
		t.Error("all-zeros input must evaluate false")
	}
}

func TestBipolarCircuitGroupCount(t *testing.T) {
	src := hrand.New(2)
	tests := []struct{ div, groups int }{
		{6, 1}, {7, 2}, {12, 2}, {13, 3}, {617, 103},
	}
	for _, tt := range tests {
		c := NewBipolarCircuit(tt.div, src)
		if c.Groups() != tt.groups {
			t.Errorf("div=%d groups=%d, want %d", tt.div, c.Groups(), tt.groups)
		}
		if c.Inputs() != tt.div {
			t.Errorf("Inputs = %d", c.Inputs())
		}
	}
}

func TestBipolarCircuitAgreementRate(t *testing.T) {
	// The approximation flips only near-tie dimensions; on random ±1
	// inputs the agreement with exact majority should be high (the paper
	// reports <1% accuracy impact downstream; raw bit agreement is looser
	// but must still be strong).
	src := hrand.New(3)
	const div, trials = 63, 4000 // odd: no exact ties
	c := NewBipolarCircuit(div, src)
	agree := 0
	bits := make([]bool, div)
	for trial := 0; trial < trials; trial++ {
		for i := range bits {
			bits[i] = src.IntN(2) == 1
		}
		if c.Eval(bits) == ExactMajority(bits, true) {
			agree++
		}
	}
	rate := float64(agree) / trials
	if rate < 0.75 {
		t.Errorf("approximate majority agreement = %v, want ≥ 0.75", rate)
	}
}

func TestBipolarCircuitBiasedInputsAgreeBetter(t *testing.T) {
	// With a 60/40 input bias (as real encodings have away from the
	// decision boundary) agreement should improve markedly vs 50/50.
	src := hrand.New(4)
	const div, trials = 60, 4000
	c := NewBipolarCircuit(div, src)
	rate := func(p float64) float64 {
		agree := 0
		bits := make([]bool, div)
		for trial := 0; trial < trials; trial++ {
			for i := range bits {
				bits[i] = src.Float64() < p
			}
			if c.Eval(bits) == ExactMajority(bits, true) {
				agree++
			}
		}
		return float64(agree) / trials
	}
	balanced := rate(0.5)
	biased := rate(0.6)
	if biased <= balanced {
		t.Errorf("biased agreement %v should exceed balanced %v", biased, balanced)
	}
	if biased < 0.9 {
		t.Errorf("biased agreement %v too low", biased)
	}
}

func TestExactMajority(t *testing.T) {
	if ExactMajority([]bool{true, true, false}, false) != true {
		t.Error("2/3 majority should be true")
	}
	if ExactMajority([]bool{true, false}, false) != false {
		t.Error("tie with tieDown should be false")
	}
	if ExactMajority([]bool{true, false}, true) != true {
		t.Error("tie with tieUp should be true")
	}
}

func TestTernarySum3(t *testing.T) {
	if got := TernarySum3([]int{1, 1, 1}); got != 3 {
		t.Errorf("sum = %d", got)
	}
	if got := TernarySum3([]int{-1, 0, 1}); got != 0 {
		t.Errorf("sum = %d", got)
	}
	if got := TernarySum3([]int{-1}); got != -1 {
		t.Errorf("sum = %d", got)
	}
	for _, bad := range [][]int{{2}, {1, 1, 1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TernarySum3(%v) should panic", bad)
				}
			}()
			TernarySum3(bad)
		}()
	}
}

func TestTruncatedTreeSumSmall(t *testing.T) {
	// ≤3 inputs: exact, zero stages.
	approx, stages := TruncatedTreeSum([]int{1, 1, -1})
	if approx != 1 || stages != 0 {
		t.Errorf("got (%d, %d), want (1, 0)", approx, stages)
	}
	approx, stages = TruncatedTreeSum(nil)
	if approx != 0 || stages != 0 {
		t.Errorf("empty: got (%d, %d)", approx, stages)
	}
}

func TestTruncatedTreeSumErrorBound(t *testing.T) {
	f := func(seed uint64) bool {
		src := hrand.New(seed)
		n := 1 + src.IntN(600)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = src.IntN(3) - 1
		}
		approx, _ := TruncatedTreeSum(vals)
		exact := ExactSum(vals)
		bound := TruncatedTreeError(n)
		return abs(approx-exact) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTruncatedTreeSumOrderingPreserved(t *testing.T) {
	// The property HD inference needs: two reductions whose exact sums
	// differ by more than twice the error bound must keep their order
	// after truncation (per-class scores are compared, not read as
	// absolute values).
	src := hrand.New(5)
	const n = 300
	bound := TruncatedTreeError(n)
	mk := func(pPlus float64) []int {
		vals := make([]int, n)
		for i := range vals {
			r := src.Float64()
			switch {
			case r < pPlus:
				vals[i] = 1
			case r < pPlus+0.1:
				vals[i] = -1
			}
		}
		return vals
	}
	for trial := 0; trial < 100; trial++ {
		hi := mk(0.9) // exact ≈ +240
		lo := mk(0.1) // exact ≈ 0
		ehi, elo := ExactSum(hi), ExactSum(lo)
		if ehi-elo <= 2*bound {
			continue
		}
		ahi, _ := TruncatedTreeSum(hi)
		alo, _ := TruncatedTreeSum(lo)
		if ahi <= alo {
			t.Fatalf("ordering flipped: exact %d vs %d, approx %d vs %d", ehi, elo, ahi, alo)
		}
	}
}

func TestTruncatedTreeSumBiasIsNegative(t *testing.T) {
	// Floor truncation biases toward −∞; the bias must stay within the
	// worst-case bound. This documents the datapath's systematic error.
	src := hrand.New(6)
	const n, trials = 300, 300
	bound := TruncatedTreeError(n)
	var total float64
	for trial := 0; trial < trials; trial++ {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = src.IntN(3) - 1
		}
		approx, _ := TruncatedTreeSum(vals)
		total += float64(approx - ExactSum(vals))
	}
	mean := total / trials
	if mean > 0 {
		t.Errorf("truncation bias = %v, expected negative", mean)
	}
	if -mean > float64(bound) {
		t.Errorf("mean bias %v exceeds worst-case bound %d", mean, bound)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestEq15CostModel(t *testing.T) {
	// Paper: ≈7/18·d_iv vs 4/3·d_iv exact — "70.8% less".
	if got := BipolarSavings(); math.Abs(got-0.708) > 0.001 {
		t.Errorf("bipolar savings = %v, want ≈0.708", got)
	}
	if got := TernarySavings(); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("ternary savings = %v, want 1/3", got)
	}
	// ISOLET: 7/18·617 ≈ 240.
	if got := BipolarApproxLUTs(617); math.Abs(got-239.9) > 0.2 {
		t.Errorf("approx LUTs(617) = %v", got)
	}
	// The finite-stage formula converges to the asymptotic one from below
	// within a few percent at realistic d_iv.
	fin := BipolarApproxLUTsFinite(617)
	asym := BipolarApproxLUTs(617)
	if fin > asym || (asym-fin)/asym > 0.05 {
		t.Errorf("finite %v vs asymptotic %v out of band", fin, asym)
	}
}

func TestPlatformModelsReproduceTableIShape(t *testing.T) {
	ws := PaperWorkloads()
	pi, gpu, f := RaspberryPi(), GPU(), PriveHDFPGA()
	for _, w := range ws {
		tpi, tgpu, tf := pi.Throughput(w), gpu.Throughput(w), f.Throughput(w)
		if !(tf > tgpu && tgpu > tpi) {
			t.Errorf("%s: throughput ordering broken: fpga %v, gpu %v, pi %v", w.Name, tf, tgpu, tpi)
		}
		epi, egpu, ef := pi.EnergyPerInput(w), gpu.EnergyPerInput(w), f.EnergyPerInput(w)
		if !(ef < egpu && egpu < epi) {
			t.Errorf("%s: energy ordering broken: fpga %v, gpu %v, pi %v", w.Name, ef, egpu, epi)
		}
	}
	// Paper headline ratios: FPGA ≈ 105,067× Pi and 15.8× GPU throughput.
	// The single-constant-set models must land within ~4× of those.
	gmPi := GeomeanSpeedup(f, pi, ws)
	gmGPU := GeomeanSpeedup(f, gpu, ws)
	if gmPi < 3e4 || gmPi > 4e5 {
		t.Errorf("FPGA/Pi geomean speedup = %v, want ~1e5", gmPi)
	}
	if gmGPU < 4 || gmGPU > 64 {
		t.Errorf("FPGA/GPU geomean speedup = %v, want ~16", gmGPU)
	}
}

func TestPlatformModelsWithinBandOfPaper(t *testing.T) {
	// Each modeled throughput should be within an order of magnitude of
	// the published Table I value (the models use one constant set; the
	// paper's per-benchmark implementations vary more).
	ws := PaperWorkloads()
	paper := PaperResults()
	plats := Platforms()
	for i, w := range ws {
		for p, plat := range plats {
			model := plat.Throughput(w)
			published := paper[i].Throughput[p]
			ratio := model / published
			if ratio < 0.1 || ratio > 10 {
				t.Errorf("%s on %s: model %v vs paper %v (ratio %v)",
					w.Name, plat.Name, model, published, ratio)
			}
		}
	}
}

func TestDesignReport(t *testing.T) {
	r := Design(617, 10000)
	if r.LUTsPerDimension < 200 || r.LUTsPerDimension > 300 {
		t.Errorf("LUTs/dim = %v, want ≈240", r.LUTsPerDimension)
	}
	if r.ParallelDims < 1 || r.ParallelDims > 10000 {
		t.Errorf("ParallelDims = %d", r.ParallelDims)
	}
	// Cycles × parallel lanes must cover every dimension.
	if r.CyclesPerInput*r.ParallelDims < 10000 {
		t.Errorf("design does not cover all dimensions: %d×%d", r.CyclesPerInput, r.ParallelDims)
	}
	// Throughput must match the platform model exactly.
	want := PriveHDFPGA().Throughput(Workload{Features: 617, Dim: 10000})
	if math.Abs(r.Throughput-want)/want > 1e-12 {
		t.Errorf("Throughput %v != platform model %v", r.Throughput, want)
	}
	if r.String() == "" {
		t.Error("String empty")
	}
}

func TestDesignSmallDim(t *testing.T) {
	// With few dimensions the parallelism clamps to Dim and one cycle
	// suffices.
	r := Design(36, 8)
	if r.ParallelDims != 8 || r.CyclesPerInput != 1 {
		t.Errorf("small design = %d lanes, %d cycles", r.ParallelDims, r.CyclesPerInput)
	}
}

func TestDesignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Design(0, 10)
}

func TestWorkloadOps(t *testing.T) {
	w := Workload{Features: 10, Dim: 100, Classes: 2}
	if got := w.Ops(); got != 10*100+2*100 {
		t.Errorf("Ops = %v", got)
	}
}

func TestEnergyIsPowerOverThroughput(t *testing.T) {
	p := GPU()
	w := PaperWorkloads()[0]
	want := p.PowerWatts / p.Throughput(w)
	if got := p.EnergyPerInput(w); math.Abs(got-want) > 1e-15 {
		t.Errorf("energy = %v, want %v", got, want)
	}
}
