package fpga

import "math"

// Platform models regenerate the structure of Table I: inference throughput
// (inputs/second) and energy (joules/input) for the paper's three execution
// targets. The paper measured real hardware (Kintex-7 KC705, Raspberry
// Pi 3, GTX 1080 Ti); this reproduction models each platform with a small
// set of documented constants, calibrated once against the published
// numbers — NOT per-benchmark — so the cross-platform ratios (the table's
// actual claim: FPGA ≈ 10^5× Pi and ~16× GPU throughput, with 5·10^4× and
// ~290× energy gains) emerge from the models rather than being pasted in.
type Platform struct {
	// Name identifies the platform in reports.
	Name string
	// PowerWatts is the platform power draw during inference, from the
	// paper (§IV-C: ~7 W FPGA via XPE, 3 W Pi via power meter, 120 W GPU
	// via nvidia-smi).
	PowerWatts float64
	// throughput returns inputs/second for a workload.
	throughput func(w Workload) float64
}

// Workload is the inference geometry of one benchmark.
type Workload struct {
	Name string
	// Features is d_iv, the input feature count.
	Features int
	// Dim is D_hv, the hypervector dimensionality.
	Dim int
	// Classes is the number of class hypervectors scored per input.
	Classes int
}

// Ops returns the bit-operation count of one Eq. 2b inference: Features·Dim
// partial products plus the Classes·Dim similarity terms.
func (w Workload) Ops() float64 {
	return float64(w.Features)*float64(w.Dim) + float64(w.Classes)*float64(w.Dim)
}

// Throughput returns modeled inputs/second.
func (p Platform) Throughput(w Workload) float64 { return p.throughput(w) }

// EnergyPerInput returns modeled joules/input: power divided by throughput.
func (p Platform) EnergyPerInput(w Workload) float64 {
	return p.PowerWatts / p.Throughput(w)
}

// Calibration constants. Single set for all workloads; see Platform doc.
const (
	// raspberryPiOpsPerSec: effective scalar op/s of the Pi 3 software
	// implementation (a ~1.2 GHz in-order ARM running an unvectorized
	// float encoder with memory stalls; the published 19.8 inputs/s on
	// ISOLET's 6.4M-op inference implies ≈1.3e8 op/s).
	raspberryPiOpsPerSec = 1.3e8
	// gpuOpsPerSec: effective op/s of the GTX 1080 Ti kernel — ~8% of the
	// card's 11.3 TFLOP peak, the usual small-kernel efficiency once
	// launch and PCIe transfer overheads are charged.
	gpuOpsPerSec = 9.0e11
	// fpgaClockHz and fpgaParallelLUTs: the pipelined design evaluates
	// fpgaParallelLUTs LUT-6s per cycle at fpgaClockHz; one input needs
	// Dim·BipolarApproxLUTs(Features) LUT evaluations.
	fpgaClockHz      = 2.0e8
	fpgaParallelLUTs = 30000
)

// RaspberryPi returns the embedded-CPU platform model.
func RaspberryPi() Platform {
	return Platform{
		Name:       "Raspberry Pi 3",
		PowerWatts: 3,
		throughput: func(w Workload) float64 {
			return raspberryPiOpsPerSec / w.Ops()
		},
	}
}

// GPU returns the GTX 1080 Ti platform model.
func GPU() Platform {
	return Platform{
		Name:       "GTX 1080 Ti",
		PowerWatts: 120,
		throughput: func(w Workload) float64 {
			return gpuOpsPerSec / w.Ops()
		},
	}
}

// PriveHDFPGA returns the paper's accelerator model: a fully pipelined
// LUT-mapped encoder (Fig. 7a blocks) on a Kintex-7-class budget.
func PriveHDFPGA() Platform {
	return Platform{
		Name:       "Prive-HD (FPGA)",
		PowerWatts: 7,
		throughput: func(w Workload) float64 {
			lutEvalsPerInput := float64(w.Dim) * BipolarApproxLUTs(w.Features)
			return fpgaClockHz * fpgaParallelLUTs / lutEvalsPerInput
		},
	}
}

// Platforms returns the Table I platforms in column order.
func Platforms() []Platform {
	return []Platform{RaspberryPi(), GPU(), PriveHDFPGA()}
}

// PaperTableI holds the published Table I numbers for side-by-side
// reporting: throughput (inputs/s) and energy (J/input) per platform, in
// Platforms() order.
type PaperTableI struct {
	Workload   string
	Throughput [3]float64
	Energy     [3]float64
}

// PaperResults returns Table I exactly as published.
func PaperResults() []PaperTableI {
	return []PaperTableI{
		{"ISOLET", [3]float64{19.8, 135300, 2500000}, [3]float64{0.155, 8.9e-4, 2.7e-6}},
		{"FACE", [3]float64{11.9, 104079, 694444}, [3]float64{0.266, 1.2e-3, 4.7e-6}},
		{"MNIST", [3]float64{23.9, 140550, 3125000}, [3]float64{0.129, 8.5e-4, 3.0e-6}},
	}
}

// PaperWorkloads returns the benchmark geometries of Table I at the
// paper's D_hv = 10^4.
func PaperWorkloads() []Workload {
	return []Workload{
		{Name: "ISOLET", Features: 617, Dim: 10000, Classes: 26},
		{Name: "FACE", Features: 608, Dim: 10000, Classes: 2},
		{Name: "MNIST", Features: 784, Dim: 10000, Classes: 10},
	}
}

// GeomeanSpeedup returns the geometric-mean throughput ratio of platform a
// over platform b across the given workloads.
func GeomeanSpeedup(a, b Platform, ws []Workload) float64 {
	if len(ws) == 0 {
		return 0
	}
	prod := 1.0
	for _, w := range ws {
		prod *= a.Throughput(w) / b.Throughput(w)
	}
	return math.Pow(prod, 1/float64(len(ws)))
}
