package fpga

import "fmt"

// The Fig. 7b datapath sums d_iv ternary values {−1, 0, +1}. Stage 0 packs
// each group of three 2-bit ternary inputs into an exact 3-bit sum in
// [−3, +3] (three LUT-6s per group in hardware). The remaining stages are a
// "saturated adder tree": each adder takes two 3-bit values, forms the
// exact 4-bit sum, and truncates the least-significant bit, so the width
// stays three while the represented magnitude doubles each stage. The final
// output therefore approximates sum / 2^stages.

// TernarySum3 is the exact stage-0 reduction: the sum of up to three
// ternary values. It panics on non-ternary input.
func TernarySum3(vals []int) int {
	if len(vals) > 3 {
		panic("fpga: TernarySum3 takes at most 3 values")
	}
	s := 0
	for _, v := range vals {
		if v < -1 || v > 1 {
			panic(fmt.Sprintf("fpga: non-ternary value %d", v))
		}
		s += v
	}
	return s
}

// TruncatedTreeSum reduces the ternary inputs with the Fig. 7b circuit and
// returns the approximate total reconstructed to input scale
// (output << stages), plus the number of truncating stages used.
//
// Precision note: dropping one LSB per stage means the result's granularity
// is 2^stages and the worst-case error is stages·2^(stages−1) (see
// TruncatedTreeError). Truncation also biases the result toward −∞ — but
// the bias applies near-identically to every class score in an HD argmax,
// which is why the paper can afford it. The tests quantify both effects.
func TruncatedTreeSum(vals []int) (approx int, stages int) {
	if len(vals) == 0 {
		return 0, 0
	}
	// Stage 0: exact 3:1 packing.
	var level []int
	for off := 0; off < len(vals); off += 3 {
		end := off + 3
		if end > len(vals) {
			end = len(vals)
		}
		level = append(level, TernarySum3(vals[off:end]))
	}
	// Truncating pairwise stages. Values at stage s represent
	// (true value) / 2^s; floorDiv keeps the hardware's arithmetic-shift
	// behaviour for negatives.
	for len(level) > 1 {
		stages++
		var next []int
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, floorDiv2(level[i]+level[i+1]))
			} else {
				// Odd element passes through a stage: it must also be
				// rescaled to match its peers.
				next = append(next, floorDiv2(level[i]))
			}
		}
		level = next
	}
	return level[0] << uint(stages), stages
}

// ExactSum is the reference reduction.
func ExactSum(vals []int) int {
	s := 0
	for _, v := range vals {
		s += v
	}
	return s
}

func floorDiv2(v int) int {
	// Arithmetic shift right: rounds toward −∞, like dropping the LSB of a
	// two's-complement register.
	return v >> 1
}

// TruncatedTreeError returns the worst-case absolute error bound of
// TruncatedTreeSum for n inputs. An adder at stage s (scale 2^(s−1)
// inputs) drops one bit worth 2^(s−1)·1 of true value; stage s has
// ⌈groups/2^s⌉ adders, so the total worst case is
// Σ_{s=1..S} ⌈groups/2^s⌉·2^(s−1) ≤ S·groups/2 + small change. The bound
// is computed exactly by walking the tree shape.
func TruncatedTreeError(n int) int {
	if n <= 3 {
		return 0
	}
	groups := (n + 2) / 3
	bound := 0
	scale := 1
	for w := groups; w > 1; w = (w + 1) / 2 {
		// Every element of this stage passes through one adder (or a
		// rescaling passthrough for an odd leftover), each of which can
		// lose up to one unit at the current scale.
		bound += (w / 2) * scale
		if w%2 == 1 {
			bound += scale // passthrough also floor-divides
		}
		scale *= 2
	}
	return bound
}
