package registry

import (
	"errors"
	"testing"
)

func TestRegisterVersionSeedsExplicitVersion(t *testing.T) {
	r := New()
	e, err := r.RegisterVersion("m", labelModel(0), EncoderInfo{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 7 {
		t.Fatalf("RegisterVersion(7) published version %d", e.Version)
	}
	// Plain Swap keeps counting from the seeded version.
	e, err = r.Swap("m", labelModel(1), EncoderInfo{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 8 {
		t.Fatalf("Swap after seed = version %d, want 8", e.Version)
	}
	if _, err := r.RegisterVersion("bad", labelModel(0), EncoderInfo{}, 0); err == nil {
		t.Fatal("RegisterVersion(0) should fail")
	}
}

func TestSwapVersionCanMoveBackwards(t *testing.T) {
	r := New()
	if _, err := r.RegisterVersion("m", labelModel(0), EncoderInfo{}, 3); err != nil {
		t.Fatal(err)
	}
	// Rollback: the published version follows the store, even downwards.
	e, err := r.SwapVersion("m", labelModel(1), EncoderInfo{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 2 {
		t.Fatalf("SwapVersion(2) published version %d", e.Version)
	}
	// Version 0 means "bump", matching plain Swap.
	e, err = r.SwapVersion("m", labelModel(0), EncoderInfo{}, 0)
	if err != nil || e.Version != 3 {
		t.Fatalf("SwapVersion(0) = version %d, %v; want 3", e.Version, err)
	}
	if _, err := r.SwapVersion("nope", labelModel(0), EncoderInfo{}, 1); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("SwapVersion unknown = %v, want ErrUnknownModel", err)
	}
}

func TestClearDefault(t *testing.T) {
	r := New()
	if _, err := r.Register("m", labelModel(0), EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	if r.DefaultName() != "m" {
		t.Fatalf("auto-default = %q, want m", r.DefaultName())
	}
	r.ClearDefault()
	if r.DefaultName() != "" {
		t.Fatalf("ClearDefault left default %q", r.DefaultName())
	}
	if _, err := r.Lookup(""); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("Lookup(\"\") after ClearDefault = %v, want ErrUnknownModel", err)
	}
	// A later Register does not resurrect the auto-default... actually it
	// does, by design: the first Register into a default-less registry
	// claims the default. Verify that documented behavior.
	if _, err := r.Register("n", labelModel(1), EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	if r.DefaultName() != "n" {
		t.Fatalf("Register into default-less registry set default %q, want n", r.DefaultName())
	}
}

func TestServedCounterSurvivesSwap(t *testing.T) {
	r := New()
	e, err := r.Register("m", labelModel(0), EncoderInfo{})
	if err != nil {
		t.Fatal(err)
	}
	e.AddServed(5)
	if e.Served() != 5 {
		t.Fatalf("Served = %d, want 5", e.Served())
	}
	// Swap carries the counter: it tracks the name, not the publication.
	e2, err := r.Swap("m", labelModel(1), EncoderInfo{})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Served() != 5 {
		t.Fatalf("Served after Swap = %d, want 5", e2.Served())
	}
	e2.AddServed(3)
	if e.Served() != 8 || e2.Served() != 8 {
		t.Fatalf("old/new entries disagree on Served: %d vs %d", e.Served(), e2.Served())
	}
	// A negative or zero add is a no-op, not a wraparound.
	e2.AddServed(0)
	e2.AddServed(-1)
	if e2.Served() != 8 {
		t.Fatalf("Served after no-op adds = %d, want 8", e2.Served())
	}
}
