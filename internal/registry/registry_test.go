package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"privehd/internal/hdc"
)

// labelModel returns a 2-class dim-4 model that predicts label want for
// the query {1,1,0,0}, so two publications are distinguishable by their
// predictions.
func labelModel(want int) *hdc.Model {
	m := hdc.NewModel(2, 4)
	m.Add(want, []float64{1, 1, 0, 0})
	m.Add(1-want, []float64{0, 0, 1, 1})
	return m
}

func TestRegisterLookupDefault(t *testing.T) {
	r := New()
	if _, err := r.Lookup(""); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("empty registry Lookup = %v, want ErrUnknownModel", err)
	}
	info := EncoderInfo{Encoding: 1, Levels: 16, Features: 40, Seed: 9}
	e, err := r.Register("isolet", labelModel(0), info)
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 1 {
		t.Errorf("first publication Version = %d, want 1", e.Version)
	}
	// First registration becomes the default.
	got, err := r.Lookup("")
	if err != nil || got.Name != "isolet" {
		t.Fatalf("Lookup(\"\") = %v, %v; want the isolet entry", got, err)
	}
	if got.Encoder != info {
		t.Errorf("Encoder = %+v, want %+v", got.Encoder, info)
	}
	if _, err := r.Lookup("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("Lookup(nope) = %v, want ErrUnknownModel", err)
	}
	// Duplicate registration is refused; Swap is the update path.
	if _, err := r.Register("isolet", labelModel(0), info); err == nil {
		t.Error("duplicate Register should fail")
	}
}

func TestSwapBumpsVersionAndKeepsOldEntriesValid(t *testing.T) {
	r := New()
	if _, err := r.Register("m", labelModel(0), EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	old, err := r.Lookup("m")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r.Swap("m", labelModel(1), EncoderInfo{})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Version != 2 {
		t.Errorf("swapped Version = %d, want 2", e2.Version)
	}
	// The old entry (an in-flight query's view) still predicts with the old
	// model; the new lookup sees the swapped one.
	q := []float64{1, 1, 0, 0}
	if got := old.Model.Predict(q); got != 0 {
		t.Errorf("old entry predicts %d, want 0", got)
	}
	if got := e2.Model.Predict(q); got != 1 {
		t.Errorf("swapped entry predicts %d, want 1", got)
	}
	if _, err := r.Swap("ghost", labelModel(0), EncoderInfo{}); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("Swap(ghost) = %v, want ErrUnknownModel", err)
	}
}

func TestDeregisterAndSetDefault(t *testing.T) {
	r := New()
	for _, name := range []string{"a", "b"} {
		if _, err := r.Register(name, labelModel(0), EncoderInfo{}); err != nil {
			t.Fatal(err)
		}
	}
	if r.DefaultName() != "a" {
		t.Fatalf("default = %q, want a", r.DefaultName())
	}
	if err := r.SetDefault("b"); err != nil {
		t.Fatal(err)
	}
	if err := r.Deregister("b"); err != nil {
		t.Fatal(err)
	}
	// Deregistering the default leaves no default.
	if _, err := r.Lookup(""); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("Lookup after default removed = %v, want ErrUnknownModel", err)
	}
	if _, err := r.Lookup("a"); err != nil {
		t.Errorf("named lookup should survive: %v", err)
	}
	if err := r.Deregister("b"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("double Deregister = %v, want ErrUnknownModel", err)
	}
	if err := r.SetDefault("ghost"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("SetDefault(ghost) = %v, want ErrUnknownModel", err)
	}
	models := r.Models()
	if len(models) != 1 || models[0].Name != "a" {
		t.Errorf("Models = %v", models)
	}
}

func TestConcurrentLookupsDuringChurn(t *testing.T) {
	// Readers hammer Lookup while a writer swaps and re-registers; under
	// -race this checks the RCU discipline, and every resolved entry must
	// be internally consistent (model present, version positive).
	r := New()
	if _, err := r.Register("hot", labelModel(0), EncoderInfo{}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := []float64{1, 0, 0, 1}
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, err := r.Lookup("hot")
				if err != nil {
					continue // briefly deregistered
				}
				if e.Model == nil || e.Version < 1 {
					t.Error("inconsistent entry resolved")
					return
				}
				_ = e.Model.Scores(q)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if i%20 == 19 {
			if err := r.Deregister("hot"); err != nil {
				t.Fatal(err)
			}
			if _, err := r.Register("hot", labelModel(i%2), EncoderInfo{}); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := r.Swap("hot", labelModel((i+1)%2), EncoderInfo{}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestModelsReturnsOneConsistentSnapshot(t *testing.T) {
	r := New()
	for i := 0; i < 5; i++ {
		if _, err := r.Register(fmt.Sprintf("m%d", i), labelModel(0), EncoderInfo{}); err != nil {
			t.Fatal(err)
		}
	}
	models := r.Models()
	if len(models) != 5 || r.Len() != 5 {
		t.Fatalf("Models len %d, Len %d, want 5", len(models), r.Len())
	}
	for i := 1; i < len(models); i++ {
		if models[i-1].Name >= models[i].Name {
			t.Errorf("Models not sorted: %q before %q", models[i-1].Name, models[i].Name)
		}
	}
}
