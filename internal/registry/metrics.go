package registry

import (
	"privehd/internal/metrics"
)

// Publication instrumentation on the process-global registry: every
// Register/Swap/Deregister is a control-plane event worth graphing next
// to the per-model traffic counters (privehd_server_queries_total tracks
// what each model actually serves).
var (
	rmPublications = metrics.Default.NewCounterVec(
		"privehd_model_publications_total",
		"Model publications (registrations and swaps), by model name.",
		"model")
	rmActiveVersion = metrics.Default.NewGaugeVec(
		"privehd_model_active_version",
		"Version currently published under each model name. Moving backwards is a rollback.",
		"model")
)
