// Package registry holds the named, versioned models a serving deployment
// publishes behind one listener — the "model registry keyed in the
// handshake" scaling step of the offload path. A production MLaaS host
// serves many Prive-HD models (different datasets, geometries, privacy
// budgets) and updates them live; the registry makes both safe:
//
//   - Reads never block and never see a half-updated registry: the whole
//     name→entry view lives behind one atomic.Pointer snapshot (RCU).
//     Writers copy the map, mutate the copy and publish it with a single
//     atomic swap; a query that resolved an entry keeps using that model
//     for as long as it holds the pointer, even if the entry is swapped or
//     deregistered mid-flight.
//   - Every entry carries its model's public encoder setup (encoding,
//     levels, seed, features — shared setup per the paper, not a secret)
//     so the protocol handshake can advertise it and edges can
//     auto-configure.
//
// Swap bumps a per-name version counter, letting clients observe hot model
// updates across requests without reconnecting.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"privehd/internal/hdc"
	"privehd/internal/intscore"
)

// ErrUnknownModel reports a lookup, swap or deregistration of a model name
// the registry does not hold (or an empty name when no default is set).
// Test with errors.Is.
var ErrUnknownModel = errors.New("registry: unknown model")

// EncoderInfo is the public encoder setup of a served model — everything an
// edge needs to build a compatible encoder. Base and level hypervectors are
// deterministic in the seed, so advertising this leaks nothing the paper
// keeps secret (the training data is what DP protects).
type EncoderInfo struct {
	// Encoding is the paper encoding as an integer (core.Encoding /
	// privehd.Encoding value: 0 level, 1 scalar). Kept as a plain int so
	// the registry does not depend on the pipeline layers above it.
	Encoding int
	// Levels is the feature quantization level count ℓ_iv.
	Levels int
	// Features is the input dimensionality D_iv.
	Features int
	// Seed is the shared encoder seed.
	Seed uint64
}

// Zero reports whether no encoder setup was recorded (a bare-model entry;
// the handshake then advertises geometry only and edges cannot
// auto-configure against it).
func (i EncoderInfo) Zero() bool {
	return i == EncoderInfo{}
}

// ShardInfo describes the slice of a logical model an entry serves when one
// model is split across a replica fleet: the entry's model holds dimensions
// [DimOffset, DimOffset+DimLen) of classes [ClassOffset,
// ClassOffset+ClassCount) of a full FullDim × FullClasses model. A nil
// *ShardInfo means the entry serves the whole model. The descriptor is
// advertised in the protocol v5 handshake so scatter–gather coordinators
// can discover fleet geometry instead of being configured with it.
type ShardInfo struct {
	DimOffset   int
	DimLen      int
	ClassOffset int
	ClassCount  int
	FullDim     int
	FullClasses int
}

// Validate checks internal consistency: positive extents inside the full
// geometry.
func (s *ShardInfo) Validate() error {
	if s == nil {
		return nil
	}
	if s.FullDim <= 0 || s.FullClasses <= 0 {
		return fmt.Errorf("registry: shard full geometry %d×%d must be positive", s.FullDim, s.FullClasses)
	}
	if s.DimOffset < 0 || s.DimLen <= 0 || s.DimOffset+s.DimLen > s.FullDim {
		return fmt.Errorf("registry: shard dims [%d:%d) outside full dim %d",
			s.DimOffset, s.DimOffset+s.DimLen, s.FullDim)
	}
	if s.ClassOffset < 0 || s.ClassCount <= 0 || s.ClassOffset+s.ClassCount > s.FullClasses {
		return fmt.Errorf("registry: shard classes [%d:%d) outside full class count %d",
			s.ClassOffset, s.ClassOffset+s.ClassCount, s.FullClasses)
	}
	return nil
}

// Whole reports whether the descriptor covers the entire model (or is nil).
func (s *ShardInfo) Whole() bool {
	return s == nil || (s.DimOffset == 0 && s.DimLen == s.FullDim &&
		s.ClassOffset == 0 && s.ClassCount == s.FullClasses)
}

// String renders the descriptor in the privehd-serve -shard flag syntax.
func (s *ShardInfo) String() string {
	if s == nil {
		return "whole"
	}
	return fmt.Sprintf("dim=%d:%d,class=%d:%d of %d×%d",
		s.DimOffset, s.DimOffset+s.DimLen, s.ClassOffset, s.ClassOffset+s.ClassCount,
		s.FullDim, s.FullClasses)
}

// Entry is one named, versioned served model. Entries are immutable once
// published: Swap publishes a new Entry rather than mutating the old one,
// so an Entry resolved by an in-flight query stays valid forever.
type Entry struct {
	// Name is the registry key carried in the protocol handshake.
	Name string
	// Version counts publications under this name: 1 on Register, +1 per
	// Swap. It is advertised in the handshake so clients can observe hot
	// updates.
	Version int
	// Model is the served model. The registry precomputes its norm caches
	// at publication; it must not be mutated afterwards.
	Model *hdc.Model
	// Scorer is the integer-domain scoring engine for packed queries,
	// derived from Model at publication together with the norm caches. It
	// is immutable like the rest of the entry, so a query that resolved
	// this entry can never score against half-prepared planes however the
	// registry changes mid-flight.
	Scorer *intscore.Engine
	// Encoder is the model's public encoder setup (may be zero for
	// bare-model entries).
	Encoder EncoderInfo
	// Shard, when non-nil, marks this entry as serving a slice of a larger
	// logical model and records which slice (see ShardInfo). Advertised in
	// the v5 handshake.
	Shard *ShardInfo

	// served counts queries answered under this name across publications:
	// Register creates the counter, Swap carries it into the new entry, so
	// it measures the name's lifetime traffic rather than one version's.
	served *atomic.Uint64
}

// AddServed records n more queries answered against this entry's model.
func (e *Entry) AddServed(n int) {
	if n > 0 {
		e.served.Add(uint64(n))
	}
}

// Served returns how many queries have been answered under this entry's
// name since it was first registered (hot swaps do not reset it).
func (e *Entry) Served() uint64 { return e.served.Load() }

// snapshot is one immutable RCU view of the registry.
type snapshot struct {
	entries     map[string]*Entry
	defaultName string
}

// Registry is a concurrent model registry. The zero value is not usable;
// call New. Lookups are lock-free; Register/Swap/Deregister/SetDefault
// serialize among themselves but never block lookups or in-flight queries.
type Registry struct {
	mu   sync.Mutex // serializes writers
	snap atomic.Pointer[snapshot]
}

// New returns an empty registry.
func New() *Registry {
	r := &Registry{}
	r.snap.Store(&snapshot{entries: map[string]*Entry{}})
	return r
}

// clone copies the current snapshot for copy-on-write mutation. Callers
// must hold r.mu.
func (r *Registry) clone() *snapshot {
	cur := r.snap.Load()
	next := &snapshot{
		entries:     make(map[string]*Entry, len(cur.entries)+1),
		defaultName: cur.defaultName,
	}
	for name, e := range cur.entries {
		next.entries[name] = e
	}
	return next
}

// publish installs the snapshot. Callers must hold r.mu.
func (r *Registry) publish(next *snapshot) { r.snap.Store(next) }

// Register publishes a new model under name. The first registered model
// becomes the default (what clients that name no model are served) unless
// SetDefault chose another. Registering an existing name is an error — use
// Swap to update a live model.
func (r *Registry) Register(name string, model *hdc.Model, info EncoderInfo) (*Entry, error) {
	return r.RegisterVersion(name, model, info, 1)
}

// RegisterVersion is Register with an explicit starting version — the hook
// a durable store uses to replay its persisted version numbers after a
// restart, so handshakes advertise the same version before and after.
func (r *Registry) RegisterVersion(name string, model *hdc.Model, info EncoderInfo, version int) (*Entry, error) {
	return r.RegisterShardVersion(name, model, info, version, nil)
}

// RegisterShard publishes a model that serves only a slice of a larger
// logical model, carrying the shard descriptor into the handshake. The
// model's geometry must match the descriptor's slice extents.
func (r *Registry) RegisterShard(name string, model *hdc.Model, info EncoderInfo, shard *ShardInfo) (*Entry, error) {
	return r.RegisterShardVersion(name, model, info, 1, shard)
}

// RegisterShardVersion is RegisterShard with an explicit starting version.
func (r *Registry) RegisterShardVersion(name string, model *hdc.Model, info EncoderInfo, version int, shard *ShardInfo) (*Entry, error) {
	if name == "" {
		return nil, errors.New("registry: model name must not be empty")
	}
	if model == nil {
		return nil, errors.New("registry: model must not be nil")
	}
	if version < 1 {
		return nil, fmt.Errorf("registry: version must be at least 1, got %d", version)
	}
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	if shard != nil && (model.Dim() != shard.DimLen || model.NumClasses() != shard.ClassCount) {
		return nil, fmt.Errorf("registry: model geometry %d×%d does not match shard slice %s",
			model.Dim(), model.NumClasses(), shard)
	}
	// Freeze the norm caches and derive the packed-query integer planes so
	// serving goroutines only ever read.
	model.Precompute()
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.clone()
	if _, exists := next.entries[name]; exists {
		return nil, fmt.Errorf("registry: model %q already registered (use Swap to update it)", name)
	}
	e := &Entry{Name: name, Version: version, Model: model, Scorer: model.PackedScorer(), Encoder: info, Shard: shard, served: new(atomic.Uint64)}
	next.entries[name] = e
	if next.defaultName == "" {
		next.defaultName = name
	}
	r.publish(next)
	rmPublications.With(name).Inc()
	rmActiveVersion.With(name).Set(int64(version))
	return e, nil
}

// Swap atomically replaces the model published under name, bumping its
// version. In-flight queries that already resolved the old entry finish
// against the old model; every later lookup sees the new one. Connections
// are never dropped. It returns ErrUnknownModel if name was never
// registered.
func (r *Registry) Swap(name string, model *hdc.Model, info EncoderInfo) (*Entry, error) {
	return r.SwapVersion(name, model, info, 0)
}

// SwapVersion is Swap with an explicit published version (0 means bump the
// old version by one, as Swap does). A durable store uses it so the live
// version always equals the persisted one — including rollbacks, where the
// published version moves backwards.
func (r *Registry) SwapVersion(name string, model *hdc.Model, info EncoderInfo, version int) (*Entry, error) {
	if model == nil {
		return nil, errors.New("registry: model must not be nil")
	}
	if version < 0 {
		return nil, fmt.Errorf("registry: version must be non-negative, got %d", version)
	}
	model.Precompute()
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.clone()
	old, exists := next.entries[name]
	if !exists {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if version == 0 {
		version = old.Version + 1
	}
	e := &Entry{Name: name, Version: version, Model: model, Scorer: model.PackedScorer(), Encoder: info, served: old.served}
	next.entries[name] = e
	r.publish(next)
	rmPublications.With(name).Inc()
	rmActiveVersion.With(name).Set(int64(version))
	return e, nil
}

// Deregister removes the model published under name. In-flight queries
// holding its entry finish normally; new handshakes and new frames naming
// it are rejected. If name was the default, the registry is left with no
// default until SetDefault (or the next Register) chooses one.
func (r *Registry) Deregister(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.clone()
	if _, exists := next.entries[name]; !exists {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	delete(next.entries, name)
	if next.defaultName == name {
		next.defaultName = ""
	}
	r.publish(next)
	// Retire the gauge series with the model: a scrape must not keep
	// reporting an active version for a model no client can reach.
	rmActiveVersion.Delete(name)
	return nil
}

// SetDefault names the model served to clients that request none.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.clone()
	if _, exists := next.entries[name]; !exists {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	next.defaultName = name
	r.publish(next)
	return nil
}

// ClearDefault leaves the registry with no default model, so clients that
// name none are rejected until SetDefault (or the next Register) chooses
// one. A store replaying persisted state uses it to restore an explicit
// "no default" exactly, overriding Register's first-model auto-default.
func (r *Registry) ClearDefault() {
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.clone()
	next.defaultName = ""
	r.publish(next)
}

// DefaultName returns the current default model name ("" when unset).
func (r *Registry) DefaultName() string { return r.snap.Load().defaultName }

// Lookup resolves a requested model name to its current entry. The empty
// name resolves to the default model. The returned entry is an immutable
// snapshot: it stays valid (and its model consistent) however the registry
// changes afterwards.
func (r *Registry) Lookup(name string) (*Entry, error) {
	snap := r.snap.Load()
	if name == "" {
		name = snap.defaultName
		if name == "" {
			return nil, fmt.Errorf("%w: no default model registered", ErrUnknownModel)
		}
	}
	e, ok := snap.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return e, nil
}

// Models returns the current entries sorted by name — one consistent
// snapshot, not a live view.
func (r *Registry) Models() []*Entry {
	entries, _ := r.SnapshotModels()
	return entries
}

// SnapshotModels returns the entries sorted by name together with the
// default model name, both read from the same snapshot — so a listing can
// flag the default without racing a concurrent SetDefault between two
// separate loads.
func (r *Registry) SnapshotModels() ([]*Entry, string) {
	snap := r.snap.Load()
	out := make([]*Entry, 0, len(snap.entries))
	for _, e := range snap.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, snap.defaultName
}

// Len returns the number of registered models.
func (r *Registry) Len() int { return len(r.snap.Load().entries) }
