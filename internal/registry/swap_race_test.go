package registry

import (
	"math/rand"
	"sync"
	"testing"

	"privehd/internal/hdc"
)

// buildVersioned returns a deterministic integer-valued model for version v:
// every version has distinct class vectors, so a score vector identifies
// exactly which publication it was computed against.
func buildVersioned(v, classes, dim int) *hdc.Model {
	m := hdc.NewModel(classes, dim)
	rng := rand.New(rand.NewSource(int64(1000 + v)))
	for l := 0; l < classes; l++ {
		h := make([]float64, dim)
		for i := range h {
			h[i] = float64(rng.Intn(2001) - 1000)
		}
		m.Add(l, h)
	}
	return m
}

// expectedScores computes the reference scores of q against version v's
// model via the float64 path on a private clone, so the published model's
// caches are never touched.
func expectedScores(v, classes, dim int, q []int8) []float64 {
	m := buildVersioned(v, classes, dim)
	m.Precompute()
	x := make([]float64, dim)
	for i, s := range q {
		x[i] = float64(s)
	}
	return m.ScoresInto(x, make([]float64, classes))
}

// TestSwapUnderLoadRederivesScorerAtomically hammers a registry with hot
// swaps while readers score a fixed packed query through each resolved
// entry's integer engine. Every observed score vector must exactly match
// one published version — and specifically the version the entry
// advertises — proving the integer planes are re-derived atomically with
// the snapshot: no query ever scores against a half-prepared engine or a
// mix of old and new prototypes. Run under -race in CI.
func TestSwapUnderLoadRederivesScorerAtomically(t *testing.T) {
	const (
		classes  = 4
		dim      = 512
		versions = 8
		swaps    = 300
		readers  = 8
	)
	rng := rand.New(rand.NewSource(9))
	q := make([]int8, dim)
	for i := range q {
		q[i] = int8(rng.Intn(4)) - 2
	}
	want := make([][]float64, versions)
	for v := range want {
		want[v] = expectedScores(v, classes, dim, q)
	}

	r := New()
	if _, err := r.Register("m", buildVersioned(0, classes, dim), EncoderInfo{}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, classes)
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, err := r.Lookup("m")
				if err != nil {
					t.Errorf("Lookup: %v", err)
					return
				}
				if e.Scorer == nil {
					t.Errorf("version %d published without a scorer", e.Version)
					return
				}
				e.Scorer.ScoresPackedInto(q, out)
				exp := want[(e.Version-1)%versions]
				for l := range out {
					if out[l] != exp[l] {
						t.Errorf("version %d class %d: scored %v, want %v — query saw a half-prepared snapshot",
							e.Version, l, out[l], exp[l])
						return
					}
				}
			}
		}()
	}

	for k := 1; k <= swaps; k++ {
		if _, err := r.Swap("m", buildVersioned(k%versions, classes, dim), EncoderInfo{}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
