package vecmath

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"ones", []float64{1, 1, 1}, []float64{1, 1, 1}, 3},
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"signed", []float64{1, -2, 3}, []float64{4, 5, -6}, 4 - 10 - 18},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); got != tt.want {
				t.Errorf("Dot = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestCheckedDot(t *testing.T) {
	if _, err := CheckedDot([]float64{1}, []float64{1, 2}); err != ErrLength {
		t.Errorf("CheckedDot error = %v, want ErrLength", err)
	}
	got, err := CheckedDot([]float64{2, 3}, []float64{4, 5})
	if err != nil || got != 23 {
		t.Errorf("CheckedDot = %v, %v; want 23, nil", got, err)
	}
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if got := Norm2(v); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm1(v); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
}

func TestCosine(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{2, 0, 0}
	if got := Cosine(a, b); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Cosine parallel = %v, want 1", got)
	}
	c := []float64{0, 1, 0}
	if got := Cosine(a, c); got != 0 {
		t.Errorf("Cosine orthogonal = %v, want 0", got)
	}
	if got := Cosine(a, []float64{0, 0, 0}); got != 0 {
		t.Errorf("Cosine with zero vector = %v, want 0", got)
	}
	d := []float64{-1, 0, 0}
	if got := Cosine(a, d); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Cosine antiparallel = %v, want -1", got)
	}
}

func TestCosineScaleInvariance(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 1 + rng.IntN(50)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		alpha := 0.1 + rng.Float64()*10
		scaled := Clone(a)
		Scale(scaled, alpha)
		return almostEqual(Cosine(a, b), Cosine(scaled, b), 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAddSubScaled(t *testing.T) {
	dst := []float64{1, 2, 3}
	Add(dst, []float64{1, 1, 1})
	want := []float64{2, 3, 4}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("Add: dst = %v, want %v", dst, want)
		}
	}
	Sub(dst, []float64{2, 3, 4})
	for i := range dst {
		if dst[i] != 0 {
			t.Fatalf("Sub: dst = %v, want zeros", dst)
		}
	}
	AddScaled(dst, 2, []float64{1, 2, 3})
	want = []float64{2, 4, 6}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("AddScaled: dst = %v, want %v", dst, want)
		}
	}
}

func TestScaleClone(t *testing.T) {
	v := []float64{1, -2}
	c := Clone(v)
	Scale(v, 3)
	if v[0] != 3 || v[1] != -6 {
		t.Errorf("Scale: v = %v", v)
	}
	if c[0] != 1 || c[1] != -2 {
		t.Errorf("Clone was aliased: c = %v", c)
	}
}

func TestArgMax(t *testing.T) {
	tests := []struct {
		v    []float64
		want int
	}{
		{nil, -1},
		{[]float64{5}, 0},
		{[]float64{1, 3, 2}, 1},
		{[]float64{3, 3, 3}, 0}, // tie → lowest index
		{[]float64{-5, -1, -9}, 1},
	}
	for _, tt := range tests {
		if got := ArgMax(tt.v); got != tt.want {
			t.Errorf("ArgMax(%v) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestMeanVariance(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if got := Mean(v); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Variance(v); !almostEqual(got, 1.25, 1e-12) {
		t.Errorf("Variance = %v, want 1.25", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("Mean/Variance of empty should be 0")
	}
}

func TestMSEAndPSNR(t *testing.T) {
	a := []float64{0, 1, 0, 1}
	b := []float64{0, 1, 0, 1}
	if got := MSE(a, b); got != 0 {
		t.Errorf("MSE identical = %v, want 0", got)
	}
	if got := PSNR(a, b, 1); !math.IsInf(got, 1) {
		t.Errorf("PSNR identical = %v, want +Inf", got)
	}
	c := []float64{1, 0, 1, 0}
	if got := MSE(a, c); got != 1 {
		t.Errorf("MSE opposite = %v, want 1", got)
	}
	// PSNR with peak 1 and MSE 1 is 0 dB.
	if got := PSNR(a, c, 1); !almostEqual(got, 0, 1e-12) {
		t.Errorf("PSNR = %v, want 0", got)
	}
	// Larger peak raises PSNR: peak 255, MSE 1 → 20*log10(255) ≈ 48.13.
	if got := PSNR(a, c, 255); !almostEqual(got, 48.1308, 1e-3) {
		t.Errorf("PSNR(peak 255) = %v, want ≈48.13", got)
	}
}

func TestFoldedNormalMean(t *testing.T) {
	// Zero-mean case reduces to sigma*sqrt(2/pi) — the form used in Eq. 11.
	sigma := 3.0
	want := sigma * math.Sqrt(2/math.Pi)
	if got := FoldedNormalMean(0, sigma); !almostEqual(got, want, 1e-12) {
		t.Errorf("FoldedNormalMean(0,%v) = %v, want %v", sigma, got, want)
	}
	// Degenerate sigma.
	if got := FoldedNormalMean(-2, 0); got != 2 {
		t.Errorf("FoldedNormalMean(-2,0) = %v, want 2", got)
	}
	// Large |mu|/sigma: folded mean approaches |mu|.
	if got := FoldedNormalMean(100, 1); !almostEqual(got, 100, 1e-6) {
		t.Errorf("FoldedNormalMean(100,1) = %v, want ≈100", got)
	}
}

func TestFoldedNormalMeanMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	const n = 200000
	mu, sigma := 1.5, 2.0
	var s float64
	for i := 0; i < n; i++ {
		s += math.Abs(mu + sigma*rng.NormFloat64())
	}
	emp := s / n
	if got := FoldedNormalMean(mu, sigma); !almostEqual(got, emp, 0.02) {
		t.Errorf("FoldedNormalMean = %v, Monte Carlo = %v", got, emp)
	}
}

func TestNormalCDF(t *testing.T) {
	if got := NormalCDF(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("NormalCDF(0) = %v, want 0.5", got)
	}
	if got := NormalCDF(1.96); !almostEqual(got, 0.975, 1e-3) {
		t.Errorf("NormalCDF(1.96) = %v, want ≈0.975", got)
	}
	if got := NormalCDF(-8); got > 1e-10 {
		t.Errorf("NormalCDF(-8) = %v, want ≈0", got)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{4, 1, 3, 2}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, tt := range tests {
		if got := Quantile(v, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v, want 0", got)
	}
	// Quantile must not mutate its input.
	if v[0] != 4 || v[1] != 1 {
		t.Errorf("Quantile mutated input: %v", v)
	}
}

func TestQuantileMatchesSort(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := 1 + rng.IntN(100)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		s := Clone(v)
		sort.Float64s(s)
		return Quantile(v, 0) == s[0] && Quantile(v, 1) == s[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAbsRank(t *testing.T) {
	v := []float64{-5, 0.1, 3, -0.2}
	got := AbsRank(v)
	want := []int{1, 3, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AbsRank = %v, want %v", got, want)
		}
	}
}

func TestRank(t *testing.T) {
	v := []float64{3, -1, 2, -1}
	got := Rank(v)
	// Ties (-1 at indices 1 and 3) order by index.
	want := []int{1, 3, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", got, want)
		}
	}
}

func TestRankOrdered(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		n := 1 + rng.IntN(150)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(rng.IntN(10)) // many ties
		}
		idx := Rank(v)
		seen := make([]bool, n)
		for _, i := range idx {
			if seen[i] {
				return false
			}
			seen[i] = true
		}
		for i := 1; i < n; i++ {
			if v[idx[i-1]] > v[idx[i]] {
				return false
			}
			if v[idx[i-1]] == v[idx[i]] && idx[i-1] > idx[i] {
				return false // tie order must be by index
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAbsRankIsPermutationAndOrdered(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		n := 1 + rng.IntN(200)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		idx := AbsRank(v)
		seen := make([]bool, n)
		for _, i := range idx {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		for i := 1; i < n; i++ {
			if math.Abs(v[idx[i-1]]) > math.Abs(v[idx[i]]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDot10k(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	n := 10000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}
