// Package vecmath provides the dense float64 vector kernels and the
// statistical helpers that the rest of the Prive-HD reproduction is built on.
//
// Hypervectors, class vectors and encoded queries are all plain []float64
// slices; this package keeps the hot loops (dot products, norms, scaled
// accumulation) in one place so the HD, quantization and privacy layers can
// share a single audited implementation.
package vecmath

import (
	"errors"
	"math"
)

// ErrLength is returned by checked operations when two vectors that must
// share a length do not.
var ErrLength = errors.New("vecmath: vector length mismatch")

// Dot returns the inner product of a and b. It panics if the lengths differ,
// mirroring the behaviour of slice indexing; use CheckedDot for an error
// return instead.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// CheckedDot is Dot with an error return instead of a panic.
func CheckedDot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLength
	}
	return Dot(a, b), nil
}

// Norm2 returns the Euclidean (ℓ2) norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the ℓ1 norm of v.
func Norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Cosine returns the cosine similarity of a and b, the δ(·,·) of paper
// Eq. 4. It returns 0 when either vector has zero norm, which keeps argmax
// classification well-defined for empty classes.
func Cosine(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Add accumulates src into dst element-wise: dst[i] += src[i].
func Add(dst, src []float64) {
	if len(dst) != len(src) {
		panic("vecmath: Add length mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Sub subtracts src from dst element-wise: dst[i] -= src[i].
func Sub(dst, src []float64) {
	if len(dst) != len(src) {
		panic("vecmath: Sub length mismatch")
	}
	for i, v := range src {
		dst[i] -= v
	}
}

// AddScaled accumulates alpha*src into dst: dst[i] += alpha*src[i].
func AddScaled(dst []float64, alpha float64, src []float64) {
	if len(dst) != len(src) {
		panic("vecmath: AddScaled length mismatch")
	}
	for i, v := range src {
		dst[i] += alpha * v
	}
}

// Scale multiplies v in place by alpha.
func Scale(v []float64, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// ArgMax returns the index of the largest element of v, or -1 for an empty
// slice. Ties resolve to the lowest index, which keeps classification
// deterministic.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v, or 0 for slices shorter
// than one element.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// MSE returns the mean squared error between a and b.
func MSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: MSE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

// PSNR returns the peak signal-to-noise ratio, in dB, between a reference
// signal and its reconstruction, given the peak value of the reference
// domain (e.g. 255 for 8-bit images, 1 for normalized features). It returns
// +Inf for a perfect reconstruction.
func PSNR(ref, recon []float64, peak float64) float64 {
	mse := MSE(ref, recon)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(peak*peak/mse)
}

// FoldedNormalMean returns E|X| for X ~ N(mu, sigma^2), the folded normal
// mean of paper Eq. 11.
func FoldedNormalMean(mu, sigma float64) float64 {
	if sigma == 0 {
		return math.Abs(mu)
	}
	return sigma*math.Sqrt(2/math.Pi)*math.Exp(-mu*mu/(2*sigma*sigma)) +
		mu*(1-2*NormalCDF(-mu/sigma))
}

// NormalCDF returns the standard normal cumulative distribution function
// Φ(x), computed from the error function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the values in v using
// linear interpolation on a sorted copy. It is used to pick biased
// quantization thresholds. An empty input returns 0.
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := Clone(v)
	insertionSortOrHeap(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// insertionSortOrHeap sorts s ascending. Heapsort keeps worst-case O(n log n)
// without importing sort (which would also be fine, but this keeps Quantile
// allocation-free beyond the clone).
func insertionSortOrHeap(s []float64) {
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(s, i, n)
	}
	for i := n - 1; i > 0; i-- {
		s[0], s[i] = s[i], s[0]
		siftDown(s, 0, i)
	}
}

func siftDown(s []float64, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && s[child+1] > s[child] {
			child++
		}
		if s[root] >= s[child] {
			return
		}
		s[root], s[child] = s[child], s[root]
		root = child
	}
}

// AbsRank returns the indices of v ordered by ascending |v[i]|. It is the
// ordering used by model pruning: close-to-zero dimensions come first.
// Ties order by index, so the result is deterministic.
func AbsRank(v []float64) []int {
	return AbsRankInto(v, make([]int, len(v)))
}

// AbsRankInto is AbsRank writing into a caller-provided index buffer of
// len(v) — the allocation-free form for pooled hot paths.
func AbsRankInto(v []float64, idx []int) []int {
	return rankBy(v, idx, func(a, b int) bool {
		av, bv := math.Abs(v[a]), math.Abs(v[b])
		if av != bv {
			return av < bv
		}
		return a < b
	})
}

// Rank returns the indices of v ordered by ascending value, ties ordered by
// index. Rank-based quantizers use it to hit exact symbol occupancies even
// on discrete-valued inputs.
func Rank(v []float64) []int {
	return RankInto(v, make([]int, len(v)))
}

// RankInto is Rank writing into a caller-provided index buffer of len(v).
func RankInto(v []float64, idx []int) []int {
	return rankBy(v, idx, func(a, b int) bool {
		if v[a] != v[b] {
			return v[a] < v[b]
		}
		return a < b
	})
}

// rankBy heapsorts the provided index buffer with the given strict ordering
// on indices. idx must have length len(v).
func rankBy(v []float64, idx []int, lessIdx func(a, b int) bool) []int {
	if len(idx) != len(v) {
		panic("vecmath: rank buffer length mismatch")
	}
	for i := range idx {
		idx[i] = i
	}
	n := len(idx)
	less := func(a, b int) bool { return lessIdx(idx[a], idx[b]) }
	var sift func(root, n int)
	sift = func(root, n int) {
		for {
			child := 2*root + 1
			if child >= n {
				return
			}
			if child+1 < n && less(child, child+1) {
				child++
			}
			if !less(root, child) {
				return
			}
			idx[root], idx[child] = idx[child], idx[root]
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		sift(i, n)
	}
	for i := n - 1; i > 0; i-- {
		idx[0], idx[i] = idx[i], idx[0]
		sift(0, i)
	}
	return idx
}
