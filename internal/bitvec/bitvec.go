// Package bitvec implements packed bipolar hypervectors.
//
// A bipolar hypervector v ∈ {−1,+1}^D is stored as D bits across ⌈D/64⌉
// uint64 words, with bit=1 encoding +1 and bit=0 encoding −1 — the same
// convention the paper uses for its FPGA mapping ("we can represent −1 by 0,
// and +1 by 1 in hardware"). Dimension-wise multiplication of bipolar values
// becomes XNOR and dot products become popcounts, which is exactly the
// arithmetic the Fig. 7 LUT-6 circuits implement. The fpga and netlist
// packages consume this representation directly.
package bitvec

import (
	"fmt"
	"math/bits"
)

// Vector is a packed bipolar hypervector of fixed dimension.
type Vector struct {
	n     int // logical dimension
	words []uint64
}

// New returns a Vector of dimension n with every coordinate −1 (all bits 0).
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative dimension")
	}
	return &Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// FromFloats packs a ±1 float vector. Values > 0 map to +1; values <= 0 map
// to −1 (so a sign-quantized vector round-trips exactly, with the paper's
// convention that sign(0) breaks toward −1 unless callers choose otherwise).
func FromFloats(v []float64) *Vector {
	out := New(len(v))
	for i, x := range v {
		if x > 0 {
			out.Set(i, true)
		}
	}
	return out
}

// Len returns the logical dimension of v.
func (v *Vector) Len() int { return v.n }

// Words exposes the backing words; the tail bits beyond Len are always zero.
// Callers must not keep the slice across mutations.
func (v *Vector) Words() []uint64 { return v.words }

// Set assigns coordinate i: plus=true means +1, plus=false means −1.
func (v *Vector) Set(i int, plus bool) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	if plus {
		v.words[i/64] |= 1 << (i % 64)
	} else {
		v.words[i/64] &^= 1 << (i % 64)
	}
}

// Get reports whether coordinate i is +1.
func (v *Vector) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	return v.words[i/64]&(1<<(i%64)) != 0
}

// Sign returns coordinate i as ±1.
func (v *Vector) Sign(i int) float64 {
	if v.Get(i) {
		return 1
	}
	return -1
}

// Floats unpacks v into a ±1 float64 slice.
func (v *Vector) Floats() []float64 {
	out := make([]float64, v.n)
	for i := range out {
		out[i] = v.Sign(i)
	}
	return out
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	out := New(v.n)
	copy(out.words, v.words)
	return out
}

// Flip negates coordinate i.
func (v *Vector) Flip(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	v.words[i/64] ^= 1 << (i % 64)
}

// Xnor returns the element-wise bipolar product a⊙b (XNOR of the bit
// representations): (+1,+1)→+1, (−1,−1)→+1, otherwise −1. This is the
// dimension-wise multiply of paper Eq. 2b. Panics on length mismatch.
func Xnor(a, b *Vector) *Vector {
	if a.n != b.n {
		panic("bitvec: Xnor dimension mismatch")
	}
	out := New(a.n)
	for i := range a.words {
		out.words[i] = ^(a.words[i] ^ b.words[i])
	}
	out.maskTail()
	return out
}

// maskTail zeroes the unused high bits of the final word so popcounts stay
// exact.
func (v *Vector) maskTail() {
	if rem := v.n % 64; rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << rem) - 1
	}
}

// PopCount returns the number of +1 coordinates.
func (v *Vector) PopCount() int {
	var c int
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Dot returns the bipolar inner product a·b = (#agreements − #disagreements)
// = 2·popcount(XNOR) − D, without materializing the intermediate vector.
func Dot(a, b *Vector) int {
	if a.n != b.n {
		panic("bitvec: Dot dimension mismatch")
	}
	var agree int
	for i := range a.words {
		agree += bits.OnesCount64(^(a.words[i] ^ b.words[i]))
	}
	// The tail bits of both vectors are zero, so XNOR makes them agree;
	// subtract the phantom agreements beyond dimension n.
	phantom := len(a.words)*64 - a.n
	agree -= phantom
	return 2*agree - a.n
}

// Hamming returns the number of coordinates where a and b differ.
func Hamming(a, b *Vector) int {
	if a.n != b.n {
		panic("bitvec: Hamming dimension mismatch")
	}
	var d int
	for i := range a.words {
		d += bits.OnesCount64(a.words[i] ^ b.words[i])
	}
	return d
}

// Cosine returns the cosine similarity of two bipolar vectors, which for
// ±1 vectors is Dot/D.
func Cosine(a, b *Vector) float64 {
	if a.n == 0 {
		return 0
	}
	return float64(Dot(a, b)) / float64(a.n)
}

// AccumulateInto adds the bipolar values of v into the float accumulator
// acc (acc[i] += ±1). This is the bundling step of paper Eq. 3 when the
// encodings are sign-quantized. Panics on length mismatch.
func (v *Vector) AccumulateInto(acc []float64) {
	if len(acc) != v.n {
		panic("bitvec: AccumulateInto length mismatch")
	}
	for w, word := range v.words {
		base := w * 64
		limit := v.n - base
		if limit > 64 {
			limit = 64
		}
		chunk := acc[base : base+limit]
		for b := range chunk {
			// Branch-free ±1: bit → {1, -1}.
			chunk[b] += float64(int(word>>uint(b)&1)<<1 - 1)
		}
	}
}

// AccumulateXnorInto adds the element-wise bipolar product a⊙b into acc
// without materializing the intermediate vector: acc[i] += a[i]·b[i]. This
// fused form is the hot loop of the Eq. 2b encoder. Panics on length
// mismatch.
func AccumulateXnorInto(a, b *Vector, acc []float64) {
	if a.n != b.n || len(acc) != a.n {
		panic("bitvec: AccumulateXnorInto length mismatch")
	}
	for w := range a.words {
		word := ^(a.words[w] ^ b.words[w])
		base := w * 64
		limit := a.n - base
		if limit > 64 {
			limit = 64
		}
		chunk := acc[base : base+limit]
		for i := range chunk {
			chunk[i] += float64(int(word>>uint(i)&1)<<1 - 1)
		}
	}
}

// Rotate returns v cyclically shifted by k coordinates (coordinate j moves
// to (j+k) mod D). This is the permutation ρ^k used by sequence encoders to
// bind positions; rotation preserves norms and pairwise distances, and
// rotations of independent vectors remain near-orthogonal. Negative k
// rotates the other way.
func Rotate(v *Vector, k int) *Vector {
	n := v.n
	if n == 0 {
		return v.Clone()
	}
	k = ((k % n) + n) % n
	if k == 0 {
		return v.Clone()
	}
	out := New(n)
	for j := 0; j < n; j++ {
		if v.Get(j) {
			out.Set((j+k)%n, true)
		}
	}
	return out
}

// Majority returns the element-wise exact majority of the given vectors:
// out[i] = sign(Σ_k vs[k][i]), with ties broken toward +1 when tieUp is
// true and toward −1 otherwise. The FPGA package approximates this circuit;
// this function is the behavioral reference. Panics if vs is empty or the
// dimensions differ.
func Majority(vs []*Vector, tieUp bool) *Vector {
	if len(vs) == 0 {
		panic("bitvec: Majority of zero vectors")
	}
	n := vs[0].n
	out := New(n)
	for i := 0; i < n; i++ {
		sum := 0
		for _, v := range vs {
			if v.n != n {
				panic("bitvec: Majority dimension mismatch")
			}
			if v.Get(i) {
				sum++
			} else {
				sum--
			}
		}
		switch {
		case sum > 0:
			out.Set(i, true)
		case sum == 0 && tieUp:
			out.Set(i, true)
		}
	}
	return out
}

// String renders small vectors as a +/- pattern for debugging; longer
// vectors are summarized.
func (v *Vector) String() string {
	const max = 64
	if v.n <= max {
		b := make([]byte, v.n)
		for i := 0; i < v.n; i++ {
			if v.Get(i) {
				b[i] = '+'
			} else {
				b[i] = '-'
			}
		}
		return string(b)
	}
	return fmt.Sprintf("bitvec.Vector(dim=%d, +1s=%d)", v.n, v.PopCount())
}
