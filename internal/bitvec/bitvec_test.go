package bitvec

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"privehd/internal/vecmath"
)

func randomVector(rng *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.IntN(2) == 1)
	}
	return v
}

func TestNewAllMinusOne(t *testing.T) {
	v := New(100)
	if v.Len() != 100 {
		t.Fatalf("Len = %d", v.Len())
	}
	for i := 0; i < 100; i++ {
		if v.Get(i) {
			t.Fatalf("fresh vector has +1 at %d", i)
		}
		if v.Sign(i) != -1 {
			t.Fatalf("Sign(%d) = %v", i, v.Sign(i))
		}
	}
	if v.PopCount() != 0 {
		t.Errorf("PopCount = %d", v.PopCount())
	}
}

func TestSetGetFlip(t *testing.T) {
	v := New(130) // spans three words
	v.Set(0, true)
	v.Set(64, true)
	v.Set(129, true)
	for _, i := range []int{0, 64, 129} {
		if !v.Get(i) {
			t.Errorf("Get(%d) = false after Set", i)
		}
	}
	if v.PopCount() != 3 {
		t.Errorf("PopCount = %d, want 3", v.PopCount())
	}
	v.Flip(64)
	if v.Get(64) {
		t.Error("Flip did not clear bit 64")
	}
	v.Flip(64)
	if !v.Get(64) {
		t.Error("double Flip did not restore bit 64")
	}
	v.Set(0, false)
	if v.Get(0) {
		t.Error("Set(0,false) did not clear")
	}
}

func TestBoundsPanics(t *testing.T) {
	v := New(10)
	for _, f := range []func(){
		func() { v.Get(10) },
		func() { v.Get(-1) },
		func() { v.Set(10, true) },
		func() { v.Flip(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected out-of-range panic")
				}
			}()
			f()
		}()
	}
}

func TestFromFloatsRoundTrip(t *testing.T) {
	in := []float64{1, -1, 1, 1, -1, -1, 1}
	v := FromFloats(in)
	out := v.Floats()
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, in[i], out[i])
		}
	}
	// Zero maps to −1 by convention.
	z := FromFloats([]float64{0})
	if z.Get(0) {
		t.Error("FromFloats(0) should map to −1")
	}
}

func TestXnorTruthTable(t *testing.T) {
	a := FromFloats([]float64{1, 1, -1, -1})
	b := FromFloats([]float64{1, -1, 1, -1})
	got := Xnor(a, b).Floats()
	want := []float64{1, -1, -1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Xnor = %v, want %v", got, want)
		}
	}
}

func TestXnorMatchesFloatProduct(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 1 + rng.IntN(300)
		a := randomVector(rng, n)
		b := randomVector(rng, n)
		x := Xnor(a, b)
		fa, fb := a.Floats(), b.Floats()
		for i := 0; i < n; i++ {
			if x.Sign(i) != fa[i]*fb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDotMatchesFloatDot(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		n := 1 + rng.IntN(500)
		a := randomVector(rng, n)
		b := randomVector(rng, n)
		want := int(vecmath.Dot(a.Floats(), b.Floats()))
		return Dot(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDotSelf(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{1, 63, 64, 65, 128, 1000} {
		v := randomVector(rng, n)
		if got := Dot(v, v); got != n {
			t.Errorf("Dot(v,v) with n=%d = %d, want %d", n, got, n)
		}
	}
}

func TestHamming(t *testing.T) {
	a := FromFloats([]float64{1, 1, 1, 1})
	b := FromFloats([]float64{1, -1, 1, -1})
	if got := Hamming(a, b); got != 2 {
		t.Errorf("Hamming = %d, want 2", got)
	}
	if got := Hamming(a, a); got != 0 {
		t.Errorf("Hamming(a,a) = %d, want 0", got)
	}
}

func TestHammingDotIdentity(t *testing.T) {
	// For bipolar vectors: dot = n − 2·hamming.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		n := 1 + rng.IntN(400)
		a := randomVector(rng, n)
		b := randomVector(rng, n)
		return Dot(a, b) == n-2*Hamming(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCosine(t *testing.T) {
	a := FromFloats([]float64{1, 1, 1, 1})
	if got := Cosine(a, a); got != 1 {
		t.Errorf("Cosine(a,a) = %v, want 1", got)
	}
	b := FromFloats([]float64{-1, -1, -1, -1})
	if got := Cosine(a, b); got != -1 {
		t.Errorf("Cosine(a,-a) = %v, want -1", got)
	}
	if got := Cosine(New(0), New(0)); got != 0 {
		t.Errorf("Cosine empty = %v, want 0", got)
	}
}

func TestClone(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	v := randomVector(rng, 200)
	c := v.Clone()
	if Hamming(v, c) != 0 {
		t.Fatal("clone differs from original")
	}
	c.Flip(5)
	if Hamming(v, c) != 1 {
		t.Error("clone shares storage with original")
	}
}

func TestAccumulateInto(t *testing.T) {
	v := FromFloats([]float64{1, -1, 1})
	acc := []float64{10, 10, 10}
	v.AccumulateInto(acc)
	want := []float64{11, 9, 11}
	for i := range want {
		if acc[i] != want[i] {
			t.Fatalf("acc = %v, want %v", acc, want)
		}
	}
}

func TestAccumulateXnorIntoMatchesXnor(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		n := 1 + rng.IntN(300)
		a := randomVector(rng, n)
		b := randomVector(rng, n)
		acc := make([]float64, n)
		for i := range acc {
			acc[i] = rng.NormFloat64()
		}
		want := append([]float64(nil), acc...)
		Xnor(a, b).AccumulateInto(want)
		AccumulateXnorInto(a, b, acc)
		for i := range acc {
			if acc[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAccumulateXnorIntoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AccumulateXnorInto(New(3), New(3), make([]float64, 2))
}

func TestMajorityExact(t *testing.T) {
	vs := []*Vector{
		FromFloats([]float64{1, 1, -1, -1}),
		FromFloats([]float64{1, -1, -1, 1}),
		FromFloats([]float64{1, 1, -1, -1}),
	}
	got := Majority(vs, true).Floats()
	want := []float64{1, 1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Majority = %v, want %v", got, want)
		}
	}
}

func TestMajorityTieBreak(t *testing.T) {
	vs := []*Vector{
		FromFloats([]float64{1, -1}),
		FromFloats([]float64{-1, 1}),
	}
	up := Majority(vs, true)
	if !up.Get(0) || !up.Get(1) {
		t.Error("tieUp=true should resolve ties to +1")
	}
	down := Majority(vs, false)
	if down.Get(0) || down.Get(1) {
		t.Error("tieUp=false should resolve ties to −1")
	}
}

func TestMajorityMatchesFloatSign(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 8))
		n := 1 + rng.IntN(100)
		k := 1 + 2*rng.IntN(5) // odd count: no ties
		vs := make([]*Vector, k)
		for i := range vs {
			vs[i] = randomVector(rng, n)
		}
		maj := Majority(vs, true)
		for i := 0; i < n; i++ {
			var sum float64
			for _, v := range vs {
				sum += v.Sign(i)
			}
			want := sum > 0
			if maj.Get(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRotate(t *testing.T) {
	v := FromFloats([]float64{1, -1, -1, -1})
	r := Rotate(v, 1)
	want := []float64{-1, 1, -1, -1}
	for i, w := range want {
		if r.Sign(i) != w {
			t.Fatalf("Rotate(1) = %v, want %v", r.Floats(), want)
		}
	}
	// Negative rotation is the inverse.
	back := Rotate(r, -1)
	if Hamming(v, back) != 0 {
		t.Error("Rotate(-1) did not invert Rotate(1)")
	}
	// Full-cycle rotation is the identity.
	if Hamming(v, Rotate(v, 4)) != 0 {
		t.Error("Rotate(n) should be identity")
	}
	// Zero-length vector.
	z := Rotate(New(0), 3)
	if z.Len() != 0 {
		t.Error("Rotate of empty vector")
	}
}

func TestRotatePreservesStructure(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		n := 1 + rng.IntN(200)
		k := rng.IntN(3*n) - n
		a := randomVector(rng, n)
		b := randomVector(rng, n)
		ra, rb := Rotate(a, k), Rotate(b, k)
		// Rotation preserves popcount and pairwise dot products.
		return ra.PopCount() == a.PopCount() && Dot(ra, rb) == Dot(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRotateComposition(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 37))
		n := 1 + rng.IntN(150)
		j, k := rng.IntN(n), rng.IntN(n)
		v := randomVector(rng, n)
		return Hamming(Rotate(Rotate(v, j), k), Rotate(v, j+k)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	v := FromFloats([]float64{1, -1, 1})
	if got := v.String(); got != "+-+" {
		t.Errorf("String = %q, want %q", got, "+-+")
	}
	long := New(100)
	if got := long.String(); got == "" {
		t.Error("long String should summarize, not be empty")
	}
}

func TestTailMaskingAfterXnor(t *testing.T) {
	// 70 dims: second word has 6 used bits. XNOR sets tail bits to 1
	// internally; maskTail must clear them so PopCount stays exact.
	a := New(70)
	b := New(70)
	x := Xnor(a, b) // all agreements → all +1 in range
	if got := x.PopCount(); got != 70 {
		t.Errorf("PopCount after Xnor = %d, want 70", got)
	}
	if got := Dot(a, b); got != 70 {
		t.Errorf("Dot of equal vectors = %d, want 70", got)
	}
}

func BenchmarkDot10k(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 10))
	x := randomVector(rng, 10000)
	y := randomVector(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkXnor10k(b *testing.B) {
	rng := rand.New(rand.NewPCG(11, 12))
	x := randomVector(rng, 10000)
	y := randomVector(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Xnor(x, y)
	}
}
